package superfw

// End-to-end integration tests: the full pipeline (generator → ordering
// → symbolic → numeric → analytics/factor/update) on one larger graph
// per structural class, plus robustness cases that have historically
// broken sparse solvers (degenerate shapes, zero weights, dense blocks).

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/analytics"
	"repro/internal/apsp"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestIntegrationFullPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test takes a few seconds")
	}
	g := gen.RoadNetwork(36, 36, 0.35, 7)

	// 1. Dense solve with paths.
	opts := DefaultOptions()
	opts.TrackPaths = true
	plan, err := NewPlan(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}

	// 2. Validate against Dijkstra + invariants.
	dj, err := apsp.Dijkstra(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	D := res.Dense()
	if d := apsp.MaxAbsDiff(D, dj); d > 1e-9 {
		t.Fatalf("dense solve differs from Dijkstra by %g", d)
	}
	if err := apsp.CheckAPSPInvariants(g, D, 25); err != nil {
		t.Fatal(err)
	}

	// 3. Factor round trip through serialization, then query agreement.
	fplan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactor(fplan, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f2, err := ReadFactor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u += 97 {
		for v := 0; v < g.N; v += 89 {
			if d := math.Abs(f2.Dist(u, v) - res.At(u, v)); d > 1e-9 && !math.IsNaN(d) {
				t.Fatalf("factor label query differs at (%d,%d) by %g", u, v, d)
			}
		}
	}

	// 4. Incremental update tracks a re-solve.
	if err := res.DecreaseEdge(0, g.N-1, 0.01, 0); err != nil {
		t.Fatal(err)
	}
	g2 := graph.MustFromEdges(g.N, append(g.Edges(), graph.Edge{U: 0, V: g.N - 1, W: 0.01}))
	want := core.Closure(g2.ToDense())
	if !res.Dense().EqualTol(want, 1e-9) {
		t.Fatal("incremental update diverged")
	}

	// 5. Analytics on the updated matrix: the shortcut must shrink the
	// diameter or keep it equal, never grow it.
	diaBefore, _ := analytics.DiameterRadius(D, 0)
	diaAfter, _ := analytics.DiameterRadius(res.Dense(), 0)
	if diaAfter > diaBefore+1e-9 {
		t.Fatalf("adding an edge grew the diameter: %g → %g", diaBefore, diaAfter)
	}

	// 6. Path reconstruction on the updated result still yields real
	// paths with matching weights.
	path, ok := res.Path(0, g.N-1)
	if !ok || len(path) != 2 {
		t.Fatalf("expected the new direct edge as the path, got %v", path)
	}
}

func TestIntegrationDegenerateShapes(t *testing.T) {
	cases := map[string]*graph.Graph{
		"single edge":  graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: 3}}),
		"two isolated": graph.MustFromEdges(2, nil),
		"complete K8":  gen.ErdosRenyi(8, 7, gen.WeightUniform, 1), // near-complete
		"star":         starGraph(30),
		"zero weights": graph.MustFromEdges(4, []graph.Edge{
			{U: 0, V: 1, W: 0}, {U: 1, V: 2, W: 0}, {U: 2, V: 3, W: 1},
		}),
		"parallel-ish": graph.MustFromEdges(3, []graph.Edge{
			{U: 0, V: 1, W: 5}, {U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 1},
		}),
	}
	for name, g := range cases {
		want := core.Closure(g.ToDense())
		res, err := Solve(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Dense().EqualTol(want, 1e-12) {
			t.Errorf("%s: solve mismatch", name)
		}
		// Factor path too.
		plan, err := NewPlan(g, DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f, err := NewFactor(plan, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for src := 0; src < g.N; src++ {
			row := f.SSSP(src)
			for v := 0; v < g.N; v++ {
				x, y := row[v], want.At(src, v)
				if x != y && !(math.IsInf(x, 1) && math.IsInf(y, 1)) {
					t.Errorf("%s: factor SSSP(%d)[%d] = %g, want %g", name, src, v, x, y)
				}
			}
		}
	}
}

func starGraph(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: i, W: float64(i)})
	}
	return graph.MustFromEdges(n, edges)
}

func TestIntegrationAllOrderingsAllSemirings(t *testing.T) {
	if testing.Short() {
		t.Skip("combinatorial sweep")
	}
	g := gen.GeometricKNN(200, 2, 3, gen.WeightUniform, 9)
	wantSP := core.Closure(g.ToDense())
	for _, ok := range []core.OrderingKind{core.OrderND, core.OrderBFS, core.OrderRCM, core.OrderNatural, core.OrderMinDegree} {
		for _, exact := range []bool{false, true} {
			opts := core.Options{Ordering: ok, ExactReach: exact, EtreeParallel: true, Threads: 2}
			plan, err := NewPlan(g, opts)
			if err != nil {
				t.Fatalf("%v/%v: %v", ok, exact, err)
			}
			res, err := plan.Solve()
			if err != nil {
				t.Fatalf("%v/%v: %v", ok, exact, err)
			}
			if !res.Dense().EqualTol(wantSP, 1e-9) {
				t.Errorf("ordering=%v exact=%v: mismatch", ok, exact)
			}
		}
	}
}
