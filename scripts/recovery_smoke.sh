#!/usr/bin/env bash
# recovery_smoke.sh — crash-recovery smoke for the durable serving stack.
#
# Boots two apspserve workers in durable mode (-statedir: write-ahead
# update journal + factor checkpoint) behind an apspshard coordinator
# that journals committed update transactions (-statedir too). Drives a
# queryload storm, commits an update, SIGKILLs worker 2 mid-storm,
# commits a second update while it is dead, then restarts worker 2 from
# its state dir. Asserts the contract the durability layer sells:
#
#   1. the storm finishes with ZERO dropped queries across both the
#      update swap and the worker death;
#   2. the restarted worker recovers its own last committed generation
#      from checkpoint + journal replay (warm boot at generation 2, not
#      1 and not 3);
#   3. the coordinator refuses to re-admit it on vertex count alone
#      (stale_holds >= 1), streams it the journaled batch it missed
#      (batches_streamed >= 1), and re-admits it only at the expected
#      generation;
#   4. the cluster converges: expected_generation = 3, every worker's
#      /health reports generation 3, and sampled distances — including
#      the updated edge — are bit-identical across workers.
#
# Run via `make recovery-smoke`. Needs only the go toolchain and curl.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}
GRAPH=${GRAPH:-powergrid_s}
BASE_PORT=${BASE_PORT:-18280}
STORM_QUERIES=${STORM_QUERIES:-60000}

TMP=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "recovery-smoke FAIL: $*" >&2
    echo "--- coordinator log ---" >&2; cat "$TMP/coord.log" >&2 || true
    for i in 1 2; do
        echo "--- worker $i log ---" >&2; cat "$TMP/w$i.log" >&2 || true
    done
    exit 1
}

# Poll URL until it answers 200 or the deadline passes.
wait_ready() { # url what deadline_sec
    local url=$1 what=$2 deadline=${3:-60}
    for _ in $(seq 1 $((deadline * 2))); do
        if curl -fsS -o /dev/null --max-time 2 "$url" 2>/dev/null; then
            return 0
        fi
        sleep 0.5
    done
    fail "$what not ready after ${deadline}s ($url)"
}

# Extract an integer counter from the coordinator's /metrics JSON. A
# name can occur per-shard and globally (e.g. stale_holds); take the
# max, which for counters is the cluster-wide value.
metric() { # name
    curl -fsS --max-time 2 "http://127.0.0.1:$BASE_PORT/metrics" |
        grep -o "\"$1\":[0-9]*" | cut -d: -f2 | sort -n | tail -1
}

wait_metric_ge() { # name want deadline_sec
    local name=$1 want=$2 deadline=${3:-30} got=0
    for _ in $(seq 1 $((deadline * 2))); do
        got=$(metric "$name" || echo 0)
        if [ "${got:-0}" -ge "$want" ]; then
            return 0
        fi
        sleep 0.5
    done
    fail "coordinator metric $name = ${got:-?}, want >= $want after ${deadline}s"
}

worker_generation() { # idx
    curl -fsS --max-time 2 "http://127.0.0.1:$((BASE_PORT + $1))/health" |
        grep -o '"generation":[0-9]*' | head -1 | cut -d: -f2
}

wait_worker_gen() { # idx want deadline_sec
    local i=$1 want=$2 deadline=${3:-30} got=
    for _ in $(seq 1 $((deadline * 2))); do
        got=$(worker_generation "$i" || echo "")
        if [ "${got:-0}" = "$want" ]; then
            return 0
        fi
        sleep 0.5
    done
    fail "worker $i generation = ${got:-?}, want $want after ${deadline}s"
}

echo "== recovery-smoke: building binaries"
$GO build -o "$TMP/apspserve" ./cmd/apspserve
$GO build -o "$TMP/apspshard" ./cmd/apspshard
$GO build -o "$TMP/queryload" ./cmd/queryload

start_worker() { # idx
    local i=$1 port=$((BASE_PORT + $1))
    "$TMP/apspserve" -graph "$GRAPH" -quick -statedir "$TMP/w${i}state" \
        -shard-id "w$i" -addr "127.0.0.1:$port" \
        >>"$TMP/w$i.log" 2>&1 &
    PIDS+=($!)
    eval "W${i}_PID=$!"
}

echo "== recovery-smoke: booting 2 durable workers (-statedir)"
start_worker 1
start_worker 2
wait_ready "http://127.0.0.1:$((BASE_PORT + 1))/readyz" "worker 1" 120
wait_ready "http://127.0.0.1:$((BASE_PORT + 2))/readyz" "worker 2" 120
for i in 1 2; do
    GEN=$(worker_generation "$i")
    [ "$GEN" = "1" ] || fail "worker $i boot generation = $GEN, want 1"
done

echo "== recovery-smoke: starting journaling coordinator (-statedir)"
WORKER_URLS="http://127.0.0.1:$((BASE_PORT + 1)),http://127.0.0.1:$((BASE_PORT + 2))"
"$TMP/apspshard" -addr "127.0.0.1:$BASE_PORT" -workers "$WORKER_URLS" \
    -statedir "$TMP/coordstate" -probe-interval 250ms -fail-threshold 2 \
    >"$TMP/coord.log" 2>&1 &
PIDS+=($!)
wait_ready "http://127.0.0.1:$BASE_PORT/readyz" "coordinator"

echo "== recovery-smoke: update 1 (journaled, both workers)"
RESP=$(curl -fsS -X POST "http://127.0.0.1:$BASE_PORT/admin/update" \
    -H 'Content-Type: application/json' \
    -d '{"edges":[{"u":0,"v":1,"w":0.002}]}') || fail "update 1 failed"
echo "   update 1 response: $RESP"
echo "$RESP" | grep -q '"updated":true' || fail "update 1 not applied: $RESP"
echo "$RESP" | grep -q '"generation":2' || fail "update 1 generation: $RESP"

echo "== recovery-smoke: queryload storm, SIGKILL w2 mid-storm"
"$TMP/queryload" -url "http://127.0.0.1:$BASE_PORT" \
    -queries "$STORM_QUERIES" -workers 8 >"$TMP/storm.log" 2>&1 &
STORM_PID=$!
PIDS+=($STORM_PID)
sleep 1
kill -0 "$STORM_PID" 2>/dev/null || fail "storm finished before the kill — raise STORM_QUERIES"
kill -9 "$W2_PID"
echo "   killed worker 2 (pid $W2_PID)"
wait_metric_ge failovers 1 15

echo "== recovery-smoke: update 2 while w2 is dead (journaled, alive-only)"
RESP=$(curl -fsS -X POST "http://127.0.0.1:$BASE_PORT/admin/update" \
    -H 'Content-Type: application/json' \
    -d '{"edges":[{"u":0,"v":1,"w":0.001}]}') || fail "update 2 failed"
echo "   update 2 response: $RESP"
echo "$RESP" | grep -q '"updated":true' || fail "update 2 not applied: $RESP"
echo "$RESP" | grep -q '"generation":3' || fail "update 2 generation: $RESP"

if ! wait "$STORM_PID"; then
    cat "$TMP/storm.log" >&2
    fail "queryload storm exited non-zero across the death + update"
fi
cat "$TMP/storm.log"
DROPPED=$(grep -Eo '[0-9]+ queries dropped' "$TMP/storm.log" | grep -Eo '^[0-9]+' || echo 0)
[ "$DROPPED" -eq 0 ] || fail "$DROPPED queries dropped, want 0"

echo "== recovery-smoke: restarting w2 from its state dir"
start_worker 2
wait_ready "http://127.0.0.1:$((BASE_PORT + 2))/readyz" "restarted worker 2" 120
grep -q "generation 2 (warm=true)" "$TMP/w2.log" ||
    fail "restarted worker 2 did not recover generation 2 warm from checkpoint + journal"

echo "== recovery-smoke: waiting for generation-gated re-admission"
wait_metric_ge stale_holds 1 30
wait_metric_ge batches_streamed 1 30
wait_worker_gen 2 3 30
wait_metric_ge readmissions 1 30
EXPECTED=$(metric expected_generation)
[ "$EXPECTED" = "3" ] || fail "expected_generation = $EXPECTED, want 3"
ALIVE=$(curl -fsS "http://127.0.0.1:$BASE_PORT/metrics" | grep -o '"alive":true' | wc -l)
[ "$ALIVE" -eq 2 ] || fail "only $ALIVE/2 shards alive after recovery"

echo "== recovery-smoke: bit-identical sampled distances across workers"
for pair in "0 1" "0 50" "3 77" "10 42"; do
    set -- $pair
    D1=$(curl -fsS "http://127.0.0.1:$((BASE_PORT + 1))/dist?u=$1&v=$2")
    D2=$(curl -fsS "http://127.0.0.1:$((BASE_PORT + 2))/dist?u=$1&v=$2")
    [ "$D1" = "$D2" ] || fail "dist($1,$2) diverges after recovery: w1=$D1 w2=$D2"
done
DIST=$(curl -fsS "http://127.0.0.1:$((BASE_PORT + 2))/dist?u=0&v=1" | grep -o '"dist":[0-9.e+-]*' | cut -d: -f2)
[ "$DIST" = "0.001" ] || fail "recovered worker dist(0,1) = $DIST, want the streamed update's 0.001"

echo "recovery-smoke OK: zero drops, w2 recovered at gen 2, held stale ($(metric stale_holds) holds), streamed $(metric batches_streamed) batch(es), converged at expected_generation=$(metric expected_generation)"
