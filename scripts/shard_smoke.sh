#!/usr/bin/env bash
# shard_smoke.sh — chaos smoke for the sharded serving stack.
#
# Boots three apspserve workers warm-booted from one shared factor
# checkpoint, fronts them with an apspshard coordinator, and drives a
# queryload storm through the coordinator while SIGKILLing one worker
# mid-storm. Asserts the contract the coordinator sells:
#
#   1. the storm finishes with ZERO dropped queries — the replica
#      absorbs the death via inline retry, clients pay latency only;
#   2. the coordinator's prober notices the death (failovers >= 1);
#   3. the restarted worker rejoins warm from the checkpoint and is
#      re-admitted (readmissions >= 1, all shards alive again);
#   4. a final multi-target run through coordinator + all workers
#      answers clean.
#
# Run via `make shard-smoke`. Needs only the go toolchain and curl.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}
GRAPH=${GRAPH:-powergrid_s}
BASE_PORT=${BASE_PORT:-18080}
STORM_QUERIES=${STORM_QUERIES:-60000}

TMP=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "shard-smoke FAIL: $*" >&2
    echo "--- coordinator log ---" >&2; cat "$TMP/coord.log" >&2 || true
    for i in 1 2 3; do
        echo "--- worker $i log ---" >&2; cat "$TMP/w$i.log" >&2 || true
    done
    exit 1
}

# Poll URL until it answers 200 or the deadline passes.
wait_ready() { # url what deadline_sec
    local url=$1 what=$2 deadline=${3:-60}
    for _ in $(seq 1 $((deadline * 2))); do
        if curl -fsS -o /dev/null --max-time 2 "$url" 2>/dev/null; then
            return 0
        fi
        sleep 0.5
    done
    fail "$what not ready after ${deadline}s ($url)"
}

# Extract an integer counter from the coordinator's /metrics JSON.
metric() { # name
    curl -fsS --max-time 2 "http://127.0.0.1:$BASE_PORT/metrics" |
        grep -o "\"$1\":[0-9]*" | head -1 | cut -d: -f2
}

wait_metric_ge() { # name want deadline_sec
    local name=$1 want=$2 deadline=${3:-30} got=0
    for _ in $(seq 1 $((deadline * 2))); do
        got=$(metric "$name" || echo 0)
        if [ "${got:-0}" -ge "$want" ]; then
            return 0
        fi
        sleep 0.5
    done
    fail "coordinator metric $name = ${got:-?}, want >= $want after ${deadline}s"
}

echo "== shard-smoke: building binaries"
$GO build -o "$TMP/apspserve" ./cmd/apspserve
$GO build -o "$TMP/apspshard" ./cmd/apspshard
$GO build -o "$TMP/queryload" ./cmd/queryload

CKPT="$TMP/factor.sfwf"
start_worker() { # idx
    local i=$1 port=$((BASE_PORT + $1))
    "$TMP/apspserve" -graph "$GRAPH" -quick -factorcache "$CKPT" \
        -shard-id "w$i" -addr "127.0.0.1:$port" \
        >>"$TMP/w$i.log" 2>&1 &
    PIDS+=($!)
    eval "W${i}_PID=$!"
}

# Worker 1 boots first: it builds the factor and writes the shared
# checkpoint. Workers 2 and 3 then boot WARM from that checkpoint —
# their logs must prove it, or the rejoin leg of this test is vacuous.
echo "== shard-smoke: booting 3 workers from one checkpoint"
start_worker 1
wait_ready "http://127.0.0.1:$((BASE_PORT + 1))/readyz" "worker 1" 120
[ -f "$CKPT" ] || fail "worker 1 ready but wrote no checkpoint at $CKPT"
start_worker 2
start_worker 3
wait_ready "http://127.0.0.1:$((BASE_PORT + 2))/readyz" "worker 2"
wait_ready "http://127.0.0.1:$((BASE_PORT + 3))/readyz" "worker 3"
for i in 2 3; do
    grep -q "restored factor from cache" "$TMP/w$i.log" ||
        fail "worker $i did not boot warm from the checkpoint"
done

echo "== shard-smoke: starting coordinator"
WORKER_URLS="http://127.0.0.1:$((BASE_PORT + 1)),http://127.0.0.1:$((BASE_PORT + 2)),http://127.0.0.1:$((BASE_PORT + 3))"
"$TMP/apspshard" -addr "127.0.0.1:$BASE_PORT" -workers "$WORKER_URLS" \
    -probe-interval 250ms -fail-threshold 2 \
    >"$TMP/coord.log" 2>&1 &
PIDS+=($!)
wait_ready "http://127.0.0.1:$BASE_PORT/readyz" "coordinator"

echo "== shard-smoke: queryload storm through the coordinator, SIGKILL w2 mid-storm"
"$TMP/queryload" -url "http://127.0.0.1:$BASE_PORT" \
    -queries "$STORM_QUERIES" -workers 8 >"$TMP/storm.log" 2>&1 &
STORM_PID=$!
PIDS+=($STORM_PID)
sleep 1
kill -0 "$STORM_PID" 2>/dev/null || fail "storm finished before the kill — raise STORM_QUERIES"
kill -9 "$W2_PID"
echo "   killed worker 2 (pid $W2_PID)"
if ! wait "$STORM_PID"; then
    cat "$TMP/storm.log" >&2
    fail "queryload storm exited non-zero across the worker death"
fi
cat "$TMP/storm.log"

# Zero post-retry failures: the storm may retry, it must not drop.
DROPPED=$(grep -Eo '[0-9]+ queries dropped' "$TMP/storm.log" | grep -Eo '^[0-9]+' || echo 0)
[ "$DROPPED" -eq 0 ] || fail "$DROPPED queries dropped during failover, want 0"

echo "== shard-smoke: waiting for the prober to record the failover"
wait_metric_ge failovers 1 15

echo "== shard-smoke: restarting worker 2 from the checkpoint"
start_worker 2
wait_ready "http://127.0.0.1:$((BASE_PORT + 2))/readyz" "restarted worker 2"
grep -q "restored factor from cache" "$TMP/w2.log" ||
    fail "restarted worker 2 did not boot warm from the checkpoint"
wait_metric_ge readmissions 1 15
ALIVE=$(curl -fsS "http://127.0.0.1:$BASE_PORT/metrics" | grep -o '"alive":true' | wc -l)
[ "$ALIVE" -eq 3 ] || fail "only $ALIVE/3 shards alive after rejoin"

echo "== shard-smoke: final multi-target validation run"
"$TMP/queryload" -targets "http://127.0.0.1:$BASE_PORT,$WORKER_URLS" \
    -queries 4000 -workers 4 >"$TMP/final.log" 2>&1 ||
    { cat "$TMP/final.log" >&2; fail "multi-target validation run failed"; }
cat "$TMP/final.log"
DROPPED=$(grep -Eo '[0-9]+ queries dropped' "$TMP/final.log" | grep -Eo '^[0-9]+' || echo 0)
[ "$DROPPED" -eq 0 ] || fail "$DROPPED queries dropped in the validation run, want 0"

echo "shard-smoke OK: failovers=$(metric failovers) readmissions=$(metric readmissions) generation=$(metric generation)"
