#!/usr/bin/env bash
# update_smoke.sh — end-to-end smoke for the live-update subsystem.
#
# Boots two apspserve workers (each building its own factor with a live
# updater attached), fronts them with an apspshard coordinator, and
# drives a queryload storm through the coordinator while a
# POST /admin/update lands mid-storm. Asserts the contract the
# update path sells:
#
#   1. the storm finishes with ZERO dropped queries — the snapshot swap
#      never takes the old factor out from under an in-flight reader;
#   2. the update converges: the coordinator reports converged=true and
#      every worker's /health shows the same advanced generation;
#   3. queries after the swap see the new edge weight;
#   4. the `update` bench experiment confirms the acceptance gate: a
#      decrease-only batch patches with p50 latency >= 20x faster than
#      a full rebuild on the bench graph (road_l).
#
# Run via `make update-smoke`. Needs only the go toolchain and curl.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}
GRAPH=${GRAPH:-powergrid_s}
BASE_PORT=${BASE_PORT:-18180}
STORM_QUERIES=${STORM_QUERIES:-60000}
MIN_SPEEDUP=${MIN_SPEEDUP:-20}

TMP=$(mktemp -d)
PIDS=()
cleanup() {
    for pid in "${PIDS[@]:-}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

fail() {
    echo "update-smoke FAIL: $*" >&2
    echo "--- coordinator log ---" >&2; cat "$TMP/coord.log" >&2 || true
    for i in 1 2; do
        echo "--- worker $i log ---" >&2; cat "$TMP/w$i.log" >&2 || true
    done
    exit 1
}

# Poll URL until it answers 200 or the deadline passes.
wait_ready() { # url what deadline_sec
    local url=$1 what=$2 deadline=${3:-60}
    for _ in $(seq 1 $((deadline * 2))); do
        if curl -fsS -o /dev/null --max-time 2 "$url" 2>/dev/null; then
            return 0
        fi
        sleep 0.5
    done
    fail "$what not ready after ${deadline}s ($url)"
}

worker_generation() { # idx
    curl -fsS --max-time 2 "http://127.0.0.1:$((BASE_PORT + $1))/health" |
        grep -o '"generation":[0-9]*' | head -1 | cut -d: -f2
}

echo "== update-smoke: building binaries"
$GO build -o "$TMP/apspserve" ./cmd/apspserve
$GO build -o "$TMP/apspshard" ./cmd/apspshard
$GO build -o "$TMP/queryload" ./cmd/queryload
$GO build -o "$TMP/apspbench" ./cmd/apspbench

echo "== update-smoke: booting 2 workers with live updaters"
for i in 1 2; do
    "$TMP/apspserve" -graph "$GRAPH" -quick \
        -shard-id "w$i" -addr "127.0.0.1:$((BASE_PORT + i))" \
        >"$TMP/w$i.log" 2>&1 &
    PIDS+=($!)
done
wait_ready "http://127.0.0.1:$((BASE_PORT + 1))/readyz" "worker 1" 120
wait_ready "http://127.0.0.1:$((BASE_PORT + 2))/readyz" "worker 2" 120
for i in 1 2; do
    GEN=$(worker_generation "$i")
    [ "$GEN" = "1" ] || fail "worker $i boot generation = $GEN, want 1"
done

echo "== update-smoke: starting coordinator"
WORKER_URLS="http://127.0.0.1:$((BASE_PORT + 1)),http://127.0.0.1:$((BASE_PORT + 2))"
"$TMP/apspshard" -addr "127.0.0.1:$BASE_PORT" -workers "$WORKER_URLS" \
    >"$TMP/coord.log" 2>&1 &
PIDS+=($!)
wait_ready "http://127.0.0.1:$BASE_PORT/readyz" "coordinator"

echo "== update-smoke: queryload storm through the coordinator, update lands mid-storm"
"$TMP/queryload" -url "http://127.0.0.1:$BASE_PORT" \
    -queries "$STORM_QUERIES" -workers 8 >"$TMP/storm.log" 2>&1 &
STORM_PID=$!
PIDS+=($STORM_PID)
sleep 1
kill -0 "$STORM_PID" 2>/dev/null || fail "storm finished before the update — raise STORM_QUERIES"

# A 1-edge decrease batch fanned to every worker two-phase. The tiny
# quick-mode graph may well fall back to a full rebuild internally —
# this leg tests the serving protocol (atomicity, generations, zero
# drops); the >=20x patch gate is checked by the bench leg below.
UPDATE_RESP=$(curl -fsS -X POST "http://127.0.0.1:$BASE_PORT/admin/update" \
    -H 'Content-Type: application/json' \
    -d '{"edges":[{"u":0,"v":1,"w":0.001}]}') ||
    fail "POST /admin/update through the coordinator failed"
echo "   update response: $UPDATE_RESP"
echo "$UPDATE_RESP" | grep -q '"updated":true' || fail "update not applied: $UPDATE_RESP"
echo "$UPDATE_RESP" | grep -q '"converged":true' || fail "update did not converge: $UPDATE_RESP"

if ! wait "$STORM_PID"; then
    cat "$TMP/storm.log" >&2
    fail "queryload storm exited non-zero across the update swap"
fi
cat "$TMP/storm.log"
DROPPED=$(grep -Eo '[0-9]+ queries dropped' "$TMP/storm.log" | grep -Eo '^[0-9]+' || echo 0)
[ "$DROPPED" -eq 0 ] || fail "$DROPPED queries dropped during the update swap, want 0"

echo "== update-smoke: verifying generation convergence and the new weight"
for i in 1 2; do
    GEN=$(worker_generation "$i")
    [ "$GEN" = "2" ] || fail "worker $i generation = $GEN after update, want 2"
done
DIST=$(curl -fsS "http://127.0.0.1:$BASE_PORT/dist?u=0&v=1" | grep -o '"dist":[0-9.e+-]*' | cut -d: -f2)
[ "$DIST" = "0.001" ] || fail "dist(0,1) = $DIST after update, want 0.001"

echo "== update-smoke: bench gate — decrease-only patch >= ${MIN_SPEEDUP}x faster than rebuild"
BENCH_UPDATE_OUT="$TMP/BENCH_update.json" "$TMP/apspbench" -exp update -quick \
    >"$TMP/bench.log" 2>&1 || { cat "$TMP/bench.log" >&2; fail "update bench run failed"; }
SPEEDUP=$(awk '/"graph": "road_l"/{g=1} g && /"mode"/{d=($0 ~ /"decrease"/)} g && d && /"speedup"/{gsub(/,/,""); print $2; exit}' \
    "$TMP/BENCH_update.json")
[ -n "$SPEEDUP" ] || { cat "$TMP/BENCH_update.json" >&2; fail "no road_l decrease row in BENCH_update.json"; }
awk -v s="$SPEEDUP" -v min="$MIN_SPEEDUP" 'BEGIN{exit !(s + 0 >= min + 0)}' ||
    fail "road_l decrease-only patch speedup = ${SPEEDUP}x, want >= ${MIN_SPEEDUP}x"

echo "update-smoke OK: zero drops, generations converged at 2, road_l decrease patch $(printf '%.1f' "$SPEEDUP")x faster than rebuild"
