// Command apspvet is the repo's static-invariant checker: a vet-style
// multichecker over the analyzers in internal/analyzers.
//
// It speaks the `go vet -vettool` protocol, which is how the Makefile
// and CI run it (type-checked against the exact per-package build
// configuration, with cmd/go caching results):
//
//	go build -o bin/apspvet ./cmd/apspvet
//	go vet -vettool=bin/apspvet ./...
//
// Invoked with package patterns (or no arguments, meaning ./...) it
// loads and checks packages itself, which is convenient for one-off
// local runs:
//
//	go run ./cmd/apspvet ./internal/core
package main

import (
	"repro/internal/analysis"
	"repro/internal/analyzers"
)

func main() {
	analysis.Main(analyzers.Suite...)
}
