// Command apspvet is the repo's static-invariant checker: a vet-style
// multichecker over the analyzers in internal/analyzers.
//
// It speaks the `go vet -vettool` protocol, which is how the Makefile
// and CI run it (type-checked against the exact per-package build
// configuration, with cmd/go caching results):
//
//	go build -o bin/apspvet ./cmd/apspvet
//	go vet -vettool=bin/apspvet ./...
//
// Invoked with package patterns (or no arguments, meaning ./...) it
// loads and checks packages itself, which is convenient for one-off
// local runs and is what the SARIF/baseline modes use:
//
//	go run ./cmd/apspvet ./internal/core
//	bin/apspvet -sarif apspvet.sarif -baseline .apspvet-baseline.json -diff ./...
//	bin/apspvet -baseline .apspvet-baseline.json -writebaseline ./...
//
// -diff reports only findings whose fingerprint is not in the baseline
// (accepted debt lives in the committed .apspvet-baseline.json;
// accepting more is an explicit -writebaseline edit), and -sarif writes
// the complete finding set as SARIF 2.1 for GitHub code scanning.
package main

import (
	"repro/internal/analysis"
	"repro/internal/analyzers"
)

func main() {
	analysis.Main(analyzers.Suite...)
}
