// Command queryload generates skewed (Zipf) point-query load against
// the serving stack and reports throughput, p50/p99 latency, and label
// cache hit rate — the numbers that decide whether the factor can serve
// production traffic.
//
// Two modes:
//
//	queryload -graph road_l                 # in-process: cached vs uncached engine
//	queryload -url http://host:8080         # HTTP: hammer a running apspserve
//
// In-process mode builds the factor and runs the same pair sequence
// through the seed query path (two fresh 2-hop labels per query) and
// through the bounded label cache, printing the speedup. HTTP mode
// measures end-to-end client latency against /dist and scrapes the
// server's /metrics for its cache hit rate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	var (
		graphName = flag.String("graph", "", "catalog graph for in-process mode")
		url       = flag.String("url", "", "base URL of a running apspserve (HTTP mode)")
		quick     = flag.Bool("quick", false, "reduced graph sizes")
		queries   = flag.Int("queries", 50000, "number of point queries")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent query workers")
		zipfS     = flag.Float64("zipf", 1.2, "Zipf exponent (> 1; larger = more skew)")
		cacheSize = flag.Int("cache", 0, "label-cache capacity for in-process mode (0 = default)")
		seed      = flag.Int64("seed", 1234, "workload seed")
		threads   = flag.Int("threads", runtime.GOMAXPROCS(0), "factor build parallelism")
		maxRetry  = flag.Int("max-retries", 5, "retries per query after a 503 shed (HTTP mode; 0 = fail fast)")
	)
	flag.Parse()
	switch {
	case *url != "":
		runHTTP(*url, *queries, *workers, *zipfS, *seed, *maxRetry)
	case *graphName != "":
		runInProcess(*graphName, *quick, *queries, *workers, *zipfS, *cacheSize, *seed, *threads)
	default:
		log.Fatal("need -graph (in-process) or -url (HTTP)")
	}
}

func runInProcess(graphName string, quick bool, queries, workers int, zipfS float64, cacheSize int, seed int64, threads int) {
	e, ok := bench.Find(graphName)
	if !ok {
		log.Fatalf("unknown catalog graph %q", graphName)
	}
	g := e.Build(quick)
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	f, err := core.NewFactor(plan, threads)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("factor for %s: n=%d, %.1f MB, built in %s", graphName, g.N, float64(f.Memory())/1e6, time.Since(t0).Round(time.Millisecond))

	pairs := bench.ZipfPairs(g.N, queries, zipfS, seed)
	uncached := bench.MeasureQueryLoad(f.Dist, pairs, workers)
	cache := core.NewLabelCache(f, cacheSize)
	cached := bench.MeasureQueryLoad(cache.Dist, pairs, workers)
	st := cache.Stats()

	fmt.Printf("workload: %d Zipf(s=%.2f) point queries, %d workers\n", queries, zipfS, uncached.Workers)
	printResult("uncached (seed path)", uncached)
	printResult("label cache", cached)
	fmt.Printf("%-22s %.1f%% hit rate (%d hits / %d misses, %d/%d labels resident)\n",
		"cache:", 100*st.HitRate(), st.Hits, st.Misses, st.Size, st.Cap)
	fmt.Printf("%-22s %.1fx throughput\n", "speedup:", cached.QPS/uncached.QPS)
}

// retryBaseDelay and retryMaxDelay bound the exponential backoff taken
// after a 503 shed: base·2^attempt with full jitter, capped at max. The
// cap keeps a long shed from parking workers for seconds at a time.
const (
	retryBaseDelay = 5 * time.Millisecond
	retryMaxDelay  = 250 * time.Millisecond
)

func runHTTP(base string, queries, workers int, zipfS float64, seed int64, maxRetry int) {
	n := serverVertices(base)
	pairs := bench.ZipfPairs(n, queries, zipfS, seed)
	client := &http.Client{Timeout: 30 * time.Second}
	// A shed (503) is the server protecting itself, not a failure: back
	// off and retry instead of aborting the run, counting retries and
	// exhausted queries separately so shedding stays visible in the
	// report rather than inflating the latency numbers silently.
	var retries, dropped atomic.Uint64
	dist := func(u, v int) float64 {
		for attempt := 0; ; attempt++ {
			resp, err := client.Get(fmt.Sprintf("%s/dist?u=%d&v=%d", base, u, v))
			if err != nil {
				log.Fatalf("query failed: %v", err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				return 0
			case resp.StatusCode == http.StatusServiceUnavailable && attempt < maxRetry:
				retries.Add(1)
				d := retryBaseDelay << attempt
				if d > retryMaxDelay {
					d = retryMaxDelay
				}
				// Full jitter decorrelates the retry wave that a burst of
				// simultaneous sheds would otherwise synchronize.
				time.Sleep(time.Duration(rand.Int63n(int64(d)) + 1))
			case resp.StatusCode == http.StatusServiceUnavailable:
				dropped.Add(1)
				return 0
			default:
				log.Fatalf("query status %d", resp.StatusCode)
			}
		}
	}
	res := bench.MeasureQueryLoad(dist, pairs, workers)
	fmt.Printf("workload: %d Zipf(s=%.2f) point queries against %s, %d workers\n", queries, zipfS, base, res.Workers)
	printResult("end-to-end HTTP", res)
	if r, d := retries.Load(), dropped.Load(); r > 0 || d > 0 {
		fmt.Printf("%-22s %d retries after 503 sheds, %d queries dropped after %d attempts\n",
			"shedding:", r, d, maxRetry+1)
	}
	var m struct {
		CacheHitRate float64 `json:"cache_hit_rate"`
		CacheHits    uint64  `json:"cache_hits"`
		CacheMisses  uint64  `json:"cache_misses"`
	}
	if err := getJSON(client, base+"/metrics", &m); err != nil {
		log.Printf("metrics scrape failed: %v", err)
		return
	}
	fmt.Printf("%-22s %.1f%% hit rate (%d hits / %d misses, server-side)\n",
		"cache:", 100*m.CacheHitRate, m.CacheHits, m.CacheMisses)
}

func serverVertices(base string) int {
	client := &http.Client{Timeout: 10 * time.Second}
	var h struct {
		Vertices int `json:"vertices"`
	}
	if err := getJSON(client, base+"/health", &h); err != nil {
		log.Fatalf("health check failed: %v", err)
	}
	if h.Vertices <= 0 {
		log.Fatalf("server reports %d vertices", h.Vertices)
	}
	return h.Vertices
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func printResult(name string, r bench.QueryLoadResult) {
	fmt.Printf("%-22s %8.0f qps   p50 %-10s p99 %-10s (%d queries in %s)\n",
		name+":", r.QPS, r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.Queries, r.Elapsed.Round(time.Millisecond))
}
