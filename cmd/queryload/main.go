// Command queryload generates skewed (Zipf) point-query load against
// the serving stack and reports throughput, p50/p99 latency, and label
// cache hit rate — the numbers that decide whether the factor can serve
// production traffic.
//
// Three modes:
//
//	queryload -graph road_l                 # in-process: cached vs uncached engine
//	queryload -url http://host:8080         # HTTP: hammer a running apspserve
//	queryload -targets http://c:8080,http://w1:8081
//	                                        # HTTP: spread load across several
//	                                        # servers (coordinator + workers)
//
// In-process mode builds the factor and runs the same pair sequence
// through the seed query path (two fresh 2-hop labels per query) and
// through the bounded label cache, printing the speedup. HTTP mode
// measures end-to-end client latency against /dist and scrapes the
// server's /metrics for its cache hit rate. Multi-target mode
// round-robins queries across the listed base URLs and reports
// per-target request/error/latency stats alongside the aggregate —
// useful for hitting an apspshard coordinator and its workers directly
// in the same run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
)

func main() {
	var (
		graphName = flag.String("graph", "", "catalog graph for in-process mode")
		url       = flag.String("url", "", "base URL of a running apspserve (HTTP mode)")
		targets   = flag.String("targets", "", "comma-separated base URLs; round-robin load with per-target stats")
		quick     = flag.Bool("quick", false, "reduced graph sizes")
		queries   = flag.Int("queries", 50000, "number of point queries")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent query workers")
		zipfS     = flag.Float64("zipf", 1.2, "Zipf exponent (> 1; larger = more skew)")
		cacheSize = flag.Int("cache", 0, "label-cache capacity for in-process mode (0 = default)")
		seed      = flag.Int64("seed", 1234, "workload seed")
		threads   = flag.Int("threads", runtime.GOMAXPROCS(0), "factor build parallelism")
		maxRetry  = flag.Int("max-retries", 5, "retries per query after a 503 shed (HTTP mode; 0 = fail fast)")
	)
	flag.Parse()
	switch {
	case *targets != "":
		runHTTP(splitTargets(*targets), *queries, *workers, *zipfS, *seed, *maxRetry)
	case *url != "":
		runHTTP([]string{strings.TrimRight(*url, "/")}, *queries, *workers, *zipfS, *seed, *maxRetry)
	case *graphName != "":
		runInProcess(*graphName, *quick, *queries, *workers, *zipfS, *cacheSize, *seed, *threads)
	default:
		log.Fatal("need -graph (in-process), -url (HTTP), or -targets (multi-target HTTP)")
	}
}

func splitTargets(list string) []string {
	var out []string
	for _, t := range strings.Split(list, ",") {
		t = strings.TrimRight(strings.TrimSpace(t), "/")
		if t != "" {
			out = append(out, t)
		}
	}
	if len(out) == 0 {
		log.Fatal("-targets given but no base URLs parsed")
	}
	return out
}

func runInProcess(graphName string, quick bool, queries, workers int, zipfS float64, cacheSize int, seed int64, threads int) {
	e, ok := bench.Find(graphName)
	if !ok {
		log.Fatalf("unknown catalog graph %q", graphName)
	}
	g := e.Build(quick)
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	f, err := core.NewFactor(plan, threads)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("factor for %s: n=%d, %.1f MB, built in %s", graphName, g.N, float64(f.Memory())/1e6, time.Since(t0).Round(time.Millisecond))

	pairs := bench.ZipfPairs(g.N, queries, zipfS, seed)
	uncached := bench.MeasureQueryLoad(f.Dist, pairs, workers)
	cache := core.NewLabelCache(f, cacheSize)
	cached := bench.MeasureQueryLoad(cache.Dist, pairs, workers)
	st := cache.Stats()

	fmt.Printf("workload: %d Zipf(s=%.2f) point queries, %d workers\n", queries, zipfS, uncached.Workers)
	printResult("uncached (seed path)", uncached)
	printResult("label cache", cached)
	fmt.Printf("%-22s %.1f%% hit rate (%d hits / %d misses, %d/%d labels resident)\n",
		"cache:", 100*st.HitRate(), st.Hits, st.Misses, st.Size, st.Cap)
	fmt.Printf("%-22s %.1fx throughput\n", "speedup:", cached.QPS/uncached.QPS)
}

// retryBaseDelay and retryMaxDelay bound the exponential backoff taken
// after a 503 shed: base·2^attempt with full jitter, capped at max. The
// cap keeps a long shed from parking workers for seconds at a time.
const (
	retryBaseDelay = 5 * time.Millisecond
	retryMaxDelay  = 250 * time.Millisecond
)

// targetStats accumulates one base URL's share of a multi-target run.
type targetStats struct {
	requests  atomic.Uint64
	retries   atomic.Uint64
	dropped   atomic.Uint64
	latencyNS atomic.Uint64
}

func runHTTP(bases []string, queries, workers int, zipfS float64, seed int64, maxRetry int) {
	// Every target must serve the same vertex space; a coordinator and
	// its workers do by construction.
	n := serverVertices(bases[0])
	for _, b := range bases[1:] {
		if bn := serverVertices(b); bn != n {
			log.Fatalf("target %s serves %d vertices, %s serves %d — mixed shard sets?", b, bn, bases[0], n)
		}
	}
	pairs := bench.ZipfPairs(n, queries, zipfS, seed)
	client := &http.Client{Timeout: 30 * time.Second}
	stats := make([]*targetStats, len(bases))
	for i := range stats {
		stats[i] = &targetStats{}
	}
	// A shed (503) is the server protecting itself, not a failure: back
	// off and retry instead of aborting the run, counting retries and
	// exhausted queries separately so shedding stays visible in the
	// report rather than inflating the latency numbers silently.
	// Retries stay on the same target: the point of per-target stats is
	// seeing which server shed, not hiding it by hopping elsewhere.
	var rr atomic.Uint64
	dist := func(u, v int) float64 {
		ti := int(rr.Add(1)-1) % len(bases)
		st := stats[ti]
		for attempt := 0; ; attempt++ {
			st.requests.Add(1)
			t0 := time.Now()
			resp, err := client.Get(fmt.Sprintf("%s/dist?u=%d&v=%d", bases[ti], u, v))
			if err != nil {
				log.Fatalf("query against %s failed: %v", bases[ti], err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			st.latencyNS.Add(uint64(time.Since(t0)))
			switch {
			case resp.StatusCode == http.StatusOK:
				return 0
			case resp.StatusCode == http.StatusServiceUnavailable && attempt < maxRetry:
				st.retries.Add(1)
				d := retryBaseDelay << attempt
				if d > retryMaxDelay {
					d = retryMaxDelay
				}
				// Full jitter decorrelates the retry wave that a burst of
				// simultaneous sheds would otherwise synchronize.
				time.Sleep(time.Duration(rand.Int63n(int64(d)) + 1))
			case resp.StatusCode == http.StatusServiceUnavailable:
				st.dropped.Add(1)
				return 0
			default:
				log.Fatalf("query against %s: status %d", bases[ti], resp.StatusCode)
			}
		}
	}
	res := bench.MeasureQueryLoad(dist, pairs, workers)
	fmt.Printf("workload: %d Zipf(s=%.2f) point queries against %d target(s), %d workers\n",
		queries, zipfS, len(bases), res.Workers)
	printResult("end-to-end HTTP", res)
	var retries, dropped uint64
	for _, st := range stats {
		retries += st.retries.Load()
		dropped += st.dropped.Load()
	}
	if retries > 0 || dropped > 0 {
		fmt.Printf("%-22s %d retries after 503 sheds, %d queries dropped after %d attempts\n",
			"shedding:", retries, dropped, maxRetry+1)
	}
	for i, base := range bases {
		st := stats[i]
		reqs := st.requests.Load()
		avg := time.Duration(0)
		if reqs > 0 {
			avg = time.Duration(st.latencyNS.Load() / reqs)
		}
		line := fmt.Sprintf("%-22s %8d reqs  avg %-10s %d retries, %d dropped",
			base+":", reqs, avg.Round(time.Microsecond), st.retries.Load(), st.dropped.Load())
		fmt.Println(line + scrapeSummary(client, base))
	}
}

// scrapeSummary fetches one target's /metrics and summarizes whichever
// shape it has: a worker reports its label-cache hit rate, an apspshard
// coordinator its generation and failover counters.
func scrapeSummary(client *http.Client, base string) string {
	var m struct {
		CacheHitRate float64 `json:"cache_hit_rate"`
		CacheHits    uint64  `json:"cache_hits"`
		CacheMisses  uint64  `json:"cache_misses"`
		Generation   *uint64 `json:"generation"`
		Failovers    uint64  `json:"failovers"`
	}
	if err := getJSON(client, base+"/metrics", &m); err != nil {
		return fmt.Sprintf("  (metrics scrape failed: %v)", err)
	}
	if m.Generation != nil {
		return fmt.Sprintf("  [coordinator: generation %d, %d failovers]", *m.Generation, m.Failovers)
	}
	return fmt.Sprintf("  [cache: %.1f%% hit rate, %d hits / %d misses]",
		100*m.CacheHitRate, m.CacheHits, m.CacheMisses)
}

func serverVertices(base string) int {
	client := &http.Client{Timeout: 10 * time.Second}
	var h struct {
		Vertices int `json:"vertices"`
	}
	if err := getJSON(client, base+"/health", &h); err != nil {
		log.Fatalf("health check failed: %v", err)
	}
	if h.Vertices <= 0 {
		log.Fatalf("server reports %d vertices", h.Vertices)
	}
	return h.Vertices
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func printResult(name string, r bench.QueryLoadResult) {
	fmt.Printf("%-22s %8.0f qps   p50 %-10s p99 %-10s (%d queries in %s)\n",
		name+":", r.QPS, r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
		r.Queries, r.Elapsed.Round(time.Millisecond))
}
