// Command graphgen emits catalog graphs as MatrixMarket files, so the
// test suite can be consumed by external tools (or by superfw -mtx).
//
// Usage:
//
//	graphgen -graph road_m -out road_m.mtx
//	graphgen -all -dir graphs/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bench"
	"repro/internal/graph"
)

func main() {
	var (
		name  = flag.String("graph", "", "catalog graph to emit")
		out   = flag.String("out", "", "output path (default <name>.mtx)")
		all   = flag.Bool("all", false, "emit every catalog graph")
		dir   = flag.String("dir", ".", "output directory for -all")
		quick = flag.Bool("quick", false, "reduced sizes")
	)
	flag.Parse()

	if *all {
		for _, e := range bench.Catalog() {
			path := filepath.Join(*dir, e.Name+".mtx")
			if err := write(e, path, *quick); err != nil {
				fail(err)
			}
			fmt.Println("wrote", path)
		}
		return
	}
	if *name == "" {
		fail(fmt.Errorf("need -graph or -all"))
	}
	e, ok := bench.Find(*name)
	if !ok {
		fail(fmt.Errorf("unknown graph %q", *name))
	}
	path := *out
	if path == "" {
		path = e.Name + ".mtx"
	}
	if err := write(e, path, *quick); err != nil {
		fail(err)
	}
	fmt.Println("wrote", path)
}

func write(e bench.Entry, path string, quick bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return graph.WriteMatrixMarket(f, e.Build(quick))
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
