// Command superfw runs one APSP algorithm on a catalog or MatrixMarket
// graph and reports timings and (optionally) a correctness check against
// Dijkstra.
//
// Usage:
//
//	superfw -graph road_m -algo superfw -threads 4 -check
//	superfw -graph geoknn_s -algo superfw -ordering mindegree -stats
//	superfw -graph road_m -factor -route 0,500
//	superfw -graph rgg2d -widest
//	superfw -mtx graph.mtx -algo dijkstra
//	superfw -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	superfw "repro"
	"repro/internal/apsp"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/semiring"
)

func main() {
	var (
		graphName  = flag.String("graph", "geoknn_s", "catalog graph name (see -list)")
		mtxPath    = flag.String("mtx", "", "load a MatrixMarket file instead of a catalog graph")
		algoName   = flag.String("algo", "superfw", "algorithm: auto superfw superbfs blockedfw naivefw dijkstra boostdijkstra deltastep pathdoubling johnson")
		ordering   = flag.String("ordering", "nd", "SuperFw ordering: nd mindegree bfs rcm natural")
		threads    = flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
		quick      = flag.Bool("quick", false, "use reduced graph sizes")
		check      = flag.Bool("check", false, "validate the result against Dijkstra and APSP invariants")
		stats      = flag.Bool("stats", false, "print symbolic-structure statistics")
		profile    = flag.Bool("profile", false, "print per-stage and per-level numeric timings")
		widest     = flag.Bool("widest", false, "solve widest (max-min bottleneck) paths instead of shortest")
		exact      = flag.Bool("exact", false, "use the exact ancestor block structure instead of Algorithm 3's A(k)")
		factor     = flag.Bool("factor", false, "use the O(fill) supernodal factor instead of the dense solver")
		saveFactor = flag.String("savefactor", "", "with -factor: write the factor to this file")
		loadFactor = flag.String("loadfactor", "", "answer -route from a saved factor file (skips all computation)")
		route      = flag.String("route", "", "u,v: print the shortest route between two vertices (enables path tracking)")
		list       = flag.Bool("list", false, "list catalog graphs and exit")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-14s %-16s %s\n", "NAME", "PAPER ROW", "CLASS")
		for _, e := range bench.Catalog() {
			fmt.Printf("%-14s %-16s %s\n", e.Name, e.PaperRow, e.Class)
		}
		return
	}

	if *loadFactor != "" {
		fh, err := os.Open(*loadFactor)
		if err != nil {
			fail(err)
		}
		defer fh.Close()
		f, err := core.ReadFactor(fh)
		if err != nil {
			fail(err)
		}
		fmt.Printf("factor:   loaded %s (%.1f MB)\n", *loadFactor, float64(f.Memory())/1e6)
		if *route != "" {
			u, v, err := parseRoute(*route)
			if err != nil {
				fail(err)
			}
			fmt.Printf("dist(%d,%d) = %.4f (2-hop label query)\n", u, v, f.Dist(u, v))
		}
		return
	}

	g, err := loadGraph(*graphName, *mtxPath, *quick)
	if err != nil {
		fail(err)
	}
	fmt.Printf("graph: n=%d m=%d avg-degree=%.2f\n", g.N, g.M(), g.AvgDegree())

	if *algoName == "auto" {
		t0 := time.Now()
		D, choice, err := superfw.Auto(g, *threads)
		if err != nil {
			fail(err)
		}
		fmt.Printf("auto:     %s\n", choice)
		fmt.Printf("solve:    %v (threads=%d)\n", time.Since(t0).Round(time.Microsecond), *threads)
		if *check {
			runCheck(g, D, *threads)
		}
		return
	}

	algo, err := apsp.ParseAlgorithm(*algoName)
	if err != nil {
		fail(err)
	}
	if algo != apsp.AlgoSuperFW && algo != apsp.AlgoSuperBFS {
		if *widest || *factor || *route != "" || *ordering != "nd" {
			fail(fmt.Errorf("-widest/-factor/-route/-ordering apply to the superfw family only"))
		}
		t0 := time.Now()
		D, err := apsp.Run(algo, g, *threads)
		if err != nil {
			fail(err)
		}
		fmt.Printf("solve:    %v (threads=%d)\n", time.Since(t0).Round(time.Microsecond), *threads)
		if *check {
			runCheck(g, D, *threads)
		}
		return
	}

	opts := core.DefaultOptions()
	opts.Threads = *threads
	switch {
	case algo == apsp.AlgoSuperBFS:
		opts.Ordering = core.OrderBFS
	default:
		kinds := map[string]core.OrderingKind{
			"nd": core.OrderND, "mindegree": core.OrderMinDegree, "bfs": core.OrderBFS,
			"rcm": core.OrderRCM, "natural": core.OrderNatural,
		}
		k, ok := kinds[*ordering]
		if !ok {
			fail(fmt.Errorf("unknown ordering %q", *ordering))
		}
		opts.Ordering = k
	}
	if *widest {
		opts.Semiring = semiring.MaxMinKernels
	}
	opts.ExactReach = *exact
	var routeUV [2]int
	if *route != "" {
		u, v, err := parseRoute(*route)
		if err != nil || u >= g.N || v >= g.N {
			fail(fmt.Errorf("bad -route %q", *route))
		}
		routeUV = [2]int{u, v}
		// The factor answers distance queries via labels; full route
		// reconstruction needs the dense solver's next-hop matrix.
		opts.TrackPaths = !*factor
	}

	plan, err := core.NewPlan(g, opts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("symbolic: ordering=%v semiring=%s order=%v symbolic=%v\n",
		opts.Ordering, plan.Opts.Semiring.Name,
		plan.OrderTime.Round(time.Microsecond), plan.SymbolicTime.Round(time.Microsecond))
	if *stats {
		fmt.Println(plan.Stats())
	}

	if *factor {
		f, err := core.NewFactor(plan, *threads)
		if err != nil {
			fail(err)
		}
		dense := int64(8) * int64(g.N) * int64(g.N)
		fmt.Printf("factor:   %v, %.1f MB (dense matrix would be %.1f MB — %.1f× more)\n",
			f.FactorTime.Round(time.Microsecond), float64(f.Memory())/1e6,
			float64(dense)/1e6, float64(dense)/float64(f.Memory()))
		if *saveFactor != "" {
			fh, err := os.Create(*saveFactor)
			if err != nil {
				fail(err)
			}
			if _, err := f.WriteTo(fh); err != nil {
				fail(err)
			}
			if err := fh.Close(); err != nil {
				fail(err)
			}
			fmt.Printf("saved:    %s\n", *saveFactor)
		}
		if *route != "" {
			fmt.Printf("dist(%d,%d) = %.4f (2-hop label query)\n", routeUV[0], routeUV[1], f.Dist(routeUV[0], routeUV[1]))
		}
		return
	}

	var res *core.Result
	if *profile {
		var prof *core.Profile
		res, prof, err = plan.SolveProfiled(*threads, true)
		if err != nil {
			fail(err)
		}
		fmt.Println(prof)
	} else {
		res, err = plan.Solve()
		if err != nil {
			fail(err)
		}
	}
	fmt.Printf("numeric:  %v (threads=%d, etree parallelism on)\n", res.NumericTime.Round(time.Microsecond), *threads)
	if *route != "" {
		path, ok := res.Path(routeUV[0], routeUV[1])
		if !ok {
			fmt.Printf("route %d → %d: unreachable\n", routeUV[0], routeUV[1])
		} else {
			fmt.Printf("route %d → %d: dist %.4f via %v\n", routeUV[0], routeUV[1], res.At(routeUV[0], routeUV[1]), path)
		}
	}
	if *check {
		if *widest {
			fmt.Println("check:    skipped (Dijkstra reference is shortest-path only)")
			return
		}
		runCheck(g, res.Dense(), *threads)
	}
}

func loadGraph(name, mtx string, quick bool) (*graph.Graph, error) {
	if mtx != "" {
		f, err := os.Open(mtx)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadMatrixMarket(f)
	}
	e, ok := bench.Find(name)
	if !ok {
		return nil, fmt.Errorf("unknown catalog graph %q (use -list)", name)
	}
	return e.Build(quick), nil
}

func runCheck(g *graph.Graph, D semiring.Mat, threads int) {
	ref, err := apsp.Dijkstra(g, threads)
	if err != nil {
		fmt.Printf("check:    skipped (%v)\n", err)
		return
	}
	diff := apsp.MaxAbsDiff(D, ref)
	if err := apsp.CheckAPSPInvariants(g, D, 20); err != nil {
		fail(fmt.Errorf("invariant check failed: %w", err))
	}
	fmt.Printf("check:    max |Δ| vs Dijkstra = %.2e, invariants OK\n", diff)
}

func parseRoute(s string) (int, int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-route wants u,v")
	}
	u, err1 := strconv.Atoi(parts[0])
	v, err2 := strconv.Atoi(parts[1])
	if err1 != nil || err2 != nil || u < 0 || v < 0 {
		return 0, 0, fmt.Errorf("bad -route %q", s)
	}
	return u, v, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "superfw:", err)
	os.Exit(1)
}
