// Command apspshard fronts a set of apspserve workers as one sharded
// APSP service: it consistent-hash partitions the vertex space into
// slots, routes each single-vertex query to the worker owning its slot
// (keeping every worker's label cache hot on its own vertex range),
// scatter-gathers POST /dist/batch across shards with per-shard
// deadlines, and fails a dead worker's slots over to their replicas.
//
// Usage:
//
//	apspserve -graph road_l -addr :8081 -factorcache f.sfwf -shard-id w1 -shard-role worker &
//	apspserve -graph road_l -addr :8082 -factorcache f.sfwf -shard-id w2 -shard-role worker &
//	apspserve -graph road_l -addr :8083 -factorcache f.sfwf -shard-id w3 -shard-role worker &
//	apspshard -addr :8080 -workers http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//
// Endpoints (same query surface as one worker, so clients can point at
// either):
//
//	GET  /dist?u=U&v=V     routed to the shard owning u, replica retry
//	POST /dist/batch       scatter-gathered, all-or-nothing
//	GET  /sssp?src=S       routed to the shard owning src
//	GET  /route?u=U&v=V    routed to the shard owning u
//	POST /admin/update     live edge-weight batch fanned to all LIVE workers
//	                       (two-phase, write-ahead journaled with -statedir)
//	GET  /health, /healthz coordinator liveness + generation
//	GET  /readyz           503 unless every vertex range has a live shard
//	GET  /metrics          merged: per-shard health, routing counts, gather latency
//
// Failover: a worker is marked down after -fail-threshold consecutive
// /readyz probe failures; its slots promote to their replicas and the
// routing-table generation advances once. In-flight forwards to a
// just-killed worker retry the replica inline, so a SIGKILL mid-storm
// costs clients latency, not errors. A restarted worker is re-admitted
// only when its probe is green, it reports the same vertex count, AND
// its factor generation matches the cluster's expected generation — a
// worker that recovered an older checkpoint is held out of rotation
// while the anti-entropy loop streams it the journaled batches it
// missed (or resyncs it from a healthy donor's overlay), so stale
// distances are never served.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers    = flag.String("workers", "", "comma-separated worker base URLs (required)")
		slots      = flag.Int("slots", shard.DefaultSlots, "consistent-hash vertex slots")
		probeIvl   = flag.Duration("probe-interval", 250*time.Millisecond, "worker health-probe period")
		probeTO    = flag.Duration("probe-timeout", time.Second, "one /readyz probe deadline")
		failThresh = flag.Int("fail-threshold", 2, "consecutive probe failures before failover")
		forwardTO  = flag.Duration("forward-timeout", 10*time.Second, "forwarded single-vertex query deadline (incl. replica retry)")
		gatherTO   = flag.Duration("gather-timeout", 10*time.Second, "per-shard /dist/batch sub-request deadline")
		discoverTO = flag.Duration("discover-timeout", 30*time.Second, "boot-time wait for all workers to answer /health")
		stateDir   = flag.String("statedir", "", "durable state directory: journal committed update batches so a worker that misses a commit (or the coordinator itself, after a crash) converges to the decided generation")
		noSync     = flag.Bool("statedir-nosync", false, "disable journal fsync in -statedir mode (tests only; crash durability is lost)")
		readTO     = flag.Duration("read-timeout", 15*time.Second, "HTTP read timeout")
		writeTO    = flag.Duration("write-timeout", 60*time.Second, "HTTP write timeout")
		idleTO     = flag.Duration("idle-timeout", 120*time.Second, "HTTP keep-alive idle timeout")
		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "in-flight drain window on shutdown")
	)
	flag.Parse()
	if *workers == "" {
		log.Fatal("need -workers (comma-separated apspserve base URLs)")
	}

	var ws []shard.Worker
	for i, url := range strings.Split(*workers, ",") {
		url = strings.TrimRight(strings.TrimSpace(url), "/")
		if url == "" {
			continue
		}
		ws = append(ws, shard.Worker{ID: fmt.Sprintf("w%d", i+1), URL: url})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	coord, err := shard.New(shard.Options{
		Workers:         ws,
		Slots:           *slots,
		ProbeInterval:   *probeIvl,
		ProbeTimeout:    *probeTO,
		FailThreshold:   *failThresh,
		ForwardTimeout:  *forwardTO,
		GatherTimeout:   *gatherTO,
		DiscoverTimeout: *discoverTO,
		StateDir:        *stateDir,
		JournalNoSync:   *noSync,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()
	log.Printf("coordinator over %d workers, %d vertices, %d slots", len(ws), coord.N(), *slots)

	//lint:ignore nakedgo long-lived probe loop; it exits with ctx at shutdown and touches the routing table only through its locked/atomic API
	go coord.Run(ctx)

	hs := &http.Server{
		Handler:           coord.Handler(),
		ReadTimeout:       *readTO,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
		MaxHeaderBytes:    1 << 20,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("sharding on http://%s; SIGINT/SIGTERM drains and exits", ln.Addr())
	if err := serve.RunServer(ctx, hs, ln, *drainTO); err != nil {
		log.Fatal(err)
	}
	m := coord.Metrics()
	log.Printf("drained cleanly: generation %d, %d failovers, %d readmissions, %d batches gathered",
		m.Generation, m.Failovers, m.Readmissions, m.Gather.Batches)
}
