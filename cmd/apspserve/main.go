// Command apspserve serves shortest-path queries over HTTP from a
// precomputed supernodal factor — the offline-precompute / online-query
// deployment the O(fill) factor enables.
//
// Usage:
//
//	apspserve -graph road_l -addr :8080            # build in-process
//	apspserve -loadfactor road.sfwf -addr :8080    # serve a saved factor
//	apspserve -graph road_m -routes -addr :8080    # also enable /route
//
// Endpoints:
//
//	GET /health
//	GET /dist?u=U&v=V     point-to-point distance (2-hop labels)
//	GET /sssp?src=S       full distance row (etree sweeps)
//	GET /route?u=U&v=V    vertex path (needs -routes)
package main

import (
	"flag"

	"log"
	"net/http"
	"os"
	"runtime"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	var (
		graphName  = flag.String("graph", "", "catalog graph to build and serve")
		loadFactor = flag.String("loadfactor", "", "serve a factor saved by superfw -savefactor")
		quick      = flag.Bool("quick", false, "reduced graph sizes")
		routes     = flag.Bool("routes", false, "also solve densely with path tracking to enable /route")
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		threads    = flag.Int("threads", runtime.GOMAXPROCS(0), "build parallelism")
	)
	flag.Parse()

	var factor *core.Factor
	var result *core.Result
	var n int
	switch {
	case *loadFactor != "":
		fh, err := os.Open(*loadFactor)
		if err != nil {
			log.Fatal(err)
		}
		factor, err = core.ReadFactor(fh)
		fh.Close()
		if err != nil {
			log.Fatal(err)
		}
		n = factor.N()
		log.Printf("loaded factor %s (%.1f MB, %d vertices)", *loadFactor, float64(factor.Memory())/1e6, n)
	case *graphName != "":
		e, ok := bench.Find(*graphName)
		if !ok {
			log.Fatalf("unknown catalog graph %q", *graphName)
		}
		g := e.Build(*quick)
		n = g.N
		plan, err := core.NewPlan(g, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		factor, err = core.NewFactor(plan, *threads)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("built factor for %s: n=%d, %.1f MB", *graphName, n, float64(factor.Memory())/1e6)
		if *routes {
			opts := core.DefaultOptions()
			opts.TrackPaths = true
			plan2, err := core.NewPlan(g, opts)
			if err != nil {
				log.Fatal(err)
			}
			result, err = plan2.Solve()
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("dense path-tracked solve ready (/route enabled)")
		}
	default:
		log.Fatal("need -graph or -loadfactor")
	}

	srv := serve.New(factor, result, n)
	log.Printf("serving on http://%s (try /dist?u=0&v=%d)", *addr, n-1)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
