// Command apspserve serves shortest-path queries over HTTP from a
// precomputed supernodal factor — the offline-precompute / online-query
// deployment the O(fill) factor enables.
//
// Usage:
//
//	apspserve -graph road_l -addr :8080            # build in-process
//	apspserve -loadfactor road.sfwf -addr :8080    # serve a saved factor
//	apspserve -graph road_m -routes -addr :8080    # also enable /route
//
// Endpoints:
//
//	GET  /health
//	GET  /dist?u=U&v=V     point-to-point distance (cached 2-hop labels)
//	POST /dist/batch       many pairs per request: {"pairs":[[u,v],...]}
//	GET  /sssp?src=S       full distance row (etree sweeps, streamed)
//	GET  /route?u=U&v=V    vertex path (needs -routes)
//	GET  /metrics          per-endpoint counters + label-cache stats
//
// The server is configured for production traffic: request timeouts,
// graceful shutdown on SIGINT/SIGTERM that drains in-flight requests,
// a bounded label cache, and an optional in-flight concurrency limit.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/serve"
)

func main() {
	var (
		graphName  = flag.String("graph", "", "catalog graph to build and serve")
		loadFactor = flag.String("loadfactor", "", "serve a factor saved by superfw -savefactor")
		quick      = flag.Bool("quick", false, "reduced graph sizes")
		routes     = flag.Bool("routes", false, "also solve densely with path tracking to enable /route")
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		threads    = flag.Int("threads", runtime.GOMAXPROCS(0), "build parallelism")
		cacheSize  = flag.Int("cache", 0, "label-cache capacity in labels (0 = min(n, 4096))")
		maxFlight  = flag.Int("maxinflight", 0, "max concurrent requests, excess shed with 503 (0 = unlimited)")
		readTO     = flag.Duration("read-timeout", 15*time.Second, "HTTP read timeout")
		writeTO    = flag.Duration("write-timeout", 60*time.Second, "HTTP write timeout (bounds one streamed /sssp row)")
		idleTO     = flag.Duration("idle-timeout", 120*time.Second, "HTTP keep-alive idle timeout")
		drainTO    = flag.Duration("drain-timeout", 30*time.Second, "in-flight drain window on shutdown")
	)
	flag.Parse()

	var factor *core.Factor
	var result *core.Result
	var n int
	switch {
	case *loadFactor != "":
		fh, err := os.Open(*loadFactor)
		if err != nil {
			log.Fatal(err)
		}
		factor, err = core.ReadFactor(fh)
		fh.Close()
		if err != nil {
			log.Fatal(err)
		}
		n = factor.N()
		log.Printf("loaded factor %s (%.1f MB, %d vertices)", *loadFactor, float64(factor.Memory())/1e6, n)
	case *graphName != "":
		e, ok := bench.Find(*graphName)
		if !ok {
			log.Fatalf("unknown catalog graph %q", *graphName)
		}
		g := e.Build(*quick)
		n = g.N
		plan, err := core.NewPlan(g, core.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		factor, err = core.NewFactor(plan, *threads)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("built factor for %s: n=%d, %.1f MB", *graphName, n, float64(factor.Memory())/1e6)
		if *routes {
			opts := core.DefaultOptions()
			opts.TrackPaths = true
			plan2, err := core.NewPlan(g, opts)
			if err != nil {
				log.Fatal(err)
			}
			result, err = plan2.Solve()
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("dense path-tracked solve ready (/route enabled)")
		}
	default:
		log.Fatal("need -graph or -loadfactor")
	}

	srv := serve.New(factor, result, n, serve.Options{
		CacheSize:   *cacheSize,
		MaxInFlight: *maxFlight,
	})
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadTimeout:       *readTO,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
		MaxHeaderBytes:    1 << 20,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	log.Printf("serving on http://%s (try /dist?u=0&v=%d); SIGINT/SIGTERM drains and exits", ln.Addr(), n-1)
	if err := serve.RunServer(ctx, hs, ln, *drainTO); err != nil {
		log.Fatal(err)
	}
	m := srv.Metrics()
	log.Printf("drained cleanly: %d cache hits / %d misses (%.1f%% hit rate)",
		m.CacheHits, m.CacheMisses, 100*m.CacheHitRate)
}
