// Command apspserve serves shortest-path queries over HTTP from a
// precomputed supernodal factor — the offline-precompute / online-query
// deployment the O(fill) factor enables.
//
// Usage:
//
//	apspserve -graph road_l -addr :8080            # build in-process
//	apspserve -loadfactor road.sfwf -addr :8080    # serve a saved factor
//	apspserve -graph road_m -routes -addr :8080    # also enable /route
//	apspserve -graph road_l -factorcache road.sfwf # checkpoint-backed boot
//
// Endpoints:
//
//	GET  /health, /healthz  liveness + factor stats
//	GET  /readyz            readiness (503 while a reload is in progress)
//	GET  /dist?u=U&v=V      point-to-point distance (cached 2-hop labels)
//	POST /dist/batch        many pairs per request: {"pairs":[[u,v],...]}
//	GET  /sssp?src=S        full distance row (etree sweeps, streamed)
//	GET  /route?u=U&v=V     vertex path (needs -routes)
//	POST /admin/reload      rebuild/restore the factor and swap it in
//	POST /admin/update      patch live edge-weight changes into the factor
//	                        (needs -graph; {"edges":[{"u":U,"v":V,"w":W},...]})
//	GET  /metrics           per-endpoint counters + label-cache stats
//
// The server is configured for production traffic: request timeouts,
// graceful shutdown on SIGINT/SIGTERM that drains in-flight requests
// (and cancels a factorization still running at boot), a bounded label
// cache, an optional in-flight concurrency limit with Retry-After on
// sheds, and an optional factor cache so a restart restores the
// checkpointed factor instead of refactorizing. A corrupt checkpoint is
// detected by checksum, logged, and rebuilt from the graph.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/serve"
)

func main() {
	var (
		graphName   = flag.String("graph", "", "catalog graph to build and serve")
		loadFactor  = flag.String("loadfactor", "", "serve a factor saved by superfw -savefactor")
		factorCache = flag.String("factorcache", "", "checkpoint path: restore the factor from it on boot if valid, save after (re)building (needs -graph)")
		stateDir    = flag.String("statedir", "", "durable state directory: journal committed updates, checkpoint the factor, and recover generation-exactly after a crash (needs -graph; excludes -routes/-factorcache/-loadfactor)")
		noSync      = flag.Bool("statedir-nosync", false, "disable journal fsync in -statedir mode (tests only; crash durability is lost)")
		quick       = flag.Bool("quick", false, "reduced graph sizes")
		routes      = flag.Bool("routes", false, "also solve densely with path tracking to enable /route")
		addr        = flag.String("addr", "127.0.0.1:8080", "listen address")
		threads     = flag.Int("threads", runtime.GOMAXPROCS(0), "build parallelism")
		cacheSize   = flag.Int("cache", 0, "label-cache capacity in labels (0 = min(n, 4096))")
		maxFlight   = flag.Int("maxinflight", 0, "max concurrent requests, excess shed with 503 (0 = unlimited)")
		shardID     = flag.String("shard-id", "", "shard identity label for a worker behind apspshard (surfaced in /health and /metrics)")
		shardRole   = flag.String("shard-role", "", "shard role label, e.g. worker (defaults to worker when -shard-id is set)")
		readTO      = flag.Duration("read-timeout", 15*time.Second, "HTTP read timeout")
		writeTO     = flag.Duration("write-timeout", 60*time.Second, "HTTP write timeout (bounds one streamed /sssp row)")
		idleTO      = flag.Duration("idle-timeout", 120*time.Second, "HTTP keep-alive idle timeout")
		drainTO     = flag.Duration("drain-timeout", 30*time.Second, "in-flight drain window on shutdown")
	)
	flag.Parse()

	// The signal context exists before any factorization so that SIGINT
	// during a long boot build cancels it promptly instead of waiting the
	// build out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var factor *core.Factor
	var result *core.Result
	var reload func(ctx context.Context) (*core.Factor, *core.Result, error)
	var updater *core.FactorUpdater
	var durable *serve.Durable
	var initialGen uint64
	var err error
	switch {
	case *stateDir != "":
		// Durable mode: the state dir owns checkpointing (so -factorcache
		// is redundant) and recovery replays updates through the min-plus
		// updater (which a dense path-tracked result cannot follow, so
		// -routes is out).
		if *graphName == "" {
			log.Fatal("-statedir needs -graph (recovery rebuilds from the catalog graph)")
		}
		if *routes || *factorCache != "" || *loadFactor != "" {
			log.Fatal("-statedir excludes -routes, -factorcache, and -loadfactor")
		}
		e, ok := bench.Find(*graphName)
		if !ok {
			log.Fatalf("unknown catalog graph %s", *graphName)
		}
		g := e.Build(*quick)
		durable, err = serve.OpenDurable(ctx, g, serve.DurableOptions{
			Dir:     *stateDir,
			Threads: *threads,
			NoSync:  *noSync,
		})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				log.Fatal("interrupted during boot recovery")
			}
			log.Fatal(err)
		}
		defer durable.Close()
		factor = durable.Factor()
		updater = durable.Updater()
		initialGen = durable.BootGeneration()
		log.Printf("durable state %s: generation %d (warm=%v)", *stateDir, initialGen, durable.WarmBoot())
		reload = func(ctx context.Context) (*core.Factor, *core.Result, error) {
			f, err := durable.Rebuild(ctx)
			return f, nil, err
		}
	case *loadFactor != "":
		// No graph in hand means no live updates: POST /admin/update
		// answers 501 in -loadfactor mode.
		factor, err = core.LoadFactorFile(*loadFactor)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("loaded factor %s (%.1f MB, %d vertices)",
			*loadFactor, float64(factor.Memory())/1e6, factor.N())
		// Reload re-reads the same file, so an operator can drop a new
		// checkpoint in place and swap it in without a restart.
		path := *loadFactor
		reload = func(context.Context) (*core.Factor, *core.Result, error) {
			f, err := core.LoadFactorFile(path)
			return f, nil, err
		}
	case *graphName != "":
		build := newBuilder(*graphName, *quick, *routes, *threads, *factorCache)
		var g *graph.Graph
		factor, result, g, err = build(ctx)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				log.Fatal("interrupted during boot factorization")
			}
			log.Fatal(err)
		}
		updater, err = core.NewFactorUpdater(g, factor, core.UpdaterOptions{Threads: *threads})
		if err != nil {
			log.Fatal(err)
		}
		// A reload rebase discards every previously applied live update:
		// the updater starts composing again from the rebuilt factor.
		reload = func(ctx context.Context) (*core.Factor, *core.Result, error) {
			f, res, g2, err := build(ctx)
			if err != nil {
				return nil, nil, err
			}
			if err := updater.Rebase(g2, f); err != nil {
				return nil, nil, err
			}
			return f, res, nil
		}
	default:
		log.Fatal("need -graph or -loadfactor")
	}
	n := factor.N()

	var shardInfo *serve.ShardIdentity
	if *shardID != "" || *shardRole != "" {
		role := *shardRole
		if role == "" {
			role = "worker"
		}
		shardInfo = &serve.ShardIdentity{ID: *shardID, Role: role}
		log.Printf("shard identity: id=%s role=%s", shardInfo.ID, shardInfo.Role)
	}

	srv := serve.New(factor, result, n, serve.Options{
		CacheSize:         *cacheSize,
		MaxInFlight:       *maxFlight,
		Reload:            reload,
		Shard:             shardInfo,
		Updater:           updater,
		Durable:           durable,
		InitialGeneration: initialGen,
	})
	if durable != nil {
		//lint:ignore nakedgo checkpointer exits on ctx cancel; RunServer below blocks until the same ctx is done
		go srv.RunCheckpointer(ctx)
	}
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadTimeout:       *readTO,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      *writeTO,
		IdleTimeout:       *idleTO,
		MaxHeaderBytes:    1 << 20,
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving on http://%s (try /dist?u=0&v=%d); SIGINT/SIGTERM drains and exits", ln.Addr(), n-1)
	if err := serve.RunServer(ctx, hs, ln, *drainTO); err != nil {
		log.Fatal(err)
	}
	m := srv.Metrics()
	log.Printf("drained cleanly: %d cache hits / %d misses (%.1f%% hit rate)",
		m.CacheHits, m.CacheMisses, 100*m.CacheHitRate)
}

// newBuilder returns the factor source for -graph mode, shared by boot
// and /admin/reload: restore from the factor cache when it holds a valid
// checkpoint, otherwise build from the catalog graph and checkpoint the
// result. The built graph rides along so the caller can (re)base the
// live updater on it. Restore and build both honor ctx cancellation.
func newBuilder(graphName string, quick, routes bool, threads int, cachePath string) func(ctx context.Context) (*core.Factor, *core.Result, *graph.Graph, error) {
	return func(ctx context.Context) (*core.Factor, *core.Result, *graph.Graph, error) {
		e, ok := bench.Find(graphName)
		if !ok {
			return nil, nil, nil, errors.New("unknown catalog graph " + graphName)
		}
		g := e.Build(quick)

		var factor *core.Factor
		if cachePath != "" {
			if f, err := core.LoadFactorFile(cachePath); err == nil && f.N() == g.N {
				log.Printf("restored factor from cache %s (%.1f MB, %d vertices)",
					cachePath, float64(f.Memory())/1e6, f.N())
				factor = f
			} else if err != nil && !errors.Is(err, os.ErrNotExist) {
				// Corrupt or stale checkpoint: the checksum caught it; fall
				// through to a clean rebuild.
				log.Printf("factor cache %s unusable (%v), rebuilding", cachePath, err)
			}
		}
		if factor == nil {
			plan, err := core.NewPlan(g, core.DefaultOptions())
			if err != nil {
				return nil, nil, nil, err
			}
			factor, err = core.NewFactorCtx(ctx, plan, threads)
			if err != nil {
				return nil, nil, nil, err
			}
			log.Printf("built factor for %s: n=%d, %.1f MB", graphName, g.N, float64(factor.Memory())/1e6)
			if cachePath != "" {
				if err := core.SaveFactorFile(cachePath, factor); err != nil {
					log.Printf("warning: could not checkpoint factor to %s: %v", cachePath, err)
				} else {
					log.Printf("checkpointed factor to %s", cachePath)
				}
			}
		}

		var result *core.Result
		if routes {
			opts := core.DefaultOptions()
			opts.TrackPaths = true
			plan2, err := core.NewPlan(g, opts)
			if err != nil {
				return nil, nil, nil, err
			}
			result, err = plan2.SolveCtx(ctx)
			if err != nil {
				return nil, nil, nil, err
			}
			log.Printf("dense path-tracked solve ready (/route enabled)")
		}
		return factor, result, g, nil
	}
}
