package superfw

// One testing.B benchmark family per table/figure of the paper's
// evaluation. These run at reduced ("quick") sizes so `go test -bench=.`
// finishes on a laptop; `cmd/apspbench` regenerates the full-scale
// experiment reports.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/apsp"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/semiring"
)

// BenchmarkSemiringGemm measures the min-plus GEMM kernel (§5.1.2): the
// throughput that bounds every FW-family algorithm.
func BenchmarkSemiringGemm(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			A := gen.ErdosRenyi(n, float64(n)/4, gen.WeightUniform, 1).ToDense()
			B := gen.ErdosRenyi(n, float64(n)/4, gen.WeightUniform, 2).ToDense()
			C := semiring.NewInfMat(n, n)
			b.SetBytes(int64(3 * n * n * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				semiring.MinPlusMulAdd(C, A, B)
			}
			b.ReportMetric(2*float64(n)*float64(n)*float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e9, "Gflop/s")
		})
	}
}

// BenchmarkDiagKernel measures the dense FW kernel used by DiagUpdate.
func BenchmarkDiagKernel(b *testing.B) {
	for _, n := range []int{64, 128} {
		b.Run(fmt.Sprintf("fw/n=%d", n), func(b *testing.B) {
			src := gen.ErdosRenyi(n, 8, gen.WeightUniform, 3).ToDense()
			work := semiring.NewMat(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work.Copy(src)
				semiring.FloydWarshall(work)
			}
		})
		b.Run(fmt.Sprintf("blocked/n=%d", n), func(b *testing.B) {
			src := gen.ErdosRenyi(n, 8, gen.WeightUniform, 3).ToDense()
			work := semiring.NewMat(n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				work.Copy(src)
				semiring.BlockedFloydWarshall(work, 32)
			}
		})
	}
}

// benchGraph builds a catalog entry at quick scale.
func benchGraph(b *testing.B, name string) *Graph {
	b.Helper()
	e, ok := bench.Find(name)
	if !ok {
		b.Fatalf("unknown catalog graph %q", name)
	}
	return e.Build(true)
}

// BenchmarkTable2WorkScaling measures the symbolic phase that produces
// Table 2's W(n) counts: nested dissection + supernode extraction on
// grids of growing size (the numeric counts themselves are exact and
// printed by cmd/apspbench -exp table2).
func BenchmarkTable2WorkScaling(b *testing.B) {
	for _, s := range []int{16, 24, 32} {
		b.Run(fmt.Sprintf("grid=%dx%d", s, s), func(b *testing.B) {
			g := gen.Grid2D(s, s, gen.WeightUniform, 4)
			ord := order.GridND(s, s, 32)
			b.ResetTimer()
			var ops int64
			for i := 0; i < b.N; i++ {
				plan, err := core.NewPlan(g, core.Options{Ordering: core.OrderCustom, Custom: &ord})
				if err != nil {
					b.Fatal(err)
				}
				ops = plan.PlannedOps()
			}
			b.ReportMetric(float64(ops), "fused-ops")
		})
	}
}

// BenchmarkFig6aSmallGraphs: the small-graph algorithm comparison.
func BenchmarkFig6aSmallGraphs(b *testing.B) {
	graphs := []string{"geoknn_s", "hypercube", "ba_sparse"}
	algos := []apsp.Algorithm{apsp.AlgoBlockedFW, apsp.AlgoSuperBFS, apsp.AlgoSuperFW, apsp.AlgoDijkstra}
	for _, gn := range graphs {
		g := benchGraph(b, gn)
		for _, a := range algos {
			b.Run(fmt.Sprintf("%s/%s", gn, a), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := apsp.Run(a, g, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig6bLargeGraphs: the large-graph comparison (O(n³)
// algorithms excluded, as in the paper).
func BenchmarkFig6bLargeGraphs(b *testing.B) {
	graphs := []string{"road_l", "finance_l", "community_l"}
	algos := []apsp.Algorithm{apsp.AlgoDijkstra, apsp.AlgoSuperFW, apsp.AlgoBoostDijkstra, apsp.AlgoDeltaStep}
	for _, gn := range graphs {
		g := benchGraph(b, gn)
		for _, a := range algos {
			b.Run(fmt.Sprintf("%s/%s", gn, a), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := apsp.Run(a, g, 0); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkFig7Scaling: strong scaling across thread counts.
func BenchmarkFig7Scaling(b *testing.B) {
	g := benchGraph(b, "finance_l")
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	for _, threads := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("superfw/t=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.SolveWith(threads, true); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("dijkstra/t=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := apsp.Dijkstra(g, threads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8EtreeParallelism: SuperFw with and without etree-level
// scheduling.
func BenchmarkFig8EtreeParallelism(b *testing.B) {
	for _, gn := range []string{"powergrid_s", "finance_l"} {
		g := benchGraph(b, gn)
		plan, err := core.NewPlan(g, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, etree := range []bool{false, true} {
			b.Run(fmt.Sprintf("%s/etree=%v", gn, etree), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := plan.SolveWith(4, etree); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkTable3Symbolic measures the pre-processing pipeline (§5.1.4):
// ordering plus symbolic analysis per catalog graph.
func BenchmarkTable3Symbolic(b *testing.B) {
	for _, gn := range []string{"geoknn_s", "road_m", "mesh3d_s"} {
		g := benchGraph(b, gn)
		b.Run(gn, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NewPlan(g, core.DefaultOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOrderingAblation compares numeric time across orderings on a
// mesh — the DESIGN.md ablation of the fill-reducing ordering choice.
func BenchmarkOrderingAblation(b *testing.B) {
	g := benchGraph(b, "geoknn_s")
	for _, ok := range []core.OrderingKind{core.OrderND, core.OrderMinDegree, core.OrderBFS, core.OrderRCM, core.OrderNatural} {
		plan, err := core.NewPlan(g, core.Options{Ordering: ok, EtreeParallel: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(ok.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.SolveWith(0, true); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(plan.PlannedOps()), "fused-ops")
		})
	}
}

// BenchmarkFactor measures the O(fill) supernodal factor extension:
// factorization, SSSP sweeps, and 2-hop-label point queries, against the
// per-query Dijkstra alternative.
func BenchmarkFactor(b *testing.B) {
	g := benchGraph(b, "road_m")
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("factorize", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewFactor(plan, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	f, err := core.NewFactor(plan, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sssp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = f.SSSP(i % g.N)
		}
	})
	b.Run("dijkstra-sssp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := apsp.DijkstraSSSP(g, i%g.N); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("label-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = f.Dist(i%g.N, (i*7919)%g.N)
		}
	})
}

// BenchmarkPathTracking measures the overhead of next-hop maintenance.
func BenchmarkPathTracking(b *testing.B) {
	g := benchGraph(b, "geoknn_s")
	for _, track := range []bool{false, true} {
		opts := core.DefaultOptions()
		opts.TrackPaths = track
		plan, err := core.NewPlan(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("track=%v", track), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.SolveWith(0, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWidestPath measures the max-min semiring on the same engine.
func BenchmarkWidestPath(b *testing.B) {
	g := benchGraph(b, "geoknn_s")
	for _, K := range []*semiring.Kernels{semiring.MinPlusKernels, semiring.MaxMinKernels} {
		opts := core.DefaultOptions()
		opts.Semiring = K
		plan, err := core.NewPlan(g, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(K.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.SolveWith(0, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecreaseEdge measures the incremental O(n²) edge update
// against a full re-solve.
func BenchmarkDecreaseEdge(b *testing.B) {
	g := benchGraph(b, "geoknn_s")
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			u := i % g.N
			v := (u + g.N/2) % g.N
			if err := res.DecreaseEdge(u, v, 0.001/float64(i+1), 0); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("resolve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := plan.SolveWith(0, true); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// imbalancedCliqueChains builds the deliberately imbalanced
// path-of-cliques workload: `chains` independent paths of `length`
// cliques each, meeting at a small root clique. Every clique has `small`
// vertices except one per chain — at a different (staggered) depth in
// each chain — which has `big`. The resulting supernodal etree has width
// `chains` at every level and exactly one expensive supernode per level,
// so a level-synchronous schedule pays ≈ length × T(big) in barriers
// while the per-chain critical path is only ≈ length × T(small) + T(big)
// — the gap dependency-driven scheduling recovers.
func imbalancedCliqueChains(chains, length, small, big int) (*Graph, order.Ordering) {
	type clique struct{ lo, hi int }
	var (
		edges []Edge
		nodes []order.Node
		next  int
	)
	addClique := func(size int) clique {
		c := clique{next, next + size}
		for u := c.lo; u < c.hi; u++ {
			for v := u + 1; v < c.hi; v++ {
				edges = append(edges, Edge{U: u, V: v, W: 1 + float64((u*31+v)%97)/97})
			}
		}
		next = c.hi
		return c
	}
	for c := 0; c < chains; c++ {
		chainLo := next
		var prev clique
		for d := 0; d < length; d++ {
			size := small
			if d == c*length/chains {
				size = big
			}
			cur := addClique(size)
			nodes = append(nodes, order.Node{
				Parent: len(nodes) + 1, // chain tops re-wired to the root below
				Lo:     cur.lo,
				Hi:     cur.hi,
				SubLo:  chainLo,
				IsLeaf: d == 0,
			})
			if d > 0 {
				edges = append(edges, Edge{U: prev.hi - 1, V: cur.lo, W: 1})
			}
			prev = cur
		}
	}
	root := addClique(small)
	rootIdx := len(nodes)
	for c := 0; c < chains; c++ {
		top := &nodes[(c+1)*length-1]
		top.Parent = rootIdx
		edges = append(edges, Edge{U: top.Hi - 1, V: root.lo, W: 1})
	}
	nodes = append(nodes, order.Node{Parent: -1, Lo: root.lo, Hi: root.hi, SubLo: 0})
	perm := make([]int, next)
	for i := range perm {
		perm[i] = i
	}
	return graph.MustFromEdges(next, edges), order.Ordering{Perm: perm, Tree: nodes}
}

// TestImbalancedCliqueChains pins the bench workload's structure (one
// supernode per clique, width = chains at every chain level) and checks
// both schedules produce the Floyd-Warshall reference on it.
func TestImbalancedCliqueChains(t *testing.T) {
	const chains, length, small, big = 3, 4, 6, 14
	g, ord := imbalancedCliqueChains(chains, length, small, big)
	for _, sched := range []core.ScheduleKind{core.ScheduleDAG, core.ScheduleLevel} {
		plan, err := core.NewPlan(g, core.Options{
			Ordering: core.OrderCustom, Custom: &ord,
			MaxBlock: big, EtreeParallel: true, Schedule: sched,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got, want := plan.NumSupernodes(), chains*length+1; got != want {
			t.Fatalf("workload built %d supernodes, want %d (one per clique)", got, want)
		}
		res, err := plan.SolveWith(4, true)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Dense().EqualTol(core.Closure(g.ToDense()), 1e-9) {
			t.Fatalf("schedule %v diverged from Floyd-Warshall on the clique-chain workload", sched)
		}
	}
}

// BenchmarkScheduleImbalanced is the DAG-vs-level shootout on the
// imbalanced etree: the dependency-driven schedule must meet or beat the
// level-synchronous one here (and it is the repo default). Besides
// ns/op, each run reports "overlap-ms" — how much work crossed etree
// level boundaries concurrently (the would-be barrier wait the schedule
// recovered, from the profiled level spans). Level-synchronous runs
// report ~0 by construction; the DAG number is the structural win and is
// hardware-independent, which matters because on a single-core host the
// wall-clock times tie (barriers only waste time when cores sit idle).
func BenchmarkScheduleImbalanced(b *testing.B) {
	g, ord := imbalancedCliqueChains(4, 8, 24, 160)
	for _, sched := range []core.ScheduleKind{core.ScheduleLevel, core.ScheduleDAG} {
		plan, err := core.NewPlan(g, core.Options{
			Ordering: core.OrderCustom, Custom: &ord,
			MaxBlock: 512, EtreeParallel: true, Schedule: sched,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("sched=%v", sched), func(b *testing.B) {
			var overlap time.Duration
			for i := 0; i < b.N; i++ {
				_, prof, err := plan.SolveProfiled(4, true)
				if err != nil {
					b.Fatal(err)
				}
				var spans, end time.Duration
				for _, l := range prof.Levels {
					spans += l.Wall
				}
				for _, sp := range prof.Supernodes {
					if e := sp.Start + sp.Wall; e > end {
						end = e
					}
				}
				if spans > end {
					overlap += spans - end
				}
			}
			b.ReportMetric(float64(overlap.Milliseconds())/float64(b.N), "overlap-ms")
		})
	}
}

// BenchmarkLeafSizeAblation sweeps the nested-dissection leaf size: tiny
// leaves deepen the tree (more scheduling, less dense-block work); huge
// leaves waste dense FW work on internally sparse blocks.
func BenchmarkLeafSizeAblation(b *testing.B) {
	g := benchGraph(b, "road_m")
	for _, leaf := range []int{8, 32, 64, 128} {
		plan, err := core.NewPlan(g, core.Options{Ordering: core.OrderND, LeafSize: leaf, EtreeParallel: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("leaf=%d", leaf), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.SolveWith(0, true); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(plan.PlannedOps()), "fused-ops")
		})
	}
}

// BenchmarkExactReachAblation compares Algorithm 3's D∪A reach with the
// ancestor-exact struct(k) refinement on an ordering with skinny etrees.
func BenchmarkExactReachAblation(b *testing.B) {
	// Natural ordering on a road-like graph: the etree is skinny and
	// A(k) wildly over-approximates the true block structure.
	g := benchGraph(b, "road_m")
	for _, exact := range []bool{false, true} {
		plan, err := core.NewPlan(g, core.Options{Ordering: core.OrderNatural, ExactReach: exact, EtreeParallel: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("natural/exact=%v", exact), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.SolveWith(0, true); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(plan.PlannedOps()), "fused-ops")
		})
	}
}

// BenchmarkBlockSizeAblation sweeps the supernode block cap — the
// locality knob of the supernodal data structure.
func BenchmarkBlockSizeAblation(b *testing.B) {
	g := benchGraph(b, "geoknn_s")
	for _, mb := range []int{16, 64, 128, 256} {
		plan, err := core.NewPlan(g, core.Options{Ordering: core.OrderND, MaxBlock: mb, EtreeParallel: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("maxblock=%d", mb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := plan.SolveWith(0, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
