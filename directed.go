package superfw

// Directed APSP support. The supernodal machinery requires a SYMMETRIC
// sparsity pattern (separators and elimination trees are defined on the
// undirected structure) but never value symmetry: every kernel treats
// row and column panels independently. A directed graph is therefore
// solved by symmetrizing the pattern — each arc u→v contributes the
// undirected pattern edge {u,v} — and initializing the matrix with the
// true arc weights, +Inf where the reverse arc is absent. The paper's
// algebra (§2) covers this directly; only its experiments restrict to
// the undirected case.

import (
	"context"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/semiring"
)

// Arc is a directed weighted edge from U to V.
type Arc struct {
	U, V int
	W    float64
}

// SolveDirected computes all-pairs shortest paths for a directed graph
// given as an arc list. Duplicate arcs keep the minimum weight;
// nonnegative self-loops are ignored while negative self-loops (one-vertex
// negative cycles) are rejected. Negative arc weights are allowed as long
// as no directed cycle is negative. threads ≤ 0 uses GOMAXPROCS.
func SolveDirected(n int, arcs []Arc, threads int) (*Result, error) {
	return SolveDirectedCtx(context.Background(), n, arcs, threads)
}

// SolveDirectedCtx is SolveDirected with cooperative cancellation,
// checked at supernode granularity during elimination; a cancelled
// context returns ctx.Err() and discards the partial matrix.
func SolveDirectedCtx(ctx context.Context, n int, arcs []Arc, threads int) (*Result, error) {
	plan, init, err := planDirected(n, arcs)
	if err != nil {
		return nil, err
	}
	return plan.SolveInitMatrixCtx(ctx, init, threads, true)
}

// planDirected builds the symmetrized-pattern plan and the directed
// initial matrix.
func planDirected(n int, arcs []Arc) (*Plan, Mat, error) {
	if n <= 0 {
		return nil, Mat{}, fmt.Errorf("superfw: need at least one vertex")
	}
	// Pattern: the undirected union of all arcs. Validate weights before
	// the self-loop skip so a NaN or negative self-loop arc is rejected
	// like any other bad input instead of slipping through: a negative
	// self-loop is a one-vertex negative cycle.
	edges := make([]graph.Edge, 0, len(arcs))
	for _, a := range arcs {
		if math.IsNaN(a.W) {
			return nil, Mat{}, fmt.Errorf("superfw: arc (%d,%d) has NaN weight", a.U, a.V)
		}
		if a.U == a.V {
			if a.W < 0 {
				return nil, Mat{}, fmt.Errorf("superfw: negative self-loop at vertex %d is a negative-weight cycle", a.U)
			}
			continue
		}
		edges = append(edges, graph.Edge{U: a.U, V: a.V, W: 1})
	}
	g, err := graph.NewFromEdges(n, edges)
	if err != nil {
		return nil, Mat{}, err
	}
	init := semiring.NewInfMat(n, n)
	for i := 0; i < n; i++ {
		init.Set(i, i, 0)
	}
	for _, a := range arcs {
		if a.U == a.V {
			continue
		}
		if a.W < init.At(a.U, a.V) {
			init.Set(a.U, a.V, a.W)
		}
	}
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		return nil, Mat{}, err
	}
	return plan, init, nil
}
