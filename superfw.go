// Package superfw is a supernodal all-pairs shortest path (APSP) library
// for sparse graphs, reproducing "A Supernodal All-Pairs Shortest Path
// Algorithm" (Sao, Kannan, Gera, Vuduc — PPoPP 2020).
//
// The core algorithm, SuperFw, runs Floyd-Warshall with the machinery of
// sparse direct solvers: a fill-in-reducing nested-dissection ordering,
// symbolic analysis, supernodal blocking, and elimination-tree
// parallelism. On graphs with small vertex separators (meshes, road
// networks, planar-like graphs) it performs O(n²|S|) work instead of the
// dense algorithm's O(n³), while keeping the matrix-multiply-heavy inner
// loops that make Floyd-Warshall fast on modern hardware.
//
// # Quick start
//
//	g, _ := superfw.NewGraph(4, []superfw.Edge{
//		{U: 0, V: 1, W: 1.0}, {U: 1, V: 2, W: 2.0}, {U: 2, V: 3, W: 1.5},
//	})
//	res, _ := superfw.Solve(g)
//	fmt.Println(res.At(0, 3)) // 4.5
//
// For repeated solves on the same structure (e.g. different weights or
// reweighted instances), build a Plan once and call Solve on it:
//
//	plan, _ := superfw.NewPlan(g, superfw.DefaultOptions())
//	res, _ := plan.Solve()
//
// The internal packages expose the full substrate: graph generators
// (internal/gen), the multilevel partitioner (internal/part), nested
// dissection and other orderings (internal/order), symbolic analysis
// (internal/symbolic), min-plus dense kernels (internal/semiring), and
// the baseline algorithms of the paper's evaluation (internal/apsp).
package superfw

import (
	"context"
	"io"

	"repro/internal/apsp"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/semiring"
)

// Graph is a weighted undirected graph in CSR form.
type Graph = graph.Graph

// Edge is an undirected weighted edge.
type Edge = graph.Edge

// Options configure plan construction (ordering, block sizes, threads).
type Options = core.Options

// Plan is the reusable symbolic phase: ordering + supernodal structure.
type Plan = core.Plan

// Result is a solved APSP instance; query it with At(u, v).
type Result = core.Result

// Mat is a dense row-major distance matrix.
type Mat = semiring.Mat

// Ordering kinds for Options.Ordering.
const (
	OrderND        = core.OrderND
	OrderBFS       = core.OrderBFS
	OrderRCM       = core.OrderRCM
	OrderNatural   = core.OrderNatural
	OrderCustom    = core.OrderCustom
	OrderMinDegree = core.OrderMinDegree
)

// Inf is the distance reported between disconnected vertices.
var Inf = semiring.Inf

// NewGraph builds a graph on n vertices from an edge list. Nonnegative
// self-loops are dropped, negative self-loops (one-vertex negative
// cycles) are rejected, and duplicate edges keep the minimum weight.
func NewGraph(n int, edges []Edge) (*Graph, error) {
	return graph.NewFromEdges(n, edges)
}

// DefaultOptions returns the paper's default configuration: nested
// dissection ordering, supernodal blocking, and etree parallelism across
// all available cores.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewPlan runs the symbolic phase (ordering, symbolic analysis, supernode
// extraction) for g. The plan can be solved repeatedly.
func NewPlan(g *Graph, opts Options) (*Plan, error) { return core.NewPlan(g, opts) }

// Solve computes all-pairs shortest paths for g with default options.
// It returns an error if g contains a negative-weight cycle.
func Solve(g *Graph) (*Result, error) {
	return SolveCtx(context.Background(), g)
}

// SolveCtx is Solve with cooperative cancellation: ctx is polled at
// supernode granularity during elimination, so a cancelled context
// aborts the numeric phase promptly and returns ctx.Err(). The partially
// relaxed state is discarded. Plans also accept a context directly via
// Plan.SolveCtx or Options.Context.
func SolveCtx(ctx context.Context, g *Graph) (*Result, error) {
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return plan.SolveCtx(ctx)
}

// SolveWithPaths is Solve with next-hop tracking enabled, so the result
// supports Path(u, v) reconstruction (one extra n² int32 array, roughly
// 2× kernel time).
func SolveWithPaths(g *Graph) (*Result, error) {
	opts := core.DefaultOptions()
	opts.TrackPaths = true
	plan, err := core.NewPlan(g, opts)
	if err != nil {
		return nil, err
	}
	return plan.Solve()
}

// SolveWidest computes all-pairs widest (maximum-bottleneck) paths: the
// same supernodal engine run over the (max, min) semiring. Edge weights
// are capacities; the result's At(u, v) is the best bottleneck capacity
// of any u→v path (−Inf when unreachable, +Inf on the diagonal).
func SolveWidest(g *Graph) (*Result, error) {
	opts := core.DefaultOptions()
	opts.Semiring = semiring.MaxMinKernels
	plan, err := core.NewPlan(g, opts)
	if err != nil {
		return nil, err
	}
	return plan.Solve()
}

// SolveDense is a convenience that returns the full distance matrix in
// original vertex order (allocating n² floats beyond the solve itself).
func SolveDense(g *Graph) (Mat, error) {
	res, err := Solve(g)
	if err != nil {
		return Mat{}, err
	}
	return res.Dense(), nil
}

// Factor is the supernodal semiring factor: the O(fill)-memory
// alternative to the dense distance matrix, answering SSSP queries via
// elimination-tree sweeps and point-to-point queries via 2-hop labels.
type Factor = core.Factor

// NewFactor runs factor-only elimination on a plan: O(fill) memory
// instead of the dense solver's n² floats. Use Factor.SSSP for full rows
// and Factor.Dist for point queries.
func NewFactor(plan *Plan, threads int) (*Factor, error) {
	return core.NewFactor(plan, threads)
}

// NewFactorCtx is NewFactor with cooperative cancellation, checked at
// supernode granularity; a cancelled context returns ctx.Err() and the
// partial factor is discarded.
func NewFactorCtx(ctx context.Context, plan *Plan, threads int) (*Factor, error) {
	return core.NewFactorCtx(ctx, plan, threads)
}

// ReadFactor deserializes a factor previously saved with Factor.WriteTo,
// verifying its checksum; the restored factor answers queries without
// the graph or the plan. Truncated or bit-flipped inputs are rejected
// with an error rather than yielding a silently wrong factor.
func ReadFactor(r io.Reader) (*Factor, error) { return core.ReadFactor(r) }

// SaveFactorFile atomically checkpoints a factor to path (temp file +
// rename); a crash mid-save never leaves a torn file under path.
func SaveFactorFile(path string, f *Factor) error { return core.SaveFactorFile(path, f) }

// LoadFactorFile restores a checkpoint written by SaveFactorFile,
// verifying both the checksum and the factor's internal invariants.
func LoadFactorFile(path string) (*Factor, error) { return core.LoadFactorFile(path) }

// TaskPanic is the panic value re-raised on the caller when a worker
// goroutine panics inside a parallel solve or factorization. It names
// the failing task (supernode or loop iteration) and carries the worker
// stack, so crashes in parallel sections are attributable.
type TaskPanic = par.TaskPanic

// Baseline runs one of the paper's baseline algorithms by name
// ("blockedfw", "dijkstra", "boostdijkstra", "deltastep", "johnson",
// "pathdoubling", "naivefw", "superbfs", "superfw") and returns the
// distance matrix in original vertex order. threads ≤ 0 uses GOMAXPROCS.
func Baseline(name string, g *Graph, threads int) (Mat, error) {
	algo, err := apsp.ParseAlgorithm(name)
	if err != nil {
		return Mat{}, err
	}
	return apsp.Run(algo, g, threads)
}
