package superfw

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/semiring"
)

// directedClosure is the reference: scalar FW on the directed init.
func directedClosure(n int, arcs []Arc) Mat {
	D := semiring.NewInfMat(n, n)
	for i := 0; i < n; i++ {
		D.Set(i, i, 0)
	}
	for _, a := range arcs {
		if a.U != a.V && a.W < D.At(a.U, a.V) {
			D.Set(a.U, a.V, a.W)
		}
	}
	semiring.FloydWarshall(D)
	return D
}

func TestSolveDirectedOneWayStreets(t *testing.T) {
	// A one-way ring 0→1→2→3→0 plus a two-way chord 0↔2.
	arcs := []Arc{
		{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 0, 1},
		{0, 2, 1.5}, {2, 0, 1.5},
	}
	res, err := SolveDirected(4, arcs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Against the ring direction, 1→0 must go 1→2→0 (or around).
	if got := res.At(1, 0); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("dist(1,0) = %g, want 2.5 via the chord", got)
	}
	// With the ring: 0→1 direct.
	if got := res.At(0, 1); got != 1 {
		t.Fatalf("dist(0,1) = %g, want 1", got)
	}
	// Asymmetry is real.
	if res.At(0, 3) == res.At(3, 0) {
		t.Fatal("directed distances should be asymmetric here")
	}
}

func TestSolveDirectedRandomMatchesFW(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(60)
		var arcs []Arc
		m := n * (1 + rng.Intn(4))
		for i := 0; i < m; i++ {
			arcs = append(arcs, Arc{rng.Intn(n), rng.Intn(n), 0.1 + rng.Float64()})
		}
		want := directedClosure(n, arcs)
		res, err := SolveDirected(n, arcs, 1+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		if !res.Dense().EqualTol(want, 1e-9) {
			t.Fatalf("trial %d: directed solve mismatch (n=%d, m=%d)", trial, n, m)
		}
	}
}

func TestSolveDirectedUnreachable(t *testing.T) {
	// Single arc: reachable one way only.
	res, err := SolveDirected(3, []Arc{{0, 1, 2}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.At(0, 1) != 2 {
		t.Fatal("forward arc missing")
	}
	if !math.IsInf(res.At(1, 0), 1) {
		t.Fatal("reverse direction must be unreachable")
	}
	if !math.IsInf(res.At(0, 2), 1) {
		t.Fatal("isolated vertex must be unreachable")
	}
}

func TestSolveDirectedNegativeCycle(t *testing.T) {
	// 0→1→0 with total −1.
	if _, err := SolveDirected(2, []Arc{{0, 1, 1}, {1, 0, -2}}, 1); err == nil {
		t.Fatal("directed negative cycle must be rejected")
	}
	// Negative arc without a negative cycle is fine.
	res, err := SolveDirected(3, []Arc{{0, 1, -1}, {1, 2, 3}, {2, 0, 5}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.At(0, 2) != 2 {
		t.Fatalf("dist(0,2) = %g, want 2", res.At(0, 2))
	}
}

func TestSolveDirectedErrors(t *testing.T) {
	if _, err := SolveDirected(0, nil, 1); err == nil {
		t.Fatal("zero vertices must error")
	}
	if _, err := SolveDirected(2, []Arc{{0, 1, math.NaN()}}, 1); err == nil {
		t.Fatal("NaN weight must error")
	}
	if _, err := SolveDirected(2, []Arc{{0, 5, 1}}, 1); err == nil {
		t.Fatal("out-of-range arc must error")
	}
}

func TestSolveDirectedSelfLoopValidation(t *testing.T) {
	// Regression: the NaN check must run before the self-loop skip — a
	// NaN-weight self-loop used to pass silently while every other path
	// rejected NaN.
	if _, err := SolveDirected(2, []Arc{{1, 1, math.NaN()}}, 1); err == nil {
		t.Fatal("NaN self-loop arc must error")
	}
	// A negative self-loop is a one-vertex negative cycle.
	if _, err := SolveDirected(2, []Arc{{0, 1, 1}, {0, 0, -1}}, 1); err == nil {
		t.Fatal("negative self-loop arc must error")
	}
}
