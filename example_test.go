package superfw_test

import (
	"bytes"
	"fmt"

	superfw "repro"
)

// The weighted square with a diagonal used by most examples:
//
//	0 --1-- 1
//	|     / |
//	4   1   2
//	| /     |
//	2 --5-- 3
func exampleGraph() *superfw.Graph {
	g, err := superfw.NewGraph(4, []superfw.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 3, W: 2}, {U: 0, V: 2, W: 4},
		{U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 5},
	})
	if err != nil {
		panic(err)
	}
	return g
}

func ExampleSolve() {
	res, err := superfw.Solve(exampleGraph())
	if err != nil {
		panic(err)
	}
	fmt.Printf("dist(0,3) = %v\n", res.At(0, 3))
	fmt.Printf("dist(0,2) = %v\n", res.At(0, 2)) // via vertex 1, not the weight-4 edge
	// Output:
	// dist(0,3) = 3
	// dist(0,2) = 2
}

func ExampleSolveWithPaths() {
	res, err := superfw.SolveWithPaths(exampleGraph())
	if err != nil {
		panic(err)
	}
	path, _ := res.Path(0, 3)
	fmt.Println(path)
	// Output: [0 1 3]
}

func ExampleSolveWidest() {
	// Edge weights read as capacities: the widest 0→3 route avoids the
	// weight-1 links.
	res, err := superfw.SolveWidest(exampleGraph())
	if err != nil {
		panic(err)
	}
	fmt.Printf("bottleneck(0,3) = %v\n", res.At(0, 3)) // 0-2-3 carries min(4,5)=4
	// Output: bottleneck(0,3) = 4
}

func ExampleSolveDirected() {
	// A one-way triangle: going against the arrows costs the long way.
	res, err := superfw.SolveDirected(3, []superfw.Arc{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 0, W: 1},
	}, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.At(0, 1), res.At(1, 0))
	// Output: 1 2
}

func ExampleNewFactor() {
	g := exampleGraph()
	plan, err := superfw.NewPlan(g, superfw.DefaultOptions())
	if err != nil {
		panic(err)
	}
	f, err := superfw.NewFactor(plan, 1)
	if err != nil {
		panic(err)
	}
	// The factor answers queries without the dense matrix, and it
	// round-trips through serialization.
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		panic(err)
	}
	f2, err := superfw.ReadFactor(&buf)
	if err != nil {
		panic(err)
	}
	fmt.Println(f2.Dist(0, 3))
	// Output: 3
}

func ExampleAuto() {
	_, choice, err := superfw.Auto(exampleGraph(), 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(choice.Algorithm)
	// Output: superfw
}
