// Power grid example: all-pairs electrical distance on a power-network-
// like graph, with a Fig 1-style demonstration of why vertex ordering
// matters — under a poor ordering the distance matrix densifies almost
// immediately; under nested dissection the fill is deferred to the final
// separator eliminations.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	superfw "repro"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/semiring"
)

func main() {
	n := flag.Int("n", 1200, "number of buses")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
	flag.Parse()

	g := gen.PowerGrid(*n, 7)
	fmt.Printf("power grid: n=%d buses, m=%d lines (avg degree %.2f)\n", g.N, g.M(), g.AvgDegree())

	// Stage-by-stage pipeline with timings.
	plan, err := superfw.NewPlan(g, superfw.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := plan.SolveWith(*threads, true)
	if err != nil {
		log.Fatal(err)
	}
	total := plan.OrderTime + plan.SymbolicTime + res.NumericTime
	fmt.Printf("\npipeline breakdown:\n")
	fmt.Printf("  ordering (nested dissection): %10v (%4.1f%%)\n", plan.OrderTime.Round(time.Microsecond), pct(plan.OrderTime, total))
	fmt.Printf("  symbolic (supernodes, etree): %10v (%4.1f%%)\n", plan.SymbolicTime.Round(time.Microsecond), pct(plan.SymbolicTime, total))
	fmt.Printf("  numeric  (min-plus kernels):  %10v (%4.1f%%)\n", res.NumericTime.Round(time.Microsecond), pct(res.NumericTime, total))
	fmt.Printf("  top separator |S|=%d, %d supernodes, %d etree levels\n",
		plan.TopSep, plan.NumSupernodes(), len(plan.Sn.Levels))

	// Fig 1-style fill evolution on a small sub-instance: density of the
	// trailing (not yet eliminated) submatrix — the graph-path analogue
	// of Cholesky fill-in.
	small := gen.PowerGrid(400, 7)
	fmt.Printf("\ntrailing-submatrix density during FW iterations (400-bus instance):\n")
	fmt.Printf("  %-22s %s\n", "ordering", "k=n/4   k=n/2   k=3n/4")
	rng := rand.New(rand.NewSource(1))
	showDensity(small, "random (not optimal)", rng.Perm(small.N))
	nd := order.NestedDissection(small, order.NDOptions{})
	showDensity(small, "nested dissection", nd.Perm)

	// Electrical interpretation: the most "central" bus (minimum total
	// distance to every bus it can reach, requiring it to reach a
	// majority — small islands do not count) and the network diameter.
	best, bestSum := -1, semiring.Inf
	worstPair := 0.0
	for u := 0; u < g.N; u++ {
		sum, reached := 0.0, 0
		for v := 0; v < g.N; v++ {
			d := res.At(u, v)
			if d == semiring.Inf {
				continue
			}
			reached++
			sum += d
			if d > worstPair {
				worstPair = d
			}
		}
		if reached > g.N/2 && sum < bestSum {
			best, bestSum = u, sum
		}
	}
	fmt.Printf("\nmost central bus: %d (closeness sum %.1f); network diameter %.2f\n", best, bestSum, worstPair)
}

func pct(part, total time.Duration) float64 {
	return 100 * float64(part) / float64(total)
}

func showDensity(g *graph.Graph, label string, perm []int) {
	pg := g
	if perm != nil {
		pg = g.Permute(perm)
	}
	D := pg.ToDense()
	n := D.Rows
	marks := map[int]bool{n / 4: true, n / 2: true, 3 * n / 4: true}
	fmt.Printf("  %-22s", label)
	for k := 0; k < n; k++ {
		if marks[k] {
			t := D.View(k, k, n-k, n-k)
			fmt.Printf(" %5.3f  ", float64(t.CountFinite())/float64(t.Rows*t.Cols))
		}
		semiring.FloydWarshallStep(D, k)
	}
	fmt.Println()
}
