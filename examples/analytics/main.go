// Graph analytics from APSP: the downstream workloads (centrality,
// diameter, distance distributions) that motivate computing all-pairs
// shortest paths. Compares the distance structure of three graph
// classes — a road network, a social/community graph, and an expander —
// and shows how the classes' separator quality predicts which APSP
// algorithm to use for each.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"strings"
	"time"

	superfw "repro"
	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	n := flag.Int("n", 1200, "approximate vertices per graph")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
	flag.Parse()

	side := 1
	for side*side < *n {
		side++
	}
	classes := []struct {
		name string
		g    *graph.Graph
	}{
		{"road network", gen.RoadNetwork(side, side, 0.35, 61)},
		{"community/social", gen.CommunityGraph(*n, 62)},
		{"expander (RMAT)", gen.RMAT(log2ceil(*n), 8, gen.WeightUniform, 63)},
	}

	fmt.Printf("%-18s %6s %8s %9s %9s %10s %12s\n",
		"class", "n", "n/|S|", "diameter", "radius", "Wiener", "solve time")
	for _, c := range classes {
		plan, err := superfw.NewPlan(c.g, superfw.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		res, err := plan.SolveWith(*threads, true)
		if err != nil {
			log.Fatal(err)
		}
		D := res.Dense()
		dia, rad := analytics.DiameterRadius(D, *threads)
		sep := "-"
		if plan.TopSep > 0 {
			sep = fmt.Sprintf("%.0f", float64(c.g.N)/float64(plan.TopSep))
		}
		fmt.Printf("%-18s %6d %8s %9.2f %9.2f %10.0f %12v\n",
			c.name, c.g.N, sep, dia, rad, analytics.WienerIndex(D),
			res.NumericTime.Round(time.Millisecond))

		// Distance distribution: expanders concentrate; road networks
		// spread (that spread is WHY they have small separators).
		_, counts := analytics.DistanceHistogram(D, 8)
		var total int64
		for _, x := range counts {
			total += x
		}
		fmt.Printf("  distance histogram: %s\n", sparkline(counts, total))

		hub := analytics.MostCentral(D, *threads)
		fmt.Printf("  most central vertex: %d (harmonic closeness %.1f)\n\n",
			hub, analytics.Closeness(D, *threads)[hub])
	}

	// Centrality at scale without the dense matrix: closeness of a few
	// candidate vertices via factor SSSP rows only.
	big := gen.RoadNetwork(70, 70, 0.35, 64)
	plan, err := superfw.NewPlan(big, superfw.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	f, err := core.NewFactor(plan, *threads)
	if err != nil {
		log.Fatal(err)
	}
	candidates := []int{0, big.N / 4, big.N / 2, 3 * big.N / 4, big.N - 1}
	rows := f.MultiSSSP(candidates, *threads)
	fmt.Printf("factor-based closeness on n=%d road network (no dense matrix, %.1f MB factor):\n",
		big.N, float64(f.Memory())/1e6)
	for i, src := range candidates {
		sum := 0.0
		for _, d := range rows[i] {
			if d > 0 && d < 1e300 {
				sum += 1 / d
			}
		}
		fmt.Printf("  vertex %5d: harmonic closeness %.1f\n", src, sum)
	}
}

func log2ceil(n int) int {
	b := 0
	for 1<<b < n {
		b++
	}
	return b
}

// sparkline renders histogram counts as a crude text bar chart.
func sparkline(counts []int64, total int64) string {
	if total == 0 {
		return "(empty)"
	}
	var b strings.Builder
	for _, c := range counts {
		frac := float64(c) / float64(total)
		b.WriteString(fmt.Sprintf("%3.0f%% ", 100*frac))
	}
	return b.String()
}
