// Quickstart: build a small weighted graph, solve all-pairs shortest
// paths with the supernodal Floyd-Warshall solver, and query distances.
package main

import (
	"fmt"
	"log"

	superfw "repro"
)

func main() {
	// A small road map: 6 intersections, weighted by travel time.
	//
	//	0 --1.0-- 1 --2.0-- 2
	//	|         |         |
	//	1.5      0.5       1.0
	//	|         |         |
	//	3 --2.5-- 4 --1.0-- 5
	g, err := superfw.NewGraph(6, []superfw.Edge{
		{U: 0, V: 1, W: 1.0}, {U: 1, V: 2, W: 2.0},
		{U: 0, V: 3, W: 1.5}, {U: 1, V: 4, W: 0.5}, {U: 2, V: 5, W: 1.0},
		{U: 3, V: 4, W: 2.5}, {U: 4, V: 5, W: 1.0},
	})
	if err != nil {
		log.Fatal(err)
	}

	// One-shot solve with default options (nested dissection ordering,
	// supernodal blocking, etree parallelism).
	res, err := superfw.Solve(g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("shortest travel times:")
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			fmt.Printf("  %d → %d: %.1f\n", u, v, res.At(u, v))
		}
	}

	// For repeated solves on the same structure, build the plan once.
	plan, err := superfw.NewPlan(g, superfw.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res2, err := plan.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan reuse: %d supernodes, deterministic result: %v\n",
		plan.NumSupernodes(), res.At(0, 5) == res2.At(0, 5))

	// With path tracking enabled, the actual route is recoverable.
	resP, err := superfw.SolveWithPaths(g)
	if err != nil {
		log.Fatal(err)
	}
	route, _ := resP.Path(3, 2)
	fmt.Printf("route 3 → 2: %v (travel time %.1f)\n", route, resP.At(3, 2))
}
