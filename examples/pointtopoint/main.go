// Point-to-point queries without the n² matrix.
//
// The paper's dense SuperFw needs 8n² bytes (105 GB for its largest
// graph). But the supernodal factor — "the semiring equivalent of
// Cholesky factors" the paper leaves in its supernodal matrix — is only
// O(fill) in size and answers:
//
//   - single-source queries via elimination-tree up/down sweeps
//     (the semiring analogue of triangular solves), and
//   - point-to-point queries via 2-hop labels: every vertex's label is
//     its supernode root path, and dist(u,v) is the best meet over the
//     shared hubs.
//
// This example builds the factor for a road network, compares its memory
// against the dense matrix, and races label queries against Dijkstra.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"time"

	superfw "repro"
	"repro/internal/apsp"
	"repro/internal/gen"
	"repro/internal/semiring"
)

func main() {
	side := flag.Int("side", 64, "road grid side (n = side²)")
	queries := flag.Int("queries", 2000, "random point-to-point queries")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
	flag.Parse()

	g := gen.RoadNetwork(*side, *side, 0.35, 7)
	fmt.Printf("road network: n=%d, m=%d\n", g.N, g.M())

	plan, err := superfw.NewPlan(g, superfw.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	factor, err := superfw.NewFactor(plan, *threads)
	if err != nil {
		log.Fatal(err)
	}
	dense := int64(8) * int64(g.N) * int64(g.N)
	fmt.Printf("factor:   %.1f MB vs dense distance matrix %.1f MB (%.1f× smaller), factorized in %v\n",
		float64(factor.Memory())/1e6, float64(dense)/1e6,
		float64(dense)/float64(factor.Memory()), factor.FactorTime.Round(time.Millisecond))

	// Single-source rows from the factor (up/down etree sweeps).
	t0 := time.Now()
	rows := 64
	for s := 0; s < rows; s++ {
		_ = factor.SSSP(s * (g.N / rows))
	}
	ssspEach := time.Since(t0) / time.Duration(rows)
	fmt.Printf("factor SSSP: %v per source (etree sweeps over O(fill) data)\n", ssspEach.Round(time.Microsecond))

	// Point-to-point: 2-hop label meets vs running Dijkstra per query.
	rng := rand.New(rand.NewSource(9))
	pairs := make([][2]int, *queries)
	for i := range pairs {
		pairs[i] = [2]int{rng.Intn(g.N), rng.Intn(g.N)}
	}
	t0 = time.Now()
	sumLbl := 0.0
	for _, p := range pairs {
		if d := factor.Dist(p[0], p[1]); d != semiring.Inf {
			sumLbl += d
		}
	}
	lblTime := time.Since(t0)
	fmt.Printf("label queries: %v total for %d queries (%v each)\n",
		lblTime.Round(time.Millisecond), *queries, (lblTime / time.Duration(*queries)).Round(time.Microsecond))

	// Reference: answer the same queries with one Dijkstra per query
	// (the no-precomputation alternative).
	t0 = time.Now()
	sumDj := 0.0
	for _, p := range pairs {
		row, err := apsp.DijkstraSSSP(g, p[0])
		if err != nil {
			log.Fatal(err)
		}
		if d := row[p[1]]; d != semiring.Inf {
			sumDj += d
		}
	}
	djTime := time.Since(t0)
	fmt.Printf("Dijkstra-per-query: %v total (%v each); label speedup %.1f×\n",
		djTime.Round(time.Millisecond), (djTime / time.Duration(*queries)).Round(time.Microsecond),
		float64(djTime)/float64(lblTime))

	// Spot-check correctness on a handful of pairs against the dense solver.
	res, err := plan.Solve()
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for _, p := range pairs[:200] {
		d1 := factor.Dist(p[0], p[1])
		d2 := res.At(p[0], p[1])
		if diff := abs(d1 - d2); diff > worst {
			worst = diff
		}
	}
	fmt.Printf("correctness: max |label − dense| over 200 pairs = %.2e; checksums %.1f / %.1f\n", worst, sumLbl, sumDj)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
