// Road network example: the paper's motivating workload. Planar graphs
// such as road networks have O(√n) vertex separators, which is exactly
// when the supernodal Floyd-Warshall algorithm beats Dijkstra-based APSP:
// O(n²√n) work routed through cache-friendly min-plus matrix kernels.
//
// This example builds a synthetic road network, compares SuperFw against
// Dijkstra and the adjacency-list ("Boost-style") Dijkstra, and prints
// the separator statistics that explain the result.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	superfw "repro"
	"repro/internal/apsp"
	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	side := flag.Int("side", 48, "road grid side (n = side²)")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
	flag.Parse()

	// A jittered grid with 35% of road segments removed (dead ends,
	// rivers, sparse rural areas), weights ≈ travel time.
	g := gen.RoadNetwork(*side, *side, 0.35, 42)
	fmt.Printf("road network: n=%d intersections, m=%d road segments (avg degree %.2f)\n",
		g.N, g.M(), g.AvgDegree())

	// Symbolic phase: nested dissection finds the small separators.
	plan, err := superfw.NewPlan(g, superfw.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nested dissection: top separator |S|=%d (n/|S| = %.1f), %d supernodes\n",
		plan.TopSep, float64(g.N)/float64(plan.TopSep), plan.NumSupernodes())
	n := int64(g.N)
	fmt.Printf("planned work: %d fused min-plus ops vs dense n³ = %d (%.1f× less)\n",
		plan.PlannedOps(), n*n*n, float64(n*n*n)/float64(plan.PlannedOps()))

	// Numeric phase.
	res, err := plan.SolveWith(*threads, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSuperFw:        %10v (numeric; symbolic was %v)\n",
		res.NumericTime.Round(time.Microsecond), (plan.OrderTime + plan.SymbolicTime).Round(time.Microsecond))

	// Dijkstra from every source — the Johnson's-algorithm core the
	// paper competes against.
	t0 := time.Now()
	dj, err := apsp.Dijkstra(g, *threads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Dijkstra:       %10v\n", time.Since(t0).Round(time.Microsecond))

	t0 = time.Now()
	if _, err := apsp.BoostDijkstra(g, *threads); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BoostDijkstra:  %10v (adjacency-list storage)\n", time.Since(t0).Round(time.Microsecond))

	// Cross-check and a few sample routes.
	diff := apsp.MaxAbsDiff(res.Dense(), dj)
	fmt.Printf("\nmax |Δ| between the two solvers: %.2e\n", diff)
	fmt.Println("sample routes (corner to corner):")
	corners := []int{0, *side - 1, g.N - *side, g.N - 1}
	for _, u := range corners[1:] {
		fmt.Printf("  intersection 0 → %d: travel time %.2f\n", u, res.At(0, u))
	}

	// The ablation the separator statistics predict: a BFS ordering has
	// no small separators to exploit.
	bfsPlan, err := superfw.NewPlan(g, core.Options{Ordering: core.OrderBFS})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nordering ablation (planned fused ops):\n  nested dissection: %d\n  BFS order:         %d (%.1f× more)\n",
		plan.PlannedOps(), bfsPlan.PlannedOps(), float64(bfsPlan.PlannedOps())/float64(plan.PlannedOps()))
}
