// Negative weights example. The Floyd-Warshall family accepts negative
// arc weights (as long as no cycle is negative) where plain Dijkstra does
// not — the property the paper's problem statement highlights.
//
// Truly undirected negative edges are impossible (a negative edge {u,v}
// is a negative 2-cycle u→v→u), so valid negative instances keep a
// symmetric *pattern* with asymmetric arc values. This example builds one
// with a potential reweighting — arc u→v gets w(u,v)+p(u)−p(v), which
// leaves every cycle's weight unchanged — then solves it three ways:
//
//  1. SuperFw on the reweighted matrix (negative arcs, no special casing),
//  2. Johnson's algorithm (Bellman-Ford potentials + Dijkstra),
//  3. plain Dijkstra — rejected, demonstrating why Johnson exists.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"runtime"
	"time"

	superfw "repro"
	"repro/internal/apsp"
	"repro/internal/gen"
	"repro/internal/graph"
)

func main() {
	n := flag.Int("n", 800, "vertices")
	scale := flag.Float64("scale", 2.5, "potential scale (bigger = more negative arcs)")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
	flag.Parse()

	g := gen.GeometricKNN(*n, 2, 3, gen.WeightUniform, 99)
	p := gen.Potential(g.N, *scale, 100)
	init := g.ToDensePotential(p)

	neg := 0
	for i := 0; i < init.Rows; i++ {
		for _, v := range init.Row(i) {
			if v < 0 && !math.IsInf(v, 1) {
				neg++
			}
		}
	}
	fmt.Printf("instance: n=%d, m=%d, %d negative arcs (%.1f%% of arcs), no negative cycles by construction\n",
		g.N, g.M(), neg, 100*float64(neg)/float64(g.NNZ()))

	// 1. SuperFw: the semiring kernels don't care about sign.
	plan, err := superfw.NewPlan(g, superfw.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := plan.SolveInitMatrix(init, *threads, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSuperFw:  %v (numeric)\n", res.NumericTime.Round(time.Microsecond))

	// 2. Johnson: Bellman-Ford finds feasible potentials, Dijkstra does
	// the rest.
	t0 := time.Now()
	jd, err := apsp.Johnson(g, p, *threads)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Johnson:  %v\n", time.Since(t0).Round(time.Microsecond))

	diff := apsp.MaxAbsDiff(res.Dense(), jd)
	fmt.Printf("max |Δ| between SuperFw and Johnson: %.2e\n", diff)

	// 3. Plain Dijkstra cannot run on negative arcs.
	negGraph := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: -1}})
	if _, err := apsp.Dijkstra(negGraph, 1); err != nil {
		fmt.Printf("plain Dijkstra on negative weights: rejected as expected (%v)\n", err)
	}

	// Distances of the original (unreweighted) graph are recovered by
	// undoing the potential: d(u,v) = d'(u,v) − p(u) + p(v).
	orig, err := plan.Solve()
	if err != nil {
		log.Fatal(err)
	}
	worst := 0.0
	for u := 0; u < g.N; u += 97 {
		for v := 0; v < g.N; v += 89 {
			if d := math.Abs(res.At(u, v) - p[u] + p[v] - orig.At(u, v)); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("potential recovery check (d' − p(u) + p(v) vs original): max |Δ| = %.2e\n", worst)

	// Negative cycle detection: make one existing edge's two arcs sum
	// negative (a negative 2-cycle) and watch the solver refuse.
	bad := init.Clone()
	adj, _ := g.Neighbors(0)
	bad.Set(0, adj[0], -10)
	bad.Set(adj[0], 0, -10)
	if _, err := plan.SolveInitMatrix(bad, *threads, true); err != nil {
		fmt.Printf("negative-cycle instance: correctly rejected (%v)\n", err)
	} else {
		log.Fatal("negative cycle was not detected")
	}
}
