// Bottleneck (widest-path) analysis: the same supernodal engine run over
// the (max, min) semiring.
//
// The paper frames Floyd-Warshall as Gaussian elimination over a
// semiring; nothing in the supernodal machinery — nested dissection,
// symbolic analysis, supernodes, etree parallelism — depends on WHICH
// semiring, because sparsity is a property of the pattern. This example
// plans a network's all-pairs bottleneck capacities: for every pair
// (u,v), the largest flow that can be pushed along a single path.
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"time"

	superfw "repro"
	"repro/internal/gen"
	"repro/internal/semiring"
)

func main() {
	n := flag.Int("n", 1000, "number of routers")
	threads := flag.Int("threads", runtime.GOMAXPROCS(0), "worker threads")
	flag.Parse()

	// A backbone network: geometric topology, link capacities 0.1-1.1
	// (think Gb/s), plus a few long-haul high-capacity links.
	g := gen.PowerGrid(*n, 31)
	fmt.Printf("network: n=%d routers, m=%d links\n", g.N, g.M())

	opts := superfw.DefaultOptions()
	opts.Semiring = semiring.MaxMinKernels
	opts.TrackPaths = true
	opts.Threads = *threads
	plan, err := superfw.NewPlan(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all-pairs bottleneck capacities solved in %v (numeric phase)\n",
		res.NumericTime.Round(time.Millisecond))

	// Compare against shortest paths on the same plan: the two closures
	// share all symbolic work.
	sopts := superfw.DefaultOptions()
	splan, err := superfw.NewPlan(g, sopts)
	if err != nil {
		log.Fatal(err)
	}
	sres, err := splan.Solve()
	if err != nil {
		log.Fatal(err)
	}

	// For a few pairs, show that the widest route and the shortest route
	// genuinely differ.
	fmt.Println("\npair          widest-capacity     shortest-distance   routes differ?")
	shown := 0
	for u := 0; u < g.N && shown < 5; u += g.N / 17 {
		v := (u + g.N/2) % g.N
		cap := res.At(u, v)
		dist := sres.At(u, v)
		if cap == superfw.Inf || cap == -superfw.Inf {
			continue
		}
		wide, ok1 := res.Path(u, v)
		if !ok1 {
			continue
		}
		fmt.Printf("%4d → %-6d %10.3f (via %d hops) %12.3f        %v\n",
			u, v, cap, len(wide)-1, dist, len(wide) > 2)
		shown++
	}

	// The capacity-critical link of the whole network: the pair whose
	// bottleneck is the global minimum (ignoring disconnected pairs).
	worstU, worstV, worstCap := -1, -1, superfw.Inf
	for u := 0; u < g.N; u++ {
		for v := u + 1; v < g.N; v++ {
			c := res.At(u, v)
			if c > -1e308 && c < worstCap { // skip unreachable (-Inf)
				worstU, worstV, worstCap = u, v, c
			}
		}
	}
	fmt.Printf("\nweakest connected pair: %d ↔ %d with bottleneck %.3f — upgrading the\n", worstU, worstV, worstCap)
	fmt.Println("links on that route raises the whole network's worst-case capacity.")

	// Validate against the scalar reference on a subsample.
	refD := g.ToDenseWith(semiring.MaxMinKernels.Zero, semiring.MaxMinKernels.One)
	semiring.MaxMinFloydWarshall(refD)
	worst := 0.0
	for u := 0; u < g.N; u += 37 {
		for v := 0; v < g.N; v += 41 {
			d := res.At(u, v) - refD.At(u, v)
			if d < 0 {
				d = -d
			}
			if d > worst && d == d { // skip NaN from Inf-Inf
				worst = d
			}
		}
	}
	fmt.Printf("validation vs scalar max-min FW: max |Δ| = %.2e\n", worst)
}
