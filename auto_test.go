package superfw

import (
	"testing"

	"repro/internal/gen"
)

func TestAutoPicksSuperFwOnPlanar(t *testing.T) {
	g := gen.RoadNetwork(30, 30, 0.3, 11)
	D, c, err := Auto(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Algorithm != "superfw" {
		t.Errorf("road network should pick superfw, got %s (%s)", c.Algorithm, c)
	}
	want, err := Baseline("dijkstra", g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !D.EqualTol(want, 1e-9) {
		t.Fatal("auto result wrong")
	}
}

func TestAutoPicksDijkstraOnExpander(t *testing.T) {
	// A sparse expander: no separators, SuperFw degenerates to ~n³ while
	// n Dijkstra runs stay n·m·log n.
	g := gen.BarabasiAlbert(900, 3, gen.WeightUniform, 12)
	D, c, err := Auto(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Algorithm != "dijkstra" {
		t.Errorf("expander should pick dijkstra, got %s (%s)", c.Algorithm, c)
	}
	want, err := Baseline("dijkstra", g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !D.EqualTol(want, 1e-9) {
		t.Fatal("auto result wrong")
	}
}

func TestAutoRejectsNegative(t *testing.T) {
	g, _ := NewGraph(2, []Edge{{U: 0, V: 1, W: -1}})
	if _, _, err := Auto(g, 1); err == nil {
		t.Fatal("negative weights must be rejected")
	}
}
