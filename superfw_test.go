package superfw

import (
	"math"
	"testing"

	"repro/internal/gen"
)

func TestQuickstart(t *testing.T) {
	g, err := NewGraph(4, []Edge{
		{U: 0, V: 1, W: 1.0}, {U: 1, V: 2, W: 2.0}, {U: 2, V: 3, W: 1.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.At(0, 3); math.Abs(got-4.5) > 1e-12 {
		t.Fatalf("At(0,3) = %g, want 4.5", got)
	}
	if res.At(3, 0) != res.At(0, 3) {
		t.Error("undirected distances must be symmetric")
	}
}

func TestSolveDense(t *testing.T) {
	g := gen.Grid2D(6, 6, gen.WeightUniform, 1)
	D, err := SolveDense(g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Baseline("naivefw", g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !D.EqualTol(want, 1e-9) {
		t.Fatal("SolveDense disagrees with naive FW")
	}
}

func TestBaselineNames(t *testing.T) {
	g := gen.Grid2D(5, 5, gen.WeightUniform, 2)
	want, _ := Baseline("naivefw", g, 1)
	for _, name := range []string{"superfw", "superbfs", "blockedfw", "dijkstra", "boostdijkstra", "deltastep", "pathdoubling", "johnson"} {
		got, err := Baseline(name, g, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !got.EqualTol(want, 1e-9) {
			t.Errorf("%s disagrees with naive FW", name)
		}
	}
	if _, err := Baseline("bogus", g, 1); err == nil {
		t.Error("unknown baseline must error")
	}
}

func TestPlanReuse(t *testing.T) {
	g := gen.GeometricKNN(100, 2, 3, gen.WeightUniform, 3)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !r1.D.Equal(r2.D) {
		t.Error("plan reuse must be deterministic")
	}
}

func TestSolveWithPaths(t *testing.T) {
	g := gen.Grid2D(5, 5, gen.WeightUniform, 4)
	res, err := SolveWithPaths(g)
	if err != nil {
		t.Fatal(err)
	}
	path, ok := res.Path(0, 24)
	if !ok || path[0] != 0 || path[len(path)-1] != 24 {
		t.Fatalf("bad path: %v %v", path, ok)
	}
	sum := 0.0
	for i := 0; i+1 < len(path); i++ {
		w, exists := g.Weight(path[i], path[i+1])
		if !exists {
			t.Fatalf("non-edge in path: %v", path)
		}
		sum += w
	}
	if math.Abs(sum-res.At(0, 24)) > 1e-9 {
		t.Fatalf("path weight %g != distance %g", sum, res.At(0, 24))
	}
}

func TestDisconnectedInf(t *testing.T) {
	g, _ := NewGraph(3, []Edge{{U: 0, V: 1, W: 1}})
	res, err := Solve(g)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.At(0, 2), 1) {
		t.Error("disconnected pair should be Inf")
	}
	if Inf != math.Inf(1) {
		t.Error("exported Inf wrong")
	}
}

func TestNegativeSelfLoopRejected(t *testing.T) {
	// Regression: a negative self-loop is a one-vertex negative cycle.
	// Before the fix both graph constructors dropped self-loops before
	// looking at the weight, so Solve returned a clean result with
	// dist(1,1)=0 instead of a negative-cycle error.
	_, err := NewGraph(3, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 1, W: -2}})
	if err == nil {
		t.Fatal("undirected negative self-loop must be rejected")
	}
	// The directed entry point must reject it too.
	if _, err := SolveDirected(3, []Arc{{0, 1, 1}, {1, 1, -2}}, 1); err == nil {
		t.Fatal("directed negative self-loop must be rejected")
	}
	// Nonnegative self-loops remain harmless on both paths.
	g, err := NewGraph(3, []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 1, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := Solve(g); err != nil || res.At(1, 1) != 0 {
		t.Fatalf("positive self-loop should be dropped: err=%v", err)
	}
	if res, err := SolveDirected(3, []Arc{{0, 1, 1}, {1, 1, 0}}, 1); err != nil || res.At(1, 1) != 0 {
		t.Fatalf("zero self-loop arc should be dropped: err=%v", err)
	}
}
