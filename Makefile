GO ?= go

RACE_PKGS := ./internal/par ./internal/core ./internal/serve ./internal/semiring

.PHONY: all build test race lint bench-smoke queryload-smoke chaos checkpoint-smoke gemm-smoke bench-gemm

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Compile and run every benchmark exactly once — catches benchmarks that
# no longer build or crash without paying for a full measurement run.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Exercise the query-serving load generator end to end on a small graph:
# factor build, Zipf workload, cached-vs-uncached comparison, hit-rate
# accounting. Keeps the serving stack's headline numbers runnable in CI.
queryload-smoke:
	$(GO) run ./cmd/queryload -graph powergrid_s -quick -queries 5000

# Fault-injection suite under the race detector: cancellation
# mid-factorization, worker panics with task attribution, corrupt
# checkpoint rejection, shutdown during streamed responses.
chaos:
	$(GO) test -race -run 'TestChaos' $(RACE_PKGS)

# Checkpoint round trip through the CLI: factor a graph, save it, answer
# the same route query from the saved file, and require byte-identical
# distance output. Guards the on-disk format end to end.
checkpoint-smoke:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/superfw -graph powergrid_s -quick -factor \
		-savefactor "$$tmp/f.sfwf" -route 0,100 | grep 'dist(' > "$$tmp/built.txt"; \
	$(GO) run ./cmd/superfw -loadfactor "$$tmp/f.sfwf" -route 0,100 \
		| grep 'dist(' > "$$tmp/restored.txt"; \
	diff "$$tmp/built.txt" "$$tmp/restored.txt" \
		&& echo "checkpoint round trip OK: $$(cat "$$tmp/restored.txt")"

# Exercise the adaptive GEMM engine end to end: the differential suite
# (every dispatch path vs the naive kernel, under the race detector) plus
# one quick pass of the gemm density × size sweep.
gemm-smoke:
	$(GO) test -race -run 'TestGemmDifferential|TestKernelCounters' ./internal/semiring
	$(GO) run ./cmd/apspbench -exp gemm -quick

# Full density × size sweep of the adaptive GEMM engine vs the frozen
# seed kernel. Writes BENCH_gemm.md (table) and BENCH_gemm.json (raw
# measurements incl. dispatch counters).
bench-gemm:
	$(GO) run ./cmd/apspbench -exp gemm -out BENCH_gemm.md
	@echo "wrote BENCH_gemm.md and BENCH_gemm.json"
