GO ?= go

RACE_PKGS := ./internal/par ./internal/core ./internal/serve ./internal/semiring ./internal/shard ./internal/wal

# Sources the apspvet vettool is built from; the bin/apspvet rule
# rebuilds only when one of these changes, so repeated `make lint` /
# `make check` runs reuse the cached binary.
APSPVET := bin/apspvet
APSPVET_SRC := $(wildcard cmd/apspvet/*.go internal/analysis/*.go \
	internal/analysis/analysistest/*.go internal/analyzers/*.go)

.PHONY: all build test race lint apspvet apspvet-baseline apspvet-sarif staticcheck govulncheck check cross-arm64 bench-smoke queryload-smoke chaos chaos-checkpoint checkpoint-smoke gemm-smoke shard-smoke update-smoke recovery-smoke bench-gemm bench-update

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

$(APSPVET): $(APSPVET_SRC)
	$(GO) build -o $@ ./cmd/apspvet

# The repo-specific analyzer suite (DESIGN.md §11), run two ways: the
# real `go vet -vettool` driver (type-checked against the exact build
# configuration, cached by cmd/go), then the standalone driver in
# diff-aware mode — findings fingerprinted in .apspvet-baseline.json are
# accepted debt; only findings new relative to the baseline fail, and
# the full finding set lands in apspvet.sarif for code scanning.
apspvet: $(APSPVET)
	$(GO) vet -vettool=$(APSPVET) ./...
	$(APSPVET) -sarif apspvet.sarif -baseline .apspvet-baseline.json -diff ./...

# Refresh the accepted-findings baseline. Run after deliberately
# accepting a finding (with a justification in the PR); the diff in
# .apspvet-baseline.json is itself reviewable.
apspvet-baseline: $(APSPVET)
	$(APSPVET) -baseline .apspvet-baseline.json -writebaseline ./...

# SARIF 2.1 log of the complete (unfiltered) finding set, for upload to
# GitHub code scanning.
apspvet-sarif: $(APSPVET)
	$(APSPVET) -sarif apspvet.sarif ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# staticcheck is an external tool: run it when installed, and skip with a
# note otherwise (the offline dev container has no network to install it;
# the CI job installs a pinned version).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs the pinned version)"; \
	fi

# govulncheck follows the same pattern: pinned in CI, best-effort
# locally.
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs the pinned version)"; \
	fi

# The pre-merge umbrella: everything that must hold statically before
# tests even matter. The four independent gates (apspvet, stock
# vet+gofmt, staticcheck, govulncheck) run concurrently with prefixed
# output; the binary is built up front so the parallel sub-makes share
# it instead of racing to create it.
check: build $(APSPVET)
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	for t in apspvet lint staticcheck govulncheck; do \
		( { $(MAKE) --no-print-directory $$t; echo $$? > "$$tmp/$$t"; } 2>&1 \
			| sed "s/^/[$$t] /" ) & \
	done; \
	wait; \
	fail=0; for t in apspvet lint staticcheck govulncheck; do \
		st="$$(cat "$$tmp/$$t" 2>/dev/null || echo 1)"; \
		if [ "$$st" != "0" ]; then echo "check: $$t FAILED (exit $$st)"; fail=1; fi; \
	done; \
	if [ "$$fail" != "0" ]; then exit 1; fi; \
	echo "check OK"

# Compile and run every benchmark exactly once — catches benchmarks that
# no longer build or crash without paying for a full measurement run.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Exercise the query-serving load generator end to end on a small graph:
# factor build, Zipf workload, cached-vs-uncached comparison, hit-rate
# accounting. Keeps the serving stack's headline numbers runnable in CI.
queryload-smoke:
	$(GO) run ./cmd/queryload -graph powergrid_s -quick -queries 5000

# Fault-injection suite under the race detector: cancellation
# mid-factorization, worker panics with task attribution, corrupt
# checkpoint rejection, shutdown during streamed responses.
chaos: chaos-checkpoint
	$(GO) test -race -run 'TestChaos' $(RACE_PKGS)

# Whole-process fault injection via SUPERFW_FAULTPOINTS through a full
# checkpoint-restore cycle: a save with a short-write fault armed must
# fail loudly and must not leave a loadable file behind; a clean save
# followed by a restore in a fresh process (env-armed with a fault the
# query path never visits) must answer the same route bit-for-bit.
chaos-checkpoint:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; set -e; \
	echo "chaos-checkpoint: save under injected short write must fail"; \
	if SUPERFW_FAULTPOINTS='core.factorio.write=shortwrite=64' \
		$(GO) run ./cmd/superfw -graph powergrid_s -quick -factor \
		-savefactor "$$tmp/torn.sfwf" >/dev/null 2>&1; then \
		echo "FAIL: faulted save exited 0"; exit 1; fi; \
	if [ -f "$$tmp/torn.sfwf" ] && $(GO) run ./cmd/superfw \
		-loadfactor "$$tmp/torn.sfwf" -route 0,100 >/dev/null 2>&1; then \
		echo "FAIL: torn checkpoint loaded"; exit 1; fi; \
	echo "chaos-checkpoint: clean save, then env-armed restore"; \
	$(GO) run ./cmd/superfw -graph powergrid_s -quick -factor \
		-savefactor "$$tmp/f.sfwf" -route 0,100 | grep 'dist(' > "$$tmp/built.txt"; \
	SUPERFW_FAULTPOINTS='core.factor.eliminate=sleep=1ms' \
	$(GO) run ./cmd/superfw -loadfactor "$$tmp/f.sfwf" -route 0,100 \
		| grep 'dist(' > "$$tmp/restored.txt"; \
	diff "$$tmp/built.txt" "$$tmp/restored.txt" \
		&& echo "chaos-checkpoint OK: $$(cat "$$tmp/restored.txt")"

# Checkpoint round trip through the CLI: factor a graph, save it, answer
# the same route query from the saved file, and require byte-identical
# distance output. Guards the on-disk format end to end.
checkpoint-smoke:
	@tmp="$$(mktemp -d)"; trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/superfw -graph powergrid_s -quick -factor \
		-savefactor "$$tmp/f.sfwf" -route 0,100 | grep 'dist(' > "$$tmp/built.txt"; \
	$(GO) run ./cmd/superfw -loadfactor "$$tmp/f.sfwf" -route 0,100 \
		| grep 'dist(' > "$$tmp/restored.txt"; \
	diff "$$tmp/built.txt" "$$tmp/restored.txt" \
		&& echo "checkpoint round trip OK: $$(cat "$$tmp/restored.txt")"

# Exercise the adaptive GEMM engine end to end: the differential suite
# (every dispatch path and the fused packed pipeline vs the naive
# kernel, under the race detector), the fused-vs-staged timing gate on
# AVX-512 hosts (skips itself elsewhere), plus one quick pass of the
# gemm density × size sweep and its fused companions.
gemm-smoke:
	$(GO) test -race -run 'TestGemmDifferential|TestKernelCounters|FuzzGemmDifferential|TestFusedMatchesStagedAndNaive|TestFusedReuseCounters|FuzzFusedDifferential|TestVectorKernelMatchesScalar' ./internal/semiring
	FUSED_GATE=1 $(GO) test -run TestFusedDenseSpeedupGate -v ./internal/bench
	$(GO) run ./cmd/apspbench -exp gemm,gemmvec,gemmreuse -quick

# Cross-compile the whole tree for arm64: proves the portable kernel
# fallbacks (simd_noasm.go) keep every package buildable off amd64.
# Compile-only — the container has no arm64 runtime.
cross-arm64:
	GOARCH=arm64 GOOS=linux $(GO) build ./...
	GOARCH=arm64 GOOS=linux $(GO) vet ./...

# Chaos smoke for the sharded serving stack: 3 checkpoint-warm workers
# behind an apspshard coordinator, a queryload storm with a SIGKILL
# mid-storm, and assertions that the replica absorbs the death (zero
# dropped queries), the prober records exactly the failover, and the
# restarted worker rejoins warm from the checkpoint.
shard-smoke:
	./scripts/shard_smoke.sh

# End-to-end smoke for the live-update subsystem: 2 workers with live
# updaters behind a coordinator, a queryload storm with a
# POST /admin/update landing mid-storm, and assertions that the snapshot
# swap drops zero queries, every worker converges on the same advanced
# generation, queries see the new weight, and the bench gate holds
# (decrease-only patch >= 20x faster than a full rebuild on road_l).
update-smoke:
	./scripts/update_smoke.sh

# Crash-recovery smoke for the durable stack: 2 journaling workers
# (-statedir) behind a journaling coordinator, an update committed, a
# SIGKILL mid-storm, a second update while the worker is dead, then a
# restart from the state dir. Asserts warm recovery at the worker's own
# last durable generation, generation-gated re-admission (stale hold +
# journaled batch streamed), zero dropped queries, and bit-identical
# distances across workers at the converged generation.
recovery-smoke:
	./scripts/recovery_smoke.sh

# Full density × size sweep of the GEMM engine legs (seed | staged AVX2
# | fused packed full-ISA) plus the scalar-vs-vector variant table and
# the pack-amortization table. Writes BENCH_gemm.md (tables) and
# BENCH_gemm.json (raw sweep measurements incl. dispatch counters and
# machine/ISA metadata).
bench-gemm:
	$(GO) run ./cmd/apspbench -exp gemm,gemmvec,gemmreuse -out BENCH_gemm.md
	@echo "wrote BENCH_gemm.md and BENCH_gemm.json"

# Live-update patch vs full rebuild across the catalog graphs (always
# full size — see internal/bench/update.go). Writes BENCH_update.md
# (table) and BENCH_update.json (raw measurements incl. dirty-set
# sizes).
bench-update:
	$(GO) run ./cmd/apspbench -exp update -out BENCH_update.md
	@echo "wrote BENCH_update.md and BENCH_update.json"
