GO ?= go

RACE_PKGS := ./internal/par ./internal/core ./internal/serve

.PHONY: all build test race lint bench-smoke queryload-smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Compile and run every benchmark exactly once — catches benchmarks that
# no longer build or crash without paying for a full measurement run.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Exercise the query-serving load generator end to end on a small graph:
# factor build, Zipf workload, cached-vs-uncached comparison, hit-rate
# accounting. Keeps the serving stack's headline numbers runnable in CI.
queryload-smoke:
	$(GO) run ./cmd/queryload -graph powergrid_s -quick -queries 5000
