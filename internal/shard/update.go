package shard

// Live-update fan-out. POST /admin/update on the coordinator drives the
// workers' two-phase update protocol (internal/serve/update.go) so a
// sharded deployment swaps factor generations all-or-nothing: every
// live worker prepares the patch (the expensive phase — the old
// snapshot keeps serving throughout), and only if every prepare
// succeeds is the transaction decided; any prepare failure aborts it
// everywhere and no worker moves.
//
// The decision point is durable: after the prepares and before the
// commit round, the batch is appended (fsync'd) to the coordinator's
// write-ahead journal with an explicit {from, gen} window and the
// expected generation advances. From that instant the transaction
// cannot be lost — a worker that misses the commit round (crash,
// SIGKILL, network) is held out of rotation and converged by the
// anti-entropy loop (antientropy.go) instead of rolled back. Fan-out
// targets only live workers, which is exactly why anti-entropy exists:
// a worker that is down during a storm of updates rejoins generations
// behind and is streamed the batches it missed before re-admission.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/par"
	"repro/internal/serve"
	"repro/internal/wal"
)

// updateTxnSeq disambiguates transactions started in the same instant.
var updateTxnSeq atomic.Uint64

// coordUpdateRequest is the coordinator's POST /admin/update body: just
// the edges — the coordinator owns the transaction protocol.
type coordUpdateRequest struct {
	Edges []core.EdgeDelta `json:"edges"`
}

// workerUpdateRequest mirrors the worker endpoint's body.
type workerUpdateRequest struct {
	Mode  string           `json:"mode"`
	Txn   string           `json:"txn,omitempty"`
	Edges []core.EdgeDelta `json:"edges,omitempty"`
	// Gen pins the generation the step must produce (commit rounds,
	// catch-up applies, resyncs); From is the batch's lowest cleanly
	// applicable generation (catch-up applies).
	Gen  uint64 `json:"gen,omitempty"`
	From uint64 `json:"from,omitempty"`
}

// workerUpdateReply decodes the fields the coordinator acts on.
type workerUpdateReply struct {
	Generation uint64 `json:"generation"`
	Error      string `json:"error"`
}

// adminUpdate serves POST /admin/update: prepare on every live worker,
// journal the decision, then commit with an explicit generation.
func (c *Coordinator) adminUpdate(w http.ResponseWriter, r *http.Request) {
	var req coordUpdateRequest
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		c.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad update body: %w", err))
		return
	}
	if len(req.Edges) == 0 {
		c.writeErr(w, http.StatusBadRequest, fmt.Errorf("update needs at least one edge"))
		return
	}
	// One transaction at a time: the journal's {from, gen} windows (and
	// the workers' single prepared-patch slot) assume updates are
	// serial. The prober also reads this flag to excuse transient lag.
	if !c.updating.CompareAndSwap(false, true) {
		w.Header().Set("Retry-After", serve.RetryAfterDefault)
		c.writeErr(w, http.StatusConflict, fmt.Errorf("an update transaction is already in progress"))
		return
	}
	defer c.updating.Store(false)

	alive := c.aliveWorkers()
	if len(alive) == 0 {
		w.Header().Set("Retry-After", serve.RetryAfterDefault)
		c.writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("no live workers to update"))
		return
	}
	txn := fmt.Sprintf("upd-%d-%d", time.Now().UnixNano(), updateTxnSeq.Add(1))
	ctx, cancel := context.WithTimeout(r.Context(), c.opts.UpdateTimeout)
	defer cancel()

	cur := c.expectedGen.Load()
	next := cur + 1

	if errs := c.updateRound(ctx, alive, &workerUpdateRequest{Mode: "prepare", Txn: txn, Edges: req.Edges}, nil); len(errs) > 0 {
		// Abort everywhere — including the workers that prepared fine —
		// so no later commit can tear the generations apart.
		c.updateRound(ctx, alive, &workerUpdateRequest{Mode: "abort", Txn: txn}, nil)
		c.log.Printf("shard: update %s aborted, %d of %d live worker(s) failed to prepare: %v",
			txn, len(errs), len(alive), errs[0])
		c.writeJSON(w, http.StatusBadGateway, map[string]any{
			"updated": false,
			"txn":     txn,
			"aborted": true,
			"error":   fmt.Sprintf("prepare failed on %d of %d live worker(s): %v", len(errs), len(alive), errs[0]),
		})
		return
	}

	// The durable decision point: once the batch is journaled, the
	// transaction is committed regardless of what happens to the commit
	// round — recovery and anti-entropy finish it. A journal failure
	// aborts while aborting is still possible.
	if c.journal != nil {
		rec := wal.Record{From: cur, Gen: next, Edges: make([]wal.Edge, len(req.Edges))}
		for i, e := range req.Edges {
			rec.Edges[i] = wal.Edge{U: e.U, V: e.V, W: e.W}
		}
		if err := c.journal.Append(rec); err != nil {
			c.updateRound(ctx, alive, &workerUpdateRequest{Mode: "abort", Txn: txn}, nil)
			c.log.Printf("shard: update %s aborted, journal append failed: %v", txn, err)
			c.writeJSON(w, http.StatusInternalServerError, map[string]any{
				"updated": false,
				"txn":     txn,
				"aborted": true,
				"error":   fmt.Sprintf("journal append failed: %v", err),
			})
			return
		}
	}
	c.expectedGen.Store(next)

	gens := make(map[string]uint64, len(alive))
	errs := c.updateRound(ctx, alive, &workerUpdateRequest{Mode: "commit", Txn: txn, Gen: next}, gens)
	for _, ws := range alive {
		if g, ok := gens[ws.w.ID]; ok {
			ws.gen.Store(g)
		}
	}
	if len(errs) > 0 {
		// The decision is durable and some workers swapped; the rest are
		// stragglers, not a rollback. Hold them out of rotation — the
		// anti-entropy loop streams them the journaled batch and the
		// prober re-admits them at generation next.
		for wi, ws := range c.workers {
			if !c.table.Alive(wi) || gens[ws.w.ID] == next {
				continue
			}
			if inWorkers(alive, ws) && c.table.MarkDown(wi) {
				c.log.Printf("shard: update %s: worker %s missed the commit round; held out for anti-entropy", txn, ws.w.ID)
			}
		}
		c.log.Printf("shard: update %s committed at generation %d with %d straggler(s): %v", txn, next, len(errs), errs[0])
		c.writeJSON(w, http.StatusOK, map[string]any{
			"updated":      true,
			"txn":          txn,
			"generation":   next,
			"generations":  gens,
			"converged":    false,
			"stragglers":   len(errs),
			"catchup_sent": c.journal != nil,
		})
		return
	}
	converged := true
	for _, g := range gens {
		if g != next {
			converged = false
		}
	}
	c.maybeCoalesce(next)
	c.log.Printf("shard: update %s committed on %d live worker(s), generation %d (converged=%v)",
		txn, len(alive), next, converged)
	c.writeJSON(w, http.StatusOK, map[string]any{
		"updated":     true,
		"txn":         txn,
		"generation":  next,
		"generations": gens,
		"converged":   converged,
	})
}

// aliveWorkers snapshots the workers currently in rotation — the
// transaction's participant set for all three rounds.
func (c *Coordinator) aliveWorkers() []*workerState {
	var alive []*workerState
	for wi, ws := range c.workers {
		if c.table.Alive(wi) {
			alive = append(alive, ws)
		}
	}
	return alive
}

func inWorkers(set []*workerState, ws *workerState) bool {
	for _, s := range set {
		if s == ws {
			return true
		}
	}
	return false
}

// coalesceRecords is the journal size past which a fully-converged
// commit folds old records into one snapshot; coalesceKeep recent
// generations stay granular so a briefly-lagging worker streams small
// batches instead of one big snapshot.
const (
	coalesceRecords = 256
	coalesceKeep    = 16
)

// maybeCoalesce compacts the coordinator journal once it grows past
// coalesceRecords. Coalescing (not deleting) keeps the coverage floor:
// a worker anywhere inside the folded span still catches up from the
// snapshot record.
func (c *Coordinator) maybeCoalesce(gen uint64) {
	if c.journal == nil || gen <= coalesceKeep {
		return
	}
	if st := c.journal.Stats(); st.Records < coalesceRecords {
		return
	}
	if err := c.journal.CompactCoalesce(gen - coalesceKeep); err != nil {
		c.log.Printf("shard: journal coalesce failed (journal intact): %v", err)
	}
}

// updateRound sends one protocol step to every participant in
// parallel, returning the per-worker failures. When gens is non-nil it
// collects the generation each worker reported.
func (c *Coordinator) updateRound(ctx context.Context, participants []*workerState, req *workerUpdateRequest, gens map[string]uint64) []error {
	var mu sync.Mutex
	var errs []error
	grp := par.NewGroup(len(participants))
	for _, ws := range participants {
		ws := ws
		grp.Go(func() {
			fault.Inject("shard.update")
			reply, err := c.sendUpdate(ctx, ws.w, req)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("worker %s: %w", ws.w.ID, err))
				return
			}
			if gens != nil {
				gens[ws.w.ID] = reply.Generation
			}
		})
	}
	grp.Wait()
	return errs
}

// sendUpdate posts one protocol step to one worker.
func (c *Coordinator) sendUpdate(ctx context.Context, w Worker, body *workerUpdateRequest) (*workerUpdateReply, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.URL+"/admin/update", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	var reply workerUpdateReply
	if err := json.Unmarshal(raw, &reply); err != nil {
		return nil, fmt.Errorf("%s status %d: %s", body.Mode, resp.StatusCode, raw)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s status %d: %s", body.Mode, resp.StatusCode, reply.Error)
	}
	return &reply, nil
}
