package shard

// Live-update fan-out. POST /admin/update on the coordinator drives the
// workers' two-phase update protocol (internal/serve/update.go) so a
// sharded deployment swaps factor generations all-or-nothing: every
// worker prepares the patch (the expensive phase — the old snapshot
// keeps serving throughout), and only if every prepare succeeds does
// the coordinator send the commit round; any prepare failure aborts the
// transaction everywhere and no worker moves. Replication is why this
// must be atomic — every worker serves the full graph, so one worker
// answering from generation g+1 while its failover twin still serves g
// would make query results depend on routing luck.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/par"
)

// updateTxnSeq disambiguates transactions started in the same instant.
var updateTxnSeq atomic.Uint64

// coordUpdateRequest is the coordinator's POST /admin/update body: just
// the edges — the coordinator owns the transaction protocol.
type coordUpdateRequest struct {
	Edges []core.EdgeDelta `json:"edges"`
}

// workerUpdateRequest mirrors the worker endpoint's body.
type workerUpdateRequest struct {
	Mode  string           `json:"mode"`
	Txn   string           `json:"txn"`
	Edges []core.EdgeDelta `json:"edges,omitempty"`
}

// workerUpdateReply decodes the fields the coordinator acts on.
type workerUpdateReply struct {
	Generation uint64 `json:"generation"`
	Error      string `json:"error"`
}

// adminUpdate serves POST /admin/update: prepare on every worker, then
// commit everywhere or abort everywhere.
func (c *Coordinator) adminUpdate(w http.ResponseWriter, r *http.Request) {
	var req coordUpdateRequest
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		c.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad update body: %w", err))
		return
	}
	if len(req.Edges) == 0 {
		c.writeErr(w, http.StatusBadRequest, fmt.Errorf("update needs at least one edge"))
		return
	}
	txn := fmt.Sprintf("upd-%d-%d", time.Now().UnixNano(), updateTxnSeq.Add(1))
	ctx, cancel := context.WithTimeout(r.Context(), c.opts.UpdateTimeout)
	defer cancel()

	if errs := c.updateRound(ctx, &workerUpdateRequest{Mode: "prepare", Txn: txn, Edges: req.Edges}, nil); len(errs) > 0 {
		// Abort everywhere — including the workers that prepared fine —
		// so no later commit can tear the generations apart.
		c.updateRound(ctx, &workerUpdateRequest{Mode: "abort", Txn: txn}, nil)
		c.log.Printf("shard: update %s aborted, %d of %d worker(s) failed to prepare: %v",
			txn, len(errs), len(c.workers), errs[0])
		c.writeJSON(w, http.StatusBadGateway, map[string]any{
			"updated": false,
			"txn":     txn,
			"aborted": true,
			"error":   fmt.Sprintf("prepare failed on %d of %d worker(s): %v", len(errs), len(c.workers), errs[0]),
		})
		return
	}

	gens := make(map[string]uint64, len(c.workers))
	if errs := c.updateRound(ctx, &workerUpdateRequest{Mode: "commit", Txn: txn}, gens); len(errs) > 0 {
		// A commit can only fail if something (a reload, a worker restart)
		// raced the transaction. Nothing to roll back — committed workers
		// have already swapped — so surface the divergence loudly.
		c.log.Printf("shard: update %s commit incomplete on %d worker(s): %v", txn, len(errs), errs[0])
		c.writeJSON(w, http.StatusInternalServerError, map[string]any{
			"updated":     false,
			"txn":         txn,
			"generations": gens,
			"converged":   false,
			"error":       fmt.Sprintf("commit failed on %d of %d worker(s): %v", len(errs), len(c.workers), errs[0]),
		})
		return
	}
	converged := true
	var first uint64
	for _, g := range gens {
		if first == 0 {
			first = g
		} else if g != first {
			converged = false
		}
	}
	c.log.Printf("shard: update %s committed on %d worker(s), generation %d (converged=%v)",
		txn, len(c.workers), first, converged)
	c.writeJSON(w, http.StatusOK, map[string]any{
		"updated":     true,
		"txn":         txn,
		"generations": gens,
		"converged":   converged,
	})
}

// updateRound sends one protocol step to every worker in parallel,
// returning the per-worker failures. When gens is non-nil it collects
// the generation each worker reported.
func (c *Coordinator) updateRound(ctx context.Context, req *workerUpdateRequest, gens map[string]uint64) []error {
	var mu sync.Mutex
	var errs []error
	grp := par.NewGroup(len(c.workers))
	for _, ws := range c.workers {
		ws := ws
		grp.Go(func() {
			fault.Inject("shard.update")
			reply, err := c.sendUpdate(ctx, ws.w, req)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("worker %s: %w", ws.w.ID, err))
				return
			}
			if gens != nil {
				gens[ws.w.ID] = reply.Generation
			}
		})
	}
	grp.Wait()
	return errs
}

// sendUpdate posts one protocol step to one worker.
func (c *Coordinator) sendUpdate(ctx context.Context, w Worker, body *workerUpdateRequest) (*workerUpdateReply, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.URL+"/admin/update", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	var reply workerUpdateReply
	if err := json.Unmarshal(raw, &reply); err != nil {
		return nil, fmt.Errorf("%s status %d: %s", body.Mode, resp.StatusCode, raw)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s status %d: %s", body.Mode, resp.StatusCode, reply.Error)
	}
	return &reply, nil
}
