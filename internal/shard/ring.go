// Package shard promotes the in-process partitioning of the blocked
// factorization (internal/dist/blockedfw splits tile ownership across
// ranks) to a real deployment shape: a coordinator process that splits
// query traffic across N apspserve workers by consistent-hash vertex
// ranges, routes single-pair queries to the owning shard, scatter-
// gathers /dist/batch with per-shard deadlines, and fails a dead shard
// over to its replica.
//
// Every worker serves the same checksummed factor checkpoint (PR 3), so
// what is sharded is the *query working set*, not correctness: routing
// by vertex ownership keeps each worker's bounded label cache hot on its
// own vertex range, and any worker can answer any query — which is
// exactly what makes replica failover safe. The ring assigns each vertex
// slot a primary and one replica; the routing table (table.go) tracks
// liveness and promotes replicas when a primary dies.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Worker identifies one apspserve process in the shard set.
type Worker struct {
	ID  string `json:"id"`
	URL string `json:"url"` // base URL, e.g. http://127.0.0.1:8081
}

// DefaultSlots is the number of vertex ranges hashed onto the ring.
// Slots, not vertices, are the unit of ownership: promotion and
// re-admission move whole slots, and 64 slots spread evenly across a
// handful of workers while keeping the routing table tiny.
const DefaultSlots = 64

// defaultVnodes is the number of virtual points each worker projects
// onto the hash ring; more points smooth the slot distribution.
const defaultVnodes = 64

// Ring is the static consistent-hash assignment of vertex slots to
// workers: each slot has a primary and (with >= 2 workers) one replica,
// always on a different worker. The assignment depends only on worker
// IDs and the slot count, so every coordinator that sees the same
// worker set computes the same ring — there is no assignment state to
// replicate.
type Ring struct {
	workers []Worker
	slots   int
	primary []int // per-slot worker index
	replica []int // per-slot worker index, -1 with a single worker
}

// NewRing hashes the workers' virtual nodes onto a ring and assigns
// each of slots vertex ranges a primary (the slot hash's successor) and
// a replica (the next point owned by a different worker).
func NewRing(workers []Worker, slots int) (*Ring, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("shard: ring needs at least one worker")
	}
	if slots <= 0 {
		slots = DefaultSlots
	}
	ids := map[string]bool{}
	for _, w := range workers {
		if w.ID == "" {
			return nil, fmt.Errorf("shard: worker with empty ID (url %q)", w.URL)
		}
		if ids[w.ID] {
			return nil, fmt.Errorf("shard: duplicate worker ID %q", w.ID)
		}
		ids[w.ID] = true
	}

	type point struct {
		hash   uint64
		worker int
	}
	points := make([]point, 0, len(workers)*defaultVnodes)
	for wi, w := range workers {
		for v := 0; v < defaultVnodes; v++ {
			points = append(points, point{hash64(w.ID + "#" + strconv.Itoa(v)), wi})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].hash != points[j].hash {
			return points[i].hash < points[j].hash
		}
		return points[i].worker < points[j].worker
	})

	r := &Ring{
		workers: append([]Worker(nil), workers...),
		slots:   slots,
		primary: make([]int, slots),
		replica: make([]int, slots),
	}
	for s := 0; s < slots; s++ {
		h := hash64("slot-" + strconv.Itoa(s))
		// Successor point on the ring owns the slot; walk on (wrapping)
		// until a point from a different worker supplies the replica.
		i := sort.Search(len(points), func(i int) bool { return points[i].hash >= h })
		if i == len(points) {
			i = 0
		}
		r.primary[s] = points[i].worker
		r.replica[s] = -1
		for step := 1; step < len(points); step++ {
			p := points[(i+step)%len(points)]
			if p.worker != r.primary[s] {
				r.replica[s] = p.worker
				break
			}
		}
	}
	return r, nil
}

// Workers returns the ring's worker set in index order.
func (r *Ring) Workers() []Worker { return r.workers }

// Slots returns the number of vertex ranges on the ring.
func (r *Ring) Slots() int { return r.slots }

// SlotOf maps vertex v of an n-vertex graph to its slot: contiguous
// vertex ranges, so the nested-dissection locality of neighboring
// vertex ids survives routing and each worker's label cache stays hot
// on a compact range.
func (r *Ring) SlotOf(v, n int) int {
	if n <= 0 {
		return 0
	}
	s := v * r.slots / n
	if s < 0 {
		s = 0
	}
	if s >= r.slots {
		s = r.slots - 1
	}
	return s
}

// Owners returns the slot's static (ring-assigned) primary and replica
// worker indexes; replica is -1 when the ring has a single worker.
func (r *Ring) Owners(slot int) (primary, replica int) {
	return r.primary[slot], r.replica[slot]
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	// FNV alone clusters similar short keys ("w1#0", "w1#1", ...) into
	// adjacent ring positions, which collapses the whole ring onto one
	// worker; the murmur3 fmix64 finalizer scatters them uniformly.
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
