package shard

// The routing table is the mutable half of routing: the ring (ring.go)
// is a static assignment, the table overlays worker liveness on it and
// answers "who serves vertex v right now". Promotion is recomputation:
// when a primary dies, every slot it owned routes to its replica; when
// it returns (restored from its factor checkpoint), the slots move
// back. Each liveness transition bumps a generation counter exactly
// once — the generation is stamped on forwarded requests and asserted
// by the failover tests, so split-brain routing (two table states
// interleaving during one failover) is observable.

import (
	"sync"
	"sync/atomic"
)

// Route is one vertex's current routing decision.
type Route struct {
	// Primary is the worker currently serving the vertex's slot: the
	// ring primary while it is alive, its replica after a promotion.
	// Nil when both owners are down (the slot is unroutable).
	Primary *Worker
	// Replica is the fallback the coordinator may retry against, nil
	// when no distinct live fallback exists.
	Replica *Worker
	// Generation is the table generation the decision was made under.
	Generation uint64
}

// Table overlays liveness on a Ring and routes vertices to live owners.
type Table struct {
	ring *Ring
	n    int // vertex count

	mu         sync.RWMutex
	alive      []bool
	curPrimary []int // per-slot live owner, -1 if none
	curReplica []int // per-slot live fallback distinct from curPrimary, -1 if none

	generation   atomic.Uint64
	failovers    atomic.Uint64
	readmissions atomic.Uint64
}

// NewTable builds a routing table over ring for an n-vertex graph with
// every worker presumed alive.
func NewTable(ring *Ring, n int) *Table {
	t := &Table{
		ring:       ring,
		n:          n,
		alive:      make([]bool, len(ring.workers)),
		curPrimary: make([]int, ring.slots),
		curReplica: make([]int, ring.slots),
	}
	for i := range t.alive {
		t.alive[i] = true
	}
	t.recomputeLocked()
	return t
}

// recomputeLocked rebuilds the per-slot routing from the ring plus the
// current liveness vector. Callers hold mu.
func (t *Table) recomputeLocked() {
	for s := 0; s < t.ring.slots; s++ {
		p, r := t.ring.Owners(s)
		switch {
		case t.alive[p]:
			t.curPrimary[s] = p
			if r >= 0 && t.alive[r] {
				t.curReplica[s] = r
			} else {
				t.curReplica[s] = -1
			}
		case r >= 0 && t.alive[r]:
			// Promotion: the replica serves the slot alone.
			t.curPrimary[s] = r
			t.curReplica[s] = -1
		default:
			t.curPrimary[s] = -1
			t.curReplica[s] = -1
		}
	}
}

// Route returns the current owners for vertex v.
func (t *Table) Route(v int) Route {
	slot := t.ring.SlotOf(v, t.n)
	t.mu.RLock()
	p, r := t.curPrimary[slot], t.curReplica[slot]
	t.mu.RUnlock()
	route := Route{Generation: t.generation.Load()}
	if p >= 0 {
		route.Primary = &t.ring.workers[p]
	}
	if r >= 0 {
		route.Replica = &t.ring.workers[r]
	}
	return route
}

// MarkDown records worker wi as dead, promoting replicas for every slot
// it was serving. Idempotent: only the first call for a live worker
// changes the table, and that call advances the generation exactly
// once. Reports whether the table changed.
func (t *Table) MarkDown(wi int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if wi < 0 || wi >= len(t.alive) || !t.alive[wi] {
		return false
	}
	t.alive[wi] = false
	t.recomputeLocked()
	t.generation.Add(1)
	t.failovers.Add(1)
	return true
}

// MarkUp re-admits a restarted worker, returning its ring-assigned
// slots to it. Idempotent like MarkDown; one generation bump per actual
// re-admission.
func (t *Table) MarkUp(wi int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if wi < 0 || wi >= len(t.alive) || t.alive[wi] {
		return false
	}
	t.alive[wi] = true
	t.recomputeLocked()
	t.generation.Add(1)
	t.readmissions.Add(1)
	return true
}

// Alive reports worker wi's recorded liveness.
func (t *Table) Alive(wi int) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return wi >= 0 && wi < len(t.alive) && t.alive[wi]
}

// Ready reports whether every slot has a live owner — the coordinator's
// readiness condition.
func (t *Table) Ready() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, p := range t.curPrimary {
		if p < 0 {
			return false
		}
	}
	return true
}

// SlotCounts returns how many slots worker wi currently serves as
// primary and how many it backs as replica.
func (t *Table) SlotCounts(wi int) (primary, replica int) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for s := range t.curPrimary {
		if t.curPrimary[s] == wi {
			primary++
		}
		if t.curReplica[s] == wi {
			replica++
		}
	}
	return primary, replica
}

// Generation returns the current routing-table generation; it advances
// by exactly one on every failover and every re-admission.
func (t *Table) Generation() uint64 { return t.generation.Load() }

// Failovers returns how many primaries have been marked down.
func (t *Table) Failovers() uint64 { return t.failovers.Load() }

// Readmissions returns how many workers have rejoined after a failover.
func (t *Table) Readmissions() uint64 { return t.readmissions.Load() }
