package shard

// Live-update fan-out against REAL in-process workers (full
// serve.Server instances over the same graph, as a replicated
// deployment runs them), exercising the whole prepare/commit/abort
// protocol — including the all-or-nothing guarantee under an injected
// mid-prepare fault.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
)

// newUpdateCluster boots nWorkers full serve.Servers over one graph,
// each with its own factor and live updater, fronted by a coordinator.
func newUpdateCluster(t *testing.T, nWorkers int) (*Coordinator, *httptest.Server, *graph.Graph) {
	t.Helper()
	g := gen.RoadNetwork(10, 10, 0.3, 7)
	var workers []Worker
	for i := 0; i < nWorkers; i++ {
		plan, err := core.NewPlan(g, core.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		f, err := core.NewFactor(plan, 1)
		if err != nil {
			t.Fatal(err)
		}
		u, err := core.NewFactorUpdater(g, f, core.UpdaterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("w%d", i+1)
		s := serve.New(f, nil, g.N, serve.Options{
			Updater: u,
			Shard:   &serve.ShardIdentity{ID: id, Role: "worker"},
		})
		srv := httptest.NewServer(s.Handler())
		t.Cleanup(srv.Close)
		workers = append(workers, Worker{ID: id, URL: srv.URL})
	}
	c, err := New(Options{
		Workers:         workers,
		Slots:           16,
		DiscoverTimeout: 5 * time.Second,
		UpdateTimeout:   30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(c.Handler())
	t.Cleanup(front.Close)
	return c, front, g
}

func postClusterUpdate(t *testing.T, url string, edges []core.EdgeDelta, wantCode int) map[string]any {
	t.Helper()
	body, err := json.Marshal(map[string]any{"edges": edges})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/admin/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST /admin/update: code %d, want %d", resp.StatusCode, wantCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// workerGenerations reads each worker's factor generation off /health.
func workerGenerations(t *testing.T, c *Coordinator) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, ws := range c.workers {
		resp, err := http.Get(ws.w.URL + "/health")
		if err != nil {
			t.Fatal(err)
		}
		var h map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		out[ws.w.ID] = h["generation"].(float64)
	}
	return out
}

func TestShardUpdateFanout(t *testing.T) {
	c, front, g := newUpdateCluster(t, 2)
	e := g.Edges()[0]
	// Query through the coordinator before and after.
	distURL := fmt.Sprintf("%s/dist?u=%d&v=%d", front.URL, e.U, e.V)
	var before struct {
		Dist float64 `json:"dist"`
	}
	resp, err := http.Get(distURL)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&before); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	w := before.Dist * 0.1
	out := postClusterUpdate(t, front.URL, []core.EdgeDelta{{U: e.U, V: e.V, W: w}}, http.StatusOK)
	if out["updated"] != true || out["converged"] != true {
		t.Fatalf("update response %v", out)
	}
	for id, gen := range workerGenerations(t, c) {
		if gen != 2 {
			t.Fatalf("worker %s generation = %v, want 2", id, gen)
		}
	}
	var after struct {
		Dist float64 `json:"dist"`
	}
	resp, err = http.Get(distURL)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&after); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if after.Dist != w {
		t.Fatalf("dist through coordinator = %g, want %g", after.Dist, w)
	}
}

// TestChaosShardUpdateAllOrNothing injects a fault that fails exactly
// one worker's prepare (the 2nd visit to the apply failpoint — both
// workers run in this process) and asserts the transaction aborts
// everywhere: no worker's generation moves, and a retry with the fault
// cleared commits everywhere.
func TestChaosShardUpdateAllOrNothing(t *testing.T) {
	defer fault.Reset()
	c, front, g := newUpdateCluster(t, 2)
	e := g.Edges()[0]
	if err := fault.Enable("core.update.apply", "error@2"); err != nil {
		t.Fatal(err)
	}
	out := postClusterUpdate(t, front.URL, []core.EdgeDelta{{U: e.U, V: e.V, W: e.W * 0.1}}, http.StatusBadGateway)
	if out["updated"] != false || out["aborted"] != true {
		t.Fatalf("faulted update response %v", out)
	}
	fault.Reset()
	for id, gen := range workerGenerations(t, c) {
		if gen != 1 {
			t.Fatalf("worker %s generation = %v after aborted update, want 1 (all-or-nothing violated)", id, gen)
		}
	}
	out = postClusterUpdate(t, front.URL, []core.EdgeDelta{{U: e.U, V: e.V, W: e.W * 0.1}}, http.StatusOK)
	if out["updated"] != true || out["converged"] != true {
		t.Fatalf("retry response %v", out)
	}
	for id, gen := range workerGenerations(t, c) {
		if gen != 2 {
			t.Fatalf("worker %s generation = %v after retry, want 2", id, gen)
		}
	}
}
