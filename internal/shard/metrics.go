package shard

// Coordinator-side observability, served merged at GET /metrics: the
// routing table's generation/failover counters, per-shard health and
// routing counts, per-endpoint traffic, and scatter-gather latency.
// Like the worker metrics (internal/serve), everything is plain atomics
// with a fixed endpoint set, cheap enough to leave on under load.

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/serve"
	"repro/internal/wal"
)

type endpointCounters struct {
	requests  atomic.Uint64
	errors    atomic.Uint64 // responses with status >= 400
	latencyNS atomic.Uint64
}

type gatherCounters struct {
	batches     atomic.Uint64 // /dist/batch requests scattered
	subRequests atomic.Uint64 // per-shard sub-batches sent
	retries     atomic.Uint64 // sub-batches retried on a replica
	failures    atomic.Uint64 // batches failed whole (no partial results)
	latencyNS   atomic.Uint64 // summed wall time of whole gathers
}

type aeCounters struct {
	catchups        atomic.Uint64 // catch-up goroutines launched
	batchesStreamed atomic.Uint64 // journaled batches re-sent to stale workers
	resyncs         atomic.Uint64 // full overlay resyncs performed
	quarantines     atomic.Uint64 // workers parked with no bridge and no donor
	staleHolds      atomic.Uint64 // re-admissions refused on generation mismatch
}

type coordMetrics struct {
	started   time.Time
	endpoints map[string]*endpointCounters
	gather    gatherCounters
	ae        aeCounters
}

func newCoordMetrics() *coordMetrics {
	m := &coordMetrics{started: time.Now(), endpoints: map[string]*endpointCounters{}}
	for _, name := range []string{"dist", "dist_batch", "sssp", "route", "health", "readyz", "update"} {
		m.endpoints[name] = &endpointCounters{}
	}
	return m
}

func (m *coordMetrics) endpoint(name string) *endpointCounters {
	e, ok := m.endpoints[name]
	if !ok {
		panic("shard: unregistered endpoint " + name)
	}
	return e
}

// ShardSnapshot is one worker's row in the coordinator's /metrics.
type ShardSnapshot struct {
	ID    string `json:"id"`
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
	// PrimarySlots/ReplicaSlots count the vertex ranges this worker
	// currently serves and backs; they shift on failover/re-admission.
	PrimarySlots  int    `json:"primary_slots"`
	ReplicaSlots  int    `json:"replica_slots"`
	Routed        uint64 `json:"routed"` // requests + sub-batches sent to it
	Errors        uint64 `json:"errors"` // sends that failed or returned >= 500
	ProbeFailures uint64 `json:"probe_failures"`
	// Generation is the factor generation this worker last reported;
	// convergence means every shard row matches expected_generation.
	Generation uint64 `json:"generation"`
	// Quarantined means catch-up is stuck: no journal bridge and no
	// donor at the expected generation. StaleHolds counts re-admissions
	// refused because this worker's generation lagged the cluster's.
	Quarantined bool   `json:"quarantined"`
	StaleHolds  uint64 `json:"stale_holds"`
}

// AntiEntropySnapshot summarizes the coordinator's convergence work.
type AntiEntropySnapshot struct {
	Catchups        uint64 `json:"catchups"`
	BatchesStreamed uint64 `json:"batches_streamed"`
	Resyncs         uint64 `json:"resyncs"`
	Quarantines     uint64 `json:"quarantines"`
	StaleHolds      uint64 `json:"stale_holds"`
}

// GatherSnapshot summarizes /dist/batch scatter-gather behavior.
type GatherSnapshot struct {
	Batches      uint64  `json:"batches"`
	SubRequests  uint64  `json:"sub_requests"`
	Retries      uint64  `json:"retries"`
	Failures     uint64  `json:"failures"`
	AvgLatencyUS float64 `json:"avg_latency_us"`
}

// Snapshot is the coordinator's full /metrics payload.
type Snapshot struct {
	UptimeSec    float64                           `json:"uptime_sec"`
	Vertices     int                               `json:"vertices"`
	Slots        int                               `json:"slots"`
	Generation   uint64                            `json:"generation"`
	Failovers    uint64                            `json:"failovers"`
	Readmissions uint64                            `json:"readmissions"`
	Ready        bool                              `json:"ready"`
	Shards       []ShardSnapshot                   `json:"shards"`
	Endpoints    map[string]serve.EndpointSnapshot `json:"endpoints"`
	Gather       GatherSnapshot                    `json:"gather"`
	// ExpectedGeneration is the durably decided factor generation every
	// worker must reach before (re-)admission into the routing ring.
	ExpectedGeneration uint64              `json:"expected_generation"`
	AntiEntropy        AntiEntropySnapshot `json:"anti_entropy"`
	// Journal reports the coordinator's committed-update journal (nil
	// when running without -statedir).
	Journal *wal.Stats `json:"journal,omitempty"`
}

// Metrics returns the merged coordinator view; /metrics encodes exactly
// this value and the failover tests read it directly.
func (c *Coordinator) Metrics() Snapshot {
	snap := Snapshot{
		UptimeSec:          time.Since(c.metrics.started).Seconds(),
		Vertices:           c.n,
		Slots:              c.table.ring.Slots(),
		Generation:         c.table.Generation(),
		Failovers:          c.table.Failovers(),
		Readmissions:       c.table.Readmissions(),
		Ready:              c.table.Ready(),
		Endpoints:          make(map[string]serve.EndpointSnapshot, len(c.metrics.endpoints)),
		ExpectedGeneration: c.expectedGen.Load(),
		AntiEntropy: AntiEntropySnapshot{
			Catchups:        c.metrics.ae.catchups.Load(),
			BatchesStreamed: c.metrics.ae.batchesStreamed.Load(),
			Resyncs:         c.metrics.ae.resyncs.Load(),
			Quarantines:     c.metrics.ae.quarantines.Load(),
			StaleHolds:      c.metrics.ae.staleHolds.Load(),
		},
	}
	if c.journal != nil {
		st := c.journal.Stats()
		snap.Journal = &st
	}
	for wi, ws := range c.workers {
		p, r := c.table.SlotCounts(wi)
		snap.Shards = append(snap.Shards, ShardSnapshot{
			ID:            ws.w.ID,
			URL:           ws.w.URL,
			Alive:         c.table.Alive(wi),
			PrimarySlots:  p,
			ReplicaSlots:  r,
			Routed:        ws.routed.Load(),
			Errors:        ws.errors.Load(),
			ProbeFailures: ws.probeFailures.Load(),
			Generation:    ws.gen.Load(),
			Quarantined:   ws.quarantined.Load(),
			StaleHolds:    ws.staleHolds.Load(),
		})
	}
	names := make([]string, 0, len(c.metrics.endpoints))
	for name := range c.metrics.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := c.metrics.endpoints[name]
		reqs := e.requests.Load()
		es := serve.EndpointSnapshot{Requests: reqs, Errors: e.errors.Load()}
		if reqs > 0 {
			es.AvgLatencyUS = float64(e.latencyNS.Load()) / float64(reqs) / 1e3
		}
		snap.Endpoints[name] = es
	}
	g := &c.metrics.gather
	snap.Gather = GatherSnapshot{
		Batches:     g.batches.Load(),
		SubRequests: g.subRequests.Load(),
		Retries:     g.retries.Load(),
		Failures:    g.failures.Load(),
	}
	if snap.Gather.Batches > 0 {
		snap.Gather.AvgLatencyUS = float64(g.latencyNS.Load()) / float64(snap.Gather.Batches) / 1e3
	}
	return snap
}
