package shard

// End-to-end failover over real workers: three serve.Server instances
// answering from the same factor, fronted by a coordinator, with deaths
// injected via internal/fault and a connection-killing wrapper. The
// invariants under test are the ones the smoke suite relies on:
//
//   - a /dist/batch never returns partial results — it completes (via
//     replica retry) or errors whole;
//   - an injected gather timeout on one sub-batch is absorbed by the
//     replica, bit-for-bit correct against the factor;
//   - the routing-table generation advances exactly once per failover
//     and exactly once per re-admission, never more;
//   - queries keep answering 200 throughout a worker death.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/serve"
)

// killableWorker wraps a real serve handler; while dead, every request
// (queries and probes alike) has its connection torn down mid-flight —
// the client-visible signature of a SIGKILLed process.
type killableWorker struct {
	id    string
	serve *serve.Server
	inner http.Handler
	srv   *httptest.Server
	dead  atomic.Bool
}

func (k *killableWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.dead.Load() {
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server does not support hijacking")
		}
		conn, _, err := hj.Hijack()
		if err == nil {
			conn.Close()
		}
		return
	}
	k.inner.ServeHTTP(w, r)
}

// testCluster builds a factor, three killable workers serving it, and a
// coordinator over them (prober not running unless the test starts it).
func testCluster(t *testing.T) (*core.Factor, []*killableWorker, *Coordinator, int) {
	t.Helper()
	g := gen.RoadNetwork(10, 10, 0.3, 7)
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	var kws []*killableWorker
	var ws []Worker
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("w%d", i+1)
		s := serve.New(f, nil, g.N, serve.Options{Shard: &serve.ShardIdentity{ID: id, Role: "worker"}})
		kw := &killableWorker{id: id, serve: s, inner: s.Handler()}
		kw.srv = httptest.NewServer(kw)
		t.Cleanup(kw.srv.Close)
		kws = append(kws, kw)
		ws = append(ws, Worker{ID: id, URL: kw.srv.URL})
	}
	c, err := New(Options{
		Workers:         ws,
		Slots:           16,
		ProbeInterval:   20 * time.Millisecond,
		ProbeTimeout:    500 * time.Millisecond,
		FailThreshold:   2,
		ForwardTimeout:  5 * time.Second,
		GatherTimeout:   150 * time.Millisecond,
		DiscoverTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, kws, c, g.N
}

// postBatch sends pairs through the coordinator front and returns the
// response; callers assert status and contents.
func postBatch(t *testing.T, front string, pairs [][2]int) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"pairs": pairs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(front+"/dist/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, out
}

// allPairs spans every slot so a batch always touches every worker.
func allPairs(n int) [][2]int {
	pairs := make([][2]int, n)
	for i := range pairs {
		pairs[i] = [2]int{i, (i*7 + 3) % n}
	}
	return pairs
}

// checkBatchExact decodes a 200 batch response and compares every
// distance bit-for-bit against the factor.
func checkBatchExact(t *testing.T, f *core.Factor, pairs [][2]int, body []byte) {
	t.Helper()
	var got workerBatchResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("batch decode: %v (%s)", err, body)
	}
	if got.Count != len(pairs) || len(got.Dists) != len(pairs) || len(got.Reachable) != len(pairs) {
		t.Fatalf("batch shape: count=%d dists=%d reachable=%d want %d — partial results are forbidden",
			got.Count, len(got.Dists), len(got.Reachable), len(pairs))
	}
	for i, p := range pairs {
		want := f.Dist(p[0], p[1])
		if gd := parseDist(got.Dists[i]); gd != want && !(math.IsNaN(gd) && math.IsNaN(want)) {
			t.Fatalf("pair %v: dist %v, want %v", p, gd, want)
		}
	}
}

func TestChaosGatherTimeoutFailsOverToReplica(t *testing.T) {
	defer fault.Reset()
	f, _, c, n := testCluster(t)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	pairs := allPairs(n)

	// One sub-batch burns its whole per-shard deadline in the injected
	// sleep; its primary send must time out and the replica absorb it.
	if err := fault.Enable("shard.gather", "sleep=400ms@1"); err != nil {
		t.Fatal(err)
	}
	resp, body := postBatch(t, front.URL, pairs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with injected gather timeout: status %d (%s) — should have completed via replica", resp.StatusCode, body)
	}
	checkBatchExact(t, f, pairs, body)
	if r := c.Metrics().Gather.Retries; r < 1 {
		t.Fatalf("gather retries %d, want >= 1 (timeout should have forced a replica retry)", r)
	}
	if fl := c.Metrics().Gather.Failures; fl != 0 {
		t.Fatalf("gather failures %d, want 0", fl)
	}
}

func TestChaosMidBatchShardDeathAllOrNothing(t *testing.T) {
	f, kws, c, n := testCluster(t)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	pairs := allPairs(n)

	// Baseline: healthy cluster answers exactly.
	resp, body := postBatch(t, front.URL, pairs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy batch: status %d (%s)", resp.StatusCode, body)
	}
	checkBatchExact(t, f, pairs, body)

	// One worker dies: its sub-batches fail at the connection level and
	// must complete via replicas — same exact results, no partials.
	kws[1].dead.Store(true)
	resp, body = postBatch(t, front.URL, pairs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with one dead worker: status %d (%s) — replica should absorb the death", resp.StatusCode, body)
	}
	checkBatchExact(t, f, pairs, body)

	// Two of three workers dead: some vertex range has lost both its
	// owners, so the batch must error WHOLE — a 200 with holes would be
	// a partial result, which is the one forbidden outcome.
	kws[2].dead.Store(true)
	resp, body = postBatch(t, front.URL, pairs)
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("batch with two dead workers returned 200 (%s) — partial results are forbidden", body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("whole-batch failure lacks error body: %s", body)
	}
	if fl := c.Metrics().Gather.Failures; fl < 1 {
		t.Fatalf("gather failures %d, want >= 1", fl)
	}
}

func waitFor(t *testing.T, what string, deadline time.Duration, cond func() bool) {
	t.Helper()
	for end := time.Now().Add(deadline); time.Now().Before(end); {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestChaosProberFailoverGenerationExactlyOnce(t *testing.T) {
	_, kws, c, n := testCluster(t)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	//lint:ignore nakedgo prober loop; joined via cancel + done before test exit
	go func() { defer close(done); c.Run(ctx) }()
	defer func() { cancel(); <-done }()

	if g := c.Table().Generation(); g != 0 {
		t.Fatalf("fresh generation %d, want 0", g)
	}

	// Kill worker 1 (index 0) and let the prober notice.
	kws[0].dead.Store(true)
	waitFor(t, "failover of w1", 5*time.Second, func() bool { return !c.Table().Alive(0) })
	if g, fo := c.Table().Generation(), c.Table().Failovers(); g != 1 || fo != 1 {
		t.Fatalf("after failover: generation %d failovers %d, want exactly 1 and 1", g, fo)
	}
	// More probe cycles must not re-bump the generation for the same death.
	time.Sleep(100 * time.Millisecond)
	if g := c.Table().Generation(); g != 1 {
		t.Fatalf("generation drifted to %d while worker stayed dead, want 1", g)
	}

	// Queries keep answering through the whole window.
	for v := 0; v < n; v += 7 {
		resp, err := http.Get(fmt.Sprintf("%s/dist?u=%d&v=%d", front.URL, v, (v+1)%n))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("u=%d during failover: status %d, want 200", v, resp.StatusCode)
		}
	}

	// Coordinator stays ready: every slot still has a live owner.
	resp, err := http.Get(front.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz during single-worker failover: %d, want 200", resp.StatusCode)
	}

	// Revive the worker: the prober must re-admit it, returning its ring
	// slots, with exactly one more generation bump.
	kws[0].dead.Store(false)
	waitFor(t, "re-admission of w1", 5*time.Second, func() bool { return c.Table().Alive(0) })
	if g, ra := c.Table().Generation(), c.Table().Readmissions(); g != 2 || ra != 1 {
		t.Fatalf("after re-admission: generation %d readmissions %d, want exactly 2 and 1", g, ra)
	}
	p, _ := c.Table().SlotCounts(0)
	if p == 0 {
		t.Fatal("re-admitted worker serves no slots")
	}

	// The workers saw coordinator-stamped traffic, and their shard
	// identity is on their metrics surface.
	var forwarded uint64
	for _, kw := range kws {
		m := kw.serve.Metrics()
		forwarded += m.ForwardedRequests
		if m.Shard == nil || m.Shard.Role != "worker" {
			t.Fatalf("worker %s metrics lack shard identity: %+v", kw.id, m.Shard)
		}
	}
	if forwarded == 0 {
		t.Fatal("no worker counted a forwarded request")
	}
}
