package shard

// Anti-entropy: converging workers whose factor generation fell behind
// the cluster's expected generation. A worker goes stale by missing a
// commit round (it was down during an update — fan-out is alive-only)
// or by recovering an older checkpoint after a crash. The prober holds
// it out of rotation and starts one catch-up goroutine per worker:
//
//  1. Stream the coordinator journal's chain from the worker's
//     generation — each committed batch is re-sent as an explicit
//     {from, gen} apply, which the worker journals and applies
//     idempotently (a batch it already has is skipped by generation).
//  2. When the journal cannot bridge the gap (compacted past the
//     worker's generation, adopted jump, or no journal at all), fall
//     back to a full resync: fetch a healthy donor's overlay
//     (GET /admin/overlay — every edge weight differing from the base
//     graph) and send it as mode "resync", which rebuilds the worker
//     from base + overlay at the explicit expected generation.
//  3. With no journal chain and no donor, the worker is quarantined
//     (counted, logged) and retried on a later probe cycle.
//
// Convergence is observed by the same prober that started the
// catch-up: once the worker's /health reports the expected generation,
// re-admission proceeds and its ring slots return.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
)

// startCatchUp launches the per-worker catch-up goroutine unless one
// is already running.
func (c *Coordinator) startCatchUp(ctx context.Context, wi int) {
	ws := c.workers[wi]
	if !ws.catchingUp.CompareAndSwap(false, true) {
		return
	}
	c.metrics.ae.catchups.Add(1)
	//lint:ignore nakedgo bounded (catchUpAttempts, per-op timeouts, ctx) and guarded one-per-worker by catchingUp
	go c.catchUp(ctx, wi)
}

// catchUpAttempts bounds one catch-up goroutine's convergence loop;
// the probe cycle relaunches catch-up as long as the worker stays
// reachable and stale, so the bound limits one burst, not recovery.
const catchUpAttempts = 8

func (c *Coordinator) catchUp(ctx context.Context, wi int) {
	ws := c.workers[wi]
	defer ws.catchingUp.Store(false)
	for attempt := 0; attempt < catchUpAttempts; attempt++ {
		if ctx.Err() != nil {
			return
		}
		_, gen, err := c.workerHealth(ws.w)
		if err != nil {
			return // down again; the prober relaunches when it returns
		}
		ws.gen.Store(gen)
		expected := c.expectedGen.Load()
		if gen >= expected {
			ws.quarantined.Store(false)
			return // converged; the prober re-admits
		}
		if c.streamJournal(ctx, ws, gen) {
			continue // progress was possible; re-check convergence
		}
		if err := c.resyncWorker(ctx, ws, expected); err != nil {
			if !ws.quarantined.Swap(true) {
				c.metrics.ae.quarantines.Add(1)
			}
			c.log.Printf("shard: worker %s quarantined at generation %d (cluster expects %d): %v",
				ws.w.ID, gen, expected, err)
			return // a later probe cycle retries
		}
	}
}

// streamJournal replays the coordinator journal's chain from the
// worker's generation, one committed batch per request. Returns false
// when the journal offers no bridge (no journal, compacted past the
// worker, or an adopted generation jump it never recorded).
func (c *Coordinator) streamJournal(ctx context.Context, ws *workerState, gen uint64) bool {
	if c.journal == nil {
		return false
	}
	chain, ok := c.journal.ChainFrom(gen)
	if !ok || len(chain) == 0 {
		return false
	}
	for _, rec := range chain {
		if ctx.Err() != nil {
			return true
		}
		if len(rec.Edges) == 0 {
			// A bare coverage marker records a state jump (reload, adopted
			// generation) whose edges the journal never held; only a
			// resync crosses it.
			return false
		}
		edges := make([]core.EdgeDelta, len(rec.Edges))
		for i, e := range rec.Edges {
			edges[i] = core.EdgeDelta{U: e.U, V: e.V, W: e.W}
		}
		sctx, cancel := context.WithTimeout(ctx, c.opts.UpdateTimeout)
		_, err := c.sendUpdate(sctx, ws.w, &workerUpdateRequest{
			Mode: "apply", Edges: edges, From: rec.From, Gen: rec.Gen,
		})
		cancel()
		if err != nil {
			c.log.Printf("shard: catch-up batch [%d->%d] to worker %s failed: %v", rec.From, rec.Gen, ws.w.ID, err)
			return true // transient; the convergence loop re-checks and retries
		}
		c.metrics.ae.batchesStreamed.Add(1)
	}
	return true
}

// resyncWorker rebuilds one worker from a healthy donor's overlay at
// the expected generation — the fallback when no journal chain exists.
func (c *Coordinator) resyncWorker(ctx context.Context, ws *workerState, expected uint64) error {
	lastErr := fmt.Errorf("no live donor at generation %d", expected)
	for di, donor := range c.workers {
		if donor == ws || !c.table.Alive(di) {
			continue
		}
		ov, err := c.fetchOverlay(ctx, donor.w)
		if err != nil {
			lastErr = fmt.Errorf("donor %s overlay: %w", donor.w.ID, err)
			continue
		}
		if ov.Generation != expected {
			lastErr = fmt.Errorf("donor %s at generation %d, want %d", donor.w.ID, ov.Generation, expected)
			continue
		}
		sctx, cancel := context.WithTimeout(ctx, c.opts.UpdateTimeout)
		_, err = c.sendUpdate(sctx, ws.w, &workerUpdateRequest{
			Mode: "resync", Gen: ov.Generation, Edges: ov.Edges,
		})
		cancel()
		if err != nil {
			lastErr = fmt.Errorf("resync via donor %s: %w", donor.w.ID, err)
			continue
		}
		c.metrics.ae.resyncs.Add(1)
		c.log.Printf("shard: worker %s resynced to generation %d from donor %s (%d overlay edge(s))",
			ws.w.ID, ov.Generation, donor.w.ID, len(ov.Edges))
		return nil
	}
	return lastErr
}

// overlayReply decodes GET /admin/overlay.
type overlayReply struct {
	Generation uint64           `json:"generation"`
	Vertices   int              `json:"vertices"`
	Digest     uint64           `json:"digest"`
	Edges      []core.EdgeDelta `json:"edges"`
}

func (c *Coordinator) fetchOverlay(ctx context.Context, w Worker) (*overlayReply, error) {
	octx, cancel := context.WithTimeout(ctx, c.opts.GatherTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(octx, http.MethodGet, w.URL+"/admin/overlay", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("overlay status %d", resp.StatusCode)
	}
	var ov overlayReply
	if err := json.NewDecoder(resp.Body).Decode(&ov); err != nil {
		return nil, err
	}
	if ov.Vertices != c.n {
		return nil, fmt.Errorf("overlay for %d vertices, want %d", ov.Vertices, c.n)
	}
	return &ov, nil
}

// adoptGeneration raises the expected generation to one recovered from
// a worker that is ahead of the cluster, journaling a coverage-floor
// marker so the journal stays honest about what it can replay.
func (c *Coordinator) adoptGeneration(gen uint64) {
	for {
		cur := c.expectedGen.Load()
		if gen <= cur {
			return
		}
		//lint:ignore walorder the adopted generation is already durable on the worker that reported it; the marker below only records the journal's coverage floor
		if c.expectedGen.CompareAndSwap(cur, gen) {
			break
		}
	}
	if c.journal != nil {
		if err := c.journal.AppendMarker(gen); err != nil {
			c.log.Printf("shard: journal marker at adopted generation %d failed: %v", gen, err)
		}
	}
	c.log.Printf("shard: adopted factor generation %d from a worker ahead of the cluster", gen)
}
