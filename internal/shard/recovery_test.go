package shard

// Generation-aware recovery across a sharded cluster: real durable
// workers (serve.Server + serve.Durable over per-worker state dirs)
// fronted by a journaling coordinator, with crashes injected by
// severing connections (the client-visible signature of SIGKILL) and
// restarts that actually recover from disk. The invariants under test
// are ISSUE 8's acceptance bar:
//
//   - a worker that is down during an update rejoins generations behind
//     and is NEVER re-admitted on vertex count alone — it is held out,
//     streamed the journaled batches it missed, and re-admitted only at
//     the expected generation;
//   - a commit-round straggler converges through the same path (the
//     journaled decision is never rolled back);
//   - a worker restarted from its state dir recovers its own committed
//     generation, then converges to the cluster's;
//   - without a coordinator journal, the overlay-resync fallback
//     produces the same convergence;
//   - sampled distances are bit-identical across workers afterwards.

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/serve"
)

var quietLog = log.New(io.Discard, "", 0)

// durableWorker is a real durable serve stack behind a fixed URL whose
// process can be "SIGKILLed" (connections severed, state closed) and
// restarted from its state dir.
type durableWorker struct {
	id      string
	dir     string
	dead    atomic.Bool
	handler atomic.Pointer[http.Handler]
	hs      *httptest.Server
	d       *serve.Durable
	s       *serve.Server
}

func (dw *durableWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if dw.dead.Load() {
		hj, ok := w.(http.Hijacker)
		if !ok {
			panic("test server does not support hijacking")
		}
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
		}
		return
	}
	(*dw.handler.Load()).ServeHTTP(w, r)
}

// boot opens (or recovers) the worker's state dir and swaps the
// recovered server in behind the same URL.
func (dw *durableWorker) boot(t *testing.T, g *graph.Graph) {
	t.Helper()
	d, err := serve.OpenDurable(context.Background(), g, serve.DurableOptions{
		Dir: dw.dir, NoSync: true, Logger: quietLog,
	})
	if err != nil {
		t.Fatalf("worker %s boot: %v", dw.id, err)
	}
	s := serve.New(d.Factor(), nil, g.N, serve.Options{
		Durable:           d,
		InitialGeneration: d.BootGeneration(),
		Shard:             &serve.ShardIdentity{ID: dw.id, Role: "worker"},
	})
	h := s.Handler()
	dw.d, dw.s = d, s
	dw.handler.Store(&h)
}

// crash severs every connection and closes the durable state — nothing
// in memory survives; the next boot sees only what fsync made durable.
func (dw *durableWorker) crash() {
	dw.dead.Store(true)
	dw.d.Close()
}

func (dw *durableWorker) restart(t *testing.T, g *graph.Graph) {
	t.Helper()
	dw.boot(t, g)
	dw.dead.Store(false)
}

// newRecoveryCluster boots nWorkers durable workers and a coordinator
// (journaling when coordState is non-empty) with the prober running.
func newRecoveryCluster(t *testing.T, nWorkers int, coordState string) (*Coordinator, []*durableWorker, *httptest.Server, *graph.Graph) {
	t.Helper()
	g := gen.RoadNetwork(10, 10, 0.3, 7)
	var dws []*durableWorker
	var workers []Worker
	for i := 0; i < nWorkers; i++ {
		dw := &durableWorker{id: fmt.Sprintf("w%d", i+1), dir: t.TempDir()}
		dw.boot(t, g)
		dw.hs = httptest.NewServer(dw)
		t.Cleanup(dw.hs.Close)
		t.Cleanup(func() { dw.d.Close() })
		dws = append(dws, dw)
		workers = append(workers, Worker{ID: dw.id, URL: dw.hs.URL})
	}
	c, err := New(Options{
		Workers:         workers,
		Slots:           16,
		ProbeInterval:   20 * time.Millisecond,
		ProbeTimeout:    500 * time.Millisecond,
		FailThreshold:   2,
		ForwardTimeout:  5 * time.Second,
		GatherTimeout:   5 * time.Second,
		DiscoverTimeout: 5 * time.Second,
		UpdateTimeout:   30 * time.Second,
		StateDir:        coordState,
		JournalNoSync:   true,
		Logger:          quietLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	front := httptest.NewServer(c.Handler())
	t.Cleanup(front.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	//lint:ignore nakedgo prober loop; joined via cancel + done in cleanup
	go func() { defer close(done); c.Run(ctx) }()
	t.Cleanup(func() { cancel(); <-done })
	return c, dws, front, g
}

// sampleDists reads a fixed pair set directly off one worker.
func sampleDists(t *testing.T, url string, n int) []string {
	t.Helper()
	var rows []string
	for _, u := range []int{0, 17, 42, 63, 99} {
		resp, err := http.Get(fmt.Sprintf("%s/dist?u=%d&v=%d", url, u%n, (u*7+3)%n))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("dist u=%d: status %d (%s)", u, resp.StatusCode, b)
		}
		rows = append(rows, string(b))
	}
	return rows
}

// requireSameDists asserts every worker answers the sample pair set
// bit-identically.
func requireSameDists(t *testing.T, dws []*durableWorker, n int) {
	t.Helper()
	ref := sampleDists(t, dws[0].hs.URL, n)
	for _, dw := range dws[1:] {
		got := sampleDists(t, dw.hs.URL, n)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("worker %s sample %d = %s, worker %s = %s — divergent distances",
					dw.id, i, got[i], dws[0].id, ref[i])
			}
		}
	}
}

// waitConverged polls until worker wi is alive at the expected
// generation, failing fast if it is ever re-admitted while stale — the
// one forbidden transition.
func waitConverged(t *testing.T, c *Coordinator, wi int, want uint64) {
	t.Helper()
	waitFor(t, fmt.Sprintf("worker %d convergence to generation %d", wi, want), 30*time.Second, func() bool {
		alive := c.table.Alive(wi)
		gen := c.workers[wi].gen.Load()
		if alive && gen < want {
			t.Fatalf("worker %d re-admitted at generation %d, cluster expects %d — stale re-admission", wi, gen, want)
		}
		return alive && gen == want
	})
}

// TestChaosRecoveryStaleWorkerHeldAndStreamed: w2 is down during an
// update, so it rejoins one generation behind with the correct vertex
// count. It must be held out (stale_holds), streamed the journaled
// batch, and only then re-admitted.
func TestChaosRecoveryStaleWorkerHeldAndStreamed(t *testing.T) {
	c, dws, front, g := newRecoveryCluster(t, 2, t.TempDir())
	e0, e1 := g.Edges()[0], g.Edges()[1]

	out := postClusterUpdate(t, front.URL, []core.EdgeDelta{{U: e0.U, V: e0.V, W: e0.W * 0.1}}, http.StatusOK)
	if out["updated"] != true || out["converged"] != true {
		t.Fatalf("update 1 response %v", out)
	}

	// w2 goes dark; the prober fails it over.
	dws[1].dead.Store(true)
	waitFor(t, "failover of w2", 5*time.Second, func() bool { return !c.table.Alive(1) })

	// Update 2 commits on the survivors only and is journaled.
	out = postClusterUpdate(t, front.URL, []core.EdgeDelta{{U: e1.U, V: e1.V, W: e1.W * 0.2}}, http.StatusOK)
	if out["updated"] != true || out["generation"].(float64) != 3 {
		t.Fatalf("update 2 response %v", out)
	}
	if got := c.expectedGen.Load(); got != 3 {
		t.Fatalf("expected generation %d, want 3", got)
	}

	// w2 returns exactly as it was: right vertex count, old generation.
	dws[1].dead.Store(false)
	waitConverged(t, c, 1, 3)
	if holds := c.workers[1].staleHolds.Load(); holds < 1 {
		t.Fatalf("stale worker was never held (stale_holds=%d) — vertex count alone re-admitted it", holds)
	}
	if streamed := c.metrics.ae.batchesStreamed.Load(); streamed < 1 {
		t.Fatalf("no journaled batch was streamed (batches_streamed=%d)", streamed)
	}
	requireSameDists(t, dws, g.N)

	snap := c.Metrics()
	if snap.ExpectedGeneration != 3 || snap.Journal == nil || snap.AntiEntropy.StaleHolds < 1 {
		t.Fatalf("metrics missing recovery evidence: expected=%d journal=%v ae=%+v",
			snap.ExpectedGeneration, snap.Journal, snap.AntiEntropy)
	}
	for _, sh := range snap.Shards {
		if sh.Generation != 3 {
			t.Fatalf("shard %s at generation %d in metrics, want 3", sh.ID, sh.Generation)
		}
	}
}

// TestChaosRecoveryCommitStragglerConverges: one worker's commit round
// fails after the decision was journaled. The transaction must still
// report committed, the straggler held out, and anti-entropy must
// finish the commit it missed.
func TestChaosRecoveryCommitStragglerConverges(t *testing.T) {
	defer fault.Reset()
	c, dws, front, g := newRecoveryCluster(t, 2, t.TempDir())
	e := g.Edges()[0]

	// The commit round visits serve.update.swap once per worker; the
	// second visit fails — exactly one worker misses the commit.
	if err := fault.Enable("serve.update.swap", "error@2"); err != nil {
		t.Fatal(err)
	}
	out := postClusterUpdate(t, front.URL, []core.EdgeDelta{{U: e.U, V: e.V, W: e.W * 0.1}}, http.StatusOK)
	fault.Reset()
	if out["updated"] != true || out["converged"] != false || out["stragglers"].(float64) != 1 {
		t.Fatalf("straggler-commit response %v", out)
	}
	if got := c.expectedGen.Load(); got != 2 {
		t.Fatalf("expected generation %d after journaled decision, want 2", got)
	}

	// Anti-entropy converges whichever worker missed the swap.
	for wi := range dws {
		waitConverged(t, c, wi, 2)
	}
	requireSameDists(t, dws, g.N)
}

// TestChaosRecoveryWorkerCrashRestart: w2 is SIGKILLed, misses an
// update, and restarts from its state dir — recovering its own last
// committed generation, then converging to the cluster's. A fresh
// coordinator booted over the same journal must come up already
// expecting the decided generation.
func TestChaosRecoveryWorkerCrashRestart(t *testing.T) {
	coordState := t.TempDir()
	c, dws, front, g := newRecoveryCluster(t, 2, coordState)
	e0, e1 := g.Edges()[0], g.Edges()[1]

	postClusterUpdate(t, front.URL, []core.EdgeDelta{{U: e0.U, V: e0.V, W: e0.W * 0.1}}, http.StatusOK)

	// SIGKILL w2: connections severed, durable state closed mid-flight.
	dws[1].crash()
	waitFor(t, "failover of crashed w2", 5*time.Second, func() bool { return !c.table.Alive(1) })

	postClusterUpdate(t, front.URL, []core.EdgeDelta{{U: e1.U, V: e1.V, W: e1.W * 0.2}}, http.StatusOK)

	// Restart from disk: recovery must reach w2's own committed
	// generation (2) — not 1, not 3.
	dws[1].restart(t, g)
	if bg := dws[1].d.BootGeneration(); bg != 2 {
		t.Fatalf("crashed worker recovered at generation %d, want 2", bg)
	}
	waitConverged(t, c, 1, 3)
	requireSameDists(t, dws, g.N)

	// Coordinator crash: a new one over the same state dir must boot
	// already expecting generation 3 (from journal and worker health).
	c2, err := New(Options{
		Workers: []Worker{
			{ID: dws[0].id, URL: dws[0].hs.URL},
			{ID: dws[1].id, URL: dws[1].hs.URL},
		},
		Slots:           16,
		DiscoverTimeout: 5 * time.Second,
		StateDir:        coordState,
		JournalNoSync:   true,
		Logger:          quietLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got := c2.expectedGen.Load(); got != 3 {
		t.Fatalf("restarted coordinator expects generation %d, want 3", got)
	}
}

// TestChaosRecoveryResyncWithoutJournal: a coordinator running without
// a state dir has no batches to stream, so a stale rejoin must converge
// through the donor-overlay resync fallback instead.
func TestChaosRecoveryResyncWithoutJournal(t *testing.T) {
	c, dws, front, g := newRecoveryCluster(t, 2, "")
	e0, e1 := g.Edges()[0], g.Edges()[1]

	postClusterUpdate(t, front.URL, []core.EdgeDelta{{U: e0.U, V: e0.V, W: e0.W * 0.1}}, http.StatusOK)
	dws[1].dead.Store(true)
	waitFor(t, "failover of w2", 5*time.Second, func() bool { return !c.table.Alive(1) })
	postClusterUpdate(t, front.URL, []core.EdgeDelta{{U: e1.U, V: e1.V, W: e1.W * 0.2}}, http.StatusOK)

	dws[1].dead.Store(false)
	waitConverged(t, c, 1, 3)
	if r := c.metrics.ae.resyncs.Load(); r < 1 {
		t.Fatalf("journal-less convergence without a resync (resyncs=%d)", r)
	}
	requireSameDists(t, dws, g.N)
}
