package shard

// Coordinator behavior against scripted stub workers: forwarding with
// replica retry, Retry-After propagation (the coordinator must relay
// the max of downstream advice, never invent its own), and the merged
// metrics/readiness surface. The stubs answer /health with a fixed
// vertex count so discovery succeeds, then misbehave on the query
// endpoints exactly as each test directs.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/serve"
)

const stubVertices = 256

// stubWorker is a scripted fake apspserve: /health and /readyz always
// succeed; distHandler scripts /dist and /dist/batch.
type stubWorker struct {
	srv  *httptest.Server
	hits atomic.Uint64 // /dist and /dist/batch requests seen
}

func newStubWorker(t *testing.T, dist http.HandlerFunc) *stubWorker {
	t.Helper()
	w := &stubWorker{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", func(rw http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(rw).Encode(map[string]any{"vertices": stubVertices})
	})
	mux.HandleFunc("GET /readyz", func(rw http.ResponseWriter, _ *http.Request) {
		io.WriteString(rw, `{"ready":true}`)
	})
	handler := func(rw http.ResponseWriter, r *http.Request) {
		w.hits.Add(1)
		dist(rw, r)
	}
	mux.HandleFunc("GET /dist", handler)
	mux.HandleFunc("POST /dist/batch", handler)
	w.srv = httptest.NewServer(mux)
	t.Cleanup(w.srv.Close)
	return w
}

func shed(retryAfter string) http.HandlerFunc {
	return func(rw http.ResponseWriter, _ *http.Request) {
		rw.Header().Set("Retry-After", retryAfter)
		rw.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(rw, `{"error":"shedding"}`)
	}
}

func okDist(rw http.ResponseWriter, _ *http.Request) {
	io.WriteString(rw, `{"dist":1,"reachable":true}`)
}

func newTestCoordinator(t *testing.T, workers ...*stubWorker) *Coordinator {
	t.Helper()
	var ws []Worker
	for i, sw := range workers {
		ws = append(ws, Worker{ID: fmt.Sprintf("w%d", i+1), URL: sw.srv.URL})
	}
	c, err := New(Options{
		Workers:         ws,
		Slots:           16,
		DiscoverTimeout: 5 * time.Second,
		ProbeTimeout:    2 * time.Second,
		GatherTimeout:   2 * time.Second,
		ForwardTimeout:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRetryAfterPropagation is the regression test for the Retry-After
// contract: when every candidate shard sheds with 503, the coordinator
// answers 503 carrying the MAX of the downstream Retry-After values —
// the client must back off as hard as the most loaded shard asked —
// instead of stamping its own default.
func TestRetryAfterPropagation(t *testing.T) {
	a := newStubWorker(t, shed("3"))
	b := newStubWorker(t, shed("7"))
	c := newTestCoordinator(t, a, b)
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	for _, path := range []string{"/dist?u=0&v=1", "/dist/batch"} {
		var resp *http.Response
		var err error
		if strings.HasPrefix(path, "/dist/batch") {
			resp, err = http.Post(front.URL+path, "application/json", strings.NewReader(`{"pairs":[[0,1],[200,2]]}`))
		} else {
			resp, err = http.Get(front.URL + path)
		}
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: status %d, want 503 (body %s)", path, resp.StatusCode, body)
		}
		got := resp.Header.Get("Retry-After")
		want := "7"
		if len(c.workers) == 2 && path == "/dist?u=0&v=1" {
			// Single-vertex forward only visits the two owners of u=0's
			// slot, which with two workers is both of them — still 3 and 7.
			want = "7"
		}
		if got != want {
			t.Errorf("%s: Retry-After %q, want max of downstream values %q", path, got, want)
		}
		if !strings.Contains(string(body), "error") {
			t.Errorf("%s: 503 body lacks error field: %s", path, body)
		}
	}
}

// TestRetryAfterDefaultOnConnectionFailure: with no downstream advice
// (both owners unreachable), the coordinator falls back to the same
// default the workers use, so the two layers agree on semantics.
func TestRetryAfterDefaultOnConnectionFailure(t *testing.T) {
	a := newStubWorker(t, okDist)
	b := newStubWorker(t, okDist)
	c := newTestCoordinator(t, a, b)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	// Kill both workers after discovery: every forward now gets
	// connection refused, no Retry-After to propagate.
	a.srv.Close()
	b.srv.Close()

	resp, err := http.Get(front.URL + "/dist?u=0&v=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != serve.RetryAfterDefault {
		t.Errorf("Retry-After %q, want serve default %q", got, serve.RetryAfterDefault)
	}
}

// TestForwardRetriesReplicaInline: a forward that hits a failing
// primary must retry the replica inside the same request — clients see
// one 200, not an error, even before the prober notices the death.
func TestForwardRetriesReplicaInline(t *testing.T) {
	var healthyHits atomic.Uint64
	dead := newStubWorker(t, func(rw http.ResponseWriter, _ *http.Request) {
		rw.WriteHeader(http.StatusInternalServerError)
	})
	healthy := newStubWorker(t, func(rw http.ResponseWriter, r *http.Request) {
		healthyHits.Add(1)
		if r.Header.Get(serve.ForwardedHeader) == "" {
			t.Error("forwarded request lacks forwarded header")
		}
		if r.Header.Get(serve.GenerationHeader) == "" {
			t.Error("forwarded request lacks generation header")
		}
		okDist(rw, r)
	})
	c := newTestCoordinator(t, dead, healthy)
	front := httptest.NewServer(c.Handler())
	defer front.Close()

	// Every vertex routes to {dead, healthy} in some order; each query
	// must come back 200 via the healthy one.
	for v := 0; v < stubVertices; v += 16 {
		resp, err := http.Get(fmt.Sprintf("%s/dist?u=%d&v=1", front.URL, v))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("u=%d: status %d, want 200 via replica retry", v, resp.StatusCode)
		}
	}
	if healthyHits.Load() == 0 {
		t.Fatal("healthy worker never hit")
	}
}

func TestCoordinatorRejectsBadVertices(t *testing.T) {
	a := newStubWorker(t, okDist)
	b := newStubWorker(t, okDist)
	c := newTestCoordinator(t, a, b)
	front := httptest.NewServer(c.Handler())
	defer front.Close()
	for _, q := range []string{
		"/dist?u=-1&v=0",
		fmt.Sprintf("/dist?u=%d&v=0", stubVertices),
		"/dist?v=0",
		"/dist?u=abc&v=0",
	} {
		resp, err := http.Get(front.URL + q)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
	if got := a.hits.Load() + b.hits.Load(); got != 0 {
		t.Errorf("invalid queries were forwarded %d times", got)
	}
}

func TestDiscoveryRejectsVertexMismatch(t *testing.T) {
	a := newStubWorker(t, okDist)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", func(rw http.ResponseWriter, _ *http.Request) {
		json.NewEncoder(rw).Encode(map[string]any{"vertices": stubVertices + 1})
	})
	odd := httptest.NewServer(mux)
	defer odd.Close()

	_, err := New(Options{
		Workers:         []Worker{{ID: "a", URL: a.srv.URL}, {ID: "b", URL: odd.URL}},
		DiscoverTimeout: 3 * time.Second,
	})
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("mismatched shard set accepted (err=%v)", err)
	}
}
