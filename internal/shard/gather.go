package shard

// Scatter-gather for POST /dist/batch. Pairs are partitioned by the
// slot owner of their source vertex, sub-batches go out in parallel
// with a per-shard deadline, and each failed sub-batch gets exactly one
// retry against the range's replica. The contract is all-or-nothing: a
// batch either completes — every pair answered, order preserved — or
// errors whole. Partial results are never returned, because a client
// cannot tell a missing range from an unreachable one.

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/par"
	"repro/internal/serve"
)

// distBatchRequest mirrors the worker's /dist/batch body.
type distBatchRequest struct {
	Pairs [][2]int `json:"pairs"`
}

// workerBatchResponse decodes a worker's /dist/batch reply. Dists
// elements are float64 or the strings "inf"/"-inf"/"nan" (the worker's
// jsonFloat encoding), so they pass through as any.
type workerBatchResponse struct {
	Count     int    `json:"count"`
	Dists     []any  `json:"dists"`
	Reachable []bool `json:"reachable"`
}

// subBatch is the unit of scatter: all pairs whose source vertex is
// served by the same (primary, replica) owner pair, with their original
// positions so the gather can merge in request order.
type subBatch struct {
	primary *Worker
	replica *Worker
	pairs   [][2]int
	indexes []int
}

func (c *Coordinator) distBatch(w http.ResponseWriter, r *http.Request) {
	var req distBatchRequest
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		c.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad batch body: %w", err))
		return
	}
	if len(req.Pairs) == 0 {
		c.writeErr(w, http.StatusBadRequest, fmt.Errorf("batch needs at least one pair"))
		return
	}
	if len(req.Pairs) > serve.MaxBatchPairs {
		c.writeErr(w, http.StatusBadRequest, fmt.Errorf("batch of %d pairs exceeds limit %d", len(req.Pairs), serve.MaxBatchPairs))
		return
	}
	for _, p := range req.Pairs {
		if p[0] < 0 || p[0] >= c.n || p[1] < 0 || p[1] >= c.n {
			c.writeErr(w, http.StatusBadRequest, fmt.Errorf("pair (%d,%d) out of range [0,%d)", p[0], p[1], c.n))
			return
		}
	}

	gen := c.table.Generation()
	groups := map[string]*subBatch{}
	for i, p := range req.Pairs {
		route := c.table.Route(p[0])
		if route.Primary == nil {
			w.Header().Set("Retry-After", serve.RetryAfterDefault)
			c.metrics.gather.failures.Add(1)
			c.writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("no live shard for vertex %d", p[0]))
			return
		}
		key := route.Primary.ID
		if route.Replica != nil {
			key += "|" + route.Replica.ID
		}
		g, ok := groups[key]
		if !ok {
			g = &subBatch{primary: route.Primary, replica: route.Replica}
			groups[key] = g
		}
		g.pairs = append(g.pairs, p)
		g.indexes = append(g.indexes, i)
	}

	t0 := time.Now()
	c.metrics.gather.batches.Add(1)
	dists := make([]any, len(req.Pairs))
	reach := make([]bool, len(req.Pairs))
	var mu sync.Mutex
	var errs []error
	var retryAfters []string

	grp := par.NewGroup(len(groups))
	for _, g := range groups {
		g := g
		grp.Go(func() {
			res, ras, err := c.gatherOne(r.Context(), g, gen)
			mu.Lock()
			defer mu.Unlock()
			retryAfters = append(retryAfters, ras...)
			if err != nil {
				errs = append(errs, err)
				return
			}
			// Disjoint index sets per group, but the slices themselves are
			// shared; the mutex also orders these writes with the read below.
			for k, idx := range g.indexes {
				dists[idx] = res.Dists[k]
				reach[idx] = res.Reachable[k]
			}
		})
	}
	grp.Wait()
	c.metrics.gather.latencyNS.Add(uint64(time.Since(t0)))

	if len(errs) > 0 {
		// All-or-nothing: one unrecoverable range fails the whole batch.
		c.metrics.gather.failures.Add(1)
		c.shardsUnavailable(w, retryAfters, fmt.Errorf("batch gather failed on %d of %d shard(s): %v", len(errs), len(groups), errs[0]))
		return
	}
	c.writeJSON(w, http.StatusOK, map[string]any{
		"count":     len(req.Pairs),
		"dists":     dists,
		"reachable": reach,
	})
}

// gatherOne sends one sub-batch to its primary under the per-shard
// deadline, retrying once on the replica (with a fresh deadline) if the
// primary fails or times out. It returns collected Retry-After advice
// from 503 responses either way.
func (c *Coordinator) gatherOne(ctx context.Context, g *subBatch, gen uint64) (*workerBatchResponse, []string, error) {
	c.metrics.gather.subRequests.Add(1)
	sctx, cancel := context.WithTimeout(ctx, c.opts.GatherTimeout)
	// Failpoint inside the deadline: an armed sleep consumes the
	// sub-batch's budget, forcing the timeout path the chaos tests assert.
	fault.Inject("shard.gather")
	res, ra, err := c.sendBatch(sctx, g.primary, g.pairs, gen)
	cancel()
	if err == nil {
		return res, nil, nil
	}
	var retryAfters []string
	if ra != "" {
		retryAfters = append(retryAfters, ra)
	}
	if g.replica == nil {
		return nil, retryAfters, fmt.Errorf("shard %s: %w (no replica)", g.primary.ID, err)
	}
	c.metrics.gather.retries.Add(1)
	c.metrics.gather.subRequests.Add(1)
	rctx, rcancel := context.WithTimeout(ctx, c.opts.GatherTimeout)
	defer rcancel()
	res, ra2, err2 := c.sendBatch(rctx, g.replica, g.pairs, gen)
	if err2 == nil {
		return res, retryAfters, nil
	}
	if ra2 != "" {
		retryAfters = append(retryAfters, ra2)
	}
	return nil, retryAfters, fmt.Errorf("shard %s failed (%v), replica %s failed (%v)", g.primary.ID, err, g.replica.ID, err2)
}

// sendBatch posts one sub-batch to one worker and decodes the reply.
// The Retry-After string is non-empty only for a 503 response.
func (c *Coordinator) sendBatch(ctx context.Context, worker *Worker, pairs [][2]int, gen uint64) (*workerBatchResponse, string, error) {
	ws := c.stateOf(worker)
	payload, err := json.Marshal(distBatchRequest{Pairs: pairs})
	if err != nil {
		return nil, "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, worker.URL+"/dist/batch", strings.NewReader(string(payload)))
	if err != nil {
		return nil, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.ForwardedHeader, "coordinator")
	req.Header.Set(serve.GenerationHeader, strconv.FormatUint(gen, 10))
	ws.routed.Add(1)
	resp, err := c.client.Do(req)
	if err != nil {
		ws.errors.Add(1)
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= 500 {
			ws.errors.Add(1)
		}
		ra := ""
		if resp.StatusCode == http.StatusServiceUnavailable {
			ra = resp.Header.Get("Retry-After")
		}
		return nil, ra, fmt.Errorf("batch status %d", resp.StatusCode)
	}
	var out workerBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		ws.errors.Add(1)
		return nil, "", fmt.Errorf("batch decode: %w", err)
	}
	if out.Count != len(pairs) || len(out.Dists) != len(pairs) || len(out.Reachable) != len(pairs) {
		ws.errors.Add(1)
		return nil, "", fmt.Errorf("batch reply shape mismatch: count=%d dists=%d reachable=%d want %d",
			out.Count, len(out.Dists), len(out.Reachable), len(pairs))
	}
	return &out, "", nil
}

// parseDist converts a merged dists element back to a float64 (tests
// and in-process consumers; the HTTP path re-encodes the any values).
func parseDist(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case string:
		switch x {
		case "inf":
			return math.Inf(1)
		case "-inf":
			return math.Inf(-1)
		}
		return math.NaN()
	default:
		return math.NaN()
	}
}
