package shard

// The coordinator is the front door of a sharded deployment: it owns
// the routing table, health-checks the workers, forwards single-vertex
// queries to the owning shard (with one replica retry), scatter-gathers
// /dist/batch (gather.go), and serves the merged /metrics view.
//
// Failover protocol: a worker is marked down after FailThreshold
// consecutive /readyz probe failures, which promotes its replicas and
// advances the table generation once. In the window between a crash and
// the probe noticing, forwards to the dead primary fail fast
// (connection refused) and retry the replica inline, so a mid-storm
// SIGKILL costs clients latency, never errors. A restarted worker is
// re-admitted — its ring slots return to it — only after a probe
// succeeds AND /health reports the same vertex count, so a worker that
// restored a different checkpoint can never rejoin the wrong ring.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/serve"
	"repro/internal/wal"
)

// Options configure a Coordinator.
type Options struct {
	// Workers is the shard set; at least one, and at least two for any
	// replica/failover behavior.
	Workers []Worker
	// Slots is the number of consistent-hash vertex ranges (<= 0 uses
	// DefaultSlots).
	Slots int
	// ProbeInterval is the health-check period (default 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one /readyz probe (default 1s).
	ProbeTimeout time.Duration
	// FailThreshold is the number of consecutive probe failures before
	// a worker is marked down and its slots fail over (default 2).
	FailThreshold int
	// ForwardTimeout bounds one forwarded single-vertex query,
	// including the replica retry (default 10s).
	ForwardTimeout time.Duration
	// GatherTimeout is the per-shard deadline for one /dist/batch
	// sub-request (default 10s); the replica retry gets a fresh one.
	GatherTimeout time.Duration
	// DiscoverTimeout bounds the boot-time wait for every worker to
	// answer /health with a consistent vertex count (default 30s).
	DiscoverTimeout time.Duration
	// UpdateTimeout bounds a whole /admin/update transaction — every
	// worker's prepare plus the commit (or abort) round (default 120s;
	// a prepare can re-factorize the whole graph past the dirty
	// threshold).
	UpdateTimeout time.Duration
	// StateDir, when set, makes committed update transactions durable:
	// every batch is appended (fsync'd) to a write-ahead journal there
	// after all prepares succeed and before the commit round, so a
	// coordinator crash mid-commit never loses a decided transaction,
	// and the journal streams missed batches to workers during
	// anti-entropy catch-up. Empty runs without a journal (catch-up
	// then always falls back to donor resyncs).
	StateDir string
	// JournalNoSync disables journal fsync (tests only).
	JournalNoSync bool
	// Logger receives routing-state transitions; nil uses log.Default().
	Logger *log.Logger
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = 250 * time.Millisecond
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = time.Second
	}
	if opts.FailThreshold <= 0 {
		opts.FailThreshold = 2
	}
	if opts.ForwardTimeout <= 0 {
		opts.ForwardTimeout = 10 * time.Second
	}
	if opts.GatherTimeout <= 0 {
		opts.GatherTimeout = 10 * time.Second
	}
	if opts.DiscoverTimeout <= 0 {
		opts.DiscoverTimeout = 30 * time.Second
	}
	if opts.UpdateTimeout <= 0 {
		opts.UpdateTimeout = 120 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = log.Default()
	}
	return opts
}

// workerState is the coordinator's per-worker mutable state. The probe
// loop is the only writer of consecFails; the counters are atomics
// shared with the request paths.
type workerState struct {
	w             Worker
	consecFails   int
	routed        atomic.Uint64
	errors        atomic.Uint64
	probeFailures atomic.Uint64

	// gen is the worker's last observed factor generation (from /readyz
	// probes and /health checks). The anti-entropy loop converges it to
	// the coordinator's expected generation.
	gen atomic.Uint64
	// catchingUp guards the one-per-worker anti-entropy goroutine.
	catchingUp atomic.Bool
	// quarantined reports that catch-up is stuck: the journal cannot
	// bridge the worker and no donor at the expected generation exists.
	// Cleared when a later catch-up converges.
	quarantined atomic.Bool
	// staleHolds counts re-admissions refused for generation mismatch —
	// the prober's proof that vertex count alone never re-admits.
	staleHolds atomic.Uint64
}

// Coordinator routes queries across a set of apspserve workers.
type Coordinator struct {
	opts    Options
	table   *Table
	workers []*workerState
	n       int
	client  *http.Client
	log     *log.Logger
	metrics *coordMetrics

	// journal records committed update transactions (nil without
	// Options.StateDir); expectedGen is the factor generation every
	// worker must reach to be in rotation — it advances the moment a
	// transaction is journaled (or, unjournaled, when the commit round
	// starts) and adopts a recovered worker's generation when that
	// worker is ahead of the cluster. updating serializes update
	// transactions and tells the prober that a transient generation lag
	// is expected.
	journal     *wal.Journal
	expectedGen atomic.Uint64
	updating    atomic.Bool
}

// New discovers the workers (every one must answer /health with the
// same vertex count within DiscoverTimeout — a shard set serving
// different graphs is a deployment error, not something to route
// around) and builds the ring and routing table with all workers live.
func New(opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	ring, err := NewRing(opts.Workers, opts.Slots)
	if err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts:    opts,
		client:  &http.Client{},
		log:     opts.Logger,
		metrics: newCoordMetrics(),
	}
	for _, w := range ring.Workers() {
		c.workers = append(c.workers, &workerState{w: w})
	}
	if err := c.discover(); err != nil {
		return nil, err
	}
	c.table = NewTable(ring, c.n)

	// The expected generation starts at the newest state anything knows:
	// the most advanced worker, or a journal record for a transaction
	// whose commit round a previous coordinator never finished.
	expected := uint64(0)
	for _, ws := range c.workers {
		if g := ws.gen.Load(); g > expected {
			expected = g
		}
	}
	if opts.StateDir != "" {
		j, err := wal.Open(opts.StateDir, wal.Options{NoSync: opts.JournalNoSync})
		if err != nil {
			return nil, err
		}
		c.journal = j
		if st := j.Stats(); st.TruncatedBytes > 0 || st.DroppedSegments > 0 {
			c.log.Printf("shard: journal recovered with %d torn byte(s) truncated, %d segment(s) dropped",
				st.TruncatedBytes, st.DroppedSegments)
		}
		if lg := j.LastGen(); lg > expected {
			c.log.Printf("shard: journal holds committed generation %d beyond every worker; anti-entropy will converge the cluster", lg)
			expected = lg
		}
	}
	//lint:ignore walorder,genmono boot initialization: the expected generation is recovered from workers and the journal before any batch can publish
	c.expectedGen.Store(expected)
	if c.journal != nil && c.journal.LastGen() < expected {
		// Baseline coverage floor: the journal cannot replay anything
		// below the state the cluster already reached.
		if err := c.journal.AppendMarker(expected); err != nil {
			c.journal.Close()
			return nil, err
		}
	}
	return c, nil
}

// Close releases the coordinator's journal (a no-op without one).
func (c *Coordinator) Close() error {
	if c.journal == nil {
		return nil
	}
	return c.journal.Close()
}

// discover polls every worker's /health until all report the same
// vertex count or DiscoverTimeout elapses.
func (c *Coordinator) discover() error {
	deadline := time.Now().Add(c.opts.DiscoverTimeout)
	seen := make([]int, len(c.workers))
	for i := range seen {
		seen[i] = -1
	}
	for {
		pending := 0
		var lastErr error
		for i, ws := range c.workers {
			if seen[i] >= 0 {
				continue
			}
			n, gen, err := c.workerHealth(ws.w)
			if err != nil {
				pending++
				lastErr = fmt.Errorf("worker %s (%s): %w", ws.w.ID, ws.w.URL, err)
				continue
			}
			seen[i] = n
			ws.gen.Store(gen)
		}
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shard: discovery timed out with %d worker(s) unreachable: %v", pending, lastErr)
		}
		time.Sleep(200 * time.Millisecond)
	}
	c.n = seen[0]
	for i, n := range seen {
		if n != c.n {
			return fmt.Errorf("shard: vertex count mismatch: worker %s reports %d, worker %s reports %d",
				c.workers[0].w.ID, c.n, c.workers[i].w.ID, n)
		}
	}
	if c.n <= 0 {
		return fmt.Errorf("shard: workers report %d vertices", c.n)
	}
	return nil
}

// workerHealth fetches one worker's /health, returning its vertex
// count and factor generation — the two identities re-admission gates
// on.
func (c *Coordinator) workerHealth(w Worker) (int, uint64, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.URL+"/health", nil)
	if err != nil {
		return 0, 0, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("health status %d", resp.StatusCode)
	}
	var h struct {
		Vertices   int    `json:"vertices"`
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, 0, err
	}
	return h.Vertices, h.Generation, nil
}

// N returns the vertex count the shard set serves.
func (c *Coordinator) N() int { return c.n }

// Table exposes the routing table (tests and cmd/apspshard logging).
func (c *Coordinator) Table() *Table { return c.table }

// Run drives the health-probe loop until ctx is cancelled. It owns all
// liveness transitions: the request paths only retry, they never mark.
func (c *Coordinator) Run(ctx context.Context) {
	ticker := time.NewTicker(c.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			c.probeAll(ctx)
		}
	}
}

func (c *Coordinator) probeAll(ctx context.Context) {
	for wi, ws := range c.workers {
		fault.Inject("shard.probe")
		if err := c.probe(ctx, ws); err != nil {
			ws.probeFailures.Add(1)
			ws.consecFails++
			if ws.consecFails >= c.opts.FailThreshold && c.table.MarkDown(wi) {
				c.log.Printf("shard: worker %s (%s) down after %d failed probes (%v); replicas promoted, generation %d",
					ws.w.ID, ws.w.URL, ws.consecFails, err, c.table.Generation())
			}
			continue
		}
		ws.consecFails = 0
		expected := c.expectedGen.Load()
		if c.table.Alive(wi) {
			// A live worker that fell behind — a commit round it missed —
			// is pulled from rotation until anti-entropy converges it. A
			// transient lag during an in-flight transaction is expected
			// and not a hold.
			if gen := ws.gen.Load(); gen < expected && !c.updating.Load() {
				if c.table.MarkDown(wi) {
					c.log.Printf("shard: worker %s (%s) at generation %d, cluster expects %d; held out of rotation for catch-up",
						ws.w.ID, ws.w.URL, gen, expected)
				}
			}
			continue
		}
		// Probe is green again: verify the restarted worker recovered the
		// same graph AND the cluster's factor generation before giving
		// its slots back. Vertex count alone is not enough — a worker
		// that recovered an older checkpoint would serve stale distances
		// while claiming readiness.
		n, gen, err := c.workerHealth(ws.w)
		if err != nil || n != c.n {
			c.log.Printf("shard: worker %s ready but not re-admitted (vertices=%d err=%v, want %d)",
				ws.w.ID, n, err, c.n)
			continue
		}
		ws.gen.Store(gen)
		if gen > expected {
			// The worker is ahead of the cluster: it durably committed a
			// batch whose commit round never finished elsewhere. Its state
			// is the newest decided one — adopt it and let anti-entropy
			// raise everyone else.
			c.adoptGeneration(gen)
			expected = c.expectedGen.Load()
		}
		if gen != expected {
			ws.staleHolds.Add(1)
			c.metrics.ae.staleHolds.Add(1)
			c.log.Printf("shard: worker %s ready at generation %d but cluster expects %d; held for anti-entropy",
				ws.w.ID, gen, expected)
			c.startCatchUp(ctx, wi)
			continue
		}
		ws.quarantined.Store(false)
		if c.table.MarkUp(wi) {
			c.log.Printf("shard: worker %s (%s) re-admitted at factor generation %d, slots restored, table generation %d",
				ws.w.ID, ws.w.URL, gen, c.table.Generation())
		}
	}
}

// probe checks one worker's /readyz, recording the factor generation
// the payload carries.
func (c *Coordinator) probe(ctx context.Context, ws *workerState) error {
	pctx, cancel := context.WithTimeout(ctx, c.opts.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, ws.w.URL+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("readyz status %d", resp.StatusCode)
	}
	var body struct {
		Generation uint64 `json:"generation"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Generation > 0 {
		ws.gen.Store(body.Generation)
	}
	return nil
}

// Handler returns the coordinator's HTTP routes — deliberately the same
// query surface as one worker, so clients can point at either.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", c.instrument("health", c.health))
	mux.HandleFunc("GET /healthz", c.instrument("health", c.health))
	mux.HandleFunc("GET /readyz", c.instrument("readyz", c.readyz))
	mux.HandleFunc("GET /dist", c.instrument("dist", func(w http.ResponseWriter, r *http.Request) {
		c.forward(w, r, "u")
	}))
	mux.HandleFunc("GET /sssp", c.instrument("sssp", func(w http.ResponseWriter, r *http.Request) {
		c.forward(w, r, "src")
	}))
	mux.HandleFunc("GET /route", c.instrument("route", func(w http.ResponseWriter, r *http.Request) {
		c.forward(w, r, "u")
	}))
	mux.HandleFunc("POST /dist/batch", c.instrument("dist_batch", c.distBatch))
	mux.HandleFunc("POST /admin/update", c.instrument("update", c.adminUpdate))
	mux.HandleFunc("GET /metrics", c.metricsEndpoint)
	return mux
}

func (c *Coordinator) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	m := c.metrics.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		m.requests.Add(1)
		m.latencyNS.Add(uint64(time.Since(t0)))
		if sw.code >= 400 {
			m.errors.Add(1)
		}
	}
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (c *Coordinator) health(w http.ResponseWriter, _ *http.Request) {
	c.writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"role":         "coordinator",
		"vertices":     c.n,
		"workers":      len(c.workers),
		"generation":   c.table.Generation(),
		"expected_gen": c.expectedGen.Load(),
	})
}

// readyz is green only while every vertex slot has a live owner; a slot
// whose primary and replica are both down makes the whole coordinator
// unready — shedding early beats serving a partial vertex space.
func (c *Coordinator) readyz(w http.ResponseWriter, _ *http.Request) {
	if !c.table.Ready() {
		w.Header().Set("Retry-After", serve.RetryAfterDefault)
		c.writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("one or more vertex ranges have no live shard"))
		return
	}
	c.writeJSON(w, http.StatusOK, map[string]any{
		"ready":      true,
		"vertices":   c.n,
		"generation": c.table.Generation(),
	})
}

// forward routes a single-vertex GET (dist/sssp/route) to the shard
// owning the vertex named by key, retrying the replica on a failed or
// 5xx primary. The first successful response streams through verbatim;
// a double failure answers 503/502 with propagated Retry-After.
func (c *Coordinator) forward(w http.ResponseWriter, r *http.Request, key string) {
	v, err := c.vertexParam(r, key)
	if err != nil {
		c.writeErr(w, http.StatusBadRequest, err)
		return
	}
	route := c.table.Route(v)
	if route.Primary == nil {
		w.Header().Set("Retry-After", serve.RetryAfterDefault)
		c.writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("no live shard for vertex %d", v))
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), c.opts.ForwardTimeout)
	defer cancel()
	fault.Inject("shard.forward")

	var retryAfters []string
	resp, err := c.send(ctx, route.Primary, route.Generation, r)
	if err == nil && resp.StatusCode < 500 {
		c.relay(w, resp)
		return
	}
	retryAfters = appendRetryAfter(retryAfters, resp, err)
	if route.Replica != nil {
		resp, err = c.send(ctx, route.Replica, route.Generation, r)
		if err == nil && resp.StatusCode < 500 {
			c.relay(w, resp)
			return
		}
		retryAfters = appendRetryAfter(retryAfters, resp, err)
	}
	c.shardsUnavailable(w, retryAfters, fmt.Errorf("shards for vertex %d unavailable", v))
}

// send issues one forwarded request to a worker, stamping the forwarded
// and generation headers. On success the caller owns resp.Body.
func (c *Coordinator) send(ctx context.Context, worker *Worker, gen uint64, r *http.Request) (*http.Response, error) {
	ws := c.stateOf(worker)
	url := worker.URL + r.URL.Path
	if q := r.URL.RawQuery; q != "" {
		url += "?" + q
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(serve.ForwardedHeader, "coordinator")
	req.Header.Set(serve.GenerationHeader, strconv.FormatUint(gen, 10))
	ws.routed.Add(1)
	resp, err := c.client.Do(req)
	if err != nil || resp.StatusCode >= 500 {
		ws.errors.Add(1)
	}
	return resp, err
}

func (c *Coordinator) stateOf(worker *Worker) *workerState {
	for _, ws := range c.workers {
		if ws.w.ID == worker.ID {
			return ws
		}
	}
	panic("shard: route returned unknown worker " + worker.ID)
}

// relay streams a worker response through unchanged (status,
// Content-Type, Retry-After, body) — the coordinator adds routing, not
// response rewriting.
func (c *Coordinator) relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		c.log.Printf("shard: relay copy failed: %v", err)
	}
}

// appendRetryAfter collects the Retry-After value from a failed
// downstream attempt (and closes its body). Only 503s carry one.
func appendRetryAfter(vals []string, resp *http.Response, err error) []string {
	if err != nil || resp == nil {
		return vals
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			vals = append(vals, ra)
		}
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return vals
}

// shardsUnavailable answers a request whose every candidate shard
// failed. When the downstream failures were 503 sheds, the coordinator
// must not invent its own backoff: it propagates the max of the
// downstream Retry-After values, so a client behind the coordinator
// backs off exactly as hard as the most loaded shard asked for. With no
// downstream advice (connection failures), it falls back to the same
// default the workers use.
func (c *Coordinator) shardsUnavailable(w http.ResponseWriter, retryAfters []string, err error) {
	w.Header().Set("Retry-After", maxRetryAfter(retryAfters))
	c.writeErr(w, http.StatusServiceUnavailable, err)
}

// maxRetryAfter returns the maximum of the downstream Retry-After
// values in integer seconds, or the serve default when none parsed.
func maxRetryAfter(vals []string) string {
	best := -1
	for _, v := range vals {
		if sec, err := strconv.Atoi(v); err == nil && sec > best {
			best = sec
		}
	}
	if best < 0 {
		return serve.RetryAfterDefault
	}
	return strconv.Itoa(best)
}

func (c *Coordinator) vertexParam(r *http.Request, key string) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", key)
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 || v >= c.n {
		return 0, fmt.Errorf("parameter %q must be a vertex id in [0,%d)", key, c.n)
	}
	return v, nil
}

func (c *Coordinator) metricsEndpoint(w http.ResponseWriter, _ *http.Request) {
	c.writeJSON(w, http.StatusOK, c.Metrics())
}

func (c *Coordinator) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		c.log.Printf("shard: response encode failed: %v", err)
	}
}

func (c *Coordinator) writeErr(w http.ResponseWriter, code int, err error) {
	c.writeJSON(w, code, map[string]string{"error": err.Error()})
}
