package shard

import (
	"testing"
)

func testWorkers(n int) []Worker {
	ws := make([]Worker, n)
	for i := range ws {
		ws[i] = Worker{ID: "w" + string(rune('1'+i)), URL: "http://127.0.0.1:0"}
	}
	return ws
}

func TestRingDeterministicAndCovered(t *testing.T) {
	a, err := NewRing(testWorkers(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(testWorkers(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	owned := make([]int, 3)
	for s := 0; s < a.Slots(); s++ {
		p1, r1 := a.Owners(s)
		p2, r2 := b.Owners(s)
		if p1 != p2 || r1 != r2 {
			t.Fatalf("slot %d: assignment not deterministic: (%d,%d) vs (%d,%d)", s, p1, r1, p2, r2)
		}
		if p1 < 0 || p1 >= 3 {
			t.Fatalf("slot %d: primary %d out of range", s, p1)
		}
		if r1 < 0 || r1 >= 3 {
			t.Fatalf("slot %d: replica %d out of range (3 workers must yield a replica)", s, r1)
		}
		if r1 == p1 {
			t.Fatalf("slot %d: replica == primary == %d", s, p1)
		}
		owned[p1]++
	}
	for wi, k := range owned {
		if k == 0 {
			t.Errorf("worker %d owns no slots — ring badly unbalanced", wi)
		}
	}
}

func TestRingSingleWorkerHasNoReplica(t *testing.T) {
	r, err := NewRing(testWorkers(1), 8)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < r.Slots(); s++ {
		p, rep := r.Owners(s)
		if p != 0 {
			t.Fatalf("slot %d: primary %d, want 0", s, p)
		}
		if rep != -1 {
			t.Fatalf("slot %d: replica %d, want -1 with a single worker", s, rep)
		}
	}
}

func TestRingRejectsBadWorkerSets(t *testing.T) {
	if _, err := NewRing(nil, 8); err == nil {
		t.Error("empty worker set accepted")
	}
	if _, err := NewRing([]Worker{{ID: "", URL: "u"}}, 8); err == nil {
		t.Error("empty worker ID accepted")
	}
	if _, err := NewRing([]Worker{{ID: "a"}, {ID: "a"}}, 8); err == nil {
		t.Error("duplicate worker ID accepted")
	}
}

func TestSlotOfBounds(t *testing.T) {
	r, err := NewRing(testWorkers(2), 16)
	if err != nil {
		t.Fatal(err)
	}
	n := 100
	for v := 0; v < n; v++ {
		s := r.SlotOf(v, n)
		if s < 0 || s >= 16 {
			t.Fatalf("SlotOf(%d, %d) = %d out of [0,16)", v, n, s)
		}
	}
	if r.SlotOf(0, n) != 0 {
		t.Errorf("vertex 0 not in slot 0")
	}
	// Contiguity: slots are non-decreasing in vertex id, so neighboring
	// vertices land on the same worker almost always.
	prev := -1
	for v := 0; v < n; v++ {
		s := r.SlotOf(v, n)
		if s < prev {
			t.Fatalf("SlotOf not monotone: vertex %d slot %d after slot %d", v, s, prev)
		}
		prev = s
	}
}

func TestTablePromotionAndReadmission(t *testing.T) {
	ring, err := NewRing(testWorkers(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	n := 640
	tab := NewTable(ring, n)
	if !tab.Ready() {
		t.Fatal("fresh table not ready")
	}
	if g := tab.Generation(); g != 0 {
		t.Fatalf("fresh table generation %d, want 0", g)
	}

	// Find a vertex owned by worker 0 and record its replica.
	victim := -1
	var ringReplica string
	for v := 0; v < n; v++ {
		s := ring.SlotOf(v, n)
		p, r := ring.Owners(s)
		if p == 0 {
			victim = v
			ringReplica = ring.Workers()[r].ID
			break
		}
	}
	if victim < 0 {
		t.Fatal("worker 0 owns no vertices")
	}

	if !tab.MarkDown(0) {
		t.Fatal("first MarkDown reported no change")
	}
	if tab.MarkDown(0) {
		t.Fatal("second MarkDown of the same worker reported a change")
	}
	if g := tab.Generation(); g != 1 {
		t.Fatalf("generation %d after one failover, want exactly 1", g)
	}
	if f := tab.Failovers(); f != 1 {
		t.Fatalf("failovers %d, want 1", f)
	}
	route := tab.Route(victim)
	if route.Primary == nil || route.Primary.ID != ringReplica {
		t.Fatalf("vertex %d not promoted to replica %s: %+v", victim, ringReplica, route)
	}
	if route.Replica != nil {
		t.Fatalf("promoted slot still advertises a fallback: %+v", route)
	}
	if !tab.Ready() {
		t.Fatal("table with every slot promoted should still be ready")
	}

	if !tab.MarkUp(0) {
		t.Fatal("MarkUp reported no change")
	}
	if tab.MarkUp(0) {
		t.Fatal("second MarkUp reported a change")
	}
	if g := tab.Generation(); g != 2 {
		t.Fatalf("generation %d after failover + re-admission, want exactly 2", g)
	}
	if r := tab.Readmissions(); r != 1 {
		t.Fatalf("readmissions %d, want 1", r)
	}
	route = tab.Route(victim)
	if route.Primary == nil || route.Primary.ID != "w1" {
		t.Fatalf("vertex %d not returned to its ring primary after re-admission: %+v", victim, route)
	}
}

func TestTableUnroutableWhenBothOwnersDown(t *testing.T) {
	ring, err := NewRing(testWorkers(2), 32)
	if err != nil {
		t.Fatal(err)
	}
	tab := NewTable(ring, 320)
	tab.MarkDown(0)
	tab.MarkDown(1)
	if tab.Ready() {
		t.Fatal("table with all workers down reports ready")
	}
	route := tab.Route(0)
	if route.Primary != nil || route.Replica != nil {
		t.Fatalf("dead table still routes: %+v", route)
	}
	if g := tab.Generation(); g != 2 {
		t.Fatalf("generation %d after two failovers, want 2", g)
	}
}
