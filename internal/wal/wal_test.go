package wal

// The journal's contract is crash-shaped: whatever Append acknowledged
// must come back from Open, whatever a crash tore mid-frame must be
// truncated (never half-applied), and compaction must never shrink the
// set of generations ChainFrom can upgrade.

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

func openT(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func mustAppend(t *testing.T, j *Journal, rec Record) {
	t.Helper()
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
}

func batch(from uint64, edges ...Edge) Record {
	return Record{From: from, Gen: from + 1, Edges: edges}
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].Gen != b[i].Gen || len(a[i].Edges) != len(b[i].Edges) {
			return false
		}
		for k := range a[i].Edges {
			if a[i].Edges[k] != b[i].Edges[k] {
				return false
			}
		}
	}
	return true
}

func TestAppendReopenRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir)
	recs := []Record{
		batch(1, Edge{U: 0, V: 1, W: 2.5}),
		batch(2, Edge{U: 3, V: 9, W: 0.125}, Edge{U: 0, V: 1, W: 7}),
		batch(3),
	}
	for _, r := range recs {
		mustAppend(t, j, r)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2 := openT(t, dir)
	if got := j2.Records(); !sameRecords(got, recs) {
		t.Fatalf("reopen: got %+v, want %+v", got, recs)
	}
	if j2.LastGen() != 4 {
		t.Fatalf("LastGen = %d, want 4", j2.LastGen())
	}
	// The reopened journal must accept further appends.
	mustAppend(t, j2, batch(4, Edge{U: 1, V: 2, W: 1}))
	if j2.LastGen() != 5 {
		t.Fatalf("LastGen after append = %d, want 5", j2.LastGen())
	}
}

func TestAppendRejectsNonMonotonic(t *testing.T) {
	j := openT(t, t.TempDir())
	mustAppend(t, j, batch(1, Edge{U: 0, V: 1, W: 1}))
	if err := j.Append(batch(1, Edge{U: 0, V: 1, W: 2})); err == nil {
		t.Fatal("duplicate generation accepted")
	}
	if err := j.Append(Record{From: 9, Gen: 5}); err == nil {
		t.Fatal("From > Gen accepted")
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir)
	keep := batch(1, Edge{U: 0, V: 1, W: 2})
	mustAppend(t, j, keep)
	mustAppend(t, j, batch(2, Edge{U: 4, V: 5, W: 3}))
	j.Close()
	// Tear the last record: chop bytes off the tail of the only segment.
	seg := filepath.Join(dir, "journal-00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := openT(t, dir)
	if got := j2.Records(); !sameRecords(got, []Record{keep}) {
		t.Fatalf("after tear: got %+v, want just the first record", got)
	}
	if st := j2.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("truncation not accounted in stats")
	}
	// The torn frame is gone from disk too: appending and reopening must
	// not resurrect it or mis-frame the new record.
	next := batch(2, Edge{U: 7, V: 8, W: 9})
	mustAppend(t, j2, next)
	j2.Close()
	j3 := openT(t, dir)
	if got := j3.Records(); !sameRecords(got, []Record{keep, next}) {
		t.Fatalf("after tear+append+reopen: got %+v", got)
	}
}

func TestBitFlipRejectedByCRC(t *testing.T) {
	dir := t.TempDir()
	j := openT(t, dir)
	mustAppend(t, j, batch(1, Edge{U: 0, V: 1, W: 2}))
	mustAppend(t, j, batch(2, Edge{U: 4, V: 5, W: 3}))
	j.Close()
	seg := filepath.Join(dir, "journal-00000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit inside the second record's payload.
	data[len(data)-12] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := openT(t, dir)
	if n := len(j2.Records()); n != 1 {
		t.Fatalf("bit-flipped record survived: %d records", n)
	}
}

func TestTornFailpointLeavesTruncatableTail(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	j := openT(t, dir)
	mustAppend(t, j, batch(1, Edge{U: 0, V: 1, W: 2}))
	// Arm a silent tear: the next append reports success but only 10
	// bytes land — the on-disk evidence of a crash between write and
	// fsync.
	if err := fault.Enable("wal.append", "torn=10"); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, batch(2, Edge{U: 4, V: 5, W: 3}))
	fault.Reset()
	j.Close()
	j2 := openT(t, dir)
	if n := len(j2.Records()); n != 1 {
		t.Fatalf("torn append visible after reopen: %d records", n)
	}
	if st := j2.Stats(); st.TruncatedBytes != 10 {
		t.Fatalf("TruncatedBytes = %d, want 10", st.TruncatedBytes)
	}
}

func TestAppendSyncFailureRollsBack(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	j := openT(t, dir)
	mustAppend(t, j, batch(1, Edge{U: 0, V: 1, W: 2}))
	if err := fault.Enable("wal.sync", "error"); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(batch(2, Edge{U: 4, V: 5, W: 3})); err == nil {
		t.Fatal("append with failing fsync reported success")
	}
	fault.Reset()
	// The failed append must be fully invisible: same journal, then a
	// fresh open.
	if j.LastGen() != 2 {
		t.Fatalf("LastGen = %d after failed append, want 2", j.LastGen())
	}
	mustAppend(t, j, batch(2, Edge{U: 6, V: 7, W: 1}))
	j.Close()
	j2 := openT(t, dir)
	got := j2.Records()
	if len(got) != 2 || got[1].Edges[0].U != 6 {
		t.Fatalf("rolled-back append corrupted the frame stream: %+v", got)
	}
	if st := j2.Stats(); st.TruncatedBytes != 0 {
		t.Fatalf("clean reopen truncated %d bytes", st.TruncatedBytes)
	}
}

func TestSegmentRotationAndMidJournalCorruption(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for g := uint64(1); g <= 6; g++ {
		mustAppend(t, j, batch(g, Edge{U: 0, V: 1, W: float64(g)}))
	}
	st := j.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	j.Close()
	// Corrupt the FIRST segment: everything after it chains through the
	// hole and must be dropped, not replayed.
	seg1 := filepath.Join(dir, "journal-00000001.wal")
	data, err := os.ReadFile(seg1)
	if err != nil {
		t.Fatal(err)
	}
	data[headerLen+5] ^= 0xff
	if err := os.WriteFile(seg1, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2 := openT(t, dir)
	st2 := j2.Stats()
	if st2.DroppedSegments == 0 {
		t.Fatal("mid-journal corruption did not drop later segments")
	}
	if _, ok := j2.ChainFrom(1); ok && j2.LastGen() == 7 {
		t.Fatal("corrupt chain still claims full coverage")
	}
}

func TestChainFromAndFloor(t *testing.T) {
	j := openT(t, t.TempDir())
	// A journal that starts observing at generation 3 (marker), then two
	// batches.
	if err := j.AppendMarker(3); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, batch(3, Edge{U: 0, V: 1, W: 5}))
	mustAppend(t, j, batch(4, Edge{U: 2, V: 3, W: 6}))
	if f := j.Floor(); f != 3 {
		t.Fatalf("Floor = %d, want 3", f)
	}
	if chain, ok := j.ChainFrom(3); !ok || len(chain) != 2 {
		t.Fatalf("ChainFrom(3) = %v, %v", chain, ok)
	}
	if chain, ok := j.ChainFrom(4); !ok || len(chain) != 1 || chain[0].Gen != 5 {
		t.Fatalf("ChainFrom(4) = %v, %v", chain, ok)
	}
	if chain, ok := j.ChainFrom(5); !ok || len(chain) != 0 {
		t.Fatalf("ChainFrom(5) = %v, %v (up to date: empty chain)", chain, ok)
	}
	// Below the marker: unbridgeable.
	if _, ok := j.ChainFrom(2); ok {
		t.Fatal("ChainFrom below the coverage floor succeeded")
	}
	// Marker at the current tail is a no-op, not a duplicate.
	if err := j.AppendMarker(5); err != nil {
		t.Fatal(err)
	}
	if n := len(j.Records()); n != 3 {
		t.Fatalf("no-op marker appended a record: %d", n)
	}
}

func TestCompactThrough(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for g := uint64(1); g <= 6; g++ {
		mustAppend(t, j, batch(g, Edge{U: 0, V: 1, W: float64(g)}))
	}
	if err := j.CompactThrough(4); err != nil {
		t.Fatal(err)
	}
	// Generations 5..7 must still replay for a consumer at 4.
	if chain, ok := j.ChainFrom(4); !ok || len(chain) != 3 {
		t.Fatalf("ChainFrom(4) after compaction = %v, %v", chain, ok)
	}
	if st := j.Stats(); st.Records != 4 {
		t.Fatalf("records after compaction = %d, want 4 (one covered segment dropped)", st.Records)
	}
	j.Close()
	j2 := openT(t, dir)
	if chain, ok := j2.ChainFrom(4); !ok || len(chain) != 3 {
		t.Fatalf("reopen after compaction lost the tail: %v, %v", chain, ok)
	}
	// Compacting everything leaves an appendable empty journal that
	// still rejects generation reuse? No: records are gone, so the floor
	// of knowledge is gone too — but the caller (serve) replays nothing
	// and appends from its checkpoint generation, which is ahead.
	if err := j2.CompactThrough(7); err != nil {
		t.Fatal(err)
	}
	if st := j2.Stats(); st.Records != 0 {
		t.Fatalf("full compaction left %d records", st.Records)
	}
	mustAppend(t, j2, batch(7, Edge{U: 1, V: 2, W: 1}))
}

func TestCompactCoalesce(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{NoSync: true, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// SegmentBytes=1: every append rotates, so each record sits in its
	// own full segment — the coordinator-journal shape at its worst.
	mustAppend(t, j, batch(1, Edge{U: 0, V: 1, W: 10}))
	mustAppend(t, j, batch(2, Edge{U: 0, V: 1, W: 20}, Edge{U: 2, V: 3, W: 5}))
	mustAppend(t, j, batch(3, Edge{U: 4, V: 5, W: 7}))
	mustAppend(t, j, batch(4, Edge{U: 6, V: 7, W: 8}))
	if err := j.CompactCoalesce(3); err != nil {
		t.Fatal(err)
	}
	// A consumer at 1 (the pre-journal state) must still reach the tail.
	chain, ok := j.ChainFrom(1)
	if !ok {
		t.Fatal("coalescing raised the coverage floor")
	}
	// First chain entry is the snapshot: last-write-wins means edge
	// (0,1) carries 20, not 10.
	snap := chain[0]
	if snap.From != 1 || snap.Gen != 3 {
		t.Fatalf("snapshot spans [%d,%d), want [1,3)", snap.From, snap.Gen)
	}
	w01 := 0.0
	for _, e := range snap.Edges {
		if e.U == 0 && e.V == 1 {
			w01 = e.W
		}
	}
	if w01 != 20 {
		t.Fatalf("coalesced weight for (0,1) = %v, want 20 (last write wins)", w01)
	}
	if st := j.Stats(); st.Records != 3 {
		t.Fatalf("records after coalesce = %d, want 3 (snapshot + 2 tail)", st.Records)
	}
	j.Close()
	j2 := openT(t, dir)
	if chain, ok := j2.ChainFrom(1); !ok || len(chain) != 3 {
		t.Fatalf("reopen after coalesce: %v, %v", chain, ok)
	}
}

func TestCompactCoalesceStopsAtFloorJump(t *testing.T) {
	j, err := Open(t.TempDir(), Options{NoSync: true, SegmentBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	mustAppend(t, j, batch(1, Edge{U: 0, V: 1, W: 10}))
	// A marker at 5: history 2..5 is unknown (coordinator restarted
	// against a cluster that moved on).
	if err := j.AppendMarker(5); err != nil {
		t.Fatal(err)
	}
	mustAppend(t, j, batch(5, Edge{U: 2, V: 3, W: 1}))
	mustAppend(t, j, batch(6, Edge{U: 4, V: 5, W: 2}))
	if err := j.CompactCoalesce(7); err != nil {
		t.Fatal(err)
	}
	// Consumers at >= 5 must still be upgradable; consumers below the
	// marker stay unbridgeable — coalescing across the marker would have
	// silently claimed coverage the journal does not have.
	if _, ok := j.ChainFrom(4); ok {
		t.Fatal("coalesce bridged an unknown-history gap")
	}
	if chain, ok := j.ChainFrom(5); !ok || chain[len(chain)-1].Gen != 7 {
		t.Fatalf("ChainFrom(5) = %v, %v", chain, ok)
	}
	if f := j.Floor(); f != 5 {
		t.Fatalf("Floor = %d, want 5", f)
	}
}
