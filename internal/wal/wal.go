// Package wal is the durable write-ahead journal for committed live
// updates (DESIGN.md §14). Both layers that own update state persist
// through it: every apspserve worker journals each committed
// UpdateBatch before swapping its engine, and the apspshard
// coordinator journals each two-phase batch before the commit round —
// so a crash on either side of the swap window loses nothing that was
// acknowledged.
//
// A journal is a directory of append-only segment files
// (journal-NNNNNNNN.wal). Each segment starts with a fixed header and
// holds framed records; every record carries its own CRC64 (ECMA)
// trailer, so a torn tail — the half-written record a crash between
// write and fsync leaves behind — is detected and truncated on Open
// rather than replayed. Appends are fsync'd before they return:
// Append's success is the commit point callers build on.
//
// Record semantics. A record {From, Gen, Edges} means: applying Edges
// (absolute weights, last-write-wins) to any state whose generation
// lies in [From, Gen) advances that state to exactly generation Gen.
// Three shapes follow from one rule:
//
//   - a batch committed on top of generation G is {G, G+1, edges};
//   - a marker {G, G, nil} records "history before G is unknown"
//     (written when a journal starts observing a cluster mid-life) —
//     no chain can cross it from below;
//   - a coalesced snapshot {F, G, edges} produced by CompactCoalesce
//     replaces a contiguous run of batches without shrinking the set
//     of generations it can upgrade.
//
// ChainFrom(w) resolves what a consumer at generation w must replay,
// and reports an unbridgeable gap instead of guessing. Generations are
// strictly monotonic within a journal; records whose generation does
// not advance past everything before them (compaction leftovers from
// a crash mid-delete) are dropped on Open.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/fault"
)

const (
	segMagic   = "SFWJ"
	segVersion = 1
	headerLen  = 8 // magic + u32 version

	// recHeaderLen frames a record: u32 payload length, u64 From, u64 Gen.
	recHeaderLen = 4 + 8 + 8
	// recTrailerLen is the CRC64 trailer.
	recTrailerLen = 8

	// maxPayload caps a single record's payload so a corrupt length
	// field cannot drive a giant allocation while scanning.
	maxPayload = 1 << 28

	defaultSegmentBytes = 4 << 20
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Edge is one absolute-weight edge assignment inside a record. It
// mirrors core.EdgeDelta (undirected, u<v normalization is the
// producer's job); wal stays agnostic so both serve and shard can
// journal without import cycles.
type Edge struct {
	U, V int
	W    float64
}

// Record is one journal entry; see the package comment for the
// [From, Gen) upgrade semantics.
type Record struct {
	From  uint64
	Gen   uint64
	Edges []Edge
}

// IsMarker reports whether the record is a pure coverage floor (no
// edges, From == Gen).
func (r Record) IsMarker() bool { return r.From == r.Gen && len(r.Edges) == 0 }

// Options tunes a journal.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this many
	// bytes (default 4 MiB).
	SegmentBytes int64
	// NoSync skips fsync on appends and directory syncs. Tests only —
	// a production journal without fsync is not a journal.
	NoSync bool
}

// Stats is a point-in-time snapshot of journal shape, surfaced on
// /metrics.
type Stats struct {
	Segments int    `json:"segments"`
	Records  int    `json:"records"`
	Bytes    int64  `json:"bytes"`
	FirstGen uint64 `json:"first_gen"` // 0 when empty
	LastGen  uint64 `json:"last_gen"`  // 0 when empty

	// TruncatedBytes counts torn-tail bytes cut off by Open;
	// DroppedSegments counts segments discarded after mid-journal
	// corruption (anything past a tear is unreplayable).
	TruncatedBytes  int64 `json:"truncated_bytes"`
	DroppedSegments int   `json:"dropped_segments"`
}

type segment struct {
	seq  uint64
	path string
	recs []Record
	size int64
}

// Journal is an open write-ahead journal. All methods are safe for
// concurrent use.
type Journal struct {
	mu   sync.Mutex
	dir  string
	opts Options
	segs []*segment // sorted by seq; last is the active segment
	f    *os.File   // active segment handle
	w    io.Writer  // fault-wrapped f; persistent so torn=N latches

	truncatedBytes  int64
	droppedSegments int
}

// Open opens (creating if needed) the journal in dir, scanning every
// segment, truncating any torn tail, and dropping unreplayable
// leftovers. The returned journal is positioned to append.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts}
	names, err := filepath.Glob(filepath.Join(dir, "journal-*.wal"))
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	sort.Strings(names)
	for _, path := range names {
		seq, ok := seqOf(path)
		if !ok {
			continue
		}
		j.segs = append(j.segs, &segment{seq: seq, path: path})
	}
	sort.Slice(j.segs, func(a, b int) bool { return j.segs[a].seq < j.segs[b].seq })

	maxGen := uint64(0)
	for i := 0; i < len(j.segs); i++ {
		s := j.segs[i]
		last := i == len(j.segs)-1
		clean, err := j.scanSegment(s, &maxGen)
		if err != nil {
			return nil, err
		}
		if !clean && !last {
			// Corruption mid-journal: every later record chains through the
			// hole and can never be replayed safely. Drop the rest.
			for _, dead := range j.segs[i+1:] {
				if err := os.Remove(dead.path); err != nil {
					return nil, fmt.Errorf("wal: dropping %s: %w", dead.path, err)
				}
				j.droppedSegments++
			}
			j.segs = j.segs[:i+1]
			break
		}
	}
	if len(j.segs) == 0 {
		if err := j.newSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		active := j.segs[len(j.segs)-1]
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		j.f = f
		j.w = fault.Writer("wal.append", f)
	}
	return j, nil
}

func seqOf(path string) (uint64, bool) {
	base := filepath.Base(path)
	base = strings.TrimPrefix(base, "journal-")
	base = strings.TrimSuffix(base, ".wal")
	var seq uint64
	if _, err := fmt.Sscanf(base, "%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// scanSegment reads every intact record of s, truncating the file at
// the first sign of damage. It returns clean=false when anything was
// cut off (callers decide whether later segments survive). maxGen
// enforces cross-segment monotonicity: stale records are skipped, not
// treated as corruption.
func (j *Journal) scanSegment(s *segment, maxGen *uint64) (clean bool, err error) {
	data, err := os.ReadFile(s.path)
	if err != nil {
		return false, fmt.Errorf("wal: %w", err)
	}
	good := int64(0)
	clean = true
	if len(data) < headerLen || string(data[:4]) != segMagic ||
		binary.LittleEndian.Uint32(data[4:8]) != segVersion {
		// Unreadable header: reset the segment to an empty, valid one.
		j.truncatedBytes += int64(len(data))
		clean = false
		if err := writeSegmentHeader(s.path, j.opts.NoSync); err != nil {
			return false, err
		}
		s.size = headerLen
		return clean, nil
	}
	good = headerLen
	off := int64(headerLen)
	for {
		rec, next, ok := decodeRecord(data, off)
		if !ok {
			if off != int64(len(data)) {
				clean = false
			}
			break
		}
		off = next
		good = next
		if rec.Gen <= *maxGen && !(rec.IsMarker() && rec.Gen == *maxGen) {
			// Compaction leftover (crash between snapshot rename and old-
			// segment delete): superseded, skip silently.
			continue
		}
		*maxGen = rec.Gen
		s.recs = append(s.recs, rec)
	}
	if !clean {
		j.truncatedBytes += int64(len(data)) - good
		if err := os.Truncate(s.path, good); err != nil {
			return false, fmt.Errorf("wal: truncating torn tail of %s: %w", s.path, err)
		}
	}
	s.size = good
	return clean, nil
}

// decodeRecord parses one record at off. ok=false means "no intact
// record here" — end of data or a torn/corrupt frame; the caller
// distinguishes the two by whether off reached len(data).
func decodeRecord(data []byte, off int64) (rec Record, next int64, ok bool) {
	if off+recHeaderLen > int64(len(data)) {
		return rec, 0, false
	}
	plen := int64(binary.LittleEndian.Uint32(data[off:]))
	if plen < 4 || plen > maxPayload {
		return rec, 0, false
	}
	end := off + recHeaderLen + plen + recTrailerLen
	if end > int64(len(data)) {
		return rec, 0, false
	}
	body := data[off : off+recHeaderLen+plen]
	want := binary.LittleEndian.Uint64(data[off+recHeaderLen+plen:])
	if crc64.Checksum(body, crcTable) != want {
		return rec, 0, false
	}
	rec.From = binary.LittleEndian.Uint64(data[off+4:])
	rec.Gen = binary.LittleEndian.Uint64(data[off+12:])
	if rec.From > rec.Gen {
		return rec, 0, false
	}
	payload := data[off+recHeaderLen : off+recHeaderLen+plen]
	count := int64(binary.LittleEndian.Uint32(payload))
	if count*24+4 != plen {
		return rec, 0, false
	}
	if count > 0 {
		rec.Edges = make([]Edge, count)
		for i := int64(0); i < count; i++ {
			p := payload[4+24*i:]
			u := binary.LittleEndian.Uint64(p)
			v := binary.LittleEndian.Uint64(p[8:])
			w := math.Float64frombits(binary.LittleEndian.Uint64(p[16:]))
			if u > math.MaxInt32 || v > math.MaxInt32 {
				return rec, 0, false
			}
			rec.Edges[i] = Edge{U: int(u), V: int(v), W: w}
		}
	}
	return rec, end, true
}

func encodeRecord(rec Record) []byte {
	plen := 4 + 24*len(rec.Edges)
	buf := make([]byte, recHeaderLen+plen+recTrailerLen)
	binary.LittleEndian.PutUint32(buf, uint32(plen))
	binary.LittleEndian.PutUint64(buf[4:], rec.From)
	binary.LittleEndian.PutUint64(buf[12:], rec.Gen)
	binary.LittleEndian.PutUint32(buf[recHeaderLen:], uint32(len(rec.Edges)))
	for i, e := range rec.Edges {
		p := buf[recHeaderLen+4+24*i:]
		binary.LittleEndian.PutUint64(p, uint64(e.U))
		binary.LittleEndian.PutUint64(p[8:], uint64(e.V))
		binary.LittleEndian.PutUint64(p[16:], math.Float64bits(e.W))
	}
	crc := crc64.Checksum(buf[:recHeaderLen+plen], crcTable)
	binary.LittleEndian.PutUint64(buf[recHeaderLen+plen:], crc)
	return buf
}

func writeSegmentHeader(path string, noSync bool) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	hdr := make([]byte, headerLen)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return fmt.Errorf("wal: %w", err)
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("wal: %w", err)
		}
	}
	return f.Close()
}

// newSegmentLocked creates and opens segment seq as the active one.
func (j *Journal) newSegmentLocked(seq uint64) error {
	path := filepath.Join(j.dir, fmt.Sprintf("journal-%08d.wal", seq))
	if err := writeSegmentHeader(path, j.opts.NoSync); err != nil {
		return err
	}
	if err := j.syncDir(); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if j.f != nil {
		j.f.Close()
	}
	j.f = f
	j.w = fault.Writer("wal.append", f)
	j.segs = append(j.segs, &segment{seq: seq, path: path, size: headerLen})
	return nil
}

func (j *Journal) syncDir() error {
	if j.opts.NoSync {
		return nil
	}
	d, err := os.Open(j.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	return nil
}

func (j *Journal) lastGenLocked() uint64 {
	for i := len(j.segs) - 1; i >= 0; i-- {
		if n := len(j.segs[i].recs); n > 0 {
			return j.segs[i].recs[n-1].Gen
		}
	}
	return 0
}

// Append durably adds one record: framed, CRC'd, written, fsync'd. On
// any error the file is rolled back to its pre-append length, so a
// failed append never leaves a half-frame for the next one to bury.
// Generations must advance: rec.Gen must exceed the journal's last
// generation (and rec.From must not exceed rec.Gen).
func (j *Journal) Append(rec Record) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if rec.From > rec.Gen {
		return fmt.Errorf("wal: record from %d > gen %d", rec.From, rec.Gen)
	}
	if last := j.lastGenLocked(); rec.Gen <= last {
		return fmt.Errorf("wal: record generation %d not past journal tail %d", rec.Gen, last)
	}
	active := j.segs[len(j.segs)-1]
	if active.size > j.opts.SegmentBytes {
		if err := j.newSegmentLocked(active.seq + 1); err != nil {
			return err
		}
		active = j.segs[len(j.segs)-1]
	}
	buf := encodeRecord(rec)
	rollback := func() {
		j.f.Truncate(active.size)
		j.f.Seek(active.size, io.SeekStart)
	}
	if _, err := j.w.Write(buf); err != nil {
		rollback()
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := fault.InjectErr("wal.sync"); err != nil {
		rollback()
		return fmt.Errorf("wal: append: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			rollback()
			return fmt.Errorf("wal: append sync: %w", err)
		}
	}
	active.size += int64(len(buf))
	active.recs = append(active.recs, rec)
	return nil
}

// AppendMarker records a coverage floor at gen (no edges). A marker at
// the journal's current tail generation is a no-op.
func (j *Journal) AppendMarker(gen uint64) error {
	j.mu.Lock()
	if j.lastGenLocked() == gen && gen != 0 {
		j.mu.Unlock()
		return nil
	}
	j.mu.Unlock()
	return j.Append(Record{From: gen, Gen: gen})
}

// Records returns every live record in order. The slice is fresh; the
// records' edge slices are shared and must not be mutated.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []Record
	for _, s := range j.segs {
		out = append(out, s.recs...)
	}
	return out
}

// LastGen is the generation of the newest record (0 when empty).
func (j *Journal) LastGen() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastGenLocked()
}

// ChainFrom resolves the replay sequence that upgrades a consumer at
// generation w to the journal's tail: records at or below w are
// skipped, each remaining record must cover the generation reached so
// far. ok=false reports an unbridgeable gap (the consumer predates the
// journal's coverage floor); the partial chain is not returned.
func (j *Journal) ChainFrom(w uint64) (chain []Record, ok bool) {
	for _, rec := range j.Records() {
		if rec.Gen <= w {
			continue
		}
		if rec.From > w {
			return nil, false
		}
		chain = append(chain, rec)
		w = rec.Gen
	}
	return chain, true
}

// Floor is the smallest generation from which ChainFrom succeeds —
// consumers below it need a full resync.
func (j *Journal) Floor() uint64 {
	floor := uint64(0)
	cur := uint64(0)
	first := true
	for _, rec := range j.Records() {
		if first || rec.From > cur {
			floor = rec.From
		}
		cur = rec.Gen
		first = false
	}
	return floor
}

// CompactThrough deletes whole segments whose every record is at or
// below gen — the worker-side compaction used after a checkpoint at
// gen makes those records redundant. The active segment is rotated
// first so a fully-covered journal compacts to just an empty segment.
// Per-file deletion is atomic; a crash mid-compaction leaves stale
// segments whose records are skipped on the next Open.
func (j *Journal) CompactThrough(gen uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	active := j.segs[len(j.segs)-1]
	if len(active.recs) > 0 && active.recs[len(active.recs)-1].Gen <= gen {
		if err := j.newSegmentLocked(active.seq + 1); err != nil {
			return err
		}
	}
	kept := j.segs[:0]
	for i, s := range j.segs {
		last := i == len(j.segs)-1
		covered := !last && (len(s.recs) == 0 || s.recs[len(s.recs)-1].Gen <= gen)
		if covered {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("wal: compact: %w", err)
			}
			continue
		}
		kept = append(kept, s)
	}
	j.segs = append([]*segment(nil), kept...)
	return j.syncDir()
}

// CompactCoalesce folds the prefix of full segments whose records all
// sit at or below gen into one snapshot record (last-write-wins edge
// merge), shrinking the journal without raising its coverage floor —
// the coordinator-side compaction. Coalescing never crosses a coverage
// floor jump (a marker): records before the last jump serve no
// reachable consumer and are simply dropped with it.
func (j *Journal) CompactCoalesce(gen uint64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	active := j.segs[len(j.segs)-1]
	if len(active.recs) > 0 && active.recs[len(active.recs)-1].Gen <= gen {
		if err := j.newSegmentLocked(active.seq + 1); err != nil {
			return err
		}
	}
	// The coalescible prefix: full segments entirely at or below gen.
	prefix := 0
	nrec := 0
	for i, s := range j.segs {
		if i == len(j.segs)-1 || (len(s.recs) > 0 && s.recs[len(s.recs)-1].Gen > gen) {
			break
		}
		prefix = i + 1
		nrec += len(s.recs)
	}
	if prefix == 0 || nrec < 2 {
		return nil
	}
	// Merge past the last floor jump only.
	var (
		merged   = map[[2]int]float64{}
		order    [][2]int
		from     uint64
		to       uint64
		reached  uint64
		started  bool
		snapshot Record
	)
	for i := 0; i < prefix; i++ {
		for _, rec := range j.segs[i].recs {
			if !started || rec.From > reached {
				// Floor jump: everything merged so far serves no consumer that
				// can reach the tail. Start over at this record's floor.
				merged = map[[2]int]float64{}
				order = order[:0]
				from = rec.From
			}
			started = true
			reached = rec.Gen
			to = rec.Gen
			for _, e := range rec.Edges {
				k := [2]int{e.U, e.V}
				if _, seen := merged[k]; !seen {
					order = append(order, k)
				}
				merged[k] = e.W
			}
		}
	}
	snapshot = Record{From: from, Gen: to, Edges: make([]Edge, 0, len(order))}
	for _, k := range order {
		snapshot.Edges = append(snapshot.Edges, Edge{U: k[0], V: k[1], W: merged[k]})
	}
	// Write the snapshot as a fresh segment under the first compacted
	// seq: tmp + fsync + rename is atomic, so every crash window leaves
	// either the old segment or the new one.
	target := j.segs[0]
	tmp, err := os.CreateTemp(j.dir, "coalesce-*.tmp")
	if err != nil {
		return fmt.Errorf("wal: coalesce: %w", err)
	}
	hdr := make([]byte, headerLen)
	copy(hdr, segMagic)
	binary.LittleEndian.PutUint32(hdr[4:], segVersion)
	body := append(hdr, encodeRecord(snapshot)...)
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: coalesce: %w", err)
	}
	if !j.opts.NoSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
			return fmt.Errorf("wal: coalesce: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: coalesce: %w", err)
	}
	if err := fault.InjectErr("wal.coalesce.rename"); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: coalesce: %w", err)
	}
	if err := os.Rename(tmp.Name(), target.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("wal: coalesce: %w", err)
	}
	target.recs = []Record{snapshot}
	target.size = int64(len(body))
	kept := []*segment{target}
	for _, s := range j.segs[1:prefix] {
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("wal: coalesce: %w", err)
		}
	}
	j.segs = append(kept, j.segs[prefix:]...)
	return j.syncDir()
}

// Stats snapshots the journal's shape.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Stats{
		Segments:        len(j.segs),
		TruncatedBytes:  j.truncatedBytes,
		DroppedSegments: j.droppedSegments,
	}
	for _, s := range j.segs {
		st.Records += len(s.recs)
		st.Bytes += s.size
		for _, r := range s.recs {
			if st.FirstGen == 0 {
				st.FirstGen = r.Gen
			}
			st.LastGen = r.Gen
		}
	}
	return st
}

// Close releases the active segment handle. The journal must not be
// used afterwards.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
