package wal

// FuzzLoadJournal feeds arbitrary bytes to Open as a segment file and
// holds the loader to its only acceptable behaviors: parse an intact
// prefix, truncate the rest, never panic, never invent records — and
// leave the directory in a state a second Open and further appends
// fully agree with. "Corrupt tails are truncated, never half-applied"
// is a property, so it is tested as one.

import (
	"os"
	"path/filepath"
	"testing"
)

func FuzzLoadJournal(f *testing.F) {
	// Seed with real shapes: empty, header-only, one record, a torn
	// record, and garbage.
	f.Add([]byte{})
	hdr := []byte{'S', 'F', 'W', 'J', 1, 0, 0, 0}
	f.Add(hdr)
	one := append(append([]byte{}, hdr...), encodeRecord(Record{From: 1, Gen: 2, Edges: []Edge{{U: 0, V: 1, W: 2.5}}})...)
	f.Add(one)
	f.Add(one[:len(one)-3])
	f.Add([]byte("not a journal at all, just bytes"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		seg := filepath.Join(dir, "journal-00000001.wal")
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := Open(dir, Options{NoSync: true})
		if err != nil {
			// Open may fail only on real I/O errors, which a plain file in a
			// temp dir should never produce.
			t.Fatalf("Open on fuzz input: %v", err)
		}
		recs := j.Records()
		last := uint64(0)
		for _, r := range recs {
			if r.From > r.Gen {
				t.Fatalf("loader produced record with From %d > Gen %d", r.From, r.Gen)
			}
			if r.Gen <= last && !(r.IsMarker() && r.Gen == last) {
				t.Fatalf("loader produced non-monotonic generations: %d after %d", r.Gen, last)
			}
			last = r.Gen
		}
		// Whatever survived the scan must be appendable and must
		// round-trip bit-exactly through a reopen — i.e. the tail was
		// really truncated on disk, not just skipped in memory.
		next := Record{From: last, Gen: last + 1, Edges: []Edge{{U: 3, V: 4, W: 1.5}}}
		if err := j.Append(next); err != nil {
			t.Fatalf("append after fuzz open: %v", err)
		}
		j.Close()
		j2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer j2.Close()
		got := j2.Records()
		want := append(append([]Record{}, recs...), next)
		if !sameRecords(got, want) {
			t.Fatalf("reopen disagrees:\n got %+v\nwant %+v", got, want)
		}
		if st := j2.Stats(); st.TruncatedBytes != 0 {
			t.Fatalf("second open still truncating (%d bytes): first open left a torn tail", st.TruncatedBytes)
		}
	})
}
