// Package part implements graph partitioning: a multilevel edge
// bisection (heavy-edge matching coarsening, graph-growing initial
// partitions, Fiduccia-Mattheyses boundary refinement) and vertex
// separator extraction. It plays the role METIS/Scotch play in the paper:
// supplying the separators that drive nested-dissection ordering.
package part

import (
	"math/rand"

	"repro/internal/graph"
)

// Options control the bisection.
type Options struct {
	// Imbalance is the tolerated deviation from a perfect 50/50 split,
	// as a fraction of total vertex weight (default 0.15).
	Imbalance float64
	// CoarsenTo stops coarsening when the graph has at most this many
	// vertices (default 48).
	CoarsenTo int
	// Trials is the number of initial partitions tried on the coarsest
	// graph (default 6).
	Trials int
	// Seed makes the randomized phases deterministic.
	Seed int64
	// RefinePasses bounds FM passes per level (default 8).
	RefinePasses int
}

func (o Options) withDefaults() Options {
	if o.Imbalance <= 0 {
		o.Imbalance = 0.15
	}
	if o.CoarsenTo <= 0 {
		o.CoarsenTo = 48
	}
	if o.Trials <= 0 {
		o.Trials = 6
	}
	if o.RefinePasses <= 0 {
		o.RefinePasses = 8
	}
	return o
}

// Separator is a vertex separator: Part[v] is 0 or 1 for the two
// components and 2 for separator vertices. No edge joins a 0-vertex to a
// 1-vertex.
type Separator struct {
	Part  []uint8
	Sizes [3]int // vertex counts of side 0, side 1, separator
}

const (
	side0 = 0
	side1 = 1
	sepID = 2
)

// VertexSeparator computes a vertex separator of g using multilevel edge
// bisection followed by minimum-vertex-cover extraction on the cut.
// The graph need not be connected; disconnected pieces are distributed to
// balance the sides (possibly yielding an empty separator).
func VertexSeparator(g *graph.Graph, opts Options) Separator {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	w := wgraphFromGraph(g)
	side := multilevelBisect(w, opts, rng)
	sep := coverSeparator(g, side)
	refineSeparator(g, &sep)
	improveSeparator(g, &sep, opts)
	return sep
}

// wgraph is a working graph with integer vertex weights (contracted
// multiplicity) and float edge weights (summed multi-edge weight), used
// during multilevel coarsening.
type wgraph struct {
	n    int
	ptr  []int
	adj  []int
	ewgt []float64
	vwgt []int
	// cmap maps this level's vertices to the coarser graph (set during
	// coarsening); fmap maps to the finer parent vertices.
	parent *wgraph
	cmap   []int
}

func wgraphFromGraph(g *graph.Graph) *wgraph {
	vw := make([]int, g.N)
	for i := range vw {
		vw[i] = 1
	}
	ew := make([]float64, len(g.Wgt))
	for i := range ew {
		ew[i] = 1 // structural weight: separator quality is about counts
	}
	return &wgraph{n: g.N, ptr: g.Ptr, adj: g.Adj, ewgt: ew, vwgt: vw}
}

func (w *wgraph) totalVWgt() int {
	t := 0
	for _, v := range w.vwgt {
		t += v
	}
	return t
}

// coarsen builds the next-coarser graph via heavy-edge matching. Returns
// nil if coarsening stalls (graph shrinks by <10%).
func (w *wgraph) coarsen(rng *rand.Rand) *wgraph {
	match := make([]int, w.n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(w.n)
	nc := 0
	for _, v := range order {
		if match[v] >= 0 {
			continue
		}
		best, bestW := -1, -1.0
		for e := w.ptr[v]; e < w.ptr[v+1]; e++ {
			u := w.adj[e]
			if match[u] < 0 && u != v && w.ewgt[e] > bestW {
				best, bestW = u, w.ewgt[e]
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = v
		} else {
			match[v] = v
		}
		nc++
	}
	if nc >= w.n-w.n/10 {
		return nil // stalled
	}
	// Assign coarse ids: each matched pair (or singleton) becomes one
	// coarse vertex, in order of first appearance.
	cmap := make([]int, w.n)
	for i := range cmap {
		cmap[i] = -1
	}
	next := 0
	for v := 0; v < w.n; v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = next
		if m := match[v]; m != v {
			cmap[m] = next
		}
		next++
	}
	// Build coarse adjacency by accumulating edge weights.
	c := &wgraph{n: next, vwgt: make([]int, next), parent: w}
	w.cmap = cmap
	for v := 0; v < w.n; v++ {
		c.vwgt[cmap[v]] += w.vwgt[v]
	}
	type nb struct {
		u int
		w float64
	}
	lists := make([][]nb, next)
	seen := make(map[int64]int) // (cu,cv) -> index into lists[cu]
	for v := 0; v < w.n; v++ {
		cu := cmap[v]
		for e := w.ptr[v]; e < w.ptr[v+1]; e++ {
			cv := cmap[w.adj[e]]
			if cu == cv {
				continue
			}
			key := int64(cu)*int64(next) + int64(cv)
			if idx, ok := seen[key]; ok {
				lists[cu][idx].w += w.ewgt[e]
			} else {
				seen[key] = len(lists[cu])
				lists[cu] = append(lists[cu], nb{cv, w.ewgt[e]})
			}
		}
	}
	c.ptr = make([]int, next+1)
	for v, l := range lists {
		c.ptr[v+1] = c.ptr[v] + len(l)
	}
	c.adj = make([]int, c.ptr[next])
	c.ewgt = make([]float64, c.ptr[next])
	for v, l := range lists {
		off := c.ptr[v]
		for i, e := range l {
			c.adj[off+i] = e.u
			c.ewgt[off+i] = e.w
		}
	}
	return c
}

// multilevelBisect returns side[v] ∈ {0,1} for every vertex of w.
func multilevelBisect(w *wgraph, opts Options, rng *rand.Rand) []uint8 {
	// Coarsening phase.
	levels := []*wgraph{w}
	cur := w
	for cur.n > opts.CoarsenTo {
		nxt := cur.coarsen(rng)
		if nxt == nil {
			break
		}
		levels = append(levels, nxt)
		cur = nxt
	}
	// Initial partition on the coarsest graph.
	coarsest := levels[len(levels)-1]
	side := initialPartition(coarsest, opts, rng)
	fmRefine(coarsest, side, opts, rng)
	// Uncoarsening: project and refine at each level.
	for i := len(levels) - 2; i >= 0; i-- {
		fine := levels[i]
		fineSide := make([]uint8, fine.n)
		for v := 0; v < fine.n; v++ {
			fineSide[v] = side[fine.cmap[v]]
		}
		side = fineSide
		fmRefine(fine, side, opts, rng)
	}
	return side
}

// initialPartition grows a region by BFS from several seeds and keeps the
// best cut among balanced results.
func initialPartition(w *wgraph, opts Options, rng *rand.Rand) []uint8 {
	total := w.totalVWgt()
	target := total / 2
	bestCut := -1.0
	var best []uint8
	for t := 0; t < opts.Trials; t++ {
		seed := rng.Intn(w.n)
		side := growFrom(w, seed, target)
		cut := cutWeight(w, side)
		if bestCut < 0 || cut < bestCut {
			bestCut, best = cut, side
		}
	}
	if best == nil {
		best = make([]uint8, w.n)
		for v := range best {
			best[v] = uint8(v % 2)
		}
	}
	return best
}

// growFrom grows side 0 from the seed by BFS until its vertex weight
// reaches target; everything else is side 1. Unreached vertices (other
// components) are appended to whichever side is lighter.
func growFrom(w *wgraph, seed, target int) []uint8 {
	side := make([]uint8, w.n)
	for i := range side {
		side[i] = side1
	}
	visited := make([]bool, w.n)
	queue := []int{seed}
	visited[seed] = true
	weight := 0
	for len(queue) > 0 && weight < target {
		v := queue[0]
		queue = queue[1:]
		side[v] = side0
		weight += w.vwgt[v]
		for e := w.ptr[v]; e < w.ptr[v+1]; e++ {
			u := w.adj[e]
			if !visited[u] {
				visited[u] = true
				queue = append(queue, u)
			}
		}
		if len(queue) == 0 && weight < target {
			// component exhausted: jump to an unvisited vertex
			for u := 0; u < w.n; u++ {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
					break
				}
			}
		}
	}
	return side
}

func cutWeight(w *wgraph, side []uint8) float64 {
	cut := 0.0
	for v := 0; v < w.n; v++ {
		for e := w.ptr[v]; e < w.ptr[v+1]; e++ {
			if u := w.adj[e]; u > v && side[u] != side[v] {
				cut += w.ewgt[e]
			}
		}
	}
	return cut
}

func sideWeights(w *wgraph, side []uint8) [2]int {
	var sw [2]int
	for v := 0; v < w.n; v++ {
		sw[side[v]] += w.vwgt[v]
	}
	return sw
}

// fmRefine performs Fiduccia-Mattheyses-style passes: repeatedly move the
// highest-gain movable boundary vertex to the other side (respecting the
// balance constraint), allowing negative-gain moves within a pass and
// rolling back to the best prefix.
func fmRefine(w *wgraph, side []uint8, opts Options, rng *rand.Rand) {
	total := w.totalVWgt()
	maxSide := int(float64(total) * (0.5 + opts.Imbalance))
	if maxSide >= total {
		maxSide = total - 1
	}

	gain := func(v int) float64 {
		ext, inte := 0.0, 0.0
		for e := w.ptr[v]; e < w.ptr[v+1]; e++ {
			if side[w.adj[e]] != side[v] {
				ext += w.ewgt[e]
			} else {
				inte += w.ewgt[e]
			}
		}
		return ext - inte
	}

	for pass := 0; pass < opts.RefinePasses; pass++ {
		sw := sideWeights(w, side)
		locked := make([]bool, w.n)
		// Candidate set: boundary vertices only (moving an interior
		// vertex always has negative gain). Neighbors of moved vertices
		// join the set as moves expose new boundary.
		inCand := make([]bool, w.n)
		var cands []int
		addCand := func(v int) {
			if !inCand[v] {
				inCand[v] = true
				cands = append(cands, v)
			}
		}
		for v := 0; v < w.n; v++ {
			for e := w.ptr[v]; e < w.ptr[v+1]; e++ {
				if side[w.adj[e]] != side[v] {
					addCand(v)
					break
				}
			}
		}
		type move struct {
			v    int
			gain float64
		}
		var seq []move
		sum, bestSum, bestLen := 0.0, 0.0, 0
		maxMoves := 64 + len(cands)
		if maxMoves > w.n {
			maxMoves = w.n
		}
		for step := 0; step < maxMoves; step++ {
			bv, bg := -1, 0.0
			for _, v := range cands {
				if locked[v] {
					continue
				}
				to := 1 - side[v]
				if sw[to]+w.vwgt[v] > maxSide {
					continue
				}
				if g := gain(v); bv < 0 || g > bg {
					bv, bg = v, g
				}
			}
			if bv < 0 {
				break
			}
			from := side[bv]
			side[bv] = 1 - from
			sw[from] -= w.vwgt[bv]
			sw[1-from] += w.vwgt[bv]
			locked[bv] = true
			for e := w.ptr[bv]; e < w.ptr[bv+1]; e++ {
				addCand(w.adj[e])
			}
			sum += bg
			seq = append(seq, move{bv, bg})
			if sum > bestSum {
				bestSum, bestLen = sum, len(seq)
			}
			if len(seq)-bestLen > 64 {
				break // give up this pass: long negative tail
			}
		}
		// Roll back moves after the best prefix.
		for i := len(seq) - 1; i >= bestLen; i-- {
			v := seq[i].v
			side[v] = 1 - side[v]
		}
		if bestSum <= 0 {
			return
		}
	}
}

// coverSeparator converts an edge bisection into a vertex separator by
// taking a vertex cover of the cut edges. It uses a maximum bipartite
// matching (Hopcroft-Karp-style BFS/DFS phases) on the cut-edge bipartite
// graph and extracts the König minimum vertex cover, which is optimal for
// the given edge cut.
func coverSeparator(g *graph.Graph, side []uint8) Separator {
	// Collect boundary vertices on each side.
	idx0 := map[int]int{}
	idx1 := map[int]int{}
	var b0, b1 []int
	for v := 0; v < g.N; v++ {
		if side[v] != side0 {
			continue
		}
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			if side[u] == side1 {
				if _, ok := idx0[v]; !ok {
					idx0[v] = len(b0)
					b0 = append(b0, v)
				}
				if _, ok := idx1[u]; !ok {
					idx1[u] = len(b1)
					b1 = append(b1, u)
				}
			}
		}
	}
	// Bipartite adjacency from b0 to b1 (cut edges only).
	adj := make([][]int, len(b0))
	for i, v := range b0 {
		nbrs, _ := g.Neighbors(v)
		for _, u := range nbrs {
			if side[u] == side1 {
				adj[i] = append(adj[i], idx1[u])
			}
		}
	}
	matchL, matchR := maxBipartiteMatching(adj, len(b1))
	// König: Z = unmatched left ∪ reachable via alternating paths;
	// cover = (L \ Z) ∪ (R ∩ Z).
	inZ0 := make([]bool, len(b0))
	inZ1 := make([]bool, len(b1))
	var queue []int
	for i := range b0 {
		if matchL[i] < 0 {
			inZ0[i] = true
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, j := range adj[i] {
			if inZ1[j] {
				continue
			}
			inZ1[j] = true
			if mi := matchR[j]; mi >= 0 && !inZ0[mi] {
				inZ0[mi] = true
				queue = append(queue, mi)
			}
		}
	}
	part := make([]uint8, g.N)
	copy(part, side)
	var sizes [3]int
	for i, v := range b0 {
		if !inZ0[i] {
			part[v] = sepID
		}
	}
	for j, v := range b1 {
		if inZ1[j] {
			part[v] = sepID
		}
	}
	for _, p := range part {
		sizes[p]++
	}
	return Separator{Part: part, Sizes: sizes}
}

// maxBipartiteMatching computes a maximum matching of the bipartite graph
// given by adj (left → right neighbor lists). Returns matchL (left →
// right or -1) and matchR (right → left or -1).
func maxBipartiteMatching(adj [][]int, nRight int) (matchL, matchR []int) {
	nLeft := len(adj)
	matchL = make([]int, nLeft)
	matchR = make([]int, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for j := range matchR {
		matchR[j] = -1
	}
	visited := make([]int, nRight)
	for j := range visited {
		visited[j] = -1
	}
	var try func(i, stamp int) bool
	try = func(i, stamp int) bool {
		for _, j := range adj[i] {
			if visited[j] == stamp {
				continue
			}
			visited[j] = stamp
			if matchR[j] < 0 || try(matchR[j], stamp) {
				matchL[i] = j
				matchR[j] = i
				return true
			}
		}
		return false
	}
	for i := 0; i < nLeft; i++ {
		try(i, i)
	}
	return matchL, matchR
}

// refineSeparator drops separator vertices that are not actually needed
// (adjacent to only one side); they are moved into that side. This
// repairs any slack left by the cover step when cut edges shared
// endpoints.
func refineSeparator(g *graph.Graph, sep *Separator) {
	changed := true
	for changed {
		changed = false
		for v := 0; v < g.N; v++ {
			if sep.Part[v] != sepID {
				continue
			}
			adj, _ := g.Neighbors(v)
			saw0, saw1 := false, false
			for _, u := range adj {
				switch sep.Part[u] {
				case side0:
					saw0 = true
				case side1:
					saw1 = true
				}
			}
			if saw0 && saw1 {
				continue
			}
			// Movable: put it in the side it touches, or the smaller one.
			to := uint8(side0)
			if saw1 {
				to = side1
			} else if !saw0 && sep.Sizes[side1] < sep.Sizes[side0] {
				to = side1
			}
			sep.Part[v] = to
			sep.Sizes[sepID]--
			sep.Sizes[to]++
			changed = true
		}
	}
	// Recompute sizes defensively (cheap, and keeps the invariant
	// obvious for callers).
	var sizes [3]int
	for _, p := range sep.Part {
		sizes[p]++
	}
	copy(sep.Sizes[:], sizes[:])
}

// improveSeparator performs greedy vertex-separator refinement: a
// separator vertex v may move into a side when the neighbors it pulls
// into the separator (its neighbors on the other side) number fewer
// than one — i.e. the separator strictly shrinks — subject to the
// balance constraint. Strictly-improving moves guarantee termination;
// repeated passes run until a fixpoint.
func improveSeparator(g *graph.Graph, sep *Separator, opts Options) {
	maxSide := int(float64(g.N) * (0.5 + opts.Imbalance))
	for pass := 0; pass < 2*opts.RefinePasses; pass++ {
		improved := false
		for v := 0; v < g.N; v++ {
			if sep.Part[v] != sepID {
				continue
			}
			adj, _ := g.Neighbors(v)
			var cnt [2]int
			for _, u := range adj {
				if p := sep.Part[u]; p == side0 || p == side1 {
					cnt[p]++
				}
			}
			// Move v to side s: cnt[1-s] neighbors must join the
			// separator. Net separator change = cnt[1-s] − 1 < 0 means
			// only cnt[1-s] == 0, i.e. v touches one side only — those
			// were handled by refineSeparator — OR we allow pulling in
			// one neighbor when it frees v AND that neighbor could
			// cascade; restrict to the strict case plus the swap case
			// where the pulled-in neighbor itself touches one side.
			for _, s := range [2]uint8{side0, side1} {
				if cnt[1-s] != 0 || sep.Sizes[s]+1 > maxSide {
					continue
				}
				sep.Part[v] = s
				sep.Sizes[sepID]--
				sep.Sizes[s]++
				improved = true
				break
			}
			if sep.Part[v] != sepID {
				continue
			}
			// Swap move: pull exactly one other-side neighbor u into
			// the separator and release v, when u's entry does not
			// enlarge the separator elsewhere (|S| unchanged) but
			// improves balance toward the lighter side.
			for _, s := range [2]uint8{side0, side1} {
				if cnt[1-s] != 1 || sep.Sizes[s] >= sep.Sizes[1-s] || sep.Sizes[s]+1 > maxSide {
					continue
				}
				var u int = -1
				for _, w := range adj {
					if sep.Part[w] == 1-s {
						u = w
						break
					}
				}
				if u < 0 {
					continue
				}
				sep.Part[v] = s
				sep.Part[u] = sepID
				sep.Sizes[s]++
				sep.Sizes[1-s]--
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
}

// Check verifies the separator invariant: no edge joins side 0 to side 1.
func (s Separator) Check(g *graph.Graph) bool {
	for v := 0; v < g.N; v++ {
		if s.Part[v] != side0 {
			continue
		}
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			if s.Part[u] == side1 {
				return false
			}
		}
	}
	return true
}
