package part

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func checkSeparator(t *testing.T, name string, g *graph.Graph, s Separator) {
	t.Helper()
	if len(s.Part) != g.N {
		t.Fatalf("%s: part length %d != n %d", name, len(s.Part), g.N)
	}
	var sizes [3]int
	for _, p := range s.Part {
		if p > 2 {
			t.Fatalf("%s: invalid part id %d", name, p)
		}
		sizes[p]++
	}
	if sizes != s.Sizes {
		t.Fatalf("%s: reported sizes %v != actual %v", name, s.Sizes, sizes)
	}
	if !s.Check(g) {
		t.Fatalf("%s: edge crosses the separator", name)
	}
}

func TestVertexSeparatorGrid(t *testing.T) {
	// 16x16 grid: optimal separator is 16; the multilevel heuristic
	// should stay within a small factor.
	g := gen.Grid2D(16, 16, gen.WeightUnit, 1)
	s := VertexSeparator(g, Options{Seed: 1})
	checkSeparator(t, "grid16", g, s)
	if s.Sizes[2] == 0 {
		t.Fatal("grid must need a separator")
	}
	if s.Sizes[2] > 3*16 {
		t.Errorf("separator size %d too large for a 16x16 grid", s.Sizes[2])
	}
	// Balance: neither side should dwarf the other.
	lo, hi := s.Sizes[0], s.Sizes[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo*4 < hi {
		t.Errorf("severely unbalanced: %d vs %d", s.Sizes[0], s.Sizes[1])
	}
}

func TestVertexSeparatorGeometric(t *testing.T) {
	g := gen.GeometricKNN(800, 2, 4, gen.WeightUnit, 2)
	s := VertexSeparator(g, Options{Seed: 2})
	checkSeparator(t, "geo", g, s)
	// Planar-like: separator should be O(√n)-ish, far below n.
	if s.Sizes[2] > g.N/5 {
		t.Errorf("separator %d of %d is suspiciously large for a planar-like graph", s.Sizes[2], g.N)
	}
}

func TestVertexSeparatorPath(t *testing.T) {
	g := gen.Grid2D(100, 1, gen.WeightUnit, 3)
	s := VertexSeparator(g, Options{Seed: 3})
	checkSeparator(t, "path", g, s)
	if s.Sizes[2] > 5 {
		t.Errorf("path separator should be ~1 vertex, got %d", s.Sizes[2])
	}
}

func TestVertexSeparatorDisconnected(t *testing.T) {
	// Two disjoint grids: a perfect bisection needs no separator at all.
	e1 := gen.Grid2D(8, 8, gen.WeightUnit, 4).Edges()
	for _, e := range gen.Grid2D(8, 8, gen.WeightUnit, 5).Edges() {
		e1 = append(e1, graph.Edge{U: e.U + 64, V: e.V + 64, W: e.W})
	}
	g := graph.MustFromEdges(128, e1)
	s := VertexSeparator(g, Options{Seed: 6})
	checkSeparator(t, "disconnected", g, s)
	if s.Sizes[2] > 4 {
		t.Errorf("disconnected graph should need a near-empty separator, got %d", s.Sizes[2])
	}
}

func TestVertexSeparatorSmallGraphs(t *testing.T) {
	// Degenerate sizes must not crash.
	for n := 1; n <= 5; n++ {
		var edges []graph.Edge
		for i := 0; i+1 < n; i++ {
			edges = append(edges, graph.Edge{U: i, V: i + 1, W: 1})
		}
		g := graph.MustFromEdges(n, edges)
		s := VertexSeparator(g, Options{Seed: int64(n)})
		checkSeparator(t, "tiny", g, s)
	}
}

func TestVertexSeparatorExpander(t *testing.T) {
	// Expander-like: separator will be large — just verify validity.
	g := gen.BarabasiAlbert(300, 8, gen.WeightUnit, 7)
	s := VertexSeparator(g, Options{Seed: 7})
	checkSeparator(t, "ba", g, s)
}

func TestMaxBipartiteMatching(t *testing.T) {
	// K2,2 minus one edge: maximum matching 2.
	adj := [][]int{{0, 1}, {0}}
	ml, mr := maxBipartiteMatching(adj, 2)
	matched := 0
	for _, m := range ml {
		if m >= 0 {
			matched++
		}
	}
	if matched != 2 {
		t.Fatalf("matching size %d, want 2", matched)
	}
	for j, i := range mr {
		if i >= 0 && ml[i] != j {
			t.Fatal("matchL/matchR inconsistent")
		}
	}
	// Star: left {0,1,2} all pointing at right 0 — matching 1.
	adj = [][]int{{0}, {0}, {0}}
	ml, _ = maxBipartiteMatching(adj, 1)
	matched = 0
	for _, m := range ml {
		if m >= 0 {
			matched++
		}
	}
	if matched != 1 {
		t.Fatalf("star matching size %d, want 1", matched)
	}
}

func TestSeparatorQualityScaling(t *testing.T) {
	// |S| should grow like √n on grids: quadrupling n should roughly
	// double |S| (allow generous slack for the heuristic).
	sizes := map[int]int{}
	for _, side := range []int{12, 24} {
		g := gen.Grid2D(side, side, gen.WeightUnit, 11)
		s := VertexSeparator(g, Options{Seed: 11})
		checkSeparator(t, "scaling", g, s)
		sizes[side] = s.Sizes[2]
	}
	ratio := float64(sizes[24]) / math.Max(1, float64(sizes[12]))
	if ratio > 4.5 {
		t.Errorf("separator growth %g too fast for planar scaling", ratio)
	}
}
