package graph

import (
	"testing"
)

func pathGraph(n int) *Graph {
	var edges []Edge
	for i := 0; i+1 < n; i++ {
		edges = append(edges, Edge{i, i + 1, 1})
	}
	return MustFromEdges(n, edges)
}

func TestBFSOrder(t *testing.T) {
	g := pathGraph(5)
	order := g.BFSOrder(2)
	if len(order) != 5 || order[0] != 2 {
		t.Fatalf("BFS order %v", order)
	}
	// Discovery from the middle of a path: 2, then 1,3, then 0,4.
	want := []int{2, 1, 3, 0, 4}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("BFS order %v, want %v", order, want)
		}
	}
}

func TestBFSOrderAllCoversComponents(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1, 1}, {3, 4, 1}})
	order := g.BFSOrderAll()
	if len(order) != 6 {
		t.Fatalf("BFSOrderAll covered %d of 6", len(order))
	}
	if !IsPermutation(order) {
		t.Fatal("BFSOrderAll must be a permutation")
	}
}

func TestLevels(t *testing.T) {
	g := pathGraph(7)
	level, h, lastW := g.Levels(0)
	if h != 6 {
		t.Errorf("path eccentricity from end = %d, want 6", h)
	}
	if lastW != 1 {
		t.Errorf("last level width = %d, want 1", lastW)
	}
	for i := 0; i < 7; i++ {
		if level[i] != i {
			t.Errorf("level[%d]=%d, want %d", i, level[i], i)
		}
	}
	// Unreachable vertices get -1.
	g2 := MustFromEdges(3, []Edge{{0, 1, 1}})
	lv, _, _ := g2.Levels(0)
	if lv[2] != -1 {
		t.Error("unreachable vertex should have level -1")
	}
}

func TestPseudoPeripheral(t *testing.T) {
	g := pathGraph(20)
	v := g.PseudoPeripheral(10)
	if v != 0 && v != 19 {
		t.Errorf("pseudo-peripheral of a path should be an endpoint, got %d", v)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := MustFromEdges(7, []Edge{{0, 1, 1}, {1, 2, 1}, {3, 4, 1}})
	comp, count := g.ConnectedComponents()
	if count != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("count=%d, want 4", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Error("0,1,2 should share a component")
	}
	if comp[3] != comp[4] || comp[3] == comp[0] {
		t.Error("3,4 should share a distinct component")
	}
	if comp[5] == comp[6] {
		t.Error("isolated vertices should be separate components")
	}
	if g.IsConnected() {
		t.Error("graph is not connected")
	}
	if !pathGraph(4).IsConnected() {
		t.Error("path is connected")
	}
}
