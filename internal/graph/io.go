package graph

// Text serialization in the MatrixMarket coordinate format
// ("%%MatrixMarket matrix coordinate real symmetric"), the interchange
// format used by the SuiteSparse collection the paper draws its test
// matrices from. Only the lower triangle is stored; indices are 1-based.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteMatrixMarket writes g in MatrixMarket symmetric coordinate format.
func WriteMatrixMarket(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real symmetric\n"); err != nil {
		return err
	}
	edges := g.Edges()
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", g.N, g.N, len(edges)); err != nil {
		return err
	}
	for _, e := range edges {
		// Lower triangle: row > col, 1-based.
		if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", e.V+1, e.U+1, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file into a Graph.
// Both "real" and "pattern" matrices are accepted (pattern entries get
// weight 1); "general" matrices are symmetrized by keeping the minimum
// weight of each {i,j} pair. Diagonal entries are ignored.
func ReadMatrixMarket(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("graph: unsupported MatrixMarket header %q", sc.Text())
	}
	pattern := false
	for _, f := range header[3:] {
		switch f {
		case "real", "integer", "symmetric", "general":
		case "pattern":
			pattern = true
		case "complex", "hermitian", "skew-symmetric":
			return nil, fmt.Errorf("graph: unsupported MatrixMarket qualifier %q", f)
		}
	}
	// Skip comments, read size line.
	var n, m, entries int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &n, &m, &entries); err != nil {
			return nil, fmt.Errorf("graph: bad size line %q: %v", line, err)
		}
		break
	}
	if n != m {
		return nil, fmt.Errorf("graph: adjacency matrix must be square, got %d×%d", n, m)
	}
	// Bound header-declared sizes before allocating: a hostile or corrupt
	// size line must not drive gigabyte allocations. 1<<27 vertices is
	// far beyond anything this library can process anyway.
	if n < 0 || entries < 0 || n > 1<<27 {
		return nil, fmt.Errorf("graph: unreasonable size line (n=%d, entries=%d)", n, entries)
	}
	prealloc := entries
	if prealloc > 1<<20 {
		prealloc = 1 << 20 // grow beyond this only as actual entries arrive
	}
	edges := make([]Edge, 0, prealloc)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: bad entry line %q", line)
		}
		i, err1 := strconv.Atoi(fields[0])
		j, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("graph: bad indices in %q", line)
		}
		w := 1.0
		if !pattern {
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: missing value in %q", line)
			}
			w, err1 = strconv.ParseFloat(fields[2], 64)
			if err1 != nil {
				return nil, fmt.Errorf("graph: bad value in %q", line)
			}
		}
		if i == j {
			continue
		}
		edges = append(edges, Edge{U: i - 1, V: j - 1, W: w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewFromEdges(n, edges)
}
