package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 30
	var edges []Edge
	for i := 0; i < 80; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, Edge{u, v, float64(rng.Intn(1000)) / 8})
		}
	}
	g := MustFromEdges(n, edges)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != g.N || g2.M() != g.M() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d", g2.N, g2.M(), g.N, g.M())
	}
	for u := 0; u < n; u++ {
		a1, w1 := g.Neighbors(u)
		a2, w2 := g2.Neighbors(u)
		for i := range a1 {
			if a1[i] != a2[i] || w1[i] != w2[i] {
				t.Fatal("edge mismatch after round trip")
			}
		}
	}
}

func TestReadMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern symmetric
% a comment
3 3 2
2 1
3 2
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 2 {
		t.Fatalf("pattern read wrong: n=%d m=%d", g.N, g.M())
	}
	if w, ok := g.Weight(0, 1); !ok || w != 1 {
		t.Error("pattern entries should get weight 1")
	}
}

func TestReadMatrixMarketGeneralSymmetrizes(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
2 2 2
1 2 5.0
2 1 3.0
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g.Weight(0, 1); w != 3 {
		t.Errorf("general matrix should keep min weight, got %g", w)
	}
}

func TestReadMatrixMarketErrors(t *testing.T) {
	cases := []string{
		"",
		"%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"%%MatrixMarket matrix coordinate complex symmetric\n1 1 0\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 3 0\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\nx y 1\n",
		"%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1\n",
	}
	for i, in := range cases {
		if _, err := ReadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestReadMatrixMarketSkipsDiagonal(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
2 2 2
1 1 9.0
2 1 1.5
`
	g, err := ReadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Errorf("diagonal entries must be ignored, m=%d", g.M())
	}
}
