// Package graph provides the weighted undirected graph substrate used by
// every APSP algorithm in this repository: a compressed-sparse-row (CSR)
// representation, construction and validation from edge lists,
// traversals (BFS, connected components, pseudo-peripheral vertices),
// relabeling, and conversion to dense distance matrices.
package graph

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/semiring"
)

// Edge is an undirected weighted edge between vertices U and V.
type Edge struct {
	U, V int
	W    float64
}

// Graph is a weighted undirected graph in CSR form. For every undirected
// edge {u,v} both directed arcs are stored, so len(Adj) == 2m. Neighbor
// lists are sorted by target vertex and contain no self-loops or
// duplicates.
type Graph struct {
	N   int       // number of vertices
	Ptr []int     // CSR row pointers, len N+1
	Adj []int     // concatenated neighbor lists, len Ptr[N]
	Wgt []float64 // weights parallel to Adj
}

// NewFromEdges builds a graph on n vertices from an edge list.
// Nonnegative self-loops are dropped (they can never shorten a path);
// a negative self-loop is a one-vertex negative cycle and is rejected.
// Duplicate edges keep the minimum weight. The input slice is not
// modified.
func NewFromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	type arc struct {
		u, v int
		w    float64
	}
	arcs := make([]arc, 0, 2*len(edges))
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if math.IsNaN(e.W) {
			return nil, fmt.Errorf("graph: edge (%d,%d) has NaN weight", e.U, e.V)
		}
		if e.U == e.V {
			if e.W < 0 {
				return nil, fmt.Errorf("graph: negative self-loop at vertex %d is a negative-weight cycle", e.U)
			}
			continue
		}
		arcs = append(arcs, arc{e.U, e.V, e.W}, arc{e.V, e.U, e.W})
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].u != arcs[j].u {
			return arcs[i].u < arcs[j].u
		}
		if arcs[i].v != arcs[j].v {
			return arcs[i].v < arcs[j].v
		}
		return arcs[i].w < arcs[j].w
	})
	g := &Graph{N: n, Ptr: make([]int, n+1)}
	g.Adj = make([]int, 0, len(arcs))
	g.Wgt = make([]float64, 0, len(arcs))
	for i := 0; i < len(arcs); i++ {
		if i > 0 && arcs[i].u == arcs[i-1].u && arcs[i].v == arcs[i-1].v {
			continue // duplicate: earlier (smaller) weight wins
		}
		g.Adj = append(g.Adj, arcs[i].v)
		g.Wgt = append(g.Wgt, arcs[i].w)
		g.Ptr[arcs[i].u+1]++
	}
	for i := 0; i < n; i++ {
		g.Ptr[i+1] += g.Ptr[i]
	}
	return g, nil
}

// MustFromEdges is NewFromEdges that panics on error; for tests and
// generators whose inputs are valid by construction.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := NewFromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.Adj) / 2 }

// NNZ returns the number of stored arcs (2m), i.e. off-diagonal nonzeros
// of the adjacency matrix.
func (g *Graph) NNZ() int { return len(g.Adj) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return g.Ptr[v+1] - g.Ptr[v] }

// Neighbors returns the sorted neighbor list of v and the parallel weight
// slice. The returned slices alias the graph's storage.
func (g *Graph) Neighbors(v int) ([]int, []float64) {
	lo, hi := g.Ptr[v], g.Ptr[v+1]
	return g.Adj[lo:hi], g.Wgt[lo:hi]
}

// AvgDegree returns 2m/n, the nnz/n column of the paper's Table 3.
func (g *Graph) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(g.NNZ()) / float64(g.N)
}

// HasNegativeWeights reports whether any edge weight is negative.
func (g *Graph) HasNegativeWeights() bool {
	for _, w := range g.Wgt {
		if w < 0 {
			return true
		}
	}
	return false
}

// MinWeight returns the smallest edge weight, or +Inf for an edgeless graph.
func (g *Graph) MinWeight() float64 {
	m := math.Inf(1)
	for _, w := range g.Wgt {
		if w < m {
			m = w
		}
	}
	return m
}

// Validate checks CSR structural invariants: monotone pointers, sorted
// duplicate-free neighbor lists, no self-loops, and symmetry (u∈adj(v) ⇔
// v∈adj(u) with equal weights).
func (g *Graph) Validate() error {
	if len(g.Ptr) != g.N+1 {
		return fmt.Errorf("graph: len(Ptr)=%d, want %d", len(g.Ptr), g.N+1)
	}
	if g.Ptr[0] != 0 || g.Ptr[g.N] != len(g.Adj) || len(g.Adj) != len(g.Wgt) {
		return fmt.Errorf("graph: inconsistent CSR arrays")
	}
	for v := 0; v < g.N; v++ {
		if g.Ptr[v] > g.Ptr[v+1] {
			return fmt.Errorf("graph: Ptr not monotone at %d", v)
		}
		adj, wgt := g.Neighbors(v)
		for i, u := range adj {
			if u < 0 || u >= g.N {
				return fmt.Errorf("graph: neighbor %d of %d out of range", u, v)
			}
			if u == v {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if i > 0 && adj[i-1] >= u {
				return fmt.Errorf("graph: neighbors of %d not strictly sorted", v)
			}
			w, ok := g.Weight(u, v)
			//lint:ignore nanguard Verify demands the two stored copies of an undirected edge be bitwise identical; NaN weights should fail it
			if !ok || w != wgt[i] {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", v, u)
			}
		}
	}
	return nil
}

// Weight returns the weight of edge {u,v} and whether it exists.
func (g *Graph) Weight(u, v int) (float64, bool) {
	adj, wgt := g.Neighbors(u)
	i := sort.SearchInts(adj, v)
	if i < len(adj) && adj[i] == v {
		return wgt[i], true
	}
	return 0, false
}

// Edges returns the undirected edge list (each edge once, U < V).
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.M())
	for u := 0; u < g.N; u++ {
		adj, wgt := g.Neighbors(u)
		for i, v := range adj {
			if u < v {
				edges = append(edges, Edge{u, v, wgt[i]})
			}
		}
	}
	return edges
}

// Permute returns the graph relabeled so that new vertex i is old vertex
// perm[i] (perm maps new→old).
func (g *Graph) Permute(perm []int) *Graph {
	if len(perm) != g.N {
		panic("graph: permutation length mismatch")
	}
	iperm := InversePerm(perm)
	edges := make([]Edge, 0, g.M())
	for u := 0; u < g.N; u++ {
		adj, wgt := g.Neighbors(u)
		for i, v := range adj {
			if u < v {
				edges = append(edges, Edge{iperm[u], iperm[v], wgt[i]})
			}
		}
	}
	return MustFromEdges(g.N, edges)
}

// InversePerm returns the inverse of perm: iperm[perm[i]] = i.
func InversePerm(perm []int) []int {
	iperm := make([]int, len(perm))
	for i, p := range perm {
		iperm[p] = i
	}
	return iperm
}

// IsPermutation reports whether p is a permutation of [0, len(p)).
func IsPermutation(p []int) bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// ToDense returns the n×n initial distance matrix: 0 on the diagonal,
// edge weights where edges exist, +Inf elsewhere. This is the Dist
// initialization of Algorithm 1.
func (g *Graph) ToDense() semiring.Mat {
	d := semiring.NewInfMat(g.N, g.N)
	for i := 0; i < g.N; i++ {
		row := d.Row(i)
		row[i] = 0
		adj, wgt := g.Neighbors(i)
		for k, j := range adj {
			row[j] = wgt[k]
		}
	}
	return d
}

// ToDenseWith returns the initial matrix for an arbitrary semiring:
// `one` on the diagonal (the empty path), edge weights where edges
// exist, and `zero` (the "no path" value) elsewhere. ToDense is the
// min-plus special case (one=0, zero=+Inf); the max-min widest-path
// semiring uses one=+Inf, zero=-Inf.
func (g *Graph) ToDenseWith(zero, one float64) semiring.Mat {
	d := semiring.NewMat(g.N, g.N)
	d.Fill(zero)
	for i := 0; i < g.N; i++ {
		row := d.Row(i)
		row[i] = one
		adj, wgt := g.Neighbors(i)
		for k, j := range adj {
			row[j] = wgt[k]
		}
	}
	return d
}

// ToDensePotential returns the directed initial distance matrix of the
// potential-reweighted instance: arc u→v gets weight w(u,v)+p[u]−p[v].
// The sparsity pattern stays symmetric (what the supernodal machinery
// requires) while values become asymmetric and possibly negative; cycle
// weights are unchanged, so the instance has no negative cycles. The true
// distances of the original graph are recovered from the closure D' of
// this matrix as D[u][v] = D'[u][v] − p[u] + p[v].
func (g *Graph) ToDensePotential(p []float64) semiring.Mat {
	if len(p) != g.N {
		panic("graph: potential length mismatch")
	}
	d := semiring.NewInfMat(g.N, g.N)
	for u := 0; u < g.N; u++ {
		row := d.Row(u)
		row[u] = 0
		adj, wgt := g.Neighbors(u)
		for k, v := range adj {
			row[v] = wgt[k] + p[u] - p[v]
		}
	}
	return d
}

// InducedSubgraph returns the subgraph induced by the given vertices
// (which must be distinct) relabeled to [0, len(vertices)), plus nothing
// else: edges with one endpoint outside are dropped. The i-th vertex of
// the result is vertices[i].
func (g *Graph) InducedSubgraph(vertices []int) *Graph {
	local := make(map[int]int, len(vertices))
	for i, v := range vertices {
		local[v] = i
	}
	var edges []Edge
	for i, v := range vertices {
		adj, wgt := g.Neighbors(v)
		for k, u := range adj {
			if j, ok := local[u]; ok && i < j {
				edges = append(edges, Edge{i, j, wgt[k]})
			}
		}
	}
	return MustFromEdges(len(vertices), edges)
}
