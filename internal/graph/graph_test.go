package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/semiring"
)

func triangle() *Graph {
	return MustFromEdges(3, []Edge{{0, 1, 1}, {1, 2, 2}, {0, 2, 4}})
}

func TestNewFromEdgesBasic(t *testing.T) {
	g := triangle()
	if g.N != 3 || g.M() != 3 || g.NNZ() != 6 {
		t.Fatalf("counts wrong: n=%d m=%d nnz=%d", g.N, g.M(), g.NNZ())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if w, ok := g.Weight(2, 0); !ok || w != 4 {
		t.Error("Weight(2,0) should be 4")
	}
	if _, ok := g.Weight(0, 0); ok {
		t.Error("no self edge")
	}
	if g.Degree(1) != 2 {
		t.Error("degree wrong")
	}
}

func TestNewFromEdgesDedupAndLoops(t *testing.T) {
	g := MustFromEdges(3, []Edge{
		{0, 1, 5}, {1, 0, 2}, {0, 1, 9}, // duplicates: min weight 2 wins
		{2, 2, 1}, // self loop dropped
	})
	if g.M() != 1 {
		t.Fatalf("m=%d, want 1", g.M())
	}
	if w, _ := g.Weight(0, 1); w != 2 {
		t.Errorf("duplicate resolution kept %g, want 2", w)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewFromEdgesErrors(t *testing.T) {
	if _, err := NewFromEdges(2, []Edge{{0, 5, 1}}); err == nil {
		t.Error("out-of-range edge should error")
	}
	if _, err := NewFromEdges(-1, nil); err == nil {
		t.Error("negative n should error")
	}
	if _, err := NewFromEdges(2, []Edge{{0, 1, math.NaN()}}); err == nil {
		t.Error("NaN weight should error")
	}
}

func TestNewFromEdgesNegativeSelfLoop(t *testing.T) {
	// A negative self-loop is a one-vertex negative cycle; dropping it
	// silently would turn a negative-cycle instance into a clean solve.
	if _, err := NewFromEdges(3, []Edge{{0, 1, 1}, {2, 2, -0.5}}); err == nil {
		t.Error("negative self-loop should error")
	}
	// Zero- and positive-weight self-loops stay droppable.
	g, err := NewFromEdges(3, []Edge{{0, 1, 1}, {2, 2, 0}, {1, 1, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 {
		t.Fatalf("m=%d, want 1", g.M())
	}
	// NaN on a self-loop is still a NaN error, not silently dropped.
	if _, err := NewFromEdges(2, []Edge{{1, 1, math.NaN()}}); err == nil {
		t.Error("NaN self-loop should error")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var edges []Edge
	n := 40
	for i := 0; i < 120; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, Edge{u, v, rng.Float64()})
		}
	}
	g := MustFromEdges(n, edges)
	g2 := MustFromEdges(n, g.Edges())
	if g2.M() != g.M() {
		t.Fatal("edge list round trip changed edge count")
	}
	for u := 0; u < n; u++ {
		a1, w1 := g.Neighbors(u)
		a2, w2 := g2.Neighbors(u)
		if len(a1) != len(a2) {
			t.Fatal("neighbor list mismatch")
		}
		for i := range a1 {
			if a1[i] != a2[i] || w1[i] != w2[i] {
				t.Fatal("edge data mismatch")
			}
		}
	}
}

func TestPermute(t *testing.T) {
	g := triangle()
	perm := []int{2, 0, 1} // new0=old2, new1=old0, new2=old1
	pg := g.Permute(perm)
	if err := pg.Validate(); err != nil {
		t.Fatal(err)
	}
	// old edge (0,1,w=1): new ids 1 and 2.
	if w, ok := pg.Weight(1, 2); !ok || w != 1 {
		t.Errorf("permuted edge wrong: %v %v", w, ok)
	}
	// old (0,2,w=4): new 1 and 0.
	if w, ok := pg.Weight(0, 1); !ok || w != 4 {
		t.Errorf("permuted edge wrong: %v %v", w, ok)
	}
}

func TestPermuteQuickInverse(t *testing.T) {
	// Permuting by p then by inverse(p) restores the original graph.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(30)
		var edges []Edge
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, Edge{u, v, float64(rng.Intn(100)) + 1})
			}
		}
		g := MustFromEdges(n, edges)
		p := rng.Perm(n)
		back := g.Permute(p).Permute(InversePerm(p))
		if back.M() != g.M() {
			return false
		}
		for u := 0; u < n; u++ {
			a1, w1 := g.Neighbors(u)
			a2, w2 := back.Neighbors(u)
			if len(a1) != len(a2) {
				return false
			}
			for i := range a1 {
				if a1[i] != a2[i] || w1[i] != w2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInversePermAndIsPermutation(t *testing.T) {
	p := []int{3, 1, 0, 2}
	ip := InversePerm(p)
	for i, v := range p {
		if ip[v] != i {
			t.Fatal("inverse perm wrong")
		}
	}
	if !IsPermutation(p) {
		t.Error("valid permutation rejected")
	}
	if IsPermutation([]int{0, 0, 1}) || IsPermutation([]int{0, 3}) {
		t.Error("invalid permutation accepted")
	}
}

func TestToDense(t *testing.T) {
	g := triangle()
	d := g.ToDense()
	if d.At(0, 0) != 0 || d.At(1, 1) != 0 {
		t.Error("diagonal must be 0")
	}
	if d.At(0, 1) != 1 || d.At(1, 0) != 1 || d.At(0, 2) != 4 {
		t.Error("edge weights wrong")
	}
	g2 := MustFromEdges(3, []Edge{{0, 1, 1}})
	if !math.IsInf(g2.ToDense().At(0, 2), 1) {
		t.Error("non-edges must be Inf")
	}
}

func TestToDensePotential(t *testing.T) {
	g := triangle()
	p := []float64{0, 1, 3}
	d := g.ToDensePotential(p)
	// arc 0→1: 1 + 0 - 1 = 0; arc 1→0: 1 + 1 - 0 = 2.
	if d.At(0, 1) != 0 || d.At(1, 0) != 2 {
		t.Errorf("potential arcs wrong: %g %g", d.At(0, 1), d.At(1, 0))
	}
	// Cycle sums unchanged: 0→1→2→0 = (1+0-1)+(2+1-3)+(4+3-0) = 7 = 1+2+4.
	sum := d.At(0, 1) + d.At(1, 2) + d.At(2, 0)
	if math.Abs(sum-7) > 1e-12 {
		t.Errorf("cycle sum changed: %g", sum)
	}
	if d.At(0, 0) != 0 {
		t.Error("diagonal must stay 0")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := MustFromEdges(5, []Edge{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 4, 4}, {0, 4, 5}})
	sub := g.InducedSubgraph([]int{1, 2, 3})
	if sub.N != 3 || sub.M() != 2 {
		t.Fatalf("induced subgraph wrong: n=%d m=%d", sub.N, sub.M())
	}
	if w, ok := sub.Weight(0, 1); !ok || w != 2 {
		t.Error("subgraph edge (1,2) should map to (0,1) with weight 2")
	}
}

func TestHasNegativeAndMinWeight(t *testing.T) {
	g := MustFromEdges(2, []Edge{{0, 1, -1}})
	if !g.HasNegativeWeights() {
		t.Error("negative weight not detected")
	}
	if g.MinWeight() != -1 {
		t.Error("min weight wrong")
	}
	empty := MustFromEdges(2, nil)
	if !math.IsInf(empty.MinWeight(), 1) {
		t.Error("edgeless min weight should be Inf")
	}
}

func TestAvgDegree(t *testing.T) {
	g := triangle()
	if g.AvgDegree() != 2 {
		t.Errorf("triangle avg degree = %g, want 2", g.AvgDegree())
	}
	if MustFromEdges(0, nil).AvgDegree() != 0 {
		t.Error("empty graph avg degree should be 0")
	}
}

func TestToDenseClosureEqualsSemiring(t *testing.T) {
	// Sanity coupling with the semiring package: closure of triangle.
	d := triangle().ToDense()
	semiring.FloydWarshall(d)
	if d.At(0, 2) != 3 { // 0→1→2 = 1+2 beats direct 4
		t.Errorf("closure D[0][2] = %g, want 3", d.At(0, 2))
	}
}
