package graph

// Traversal utilities: BFS orderings (used by the SuperBfs baseline and
// by pseudo-peripheral vertex search), connected components, and level
// structures.

// BFSOrder returns the order in which vertices are discovered by a
// breadth-first search from root, restricted to root's connected
// component. Neighbor ties break in sorted-index order, so the result is
// deterministic.
func (g *Graph) BFSOrder(root int) []int {
	order := make([]int, 0, g.N)
	seen := make([]bool, g.N)
	seen[root] = true
	order = append(order, root)
	for head := 0; head < len(order); head++ {
		v := order[head]
		adj, _ := g.Neighbors(v)
		for _, u := range adj {
			if !seen[u] {
				seen[u] = true
				order = append(order, u)
			}
		}
	}
	return order
}

// BFSOrderAll returns a BFS discovery order covering every vertex: a BFS
// is started from the lowest-indexed unvisited vertex of each component.
// This is the vertex ordering used by the SuperBfs baseline ("BFS from
// vertex-0, order of discovery").
func (g *Graph) BFSOrderAll() []int {
	order := make([]int, 0, g.N)
	seen := make([]bool, g.N)
	for s := 0; s < g.N; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		order = append(order, s)
		for head := len(order) - 1; head < len(order); head++ {
			v := order[head]
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if !seen[u] {
					seen[u] = true
					order = append(order, u)
				}
			}
		}
	}
	return order
}

// Levels returns the BFS level of every vertex reachable from root (-1
// for unreachable vertices) along with the eccentricity of root within
// its component and the number of vertices in the last level.
func (g *Graph) Levels(root int) (level []int, height, lastWidth int) {
	level = make([]int, g.N)
	for i := range level {
		level[i] = -1
	}
	level[root] = 0
	frontier := []int{root}
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if level[u] < 0 {
					level[u] = level[v] + 1
					next = append(next, u)
				}
			}
		}
		if len(next) == 0 {
			return level, height, len(frontier)
		}
		height++
		frontier = next
	}
	return level, height, 1
}

// PseudoPeripheral returns a vertex of approximately maximal eccentricity
// in the component containing start, found by the George-Liu iteration:
// repeatedly move to a minimum-degree vertex of the last BFS level until
// the eccentricity stops growing.
func (g *Graph) PseudoPeripheral(start int) int {
	v := start
	level, h, _ := g.Levels(v)
	for iter := 0; iter < 16; iter++ {
		// Pick the minimum-degree vertex in the deepest level.
		best, bestDeg := -1, g.N+1
		for u := 0; u < g.N; u++ {
			if level[u] == h {
				if d := g.Degree(u); d < bestDeg {
					best, bestDeg = u, d
				}
			}
		}
		if best < 0 {
			return v
		}
		nl, nh, _ := g.Levels(best)
		if nh <= h {
			return best
		}
		v, level, h = best, nl, nh
	}
	return v
}

// ConnectedComponents returns, for every vertex, the id of its component
// (ids are dense, assigned in order of the lowest vertex), and the number
// of components.
func (g *Graph) ConnectedComponents() (comp []int, count int) {
	comp = make([]int, g.N)
	for i := range comp {
		comp[i] = -1
	}
	queue := make([]int, 0, g.N)
	for s := 0; s < g.N; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				if comp[u] < 0 {
					comp[u] = count
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether the graph has exactly one connected
// component (and at least one vertex).
func (g *Graph) IsConnected() bool {
	if g.N == 0 {
		return false
	}
	_, c := g.ConnectedComponents()
	return c == 1
}
