package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket: the parser must never panic, and anything it
// accepts must be a structurally valid graph that round-trips.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 1.5\n3 2 2.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n2 1\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 5\n2 1 3\n")
	f.Add("")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n-1 -1 -1\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n9 9 1\n")
	f.Add("%%MatrixMarket matrix coordinate real symmetric\n1000000000 1000000000 1\n1 2 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		g, err := ReadMatrixMarket(strings.NewReader(in))
		if err != nil {
			return
		}
		if g.N > 1<<20 {
			return // degenerate huge-but-empty headers: skip round trip
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, g); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		g2, err := ReadMatrixMarket(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.N != g.N || g2.M() != g.M() {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzNewFromEdges: arbitrary edge triples either error cleanly or build
// a valid graph.
func FuzzNewFromEdges(f *testing.F) {
	f.Add(5, 0, 1, 2.5, 1, 0, 3.5)
	f.Add(0, 0, 0, 0.0, 0, 0, 0.0)
	f.Add(3, -1, 2, 1.0, 2, 2, 1.0)
	f.Fuzz(func(t *testing.T, n, u1, v1 int, w1 float64, u2, v2 int, w2 float64) {
		if n < 0 || n > 10000 {
			return
		}
		g, err := NewFromEdges(n, []Edge{{u1, v1, w1}, {u2, v2, w2}})
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
	})
}
