package par

// Panic containment for the parallel primitives. A panic inside a worker
// goroutine would normally kill the whole process with a stack that
// names no task — or, worse, leave sibling workers blocked on a
// condition variable forever. Every fn invocation in RunDAG and For is
// therefore wrapped: the first panic is captured together with the task
// identity and the worker's stack, the schedulers wind down cleanly, and
// the panic is re-raised exactly once on the caller's goroutine as a
// *TaskPanic.

import (
	"fmt"
	"runtime/debug"
)

// TaskPanic is the value re-panicked on the caller when a task passed to
// RunDAG or For panics on a worker goroutine. It records which task
// failed and the worker stack at the point of the original panic, so a
// crash in a parallel factorization names its supernode instead of dying
// as an anonymous goroutine.
type TaskPanic struct {
	// Op is the primitive that ran the task: "RunDAG" or "For".
	Op string
	// Node is the task identity: the DAG node index (RunDAG) or the loop
	// iteration index (For).
	Node int
	// Value is the original panic value.
	Value any
	// Stack is the worker goroutine's stack captured at recovery time.
	Stack []byte
}

func (p *TaskPanic) Error() string {
	return fmt.Sprintf("par: panic in %s task %d: %v", p.Op, p.Node, p.Value)
}

// Unwrap exposes an error panic value to errors.Is/As chains.
func (p *TaskPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// String includes the captured worker stack, which the short Error form
// omits.
func (p *TaskPanic) String() string {
	return fmt.Sprintf("%s\n%s", p.Error(), p.Stack)
}

// Do runs fn(node, workers) inline and re-raises any panic as a
// *TaskPanic attributed to (op, node). Sequential code paths use it so a
// crash carries the same task identity it would have under the pooled
// schedulers.
func Do(op string, node, workers int, fn func(node, workers int)) {
	if tp := capture(op, node, workers, fn); tp != nil {
		panic(tp)
	}
}

// capture runs fn(node, workers) and converts a panic into a returned
// *TaskPanic. A *TaskPanic arriving from a nested primitive (a par.For
// inside a RunDAG task) is passed through unchanged so the innermost
// attribution wins.
func capture(op string, node, workers int, fn func(node, workers int)) (tp *TaskPanic) {
	defer func() {
		if r := recover(); r != nil {
			if inner, ok := r.(*TaskPanic); ok {
				tp = inner
				return
			}
			tp = &TaskPanic{Op: op, Node: node, Value: r, Stack: debug.Stack()}
		}
	}()
	fn(node, workers)
	return nil
}
