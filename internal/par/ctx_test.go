package par

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosRunDAGCancel cancels a context mid-run and checks that the
// scheduler stops at node granularity and reports ctx.Err() instead of
// finishing the DAG.
func TestChaosRunDAGCancel(t *testing.T) {
	for _, threads := range []int{1, 4} {
		const n = 200
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := RunDAGCtx(ctx, chainParents(n), threads, func(k, workers int) {
			if ran.Add(1) == 5 {
				cancel()
			}
			time.Sleep(time.Millisecond)
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("threads=%d: err = %v, want context.Canceled", threads, err)
		}
		if got := ran.Load(); got >= n {
			t.Fatalf("threads=%d: all %d nodes ran despite cancellation", threads, got)
		}
	}
}

// TestChaosRunDAGDeadline drives cancellation through a deadline instead
// of an explicit cancel.
func TestChaosRunDAGDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := RunDAGCtx(ctx, chainParents(500), 2, func(k, workers int) {
		time.Sleep(time.Millisecond)
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestChaosRunDAGWorkerPanic checks the panic-containment contract: a
// worker panic surfaces exactly once on the caller's goroutine as a
// *TaskPanic naming the failing node — instead of crashing the process
// from an anonymous goroutine or wedging the other workers.
func TestChaosRunDAGWorkerPanic(t *testing.T) {
	for _, threads := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				tp, ok := r.(*TaskPanic)
				if !ok {
					t.Fatalf("threads=%d: recovered %T %v, want *TaskPanic", threads, r, r)
				}
				if tp.Op != "RunDAG" || tp.Node != 7 {
					t.Fatalf("threads=%d: panic attributed to %s task %d, want RunDAG task 7", threads, tp.Op, tp.Node)
				}
				if tp.Value != "boom" {
					t.Fatalf("threads=%d: original panic value lost: %v", threads, tp.Value)
				}
				if len(tp.Stack) == 0 || !strings.Contains(tp.Error(), "task 7") {
					t.Fatalf("threads=%d: stack or message missing: %v", threads, tp)
				}
			}()
			RunDAGCtx(context.Background(), starParents(32), threads, func(k, workers int) {
				if k == 7 {
					panic("boom")
				}
			})
			t.Fatalf("threads=%d: expected panic", threads)
		}()
	}
}

// TestChaosRunDAGPanicDoesNotWedge floods a wide DAG with concurrent
// workers, panics one node, and requires the call to return (with the
// panic) rather than deadlock — run under a timeout to catch wedging.
func TestChaosRunDAGPanicDoesNotWedge(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }()
		RunDAG(starParents(512), 8, func(k, workers int) {
			if k == 100 {
				panic("mid-flight failure")
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunDAG wedged after a worker panic")
	}
}

// TestRunDAGCycleReachableFromLeaves is the regression test for cycle
// handling: leaves exist (so the no-leaves panic does not fire) but feed
// into a cycle, leaving done < n after the queue drains. Both the
// sequential and concurrent paths must end with a clear panic, never a
// silent partial run or a wedge.
func TestRunDAGCycleReachableFromLeaves(t *testing.T) {
	parents := []int{1, 2, 1} // leaf 0 → cycle 1 ↔ 2
	for _, threads := range []int{1, 4} {
		done := make(chan any, 1)
		go func() {
			defer func() { done <- recover() }()
			RunDAG(parents, threads, func(k, workers int) {})
		}()
		select {
		case r := <-done:
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, "cycle") {
				t.Fatalf("threads=%d: panic %v, want a cycle message", threads, r)
			}
			if !strings.Contains(msg, "1 of 3") {
				t.Fatalf("threads=%d: message %q should name completed/total counts", threads, msg)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("threads=%d: cycle wedged RunDAG instead of panicking", threads)
		}
	}
}

// TestChaosForCancel checks chunk-granularity cancellation of ForCtx.
func TestChaosForCancel(t *testing.T) {
	for _, threads := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var ran atomic.Int64
		err := ForCtx(ctx, 10000, threads, 1, func(i int) {
			if ran.Add(1) == 10 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("threads=%d: err = %v, want context.Canceled", threads, err)
		}
		if got := ran.Load(); got >= 10000 {
			t.Fatalf("threads=%d: all iterations ran despite cancellation", threads)
		}
	}
}

// TestChaosForWorkerPanic checks that For names the exact failing
// iteration when a worker panics.
func TestChaosForWorkerPanic(t *testing.T) {
	for _, threads := range []int{1, 4} {
		func() {
			defer func() {
				tp, ok := recover().(*TaskPanic)
				if !ok || tp.Op != "For" || tp.Node != 13 {
					t.Fatalf("threads=%d: recovered %v, want For task 13", threads, tp)
				}
			}()
			For(100, threads, 1, func(i int) {
				if i == 13 {
					panic("iteration failure")
				}
			})
			t.Fatalf("threads=%d: expected panic", threads)
		}()
	}
}

// TestChaosNestedPanicAttribution runs a par.For inside a RunDAG node —
// the shape of an intra-supernode update inside an elimination — and
// checks the innermost attribution survives: the re-raised TaskPanic
// names the For iteration, not the enclosing DAG node.
func TestChaosNestedPanicAttribution(t *testing.T) {
	defer func() {
		tp, ok := recover().(*TaskPanic)
		if !ok || tp.Op != "For" || tp.Node != 3 {
			t.Fatalf("recovered %v, want For task 3", tp)
		}
	}()
	RunDAG(chainParents(4), 2, func(k, workers int) {
		if k == 2 {
			For(8, 2, 1, func(i int) {
				if i == 3 {
					panic("inner kernel failure")
				}
			})
		}
	})
	t.Fatal("expected panic")
}
