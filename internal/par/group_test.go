package par

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestGroupRunsAllTasks(t *testing.T) {
	g := NewGroup(4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		g.Go(func() { n.Add(1) })
	}
	g.Wait()
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", n.Load())
	}
}

func TestGroupPanicBecomesTaskPanic(t *testing.T) {
	g := NewGroup(4)
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		i := i
		g.Go(func() {
			if i == 3 {
				panic("rank 3 died")
			}
			ran.Add(1)
		})
	}
	defer func() {
		r := recover()
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want *TaskPanic", r, r)
		}
		if tp.Op != "Group" || tp.Node != 3 {
			t.Errorf("TaskPanic = op %q node %d, want Group/3", tp.Op, tp.Node)
		}
		if tp.Value != "rank 3 died" {
			t.Errorf("panic value = %v", tp.Value)
		}
		if !strings.Contains(string(tp.Stack), "group_test") {
			t.Errorf("stack does not name the failing task site:\n%s", tp.Stack)
		}
	}()
	g.Wait()
	t.Fatal("Wait returned without re-raising the task panic")
}

// TestGroupWaitFailsFast is the deadlock scenario containment must not
// convert a crash into: one task panics while a sibling is blocked on a
// channel the dead task would have serviced. Wait must re-raise the
// panic promptly instead of waiting for the blocked sibling.
func TestGroupWaitFailsFast(t *testing.T) {
	g := NewGroup(2)
	blocked := make(chan struct{})
	g.Go(func() { <-blocked }) // partner that will never be serviced
	g.Go(func() { panic("protocol torn") })
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		g.Wait()
		done <- nil
	}()
	select {
	case r := <-done:
		tp, ok := r.(*TaskPanic)
		if !ok {
			t.Fatalf("recovered %v (%T), want *TaskPanic", r, r)
		}
		if tp.Op != "Group" || tp.Node != 1 {
			t.Errorf("TaskPanic = op %q node %d, want Group/1", tp.Op, tp.Node)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not fail fast while a sibling task was blocked")
	}
	close(blocked) // release the straggler before the test exits
}

func TestGroupNestedTaskPanicPassesThrough(t *testing.T) {
	g := NewGroup(2)
	g.Go(func() {
		// A nested primitive's attribution must win, matching For/RunDAG.
		For(4, 2, 1, func(i int) {
			if i == 2 {
				panic("inner")
			}
		})
	})
	defer func() {
		tp, ok := recover().(*TaskPanic)
		if !ok || tp.Op != "For" || tp.Node != 2 {
			t.Fatalf("recovered %+v, want inner For/2 attribution", tp)
		}
	}()
	g.Wait()
	t.Fatal("Wait returned without re-raising")
}
