// Package par provides small shared-memory parallel building blocks used
// by the APSP implementations: a bounded parallel for-loop, a task group,
// and a striped mutex set for synchronizing reduction-style updates.
//
// All primitives degrade gracefully to sequential execution when the
// requested parallelism is 1, which keeps single-threaded benchmark runs
// free of scheduling overhead.
package par

import (
	"context"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultThreads returns the parallelism used when a caller passes
// threads <= 0: the current GOMAXPROCS setting.
func DefaultThreads(threads int) int {
	if threads > 0 {
		return threads
	}
	return runtime.GOMAXPROCS(0)
}

// For executes fn(i) for i in [0, n) using at most threads workers.
// Iterations are handed out in contiguous chunks of the given grain to
// amortize scheduling; grain <= 0 selects a grain that yields roughly 4
// chunks per worker. The worker count never exceeds the number of chunks,
// so tiny loops (n < threads, or grain ≥ n) degrade to fewer goroutines —
// down to plain sequential execution on the caller's goroutine when a
// single chunk covers the whole range.
//
// A panic inside fn is captured with the iteration index and re-raised
// once on the caller's goroutine as a *TaskPanic; remaining chunks are
// abandoned.
func For(n, threads, grain int, fn func(i int)) {
	// Background context: the only non-panic outcome is nil.
	_ = ForCtx(context.Background(), n, threads, grain, fn)
}

// ForCtx is For with cooperative cancellation: ctx is checked at chunk
// boundaries, so a cancelled context stops the loop without interrupting
// an iteration mid-flight and returns ctx.Err().
func ForCtx(ctx context.Context, n, threads, grain int, fn func(i int)) error {
	threads = DefaultThreads(threads)
	if n <= 0 {
		return nil
	}
	if grain <= 0 {
		grain = n / (threads * 4)
		if grain < 1 {
			grain = 1
		}
	}
	cancellable := ctx.Done() != nil
	// runChunk executes one contiguous chunk, converting a panic into a
	// *TaskPanic that names the exact failing iteration.
	runChunk := func(lo, hi int) (tp *TaskPanic) {
		i := lo
		defer func() {
			if r := recover(); r != nil {
				if inner, ok := r.(*TaskPanic); ok {
					tp = inner
					return
				}
				tp = &TaskPanic{Op: "For", Node: i, Value: r, Stack: debug.Stack()}
			}
		}()
		for ; i < hi; i++ {
			fn(i)
		}
		return nil
	}
	// One goroutine per chunk is the most parallelism the chunking can
	// feed; spawning beyond that only creates workers that find the queue
	// already drained.
	nchunks := (n + grain - 1) / grain
	workers := threads
	if workers > nchunks {
		workers = nchunks
	}
	if workers == 1 {
		for lo := 0; lo < n; lo += grain {
			if cancellable {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			if tp := runChunk(lo, hi); tp != nil {
				panic(tp)
			}
		}
		return nil
	}
	var (
		mu      sync.Mutex
		next    int
		caught  *TaskPanic // first worker panic (guarded by mu)
		ctxErr  error      // first observed cancellation (guarded by mu)
		stopped atomic.Bool
	)
	take := func() (int, int, bool) {
		if stopped.Load() {
			return 0, 0, false
		}
		mu.Lock()
		defer mu.Unlock()
		if cancellable {
			if err := ctx.Err(); err != nil {
				if ctxErr == nil {
					ctxErr = err
				}
				stopped.Store(true)
				return 0, 0, false
			}
		}
		if next >= n {
			return 0, 0, false
		}
		lo := next
		hi := lo + grain
		if hi > n {
			hi = n
		}
		next = hi
		return lo, hi, true
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo, hi, ok := take()
				if !ok {
					return
				}
				if tp := runChunk(lo, hi); tp != nil {
					mu.Lock()
					if caught == nil {
						caught = tp
					}
					mu.Unlock()
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	if caught != nil {
		panic(caught)
	}
	return ctxErr
}

// ForRanges executes fn(lo, hi) over contiguous ranges covering [0, n).
// It is a chunked variant of For for callers that can process a whole
// range more efficiently than element-at-a-time.
func ForRanges(n, threads, grain int, fn func(lo, hi int)) {
	threads = DefaultThreads(threads)
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = n / (threads * 4)
		if grain < 1 {
			grain = 1
		}
	}
	nchunks := (n + grain - 1) / grain
	For(nchunks, threads, 1, func(c int) {
		lo := c * grain
		hi := lo + grain
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// Group runs tasks with bounded parallelism. Zero value is not usable;
// construct with NewGroup.
//
// Like For and RunDAG, the Group contains worker panics: the first task
// panic is captured as a *TaskPanic (Op "Group", Node = the task's
// scheduling index) and re-raised on the goroutine that calls Wait.
// Wait fails fast: it returns as soon as a panic is recorded, without
// waiting for sibling tasks — tasks may be blocked on channels the dead
// task will never service again (the dist simulation's ranks are), and
// trading a guaranteed deadlock for a bounded goroutine leak on an
// already-fatal path is the right side of that bargain. A Group is
// one-shot: call Wait once, after all Go calls.
type Group struct {
	sem    chan struct{}
	wg     sync.WaitGroup
	failed chan struct{} // closed when the first task panic is recorded

	mu     sync.Mutex
	caught *TaskPanic
	tasks  int
}

// NewGroup returns a Group that runs at most threads tasks concurrently.
func NewGroup(threads int) *Group {
	threads = DefaultThreads(threads)
	return &Group{sem: make(chan struct{}, threads), failed: make(chan struct{})}
}

// Go schedules fn on the group, blocking while the group is saturated.
func (g *Group) Go(fn func()) {
	g.sem <- struct{}{}
	g.wg.Add(1)
	g.mu.Lock()
	node := g.tasks
	g.tasks++
	g.mu.Unlock()
	go func() {
		defer func() {
			<-g.sem
			g.wg.Done()
		}()
		if tp := capture("Group", node, 1, func(int, int) { fn() }); tp != nil {
			g.mu.Lock()
			first := g.caught == nil
			if first {
				g.caught = tp
			}
			g.mu.Unlock()
			if first {
				close(g.failed)
			}
		}
	}()
}

// Wait blocks until all scheduled tasks have finished or one has
// panicked, then re-raises the first captured panic, if any, as a
// *TaskPanic on the caller.
func (g *Group) Wait() {
	done := make(chan struct{})
	go func() { g.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-g.failed:
	}
	g.mu.Lock()
	tp := g.caught
	g.mu.Unlock()
	if tp != nil {
		panic(tp)
	}
}

// StripedMutex is a fixed set of mutexes indexed by key hash, used to
// serialize concurrent min-reductions into shared blocks without one lock
// per block.
type StripedMutex struct {
	mus []sync.Mutex
}

// NewStripedMutex returns a striped mutex with the given number of
// stripes (rounded up to a power of two, minimum 16).
func NewStripedMutex(stripes int) *StripedMutex {
	n := 16
	for n < stripes {
		n <<= 1
	}
	return &StripedMutex{mus: make([]sync.Mutex, n)}
}

// Lock acquires the stripe for key.
func (s *StripedMutex) Lock(key uint64) { s.mus[s.index(key)].Lock() }

// Unlock releases the stripe for key.
func (s *StripedMutex) Unlock(key uint64) { s.mus[s.index(key)].Unlock() }

func (s *StripedMutex) index(key uint64) int {
	// Fibonacci hash spreads sequential keys across stripes.
	return int((key * 0x9e3779b97f4a7c15) >> 32 & uint64(len(s.mus)-1))
}
