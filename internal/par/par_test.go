package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, threads := range []int{1, 2, 8} {
			var hits sync.Map
			var count int64
			For(n, threads, 3, func(i int) {
				if _, dup := hits.LoadOrStore(i, true); dup {
					t.Errorf("index %d executed twice", i)
				}
				atomic.AddInt64(&count, 1)
			})
			if int(count) != n {
				t.Fatalf("n=%d threads=%d: executed %d", n, threads, count)
			}
		}
	}
}

func TestForSequentialWhenOneThread(t *testing.T) {
	// threads=1 must run in order on the caller's goroutine.
	var order []int
	For(10, 1, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatal("sequential mode must preserve order")
		}
	}
}

func TestForRanges(t *testing.T) {
	covered := make([]int32, 100)
	ForRanges(100, 4, 7, func(lo, hi int) {
		if lo >= hi {
			t.Error("empty range delivered")
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestGroup(t *testing.T) {
	g := NewGroup(3)
	var active, maxActive int64
	var count int64
	for i := 0; i < 50; i++ {
		g.Go(func() {
			cur := atomic.AddInt64(&active, 1)
			for {
				m := atomic.LoadInt64(&maxActive)
				if cur <= m || atomic.CompareAndSwapInt64(&maxActive, m, cur) {
					break
				}
			}
			runtime.Gosched()
			atomic.AddInt64(&count, 1)
			atomic.AddInt64(&active, -1)
		})
	}
	g.Wait()
	if count != 50 {
		t.Fatalf("ran %d of 50 tasks", count)
	}
	if maxActive > 3 {
		t.Fatalf("concurrency %d exceeded bound 3", maxActive)
	}
}

func TestStripedMutex(t *testing.T) {
	// One counter per key: the same key always maps to the same stripe,
	// so per-key increments are serialized and none may be lost.
	sm := NewStripedMutex(64)
	counters := make([]int, 10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := uint64(i % 10)
				sm.Lock(k)
				counters[k]++
				sm.Unlock(k)
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != 8000 {
		t.Fatalf("lost updates: %d of 8000", total)
	}
}

func TestDefaultThreads(t *testing.T) {
	if DefaultThreads(5) != 5 {
		t.Error("positive passthrough")
	}
	if DefaultThreads(0) != runtime.GOMAXPROCS(0) {
		t.Error("zero should map to GOMAXPROCS")
	}
	if DefaultThreads(-3) != runtime.GOMAXPROCS(0) {
		t.Error("negative should map to GOMAXPROCS")
	}
}
