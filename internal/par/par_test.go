package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1000} {
		for _, threads := range []int{1, 2, 8} {
			var hits sync.Map
			var count atomic.Int64
			For(n, threads, 3, func(i int) {
				if _, dup := hits.LoadOrStore(i, true); dup {
					t.Errorf("index %d executed twice", i)
				}
				count.Add(1)
			})
			if int(count.Load()) != n {
				t.Fatalf("n=%d threads=%d: executed %d", n, threads, count.Load())
			}
		}
	}
}

func TestForSequentialWhenOneThread(t *testing.T) {
	// threads=1 must run in order on the caller's goroutine.
	var order []int
	For(10, 1, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatal("sequential mode must preserve order")
		}
	}
}

func TestForRanges(t *testing.T) {
	covered := make([]int32, 100)
	ForRanges(100, 4, 7, func(lo, hi int) {
		if lo >= hi {
			t.Error("empty range delivered")
		}
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&covered[i], 1)
		}
	})
	for i, c := range covered {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func TestForEdgeCases(t *testing.T) {
	// Tiny iteration spaces must not fan out wider than their chunk
	// count: with n < threads or grain ≥ n the worker count collapses,
	// down to pure sequential execution for a single chunk.
	cases := []struct {
		name              string
		n, threads, grain int
		wantMaxActive     int // upper bound on concurrently running fn
	}{
		{"n=0", 0, 8, 1, 0},
		{"n=1 many threads", 1, 8, 1, 1},
		{"grain covers all", 5, 8, 10, 1},
		{"grain equals n", 7, 8, 7, 1},
		{"threads over n", 3, 16, 1, 3},
		{"two chunks", 10, 8, 5, 2},
		{"auto grain tiny n", 2, 8, 0, 2}, // n < threads*4 → grain 1
		{"negative grain", 6, 4, -1, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var hits sync.Map
			var count, active, maxActive atomic.Int64
			For(tc.n, tc.threads, tc.grain, func(i int) {
				cur := active.Add(1)
				for {
					m := maxActive.Load()
					if cur <= m || maxActive.CompareAndSwap(m, cur) {
						break
					}
				}
				if _, dup := hits.LoadOrStore(i, true); dup {
					t.Errorf("index %d executed twice", i)
				}
				count.Add(1)
				active.Add(-1)
			})
			if int(count.Load()) != tc.n {
				t.Fatalf("executed %d of %d iterations", count.Load(), tc.n)
			}
			if int(maxActive.Load()) > tc.wantMaxActive {
				t.Fatalf("observed %d concurrent iterations, chunk bound is %d", maxActive.Load(), tc.wantMaxActive)
			}
		})
	}
}

func TestForSingleChunkStaysSequential(t *testing.T) {
	// grain ≥ n means one chunk: even with many threads the loop must run
	// in order on the caller's goroutine (observable as ordered appends
	// to an unsynchronized slice — the race detector seconds this).
	var order []int
	For(6, 8, 100, func(i int) { order = append(order, i) })
	if len(order) != 6 {
		t.Fatalf("ran %d iterations, want 6", len(order))
	}
	for i, v := range order {
		if i != v {
			t.Fatalf("single-chunk loop out of order: %v", order)
		}
	}
}

func TestForRangesEdgeCases(t *testing.T) {
	cases := []struct {
		name              string
		n, threads, grain int
	}{
		{"n=0", 0, 8, 4},
		{"n=1", 1, 8, 4},
		{"grain over n", 5, 4, 64},
		{"threads over n", 3, 16, 1},
		{"auto grain tiny n", 2, 8, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			covered := make([]int32, tc.n)
			ForRanges(tc.n, tc.threads, tc.grain, func(lo, hi int) {
				if lo >= hi {
					t.Error("empty range delivered")
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&covered[i], 1)
				}
			})
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("index %d covered %d times", i, c)
				}
			}
		})
	}
}

func TestGroup(t *testing.T) {
	g := NewGroup(3)
	var active, maxActive atomic.Int64
	var count atomic.Int64
	for i := 0; i < 50; i++ {
		g.Go(func() {
			cur := active.Add(1)
			for {
				m := maxActive.Load()
				if cur <= m || maxActive.CompareAndSwap(m, cur) {
					break
				}
			}
			runtime.Gosched()
			count.Add(1)
			active.Add(-1)
		})
	}
	g.Wait()
	if count.Load() != 50 {
		t.Fatalf("ran %d of 50 tasks", count.Load())
	}
	if maxActive.Load() > 3 {
		t.Fatalf("concurrency %d exceeded bound 3", maxActive.Load())
	}
}

func TestStripedMutex(t *testing.T) {
	// One counter per key: the same key always maps to the same stripe,
	// so per-key increments are serialized and none may be lost.
	sm := NewStripedMutex(64)
	counters := make([]int, 10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				k := uint64(i % 10)
				sm.Lock(k)
				counters[k]++
				sm.Unlock(k)
			}
		}()
	}
	wg.Wait()
	total := 0
	for _, c := range counters {
		total += c
	}
	if total != 8000 {
		t.Fatalf("lost updates: %d of 8000", total)
	}
}

func TestDefaultThreads(t *testing.T) {
	if DefaultThreads(5) != 5 {
		t.Error("positive passthrough")
	}
	if DefaultThreads(0) != runtime.GOMAXPROCS(0) {
		t.Error("zero should map to GOMAXPROCS")
	}
	if DefaultThreads(-3) != runtime.GOMAXPROCS(0) {
		t.Error("negative should map to GOMAXPROCS")
	}
}
