package par

import (
	"sync/atomic"
	"testing"
)

// chainParents builds a single path 0 → 1 → … → n-1 (each node's parent
// is the next index).
func chainParents(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i + 1
	}
	if n > 0 {
		p[n-1] = -1
	}
	return p
}

// starParents builds n-1 leaves all pointing at root n-1.
func starParents(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = n - 1
	}
	p[n-1] = -1
	return p
}

// combParents builds a spine 0→2→4→… where every spine node also has a
// leaf child (odd indices), ending in a single root.
func combParents(n int) []int {
	p := make([]int, n)
	for i := 0; i < n; i++ {
		if i%2 == 1 {
			p[i] = i + 1 // leaf → next spine node
		} else {
			p[i] = i + 2 // spine → next spine node
		}
		if p[i] >= n {
			p[i] = -1
		}
	}
	return p
}

func TestRunDAGChildBeforeParent(t *testing.T) {
	shapes := map[string][]int{
		"empty":   {},
		"single":  {-1},
		"chain":   chainParents(17),
		"star":    starParents(33),
		"comb":    combParents(20),
		"forest":  {-1, -1, 0, 0, 1, 4, -1},
		"negroot": {-2, 0, 1}, // any negative value marks a root
	}
	for name, parents := range shapes {
		for _, threads := range []int{1, 2, 8} {
			n := len(parents)
			doneAt := make([]int64, n) // completion order, 1-based
			var clock int64
			RunDAG(parents, threads, func(k, workers int) {
				if workers < 1 {
					t.Errorf("%s: node %d got %d workers", name, k, workers)
				}
				atomic.StoreInt64(&doneAt[k], atomic.AddInt64(&clock, 1))
			})
			for k, p := range parents {
				if doneAt[k] == 0 {
					t.Fatalf("%s threads=%d: node %d never ran", name, threads, k)
				}
				if p >= 0 && doneAt[p] <= doneAt[k] {
					t.Fatalf("%s threads=%d: parent %d completed at %d, before/with child %d at %d",
						name, threads, p, doneAt[p], k, doneAt[k])
				}
			}
		}
	}
}

func TestRunDAGRunsEachNodeOnce(t *testing.T) {
	parents := combParents(101)
	counts := make([]int64, len(parents))
	RunDAG(parents, 8, func(k, workers int) {
		atomic.AddInt64(&counts[k], 1)
	})
	for k, c := range counts {
		if c != 1 {
			t.Fatalf("node %d ran %d times", k, c)
		}
	}
}

func TestRunDAGSequentialOrder(t *testing.T) {
	// threads=1 visits nodes in ascending index order when parents is a
	// postorder (children precede parents), on the caller's goroutine.
	parents := []int{2, 2, 6, 5, 5, 6, -1}
	var order []int
	RunDAG(parents, 1, func(k, workers int) {
		if workers != 1 {
			t.Errorf("sequential mode handed node %d workers=%d", k, workers)
		}
		order = append(order, k)
	})
	for i, k := range order {
		if i != k {
			t.Fatalf("sequential visit order %v, want ascending", order)
		}
	}
}

func TestRunDAGConcurrencyBounded(t *testing.T) {
	const threads = 4
	parents := starParents(64)
	var active, maxActive atomic.Int64
	RunDAG(parents, threads, func(k, workers int) {
		cur := active.Add(1)
		for {
			m := maxActive.Load()
			if cur <= m || maxActive.CompareAndSwap(m, cur) {
				break
			}
		}
		active.Add(-1)
	})
	if maxActive.Load() > threads {
		t.Fatalf("observed %d concurrent nodes, pool is %d", maxActive.Load(), threads)
	}
}

func TestRunDAGInnerWorkersWidenOnNarrowDAG(t *testing.T) {
	const threads = 8
	// A pure chain has ready-set width 1 throughout: every node should
	// receive the whole pool.
	RunDAG(chainParents(12), threads, func(k, workers int) {
		if workers != threads {
			t.Errorf("chain node %d got %d workers, want %d", k, workers, threads)
		}
	})
	// Width·workers ≤ threads must hold at all times on any shape.
	var active int64
	RunDAG(starParents(100), threads, func(k, workers int) {
		w := atomic.AddInt64(&active, int64(workers))
		if w > threads {
			t.Errorf("concurrent worker budgets reached %d > pool %d", w, threads)
		}
		atomic.AddInt64(&active, -int64(workers))
	})
}

func TestRunDAGPanicsOnCycle(t *testing.T) {
	for _, parents := range [][]int{
		{1, 0},           // pure 2-cycle: no leaves at all
		{1, 2, 1, -1, 3}, // cycle 1↔2 plus a live branch
		{5, 0},           // parent out of range
		{0},              // self-parent
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("parents=%v: expected panic", parents)
				}
			}()
			RunDAG(parents, 4, func(k, workers int) {})
		}()
	}
}

// TestRunDAGHasNoLevelBarriers pins the property the scheduler exists
// for: work deep in the tree may run (and complete) before shallow work
// elsewhere has finished. Chain 0→1→2 sits at levels 0,1,2; node 3 is an
// independent level-0 root that blocks until the level-2 chain head has
// run. A level-synchronous schedule can never finish level 0 (node 3
// waits on level-2 work, which waits on the barrier) — a
// dependency-driven one runs the chain past the blocked root.
func TestRunDAGHasNoLevelBarriers(t *testing.T) {
	parents := []int{1, 2, -1, -1}
	release := make(chan struct{})
	RunDAG(parents, 2, func(k, workers int) {
		switch k {
		case 2:
			close(release)
		case 3:
			<-release
		}
	})
}
