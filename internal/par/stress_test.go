package par

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// TestStripedMutexMinReduction hammers a shared min-reduction through the
// striped locks, the exact access pattern the elimination uses for
// A(k)×A(k) tiles: many workers race to fold candidate values into a
// small set of cells, each cell guarded by its key's stripe. If striping
// were broken — two lockers of the same key landing on different stripes
// — the unsynchronized read-modify-write below would lose updates (and
// the race detector would flag it under -race).
func TestStripedMutexMinReduction(t *testing.T) {
	const (
		cells   = 37 // intentionally not a power of two
		workers = 8
		rounds  = 5000
	)
	sm := NewStripedMutex(64)
	best := make([]float64, cells)
	for i := range best {
		best[i] = 1e18
	}
	// Every worker proposes a deterministic value stream; the true
	// minimum per cell is known in advance.
	want := make([]float64, cells)
	for i := range want {
		want[i] = 1e18
	}
	streams := make([][]float64, workers)
	for w := range streams {
		rng := rand.New(rand.NewSource(int64(w + 1)))
		streams[w] = make([]float64, rounds)
		for r := range streams[w] {
			v := rng.Float64() * 1000
			streams[w][r] = v
			cell := (w*rounds + r) % cells
			if v < want[cell] {
				want[cell] = v
			}
		}
	}
	g := NewGroup(workers)
	for w := 0; w < workers; w++ {
		w := w
		g.Go(func() {
			for r, v := range streams[w] {
				cell := (w*rounds + r) % cells
				key := uint64(cell)
				sm.Lock(key)
				if v < best[cell] {
					best[cell] = v
				}
				sm.Unlock(key)
			}
		})
	}
	g.Wait()
	for i := range best {
		if best[i] != want[i] {
			t.Fatalf("cell %d: reduced min %v, want %v (lost update ⇒ striping broken)", i, best[i], want[i])
		}
	}
}

// TestGroupStress drives Group far past its concurrency bound with tasks
// that contend on shared state under -race.
func TestGroupStress(t *testing.T) {
	const bound = 4
	g := NewGroup(bound)
	var active, maxActive, done atomic.Int64
	for i := 0; i < 500; i++ {
		g.Go(func() {
			cur := active.Add(1)
			for {
				m := maxActive.Load()
				if cur <= m || maxActive.CompareAndSwap(m, cur) {
					break
				}
			}
			done.Add(1)
			active.Add(-1)
		})
	}
	g.Wait()
	if done.Load() != 500 {
		t.Fatalf("ran %d of 500 tasks", done.Load())
	}
	if maxActive.Load() > bound {
		t.Fatalf("concurrency %d exceeded bound %d", maxActive.Load(), bound)
	}
}
