package par

import (
	"context"
	"fmt"
	"sync"
)

// RunDAG executes fn(node, workers) once for every node of the forest
// described by parents (parents[k] is node k's parent, or < 0 for roots),
// guaranteeing child-before-parent order but imposing no other
// synchronization: a node becomes runnable the moment its last child
// completes, regardless of what the rest of the tree is doing. This is
// the dependency-driven alternative to level-synchronous scheduling —
// on imbalanced trees it keeps workers busy where a per-level barrier
// would idle them behind the level's slowest node.
//
// A pool of threads workers pulls runnable nodes from a shared ready
// queue. The workers argument passed to fn is the intra-node parallelism
// budget: when the ready set (running + queued nodes) is at least as wide
// as the pool it is 1, and as the DAG narrows toward its roots the
// leftover threads are handed to the surviving nodes so fn can parallelize
// internally. Budgets always satisfy width·workers ≤ threads.
//
// Completion counts are derived from parents alone, so any forest is
// accepted; RunDAG panics if parents contains a cycle or an out-of-range
// index (other than the negative root markers). A panic inside fn is
// captured with the node identity and re-raised once on the caller's
// goroutine as a *TaskPanic — never a silent deadlock, never an
// unattributed worker crash.
func RunDAG(parents []int, threads int, fn func(node, workers int)) {
	// Background context: the only non-panic outcome is nil.
	_ = RunDAGCtx(context.Background(), parents, threads, fn)
}

// RunDAGCtx is RunDAG with cooperative cancellation: ctx is checked each
// time a worker is about to start a node, so a cancelled context stops
// the run at node granularity and returns ctx.Err(). Nodes already
// executing are allowed to finish (fn is never interrupted mid-node);
// nodes not yet started are abandoned.
func RunDAGCtx(ctx context.Context, parents []int, threads int, fn func(node, workers int)) error {
	n := len(parents)
	if n == 0 {
		return nil
	}
	threads = DefaultThreads(threads)
	pending := make([]int32, n)
	for k, p := range parents {
		if p >= 0 {
			if p >= n || p == k {
				panic("par: RunDAG parent index out of range")
			}
			pending[p]++
		}
	}
	// Seed the ready queue with the leaves. The queue is used as a LIFO
	// stack and seeded in descending order, so the sequential path visits
	// nodes in ascending index order (a postorder when parents is one).
	queue := make([]int, 0, n)
	for k := n - 1; k >= 0; k-- {
		if pending[k] == 0 {
			queue = append(queue, k)
		}
	}
	if len(queue) == 0 {
		panic("par: RunDAG parents contain a cycle (no leaves)")
	}
	// cancellable gates the per-node ctx polls so a background context
	// costs nothing on the hot path.
	cancellable := ctx.Done() != nil

	if threads == 1 {
		done := 0
		for len(queue) > 0 {
			if cancellable {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			k := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			if tp := capture("RunDAG", k, 1, fn); tp != nil {
				panic(tp)
			}
			done++
			if p := parents[k]; p >= 0 {
				pending[p]--
				if pending[p] == 0 {
					queue = append(queue, p)
				}
			}
		}
		if done != n {
			panic(cycleMessage(done, n))
		}
		return nil
	}

	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		running int
		done    int
		caught  *TaskPanic // first worker panic, re-raised on the caller
		ctxErr  error      // first observed cancellation
	)
	worker := func() {
		mu.Lock()
		defer mu.Unlock()
		for {
			for len(queue) == 0 && running > 0 && caught == nil && ctxErr == nil {
				cond.Wait()
			}
			if caught != nil || ctxErr != nil || len(queue) == 0 {
				// Failure, cancellation, or nothing queued with nothing
				// running (all nodes completed, or the remainder is
				// unreachable — a cycle, detected after the join).
				return
			}
			if cancellable {
				if err := ctx.Err(); err != nil {
					ctxErr = err
					cond.Broadcast()
					return
				}
			}
			k := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			running++
			// The ready set is everything runnable right now: nodes being
			// executed (including this one) plus nodes still queued. Split
			// the pool across it; the remainder stays 1 so width·inner
			// never exceeds threads.
			width := running + len(queue)
			inner := 1
			if width < threads {
				inner = threads / width
			}
			mu.Unlock()
			tp := capture("RunDAG", k, inner, fn)
			mu.Lock()
			running--
			if tp != nil {
				if caught == nil {
					caught = tp
				}
				cond.Broadcast()
				return
			}
			done++
			if p := parents[k]; p >= 0 {
				pending[p]--
				if pending[p] == 0 {
					queue = append(queue, p)
				}
			}
			cond.Broadcast()
		}
	}
	workers := threads
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	worker() // the caller participates
	wg.Wait()
	if caught != nil {
		panic(caught)
	}
	if ctxErr != nil {
		return ctxErr
	}
	if done != n {
		panic(cycleMessage(done, n))
	}
	return nil
}

// cycleMessage names the failure precisely: the run drained the ready
// queue with nodes still pending, which is only possible when parents
// contains a cycle reachable from the leaves' ancestor closure.
func cycleMessage(done, n int) string {
	return fmt.Sprintf("par: RunDAG completed %d of %d nodes — parents contain a cycle", done, n)
}
