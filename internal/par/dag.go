package par

import "sync"

// RunDAG executes fn(node, workers) once for every node of the forest
// described by parents (parents[k] is node k's parent, or < 0 for roots),
// guaranteeing child-before-parent order but imposing no other
// synchronization: a node becomes runnable the moment its last child
// completes, regardless of what the rest of the tree is doing. This is
// the dependency-driven alternative to level-synchronous scheduling —
// on imbalanced trees it keeps workers busy where a per-level barrier
// would idle them behind the level's slowest node.
//
// A pool of threads workers pulls runnable nodes from a shared ready
// queue. The workers argument passed to fn is the intra-node parallelism
// budget: when the ready set (running + queued nodes) is at least as wide
// as the pool it is 1, and as the DAG narrows toward its roots the
// leftover threads are handed to the surviving nodes so fn can parallelize
// internally. Budgets always satisfy width·workers ≤ threads.
//
// Completion counts are derived from parents alone, so any forest is
// accepted; RunDAG panics if parents contains a cycle or an out-of-range
// index (other than the negative root markers).
func RunDAG(parents []int, threads int, fn func(node, workers int)) {
	n := len(parents)
	if n == 0 {
		return
	}
	threads = DefaultThreads(threads)
	pending := make([]int32, n)
	for k, p := range parents {
		if p >= 0 {
			if p >= n || p == k {
				panic("par: RunDAG parent index out of range")
			}
			pending[p]++
		}
	}
	// Seed the ready queue with the leaves. The queue is used as a LIFO
	// stack and seeded in descending order, so the sequential path visits
	// nodes in ascending index order (a postorder when parents is one).
	queue := make([]int, 0, n)
	for k := n - 1; k >= 0; k-- {
		if pending[k] == 0 {
			queue = append(queue, k)
		}
	}
	if len(queue) == 0 {
		panic("par: RunDAG parents contain a cycle")
	}

	if threads == 1 {
		done := 0
		for len(queue) > 0 {
			k := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			fn(k, 1)
			done++
			if p := parents[k]; p >= 0 {
				pending[p]--
				if pending[p] == 0 {
					queue = append(queue, p)
				}
			}
		}
		if done != n {
			panic("par: RunDAG parents contain a cycle")
		}
		return
	}

	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		running int
		done    int
	)
	worker := func() {
		mu.Lock()
		defer mu.Unlock()
		for {
			for len(queue) == 0 && running > 0 {
				cond.Wait()
			}
			if len(queue) == 0 {
				// Nothing queued and nothing running: either all nodes
				// completed or the remainder is unreachable (cycle).
				return
			}
			k := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			running++
			// The ready set is everything runnable right now: nodes being
			// executed (including this one) plus nodes still queued. Split
			// the pool across it; the remainder stays 1 so width·inner
			// never exceeds threads.
			width := running + len(queue)
			inner := 1
			if width < threads {
				inner = threads / width
			}
			mu.Unlock()
			fn(k, inner)
			mu.Lock()
			running--
			done++
			if p := parents[k]; p >= 0 {
				pending[p]--
				if pending[p] == 0 {
					queue = append(queue, p)
				}
			}
			cond.Broadcast()
		}
	}
	workers := threads
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			worker()
		}()
	}
	worker() // the caller participates
	wg.Wait()
	if done != n {
		panic("par: RunDAG parents contain a cycle")
	}
}
