// Package order computes vertex orderings for the supernodal
// Floyd-Warshall algorithm: nested dissection (the fill-reducing ordering
// the paper uses via METIS), BFS discovery order (the SuperBfs baseline),
// reverse Cuthill-McKee, and the natural order.
package order

import (
	"repro/internal/graph"
	"repro/internal/part"
)

// Node is one node of the separator tree produced by nested dissection,
// in the new (permuted) index space.
type Node struct {
	// Parent is the index of the parent node within Tree, or -1 for a
	// root (one per connected region at the top level).
	Parent int
	// Lo, Hi delimit the contiguous range of new vertex indices owned by
	// this node itself: separator vertices for internal nodes, the whole
	// leaf domain for leaves.
	Lo, Hi int
	// SubLo is the first new index of this node's entire subtree; the
	// subtree owns [SubLo, Hi) and descendants own [SubLo, Lo).
	SubLo int
	// IsLeaf marks leaf domains (no separator was extracted).
	IsLeaf bool
}

// Size returns the number of vertices owned by the node itself.
func (nd Node) Size() int { return nd.Hi - nd.Lo }

// Ordering is a permutation of the graph's vertices together with the
// separator tree that produced it (nil Tree for orderings that are not
// dissection-based; callers derive an elimination tree symbolically).
type Ordering struct {
	// Perm maps new index → old vertex: new vertex i is old Perm[i].
	Perm []int
	// Tree is the separator tree in postorder (children precede
	// parents). Nil for non-dissection orderings.
	Tree []Node
	// TopSep is the size of the top-level separator (the |S| of the
	// paper's analysis), taken from the largest component's root. Zero
	// when no separator was computed.
	TopSep int
}

// NDOptions configure nested dissection.
type NDOptions struct {
	// LeafSize stops dissection when a region has at most this many
	// vertices (default 64).
	LeafSize int
	// Part configures the separator search at every level.
	Part part.Options
}

func (o NDOptions) withDefaults() NDOptions {
	if o.LeafSize <= 0 {
		o.LeafSize = 64
	}
	return o
}

// NestedDissection orders g by recursive vertex-separator dissection:
// within each region, the two components are numbered first and the
// separator last, recursively. The resulting permutation is a postorder
// of the separator tree, so every subtree owns a contiguous index range —
// the property the supernodal elimination engine relies on.
func NestedDissection(g *graph.Graph, opts NDOptions) Ordering {
	opts = opts.withDefaults()
	ord := Ordering{Perm: make([]int, g.N)}
	b := &ndBuilder{g: g, opts: opts, ord: &ord}
	all := make([]int, g.N)
	for i := range all {
		all[i] = i
	}
	roots := b.dissect(all, 0, 0)
	for _, r := range roots {
		nd := ord.Tree[r]
		if s := nd.Size(); !nd.IsLeaf && s > ord.TopSep {
			ord.TopSep = s
		}
	}
	return ord
}

type ndBuilder struct {
	g    *graph.Graph
	opts NDOptions
	ord  *Ordering
}

// dissect orders the given original-id vertices into new indices
// [base, base+len) and returns the indices of the subtree roots created
// (several when the region is disconnected). depth seeds the partitioner
// so different levels decorrelate.
func (b *ndBuilder) dissect(verts []int, base int, depth int) []int {
	if len(verts) == 0 {
		return nil
	}
	if len(verts) <= b.opts.LeafSize {
		return []int{b.emitLeaf(verts, base)}
	}
	sub := b.g.InducedSubgraph(verts)
	comp, ncomp := sub.ConnectedComponents()
	if ncomp > 1 {
		// Order each component independently; they share whatever parent
		// the caller assigns.
		buckets := make([][]int, ncomp)
		for i, c := range comp {
			buckets[c] = append(buckets[c], verts[i])
		}
		var roots []int
		off := base
		for _, bucket := range buckets {
			roots = append(roots, b.dissect(bucket, off, depth+1)...)
			off += len(bucket)
		}
		return roots
	}
	popts := b.opts.Part
	popts.Seed = popts.Seed*1000003 + int64(depth) + int64(len(verts))
	sep := part.VertexSeparator(sub, popts)
	if sep.Sizes[0] == 0 || sep.Sizes[1] == 0 {
		// Partitioner failed to split (dense or pathological region):
		// terminate dissection with a leaf; the supernode builder will
		// chop oversized leaves into a chain.
		return []int{b.emitLeaf(verts, base)}
	}
	var c0, c1, s []int
	for i, p := range sep.Part {
		switch p {
		case 0:
			c0 = append(c0, verts[i])
		case 1:
			c1 = append(c1, verts[i])
		default:
			s = append(s, verts[i])
		}
	}
	if len(s) == 0 {
		// Disconnected halves with empty separator on a connected graph
		// cannot happen (Check invariant); defend anyway.
		return []int{b.emitLeaf(verts, base)}
	}
	roots0 := b.dissect(c0, base, depth+1)
	roots1 := b.dissect(c1, base+len(c0), depth+1)
	lo := base + len(c0) + len(c1)
	for i, v := range s {
		b.ord.Perm[lo+i] = v
	}
	idx := len(b.ord.Tree)
	b.ord.Tree = append(b.ord.Tree, Node{Parent: -1, Lo: lo, Hi: base + len(verts), SubLo: base})
	for _, r := range append(roots0, roots1...) {
		b.ord.Tree[r].Parent = idx
	}
	return []int{idx}
}

func (b *ndBuilder) emitLeaf(verts []int, base int) int {
	for i, v := range verts {
		b.ord.Perm[base+i] = v
	}
	b.ord.Tree = append(b.ord.Tree, Node{Parent: -1, Lo: base, Hi: base + len(verts), SubLo: base, IsLeaf: true})
	return len(b.ord.Tree) - 1
}

// BFS returns the breadth-first discovery ordering used by the SuperBfs
// baseline: BFS from vertex 0 (continuing per component), vertices
// numbered in discovery order. No separator tree is produced; symbolic
// analysis derives the elimination structure.
func BFS(g *graph.Graph) Ordering {
	return Ordering{Perm: g.BFSOrderAll()}
}

// Natural returns the identity ordering.
func Natural(n int) Ordering {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return Ordering{Perm: perm}
}

// RCM returns the reverse Cuthill-McKee ordering: BFS from a
// pseudo-peripheral vertex with neighbors visited in increasing-degree
// order, then reversed. A classic bandwidth-reducing ordering, included
// as an ablation point between natural/BFS and nested dissection.
func RCM(g *graph.Graph) Ordering {
	perm := make([]int, 0, g.N)
	seen := make([]bool, g.N)
	for s := 0; s < g.N; s++ {
		if seen[s] {
			continue
		}
		root := g.PseudoPeripheral(s)
		if seen[root] {
			root = s
		}
		seen[root] = true
		comp := []int{root}
		for head := 0; head < len(comp); head++ {
			v := comp[head]
			adj, _ := g.Neighbors(v)
			// visit neighbors in increasing degree order
			nbrs := make([]int, 0, len(adj))
			for _, u := range adj {
				if !seen[u] {
					seen[u] = true
					nbrs = append(nbrs, u)
				}
			}
			for i := 1; i < len(nbrs); i++ {
				for j := i; j > 0 && g.Degree(nbrs[j]) < g.Degree(nbrs[j-1]); j-- {
					nbrs[j], nbrs[j-1] = nbrs[j-1], nbrs[j]
				}
			}
			comp = append(comp, nbrs...)
		}
		perm = append(perm, comp...)
	}
	// reverse
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	return Ordering{Perm: perm}
}

// GridND returns the exact nested-dissection ordering of a w×h grid graph
// using analytic median separators (no partitioner heuristics). Vertex
// (x,y) is assumed to have id y*w+x, matching gen.Grid2D. Used to
// calibrate the multilevel partitioner and for the Table 2 scaling study,
// where known Θ(√n) separators make the fitted work exponent meaningful.
func GridND(w, h, leafSize int) Ordering {
	if leafSize <= 0 {
		leafSize = 64
	}
	ord := Ordering{Perm: make([]int, w*h)}
	g := &gridND{w: w, leaf: leafSize, ord: &ord}
	g.dissect(0, 0, w, h, 0)
	for i := len(ord.Tree) - 1; i >= 0; i-- {
		if nd := ord.Tree[i]; nd.Parent == -1 && !nd.IsLeaf {
			ord.TopSep = nd.Size()
			break
		}
	}
	return ord
}

type gridND struct {
	w    int
	leaf int
	ord  *Ordering
}

// dissect orders the sub-rectangle [x0,x0+rw)×[y0,y0+rh) into new indices
// starting at base and returns the root node index.
func (g *gridND) dissect(x0, y0, rw, rh, base int) int {
	n := rw * rh
	if n <= g.leaf {
		lo := base
		for y := y0; y < y0+rh; y++ {
			for x := x0; x < x0+rw; x++ {
				g.ord.Perm[base] = y*g.w + x
				base++
			}
		}
		g.ord.Tree = append(g.ord.Tree, Node{Parent: -1, Lo: lo, Hi: base, SubLo: lo, IsLeaf: true})
		return len(g.ord.Tree) - 1
	}
	// Split along the longer dimension with a one-line separator.
	var r0, r1 int
	var sepVerts []int
	if rw >= rh {
		mid := x0 + rw/2
		r0 = g.dissect(x0, y0, mid-x0, rh, base)
		r1 = g.dissect(mid+1, y0, x0+rw-mid-1, rh, base+(mid-x0)*rh)
		for y := y0; y < y0+rh; y++ {
			sepVerts = append(sepVerts, y*g.w+mid)
		}
	} else {
		mid := y0 + rh/2
		r0 = g.dissect(x0, y0, rw, mid-y0, base)
		r1 = g.dissect(x0, mid+1, rw, y0+rh-mid-1, base+(mid-y0)*rw)
		for x := x0; x < x0+rw; x++ {
			sepVerts = append(sepVerts, mid*g.w+x)
		}
	}
	lo := base + n - len(sepVerts)
	for i, v := range sepVerts {
		g.ord.Perm[lo+i] = v
	}
	idx := len(g.ord.Tree)
	g.ord.Tree = append(g.ord.Tree, Node{Parent: -1, Lo: lo, Hi: base + n, SubLo: base})
	g.ord.Tree[r0].Parent = idx
	g.ord.Tree[r1].Parent = idx
	return idx
}
