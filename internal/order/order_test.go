package order

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// checkTree validates the separator-tree invariants an Ordering must
// satisfy for the supernodal engine: postorder (children before parents),
// contiguous nested subtree ranges, and ranges partitioning [0,n).
func checkTree(t *testing.T, ord Ordering, n int) {
	t.Helper()
	if !graph.IsPermutation(ord.Perm) {
		t.Fatal("Perm is not a permutation")
	}
	if ord.Tree == nil {
		return
	}
	covered := make([]bool, n)
	for i, nd := range ord.Tree {
		if nd.Lo > nd.Hi || nd.SubLo > nd.Lo {
			t.Fatalf("node %d: bad ranges %+v", i, nd)
		}
		for v := nd.Lo; v < nd.Hi; v++ {
			if covered[v] {
				t.Fatalf("vertex %d owned twice", v)
			}
			covered[v] = true
		}
		if nd.Parent >= 0 {
			if nd.Parent <= i {
				t.Fatalf("node %d: parent %d not after child", i, nd.Parent)
			}
			p := ord.Tree[nd.Parent]
			if nd.SubLo < p.SubLo || nd.Hi > p.Lo {
				t.Fatalf("node %d subtree [%d,%d) not nested in parent's descendants [%d,%d)", i, nd.SubLo, nd.Hi, p.SubLo, p.Lo)
			}
		}
	}
	for v, c := range covered {
		if !c {
			t.Fatalf("vertex %d not owned by any node", v)
		}
	}
}

func TestNestedDissectionGrid(t *testing.T) {
	g := gen.Grid2D(16, 16, gen.WeightUnit, 1)
	ord := NestedDissection(g, NDOptions{LeafSize: 16})
	checkTree(t, ord, g.N)
	if ord.TopSep == 0 {
		t.Fatal("grid dissection must find a top separator")
	}
	if ord.TopSep > 3*16 {
		t.Errorf("top separator %d too large for 16x16 grid", ord.TopSep)
	}
	if len(ord.Tree) < 3 {
		t.Error("expected a multi-level tree")
	}
}

func TestNestedDissectionSeparatorProperty(t *testing.T) {
	// The defining invariant: for any tree node, no edge connects its
	// two child subtrees (all cross paths go through the separator).
	g := gen.GeometricKNN(600, 2, 4, gen.WeightUnit, 2)
	ord := NestedDissection(g, NDOptions{LeafSize: 32})
	checkTree(t, ord, g.N)
	pg := g.Permute(ord.Perm)
	// node id owning each vertex
	owner := make([]int, g.N)
	for i, nd := range ord.Tree {
		for v := nd.Lo; v < nd.Hi; v++ {
			owner[v] = i
		}
	}
	// ancestry test via ranges: u's node must be an ancestor of v's node,
	// a descendant of it, or equal — never a "cousin" region.
	for u := 0; u < g.N; u++ {
		adj, _ := pg.Neighbors(u)
		nu := ord.Tree[owner[u]]
		for _, v := range adj {
			nv := ord.Tree[owner[v]]
			uInV := nu.SubLo >= nv.SubLo && nu.Hi <= nv.Hi
			vInU := nv.SubLo >= nu.SubLo && nv.Hi <= nu.Hi
			if !uInV && !vInU {
				t.Fatalf("edge (%d,%d) crosses cousin regions", u, v)
			}
		}
	}
}

func TestNestedDissectionDisconnected(t *testing.T) {
	e := gen.Grid2D(6, 6, gen.WeightUnit, 3).Edges()
	for _, x := range gen.Grid2D(7, 7, gen.WeightUnit, 4).Edges() {
		e = append(e, graph.Edge{U: x.U + 36, V: x.V + 36, W: x.W})
	}
	g := graph.MustFromEdges(85, e)
	ord := NestedDissection(g, NDOptions{LeafSize: 8})
	checkTree(t, ord, g.N)
	// Two roots (or more) with Parent == -1.
	roots := 0
	for _, nd := range ord.Tree {
		if nd.Parent == -1 {
			roots++
		}
	}
	if roots < 2 {
		t.Errorf("disconnected graph should yield ≥2 tree roots, got %d", roots)
	}
}

func TestNestedDissectionSmall(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}})
	ord := NestedDissection(g, NDOptions{})
	checkTree(t, ord, 3)
	if len(ord.Tree) == 0 {
		t.Fatal("even a tiny graph gets a leaf node")
	}
}

func TestBFSOrdering(t *testing.T) {
	g := gen.Grid2D(8, 8, gen.WeightUnit, 5)
	ord := BFS(g)
	if !graph.IsPermutation(ord.Perm) {
		t.Fatal("BFS perm invalid")
	}
	if ord.Perm[0] != 0 {
		t.Error("BFS starts from vertex 0")
	}
	if ord.Tree != nil {
		t.Error("BFS ordering has no separator tree")
	}
}

func TestNaturalOrdering(t *testing.T) {
	ord := Natural(5)
	for i, v := range ord.Perm {
		if i != v {
			t.Fatal("natural ordering must be identity")
		}
	}
}

func TestRCMReducesBandwidth(t *testing.T) {
	// A path graph labeled randomly: RCM should recover near-optimal
	// bandwidth (1), far below the random labeling's.
	g := gen.Grid2D(64, 1, gen.WeightUnit, 6)
	perm := make([]int, g.N)
	for i := range perm {
		perm[i] = (i*37 + 11) % g.N
	}
	rg := g.Permute(perm)
	ord := RCM(rg)
	if !graph.IsPermutation(ord.Perm) {
		t.Fatal("RCM perm invalid")
	}
	pg := rg.Permute(ord.Perm)
	bw := 0
	for u := 0; u < pg.N; u++ {
		adj, _ := pg.Neighbors(u)
		for _, v := range adj {
			if d := v - u; d > bw {
				bw = d
			}
		}
	}
	if bw > 3 {
		t.Errorf("RCM bandwidth %d on a path, want ≤3", bw)
	}
}

func TestGridND(t *testing.T) {
	for _, wh := range [][2]int{{8, 8}, {16, 12}, {5, 31}, {1, 1}, {3, 1}} {
		w, h := wh[0], wh[1]
		ord := GridND(w, h, 4)
		if !graph.IsPermutation(ord.Perm) {
			t.Fatalf("GridND(%d,%d) perm invalid", w, h)
		}
		checkTree(t, ord, w*h)
	}
	// 17x17 grid's top separator is the middle column of 17.
	ord := GridND(17, 17, 8)
	if ord.TopSep != 17 {
		t.Errorf("GridND(17,17) top separator = %d, want 17", ord.TopSep)
	}
}

func TestGridNDSeparatorProperty(t *testing.T) {
	// Same cousin-region test as multilevel ND, on the analytic orderer.
	w, h := 12, 9
	g := gen.Grid2D(w, h, gen.WeightUnit, 7)
	ord := GridND(w, h, 6)
	pg := g.Permute(ord.Perm)
	owner := make([]int, g.N)
	for i, nd := range ord.Tree {
		for v := nd.Lo; v < nd.Hi; v++ {
			owner[v] = i
		}
	}
	for u := 0; u < g.N; u++ {
		adj, _ := pg.Neighbors(u)
		nu := ord.Tree[owner[u]]
		for _, v := range adj {
			nv := ord.Tree[owner[v]]
			uInV := nu.SubLo >= nv.SubLo && nu.Hi <= nv.Hi
			vInU := nv.SubLo >= nu.SubLo && nv.Hi <= nu.Hi
			if !uInV && !vInU {
				t.Fatalf("edge (%d,%d) crosses cousin regions", u, v)
			}
		}
	}
}
