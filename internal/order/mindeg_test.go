package order_test

import (
	"math/rand"
	"repro/internal/order"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/symbolic"
)

// fillOf returns the symbolic Cholesky fill of g under the ordering.
func fillOf(t *testing.T, g *graph.Graph, ord order.Ordering) int64 {
	t.Helper()
	pg := g.Permute(ord.Perm)
	parent := symbolic.ETree(pg)
	post := symbolic.Postorder(parent)
	perm := make([]int, g.N)
	for i, pi := range post {
		perm[i] = ord.Perm[pi]
	}
	pg = g.Permute(perm)
	parent = symbolic.RelabelParent(parent, post)
	return symbolic.FillCount(symbolic.Fill(pg, parent))
}

func TestMinDegreeValidPermutation(t *testing.T) {
	graphs := []*graph.Graph{
		gen.Grid2D(12, 12, gen.WeightUnit, 1),
		gen.GeometricKNN(200, 2, 3, gen.WeightUnit, 2),
		gen.BarabasiAlbert(100, 3, gen.WeightUnit, 3),
		graph.MustFromEdges(5, nil), // edgeless
		graph.MustFromEdges(1, nil),
	}
	for gi, g := range graphs {
		ord := order.MinDegree(g)
		if !graph.IsPermutation(ord.Perm) {
			t.Fatalf("graph %d: invalid permutation", gi)
		}
	}
}

func TestMinDegreeReducesFill(t *testing.T) {
	// On a mesh, minimum degree must beat a random ordering's fill by a
	// wide margin and be in the same league as nested dissection.
	g := gen.Grid2D(16, 16, gen.WeightUnit, 4)
	rng := rand.New(rand.NewSource(5))
	random := order.Ordering{Perm: rng.Perm(g.N)}
	mdFill := fillOf(t, g, order.MinDegree(g))
	randFill := fillOf(t, g, random)
	ndFill := fillOf(t, g, order.NestedDissection(g, order.NDOptions{LeafSize: 16}))
	if mdFill*2 >= randFill {
		t.Errorf("min degree fill %d should be far below random %d", mdFill, randFill)
	}
	if mdFill > 3*ndFill {
		t.Errorf("min degree fill %d should be within ~3× of ND %d on a grid", mdFill, ndFill)
	}
}

func TestMinDegreeStarGraph(t *testing.T) {
	// A star: the hub must be eliminated LAST (it has the max degree);
	// any leaf-first order gives zero fill.
	var edges []graph.Edge
	for i := 1; i < 20; i++ {
		edges = append(edges, graph.Edge{U: 0, V: i, W: 1})
	}
	g := graph.MustFromEdges(20, edges)
	ord := order.MinDegree(g)
	// The hub may tie with the final leaf once only two vertices remain,
	// but it must be in the last two positions.
	last2 := []int{ord.Perm[len(ord.Perm)-2], ord.Perm[len(ord.Perm)-1]}
	if last2[0] != 0 && last2[1] != 0 {
		t.Errorf("hub should be eliminated in the last two, got tail %v", last2)
	}
	if f := fillOf(t, g, ord); f != 19 {
		// fill counts original entries too: 19 edges, no new fill
		t.Errorf("star fill = %d, want 19 (no fill-in)", f)
	}
}

func TestMinDegreePathGraph(t *testing.T) {
	// A path eliminated by minimum degree (always an endpoint or interior
	// degree-2 after absorption): fill stays exactly m.
	g := gen.Grid2D(30, 1, gen.WeightUnit, 6)
	if f := fillOf(t, g, order.MinDegree(g)); f != int64(g.M()) {
		t.Errorf("path fill = %d, want %d (no fill-in)", f, g.M())
	}
}

func TestMinDegreeDeterministic(t *testing.T) {
	g := gen.GeometricKNN(150, 2, 3, gen.WeightUnit, 7)
	a := order.MinDegree(g)
	b := order.MinDegree(g)
	for i := range a.Perm {
		if a.Perm[i] != b.Perm[i] {
			t.Fatal("min degree must be deterministic")
		}
	}
}
