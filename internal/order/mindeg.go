package order

// Minimum-degree ordering: the second classic family of fill-reducing
// orderings from sparse direct solvers (nested dissection being the one
// the paper uses). Useful as an ablation point — on many irregular
// graphs minimum degree matches or beats ND's fill, while lacking ND's
// balanced elimination tree (and hence its parallelism).
//
// The implementation is a quotient-graph minimum degree with exact
// external degrees: eliminated vertices become *elements* whose
// boundaries are merged on contact (element absorption), so the memory
// stays O(m) even as the implicit elimination graph fills in. Degrees
// are tracked with a lazy binary heap. Supervariable detection and AMD's
// approximate degrees are intentionally omitted — at this library's
// target sizes (n ≤ ~10⁵) exact degrees are affordable and simpler to
// verify.

import (
	"container/heap"

	"repro/internal/graph"
)

// MinDegree returns the minimum-degree ordering of g.
func MinDegree(g *graph.Graph) Ordering {
	n := g.N
	md := &minDeg{
		n:     n,
		vars:  make([][]int32, n),
		elems: make([][]int32, n),
		bound: make([][]int32, n),
		stamp: make([]int32, n),
		state: make([]int8, n),
	}
	for v := 0; v < n; v++ {
		adj, _ := g.Neighbors(v)
		lst := make([]int32, len(adj))
		for i, u := range adj {
			lst[i] = int32(u)
		}
		md.vars[v] = lst
	}
	// Heap of (degree, vertex), lazily rebuilt on stale pops.
	h := make(degHeap, 0, n)
	for v := 0; v < n; v++ {
		h = append(h, degEntry{deg: int32(len(md.vars[v])), v: int32(v)})
	}
	heap.Init(&h)

	perm := make([]int, 0, n)
	for len(perm) < n {
		// Pop the minimum-degree live vertex with an up-to-date key.
		var p int
		for {
			e := heap.Pop(&h).(degEntry)
			if md.state[e.v] != 0 {
				continue // already eliminated
			}
			if d := md.degree(int(e.v)); d != int(e.deg) {
				heap.Push(&h, degEntry{deg: int32(d), v: e.v})
				continue // stale key: reinsert with the true degree
			}
			p = int(e.v)
			break
		}
		perm = append(perm, p)
		boundary := md.eliminate(p)
		// Refresh the heap keys of the affected vertices.
		for _, v := range boundary {
			heap.Push(&h, degEntry{deg: int32(md.degree(int(v))), v: v})
		}
	}
	return Ordering{Perm: perm}
}

type degEntry struct {
	deg int32
	v   int32
}

type degHeap []degEntry

func (h degHeap) Len() int      { return len(h) }
func (h degHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h degHeap) Less(i, j int) bool {
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].v < h[j].v // deterministic tie-break
}
func (h *degHeap) Push(x any) { *h = append(*h, x.(degEntry)) }
func (h *degHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// minDeg is the quotient-graph state.
type minDeg struct {
	n int
	// vars[v]: live neighbor variables of live vertex v (may contain
	// stale entries that are filtered against state on use).
	vars [][]int32
	// elems[v]: element ids adjacent to live vertex v (each element is
	// the id of an eliminated pivot that has not been absorbed).
	elems [][]int32
	// bound[e]: the boundary (live variables) of element e.
	bound [][]int32
	// stamp: mark array for set unions (monotone counter).
	stamp   []int32
	stampCt int32
	// state: 0 live, 1 eliminated (element), 2 absorbed element.
	state []int8
}

// mark returns a fresh stamp value.
func (md *minDeg) mark() int32 {
	md.stampCt++
	return md.stampCt
}

// reach collects the current elimination-graph neighborhood of live
// vertex v: live var-neighbors plus the boundaries of adjacent elements,
// excluding v itself. It also compacts v's lists in place.
func (md *minDeg) reach(v int) []int32 {
	s := md.mark()
	md.stamp[v] = s
	var out []int32
	// live direct neighbors
	vv := md.vars[v][:0]
	for _, u := range md.vars[v] {
		if md.state[u] != 0 {
			continue
		}
		vv = append(vv, u)
		if md.stamp[u] != s {
			md.stamp[u] = s
			out = append(out, u)
		}
	}
	md.vars[v] = vv
	// element boundaries (follow absorption to live elements only)
	ee := md.elems[v][:0]
	for _, e := range md.elems[v] {
		if md.state[e] != 1 {
			continue // absorbed
		}
		ee = append(ee, e)
		for _, u := range md.bound[e] {
			if md.state[u] == 0 && md.stamp[u] != s {
				md.stamp[u] = s
				out = append(out, u)
			}
		}
	}
	md.elems[v] = ee
	return out
}

// degree returns the exact external degree of live vertex v.
func (md *minDeg) degree(v int) int { return len(md.reach(v)) }

// eliminate turns pivot p into an element and updates its boundary's
// quotient-graph lists. Returns the boundary.
func (md *minDeg) eliminate(p int) []int32 {
	boundary := md.reach(p)
	// Absorb p's adjacent elements: their boundaries are subsumed by the
	// new element's boundary.
	for _, e := range md.elems[p] {
		if md.state[e] == 1 {
			md.state[e] = 2
			md.bound[e] = nil
		}
	}
	md.state[p] = 1
	md.bound[p] = boundary
	md.vars[p] = nil
	md.elems[p] = nil
	// Each boundary vertex gains element p; its var list drops members
	// of the boundary (they are now connected through p) and its element
	// list drops the absorbed ones (reach already compacted them — but
	// reach ran for p, not for the boundary vertices, so compact here).
	s := md.mark()
	for _, u := range boundary {
		md.stamp[u] = s
	}
	for _, u := range boundary {
		vv := md.vars[u][:0]
		for _, w := range md.vars[u] {
			if md.state[w] != 0 || md.stamp[w] == s {
				continue // eliminated or now covered by element p
			}
			vv = append(vv, w)
		}
		md.vars[u] = vv
		ee := md.elems[u][:0]
		for _, e := range md.elems[u] {
			if md.state[e] == 1 {
				ee = append(ee, e)
			}
		}
		md.elems[u] = append(ee, int32(p))
	}
	return boundary
}
