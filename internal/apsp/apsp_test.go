package apsp

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/semiring"
)

func suite() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"grid":         gen.Grid2D(9, 7, gen.WeightUniform, 1),
		"geo":          gen.GeometricKNN(140, 2, 4, gen.WeightEuclidean, 2),
		"er":           gen.ErdosRenyi(110, 4, gen.WeightUniform, 3),
		"ba":           gen.BarabasiAlbert(90, 3, gen.WeightUniform, 4),
		"path":         gen.Grid2D(50, 1, gen.WeightUniform, 5),
		"disconnected": disconnected(),
		"unit":         gen.Grid2D(8, 8, gen.WeightUnit, 6),
	}
}

func disconnected() *graph.Graph {
	e := gen.Grid2D(5, 5, gen.WeightUniform, 7).Edges()
	for _, x := range gen.Grid2D(4, 4, gen.WeightUniform, 8).Edges() {
		e = append(e, graph.Edge{U: x.U + 25, V: x.V + 25, W: x.W})
	}
	return graph.MustFromEdges(41, e)
}

func TestAllAlgorithmsAgree(t *testing.T) {
	for name, g := range suite() {
		want := NaiveFW(g)
		for _, algo := range Algorithms() {
			if algo == AlgoNaiveFW {
				continue
			}
			for _, threads := range []int{1, 3} {
				got, err := Run(algo, g, threads)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, algo, err)
				}
				if d := MaxAbsDiff(got, want); d > 1e-9 {
					t.Errorf("%s/%s threads=%d: max diff %g", name, algo, threads, d)
				}
			}
		}
	}
}

func TestDijkstraRejectsNegative(t *testing.T) {
	g := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: -1}})
	if _, err := Dijkstra(g, 1); err == nil {
		t.Error("Dijkstra must reject negative weights")
	}
	if _, err := BoostDijkstra(g, 1); err == nil {
		t.Error("BoostDijkstra must reject negative weights")
	}
	if _, err := DeltaStep(g, 0, 1); err == nil {
		t.Error("DeltaStep must reject negative weights")
	}
}

func TestDeltaStepExplicitDelta(t *testing.T) {
	g := gen.GeometricKNN(100, 2, 3, gen.WeightUniform, 9)
	want := NaiveFW(g)
	for _, delta := range []float64{0.05, 0.5, 5, 1e9} {
		got, err := DeltaStep(g, delta, 2)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(got, want); d > 1e-9 {
			t.Errorf("delta=%g: max diff %g", delta, d)
		}
	}
}

func TestJohnsonNegativeArcs(t *testing.T) {
	g := gen.GeometricKNN(90, 2, 3, gen.WeightUniform, 10)
	p := gen.Potential(g.N, 2.5, 11)
	init := g.ToDensePotential(p)
	want := init.Clone()
	semiring.FloydWarshall(want)
	got, err := Johnson(g, p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("Johnson on negative-arc instance: max diff %g", d)
	}
}

func TestBellmanFordPotentialFeasible(t *testing.T) {
	g := gen.GeometricKNN(70, 2, 3, gen.WeightUniform, 12)
	p := gen.Potential(g.N, 2.0, 13)
	h, err := BellmanFordPotential(g, p)
	if err != nil {
		t.Fatal(err)
	}
	// Feasibility: w'(u→v) + h[u] − h[v] ≥ 0 for every arc.
	for u := 0; u < g.N; u++ {
		adj, wgt := g.Neighbors(u)
		for i, v := range adj {
			w := wgt[i] + p[u] - p[v] + h[u] - h[v]
			if w < -1e-9 {
				t.Fatalf("infeasible potential at arc %d→%d: %g", u, v, w)
			}
		}
	}
}

func TestBellmanFordDetectsNegativeCycle(t *testing.T) {
	// Symmetric negative edge = negative 2-cycle.
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: -1}, {U: 1, V: 2, W: 1}})
	if _, err := BellmanFordPotential(g, nil); err == nil {
		t.Error("negative 2-cycle must be detected")
	}
}

func TestPathDoublingEarlyFixpoint(t *testing.T) {
	// A clique closes in one squaring; make sure early exit is correct.
	g := gen.ErdosRenyi(30, 20, gen.WeightUniform, 14)
	want := NaiveFW(g)
	got := PathDoubling(g, 2)
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("path doubling diff %g", d)
	}
}

func TestDijkstraSSSP(t *testing.T) {
	g := gen.GeometricKNN(120, 2, 3, gen.WeightUniform, 40)
	want := NaiveFW(g)
	for _, src := range []int{0, 17, 119} {
		d, err := DijkstraSSSP(g, src)
		if err != nil {
			t.Fatal(err)
		}
		for v := range d {
			if math.Abs(d[v]-want.At(src, v)) > 1e-9 {
				t.Fatalf("SSSP(%d)[%d] = %g, want %g", src, v, d[v], want.At(src, v))
			}
		}
	}
	neg := graph.MustFromEdges(2, []graph.Edge{{U: 0, V: 1, W: -1}})
	if _, err := DijkstraSSSP(neg, 0); err == nil {
		t.Error("negative weights must be rejected")
	}
}

func TestBidirectionalDijkstra(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"geo":          gen.GeometricKNN(130, 2, 3, gen.WeightEuclidean, 41),
		"grid":         gen.Grid2D(9, 9, gen.WeightUniform, 42),
		"disconnected": disconnected(),
		"rmat":         gen.RMAT(7, 4, gen.WeightUniform, 43),
	}
	for name, g := range graphs {
		want := NaiveFW(g)
		for u := 0; u < g.N; u += 11 {
			for v := 0; v < g.N; v += 13 {
				got, err := BidirectionalDijkstra(g, u, v)
				if err != nil {
					t.Fatal(err)
				}
				exp := want.At(u, v)
				if math.IsInf(got, 1) != math.IsInf(exp, 1) || (!math.IsInf(got, 1) && math.Abs(got-exp) > 1e-9) {
					t.Fatalf("%s: bidi(%d,%d) = %g, want %g", name, u, v, got, exp)
				}
			}
		}
	}
	if _, err := BidirectionalDijkstra(graphs["grid"], -1, 0); err == nil {
		t.Error("out of range must error")
	}
	if d, _ := BidirectionalDijkstra(graphs["grid"], 4, 4); d != 0 {
		t.Error("self distance must be 0")
	}
}

func TestDeltaStepManyThreadsFewVerts(t *testing.T) {
	// Regression: genRequests chunking used to slice past the frontier
	// when threads exceeded the frontier size (panic [6:5]).
	g := gen.Grid2D(4, 3, gen.WeightUniform, 77)
	want := NaiveFW(g)
	got, err := DeltaStep(g, 0.3, 16)
	if err != nil {
		t.Fatal(err)
	}
	if d := MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("diff %g", d)
	}
}

func TestParseAlgorithm(t *testing.T) {
	a, err := ParseAlgorithm("superfw")
	if err != nil || a != AlgoSuperFW {
		t.Error("parse failed")
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Error("unknown algorithm must error")
	}
}

func TestMaxAbsDiff(t *testing.T) {
	a := semiring.NewInfMat(2, 2)
	b := semiring.NewInfMat(2, 2)
	if MaxAbsDiff(a, b) != 0 {
		t.Error("identical Inf matrices differ?")
	}
	b.Set(0, 0, 1)
	if !math.IsInf(MaxAbsDiff(a, b), 1) {
		t.Error("Inf vs finite must be Inf diff")
	}
	a.Set(0, 0, 3)
	if MaxAbsDiff(a, b) != 2 {
		t.Error("diff should be 2")
	}
	if !math.IsInf(MaxAbsDiff(a, semiring.NewMat(3, 3)), 1) {
		t.Error("shape mismatch must be Inf")
	}
}

func TestCheckAPSPInvariants(t *testing.T) {
	g := gen.Grid2D(7, 7, gen.WeightUniform, 15)
	D := NaiveFW(g)
	if err := CheckAPSPInvariants(g, D, 10); err != nil {
		t.Fatalf("valid closure rejected: %v", err)
	}
	// Break symmetry.
	D.Set(0, 1, D.At(0, 1)+1)
	if err := CheckAPSPInvariants(g, D, 50); err == nil {
		t.Error("tampered matrix should fail invariants")
	}
	// Break diagonal.
	D2 := NaiveFW(g)
	D2.Set(3, 3, 0.5)
	if err := CheckAPSPInvariants(g, D2, 10); err == nil {
		t.Error("nonzero diagonal should fail")
	}
}

func TestMinHeap(t *testing.T) {
	var h minHeap
	vals := []float64{5, 1, 4, 1.5, 9, 0.2, 7}
	for i, v := range vals {
		h.push(heapItem{v, i})
	}
	prev := math.Inf(-1)
	for len(h) > 0 {
		it := h.pop()
		if it.d < prev {
			t.Fatal("heap pop order violated")
		}
		prev = it.d
	}
}
