package apsp

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/semiring"
)

// Algorithm names the competing APSP implementations of the paper's
// evaluation (§5.1.2).
type Algorithm string

const (
	AlgoSuperFW       Algorithm = "superfw"       // ND + supernodes + etree parallelism
	AlgoSuperBFS      Algorithm = "superbfs"      // BFS order + supernodal structure
	AlgoBlockedFW     Algorithm = "blockedfw"     // dense blocked FW, Θ(n³)
	AlgoNaiveFW       Algorithm = "naivefw"       // scalar FW reference
	AlgoDijkstra      Algorithm = "dijkstra"      // CSR Dijkstra from every source
	AlgoBoostDijkstra Algorithm = "boostdijkstra" // adjacency-list Dijkstra
	AlgoDeltaStep     Algorithm = "deltastep"     // Δ-stepping per source
	AlgoPathDoubling  Algorithm = "pathdoubling"  // min-plus repeated squaring
	AlgoJohnson       Algorithm = "johnson"       // Bellman-Ford + Dijkstra
)

// Algorithms lists every registered algorithm in display order.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgoSuperFW, AlgoSuperBFS, AlgoBlockedFW, AlgoNaiveFW,
		AlgoDijkstra, AlgoBoostDijkstra, AlgoDeltaStep, AlgoPathDoubling, AlgoJohnson,
	}
}

// ParseAlgorithm converts a name into an Algorithm.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range Algorithms() {
		if string(a) == name {
			return a, nil
		}
	}
	return "", fmt.Errorf("apsp: unknown algorithm %q (known: %v)", name, Algorithms())
}

// Run executes the named algorithm on g with the given parallelism and
// returns the closed distance matrix in original vertex order. For the
// SuperFW/SuperBFS family the symbolic phase is included; use the core
// package directly to amortize plans across solves.
func Run(algo Algorithm, g *graph.Graph, threads int) (semiring.Mat, error) {
	switch algo {
	case AlgoSuperFW, AlgoSuperBFS:
		opts := core.DefaultOptions()
		opts.Threads = threads
		if algo == AlgoSuperBFS {
			opts.Ordering = core.OrderBFS
		}
		plan, err := core.NewPlan(g, opts)
		if err != nil {
			return semiring.Mat{}, err
		}
		res, err := plan.Solve()
		if err != nil {
			return semiring.Mat{}, err
		}
		return res.Dense(), nil
	case AlgoBlockedFW:
		return BlockedFW(g, threads), nil
	case AlgoNaiveFW:
		return NaiveFW(g), nil
	case AlgoDijkstra:
		return Dijkstra(g, threads)
	case AlgoBoostDijkstra:
		return BoostDijkstra(g, threads)
	case AlgoDeltaStep:
		return DeltaStep(g, 0, threads)
	case AlgoPathDoubling:
		return PathDoubling(g, threads), nil
	case AlgoJohnson:
		return Johnson(g, nil, threads)
	}
	return semiring.Mat{}, fmt.Errorf("apsp: unknown algorithm %q", algo)
}

// MaxAbsDiff returns the largest absolute difference between two distance
// matrices, treating matching +Inf entries as equal. A shape mismatch or
// an Inf/finite disagreement returns +Inf.
func MaxAbsDiff(a, b semiring.Mat) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	worst := 0.0
	for i := 0; i < a.Rows; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			x, y := ra[j], rb[j]
			if math.IsInf(x, 1) || math.IsInf(y, 1) {
				if math.IsInf(x, 1) != math.IsInf(y, 1) {
					return math.Inf(1)
				}
				continue
			}
			if d := math.Abs(x - y); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// CheckAPSPInvariants verifies semantic properties any correct APSP
// closure of a (symmetric, non-negatively weighted) graph must satisfy:
// zero diagonal, symmetry, the triangle inequality over a vertex sample,
// and edge upper bounds (D[u][v] ≤ w(u,v)). Returns the first violation.
func CheckAPSPInvariants(g *graph.Graph, D semiring.Mat, sample int) error {
	n := g.N
	if D.Rows != n || D.Cols != n {
		return fmt.Errorf("apsp: matrix is %d×%d, want %d×%d", D.Rows, D.Cols, n, n)
	}
	const eps = 1e-9
	for i := 0; i < n; i++ {
		if D.At(i, i) != 0 {
			return fmt.Errorf("apsp: nonzero diagonal D[%d][%d]=%g", i, i, D.At(i, i))
		}
	}
	for u := 0; u < n; u++ {
		adj, wgt := g.Neighbors(u)
		for k, v := range adj {
			if D.At(u, v) > wgt[k]+eps {
				return fmt.Errorf("apsp: D[%d][%d]=%g exceeds edge weight %g", u, v, D.At(u, v), wgt[k])
			}
		}
	}
	// Symmetry and triangle inequality on a deterministic sample.
	step := n / sample
	if step < 1 {
		step = 1
	}
	var picks []int
	for i := 0; i < n; i += step {
		picks = append(picks, i)
	}
	sort.Ints(picks)
	for _, i := range picks {
		for _, j := range picks {
			dij := D.At(i, j)
			if dji := D.At(j, i); !eq(dij, dji, eps) {
				return fmt.Errorf("apsp: asymmetric D[%d][%d]=%g vs D[%d][%d]=%g", i, j, dij, j, i, dji)
			}
			for _, k := range picks {
				if via := D.At(i, k) + D.At(k, j); dij > via+eps {
					return fmt.Errorf("apsp: triangle violation D[%d][%d]=%g > %g via %d", i, j, dij, via, k)
				}
			}
		}
	}
	return nil
}

func eq(x, y, eps float64) bool {
	if math.IsInf(x, 1) || math.IsInf(y, 1) {
		return math.IsInf(x, 1) && math.IsInf(y, 1)
	}
	return math.Abs(x-y) <= eps
}
