package apsp

import (
	"fmt"
	"math"
	"time"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/semiring"
)

// deltaState is the per-source working state of Δ-stepping: distance
// labels and the bucket structure.
type deltaState struct {
	g       *graph.Graph
	delta   float64
	dist    []float64
	buckets [][]int
	inB     []int // bucket index the vertex currently sits in, -1 if none
}

func newDeltaState(g *graph.Graph, delta float64) *deltaState {
	return &deltaState{
		g:     g,
		delta: delta,
		dist:  make([]float64, g.N),
		inB:   make([]int, g.N),
	}
}

// request is a pending relaxation offer produced by an edge scan.
type request struct {
	v int
	d float64
}

// sssp runs Δ-stepping from src, leaving distances in s.dist.
//
// Light edges (w ≤ Δ) are relaxed repeatedly within a bucket's phases;
// heavy edges once, when the bucket settles. The paper notes Δ-stepping
// "only parallelizes each SSSP call, thus requires significantly more
// inter-thread synchronization": each phase scans its frontier's edges in
// parallel (a barrier per phase) and then applies the generated
// relaxation requests, which mutate the shared bucket structure, serially.
func (s *deltaState) sssp(src, threads int) {
	for i := range s.dist {
		s.dist[i] = semiring.Inf
		s.inB[i] = -1
	}
	s.buckets = s.buckets[:0]
	s.relax(src, 0)
	for bi := 0; bi < len(s.buckets); bi++ {
		var settled []int
		for len(s.buckets[bi]) > 0 {
			// Phase: empty the bucket; pop each vertex once (stale
			// duplicate entries are skipped via inB).
			cur := s.buckets[bi]
			s.buckets[bi] = nil
			frontier := cur[:0]
			for _, v := range cur {
				if s.inB[v] == bi {
					s.inB[v] = -1
					settled = append(settled, v)
					frontier = append(frontier, v)
				}
			}
			for _, req := range s.genRequests(frontier, true, threads) {
				s.relax(req.v, req.d)
			}
		}
		// Bucket settled: relax heavy edges of everything it held.
		for _, req := range s.genRequests(settled, false, threads) {
			s.relax(req.v, req.d)
		}
	}
}

// genRequests scans the light (light=true) or heavy edges of the given
// frontier vertices in parallel and returns the relaxation requests.
func (s *deltaState) genRequests(verts []int, light bool, threads int) []request {
	nchunks := par.DefaultThreads(threads)
	if nchunks > len(verts) {
		nchunks = len(verts)
	}
	if nchunks <= 1 {
		return s.scanChunk(verts, light, nil)
	}
	chunkOut := make([][]request, nchunks)
	size := (len(verts) + nchunks - 1) / nchunks
	par.For(nchunks, threads, 1, func(c int) {
		lo := c * size
		hi := lo + size
		if lo > len(verts) {
			lo = len(verts)
		}
		if hi > len(verts) {
			hi = len(verts)
		}
		chunkOut[c] = s.scanChunk(verts[lo:hi], light, nil)
	})
	var out []request
	for _, c := range chunkOut {
		out = append(out, c...)
	}
	return out
}

func (s *deltaState) scanChunk(verts []int, light bool, out []request) []request {
	g := s.g
	for _, v := range verts {
		dv := s.dist[v]
		for e := g.Ptr[v]; e < g.Ptr[v+1]; e++ {
			w := g.Wgt[e]
			if (w <= s.delta) != light {
				continue
			}
			u := g.Adj[e]
			if nd := dv + w; nd < s.dist[u] {
				out = append(out, request{u, nd})
			}
		}
	}
	return out
}

// relax offers distance nd to vertex v, moving it between buckets.
func (s *deltaState) relax(v int, nd float64) {
	if nd >= s.dist[v] {
		return
	}
	s.dist[v] = nd
	bi := int(nd / s.delta)
	for len(s.buckets) <= bi {
		s.buckets = append(s.buckets, nil)
	}
	s.buckets[bi] = append(s.buckets[bi], v)
	s.inB[v] = bi
}

// DeltaStep computes APSP by running Δ-stepping SSSP from every source.
// Delta ≤ 0 triggers auto-tuning: a handful of candidate Δ values are
// timed on the first sources and the fastest is used for the rest,
// mirroring the paper's auto-tuned Galois ∆-Step baseline.
func DeltaStep(g *graph.Graph, delta float64, threads int) (semiring.Mat, error) {
	if g.HasNegativeWeights() {
		return semiring.Mat{}, fmt.Errorf("apsp: Δ-stepping requires non-negative weights")
	}
	if g.N == 0 {
		return semiring.NewMat(0, 0), nil
	}
	if delta <= 0 {
		delta = tuneDelta(g, threads)
	}
	D := semiring.NewMat(g.N, g.N)
	// Within-call parallelism only (the paper's ∆-Step shape): sources
	// run one at a time, each call parallelizing its phases.
	st := newDeltaState(g, delta)
	for src := 0; src < g.N; src++ {
		st.sssp(src, threads)
		copy(D.Row(src), st.dist)
	}
	return D, nil
}

// tuneDelta times one SSSP per candidate Δ and returns the fastest. The
// candidate ladder spans bucket granularities from single-edge to
// near-Dijkstra.
func tuneDelta(g *graph.Graph, threads int) float64 {
	var sum float64
	for _, w := range g.Wgt {
		sum += w
	}
	avg := sum / float64(len(g.Wgt))
	if avg <= 0 || math.IsNaN(avg) {
		avg = 1
	}
	candidates := []float64{avg / 2, avg, 2 * avg, 4 * avg, 16 * avg}
	best, bestTime := candidates[0], time.Duration(math.MaxInt64)
	for i, d := range candidates {
		st := newDeltaState(g, d)
		src := (i * 7919) % g.N // decorrelate tuning sources
		t0 := time.Now()
		st.sssp(src, threads)
		if el := time.Since(t0); el < bestTime {
			best, bestTime = d, el
		}
	}
	return best
}
