package apsp

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/semiring"
)

// BidirectionalDijkstra answers a single point-to-point query by growing
// Dijkstra search balls from both endpoints simultaneously and stopping
// when the frontiers' combined radius exceeds the best meeting point.
// It is the standard no-precomputation baseline for point queries, and
// the comparison target for the supernodal factor's 2-hop label queries.
// Requires non-negative weights. Returns +Inf when t is unreachable.
func BidirectionalDijkstra(g *graph.Graph, s, t int) (float64, error) {
	if g.HasNegativeWeights() {
		return 0, fmt.Errorf("apsp: bidirectional Dijkstra requires non-negative weights")
	}
	if s < 0 || t < 0 || s >= g.N || t >= g.N {
		return 0, fmt.Errorf("apsp: vertex out of range")
	}
	if s == t {
		return 0, nil
	}
	// Forward and backward state (the graph is symmetric, so the
	// backward search uses the same adjacency).
	df := newSearch(g.N, s)
	db := newSearch(g.N, t)
	best := semiring.Inf
	for {
		// Expand the side with the smaller next key.
		fTop, fOK := df.peek()
		bTop, bOK := db.peek()
		if !fOK && !bOK {
			break
		}
		// Standard stopping criterion: when topF + topB ≥ best, no
		// shorter meeting can be found.
		minF, minB := semiring.Inf, semiring.Inf
		if fOK {
			minF = fTop
		}
		if bOK {
			minB = bTop
		}
		if minF+minB >= best {
			break
		}
		side, other := df, db
		if !fOK || (bOK && bTop < fTop) {
			side, other = db, df
		}
		u, du := side.pop()
		if u < 0 {
			continue
		}
		adj, wgt := g.Neighbors(u)
		for i, v := range adj {
			nd := du + wgt[i]
			if nd < side.dist[v] {
				side.dist[v] = nd
				side.h.push(heapItem{nd, v})
			}
			// Meeting candidate through edge (u, v).
			if od := other.dist[v]; !math.IsInf(od, 1) {
				if cand := nd + od; cand < best {
					best = cand
				}
			}
		}
		if od := other.dist[u]; !math.IsInf(od, 1) && du+od < best {
			best = du + od
		}
	}
	return best, nil
}

// search is one direction's Dijkstra state.
type search struct {
	dist []float64
	done []bool
	h    minHeap
}

func newSearch(n, src int) *search {
	s := &search{dist: make([]float64, n), done: make([]bool, n)}
	for i := range s.dist {
		s.dist[i] = semiring.Inf
	}
	s.dist[src] = 0
	s.h.push(heapItem{0, src})
	return s
}

// peek returns the smallest live key.
func (s *search) peek() (float64, bool) {
	for len(s.h) > 0 {
		if top := s.h[0]; top.d > s.dist[top.v] || s.done[top.v] {
			s.h.pop() // stale
			continue
		}
		return s.h[0].d, true
	}
	return 0, false
}

// pop settles and returns the next vertex, or -1 if exhausted.
func (s *search) pop() (int, float64) {
	for len(s.h) > 0 {
		it := s.h.pop()
		if it.d > s.dist[it.v] || s.done[it.v] {
			continue
		}
		s.done[it.v] = true
		return it.v, it.d
	}
	return -1, 0
}
