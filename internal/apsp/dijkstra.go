// Package apsp implements the baseline all-pairs shortest path algorithms
// the paper compares against: dense (blocked) Floyd-Warshall, Dijkstra
// from every source (the core of Johnson's algorithm), an adjacency-list
// Dijkstra modeling the BoostDijkstra baseline, Δ-stepping, Bellman-Ford
// and Johnson's algorithm, and min-plus path doubling.
package apsp

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/semiring"
)

// heapItem is a (distance, vertex) pair in the lazy binary heap.
type heapItem struct {
	d float64
	v int
}

// minHeap is a lazy binary min-heap of heapItem (stale entries are skipped
// on pop). A hand-rolled heap avoids container/heap's interface-call
// overhead in the innermost APSP loop.
type minHeap []heapItem

func (h *minHeap) push(it heapItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].d <= s[i].d {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *minHeap) pop() heapItem {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	s = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(s) && s[l].d < s[m].d {
			m = l
		}
		if r < len(s) && s[r].d < s[m].d {
			m = r
		}
		if m == i {
			return top
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
}

// dijkstraCSR runs Dijkstra from src over the CSR graph, writing distances
// into dist (which must have length g.N; it is reset to +Inf). arcW, if
// non-nil, overrides the stored weight of the arc at CSR position e
// leaving u — used by Johnson's reweighting. All (possibly overridden)
// weights must be non-negative.
func dijkstraCSR(g *graph.Graph, src int, dist []float64, h *minHeap, arcW func(u, e int) float64) {
	for i := range dist {
		dist[i] = semiring.Inf
	}
	*h = (*h)[:0]
	dist[src] = 0
	h.push(heapItem{0, src})
	for len(*h) > 0 {
		it := h.pop()
		if it.d > dist[it.v] {
			continue // stale
		}
		u := it.v
		lo, hi := g.Ptr[u], g.Ptr[u+1]
		for e := lo; e < hi; e++ {
			w := g.Wgt[e]
			if arcW != nil {
				w = arcW(u, e)
			}
			v := g.Adj[e]
			if nd := it.d + w; nd < dist[v] {
				dist[v] = nd
				h.push(heapItem{nd, v})
			}
		}
	}
}

// DijkstraSSSP computes single-source distances from src. The graph must
// have non-negative weights.
func DijkstraSSSP(g *graph.Graph, src int) ([]float64, error) {
	if g.HasNegativeWeights() {
		return nil, fmt.Errorf("apsp: Dijkstra requires non-negative weights")
	}
	dist := make([]float64, g.N)
	var h minHeap
	dijkstraCSR(g, src, dist, &h, nil)
	return dist, nil
}

// Dijkstra computes APSP by running Dijkstra's algorithm from every
// vertex, parallelized across sources (concurrency O(n), the paper's
// Table 2 row). The graph must have non-negative weights.
func Dijkstra(g *graph.Graph, threads int) (semiring.Mat, error) {
	if g.HasNegativeWeights() {
		return semiring.Mat{}, fmt.Errorf("apsp: Dijkstra requires non-negative weights")
	}
	D := semiring.NewMat(g.N, g.N)
	par.ForRanges(g.N, threads, 0, func(lo, hi int) {
		var h minHeap
		for s := lo; s < hi; s++ {
			dijkstraCSR(g, s, D.Row(s), &h, nil)
		}
	})
	return D, nil
}

// adjList is the pointer-chasing adjacency-list storage modeling the Boost
// Graph Library's default graph representation; the paper attributes
// BoostDijkstra's slowdown relative to its own CSR Dijkstra to exactly
// this layout.
type adjList struct {
	n    int
	nbrs [][]adjArc
}

type adjArc struct {
	to int
	w  float64
}

func newAdjList(g *graph.Graph) *adjList {
	al := &adjList{n: g.N, nbrs: make([][]adjArc, g.N)}
	// Per-vertex separate allocations (deliberately NOT one backing
	// array) to model list-of-vectors locality.
	for v := 0; v < g.N; v++ {
		adj, wgt := g.Neighbors(v)
		lst := make([]adjArc, len(adj))
		for i, u := range adj {
			lst[i] = adjArc{u, wgt[i]}
		}
		al.nbrs[v] = lst
	}
	return al
}

func (al *adjList) dijkstra(src int, dist []float64, h *minHeap) {
	for i := range dist {
		dist[i] = semiring.Inf
	}
	*h = (*h)[:0]
	dist[src] = 0
	h.push(heapItem{0, src})
	for len(*h) > 0 {
		it := h.pop()
		if it.d > dist[it.v] {
			continue
		}
		for _, a := range al.nbrs[it.v] {
			if nd := it.d + a.w; nd < dist[a.to] {
				dist[a.to] = nd
				h.push(heapItem{nd, a.to})
			}
		}
	}
}

// BoostDijkstra computes APSP with Dijkstra over adjacency-list storage —
// the off-the-shelf Boost Graph Library baseline of the paper.
func BoostDijkstra(g *graph.Graph, threads int) (semiring.Mat, error) {
	if g.HasNegativeWeights() {
		return semiring.Mat{}, fmt.Errorf("apsp: BoostDijkstra requires non-negative weights")
	}
	al := newAdjList(g)
	D := semiring.NewMat(g.N, g.N)
	par.ForRanges(g.N, threads, 0, func(lo, hi int) {
		var h minHeap
		for s := lo; s < hi; s++ {
			al.dijkstra(s, D.Row(s), &h)
		}
	})
	return D, nil
}

// BellmanFordPotential runs Bellman-Ford from a virtual source connected
// to every vertex with weight 0, over the directed arcs of the
// potential-reweighted instance (arc u→v weighs w(u,v)+p[u]−p[v]; pass
// nil p for the plain symmetric instance). It returns the potential h
// with h[v] = dist(virtual→v) ≤ 0, or an error if a negative cycle is
// reachable. This is the reweighting step of Johnson's algorithm.
func BellmanFordPotential(g *graph.Graph, p []float64) ([]float64, error) {
	n := g.N
	h := make([]float64, n) // virtual source: all start at 0
	arc := func(u, e int) float64 {
		w := g.Wgt[e]
		if p != nil {
			w += p[u] - p[g.Adj[e]]
		}
		return w
	}
	for round := 0; round < n; round++ {
		changed := false
		for u := 0; u < n; u++ {
			du := h[u]
			if math.IsInf(du, 1) {
				continue
			}
			for e := g.Ptr[u]; e < g.Ptr[u+1]; e++ {
				if nd := du + arc(u, e); nd < h[g.Adj[e]] {
					h[g.Adj[e]] = nd
					changed = true
				}
			}
		}
		if !changed {
			return h, nil
		}
	}
	return nil, fmt.Errorf("apsp: negative cycle detected by Bellman-Ford")
}

// Johnson computes APSP for the potential-reweighted instance of g (arc
// u→v weighs w(u,v)+p[u]−p[v]; nil p for the plain instance): Bellman-Ford
// finds a feasible potential h, arcs are reweighted non-negative, Dijkstra
// runs from every source, and distances are mapped back. The returned
// matrix contains the instance's distances, directly comparable to
// core.Plan.SolveInitMatrix on graph.ToDensePotential(p).
func Johnson(g *graph.Graph, p []float64, threads int) (semiring.Mat, error) {
	h, err := BellmanFordPotential(g, p)
	if err != nil {
		return semiring.Mat{}, err
	}
	arcW := func(u, e int) float64 {
		v := g.Adj[e]
		w := g.Wgt[e]
		if p != nil {
			w += p[u] - p[v]
		}
		return w + h[u] - h[v]
	}
	D := semiring.NewMat(g.N, g.N)
	par.ForRanges(g.N, threads, 0, func(lo, hi int) {
		var hp minHeap
		for s := lo; s < hi; s++ {
			row := D.Row(s)
			dijkstraCSR(g, s, row, &hp, arcW)
			for v := range row {
				if !math.IsInf(row[v], 1) {
					row[v] += h[v] - h[s]
				}
			}
		}
	})
	return D, nil
}
