package apsp

import (
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/semiring"
)

// NaiveFW computes APSP with the classic three-loop Floyd-Warshall
// algorithm (Algorithm 1). Reference implementation for validation.
func NaiveFW(g *graph.Graph) semiring.Mat {
	D := g.ToDense()
	semiring.FloydWarshall(D)
	return D
}

// defaultBlock is the BlockedFw block size. 64×64 double blocks (32 KiB)
// keep one operand block resident in L1 during the SemiringGemm calls.
const defaultBlock = 64

// BlockedFW computes APSP with the multithreaded blocked Floyd-Warshall
// algorithm (Algorithm 2) — the paper's efficient dense baseline that
// ignores sparsity and performs Θ(n³) work.
func BlockedFW(g *graph.Graph, threads int) semiring.Mat {
	D := g.ToDense()
	semiring.ParallelBlockedFloydWarshall(D, defaultBlock, threads)
	return D
}

// PathDoubling computes APSP by repeated min-plus matrix squaring:
// D ← D ⊗ D doubles the maximum hop count of the paths represented, so
// ⌈log₂ n⌉ squarings reach the closure. Θ(n³ log n) work with O(log n)
// depth — the theoretical low-depth variant in the paper's Table 2.
func PathDoubling(g *graph.Graph, threads int) semiring.Mat {
	D := g.ToDense()
	n := g.N
	next := semiring.NewMat(n, n)
	for hops := 1; hops < n; hops *= 2 {
		next.Copy(D)
		// next = D ⊕ D⊗D, tiled over row bands in parallel.
		par.ForRanges(n, threads, 0, func(lo, hi int) {
			semiring.MinPlusMulAdd(next.View(lo, 0, hi-lo, n), D.View(lo, 0, hi-lo, n), D)
		})
		if next.Equal(D) {
			break // fixpoint reached early
		}
		D, next = next, D
	}
	return D
}
