package core

// Numeric-phase profiling: per-stage and per-level accounting of where
// the elimination spends its time. Understanding the DiagUpdate /
// PanelUpdate / OuterUpdate split and the level-by-level load balance is
// how the paper's Fig 8 discussion reasons about etree parallelism
// ("small graphs perform very little per-iteration work").

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/par"
	"repro/internal/semiring"
)

// Profile accumulates stage timings during a profiled solve. Stage times
// are summed across workers, so with T threads busy they can add up to
// T× the wall time.
type Profile struct {
	Diag  atomic.Int64 // ns in diagonal FW closures
	Panel atomic.Int64 // ns in panel updates
	Outer atomic.Int64 // ns in outer-product updates
	// Levels records, per etree level, the wall time of the level
	// barrier-to-barrier and the number of supernodes.
	Levels []LevelProfile
}

// LevelProfile is the wall-clock footprint of one etree level.
type LevelProfile struct {
	Level      int
	Supernodes int
	Vertices   int
	Wall       time.Duration
}

// String renders the profile as a compact report.
func (pr *Profile) String() string {
	var b strings.Builder
	total := pr.Diag.Load() + pr.Panel.Load() + pr.Outer.Load()
	if total == 0 {
		total = 1
	}
	fmt.Fprintf(&b, "stage time (summed across workers): diag %v (%.0f%%), panel %v (%.0f%%), outer %v (%.0f%%)\n",
		time.Duration(pr.Diag.Load()).Round(time.Microsecond), 100*float64(pr.Diag.Load())/float64(total),
		time.Duration(pr.Panel.Load()).Round(time.Microsecond), 100*float64(pr.Panel.Load())/float64(total),
		time.Duration(pr.Outer.Load()).Round(time.Microsecond), 100*float64(pr.Outer.Load())/float64(total))
	if len(pr.Levels) > 0 {
		b.WriteString("etree levels (leaves first):\n")
		for _, l := range pr.Levels {
			fmt.Fprintf(&b, "  level %2d: %4d supernodes, %6d vertices, %10v\n",
				l.Level, l.Supernodes, l.Vertices, l.Wall.Round(time.Microsecond))
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// SolveProfiled is SolveWith plus stage/level accounting. The accounting
// adds two clock reads per update task; for realistic supernode sizes
// the overhead is well under 1%.
func (p *Plan) SolveProfiled(threads int, etreeParallel bool) (*Result, *Profile, error) {
	K := p.Opts.Semiring
	D := p.PG.ToDenseWith(K.Zero, K.One)
	st := &state{D: D, track: p.Opts.TrackPaths, K: K, prof: &Profile{}}
	if st.track {
		st.next = semiring.NewIntMat(D.Rows, D.Cols)
		semiring.InitNextHops(D, st.next)
	}
	t0 := time.Now()
	p.eliminateProfiled(st, threads, etreeParallel)
	res := &Result{D: D, Next: st.next, Perm: p.Perm, IPerm: p.IPerm, NumericTime: time.Since(t0)}
	if K.DetectNegCycle && res.HasNegativeCycle() {
		return res, st.prof, fmt.Errorf("core: graph contains a negative-weight cycle")
	}
	return res, st.prof, nil
}

// eliminateProfiled mirrors eliminate but wraps each level in wall-time
// accounting (the per-stage accounting lives in eliminateSupernode via
// state.prof).
func (p *Plan) eliminateProfiled(st *state, threads int, etreeParallel bool) {
	threads = par.DefaultThreads(threads)
	sn := p.Sn
	record := func(level int, nodes []int, fn func()) {
		verts := 0
		for _, k := range nodes {
			verts += sn.Ranges[k].Size()
		}
		t0 := time.Now()
		fn()
		st.prof.Levels = append(st.prof.Levels, LevelProfile{
			Level: level, Supernodes: len(nodes), Vertices: verts, Wall: time.Since(t0),
		})
	}
	if threads <= 1 || !etreeParallel {
		for lvl, nodes := range sn.Levels {
			nodes := nodes
			record(lvl, nodes, func() {
				for _, k := range nodes {
					p.eliminateSupernode(st, k, threads, nil)
				}
			})
		}
		return
	}
	locks := par.NewStripedMutex(1024)
	for lvl, level := range sn.Levels {
		level := level
		width := len(level)
		inner := threads / width
		if inner < 1 {
			inner = 1
		}
		lk := locks
		if width == 1 {
			lk = nil
		}
		record(lvl, level, func() {
			par.For(width, threads, 1, func(i int) {
				p.eliminateSupernode(st, level[i], inner, lk)
			})
		})
	}
}

// Note: sequential profiled mode iterates levels (not raw postorder) so
// per-level accounting is comparable across modes. Level order is also a
// valid elimination order (children always precede parents).
