package core

// Numeric-phase profiling: per-stage and per-supernode accounting of
// where the elimination spends its time. Understanding the DiagUpdate /
// PanelUpdate / OuterUpdate split and the schedule's load balance is how
// the paper's Fig 8 discussion reasons about etree parallelism ("small
// graphs perform very little per-iteration work").
//
// Attribution is per-supernode: every elimination records its start
// offset and duration relative to the start of the numeric phase. Level
// summaries are derived from the supernode spans, which keeps them
// meaningful under both schedules — under the level-synchronous schedule
// a level's span is the barrier-to-barrier wall time, while under the
// DAG schedule spans of adjacent levels overlap, and the difference
// between the sum of level spans and the phase wall time is exactly the
// barrier cost the DAG schedule recovered.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/par"
	"repro/internal/semiring"
)

// Profile accumulates stage timings during a profiled solve. Stage times
// are summed across workers, so with T threads busy they can add up to
// T× the wall time.
type Profile struct {
	Diag  atomic.Int64 // ns in diagonal FW closures
	Panel atomic.Int64 // ns in panel updates
	Outer atomic.Int64 // ns in outer-product updates
	// Supernodes records one span per eliminated supernode, ordered by
	// start offset.
	Supernodes []SupernodeProfile
	// Levels summarizes the supernode spans per etree level.
	Levels []LevelProfile
	// Kernel is the GEMM-engine counter delta spanning the profiled
	// numeric phase (see Result.Kernel for the concurrency caveat).
	Kernel semiring.KernelCounters

	mu sync.Mutex // guards Supernodes during the solve
}

// SupernodeProfile is the elimination span of one supernode, relative to
// the start of the numeric phase.
type SupernodeProfile struct {
	Supernode int
	Level     int
	Vertices  int
	Workers   int           // intra-supernode parallelism budget it ran with
	Start     time.Duration // offset from numeric-phase start
	Wall      time.Duration
}

// LevelProfile is the wall-clock footprint of one etree level: the span
// from its first supernode start to its last supernode end. Under the
// level-synchronous schedule this is the barrier-to-barrier wall time;
// under the DAG schedule spans of different levels overlap.
type LevelProfile struct {
	Level      int
	Supernodes int
	Vertices   int
	Wall       time.Duration
}

// record appends one supernode span (thread-safe).
func (pr *Profile) record(sp SupernodeProfile) {
	pr.mu.Lock()
	pr.Supernodes = append(pr.Supernodes, sp)
	pr.mu.Unlock()
}

// finish sorts the supernode spans and derives the level summaries.
func (pr *Profile) finish(numLevels int) {
	sort.Slice(pr.Supernodes, func(i, j int) bool {
		a, b := pr.Supernodes[i], pr.Supernodes[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		return a.Supernode < b.Supernode
	})
	pr.Levels = make([]LevelProfile, numLevels)
	first := make([]time.Duration, numLevels)
	last := make([]time.Duration, numLevels)
	for i := range pr.Levels {
		pr.Levels[i].Level = i
		first[i] = 1<<63 - 1
	}
	for _, sp := range pr.Supernodes {
		l := &pr.Levels[sp.Level]
		l.Supernodes++
		l.Vertices += sp.Vertices
		if sp.Start < first[sp.Level] {
			first[sp.Level] = sp.Start
		}
		if end := sp.Start + sp.Wall; end > last[sp.Level] {
			last[sp.Level] = end
		}
	}
	for i := range pr.Levels {
		if pr.Levels[i].Supernodes > 0 {
			pr.Levels[i].Wall = last[i] - first[i]
		}
	}
}

// String renders the profile as a compact report.
func (pr *Profile) String() string {
	var b strings.Builder
	total := pr.Diag.Load() + pr.Panel.Load() + pr.Outer.Load()
	if total == 0 {
		total = 1
	}
	fmt.Fprintf(&b, "stage time (summed across workers): diag %v (%.0f%%), panel %v (%.0f%%), outer %v (%.0f%%)\n",
		time.Duration(pr.Diag.Load()).Round(time.Microsecond), 100*float64(pr.Diag.Load())/float64(total),
		time.Duration(pr.Panel.Load()).Round(time.Microsecond), 100*float64(pr.Panel.Load())/float64(total),
		time.Duration(pr.Outer.Load()).Round(time.Microsecond), 100*float64(pr.Outer.Load())/float64(total))
	if len(pr.Levels) > 0 {
		var sum time.Duration
		b.WriteString("etree levels (leaves first, span = first start → last end):\n")
		for _, l := range pr.Levels {
			sum += l.Wall
			fmt.Fprintf(&b, "  level %2d: %4d supernodes, %6d vertices, %10v\n",
				l.Level, l.Supernodes, l.Vertices, l.Wall.Round(time.Microsecond))
		}
		if end := pr.phaseEnd(); end > 0 && sum > end {
			// Overlapping level spans: the DAG schedule ran supernodes of
			// different levels concurrently instead of idling at
			// barriers.
			fmt.Fprintf(&b, "  level spans sum to %v over a %v phase: %v of would-be barrier wait overlapped\n",
				sum.Round(time.Microsecond), end.Round(time.Microsecond), (sum - end).Round(time.Microsecond))
		}
	}
	if sp, ok := pr.slowestSupernode(); ok {
		fmt.Fprintf(&b, "slowest supernode: #%d (level %d, %d vertices, %d workers) %v\n",
			sp.Supernode, sp.Level, sp.Vertices, sp.Workers, sp.Wall.Round(time.Microsecond))
	}
	if k := pr.Kernel; k.Calls > 0 {
		fmt.Fprintf(&b, "gemm kernels: %d calls (%.0f%% dense, %d shards), %d fused ops, %s packed\n",
			k.Calls, 100*k.DenseRatio(), k.ParallelShards, k.FusedOps, fmtBytes(k.PackedBytes))
	}
	if k := pr.Kernel; k.FusedElims+k.StagedElims > 0 {
		fmt.Fprintf(&b, "fused pipeline: %d fused / %d staged eliminations, %s pack reuse; phase footprint diag %v, panel %v, outer %v",
			k.FusedElims, k.StagedElims, fmtBytes(k.PackedReuseBytes),
			time.Duration(k.DiagNS).Round(time.Microsecond),
			time.Duration(k.PanelNS).Round(time.Microsecond),
			time.Duration(k.OuterNS).Round(time.Microsecond))
	}
	return strings.TrimRight(b.String(), "\n")
}

// fmtBytes renders a byte count with a binary-prefix unit.
func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}

// phaseEnd returns the latest supernode end offset.
func (pr *Profile) phaseEnd() time.Duration {
	var end time.Duration
	for _, sp := range pr.Supernodes {
		if e := sp.Start + sp.Wall; e > end {
			end = e
		}
	}
	return end
}

// slowestSupernode returns the span with the largest wall time.
func (pr *Profile) slowestSupernode() (SupernodeProfile, bool) {
	if len(pr.Supernodes) == 0 {
		return SupernodeProfile{}, false
	}
	best := pr.Supernodes[0]
	for _, sp := range pr.Supernodes[1:] {
		if sp.Wall > best.Wall {
			best = sp
		}
	}
	return best, true
}

// SolveProfiled is SolveWith plus stage/supernode accounting. The
// accounting adds two clock reads per update task; for realistic
// supernode sizes the overhead is well under 1%.
func (p *Plan) SolveProfiled(threads int, etreeParallel bool) (*Result, *Profile, error) {
	K := p.Opts.Semiring
	D := p.PG.ToDenseWith(K.Zero, K.One)
	st := &state{D: D, track: p.Opts.TrackPaths, K: K, prof: &Profile{}}
	if st.track {
		st.next = semiring.NewIntMat(D.Rows, D.Cols)
		semiring.InitNextHops(D, st.next)
	}
	k0 := semiring.ReadKernelCounters()
	t0 := time.Now()
	p.eliminateProfiled(st, threads, etreeParallel)
	st.prof.Kernel = semiring.ReadKernelCounters().Sub(k0)
	res := &Result{D: D, Next: st.next, Perm: p.Perm, IPerm: p.IPerm,
		NumericTime: time.Since(t0), Kernel: st.prof.Kernel}
	if K.DetectNegCycle && res.HasNegativeCycle() {
		return res, st.prof, fmt.Errorf("core: graph contains a negative-weight cycle")
	}
	return res, st.prof, nil
}

// eliminateProfiled mirrors eliminate but wraps every supernode
// elimination in span accounting (the per-stage accounting lives in
// eliminateSupernode via state.prof).
func (p *Plan) eliminateProfiled(st *state, threads int, etreeParallel bool) {
	threads = par.DefaultThreads(threads)
	sn := p.Sn
	levelOf := sn.LevelOf()
	t0 := time.Now()
	run := func(k, inner int, locks *par.StripedMutex) {
		start := time.Since(t0)
		p.eliminateSupernode(st, k, inner, locks)
		st.prof.record(SupernodeProfile{
			Supernode: k,
			Level:     levelOf[k],
			Vertices:  sn.Ranges[k].Size(),
			Workers:   inner,
			Start:     start,
			Wall:      time.Since(t0) - start,
		})
	}
	switch {
	case threads <= 1 || !etreeParallel:
		// Sequential mode iterates levels (not raw postorder) so the
		// per-level accounting is comparable across modes; level order is
		// also a valid elimination order (children precede parents).
		for _, nodes := range sn.Levels {
			for _, k := range nodes {
				run(k, threads, nil)
			}
		}
	case p.Opts.Schedule == ScheduleLevel:
		locks := par.NewStripedMutex(1024)
		for _, level := range sn.Levels {
			level := level
			width := len(level)
			inner := threads / width
			if inner < 1 {
				inner = 1
			}
			lk := locks
			if width == 1 {
				lk = nil
			}
			par.For(width, threads, 1, func(i int) {
				run(level[i], inner, lk)
			})
		}
	default:
		lk := par.NewStripedMutex(1024)
		if sn.NumSupernodes() == 1 {
			lk = nil
		}
		par.RunDAG(sn.Parent, threads, func(k, inner int) {
			run(k, inner, lk)
		})
	}
	st.prof.finish(len(sn.Levels))
}
