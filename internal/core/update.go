package core

// Incremental distance-matrix updates. The paper's related-work section
// traces the APSP/linear-solver correspondence back to Carré, including
// the Sherman-Morrison-Woodbury formula for graph updates: when a single
// edge improves, the closed distance matrix can be repaired with a
// rank-1-style min-plus correction in O(n²) instead of re-running the
// O(n²|S|) solve. This file implements that update for edge insertions
// and weight decreases.
//
// Correctness: with no negative cycles, a shortest path uses the new edge
// at most once (shortest walks are simple paths), so offering every pair
// the detour through the edge — in each direction — restores the closure.
// The two sweeps may read partially-updated entries; that is safe because
// every entry always holds the length of some real path in the updated
// graph (no undershoot) and the detour using pre-update values is among
// the candidates considered (full coverage).
//
// Weight *increases* invalidate paths and cannot be repaired locally;
// callers must re-solve.

import (
	"fmt"

	"repro/internal/par"
	"repro/internal/semiring"
)

// DecreaseEdge applies the min-plus rank-1 update for a new or improved
// undirected edge {u, v} (original vertex ids) of weight w ≥ 0:
//
//	D[i][j] ← min(D[i][j], D[i][u] + w + D[v][j], D[i][v] + w + D[u][j])
//
// in O(n²) with row parallelism (threads ≤ 0 uses GOMAXPROCS). Negative w
// is rejected — a negative undirected edge is itself a negative 2-cycle.
// Next-hop tracking, when enabled on the result, is repaired consistently.
func (r *Result) DecreaseEdge(u, v int, w float64, threads int) error {
	if w < 0 {
		return fmt.Errorf("core: a negative undirected edge is a negative 2-cycle")
	}
	if err := r.checkPair(u, v); err != nil {
		return err
	}
	if u == v {
		return nil // a non-negative self-loop never shortens any path
	}
	pu, pv := r.IPerm[u], r.IPerm[v]
	if w >= r.D.At(pu, pv) && w >= r.D.At(pv, pu) {
		return nil // not an improvement; closure unchanged
	}
	r.applyDetour(pu, pv, w, threads)
	r.applyDetour(pv, pu, w, threads)
	return nil
}

// DecreaseArc is DecreaseEdge for a single directed arc u→v, for results
// solved from asymmetric (e.g. potential-reweighted) instances. w may be
// negative as long as no negative cycle arises (w + D[v][u] ≥ 0).
func (r *Result) DecreaseArc(u, v int, w float64, threads int) error {
	if err := r.checkPair(u, v); err != nil {
		return err
	}
	pu, pv := r.IPerm[u], r.IPerm[v]
	if cycle := w + r.D.At(pv, pu); cycle < 0 {
		return fmt.Errorf("core: arc update would create a negative cycle (w + D[v][u] = %g)", cycle)
	}
	if u == v {
		return nil // self-loop survived the cycle guard, so w >= 0: a no-op
	}
	if w >= r.D.At(pu, pv) {
		return nil
	}
	r.applyDetour(pu, pv, w, threads)
	return nil
}

func (r *Result) checkPair(u, v int) error {
	n := r.D.Rows
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("core: vertex out of range")
	}
	return nil
}

// Clone deep-copies the result (distance and next-hop matrices) so one
// snapshot can keep answering queries while the copy is patched in
// place. The permutations are immutable and stay shared.
func (r *Result) Clone() *Result {
	c := *r
	c.D = r.D.Clone()
	if r.Next.Data != nil {
		c.Next = semiring.NewIntMat(r.Next.Rows, r.Next.Cols)
		for i := 0; i < r.Next.Rows; i++ {
			copy(c.Next.Row(i), r.Next.Row(i))
		}
	}
	return &c
}

// applyDetour offers every pair (i, j) the detour i→a —w→ b→j, where a
// and b are permuted indices.
func (r *Result) applyDetour(a, b int, w float64, threads int) {
	n := r.D.Rows
	// Snapshot row b: the worker that owns the range containing b writes
	// it while every other worker reads it. The stale-read was value-safe
	// (monotone relaxation over real path lengths), but a concurrent
	// unsynchronized write/read is still a Go-memory-model data race.
	brow := append([]float64(nil), r.D.Row(b)...)
	track := r.Next.Data != nil
	par.ForRanges(n, threads, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dia := r.D.At(i, a)
			if dia == semiring.Inf {
				continue
			}
			base := dia + w
			irow := r.D.Row(i)
			var nrow []int32
			var hop int32
			if track {
				nrow = r.Next.Row(i)
				if i == a {
					hop = int32(b) // the new edge itself is the first hop
				} else {
					hop = nrow[a] // first hop of the existing i→a path
				}
			}
			for j, dbj := range brow {
				if nd := base + dbj; nd < irow[j] {
					irow[j] = nd
					if track {
						nrow[j] = hop
					}
				}
			}
		}
	})
}
