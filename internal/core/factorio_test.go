package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/semiring"
)

func TestFactorRoundTrip(t *testing.T) {
	g := gen.RoadNetwork(14, 14, 0.3, 91)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactor(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	f2, err := ReadFactor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same SSSP answers, same memory, same structure.
	if f2.Memory() != f.Memory() {
		t.Errorf("memory %d != %d after round trip", f2.Memory(), f.Memory())
	}
	for src := 0; src < g.N; src += 23 {
		a := f.SSSP(src)
		b := f2.SSSP(src)
		for v := range a {
			if a[v] != b[v] && !(math.IsInf(a[v], 1) && math.IsInf(b[v], 1)) {
				t.Fatalf("SSSP(%d)[%d]: %g != %g", src, v, a[v], b[v])
			}
		}
	}
	if f.Dist(3, 100) != f2.Dist(3, 100) {
		t.Error("label query differs after round trip")
	}
}

func TestFactorRoundTripWidest(t *testing.T) {
	g := gen.GeometricKNN(100, 2, 3, gen.WeightUniform, 92)
	plan, err := NewPlan(g, Options{Semiring: semiring.MaxMinKernels})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f2, err := ReadFactor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f2.K != semiring.MaxMinKernels {
		t.Error("semiring not restored")
	}
	a, b := f.SSSP(5), f2.SSSP(5)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("widest SSSP differs after round trip")
		}
	}
}

func TestReadFactorRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"NOPE",
		"SFWF\x09\x00\x00\x00", // bad version
	}
	for i, c := range cases {
		if _, err := ReadFactor(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncated real file.
	g := gen.Grid2D(6, 6, gen.WeightUniform, 93)
	plan, _ := NewPlan(g, DefaultOptions())
	f, _ := NewFactor(plan, 1)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 12, len(full) / 2, len(full) - 1} {
		if _, err := ReadFactor(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
