package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"math"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/semiring"
)

func TestFactorRoundTrip(t *testing.T) {
	g := gen.RoadNetwork(14, 14, 0.3, 91)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactor(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := f.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	f2, err := ReadFactor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same SSSP answers, same memory, same structure.
	if f2.Memory() != f.Memory() {
		t.Errorf("memory %d != %d after round trip", f2.Memory(), f.Memory())
	}
	for src := 0; src < g.N; src += 23 {
		a := f.SSSP(src)
		b := f2.SSSP(src)
		for v := range a {
			if a[v] != b[v] && !(math.IsInf(a[v], 1) && math.IsInf(b[v], 1)) {
				t.Fatalf("SSSP(%d)[%d]: %g != %g", src, v, a[v], b[v])
			}
		}
	}
	if f.Dist(3, 100) != f2.Dist(3, 100) {
		t.Error("label query differs after round trip")
	}
}

func TestFactorRoundTripWidest(t *testing.T) {
	g := gen.GeometricKNN(100, 2, 3, gen.WeightUniform, 92)
	plan, err := NewPlan(g, Options{Semiring: semiring.MaxMinKernels})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	f2, err := ReadFactor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f2.K != semiring.MaxMinKernels {
		t.Error("semiring not restored")
	}
	a, b := f.SSSP(5), f2.SSSP(5)
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("widest SSSP differs after round trip")
		}
	}
}

func TestCheckpointMetaRoundTrip(t *testing.T) {
	g := gen.RoadNetwork(8, 8, 0.3, 94)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	meta := CheckpointMeta{
		Generation:  7,
		GraphDigest: GraphDigest(g),
		Overlay: []EdgeDelta{
			{U: 0, V: 1, W: 0.25},
			{U: 2, V: 9, W: 3.5},
		},
	}
	var buf bytes.Buffer
	if _, err := WriteFactorMeta(&buf, f, meta); err != nil {
		t.Fatal(err)
	}
	f2, got, err := ReadFactorMeta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 7 || got.GraphDigest != meta.GraphDigest {
		t.Fatalf("meta round trip: %+v, want %+v", got, meta)
	}
	if len(got.Overlay) != 2 || got.Overlay[0] != meta.Overlay[0] || got.Overlay[1] != meta.Overlay[1] {
		t.Fatalf("overlay round trip: %+v", got.Overlay)
	}
	if err := got.Validate(GraphDigest(g)); err != nil {
		t.Fatalf("Validate against own graph: %v", err)
	}
	// A different graph must be rejected by digest.
	other := gen.RoadNetwork(8, 8, 0.3, 95)
	if err := got.Validate(GraphDigest(other)); err == nil {
		t.Fatal("checkpoint for a different graph validated")
	}
	if f2.Dist(0, 5) != f.Dist(0, 5) {
		t.Fatal("factor differs after meta round trip")
	}
}

// TestCheckpointV2BackCompat hand-builds a v2 stream (no meta block)
// and asserts it still loads — at generation 0 with an empty overlay,
// which boot paths treat as "legacy checkpoint, cold state".
func TestCheckpointV2BackCompat(t *testing.T) {
	g := gen.Grid2D(6, 6, gen.WeightUniform, 96)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	var v3 bytes.Buffer
	if _, err := f.WriteTo(&v3); err != nil {
		t.Fatal(err)
	}
	// A v3 file with a zero meta block differs from its v2 ancestor by
	// exactly: the version word, 24 meta bytes after the semiring id,
	// and the trailer CRC. Strip them and re-checksum to produce a
	// byte-faithful v2 file.
	data := v3.Bytes()
	body := append([]byte{}, data[8:len(data)-8]...) // checksummed body
	v2body := append([]byte{body[0]}, body[1+24:]...)
	v2 := make([]byte, 0, len(v2body)+16)
	v2 = append(v2, "SFWF\x02\x00\x00\x00"...)
	v2 = append(v2, v2body...)
	crc := crc64.Checksum(v2body, factorCRCTable)
	var trailer [8]byte
	binary.LittleEndian.PutUint64(trailer[:], crc)
	v2 = append(v2, trailer[:]...)

	f2, meta, err := ReadFactorMeta(bytes.NewReader(v2))
	if err != nil {
		t.Fatalf("v2 file rejected: %v", err)
	}
	if meta.Generation != 0 || meta.GraphDigest != 0 || meta.Overlay != nil {
		t.Fatalf("v2 load produced non-zero meta: %+v", meta)
	}
	if meta.Validate(GraphDigest(g)) == nil {
		t.Fatal("zero meta validated as durable — legacy files must be detectable")
	}
	if f2.Dist(0, 7) != f.Dist(0, 7) {
		t.Fatal("v2-loaded factor differs")
	}
}

// TestCheckpointCorpusRejected drives ReadFactorMeta over a corpus of
// damaged v3 checkpoints — truncations at every structural boundary
// and bit flips in header, meta block, overlay, payload, and trailer —
// and requires every one to be rejected whole: a corrupt checkpoint is
// never half-applied.
func TestCheckpointCorpusRejected(t *testing.T) {
	g := gen.Grid2D(6, 6, gen.WeightUniform, 97)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	meta := CheckpointMeta{Generation: 3, GraphDigest: GraphDigest(g),
		Overlay: []EdgeDelta{{U: 1, V: 2, W: 0.5}}}
	var buf bytes.Buffer
	if _, err := WriteFactorMeta(&buf, f, meta); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{0, 4, 8, 9, 17, 25, 33, 40, len(full) / 3, len(full) / 2, len(full) - 9, len(full) - 1} {
		if _, _, err := ReadFactorMeta(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	for _, flip := range []int{9, 13, 21, 29, 37, 45, len(full) / 2, len(full) - 4} {
		mut := append([]byte{}, full...)
		mut[flip] ^= 0x01
		f2, m2, err := ReadFactorMeta(bytes.NewReader(mut))
		if err == nil {
			t.Errorf("bit flip at %d accepted (gen %d)", flip, m2.Generation)
			_ = f2
		}
	}
}

func TestReadFactorRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"NOPE",
		"SFWF\x09\x00\x00\x00", // bad version
	}
	for i, c := range cases {
		if _, err := ReadFactor(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Truncated real file.
	g := gen.Grid2D(6, 6, gen.WeightUniform, 93)
	plan, _ := NewPlan(g, DefaultOptions())
	f, _ := NewFactor(plan, 1)
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 12, len(full) / 2, len(full) - 1} {
		if _, err := ReadFactor(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
