package core

import (
	"testing"

	"repro/internal/graph"
)

// FuzzDecreaseBatch differentially fuzzes the rank-1 update kernel: an
// arbitrary byte string decodes into a base graph plus a batch of edge
// decreases/insertions, which are applied incrementally to a
// path-tracked solve and checked against a from-scratch re-solve — both
// the distance matrix and full path reconstruction (every repaired path
// is walked edge by edge and its length compared to the distance).
//
// Encoding: byte 0 = n (2..17), byte 1 = how many trailing 3-byte groups
// form the update batch; every 3-byte group is (u%n, v%n, w). Base edges
// get weight w/16+0.1; updates get w/24+0.05 so genuine improvements,
// fresh insertions, and non-improving no-ops all occur.
func FuzzDecreaseBatch(f *testing.F) {
	f.Add([]byte{4, 2, 0, 1, 16, 1, 2, 32, 2, 3, 8, 0, 3, 1, 1, 3, 2})
	f.Add([]byte{6, 1, 0, 1, 40, 2, 3, 40, 4, 5, 40, 0, 5, 1})
	f.Add([]byte{3, 4, 0, 1, 9, 0, 1, 3, 1, 2, 7, 2, 2, 5, 0, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 || len(data) > 256 {
			return
		}
		n := int(data[0])%16 + 2
		groups := (len(data) - 2) / 3
		if groups == 0 {
			return
		}
		nup := 1 + int(data[1])%8
		if nup > groups {
			nup = groups
		}
		decode := func(i int) (int, int, byte) {
			off := 2 + 3*i
			return int(data[off]) % n, int(data[off+1]) % n, data[off+2]
		}
		var edges []graph.Edge
		for i := 0; i < groups-nup; i++ {
			u, v, wb := decode(i)
			edges = append(edges, graph.Edge{U: u, V: v, W: float64(wb)/16 + 0.1})
		}
		g := graph.MustFromEdges(n, edges)
		opts := DefaultOptions()
		opts.TrackPaths = true
		opts.Threads = 1 + int(data[0])%3
		plan, err := NewPlan(g, opts)
		if err != nil {
			t.Fatalf("NewPlan: %v", err)
		}
		res, err := plan.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		ref := g.Edges()
		for i := groups - nup; i < groups; i++ {
			u, v, wb := decode(i)
			w := float64(wb)/24 + 0.05
			if err := res.DecreaseEdge(u, v, w, opts.Threads); err != nil {
				t.Fatalf("DecreaseEdge(%d,%d,%g): %v", u, v, w, err)
			}
			if u == v {
				continue // no-op in the kernel; keep the reference loop-free
			}
			ref = append(ref, graph.Edge{U: u, V: v, W: w})
		}
		g2 := graph.MustFromEdges(n, ref)
		want := Closure(g2.ToDense())
		if !res.Dense().EqualTol(want, 1e-9) {
			t.Fatalf("incremental batch diverged from re-solve (n=%d, updates=%d)", n, nup)
		}
		checkAllPaths(t, g2, res)
	})
}
