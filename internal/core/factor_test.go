package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/semiring"
)

func factorGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"grid":         gen.Grid2D(9, 8, gen.WeightUniform, 81),
		"geo":          gen.GeometricKNN(150, 2, 3, gen.WeightEuclidean, 82),
		"road":         gen.RoadNetwork(12, 12, 0.3, 83),
		"ba":           gen.BarabasiAlbert(80, 3, gen.WeightUniform, 84),
		"path":         gen.Grid2D(40, 1, gen.WeightUniform, 85),
		"disconnected": disconnectedPair(),
	}
}

func TestFactorSSSPMatchesDense(t *testing.T) {
	for name, g := range factorGraphs() {
		want := Closure(g.ToDense())
		for _, ok := range []OrderingKind{OrderND, OrderBFS} {
			for _, threads := range []int{1, 4} {
				plan, err := NewPlan(g, Options{Ordering: ok, MaxBlock: 16, LeafSize: 12})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				f, err := NewFactor(plan, threads)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				for src := 0; src < g.N; src += 7 {
					d := f.SSSP(src)
					for v := 0; v < g.N; v++ {
						x, y := d[v], want.At(src, v)
						if math.IsInf(x, 1) != math.IsInf(y, 1) || (!math.IsInf(x, 1) && math.Abs(x-y) > 1e-9) {
							t.Fatalf("%s ord=%v t=%d: SSSP(%d)[%d] = %g, want %g", name, ok, threads, src, v, x, y)
						}
					}
				}
			}
		}
	}
}

func TestFactorDistLabels(t *testing.T) {
	for name, g := range factorGraphs() {
		want := Closure(g.ToDense())
		plan, err := NewPlan(g, Options{Ordering: OrderND, MaxBlock: 16, LeafSize: 12})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		f, err := NewFactor(plan, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		step := g.N/25 + 1
		for u := 0; u < g.N; u += step {
			for v := 0; v < g.N; v += step {
				got := f.Dist(u, v)
				exp := want.At(u, v)
				if math.IsInf(got, 1) != math.IsInf(exp, 1) || (!math.IsInf(got, 1) && math.Abs(got-exp) > 1e-9) {
					t.Fatalf("%s: Dist(%d,%d) = %g, want %g", name, u, v, got, exp)
				}
			}
		}
	}
}

func TestFactorMemorySmallerThanDense(t *testing.T) {
	// On a planar-like graph the factor is asymptotically smaller than
	// the dense matrix; at n=1600 it should already be far below 8n².
	g := gen.GeometricKNN(1600, 2, 3, gen.WeightUniform, 86)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactor(plan, 0)
	if err != nil {
		t.Fatal(err)
	}
	dense := int64(8) * int64(g.N) * int64(g.N)
	if f.Memory() >= dense/4 {
		t.Errorf("factor memory %d should be well below dense %d", f.Memory(), dense)
	}
}

func TestFactorNegativeCycleDetected(t *testing.T) {
	// Build a graph whose closure has a negative cycle via a negative
	// symmetric edge (a negative 2-cycle). NewPlan/Factor should report.
	g := graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: -1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1},
	})
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFactor(plan, 1); err == nil {
		t.Fatal("negative 2-cycle must be detected by factorization")
	}
}

func TestFactorWidest(t *testing.T) {
	g := gen.GeometricKNN(120, 2, 3, gen.WeightUniform, 87)
	plan, err := NewPlan(g, Options{Semiring: semiring.MaxMinKernels, MaxBlock: 16, LeafSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactor(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := widestClosure(g)
	for src := 0; src < g.N; src += 11 {
		d := f.SSSP(src)
		for v := 0; v < g.N; v++ {
			if math.Abs(d[v]-want.At(src, v)) > 1e-12 && d[v] != want.At(src, v) {
				t.Fatalf("widest SSSP(%d)[%d] = %g, want %g", src, v, d[v], want.At(src, v))
			}
		}
	}
	if got, exp := f.Dist(3, 97), want.At(3, 97); got != exp {
		t.Fatalf("widest Dist = %g, want %g", got, exp)
	}
}

func TestFactorRejectsTrackPaths(t *testing.T) {
	g := gen.Grid2D(4, 4, gen.WeightUnit, 88)
	plan, _ := NewPlan(g, Options{TrackPaths: true})
	if _, err := NewFactor(plan, 1); err == nil {
		t.Fatal("factor must reject path tracking")
	}
}

func TestSnodeOf(t *testing.T) {
	g := gen.Grid2D(10, 10, gen.WeightUniform, 89)
	plan, err := NewPlan(g, Options{MaxBlock: 8, LeafSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N; v++ {
		k := plan.snodeOf(v)
		r := plan.Sn.Ranges[k]
		if v < r.Lo || v >= r.Hi {
			t.Fatalf("snodeOf(%d) = %d covering [%d,%d)", v, k, r.Lo, r.Hi)
		}
	}
}

func TestFactorMultiSSSP(t *testing.T) {
	g := gen.GeometricKNN(120, 2, 3, gen.WeightUniform, 96)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactor(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	sources := []int{0, 7, 42, 119}
	rows := f.MultiSSSP(sources, 3)
	for i, src := range sources {
		single := f.SSSP(src)
		for v := range single {
			if rows[i][v] != single[v] && !(math.IsInf(rows[i][v], 1) && math.IsInf(single[v], 1)) {
				t.Fatalf("MultiSSSP row %d differs from SSSP at %d", i, v)
			}
		}
	}
}
