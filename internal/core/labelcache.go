package core

// LabelCache: the serving-side complement of the supernodal factor. A
// point query Dist(u, v) costs two 2-hop label computations plus a cheap
// meet; real query traffic is heavily skewed (a few hot vertices appear
// in most pairs), so caching labels turns the common case into two map
// hits and an allocation-free meet. The cache is a bounded LRU keyed by
// original vertex id. Labels are immutable once computed, which makes
// sharing them across concurrent readers safe without copying.

import (
	"sync"
	"sync/atomic"
)

// LabelCache is a concurrency-safe bounded LRU cache of 2-hop labels for
// one factor. The zero value is not usable; construct with NewLabelCache.
type LabelCache struct {
	f   *Factor
	cap int

	mu   sync.Mutex
	m    map[int]*cacheEntry
	head *cacheEntry // most recently used
	tail *cacheEntry // least recently used

	hits, misses atomic.Uint64
}

// cacheEntry is an intrusive doubly-linked LRU node: hits move entries
// with pointer surgery only, so the hit path performs zero allocations.
type cacheEntry struct {
	key        int
	lbl        *Label
	prev, next *cacheEntry
}

// DefaultCacheSize bounds the default label-cache capacity. Labels cost
// O(root-path fill) memory each, so an unbounded cache on a large graph
// would silently regrow the dense-matrix memory wall the factor exists
// to avoid.
const DefaultCacheSize = 4096

// NewLabelCache builds a cache over f holding at most capacity labels.
// capacity <= 0 selects min(n, DefaultCacheSize).
func NewLabelCache(f *Factor, capacity int) *LabelCache {
	if capacity <= 0 {
		capacity = f.n
		if capacity > DefaultCacheSize {
			capacity = DefaultCacheSize
		}
	}
	return &LabelCache{
		f:   f,
		cap: capacity,
		m:   make(map[int]*cacheEntry, capacity),
	}
}

// NewLabelCacheFrom builds a cache over f seeded with the still-valid
// entries of old: labels whose supernode is not stale survived a live
// update bit-for-bit (their whole root path is clean), so a patched
// snapshot can keep serving them warm instead of recomputing the entire
// working set. staleSn == nil invalidates everything (full rebuild).
// Labels are immutable, so sharing them across factors is safe.
func NewLabelCacheFrom(f *Factor, capacity int, old *LabelCache, staleSn []bool) *LabelCache {
	c := NewLabelCache(f, capacity)
	if old == nil || staleSn == nil {
		return c
	}
	old.mu.Lock()
	defer old.mu.Unlock()
	// Walk least- to most-recently used so pushFront reproduces the old
	// recency order in the new cache.
	for e := old.tail; e != nil; e = e.prev {
		if staleSn[f.snodeOf(f.iperm[e.key])] {
			continue
		}
		ne := &cacheEntry{key: e.key, lbl: e.lbl}
		c.m[e.key] = ne
		c.pushFront(ne)
		if len(c.m) > c.cap {
			c.evictOldest()
		}
	}
	return c
}

// Factor returns the factor the cache serves.
func (c *LabelCache) Factor() *Factor { return c.f }

// Label returns the 2-hop label of original vertex u, computing and
// inserting it on a miss. The returned label is shared and must be
// treated as read-only.
func (c *LabelCache) Label(u int) *Label {
	c.mu.Lock()
	if e, ok := c.m[u]; ok {
		c.moveToFront(e)
		c.mu.Unlock()
		c.hits.Add(1)
		return e.lbl
	}
	c.mu.Unlock()
	c.misses.Add(1)
	// Compute outside the lock: concurrent misses on different vertices
	// proceed in parallel. A duplicate compute for the same vertex is
	// idempotent; the first insert wins.
	lbl := c.f.ComputeLabel(u)
	c.mu.Lock()
	if e, ok := c.m[u]; ok {
		c.moveToFront(e)
		lbl = e.lbl
	} else {
		e := &cacheEntry{key: u, lbl: lbl}
		c.m[u] = e
		c.pushFront(e)
		if len(c.m) > c.cap {
			c.evictOldest()
		}
	}
	c.mu.Unlock()
	return lbl
}

// Dist answers a point-to-point distance query from cached labels. When
// both labels are cached the query allocates nothing.
func (c *LabelCache) Dist(u, v int) float64 {
	return c.f.MeetLabels(c.Label(u), c.Label(v))
}

// CacheStats is a snapshot of cache effectiveness counters.
type CacheStats struct {
	Hits, Misses uint64
	Size, Cap    int
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a consistent snapshot of the cache counters.
func (c *LabelCache) Stats() CacheStats {
	c.mu.Lock()
	size := len(c.m)
	c.mu.Unlock()
	return CacheStats{
		Hits:   c.hits.Load(),
		Misses: c.misses.Load(),
		Size:   size,
		Cap:    c.cap,
	}
}

// The list helpers below run under c.mu.

func (c *LabelCache) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *LabelCache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	// Unlink (e is not the head, so e.prev != nil).
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev = nil
	e.next = c.head
	c.head.prev = e
	c.head = e
}

func (c *LabelCache) evictOldest() {
	e := c.tail
	if e == nil {
		return
	}
	c.tail = e.prev
	if c.tail != nil {
		c.tail.next = nil
	} else {
		c.head = nil
	}
	e.prev, e.next = nil, nil
	delete(c.m, e.key)
}
