package core

// Binary serialization for the supernodal factor. A factor computed once
// for a large graph (e.g. a road network) can be written to disk and
// later restored cheaply for query serving, without the graph, the
// ordering pipeline, or the partitioner — the checkpoint that makes the
// expensive factorization a durable, recoverable artifact.
//
// Format v3 (little-endian):
//
//	magic "SFWF", u32 version
//	-- checksummed body starts here --
//	u8 semiring id (0 = min-plus, 1 = max-min)
//	u64 factor generation, u64 graph digest
//	u64 overlay count, overlay: count × (u64 u, u64 v, f64 w)
//	u64 n, u64 #supernodes
//	perm:  n × u64
//	per supernode: u64 lo, hi, subLo, parent+1
//	per supernode: diag (s×s f64), up (s×anc f64), down (anc×s f64)
//	-- checksummed body ends here --
//	u64 CRC64/ECMA of the body
//
// v3 extends v2 with checkpoint metadata inside the checksummed body:
// the live-update generation the factor had when snapshotted, a digest
// of the base graph it was factored from (so a worker never warm-boots
// a checkpoint for a different graph), and the edge-weight overlay —
// the edges whose current weight differs from the base graph — which
// reseeds a FactorUpdater so replayed journal batches classify
// decreases/increases against the right weights. v2 files (no meta
// block) still load, at generation 0 with an empty overlay.
//
// Matrix dimensions are reconstructed from the supernode structure, so
// only raw payloads are stored. The trailing checksum covers every body
// byte: a truncated file fails with an io error before the trailer is
// reached, and a bit flip anywhere in the body fails the CRC compare —
// either way ReadFactor rejects the checkpoint instead of serving
// corrupt distances.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/semiring"
	"repro/internal/symbolic"
)

const factorMagic = "SFWF"
const (
	factorVersionV2 = 2
	factorVersion   = 3
)

// maxOverlayEdges caps the v3 overlay so a crafted count field cannot
// drive a huge allocation before the checksum is verified.
const maxOverlayEdges = 1 << 26

// CheckpointMeta is the v3 recovery metadata embedded (checksummed)
// in a factor checkpoint.
type CheckpointMeta struct {
	// Generation is the live-update generation of the snapshotted
	// factor; boot generation is 1, so 0 means "legacy v2 checkpoint,
	// generation unknown".
	Generation uint64
	// GraphDigest identifies the base graph (GraphDigest of the catalog
	// graph the factor was built from). Validate rejects a checkpoint
	// whose digest does not match the graph being served.
	GraphDigest uint64
	// Overlay lists edges whose absolute weight differs from the base
	// graph after the updates baked into the factor — the state needed
	// to reseed a FactorUpdater on warm boot.
	Overlay []EdgeDelta
}

// Validate checks the meta block against the graph a worker intends to
// serve: the digest must match and a meta-bearing checkpoint must
// carry a live generation.
func (m CheckpointMeta) Validate(wantDigest uint64) error {
	if m.GraphDigest != wantDigest {
		return fmt.Errorf("core: checkpoint is for a different graph (digest %016x, want %016x)", m.GraphDigest, wantDigest)
	}
	if m.Generation == 0 {
		return fmt.Errorf("core: checkpoint has no factor generation (legacy v2 file?)")
	}
	return nil
}

// GraphDigest fingerprints a graph for checkpoint validation: CRC64
// over the vertex count and the sorted undirected edge list (weights
// bit-exact). Two graphs with the same digest are the same base for
// update-replay purposes.
func GraphDigest(g *graph.Graph) uint64 {
	edges := g.Edges()
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].U != edges[b].U {
			return edges[a].U < edges[b].U
		}
		return edges[a].V < edges[b].V
	})
	h := crc64.New(factorCRCTable)
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(g.N))
	h.Write(b[:])
	for _, e := range edges {
		binary.LittleEndian.PutUint64(b[:], uint64(e.U))
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], uint64(e.V))
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(e.W))
		h.Write(b[:])
	}
	return h.Sum64()
}

// factorCRCTable is the CRC64 polynomial used by the checkpoint trailer.
var factorCRCTable = crc64.MakeTable(crc64.ECMA)

func semiringID(K *semiring.Kernels) (uint8, error) {
	switch K {
	case semiring.MinPlusKernels:
		return 0, nil
	case semiring.MaxMinKernels:
		return 1, nil
	}
	return 0, fmt.Errorf("core: cannot serialize custom semiring %q", K.Name)
}

func semiringByID(id uint8) (*semiring.Kernels, error) {
	switch id {
	case 0:
		return semiring.MinPlusKernels, nil
	case 1:
		return semiring.MaxMinKernels, nil
	}
	return nil, fmt.Errorf("core: unknown semiring id %d", id)
}

// WriteTo serializes the factor with a trailing CRC64 checksum and an
// empty meta block (generation/digest zero). It implements
// io.WriterTo; durable serving paths use WriteFactorMeta instead.
func (f *Factor) WriteTo(w io.Writer) (int64, error) {
	return WriteFactorMeta(w, f, CheckpointMeta{})
}

// WriteFactorMeta serializes the factor in the v3 format with the
// given recovery metadata. The "core.factorio.write" failpoint sits
// under the buffering so chaos tests can tear checkpoints mid-write.
func WriteFactorMeta(w io.Writer, f *Factor, meta CheckpointMeta) (int64, error) {
	bw := bufio.NewWriterSize(fault.Writer("core.factorio.write", w), 1<<20)
	cw := &countWriter{w: bw}
	sid, err := semiringID(f.K)
	if err != nil {
		return 0, err
	}
	if _, err := cw.Write([]byte(factorMagic)); err != nil {
		return cw.n, err
	}
	if err := writeU32(cw, factorVersion); err != nil {
		return cw.n, err
	}
	// Everything after the 8-byte header is checksummed: tee body writes
	// into the CRC as they stream out.
	h := crc64.New(factorCRCTable)
	hw := io.MultiWriter(cw, h)
	if _, err := hw.Write([]byte{sid}); err != nil {
		return cw.n, err
	}
	if err := writeU64s(hw, meta.Generation, meta.GraphDigest, uint64(len(meta.Overlay))); err != nil {
		return cw.n, err
	}
	for _, d := range meta.Overlay {
		if err := writeU64s(hw, uint64(d.U), uint64(d.V), math.Float64bits(d.W)); err != nil {
			return cw.n, err
		}
	}
	ns := f.sn.NumSupernodes()
	if err := writeU64s(hw, uint64(f.n), uint64(ns)); err != nil {
		return cw.n, err
	}
	for _, p := range f.perm {
		if err := writeU64s(hw, uint64(p)); err != nil {
			return cw.n, err
		}
	}
	for k := 0; k < ns; k++ {
		r := f.sn.Ranges[k]
		if err := writeU64s(hw, uint64(r.Lo), uint64(r.Hi), uint64(f.sn.SubLo[k]), uint64(f.sn.Parent[k]+1)); err != nil {
			return cw.n, err
		}
	}
	for k := 0; k < ns; k++ {
		for _, m := range []semiring.Mat{f.diag[k], f.up[k], f.down[k]} {
			if err := writeFloats(hw, m.Data); err != nil {
				return cw.n, err
			}
		}
	}
	// Trailer: the body checksum itself, outside the checksummed range.
	if err := writeU64s(cw, h.Sum64()); err != nil {
		return cw.n, err
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadFactor deserializes a factor written by WriteTo, verifying the
// trailing checksum: truncated or bit-flipped checkpoints are rejected
// with an error rather than restored into a silently corrupt factor.
// Recovery metadata is discarded; durable paths use ReadFactorMeta.
func ReadFactor(r io.Reader) (*Factor, error) {
	f, _, err := ReadFactorMeta(r)
	return f, err
}

// ReadFactorMeta deserializes a factor plus its recovery metadata.
// Both the current v3 format and legacy v2 files are accepted; a v2
// file yields a zero CheckpointMeta (generation 0, no overlay), which
// callers treat as "pre-durability checkpoint".
func ReadFactorMeta(r io.Reader) (*Factor, CheckpointMeta, error) {
	var meta CheckpointMeta
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, 4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, meta, err
	}
	if string(head) != factorMagic {
		return nil, meta, fmt.Errorf("core: not a factor file (magic %q)", head)
	}
	ver, err := readU32(br)
	if err != nil {
		return nil, meta, err
	}
	if ver != factorVersion && ver != factorVersionV2 {
		return nil, meta, fmt.Errorf("core: unsupported factor version %d (this build reads v%d and v%d)", ver, factorVersionV2, factorVersion)
	}
	// Mirror the writer: every body byte flows through the CRC so the
	// trailer can be verified once parsing succeeds.
	h := crc64.New(factorCRCTable)
	hr := io.TeeReader(br, h)
	sidBuf := make([]byte, 1)
	if _, err := io.ReadFull(hr, sidBuf); err != nil {
		return nil, meta, err
	}
	K, err := semiringByID(sidBuf[0])
	if err != nil {
		return nil, meta, err
	}
	if ver >= factorVersion {
		gen, err1 := readU64(hr)
		dig, err2 := readU64(hr)
		cnt, err3 := readU64(hr)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, meta, fmt.Errorf("core: truncated checkpoint meta block")
		}
		if cnt > maxOverlayEdges {
			return nil, meta, fmt.Errorf("core: corrupt checkpoint meta (overlay count %d)", cnt)
		}
		meta.Generation, meta.GraphDigest = gen, dig
		if cnt > 0 {
			meta.Overlay = make([]EdgeDelta, cnt)
			for i := range meta.Overlay {
				u, err1 := readU64(hr)
				v, err2 := readU64(hr)
				wb, err3 := readU64(hr)
				if err1 != nil || err2 != nil || err3 != nil {
					return nil, meta, fmt.Errorf("core: truncated checkpoint overlay")
				}
				if u > 1<<24 || v > 1<<24 {
					return nil, meta, fmt.Errorf("core: corrupt checkpoint overlay edge (%d,%d)", u, v)
				}
				meta.Overlay[i] = EdgeDelta{U: int(u), V: int(v), W: math.Float64frombits(wb)}
			}
		}
	}
	n64, err := readU64(hr)
	if err != nil {
		return nil, meta, err
	}
	ns64, err := readU64(hr)
	if err != nil {
		return nil, meta, err
	}
	n, ns := int(n64), int(ns64)
	// The 2^24 cap is far above any graph this library can solve (the
	// factor of a 16M-vertex graph would not fit in memory anyway) and
	// stops crafted headers from driving huge allocations.
	if n < 0 || ns < 0 || ns > n || n > 1<<24 {
		return nil, meta, fmt.Errorf("core: corrupt factor header (n=%d, ns=%d)", n, ns)
	}
	perm := make([]int, n)
	for i := range perm {
		v, err := readU64(hr)
		if err != nil {
			return nil, meta, err
		}
		perm[i] = int(v)
	}
	if !graph.IsPermutation(perm) {
		return nil, meta, fmt.Errorf("core: corrupt factor permutation")
	}
	ranges := make([]symbolic.Range, ns)
	parent := make([]int, ns)
	subLo := make([]int, ns)
	for k := 0; k < ns; k++ {
		lo, err1 := readU64(hr)
		hi, err2 := readU64(hr)
		sl, err3 := readU64(hr)
		pp, err4 := readU64(hr)
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return nil, meta, fmt.Errorf("core: truncated supernode table")
		}
		ranges[k] = symbolic.Range{Lo: int(lo), Hi: int(hi)}
		subLo[k] = int(sl)
		parent[k] = int(pp) - 1
		if parent[k] >= ns || int(hi) > n || int(lo) > int(hi) {
			return nil, meta, fmt.Errorf("core: corrupt supernode %d", k)
		}
	}
	sn := symbolic.New(ranges, parent, subLo)
	if msg := sn.Check(); msg != "" {
		return nil, meta, fmt.Errorf("core: corrupt supernode structure: %s", msg)
	}
	f := &Factor{
		n:      n,
		perm:   perm,
		iperm:  graph.InversePerm(perm),
		sn:     sn,
		K:      K,
		diag:   make([]semiring.Mat, ns),
		up:     make([]semiring.Mat, ns),
		down:   make([]semiring.Mat, ns),
		ancIDs: make([][]int, ns),
		ancOff: make([][]int, ns),
	}
	for k := 0; k < ns; k++ {
		anc := sn.Ancestors(k)
		off := make([]int, len(anc)+1)
		for i, a := range anc {
			off[i+1] = off[i] + sn.Ranges[a].Size()
		}
		f.ancIDs[k] = anc
		f.ancOff[k] = off
		s := ranges[k].Size()
		total := off[len(anc)]
		f.diag[k] = semiring.Mat{Data: make([]float64, s*s), Stride: s, Rows: s, Cols: s}
		f.up[k] = semiring.Mat{Data: make([]float64, s*total), Stride: total, Rows: s, Cols: total}
		f.down[k] = semiring.Mat{Data: make([]float64, total*s), Stride: s, Rows: total, Cols: s}
		for _, m := range []semiring.Mat{f.diag[k], f.up[k], f.down[k]} {
			if err := readFloats(hr, m.Data); err != nil {
				return nil, meta, fmt.Errorf("core: truncated factor payload: %w", err)
			}
		}
	}
	want := h.Sum64()
	got, err := readU64(br) // trailer is outside the checksummed range
	if err != nil {
		return nil, meta, fmt.Errorf("core: truncated factor checkpoint (missing checksum): %w", err)
	}
	if got != want {
		return nil, meta, fmt.Errorf("core: factor checkpoint checksum mismatch (stored %016x, computed %016x) — file is corrupt", got, want)
	}
	return f, meta, nil
}

// SaveFactorFile atomically checkpoints f to path with an empty meta
// block; see SaveFactorFileMeta.
func SaveFactorFile(path string, f *Factor) error {
	return SaveFactorFileMeta(path, f, CheckpointMeta{})
}

// SaveFactorFileMeta atomically checkpoints f plus recovery metadata
// to path: the factor is written to a temporary file in the same
// directory, synced, and renamed into place, so a crash mid-save never
// leaves a torn checkpoint behind under the final name. The
// "core.factorio.sync" and "core.factorio.rename" failpoints bracket
// the two durability steps for chaos coverage of both crash windows.
func SaveFactorFileMeta(path string, f *Factor, meta CheckpointMeta) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := WriteFactorMeta(tmp, f, meta); err != nil {
		tmp.Close()
		return err
	}
	if err := fault.InjectErr("core.factorio.sync"); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fault.InjectErr("core.factorio.rename"); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadFactorFile restores a factor from a checkpoint written by
// SaveFactorFile (or any WriteTo output), verifying its checksum and
// running Validate before handing it back.
func LoadFactorFile(path string) (*Factor, error) {
	f, _, err := LoadFactorFileMeta(path)
	return f, err
}

// LoadFactorFileMeta restores a factor and its recovery metadata,
// verifying the checksum and running Validate before handing either
// back. Legacy v2 files load with a zero meta block.
func LoadFactorFileMeta(path string) (*Factor, CheckpointMeta, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, CheckpointMeta{}, err
	}
	defer fh.Close()
	f, meta, err := ReadFactorMeta(fh)
	if err != nil {
		return nil, CheckpointMeta{}, fmt.Errorf("core: restoring factor from %s: %w", path, err)
	}
	if err := f.Validate(); err != nil {
		return nil, CheckpointMeta{}, fmt.Errorf("core: restored factor from %s failed validation: %w", path, err)
	}
	return f, meta, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeU64s(w io.Writer, vs ...uint64) error {
	var b [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(b[:], v)
		if _, err := w.Write(b[:]); err != nil {
			return err
		}
	}
	return nil
}

func readU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// writeFloats writes a float64 slice as raw little-endian payload.
func writeFloats(w io.Writer, data []float64) error {
	buf := make([]byte, 8*1024)
	for len(data) > 0 {
		chunk := len(data)
		if chunk > 1024 {
			chunk = 1024
		}
		for i := 0; i < chunk; i++ {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(data[i]))
		}
		if _, err := w.Write(buf[:8*chunk]); err != nil {
			return err
		}
		data = data[chunk:]
	}
	return nil
}

func readFloats(r io.Reader, data []float64) error {
	buf := make([]byte, 8*1024)
	for len(data) > 0 {
		chunk := len(data)
		if chunk > 1024 {
			chunk = 1024
		}
		if _, err := io.ReadFull(r, buf[:8*chunk]); err != nil {
			return err
		}
		for i := 0; i < chunk; i++ {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		data = data[chunk:]
	}
	return nil
}
