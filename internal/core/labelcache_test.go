package core

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/semiring"
)

func cacheFixture(t testing.TB) (*Factor, *LabelCache, semiring.Mat) {
	t.Helper()
	g := gen.RoadNetwork(12, 12, 0.3, 91)
	want := Closure(g.ToDense())
	plan, err := NewPlan(g, Options{Ordering: OrderND, MaxBlock: 16, LeafSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactor(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	return f, NewLabelCache(f, 0), want
}

func TestLabelCacheDistMatchesDense(t *testing.T) {
	f, c, want := cacheFixture(t)
	n := f.N()
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 500; q++ {
		u, v := rng.Intn(n), rng.Intn(n)
		got := c.Dist(u, v)
		if w := want.At(u, v); math.Abs(got-w) > 1e-9 {
			t.Fatalf("cached Dist(%d,%d) = %g, want %g", u, v, got, w)
		}
		if direct := f.Dist(u, v); got != direct {
			t.Fatalf("cached Dist(%d,%d) = %g, uncached = %g", u, v, got, direct)
		}
	}
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses on 500 random queries: %+v", st)
	}
	if st.Size > st.Cap {
		t.Fatalf("cache size %d exceeds capacity %d", st.Size, st.Cap)
	}
}

func TestLabelCacheLRUEviction(t *testing.T) {
	f, _, _ := cacheFixture(t)
	c := NewLabelCache(f, 3)
	for _, u := range []int{0, 1, 2} {
		c.Label(u)
	}
	c.Label(0)          // 0 is now most recent; LRU order is 0, 2, 1
	c.Label(3)          // evicts 1
	before := c.Stats() // 1 hit (the re-touch of 0), 4 misses
	c.Label(0)          // still cached
	c.Label(2)          // still cached
	c.Label(1)          // evicted: miss again
	after := c.Stats()
	if after.Hits-before.Hits != 2 || after.Misses-before.Misses != 1 {
		t.Fatalf("LRU order wrong: before %+v after %+v", before, after)
	}
	if after.Size != 3 || after.Cap != 3 {
		t.Fatalf("size/cap wrong: %+v", after)
	}
}

func TestLabelCacheSharedLabelIdentity(t *testing.T) {
	_, c, _ := cacheFixture(t)
	a := c.Label(5)
	b := c.Label(5)
	if a != b {
		t.Fatal("repeated lookups must return the shared cached label")
	}
}

// TestLabelCacheConcurrent hammers the cache from many goroutines with a
// deliberately small capacity so hits, misses, insert races, and
// evictions all interleave; run under -race via the core race job.
func TestLabelCacheConcurrent(t *testing.T) {
	f, _, want := cacheFixture(t)
	c := NewLabelCache(f, 16)
	n := f.N()
	workers := runtime.GOMAXPROCS(0) * 2
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 300; q++ {
				u, v := rng.Intn(n), rng.Intn(n)
				got := c.Dist(u, v)
				if wv := want.At(u, v); math.Abs(got-wv) > 1e-9 {
					select {
					case errs <- "concurrent Dist mismatch":
					default:
					}
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	if msg, open := <-errs; open {
		t.Fatal(msg)
	}
	if st := c.Stats(); st.Size > st.Cap {
		t.Fatalf("cache overflow under concurrency: %+v", st)
	}
}

// TestLabelCacheDistHitZeroAlloc pins the acceptance criterion: once both
// labels are cached, a point query allocates nothing.
func TestLabelCacheDistHitZeroAlloc(t *testing.T) {
	_, c, _ := cacheFixture(t)
	c.Dist(3, 77) // warm both labels
	allocs := testing.AllocsPerRun(200, func() {
		c.Dist(3, 77)
	})
	if allocs != 0 {
		t.Fatalf("cached Dist allocates %.1f objects per query, want 0", allocs)
	}
}

func TestSSSPIntoReusesRow(t *testing.T) {
	f, _, want := cacheFixture(t)
	n := f.N()
	row := make([]float64, n)
	for src := 0; src < n; src += 13 {
		f.SSSPInto(src, row)
		for v := 0; v < n; v++ {
			if x, y := row[v], want.At(src, v); math.Abs(x-y) > 1e-9 {
				t.Fatalf("SSSPInto(%d)[%d] = %g, want %g", src, v, x, y)
			}
		}
	}
	// Steady state: the sweep scratch comes from the pool, so only the
	// pool's pointer box remains; a reused row must stay allocation-light.
	f.SSSPInto(0, row)
	allocs := testing.AllocsPerRun(50, func() {
		f.SSSPInto(1, row)
	})
	if allocs > 2 {
		t.Fatalf("SSSPInto allocates %.1f objects per query with a reused row, want <= 2", allocs)
	}
}

func BenchmarkLabelCacheDistHit(b *testing.B) {
	_, c, _ := cacheFixture(b)
	c.Dist(3, 77)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Dist(3, 77)
	}
}

// BenchmarkDistUncached is the seed query path: two fresh label
// computations per query. The ratio against BenchmarkLabelCacheDistHit
// is the per-query speedup the serving layer banks on.
func BenchmarkDistUncached(b *testing.B) {
	f, _, _ := cacheFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Dist(3, 77)
	}
}
