// Package core implements the paper's primary contribution: the
// supernodal Floyd-Warshall algorithm (SuperFw, Algorithm 3) for
// all-pairs shortest paths on sparse graphs.
//
// A Plan captures the symbolic phase — fill-reducing ordering, symbolic
// analysis, supernode extraction, and the elimination-tree level schedule
// — and can then be executed (numerically) any number of times, matching
// the analyze/factorize split of sparse direct solvers.
//
// Eliminating supernode k touches only the index set
// R(k) = D(k) ∪ {k} ∪ A(k): its etree descendants (a contiguous index
// range, because orderings are postorders) and its etree ancestors (the
// root path). The three update steps are
//
//	DiagUpdate:  A(k,k) ← FW(A(k,k))
//	PanelUpdate: A(r,k) ← A(r,k) ⊕ A(r,k)⊗A(k,k),  A(k,r) ← A(k,r) ⊕ A(k,k)⊗A(k,r)
//	OuterUpdate: A(ri,rj) ← A(ri,rj) ⊕ A(ri,k)⊗A(k,rj)   for ri,rj ∈ R(k)
//
// all running on dense blocks of one dense Dist matrix held in permuted
// order. (The paper's output is the dense distance matrix; its supernodal
// block-sparse structure organizes the same updates. Because the ancestor
// set A(k) is a chain, every block SuperFw touches lies in the symbolic
// fill pattern, so dense backing adds no asymptotic work.)
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/semiring"
	"repro/internal/symbolic"
)

// OrderingKind selects the fill-reducing ordering of a Plan.
type OrderingKind int

const (
	// OrderND is nested dissection via the multilevel partitioner — the
	// paper's default (METIS) configuration.
	OrderND OrderingKind = iota
	// OrderBFS is breadth-first discovery order — the SuperBfs baseline:
	// no fill-reducing ordering, but full symbolic analysis and
	// supernodal structure.
	OrderBFS
	// OrderRCM is reverse Cuthill-McKee (ablation point).
	OrderRCM
	// OrderNatural keeps the input ordering (ablation point).
	OrderNatural
	// OrderCustom uses Options.Custom.
	OrderCustom
	// OrderMinDegree is quotient-graph minimum degree — the other
	// classic fill-reducing family (ablation point: good fill, but an
	// unbalanced elimination tree with less etree parallelism than ND).
	OrderMinDegree
)

func (k OrderingKind) String() string {
	switch k {
	case OrderND:
		return "nd"
	case OrderBFS:
		return "bfs"
	case OrderRCM:
		return "rcm"
	case OrderNatural:
		return "natural"
	case OrderCustom:
		return "custom"
	case OrderMinDegree:
		return "mindegree"
	}
	return fmt.Sprintf("OrderingKind(%d)", int(k))
}

// ScheduleKind selects how supernode eliminations are ordered across
// workers when etree parallelism is on.
type ScheduleKind int

const (
	// ScheduleDAG (default) is dependency-driven scheduling: every
	// supernode carries a pending-children counter derived from the
	// supernodal etree, leaves seed a ready queue, and completing a
	// supernode enqueues its parent as soon as the last sibling finishes.
	// There are no inter-level barriers; a pool of `threads` workers
	// pulls ready supernodes, and intra-supernode parallelism kicks in
	// only when the ready set is narrower than the pool.
	ScheduleDAG ScheduleKind = iota
	// ScheduleLevel is the paper's level-synchronous schedule: cousins
	// within one etree level are eliminated concurrently with a full
	// barrier between levels and a static threads/width split of the
	// intra-supernode parallelism. Kept for comparison (Fig 8) and for
	// per-barrier profiling.
	ScheduleLevel
)

func (s ScheduleKind) String() string {
	switch s {
	case ScheduleDAG:
		return "dag"
	case ScheduleLevel:
		return "level"
	}
	return fmt.Sprintf("ScheduleKind(%d)", int(s))
}

// Options configure plan construction and execution defaults.
type Options struct {
	// Ordering selects the fill-reducing ordering (default OrderND).
	Ordering OrderingKind
	// Custom supplies a prebuilt ordering when Ordering == OrderCustom.
	// If Custom.Tree is non-nil it is used directly as the separator
	// tree; otherwise symbolic analysis derives the elimination tree.
	Custom *order.Ordering
	// MaxBlock caps supernode block size (default 128).
	MaxBlock int
	// LeafSize stops nested dissection below this region size
	// (default 64).
	LeafSize int
	// Seed drives the randomized phases of the partitioner.
	Seed int64
	// Threads is the default execution parallelism (≤0: GOMAXPROCS).
	Threads int
	// EtreeParallel enables elimination-tree parallelism, the paper's
	// cousin parallelism (default true via NewPlan; Fig 8 ablates it).
	// With it disabled, supernodes are eliminated one at a time and only
	// intra-supernode parallelism remains.
	EtreeParallel bool
	// Schedule picks the inter-supernode schedule used when
	// EtreeParallel is on: dependency-driven DAG scheduling (the
	// default) or the level-synchronous barrier schedule.
	Schedule ScheduleKind
	// FundamentalSupernodes restricts symbolically-derived supernodes
	// (BFS/RCM/Natural orderings) to exact fundamental supernodes
	// instead of relaxed etree chains. The engine's reach sets are
	// identical either way; fundamental supernodes are smaller, trading
	// kernel blocking for structural exactness (ablation knob).
	FundamentalSupernodes bool
	// TrackPaths maintains a next-hop matrix alongside distances so
	// Result.Path can reconstruct shortest paths. Costs one n² int32
	// array and roughly doubles kernel time. Path extraction assumes
	// positive edge weights (zero-weight cycles would make next-hop
	// walks ambiguous); extraction guards with a hop budget regardless.
	TrackPaths bool
	// Semiring selects the path algebra the numeric phase runs over
	// (nil: semiring.MinPlusKernels, i.e. shortest paths). The symbolic
	// phase is algebra-independent — sparsity is a property of the
	// pattern — so the same plan solves shortest paths and, with
	// semiring.MaxMinKernels, widest (maximum-bottleneck) paths.
	Semiring *semiring.Kernels
	// Context, when non-nil, is the default cancellation context of the
	// numeric phase: Solve, SolveInitMatrix, and NewFactor check it
	// cooperatively at supernode granularity and return ctx.Err() when
	// it is cancelled or past its deadline. The *Ctx entry points
	// (SolveCtx, NewFactorCtx) override it per call. nil means no
	// cancellation (context.Background()).
	Context context.Context
	// ExactReach refines the ancestor side of Algorithm 3's reach set:
	// R(k) = D(k) ∪ struct(k) instead of D(k) ∪ A(k), where struct(k)
	// is the exact supernodal block structure from symbolic
	// factorization. Ancestors outside struct(k) have all-∞ panels at
	// elimination time, so skipping them changes nothing; for balanced
	// ND trees A(k) ≈ struct(k), but for unbalanced etrees (BFS, min
	// degree, natural orderings) the exact structure can be far
	// smaller. (The descendant side must stay whole: distance-matrix
	// updates legitimately create finite entries outside the symbolic
	// fill.)
	ExactReach bool
}

// context resolves the options' cancellation context.
func (o Options) context() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o Options) withDefaults() Options {
	if o.MaxBlock <= 0 {
		o.MaxBlock = 128
	}
	if o.LeafSize <= 0 {
		o.LeafSize = 64
	}
	if o.Semiring == nil {
		o.Semiring = semiring.MinPlusKernels
	}
	return o
}

// DefaultOptions returns the paper's default configuration: nested
// dissection, supernodal blocking, etree parallelism.
func DefaultOptions() Options {
	return Options{Ordering: OrderND, EtreeParallel: true}
}

// Plan is the symbolic phase of SuperFw: ordering plus supernodal
// elimination structure for one graph.
type Plan struct {
	G     *graph.Graph // original graph
	PG    *graph.Graph // graph permuted into elimination order
	Perm  []int        // Perm[new] = old
	IPerm []int        // IPerm[old] = new
	Sn    *symbolic.Supernodes
	Opts  Options

	// TopSep is the top-level separator size (0 when the ordering is
	// not dissection-based).
	TopSep int
	// upStruct[k] lists the ancestors in k's exact block structure
	// (only when ExactReach).
	upStruct [][]int32
	// FillCount is the symbolic factor fill (only computed for
	// etree-derived plans; -1 otherwise).
	FillCount int64

	// Timing of the symbolic phase, split for the paper's §5.1.4
	// pre-processing overhead accounting.
	OrderTime    time.Duration
	SymbolicTime time.Duration
}

// NewPlan runs the symbolic phase for g under the given options.
func NewPlan(g *graph.Graph, opts Options) (*Plan, error) {
	opts = opts.withDefaults()
	if g.N == 0 {
		return nil, fmt.Errorf("core: empty graph")
	}
	p := &Plan{G: g, Opts: opts, FillCount: -1}

	t0 := time.Now()
	var ord order.Ordering
	switch opts.Ordering {
	case OrderND:
		ord = order.NestedDissection(g, order.NDOptions{LeafSize: opts.LeafSize})
	case OrderBFS:
		ord = order.BFS(g)
	case OrderRCM:
		ord = order.RCM(g)
	case OrderNatural:
		ord = order.Natural(g.N)
	case OrderMinDegree:
		ord = order.MinDegree(g)
	case OrderCustom:
		if opts.Custom == nil {
			return nil, fmt.Errorf("core: OrderCustom requires Options.Custom")
		}
		ord = *opts.Custom
	default:
		return nil, fmt.Errorf("core: unknown ordering %v", opts.Ordering)
	}
	if !graph.IsPermutation(ord.Perm) {
		return nil, fmt.Errorf("core: ordering produced an invalid permutation")
	}
	p.OrderTime = time.Since(t0)

	t1 := time.Now()
	if ord.Tree != nil {
		// Dissection path: the separator tree is the elimination
		// structure; no per-column symbolic factorization is needed.
		p.Perm = ord.Perm
		p.PG = g.Permute(p.Perm)
		p.Sn = symbolic.FromTree(ord.Tree, g.N, opts.MaxBlock)
		p.TopSep = ord.TopSep
	} else {
		// Symbolic path (SuperBfs and ablations): permute, compute the
		// elimination tree, postorder it so subtrees are contiguous,
		// then detect fundamental supernodes from column counts.
		pg1 := g.Permute(ord.Perm)
		parent := symbolic.ETree(pg1)
		post := symbolic.Postorder(parent)
		perm := make([]int, g.N)
		for i, pi := range post {
			perm[i] = ord.Perm[pi]
		}
		p.Perm = perm
		p.PG = g.Permute(perm)
		parent = symbolic.RelabelParent(parent, post)
		structs := symbolic.Fill(p.PG, parent)
		p.FillCount = symbolic.FillCount(structs)
		if opts.FundamentalSupernodes {
			p.Sn = symbolic.FromETree(parent, symbolic.ColCounts(structs), opts.MaxBlock)
		} else {
			p.Sn = symbolic.FromETreeChains(parent, opts.MaxBlock)
		}
	}
	p.IPerm = graph.InversePerm(p.Perm)
	if opts.ExactReach {
		p.upStruct = symbolic.SupernodalStruct(p.PG, p.Sn)
	}
	p.SymbolicTime = time.Since(t1)

	if msg := p.Sn.Check(); msg != "" {
		return nil, fmt.Errorf("core: invalid supernode structure: %s", msg)
	}
	return p, nil
}

// PlannedOps returns the number of fused min-plus operations (one ⊗ plus
// one ⊕ each) the numeric phase will perform: for every supernode of size
// s with reach R = |D(k)|+|A(k)|, s³ (DiagUpdate) + 2·s²·R (PanelUpdate)
// + s·R² (OuterUpdate). This is the W(n) = n²|S| quantity of the paper's
// Table 2, measured exactly instead of asymptotically.
func (p *Plan) PlannedOps() int64 {
	var total int64
	for k, r := range p.Sn.Ranges {
		s := int64(r.Size())
		reach := p.reachSize(k)
		total += s*s*s + 2*s*s*reach + s*reach*reach
	}
	return total
}

// reachSize returns |R(k)\{k}| under the plan's reach mode.
func (p *Plan) reachSize(k int) int64 {
	r := p.Sn.Ranges[k]
	reach := int64(r.Lo - p.Sn.SubLo[k])
	if p.upStruct != nil {
		for _, a := range p.upStruct[k] {
			reach += int64(p.Sn.Ranges[a].Size())
		}
		return reach
	}
	for _, a := range p.Sn.Ancestors(k) {
		reach += int64(p.Sn.Ranges[a].Size())
	}
	return reach
}

// CriticalPathOps returns the fused-op count along the longest
// root-to-leaf dependency chain of the elimination tree — the D(n) depth
// proxy of Table 2: with unbounded processors, levels run one after
// another and each level costs its most expensive supernode.
func (p *Plan) CriticalPathOps() int64 {
	var total int64
	for _, level := range p.Sn.Levels {
		var worst int64
		for _, k := range level {
			s := int64(p.Sn.Ranges[k].Size())
			// With O(n²) processors inside an elimination, panel and
			// outer updates are depth O(s); the diagonal FW is O(s).
			if c := 2 * s; c > worst {
				worst = c
			}
		}
		total += worst
	}
	return total
}

// NumSupernodes returns the supernode count of the plan.
func (p *Plan) NumSupernodes() int { return p.Sn.NumSupernodes() }

// Result is a solved APSP instance. Distances are stored in elimination
// order; At translates original vertex ids.
type Result struct {
	// D is the closed distance matrix in permuted (elimination) order.
	D semiring.Mat
	// Next is the next-hop matrix in permuted order (only when the plan
	// was built with TrackPaths; zero-value otherwise).
	Next semiring.IntMat
	// Perm / IPerm relate permuted to original vertex ids.
	Perm, IPerm []int
	// NumericTime is the wall time of the numeric phase.
	NumericTime time.Duration
	// Kernel holds the GEMM-engine counter deltas spanning this solve's
	// numeric phase: call counts, dense-vs-stream dispatch split, fused
	// element updates and packed bytes (see semiring.KernelCounters).
	// The counters are process-global, so solves running concurrently in
	// the same process fold into each other's deltas.
	Kernel semiring.KernelCounters
}

// At returns the shortest-path distance from original vertex u to v
// (+Inf when v is unreachable from u).
func (r *Result) At(u, v int) float64 {
	return r.D.At(r.IPerm[u], r.IPerm[v])
}

// Dense returns the distance matrix reindexed to original vertex order.
func (r *Result) Dense() semiring.Mat {
	n := r.D.Rows
	out := semiring.NewMat(n, n)
	semiring.Permute(out, r.D, r.IPerm)
	return out
}

// HasNegativeCycle reports whether the solve uncovered a negative cycle
// (negative diagonal entry).
func (r *Result) HasNegativeCycle() bool { return semiring.HasNegativeCycle(r.D) }

// Path returns the vertices of a shortest path from u to v in original
// ids (inclusive of both endpoints), or ok=false when v is unreachable
// from u. The plan must have been built with Options.TrackPaths.
func (r *Result) Path(u, v int) (path []int, ok bool) {
	if r.Next.Data == nil {
		panic("core: Result.Path requires Options.TrackPaths")
	}
	pu, pv := r.IPerm[u], r.IPerm[v]
	if u == v {
		return []int{u}, true
	}
	if r.D.At(pu, pv) == semiring.Inf {
		return nil, false
	}
	n := r.D.Rows
	path = append(path, u)
	cur := pu
	for cur != pv {
		hop := r.Next.At(cur, pv)
		if hop < 0 || len(path) > n {
			// Inconsistent next-hop chain: only possible with zero-weight
			// cycles or a corrupted matrix; fail soft.
			return nil, false
		}
		cur = int(hop)
		path = append(path, r.Perm[cur])
	}
	return path, true
}

// PathWeight returns the total weight of the path according to the
// closed distance matrix (a convenience equal to At(u, v)).
func (r *Result) PathWeight(u, v int) float64 { return r.At(u, v) }
