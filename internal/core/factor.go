package core

// Supernodal semiring factorization with O(fill) memory.
//
// The dense SuperFw solver materializes the full n×n distance matrix —
// the paper's own memory wall (105 GB for its largest graph). But the
// paper also observes that at the end of elimination "the supernodal
// matrix contains the semiring equivalent of Cholesky factors". This
// file computes exactly that object WITHOUT the dense matrix: for every
// supernode k, the closed diagonal block and the two panels against k's
// ancestor path
//
//	diag[k] = F(k, k)    up[k] = F(k, A(k))    down[k] = F(A(k), k)
//
// where F(i, j) holds the length of the shortest i→j path whose
// intermediates all precede min(i,j)'s supernode — the semiring analogue
// of the LU factors (Carré 1971). Factor-only elimination performs the
// DiagUpdate, PanelUpdate and the A(k)×A(k) part of the OuterUpdate of
// Algorithm 3, skipping every update that touches descendants; because
// the ancestor set is a chain, every A×A block lands inside some future
// panel, so the working set is the factor itself: O(supernodal fill)
// memory instead of n².
//
// Queries use the elimination-tree two-phase sweep (the semiring
// triangular solves):
//
//	up    d[A(k)] ⊕= d[k] ⊗ up[k]      k ascending   (only k on src's root path)
//	down  d[k] ⊕= down[k] ⊗ d[A(k)]    k descending  (all supernodes)
//
// which is correct because every shortest path decomposes at its
// maximum-index vertex h into an index-ascending prefix and an
// index-descending suffix, both inside the filled pattern — h is a
// common etree ancestor of the endpoints. The same decomposition yields
// 2-hop-labeling point queries: Label(u) (distances from u to its root
// path) meets the reverse label of v on the shared ancestor suffix.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/par"
	"repro/internal/semiring"
	"repro/internal/symbolic"
)

// Factor is the supernodal semiring factor of a plan's graph. It is
// self-contained (it copies the permutation and supernode structure from
// the plan), so it can be serialized and later queried without the plan
// or the graph.
type Factor struct {
	n     int
	perm  []int // perm[new] = old
	iperm []int // iperm[old] = new
	sn    *symbolic.Supernodes
	K     *semiring.Kernels
	// per supernode k:
	diag []semiring.Mat // s×s, closed
	up   []semiring.Mat // s × ancTotal: F(k, ancestors), ancestor ranges concatenated ascending
	down []semiring.Mat // ancTotal × s: F(ancestors, k)
	// ancIDs[k] lists k's ancestor supernodes (ascending); ancOff[k][i]
	// is the column offset of ancIDs[k][i] inside up[k] (row offset in
	// down[k]); ancOff[k][len] is the total ancestor width.
	ancIDs [][]int
	ancOff [][]int

	// sweep pools n-length scratch vectors for the SSSP etree sweeps so
	// steady-state query serving does not allocate per query. Entries are
	// *[]float64 reset to K.Zero before reuse. Not serialized.
	sweep sync.Pool

	// FactorTime is the wall time of the numeric factorization.
	FactorTime time.Duration
}

// snodeOf returns the supernode containing permuted vertex v.
func (p *Plan) snodeOf(v int) int { return snodeOfRanges(p.Sn.Ranges, v) }

func snodeOfRanges(ranges []symbolic.Range, v int) int {
	// Binary search over the ascending supernode ranges.
	lo, hi := 0, len(ranges)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if ranges[mid].Hi <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (f *Factor) snodeOf(v int) int { return snodeOfRanges(f.sn.Ranges, v) }

// N returns the number of vertices the factor covers.
func (f *Factor) N() int { return f.n }

// Memory returns the factor's matrix storage in bytes — the quantity to
// compare against the dense solver's 8n² (plus 4n² with path tracking).
func (f *Factor) Memory() int64 {
	var total int64
	for k := range f.diag {
		total += int64(len(f.diag[k].Data) + len(f.up[k].Data) + len(f.down[k].Data))
	}
	return total * 8
}

// Validate performs cheap sanity checks on a factor before it is put in
// front of traffic — the last line of defense when restoring from a
// checkpoint or swapping a freshly built factor into a server. It
// verifies the supernode structure and probes one query invariant: the
// self-distance of vertex 0 must be the semiring identity (0 for
// min-plus, +Inf for max-min).
func (f *Factor) Validate() error {
	if f.n <= 0 || len(f.perm) != f.n || len(f.iperm) != f.n {
		return fmt.Errorf("core: factor covers %d vertices with %d-entry permutation", f.n, len(f.perm))
	}
	if msg := f.sn.Check(); msg != "" {
		return fmt.Errorf("core: factor supernode structure: %s", msg)
	}
	if d := f.Dist(0, 0); d != f.K.One {
		return fmt.Errorf("core: factor self-distance at vertex 0 is %v, want %v", d, f.K.One)
	}
	return nil
}

// NewFactor runs the factor-only elimination for the plan's graph over
// the plan's semiring. threads ≤ 0 uses GOMAXPROCS. When
// Options.Context is set it is honored as the cancellation context.
func NewFactor(p *Plan, threads int) (*Factor, error) {
	return NewFactorCtx(p.Opts.context(), p, threads)
}

// NewFactorCtx is NewFactor with an explicit cancellation context,
// checked cooperatively at supernode granularity: a cancelled or expired
// context aborts the factorization promptly and returns ctx.Err().
func NewFactorCtx(ctx context.Context, p *Plan, threads int) (*Factor, error) {
	if p.Opts.TrackPaths {
		return nil, fmt.Errorf("core: factor solves do not support path tracking")
	}
	threads = par.DefaultThreads(threads)
	K := p.Opts.Semiring
	sn := p.Sn
	ns := sn.NumSupernodes()
	f := &Factor{
		n:      p.G.N,
		perm:   p.Perm,
		iperm:  p.IPerm,
		sn:     sn,
		K:      K,
		diag:   make([]semiring.Mat, ns),
		up:     make([]semiring.Mat, ns),
		down:   make([]semiring.Mat, ns),
		ancIDs: make([][]int, ns),
		ancOff: make([][]int, ns),
	}
	// Allocate and initialize from the permuted graph.
	for k := 0; k < ns; k++ {
		r := sn.Ranges[k]
		s := r.Size()
		anc := sn.Ancestors(k)
		off := make([]int, len(anc)+1)
		for i, a := range anc {
			off[i+1] = off[i] + sn.Ranges[a].Size()
		}
		f.ancIDs[k] = anc
		f.ancOff[k] = off
		total := off[len(anc)]
		f.diag[k] = semiring.NewMat(s, s)
		f.diag[k].Fill(K.Zero)
		for i := 0; i < s; i++ {
			f.diag[k].Set(i, i, K.One)
		}
		f.up[k] = semiring.NewMat(s, total)
		f.up[k].Fill(K.Zero)
		f.down[k] = semiring.NewMat(total, s)
		f.down[k].Fill(K.Zero)
	}
	// Scatter edges: an edge {u, v} with snode(u) == snode(v) goes into
	// the diagonal; otherwise it goes into the lower supernode's panels
	// (the higher endpoint is necessarily an ancestor: edges never cross
	// cousin regions under a tree-consistent ordering).
	pg := p.PG
	for u := 0; u < pg.N; u++ {
		ku := p.snodeOf(u)
		lo := sn.Ranges[ku].Lo
		adj, wgt := pg.Neighbors(u)
		for i, v := range adj {
			if v < u {
				continue // handle each edge once from its lower endpoint
			}
			kv := p.snodeOf(v)
			if kv == ku {
				f.diag[ku].Set(u-lo, v-lo, wgt[i])
				f.diag[ku].Set(v-lo, u-lo, wgt[i])
				continue
			}
			// kv must be an ancestor of ku.
			col, ok := f.ancColumn(ku, kv, v)
			if !ok {
				return nil, fmt.Errorf("core: edge (%d,%d) crosses cousin supernodes — ordering is not tree-consistent", u, v)
			}
			f.up[ku].Set(u-lo, col, wgt[i])
			f.down[ku].Set(col, u-lo, wgt[i])
		}
	}

	t0 := time.Now()
	if err := f.factorize(ctx, threads, p.Opts.Schedule); err != nil {
		return nil, err
	}
	f.FactorTime = time.Since(t0)

	if K.DetectNegCycle {
		for k := 0; k < ns; k++ {
			if semiring.HasNegativeCycle(f.diag[k]) {
				return f, fmt.Errorf("core: graph contains a negative-weight cycle")
			}
		}
	}
	return f, nil
}

// ancColumn maps permuted vertex v (inside ancestor supernode a of k) to
// its column inside up[k].
func (f *Factor) ancColumn(k, a, v int) (int, bool) {
	for i, id := range f.ancIDs[k] {
		if id == a {
			return f.ancOff[k][i] + v - f.sn.Ranges[a].Lo, true
		}
	}
	return 0, false
}

// factorize runs the factor-only elimination, parallel over cousins with
// target-block locks on shared ancestor updates. schedule follows the
// same DAG/level split as Plan.eliminate: dependency-driven by default,
// level-synchronous barriers on request. It returns ctx.Err() when the
// context is cancelled mid-elimination; the partial factor must then be
// discarded.
func (f *Factor) factorize(ctx context.Context, threads int, schedule ScheduleKind) error {
	sn := f.sn
	if threads <= 1 {
		cancellable := ctx.Done() != nil
		for k := range sn.Ranges {
			if cancellable {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			par.Do("factorize", k, 1, func(k, w int) { f.eliminate(k, w, nil) })
		}
		return nil
	}
	locks := par.NewStripedMutex(1024)
	if schedule == ScheduleLevel {
		for _, level := range sn.Levels {
			width := len(level)
			inner := threads / width
			if inner < 1 {
				inner = 1
			}
			lk := locks
			if width == 1 {
				lk = nil
			}
			if err := par.ForCtx(ctx, width, threads, 1, func(i int) {
				f.eliminate(level[i], inner, lk)
			}); err != nil {
				return err
			}
		}
		return nil
	}
	// DAG schedule: concurrently running supernodes are always cousins
	// (a parent's pending count transitively waits on its whole subtree),
	// so the supernode-id-keyed ancestor-block locks used by the level
	// schedule serialize exactly the same collisions here.
	lk := locks
	if sn.NumSupernodes() == 1 {
		lk = nil
	}
	return par.RunDAGCtx(ctx, sn.Parent, threads, func(k, inner int) {
		f.eliminate(k, inner, lk)
	})
}

// eliminate processes supernode k: close the diagonal, update the
// panels, and scatter the ancestor×ancestor outer products into the
// ancestors' own factor blocks. On the fused path the closed diagonal
// is packed once and the down-panel update streams over the packed
// tiles; the up-panel update stays on the staged MulAdd because there
// the packed operand would alias the destination (B == C), and the
// staged in-place form is the algorithm.
func (f *Factor) eliminate(k, threads int, locks *par.StripedMutex) {
	fault.Inject("core.factor.eliminate")
	K := f.K
	fused := fusedElim.Load() && K.MulAddPacked != nil
	tDiag := time.Now()
	K.FW(f.diag[k])
	semiring.AddPhaseTime(semiring.PhaseDiag, time.Since(tDiag))
	if f.ancOff[k][len(f.ancIDs[k])] == 0 {
		semiring.CountElimination(fused)
		return
	}
	// Panels (in place; diagonal closed).
	tPanel := time.Now()
	K.MulAdd(f.up[k], f.diag[k], f.up[k]) //lint:ignore aliascheck in-place panel update is closed under min-plus: diag is closed with zero diagonal, so C=A is the algorithm
	if fused {
		Pd := K.PackPanel(f.diag[k])
		K.MulAddPacked(f.down[k], f.down[k], Pd) //lint:ignore aliascheck symmetric in-place panel update; the packed operand is the closed diagonal, which the update never writes
		Pd.Release()
	} else {
		K.MulAdd(f.down[k], f.down[k], f.diag[k]) //lint:ignore aliascheck symmetric in-place panel update against the closed zero-diagonal block
	}
	semiring.AddPhaseTime(semiring.PhasePanel, time.Since(tPanel))

	tOuter := time.Now()
	f.scatterOuter(k, threads, locks, nil)
	semiring.AddPhaseTime(semiring.PhaseOuter, time.Since(tOuter))
	semiring.CountElimination(fused)
}

// scatterOuter applies supernode k's ancestor×ancestor outer products
// onto the ancestors' own factor blocks. Target for (ai, aj):
//
//	ai == aj → diag[ai]
//	ai < aj  → the aj-section of up[ai]  (aj is an ancestor of ai)
//	ai > aj  → the ai-section of down[aj]
//
// Ancestor chains are suffixes of each other, so the section offset
// inside the target panel follows from list positions directly. A
// non-nil ownerFilter restricts the scatter to targets owned by marked
// supernodes — the live-update replay path re-plays a clean supernode's
// contributions into reset (dirty) blocks only, since its contributions
// to clean blocks are already incorporated there.
func (f *Factor) scatterOuter(k, threads int, locks *par.StripedMutex, ownerFilter []bool) {
	K := f.K
	sn := f.sn
	s := sn.Ranges[k].Size()
	anc := f.ancIDs[k]
	na := len(anc)
	// Fused path: the up-section of ancestor column j is the B operand of
	// every (i, j) pair, so pack it once and reuse it na times. The
	// targets are the ancestors' own blocks — never up[k] or down[k] — so
	// the packed snapshot stays valid for the whole scatter. Columns no
	// (i, j) pair will touch under ownerFilter are skipped.
	var packs []*semiring.PackedPanel
	if fusedElim.Load() && K.MulAddPacked != nil && na > 1 {
		packs = make([]*semiring.PackedPanel, na)
		for j := 0; j < na; j++ {
			needed := ownerFilter == nil || ownerFilter[anc[j]]
			for i := 0; !needed && i < j; i++ {
				needed = ownerFilter[anc[i]] // (i<j, j) targets live on anc[i]
			}
			if needed {
				packs[j] = K.PackPanel(f.up[k].View(0, f.ancOff[k][j], s, f.ancOff[k][j+1]-f.ancOff[k][j]))
			}
		}
	}
	par.For(na*na, threads, 1, func(idx int) {
		i, j := idx/na, idx%na
		ai, aj := anc[i], anc[j]
		if ownerFilter != nil {
			owner := ai // diag and up sections live on ai
			if i > j {
				owner = aj // down sections live on aj
			}
			if !ownerFilter[owner] {
				return
			}
		}
		src := f.down[k].View(f.ancOff[k][i], 0, f.ancOff[k][i+1]-f.ancOff[k][i], s)
		srcR := f.up[k].View(0, f.ancOff[k][j], s, f.ancOff[k][j+1]-f.ancOff[k][j])
		var target semiring.Mat
		switch {
		case i == j:
			target = f.diag[ai]
		case i < j:
			// aj inside up[ai]: position of aj in ai's ancestor list is
			// j-i-1 (ai's ancestors are k's ancestors past position i).
			o := f.ancOff[ai]
			target = f.up[ai].View(0, o[j-i-1], sn.Ranges[ai].Size(), o[j-i]-o[j-i-1])
		default:
			o := f.ancOff[aj]
			target = f.down[aj].View(o[i-j-1], 0, o[i-j]-o[i-j-1], sn.Ranges[aj].Size())
		}
		mul := func() { K.MulAdd(target, src, srcR) }
		if packs != nil && packs[j] != nil {
			P := packs[j]
			mul = func() { K.MulAddPacked(target, src, P) }
		}
		if locks != nil {
			key := uint64(ai)*uint64(len(f.diag)) + uint64(aj)
			locks.Lock(key)
			mul()
			locks.Unlock(key)
		} else {
			mul()
		}
	})
	for _, P := range packs {
		if P != nil {
			P.Release()
		}
	}
}

// SSSP computes distances from src (original vertex id) to every vertex,
// returned indexed by original ids, using the up/down etree sweeps in
// O(fill) time and O(n) extra space.
func (f *Factor) SSSP(src int) []float64 {
	return f.SSSPInto(src, make([]float64, f.n))
}

// SSSPInto is SSSP writing the row into out (which must have length n)
// and returning it. The sweep scratch comes from an internal pool, so a
// caller that also reuses out pays no per-query allocation — the shape
// query serving wants.
func (f *Factor) SSSPInto(src int, out []float64) []float64 {
	if len(out) != f.n {
		panic(fmt.Sprintf("core: SSSPInto row length %d, want %d", len(out), f.n))
	}
	d := f.getSweep() // permuted index space until the end
	ps := f.iperm[src]
	d[ps] = f.K.One
	f.upSweep(d, f.snodeOf(ps))
	f.downSweep(d)
	// Relabel to original ids.
	for i := 0; i < f.n; i++ {
		out[f.perm[i]] = d[i]
	}
	f.putSweep(d)
	return out
}

// getSweep returns an n-length scratch vector filled with K.Zero.
func (f *Factor) getSweep() []float64 {
	if v := f.sweep.Get(); v != nil {
		d := *(v.(*[]float64))
		for i := range d {
			d[i] = f.K.Zero
		}
		return d
	}
	d := make([]float64, f.n)
	for i := range d {
		d[i] = f.K.Zero
	}
	return d
}

func (f *Factor) putSweep(d []float64) { f.sweep.Put(&d) }

// upSweep relaxes d along the root path of supernode k0.
func (f *Factor) upSweep(d []float64, k0 int) {
	sn := f.sn
	for k := k0; k >= 0; k = sn.Parent[k] {
		r := sn.Ranges[k]
		dk := d[r.Lo:r.Hi]
		f.vecMat(dk, dk, f.diag[k]) // intra-block propagation (closed diag)
		for i, a := range f.ancIDs[k] {
			ar := sn.Ranges[a]
			f.vecMat(d[ar.Lo:ar.Hi], dk, f.up[k].View(0, f.ancOff[k][i], r.Size(), ar.Size()))
		}
	}
}

// downSweep relaxes d from ancestors into every supernode, descending.
func (f *Factor) downSweep(d []float64) {
	sn := f.sn
	K := f.K
	for k := sn.NumSupernodes() - 1; k >= 0; k-- {
		r := sn.Ranges[k]
		dk := d[r.Lo:r.Hi]
		touched := false
		for i, a := range f.ancIDs[k] {
			ar := sn.Ranges[a]
			da := d[ar.Lo:ar.Hi]
			if allZero(da, K.Zero) {
				continue
			}
			// d[k] ⊕= d[anc] ⊗ F(anc, k): a vector-matrix product with
			// the (ancestor × k) down panel.
			f.vecMat(dk, da, f.down[k].View(f.ancOff[k][i], 0, ar.Size(), r.Size()))
			touched = true
		}
		if touched || !allZero(dk, K.Zero) {
			f.vecMat(dk, dk, f.diag[k])
		}
	}
}

func allZero(v []float64, zero float64) bool {
	for _, x := range v {
		if x != zero {
			return false
		}
	}
	return true
}

// vecMat computes y = y ⊕ x ⊗ A over the plan's semiring, preferring
// the kernel bundle's dedicated sweep kernel (zero fast paths) over a
// degenerate 1×n MulAdd.
func (f *Factor) vecMat(y, x []float64, A semiring.Mat) {
	if f.K.VecMatAdd != nil {
		f.K.VecMatAdd(y, x, A)
		return
	}
	// Generic path via the kernel's MulAdd on 1×n views.
	X := semiring.Mat{Data: x, Stride: len(x), Rows: 1, Cols: len(x)}
	Y := semiring.Mat{Data: y, Stride: len(y), Rows: 1, Cols: len(y)}
	f.K.MulAdd(Y, X, A)
}

// matVec computes y = y ⊕ A ⊗ x over the plan's semiring.
func (f *Factor) matVec(y []float64, A semiring.Mat, x []float64) {
	if f.K.MatVecAdd != nil {
		f.K.MatVecAdd(y, A, x)
		return
	}
	X := semiring.Mat{Data: x, Stride: 1, Rows: len(x), Cols: 1}
	Y := semiring.Mat{Data: y, Stride: 1, Rows: len(y), Cols: 1}
	f.K.MulAdd(Y, A, X)
}

// MultiSSSP runs SSSP from every listed source in parallel and returns
// the rows in source order (each indexed by original vertex id). The
// sweeps are independent, so this parallelizes perfectly — the factor
// analogue of the baseline Dijkstra-per-source APSP loop.
func (f *Factor) MultiSSSP(sources []int, threads int) [][]float64 {
	out := make([][]float64, len(sources))
	par.For(len(sources), threads, 1, func(i int) {
		out[i] = f.SSSP(sources[i])
	})
	return out
}

// Label is a 2-hop label: distances between a vertex and every vertex of
// its supernode root path (both directions).
type Label struct {
	// Ranges are the permuted index ranges the label covers, ascending:
	// the vertex's own supernode followed by its ancestors.
	Ranges []symbolic.Range
	// To[h] / From[h] are the distances vertex→hub and hub→vertex for
	// hub h, indexed positionally along the concatenated Ranges.
	To, From []float64
}

// width returns the total number of hubs.
func (l *Label) width() int {
	w := 0
	for _, r := range l.Ranges {
		w += r.Size()
	}
	return w
}

// ComputeLabel builds the 2-hop label of original vertex u: distances to
// and from every hub on u's supernode root path. Costs O(chain fill).
func (f *Factor) ComputeLabel(u int) *Label {
	K := f.K
	sn := f.sn
	pu := f.iperm[u]
	k0 := f.snodeOf(pu)
	lbl := &Label{}
	for k := k0; k >= 0; k = sn.Parent[k] {
		lbl.Ranges = append(lbl.Ranges, symbolic.Range{Lo: sn.Ranges[k].Lo, Hi: sn.Ranges[k].Hi})
	}
	w := lbl.width()
	lbl.To = make([]float64, w)
	lbl.From = make([]float64, w)
	for i := range lbl.To {
		lbl.To[i] = K.Zero
		lbl.From[i] = K.Zero
	}
	// The label is an up-sweep restricted to the chain, in both
	// directions. Positions: chain ranges are concatenated ascending.
	off := 0
	offs := make([]int, len(lbl.Ranges)+1)
	for i, r := range lbl.Ranges {
		offs[i] = off
		off += r.Size()
	}
	offs[len(lbl.Ranges)] = off
	// own position
	lbl.To[pu-lbl.Ranges[0].Lo] = K.One
	lbl.From[pu-lbl.Ranges[0].Lo] = K.One
	ci := 0
	for k := k0; k >= 0; k = sn.Parent[k] {
		r := sn.Ranges[k]
		to := lbl.To[offs[ci] : offs[ci]+r.Size()]
		from := lbl.From[offs[ci] : offs[ci]+r.Size()]
		f.vecMat(to, to, f.diag[k])
		f.matVec(from, f.diag[k], from)
		for i := range f.ancIDs[k] {
			ar := f.sn.Ranges[f.ancIDs[k][i]]
			seg := offs[ci+1+i]
			f.vecMat(lbl.To[seg:seg+ar.Size()], to, f.up[k].View(0, f.ancOff[k][i], r.Size(), ar.Size()))
			f.matVec(lbl.From[seg:seg+ar.Size()], f.down[k].View(f.ancOff[k][i], 0, ar.Size(), r.Size()), from)
		}
		ci++
	}
	return lbl
}

// Dist answers a point-to-point query by meeting the labels of u and v
// on their shared hubs: dist(u,v) = ⊕ over common hubs h of
// To_u[h] ⊗ From_v[h]. Costs two label computations plus the meet; use a
// LabelCache to amortize the label computations across queries.
func (f *Factor) Dist(u, v int) float64 {
	return f.MeetLabels(f.ComputeLabel(u), f.ComputeLabel(v))
}

// MeetLabels evaluates the 2-hop meet of a source label lu and a target
// label lv: ⊕ over common hubs h of To_u[h] ⊗ From_v[h]. Labels are
// immutable once computed, so the meet is safe to run concurrently over
// shared labels, and it performs no allocations.
func (f *Factor) MeetLabels(lu, lv *Label) float64 {
	K := f.K
	best := K.Zero
	// Walk both range lists; ranges are ascending and chains share their
	// suffix, so matching ranges are exactly the common hubs.
	iu, iv := 0, 0
	ou, ov := 0, 0
	for iu < len(lu.Ranges) && iv < len(lv.Ranges) {
		ru, rv := lu.Ranges[iu], lv.Ranges[iv]
		switch {
		case ru.Lo < rv.Lo:
			ou += ru.Size()
			iu++
		case rv.Lo < ru.Lo:
			ov += rv.Size()
			iv++
		default: // same supernode range
			for i := 0; i < ru.Size(); i++ {
				cand := K.MulScalar(lu.To[ou+i], lv.From[ov+i])
				best = K.AddScalar(best, cand)
			}
			ou += ru.Size()
			ov += rv.Size()
			iu++
			iv++
		}
	}
	return best
}
