package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/semiring"
)

// widestClosure is the scalar reference for the max-min semiring.
func widestClosure(g *graph.Graph) semiring.Mat {
	D := g.ToDenseWith(-semiring.Inf, semiring.Inf)
	semiring.MaxMinFloydWarshall(D)
	return D
}

func TestWidestPathMatchesScalar(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid": gen.Grid2D(8, 7, gen.WeightUniform, 71),
		"geo":  gen.GeometricKNN(120, 2, 3, gen.WeightUniform, 72),
		"ba":   gen.BarabasiAlbert(80, 3, gen.WeightUniform, 73),
	}
	for name, g := range graphs {
		want := widestClosure(g)
		for _, ok := range []OrderingKind{OrderND, OrderBFS} {
			for _, threads := range []int{1, 4} {
				opts := Options{Ordering: ok, Semiring: semiring.MaxMinKernels,
					Threads: threads, EtreeParallel: true, MaxBlock: 16, LeafSize: 12}
				plan, err := NewPlan(g, opts)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				res, err := plan.Solve()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !res.Dense().EqualTol(want, 1e-12) {
					t.Errorf("%s ordering=%v threads=%d: widest-path mismatch", name, ok, threads)
				}
			}
		}
	}
}

func TestWidestPathSemantics(t *testing.T) {
	// A two-route graph: 0-1-3 with bottleneck 5, 0-2-3 with bottleneck 8.
	g := graph.MustFromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 10}, {U: 1, V: 3, W: 5},
		{U: 0, V: 2, W: 8}, {U: 2, V: 3, W: 9},
	})
	plan, err := NewPlan(g, Options{Ordering: OrderND, Semiring: semiring.MaxMinKernels, TrackPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.At(0, 3); got != 8 {
		t.Fatalf("widest 0→3 = %g, want 8 (via vertex 2)", got)
	}
	if got := res.At(0, 0); !math.IsInf(got, 1) {
		t.Fatalf("self capacity should be +Inf, got %g", got)
	}
	path, ok := res.Path(0, 3)
	if !ok {
		t.Fatal("path missing")
	}
	want := []int{0, 2, 3}
	if len(path) != 3 || path[0] != want[0] || path[1] != want[1] || path[2] != want[2] {
		t.Fatalf("widest path %v, want %v", path, want)
	}
}

func TestWidestPathDisconnected(t *testing.T) {
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 4}})
	plan, err := NewPlan(g, Options{Semiring: semiring.MaxMinKernels})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.At(0, 2), -1) {
		t.Fatalf("unreachable capacity should be -Inf, got %g", res.At(0, 2))
	}
}

func TestWidestLargeDiagonalBlocked(t *testing.T) {
	// Exercise ParallelBlockedFWKernels for max-min (one big supernode).
	g := gen.ErdosRenyi(diagParallelCutoff+30, 6, gen.WeightUniform, 74)
	plan, err := NewPlan(g, Options{Ordering: OrderNatural, MaxBlock: g.N,
		Semiring: semiring.MaxMinKernels, Threads: 4, EtreeParallel: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dense().EqualTol(widestClosure(g), 1e-12) {
		t.Fatal("blocked max-min diag diverged from scalar reference")
	}
}
