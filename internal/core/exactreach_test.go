package core

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/symbolic"
)

func TestExactReachMatchesDefault(t *testing.T) {
	for name, g := range testGraphs(t) {
		want := Closure(g.ToDense())
		for _, ok := range []OrderingKind{OrderND, OrderBFS, OrderMinDegree, OrderNatural} {
			for _, threads := range []int{1, 4} {
				opts := Options{Ordering: ok, Threads: threads, EtreeParallel: true,
					MaxBlock: 16, LeafSize: 12, ExactReach: true}
				plan, err := NewPlan(g, opts)
				if err != nil {
					t.Fatalf("%s/%v: %v", name, ok, err)
				}
				res, err := plan.Solve()
				if err != nil {
					t.Fatalf("%s/%v: %v", name, ok, err)
				}
				if !res.Dense().EqualTol(want, 1e-9) {
					t.Errorf("%s ordering=%v threads=%d: exact-reach result differs", name, ok, threads)
				}
			}
		}
	}
}

func TestExactReachPathGraphRegression(t *testing.T) {
	// Regression for the descendant-side soundness bug: on a natural-
	// ordered path graph, a descendant-side "exact" restriction would
	// lose Dist[0][n-1] entirely (distance-matrix updates create finite
	// entries outside the symbolic fill). The ancestor-side-only
	// refinement must still produce the full closure.
	g := gen.Grid2D(12, 1, gen.WeightUnit, 1)
	plan, err := NewPlan(g, Options{Ordering: OrderNatural, MaxBlock: 1, ExactReach: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.At(0, 11); got != 11 {
		t.Fatalf("path end-to-end distance = %g, want 11", got)
	}
}

func TestExactReachReducesWork(t *testing.T) {
	// On a natural-ordered path graph, A(k) is the whole suffix but
	// struct(k) is one supernode: exact reach must slash planned ops.
	g := gen.Grid2D(200, 1, gen.WeightUniform, 2)
	def, err := NewPlan(g, Options{Ordering: OrderNatural, MaxBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewPlan(g, Options{Ordering: OrderNatural, MaxBlock: 4, ExactReach: true})
	if err != nil {
		t.Fatal(err)
	}
	// The descendant side stays whole, so the reduction is bounded; the
	// ancestor chain collapsing from O(n) to 1 supernode still must buy
	// a clear constant factor.
	if exact.PlannedOps()*2 >= def.PlannedOps() {
		t.Errorf("exact reach ops %d should be well below default %d on a path",
			exact.PlannedOps(), def.PlannedOps())
	}
	// Exact reach can never plan MORE work than the default.
	for name, g := range testGraphs(t) {
		d, err1 := NewPlan(g, Options{Ordering: OrderBFS, MaxBlock: 16})
		e, err2 := NewPlan(g, Options{Ordering: OrderBFS, MaxBlock: 16, ExactReach: true})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if e.PlannedOps() > d.PlannedOps() {
			t.Errorf("%s: exact ops %d exceed default %d", name, e.PlannedOps(), d.PlannedOps())
		}
	}
}

func TestSupernodalStructSubsetOfAncestors(t *testing.T) {
	g := gen.GeometricKNN(300, 2, 4, gen.WeightUniform, 3)
	plan, err := NewPlan(g, Options{Ordering: OrderND, MaxBlock: 32, ExactReach: true})
	if err != nil {
		t.Fatal(err)
	}
	structs := symbolic.SupernodalStruct(plan.PG, plan.Sn)
	for k := range plan.Sn.Ranges {
		anc := map[int]bool{}
		for _, a := range plan.Sn.Ancestors(k) {
			anc[a] = true
		}
		for _, a := range structs[k] {
			if !anc[int(a)] {
				t.Fatalf("supernode %d: struct member %d is not an ancestor", k, a)
			}
		}
	}
}
