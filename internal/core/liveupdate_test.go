package core

import (
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/semiring"
)

// checkFactorMatchesGraph asserts that every distance served by f equals
// a dense from-scratch closure of g.
func checkFactorMatchesGraph(t *testing.T, f *Factor, g *graph.Graph) {
	t.Helper()
	want := Closure(g.ToDense())
	row := make([]float64, g.N)
	for u := 0; u < g.N; u++ {
		f.SSSPInto(u, row)
		for v := 0; v < g.N; v++ {
			w := want.At(u, v)
			if d := row[v]; math.Abs(d-w) > 1e-9 && !(math.IsInf(d, 1) && math.IsInf(w, 1)) {
				t.Fatalf("dist(%d,%d) = %g, want %g", u, v, d, w)
			}
		}
	}
}

// snapshotFactor captures every distance f currently serves, for
// verifying the old snapshot stays bit-identical across an update.
func snapshotFactor(f *Factor) [][]float64 {
	out := make([][]float64, f.n)
	for u := 0; u < f.n; u++ {
		out[u] = f.SSSP(u)
	}
	return out
}

func newUpdaterFixture(t *testing.T, g *graph.Graph, opts UpdaterOptions) *FactorUpdater {
	t.Helper()
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	u, err := NewFactorUpdater(g, f, opts)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

// applyGraph mirrors a batch onto the reference edge list, keeping the
// graph the oracle re-solve uses in sync with the updater.
func applyGraph(g *graph.Graph, b *UpdateBatch) *graph.Graph {
	m := edgeMapOf(g)
	for _, d := range b.Edges() {
		m[edgeKey{d.U, d.V}] = d.W
	}
	ng, err := graphFromEdges(g.N, m)
	if err != nil {
		panic(err)
	}
	return ng
}

func TestUpdateBatchCoalesce(t *testing.T) {
	b := NewUpdateBatch()
	if err := b.Set(3, 1, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := b.Set(1, 3, 0.5); err != nil { // same edge, normalized: last write wins
		t.Fatal(err)
	}
	if err := b.Set(0, 2, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := b.Set(4, 4, 9.0); err != nil { // self-loop: silent no-op
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	edges := b.Edges()
	if edges[0] != (EdgeDelta{U: 0, V: 2, W: 1.0}) || edges[1] != (EdgeDelta{U: 1, V: 3, W: 0.5}) {
		t.Fatalf("Edges = %v", edges)
	}
	if err := b.Set(0, 1, -1); err == nil {
		t.Error("negative weight must be rejected")
	}
	if err := b.Set(-1, 2, 1); err == nil {
		t.Error("negative vertex id must be rejected")
	}
	if err := b.Set(0, 1, math.NaN()); err == nil {
		t.Error("NaN weight must be rejected")
	}
	if err := b.Set(0, 1, math.Inf(1)); err == nil {
		t.Error("+Inf weight (edge removal) must be rejected")
	}
}

func TestUpdaterRejectsNonMinPlus(t *testing.T) {
	g := gen.Grid2D(4, 4, gen.WeightUnit, 5)
	opts := DefaultOptions()
	opts.Semiring = semiring.MaxMinKernels
	plan, err := NewPlan(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFactorUpdater(g, f, UpdaterOptions{}); err == nil {
		t.Fatal("non-min-plus updater must be rejected")
	}
}

func TestUpdateDecreaseDifferential(t *testing.T) {
	g := gen.GeometricKNN(120, 2, 3, gen.WeightUniform, 81)
	u := newUpdaterFixture(t, g, UpdaterOptions{DirtyThreshold: 1, Threads: 2})
	rng := rand.New(rand.NewSource(82))
	edges := g.Edges()
	for round := 0; round < 3; round++ {
		b := NewUpdateBatch()
		for i := 0; i < 4; i++ {
			e := edges[rng.Intn(len(edges))]
			if err := b.Set(e.U, e.V, e.W*rng.Float64()); err != nil {
				t.Fatal(err)
			}
		}
		before := snapshotFactor(u.Factor())
		p, err := u.Apply(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		if p.Stats.FullRebuild {
			t.Fatal("decrease batch under threshold must patch, not rebuild")
		}
		if p.StaleSupernodes == nil {
			t.Fatal("patched update must scope staleness")
		}
		// The committed-before snapshot must be untouched by the patch.
		after := snapshotFactor(u.Factor())
		for i := range before {
			for j := range before[i] {
				if before[i][j] != after[i][j] {
					t.Fatalf("old snapshot mutated at (%d,%d)", i, j)
				}
			}
		}
		if err := u.Commit(p); err != nil {
			t.Fatal(err)
		}
		g = applyGraph(g, b)
		checkFactorMatchesGraph(t, u.Factor(), g)
	}
}

func TestUpdateIncreaseDifferential(t *testing.T) {
	g := gen.GeometricKNN(120, 2, 3, gen.WeightUniform, 83)
	u := newUpdaterFixture(t, g, UpdaterOptions{DirtyThreshold: 1, Threads: 2})
	rng := rand.New(rand.NewSource(84))
	for round := 0; round < 3; round++ {
		b := NewUpdateBatch()
		for i := 0; i < 3; i++ {
			e := g.Edges()[rng.Intn(len(g.Edges()))]
			if err := b.Set(e.U, e.V, e.W*(1.5+rng.Float64())); err != nil {
				t.Fatal(err)
			}
		}
		p, err := u.Apply(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		if p.Stats.Increases == 0 {
			t.Fatal("expected increases in the batch")
		}
		if err := u.Commit(p); err != nil {
			t.Fatal(err)
		}
		g = applyGraph(g, b)
		checkFactorMatchesGraph(t, u.Factor(), g)
	}
}

func TestUpdateMixedDifferential(t *testing.T) {
	g := gen.Grid2D(10, 10, gen.WeightUniform, 85)
	u := newUpdaterFixture(t, g, UpdaterOptions{DirtyThreshold: 1, Threads: runtime.GOMAXPROCS(0)})
	rng := rand.New(rand.NewSource(86))
	edges := g.Edges()
	b := NewUpdateBatch()
	for i := 0; i < 8; i++ {
		e := edges[rng.Intn(len(edges))]
		scale := 0.2 + rng.Float64()*2.5 // both below and above 1
		if err := b.Set(e.U, e.V, e.W*scale); err != nil {
			t.Fatal(err)
		}
	}
	p, err := u.Apply(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Commit(p); err != nil {
		t.Fatal(err)
	}
	g = applyGraph(g, b)
	checkFactorMatchesGraph(t, u.Factor(), g)
}

func TestUpdateNoopBatch(t *testing.T) {
	g := gen.Grid2D(6, 6, gen.WeightUniform, 87)
	u := newUpdaterFixture(t, g, UpdaterOptions{})
	e := g.Edges()[0]
	b := NewUpdateBatch()
	if err := b.Set(e.U, e.V, e.W); err != nil { // same weight: no effective change
		t.Fatal(err)
	}
	p, err := u.Apply(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if p.Factor != u.Factor() || p.Stats.Unchanged != 1 || p.Stats.DirtySupernodes != 0 {
		t.Fatalf("no-op batch must return the current factor unchanged, stats %+v", p.Stats)
	}
	if err := u.Commit(p); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Apply(context.Background(), NewUpdateBatch()); err == nil {
		t.Fatal("empty batch must be rejected")
	}
}

func TestUpdateFullRebuildPastThreshold(t *testing.T) {
	g := gen.GeometricKNN(100, 2, 3, gen.WeightUniform, 88)
	u := newUpdaterFixture(t, g, UpdaterOptions{DirtyThreshold: 1e-9})
	e := g.Edges()[0]
	b := NewUpdateBatch()
	if err := b.Set(e.U, e.V, e.W*0.5); err != nil {
		t.Fatal(err)
	}
	p, err := u.Apply(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stats.FullRebuild || p.Stats.Replanned {
		t.Fatalf("tiny threshold must force a full rebuild, stats %+v", p.Stats)
	}
	if p.StaleSupernodes != nil {
		t.Fatal("full rebuild must mark every label stale (nil)")
	}
	if err := u.Commit(p); err != nil {
		t.Fatal(err)
	}
	g = applyGraph(g, b)
	checkFactorMatchesGraph(t, u.Factor(), g)
}

func TestUpdateCrossCousinInsertReplans(t *testing.T) {
	g := gen.GeometricKNN(150, 2, 3, gen.WeightUniform, 89)
	u := newUpdaterFixture(t, g, UpdaterOptions{DirtyThreshold: 1})
	f := u.Factor()
	// Find a vertex pair no block of the current plan can host.
	cu, cv := -1, -1
search:
	for a := 0; a < g.N; a++ {
		for bb := a + 1; bb < g.N; bb++ {
			if _, ok := f.edgeOwner(a, bb); !ok {
				cu, cv = a, bb
				break search
			}
		}
	}
	if cu < 0 {
		t.Skip("ordering left no cousin pair on this graph")
	}
	b := NewUpdateBatch()
	if err := b.Set(cu, cv, 0.01); err != nil {
		t.Fatal(err)
	}
	p, err := u.Apply(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Stats.Replanned || !p.Stats.FullRebuild {
		t.Fatalf("cross-cousin insert must re-plan, stats %+v", p.Stats)
	}
	if err := u.Commit(p); err != nil {
		t.Fatal(err)
	}
	g = applyGraph(g, b)
	checkFactorMatchesGraph(t, u.Factor(), g)
}

func TestUpdateCommitStalePatch(t *testing.T) {
	g := gen.Grid2D(8, 8, gen.WeightUniform, 90)
	u := newUpdaterFixture(t, g, UpdaterOptions{DirtyThreshold: 1})
	e := g.Edges()[0]
	mk := func(w float64) *Patched {
		b := NewUpdateBatch()
		if err := b.Set(e.U, e.V, w); err != nil {
			t.Fatal(err)
		}
		p, err := u.Apply(context.Background(), b)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1 := mk(e.W * 0.5)
	p2 := mk(e.W * 0.25) // computed against the same base as p1
	if err := u.Commit(p1); err != nil {
		t.Fatal(err)
	}
	if err := u.Commit(p2); err == nil {
		t.Fatal("committing a patch computed against a superseded factor must fail")
	}
	// Rebase resets the updater onto a fresh build; updates keep working.
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	nf, err := NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Rebase(g, nf); err != nil {
		t.Fatal(err)
	}
	p3 := mk(e.W * 0.5)
	if err := u.Commit(p3); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateLabelCacheCarryOver(t *testing.T) {
	g := gen.GeometricKNN(120, 2, 3, gen.WeightUniform, 91)
	u := newUpdaterFixture(t, g, UpdaterOptions{DirtyThreshold: 1})
	f := u.Factor()
	cache := NewLabelCache(f, 0)
	for v := 0; v < g.N; v++ {
		cache.Label(v)
	}
	e := g.Edges()[0]
	b := NewUpdateBatch()
	if err := b.Set(e.U, e.V, e.W*0.5); err != nil {
		t.Fatal(err)
	}
	p, err := u.Apply(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	nc := NewLabelCacheFrom(p.Factor, 0, cache, p.StaleSupernodes)
	stats := nc.Stats()
	if stats.Size == 0 {
		t.Fatal("carry-over kept no labels; expected clean supernodes to survive")
	}
	if stats.Size == g.N {
		t.Fatal("carry-over kept every label; dirtied supernodes must be dropped")
	}
	// Every distance served from the carried cache must match the
	// patched factor's fresh answers.
	g = applyGraph(g, b)
	want := Closure(g.ToDense())
	for v := 0; v < g.N; v++ {
		if d, w := nc.Dist(0, v), want.At(0, v); math.Abs(d-w) > 1e-9 {
			t.Fatalf("carried cache dist(0,%d) = %g, want %g", v, d, w)
		}
	}
}

// TestChaosUpdateApplyFailpoint proves a failure inside the apply window
// leaves the committed snapshot untouched: Apply errors out and the
// updater keeps serving the exact pre-update factor.
func TestChaosUpdateApplyFailpoint(t *testing.T) {
	defer fault.Reset()
	g := gen.Grid2D(8, 8, gen.WeightUniform, 92)
	u := newUpdaterFixture(t, g, UpdaterOptions{DirtyThreshold: 1})
	before := snapshotFactor(u.Factor())
	if err := fault.Enable("core.update.apply", "error"); err != nil {
		t.Fatal(err)
	}
	e := g.Edges()[0]
	b := NewUpdateBatch()
	if err := b.Set(e.U, e.V, e.W*0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := u.Apply(context.Background(), b); err == nil {
		t.Fatal("failpoint must surface as an Apply error")
	}
	fault.Reset()
	after := snapshotFactor(u.Factor())
	for i := range before {
		for j := range before[i] {
			if before[i][j] != after[i][j] {
				t.Fatalf("failed update mutated the live factor at (%d,%d)", i, j)
			}
		}
	}
	// The same batch applies cleanly once the fault clears.
	p, err := u.Apply(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Commit(p); err != nil {
		t.Fatal(err)
	}
	g = applyGraph(g, b)
	checkFactorMatchesGraph(t, u.Factor(), g)
}
