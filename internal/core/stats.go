package core

import (
	"fmt"
	"strings"
)

// PlanStats summarizes a plan's symbolic structure for diagnostics.
type PlanStats struct {
	N             int
	M             int
	Supernodes    int
	MaxBlock      int   // largest supernode
	MedianBlock   int   // median supernode size
	EtreeLevels   int   // height of the level schedule
	EtreeLeaves   int   // childless supernodes: initial DAG ready-set width
	MaxLevelWidth int   // widest level: peak cousin parallelism
	TopSep        int   // top-level separator size (0 if not dissection)
	FillCount     int64 // symbolic fill (-1 if not computed)
	PlannedOps    int64
	CriticalPath  int64
	DenseOps      int64   // n³ for comparison
	WorkReduction float64 // DenseOps / PlannedOps
}

// Stats computes the plan's structural summary.
func (p *Plan) Stats() PlanStats {
	sizes := make([]int, 0, p.Sn.NumSupernodes())
	maxB := 0
	for _, r := range p.Sn.Ranges {
		s := r.Size()
		sizes = append(sizes, s)
		if s > maxB {
			maxB = s
		}
	}
	// median via counting (sizes are small ints)
	med := 0
	if len(sizes) > 0 {
		counts := make([]int, maxB+1)
		for _, s := range sizes {
			counts[s]++
		}
		seen, half := 0, (len(sizes)+1)/2
		for s, c := range counts {
			seen += c
			if seen >= half {
				med = s
				break
			}
		}
	}
	maxWidth := 0
	for _, level := range p.Sn.Levels {
		if len(level) > maxWidth {
			maxWidth = len(level)
		}
	}
	n := int64(p.G.N)
	ops := p.PlannedOps()
	st := PlanStats{
		N:             p.G.N,
		M:             p.G.M(),
		Supernodes:    p.Sn.NumSupernodes(),
		MaxBlock:      maxB,
		MedianBlock:   med,
		EtreeLevels:   len(p.Sn.Levels),
		EtreeLeaves:   p.Sn.NumLeaves(),
		MaxLevelWidth: maxWidth,
		TopSep:        p.TopSep,
		FillCount:     p.FillCount,
		PlannedOps:    ops,
		CriticalPath:  p.CriticalPathOps(),
		DenseOps:      n * n * n,
	}
	if ops > 0 {
		st.WorkReduction = float64(st.DenseOps) / float64(ops)
	}
	return st
}

// String renders the stats as a compact multi-line report.
func (s PlanStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d m=%d supernodes=%d (max %d, median %d) etree-levels=%d\n",
		s.N, s.M, s.Supernodes, s.MaxBlock, s.MedianBlock, s.EtreeLevels)
	fmt.Fprintf(&b, "etree leaves=%d max-level-width=%d (DAG ready-set width: initial / peak)\n",
		s.EtreeLeaves, s.MaxLevelWidth)
	if s.TopSep > 0 {
		fmt.Fprintf(&b, "top separator |S|=%d (n/|S| = %.1f)\n", s.TopSep, float64(s.N)/float64(s.TopSep))
	}
	if s.FillCount >= 0 {
		fmt.Fprintf(&b, "symbolic fill=%d (%.2f× edges)\n", s.FillCount, float64(s.FillCount)/float64(s.M))
	}
	fmt.Fprintf(&b, "planned ops=%d vs dense n³=%d (%.1f× reduction), critical path=%d",
		s.PlannedOps, s.DenseOps, s.WorkReduction, s.CriticalPath)
	return b.String()
}
