package core

import (
	"time"

	"repro/internal/graph"
	"repro/internal/semiring"
)

// AutotuneMaxBlock picks the supernode block cap empirically: it builds
// a plan per candidate size and times a numeric solve on the graph
// itself (when the graph is small) or on a sampled subgraph, returning
// the fastest candidate. The block cap is the main machine-dependent
// knob of the supernodal data structure — it trades kernel efficiency
// (bigger dense blocks) against schedule granularity and padding, and
// the best value depends on cache sizes the library cannot know.
//
// Candidates defaults to {32, 64, 128, 256} when nil.
func AutotuneMaxBlock(g *graph.Graph, opts Options, candidates []int) (best int, err error) {
	if candidates == nil {
		candidates = []int{32, 64, 128, 256}
	}
	sample := autotuneSample(g)
	bestTime := time.Duration(1<<62 - 1)
	for _, mb := range candidates {
		o := opts
		o.MaxBlock = mb
		plan, perr := NewPlan(sample, o)
		if perr != nil {
			return 0, perr
		}
		res, serr := plan.Solve()
		if serr != nil {
			return 0, serr
		}
		if res.NumericTime < bestTime {
			bestTime = res.NumericTime
			best = mb
		}
	}
	return best, nil
}

// AutotuneSchedule times one numeric solve per schedule kind on the
// graph (or a sampled subgraph, as in AutotuneMaxBlock) and returns the
// faster of DAG and level-synchronous scheduling for these options. The
// DAG schedule dominates on imbalanced elimination trees; on perfectly
// balanced trees the two are within noise of each other, so the level
// schedule can still win a coin flip.
func AutotuneSchedule(g *graph.Graph, opts Options) (ScheduleKind, error) {
	sample := autotuneSample(g)
	best, bestTime := ScheduleDAG, time.Duration(1<<62-1)
	for _, sched := range []ScheduleKind{ScheduleDAG, ScheduleLevel} {
		o := opts
		o.Schedule = sched
		o.EtreeParallel = true
		plan, err := NewPlan(sample, o)
		if err != nil {
			return best, err
		}
		res, err := plan.Solve()
		if err != nil {
			return best, err
		}
		if res.NumericTime < bestTime {
			bestTime = res.NumericTime
			best = sched
		}
	}
	return best, nil
}

// AutotuneGemm picks the GEMM-engine tuning empirically, mirroring
// AutotuneSchedule: it installs each candidate tuning, times a numeric
// solve on the graph (or a sampled subgraph) and keeps the fastest,
// leaving the winner installed process-wide via semiring.SetGemmTuning.
// The knobs it sweeps — pack-tile shape, the small-GEMM cutoff and the
// dense-dispatch density threshold — are exactly the machine- and
// workload-dependent parameters of the adaptive kernel engine.
//
// Candidates defaults to semiring.GemmTuningCandidates() when nil. On
// error the previously installed tuning is restored.
func AutotuneGemm(g *graph.Graph, opts Options, candidates []semiring.GemmTuning) (semiring.GemmTuning, error) {
	if candidates == nil {
		candidates = semiring.GemmTuningCandidates()
	}
	sample := autotuneSample(g)
	prev := semiring.CurrentGemmTuning()
	best, bestTime := prev, time.Duration(1<<62-1)
	for _, cand := range candidates {
		semiring.SetGemmTuning(cand)
		plan, perr := NewPlan(sample, opts)
		if perr != nil {
			semiring.SetGemmTuning(prev)
			return prev, perr
		}
		res, serr := plan.Solve()
		if serr != nil {
			semiring.SetGemmTuning(prev)
			return prev, serr
		}
		if res.NumericTime < bestTime {
			bestTime = res.NumericTime
			best = cand
		}
	}
	semiring.SetGemmTuning(best)
	return best, nil
}

// autotuneSample returns g itself when small, or a BFS ball around a
// pseudo-peripheral vertex: it preserves local structure (degree,
// weights) at a size where a few trial solves are cheap.
func autotuneSample(g *graph.Graph) *graph.Graph {
	const sampleCap = 3000
	if g.N <= sampleCap {
		return g
	}
	root := g.PseudoPeripheral(0)
	order := g.BFSOrder(root)
	if len(order) > sampleCap {
		order = order[:sampleCap]
	}
	return g.InducedSubgraph(order)
}
