package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/semiring"
)

// Schedule equivalence: the DAG schedule, the level-synchronous schedule
// and the sequential postorder traversal are three executions of the
// same elimination and must produce identical results — across
// orderings (balanced ND trees, skinny BFS/natural etrees) and
// semirings. Distances are deterministic under all three (min-plus ⊕ is
// associative/commutative), so exact comparison up to float tolerance is
// the right check.

func TestScheduleEquivalence(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"geoknn": gen.GeometricKNN(240, 2, 3, gen.WeightUniform, 7),
		"road":   gen.RoadNetwork(16, 16, 0.3, 11),
		"ba":     gen.BarabasiAlbert(200, 2, gen.WeightUniform, 13),
	}
	orderings := []OrderingKind{OrderND, OrderBFS, OrderNatural, OrderMinDegree}
	semirings := []*semiring.Kernels{semiring.MinPlusKernels, semiring.MaxMinKernels}
	for gname, g := range graphs {
		for _, ok := range orderings {
			for _, K := range semirings {
				name := fmt.Sprintf("%s/%v/%s", gname, ok, K.Name)
				t.Run(name, func(t *testing.T) {
					opts := Options{Ordering: ok, EtreeParallel: true, Semiring: K, MaxBlock: 48}
					seqPlan, err := NewPlan(g, opts)
					if err != nil {
						t.Fatal(err)
					}
					// Sequential reference: one supernode at a time.
					ref, err := seqPlan.SolveWith(1, false)
					if err != nil {
						t.Fatal(err)
					}
					for _, sched := range []ScheduleKind{ScheduleDAG, ScheduleLevel} {
						o := opts
						o.Schedule = sched
						plan, err := NewPlan(g, o)
						if err != nil {
							t.Fatal(err)
						}
						res, err := plan.SolveWith(4, true)
						if err != nil {
							t.Fatal(err)
						}
						if !res.Dense().EqualTol(ref.Dense(), 1e-9) {
							t.Fatalf("%v schedule diverged from sequential elimination", sched)
						}
					}
				})
			}
		}
	}
}

// TestScheduleEquivalenceRandom fuzzes small random graphs (including
// disconnected ones) through both parallel schedules at several thread
// counts against the dense Floyd-Warshall reference.
func TestScheduleEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng)
		want := Closure(g.ToDense())
		for _, sched := range []ScheduleKind{ScheduleDAG, ScheduleLevel} {
			opts := DefaultOptions()
			opts.Schedule = sched
			plan, err := NewPlan(g, opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, threads := range []int{2, 8} {
				res, err := plan.SolveWith(threads, true)
				if err != nil {
					t.Fatal(err)
				}
				if !res.Dense().EqualTol(want, 1e-9) {
					t.Fatalf("trial %d: %v schedule threads=%d diverged from Floyd-Warshall", trial, sched, threads)
				}
			}
		}
	}
}

// TestSchedulePathTracking: next-hop matrices must yield valid shortest
// paths under the DAG schedule (tie-breaks may differ between schedules,
// so we validate path weight, not hop identity).
func TestSchedulePathTracking(t *testing.T) {
	g := gen.GeometricKNN(150, 2, 3, gen.WeightUniform, 23)
	opts := DefaultOptions()
	opts.TrackPaths = true
	opts.Schedule = ScheduleDAG
	plan, err := NewPlan(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.SolveWith(4, true)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u += 7 {
		for v := 0; v < g.N; v += 11 {
			d := res.At(u, v)
			path, okp := res.Path(u, v)
			if math.IsInf(d, 1) {
				if okp {
					t.Fatalf("path returned for unreachable pair (%d,%d)", u, v)
				}
				continue
			}
			if !okp {
				t.Fatalf("no path for reachable pair (%d,%d)", u, v)
			}
			var sum float64
			for i := 1; i < len(path); i++ {
				w, ok := g.Weight(path[i-1], path[i])
				if !ok {
					t.Fatalf("path (%d,%d) uses non-edge %d-%d", u, v, path[i-1], path[i])
				}
				sum += w
			}
			if math.Abs(sum-d) > 1e-9*(1+math.Abs(d)) {
				t.Fatalf("path weight %v != distance %v for (%d,%d)", sum, d, u, v)
			}
		}
	}
}

// TestFactorScheduleEquivalence: the factor-only elimination must produce
// identical SSSP rows under both schedules and sequential factorization.
func TestFactorScheduleEquivalence(t *testing.T) {
	g := gen.RoadNetwork(14, 14, 0.3, 31)
	ref := func() []float64 {
		opts := DefaultOptions()
		plan, err := NewPlan(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFactor(plan, 1)
		if err != nil {
			t.Fatal(err)
		}
		return f.SSSP(3)
	}()
	for _, sched := range []ScheduleKind{ScheduleDAG, ScheduleLevel} {
		opts := DefaultOptions()
		opts.Schedule = sched
		plan, err := NewPlan(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFactor(plan, 4)
		if err != nil {
			t.Fatal(err)
		}
		got := f.SSSP(3)
		for i := range got {
			if math.Abs(got[i]-ref[i]) > 1e-9 && !(math.IsInf(got[i], 1) && math.IsInf(ref[i], 1)) {
				t.Fatalf("%v factor: SSSP[%d] = %v, want %v", sched, i, got[i], ref[i])
			}
		}
	}
}
