package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/order"
	"repro/internal/semiring"
)

// testGraphs returns a small suite spanning the structural classes the
// engine must handle: meshes, geometric, expander-like, disconnected.
func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	gs := map[string]*graph.Graph{
		"grid8x8":    gen.Grid2D(8, 8, gen.WeightUniform, 1),
		"grid13x7":   gen.Grid2D(13, 7, gen.WeightUniform, 2),
		"geoknn":     gen.GeometricKNN(150, 2, 4, gen.WeightEuclidean, 3),
		"er":         gen.ErdosRenyi(120, 4, gen.WeightUniform, 4),
		"ba":         gen.BarabasiAlbert(100, 3, gen.WeightUniform, 5),
		"hypercube6": gen.Hypercube(6, gen.WeightUniform, 6),
		"path":       gen.Grid2D(40, 1, gen.WeightUniform, 7),
		"tiny":       gen.Grid2D(2, 2, gen.WeightUnit, 8),
	}
	// Disconnected: two grids side by side with no joining edges.
	g1 := gen.Grid2D(6, 6, gen.WeightUniform, 9)
	edges := g1.Edges()
	for _, e := range gen.Grid2D(5, 5, gen.WeightUniform, 10).Edges() {
		edges = append(edges, graph.Edge{U: e.U + 36, V: e.V + 36, W: e.W})
	}
	gs["disconnected"] = graph.MustFromEdges(36+25, edges)
	return gs
}

func TestSuperFWMatchesNaiveFW(t *testing.T) {
	orderings := []OrderingKind{OrderND, OrderBFS, OrderRCM, OrderNatural, OrderMinDegree}
	for name, g := range testGraphs(t) {
		want := Closure(g.ToDense())
		for _, ok := range orderings {
			for _, threads := range []int{1, 4} {
				for _, etree := range []bool{true, false} {
					plan, err := NewPlan(g, Options{Ordering: ok, Threads: threads, EtreeParallel: etree, MaxBlock: 16, LeafSize: 12})
					if err != nil {
						t.Fatalf("%s/%v: NewPlan: %v", name, ok, err)
					}
					res, err := plan.Solve()
					if err != nil {
						t.Fatalf("%s/%v: Solve: %v", name, ok, err)
					}
					got := res.Dense()
					if !got.EqualTol(want, 1e-9) {
						t.Errorf("%s ordering=%v threads=%d etree=%v: distance matrix mismatch", name, ok, threads, etree)
					}
				}
			}
		}
	}
}

func TestSuperFWGridNDCustomOrdering(t *testing.T) {
	g := gen.Grid2D(12, 12, gen.WeightUniform, 42)
	ord := order.GridND(12, 12, 8)
	plan, err := NewPlan(g, Options{Ordering: OrderCustom, Custom: &ord, MaxBlock: 16})
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	res, err := plan.SolveWith(2, true)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	want := Closure(g.ToDense())
	if !res.Dense().EqualTol(want, 1e-9) {
		t.Fatal("GridND custom ordering produced wrong distances")
	}
	if plan.TopSep != 12 {
		t.Errorf("grid 12x12 top separator = %d, want 12", plan.TopSep)
	}
}

func TestResultAtMatchesDense(t *testing.T) {
	g := gen.GeometricKNN(80, 2, 3, gen.WeightUniform, 11)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	dense := res.Dense()
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		u, v := rng.Intn(g.N), rng.Intn(g.N)
		if res.At(u, v) != dense.At(u, v) {
			t.Fatalf("At(%d,%d)=%g but Dense says %g", u, v, res.At(u, v), dense.At(u, v))
		}
	}
}

func TestSolveInitMatrixPotential(t *testing.T) {
	g := gen.GeometricKNN(120, 2, 4, gen.WeightUniform, 21)
	p := gen.Potential(g.N, 2.0, 22)
	init := g.ToDensePotential(p)
	// Some arcs must actually be negative for this test to mean anything.
	neg := 0
	for i := 0; i < init.Rows; i++ {
		for _, v := range init.Row(i) {
			if v < 0 {
				neg++
			}
		}
	}
	if neg == 0 {
		t.Fatal("potential instance has no negative arcs")
	}
	want := Closure(init)
	if semiring.HasNegativeCycle(want) {
		t.Fatal("potential instance must not contain negative cycles")
	}
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.SolveInitMatrix(init, 2, true)
	if err != nil {
		t.Fatalf("SolveInitMatrix: %v", err)
	}
	if !res.Dense().EqualTol(want, 1e-9) {
		t.Fatal("negative-arc instance: SuperFW disagrees with naive FW")
	}
	// Recover original distances via the potential and compare with a
	// direct solve of the unweighted-potential instance.
	plain, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N; u += 13 {
		for v := 0; v < g.N; v += 17 {
			got := res.At(u, v) - p[u] + p[v]
			if diff := got - plain.At(u, v); diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("potential recovery failed at (%d,%d): %g vs %g", u, v, got, plain.At(u, v))
			}
		}
	}
}

func TestNegativeCycleDetected(t *testing.T) {
	// A 3-cycle with total weight -1 (symmetric negative edge would
	// already be a 2-cycle; build the init matrix directly).
	g := graph.MustFromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1}})
	init := semiring.NewInfMat(3, 3)
	for i := 0; i < 3; i++ {
		init.Set(i, i, 0)
	}
	// Directed cycle 0→1→2→0 of weight -3; reverse arcs expensive.
	init.Set(0, 1, -1)
	init.Set(1, 2, -1)
	init.Set(2, 0, -1)
	init.Set(1, 0, 10)
	init.Set(2, 1, 10)
	init.Set(0, 2, 10)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.SolveInitMatrix(init, 1, false)
	if err == nil {
		t.Fatal("expected negative-cycle error")
	}
	if res == nil || !res.HasNegativeCycle() {
		t.Fatal("result should flag the negative cycle")
	}
}

func TestPlannedOpsOrdering(t *testing.T) {
	g := gen.Grid2D(24, 24, gen.WeightUniform, 31)
	nd, err := NewPlan(g, Options{Ordering: OrderND, MaxBlock: 32, LeafSize: 24})
	if err != nil {
		t.Fatal(err)
	}
	nat, err := NewPlan(g, Options{Ordering: OrderNatural, MaxBlock: 32})
	if err != nil {
		t.Fatal(err)
	}
	n := int64(g.N)
	dense := n * n * n
	if nd.PlannedOps() >= nat.PlannedOps() {
		t.Errorf("ND ops %d should beat natural-order ops %d on a grid", nd.PlannedOps(), nat.PlannedOps())
	}
	if nd.PlannedOps() >= dense {
		t.Errorf("ND ops %d should beat dense n³ = %d", nd.PlannedOps(), dense)
	}
	if nd.CriticalPathOps() >= nd.PlannedOps() {
		t.Errorf("critical path %d should be far below total work %d", nd.CriticalPathOps(), nd.PlannedOps())
	}
}

func TestPlanStructure(t *testing.T) {
	g := gen.GeometricKNN(300, 2, 4, gen.WeightUniform, 41)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !graph.IsPermutation(plan.Perm) {
		t.Fatal("Perm is not a permutation")
	}
	if msg := plan.Sn.Check(); msg != "" {
		t.Fatalf("supernode check: %s", msg)
	}
	if plan.TopSep <= 0 {
		t.Error("ND plan should report a top separator")
	}
	if plan.NumSupernodes() < 2 {
		t.Error("expected multiple supernodes")
	}
	// BFS plan computes fill.
	bfs, err := NewPlan(g, Options{Ordering: OrderBFS})
	if err != nil {
		t.Fatal(err)
	}
	if bfs.FillCount < int64(g.M()) {
		t.Errorf("BFS fill %d should be at least m=%d", bfs.FillCount, g.M())
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	g := graph.MustFromEdges(0, nil)
	if _, err := NewPlan(g, DefaultOptions()); err == nil {
		t.Fatal("expected error for empty graph")
	}
}

func TestSingleVertex(t *testing.T) {
	g := graph.MustFromEdges(1, nil)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.At(0, 0) != 0 {
		t.Fatalf("D[0][0] = %g, want 0", res.At(0, 0))
	}
}

func TestAutotuneMaxBlock(t *testing.T) {
	g := gen.GeometricKNN(400, 2, 3, gen.WeightUniform, 99)
	best, err := AutotuneMaxBlock(g, DefaultOptions(), []int{16, 64})
	if err != nil {
		t.Fatal(err)
	}
	if best != 16 && best != 64 {
		t.Fatalf("autotune returned non-candidate %d", best)
	}
	// Sampled path: a graph above the sample cap must still work.
	big := gen.RoadNetwork(60, 60, 0.3, 100)
	best2, err := AutotuneMaxBlock(big, DefaultOptions(), []int{32, 128})
	if err != nil {
		t.Fatal(err)
	}
	if best2 != 32 && best2 != 128 {
		t.Fatalf("autotune returned non-candidate %d", best2)
	}
}

func TestAutotuneGemm(t *testing.T) {
	prev := semiring.CurrentGemmTuning()
	defer semiring.SetGemmTuning(prev)
	g := gen.GeometricKNN(400, 2, 3, gen.WeightUniform, 103)
	cands := []semiring.GemmTuning{
		semiring.DefaultGemmTuning(),
		{KTile: 32, JTile: 256, GemmSmall: 512, DenseMinFinite: 0.7,
			DenseMinOps: 1 << 20, ParMinRows: 192, ParMinOps: 1 << 24},
	}
	best, err := AutotuneGemm(g, DefaultOptions(), cands)
	if err != nil {
		t.Fatal(err)
	}
	if best != cands[0] && best != cands[1] {
		t.Fatalf("autotune returned non-candidate %+v", best)
	}
	if got := semiring.CurrentGemmTuning(); got != best {
		t.Fatalf("winner %+v not installed (current %+v)", best, got)
	}
	// Correctness with the winner installed.
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Dense().EqualTol(Closure(g.ToDense()), 1e-9) {
		t.Fatal("solve wrong under autotuned gemm tuning")
	}
	if res.Kernel.Calls == 0 || res.Kernel.DenseCalls+res.Kernel.StreamCalls != res.Kernel.Calls {
		t.Fatalf("kernel counter delta inconsistent: %+v", res.Kernel)
	}
}

func TestSolveProfiled(t *testing.T) {
	g := gen.GeometricKNN(300, 2, 3, gen.WeightUniform, 101)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, threads := range []int{1, 4} {
		res, prof, err := plan.SolveProfiled(threads, true)
		if err != nil {
			t.Fatal(err)
		}
		want := Closure(g.ToDense())
		if !res.Dense().EqualTol(want, 1e-9) {
			t.Fatal("profiled solve changed distances")
		}
		if prof.Diag.Load() <= 0 || prof.Outer.Load() <= 0 {
			t.Error("stage counters should be positive")
		}
		if len(prof.Levels) != len(plan.Sn.Levels) {
			t.Errorf("got %d level records, want %d", len(prof.Levels), len(plan.Sn.Levels))
		}
		total := 0
		for _, l := range prof.Levels {
			total += l.Vertices
		}
		if total != g.N {
			t.Errorf("levels cover %d vertices, want %d", total, g.N)
		}
		if prof.String() == "" {
			t.Error("profile rendering empty")
		}
		if prof.Kernel.Calls == 0 || prof.Kernel != res.Kernel {
			t.Errorf("profile kernel counters %+v should be non-zero and match result %+v",
				prof.Kernel, res.Kernel)
		}
		if prof.Kernel.FusedElims+prof.Kernel.StagedElims == 0 {
			t.Error("no eliminations recorded in the fused/staged counters")
		}
		if prof.Kernel.DiagNS == 0 || prof.Kernel.OuterNS == 0 {
			t.Errorf("per-phase timings missing from kernel counters: %+v", prof.Kernel)
		}
		if !strings.Contains(prof.String(), "fused pipeline") {
			t.Error("profile rendering missing the fused-pipeline line")
		}
	}
}

func TestPlanStatsString(t *testing.T) {
	g := gen.GeometricKNN(200, 2, 3, gen.WeightUniform, 102)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := plan.Stats()
	if st.N != g.N || st.M != g.M() {
		t.Error("stats sizes wrong")
	}
	if st.Supernodes != plan.NumSupernodes() {
		t.Error("supernode count mismatch")
	}
	if st.MedianBlock <= 0 || st.MaxBlock < st.MedianBlock {
		t.Errorf("block stats inconsistent: median %d max %d", st.MedianBlock, st.MaxBlock)
	}
	if st.WorkReduction <= 1 {
		t.Errorf("ND on a planar graph should reduce work, got %.2f", st.WorkReduction)
	}
	out := st.String()
	for _, want := range []string{"supernodes", "top separator", "planned ops"} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	// BFS plan has fill: the fill line must appear.
	bfs, err := NewPlan(g, Options{Ordering: OrderBFS})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(bfs.Stats().String(), "symbolic fill") {
		t.Error("BFS stats should report fill")
	}
}
