package core

import (
	"bytes"
	"context"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/par"
)

// chaosPlan builds a graph big enough to have many supernodes, so
// cancellation and panic injection land mid-factorization rather than
// after the interesting work is already done.
func chaosPlan(t *testing.T) *Plan {
	t.Helper()
	g := gen.RoadNetwork(20, 20, 0.3, 97)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestChaosFactorCancel(t *testing.T) {
	defer fault.Reset()
	// Stretch each supernode elimination so the factorization is slow
	// enough that a prompt return can only come from the ctx check, not
	// from the work simply finishing first.
	if err := fault.Enable("core.factor.eliminate", "sleep=20ms"); err != nil {
		t.Fatal(err)
	}
	plan := chaosPlan(t)
	for _, threads := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(30 * time.Millisecond)
			cancel()
		}()
		start := time.Now()
		f, err := NewFactorCtx(ctx, plan, threads)
		elapsed := time.Since(start)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("threads=%d: got (%v, %v), want context.Canceled", threads, f, err)
		}
		// The full factorization would take sleep × supernodes — well over
		// a second on this plan. Cancellation must cut that short.
		if elapsed > 2*time.Second {
			t.Errorf("threads=%d: cancellation took %v, not prompt", threads, elapsed)
		}
	}
}

func TestChaosSolveCancel(t *testing.T) {
	defer fault.Reset()
	if err := fault.Enable("core.eliminate", "sleep=20ms"); err != nil {
		t.Fatal(err)
	}
	plan := chaosPlan(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := plan.SolveCtx(ctx)
	elapsed := time.Since(start)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveCtx error = %v, want context.Canceled", err)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, not prompt", elapsed)
	}
}

func TestChaosFactorPanicAttribution(t *testing.T) {
	defer fault.Reset()
	// Fire on the 5th supernode so the panic comes from a worker that is
	// genuinely mid-DAG, not the first node on the caller goroutine.
	if err := fault.Enable("core.factor.eliminate", "panic@5"); err != nil {
		t.Fatal(err)
	}
	plan := chaosPlan(t)
	for _, threads := range []int{1, 4} {
		fault.Reset()
		if err := fault.Enable("core.factor.eliminate", "panic@5"); err != nil {
			t.Fatal(err)
		}
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("threads=%d: factorization did not panic", threads)
				}
				tp, ok := r.(*par.TaskPanic)
				if !ok {
					t.Fatalf("threads=%d: panic value %T, want *par.TaskPanic", threads, r)
				}
				if tp.Node < 0 {
					t.Errorf("threads=%d: panic lost node identity: %+v", threads, tp)
				}
				if !strings.Contains(tp.Error(), "injected panic") {
					t.Errorf("threads=%d: panic message %q lost the cause", threads, tp.Error())
				}
				if len(tp.Stack) == 0 {
					t.Errorf("threads=%d: panic lost the worker stack", threads)
				}
			}()
			_, _ = NewFactorCtx(context.Background(), plan, threads)
		}()
	}
}

func TestChaosCheckpointTruncated(t *testing.T) {
	plan := chaosPlan(t)
	f, err := NewFactor(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) - 8, len(full) / 3} {
		if _, err := ReadFactor(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation to %d of %d bytes accepted", cut, len(full))
		}
	}
}

func TestChaosCheckpointBitFlip(t *testing.T) {
	plan := chaosPlan(t)
	f, err := NewFactor(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip single bits at positions spread across the checksummed body
	// (skip the 8-byte unhashed header, whose corruption is caught by the
	// magic/version checks instead).
	for _, pos := range []int{8, 16, len(full) / 2, len(full) - 9} {
		corrupt := append([]byte(nil), full...)
		corrupt[pos] ^= 0x40
		f2, err := ReadFactor(bytes.NewReader(corrupt))
		if err == nil {
			t.Errorf("bit flip at %d accepted (factor %v)", pos, f2 != nil)
		}
	}
	// The pristine bytes must still load — the detector has no false
	// positives on this input.
	if _, err := ReadFactor(bytes.NewReader(full)); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
}

func TestChaosCheckpointShortWrite(t *testing.T) {
	defer fault.Reset()
	plan := chaosPlan(t)
	f, err := NewFactor(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	var probe bytes.Buffer
	if _, err := f.WriteTo(&probe); err != nil {
		t.Fatal(err)
	}
	// Cut the write off at half the real size: WriteTo must surface the
	// error, and whatever made it out must be rejected by ReadFactor.
	if err := fault.Enable("core.factorio.write", "shortwrite="+strconv.Itoa(probe.Len()/2)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := f.WriteTo(&buf); err == nil {
		t.Fatal("short write not surfaced by WriteTo")
	}
	fault.Reset()
	if _, err := ReadFactor(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("short-written checkpoint accepted by ReadFactor")
	}
}

func TestChaosSaveLoadFactorFile(t *testing.T) {
	plan := chaosPlan(t)
	f, err := NewFactor(plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/factor.sfwf"
	if err := SaveFactorFile(path, f); err != nil {
		t.Fatal(err)
	}
	f2, err := LoadFactorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < plan.G.N; src += 41 {
		a, b := f.SSSP(src), f2.SSSP(src)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("SSSP(%d)[%d] differs after file round trip", src, v)
			}
		}
	}
	// A save that fails mid-write must leave the previous checkpoint
	// untouched under the final name.
	defer fault.Reset()
	if err := fault.Enable("core.factorio.write", "shortwrite=64"); err != nil {
		t.Fatal(err)
	}
	if err := SaveFactorFile(path, f); err == nil {
		t.Fatal("failed save reported success")
	}
	fault.Reset()
	if _, err := LoadFactorFile(path); err != nil {
		t.Fatalf("old checkpoint damaged by failed save: %v", err)
	}
}
