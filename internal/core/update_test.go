package core

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestDecreaseEdgeMatchesResolve(t *testing.T) {
	g := gen.GeometricKNN(80, 2, 3, gen.WeightUniform, 61)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	edges := g.Edges()
	for trial := 0; trial < 12; trial++ {
		// Alternate between improving an existing edge and inserting a
		// brand new one.
		var u, v int
		var w float64
		if trial%2 == 0 {
			e := edges[rng.Intn(len(edges))]
			u, v, w = e.U, e.V, e.W*0.3
		} else {
			u, v = rng.Intn(g.N), rng.Intn(g.N)
			if u == v {
				continue
			}
			w = 0.05 + rng.Float64()*0.2
		}
		if err := res.DecreaseEdge(u, v, w, 2); err != nil {
			t.Fatal(err)
		}
		// Reference: rebuild the graph with the new edge and re-solve.
		edges = append(edges, graph.Edge{U: u, V: v, W: w})
		g = graph.MustFromEdges(g.N, edges)
		want := Closure(g.ToDense())
		if !res.Dense().EqualTol(want, 1e-9) {
			t.Fatalf("trial %d: incremental update diverged from re-solve", trial)
		}
		edges = g.Edges() // dedup: keep min weights as the graph does
	}
}

func TestDecreaseEdgeWithPaths(t *testing.T) {
	g := gen.Grid2D(6, 6, gen.WeightUniform, 63)
	opts := DefaultOptions()
	opts.TrackPaths = true
	plan, err := NewPlan(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Insert a shortcut across the grid and verify paths stay valid.
	if err := res.DecreaseEdge(0, 35, 0.01, 2); err != nil {
		t.Fatal(err)
	}
	g2 := graph.MustFromEdges(36, append(g.Edges(), graph.Edge{U: 0, V: 35, W: 0.01}))
	checkAllPaths(t, g2, res)
	want := Closure(g2.ToDense())
	if !res.Dense().EqualTol(want, 1e-9) {
		t.Fatal("distances diverged after path-tracked update")
	}
}

func TestDecreaseEdgeNoImprovement(t *testing.T) {
	g := gen.Grid2D(4, 4, gen.WeightUnit, 64)
	plan, _ := NewPlan(g, DefaultOptions())
	res, _ := plan.Solve()
	before := res.Dense()
	// Weight above the current distance: closure must be untouched.
	if err := res.DecreaseEdge(0, 15, 100, 1); err != nil {
		t.Fatal(err)
	}
	if !res.Dense().Equal(before) {
		t.Fatal("non-improving update changed the matrix")
	}
}

func TestDecreaseEdgeRejections(t *testing.T) {
	g := gen.Grid2D(3, 3, gen.WeightUnit, 65)
	plan, _ := NewPlan(g, DefaultOptions())
	res, _ := plan.Solve()
	before := res.Dense()
	// A non-negative self-loop is an actual no-op, not an error.
	if err := res.DecreaseEdge(0, 0, 1, 1); err != nil {
		t.Errorf("self loop must be a no-op, got %v", err)
	}
	if !res.Dense().Equal(before) {
		t.Error("self-loop no-op changed the matrix")
	}
	if err := res.DecreaseEdge(0, 99, 1, 1); err == nil {
		t.Error("out of range must be rejected")
	}
	if err := res.DecreaseEdge(0, 1, -0.5, 1); err == nil {
		t.Error("negative undirected edge must be rejected")
	}
}

// TestDecreaseEdgeParallelRace drives the detour kernel with full
// parallelism on a graph large enough that every worker owns several
// rows, including the one holding row b. Run under -race (make race)
// this is the regression test for the unsynchronized row-b write/read
// the kernel used to have.
func TestDecreaseEdgeParallelRace(t *testing.T) {
	g := gen.GeometricKNN(400, 2, 4, gen.WeightUniform, 71)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	threads := runtime.GOMAXPROCS(0)
	rng := rand.New(rand.NewSource(72))
	edges := g.Edges()
	for trial := 0; trial < 4; trial++ {
		e := edges[rng.Intn(len(edges))]
		w := e.W * 0.25
		if err := res.DecreaseEdge(e.U, e.V, w, threads); err != nil {
			t.Fatal(err)
		}
		edges = append(edges, graph.Edge{U: e.U, V: e.V, W: w})
	}
	want := Closure(graph.MustFromEdges(g.N, edges).ToDense())
	if !res.Dense().EqualTol(want, 1e-9) {
		t.Fatal("parallel incremental update diverged from re-solve")
	}
}

func TestDecreaseArcAsymmetric(t *testing.T) {
	g := gen.GeometricKNN(60, 2, 3, gen.WeightUniform, 66)
	p := gen.Potential(g.N, 1.5, 67)
	init := g.ToDensePotential(p)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.SolveInitMatrix(init, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	// Add a directed arc 5→40 with a (possibly negative) reweighted value.
	w := 0.02 + p[5] - p[40]
	if err := res.DecreaseArc(5, 40, w, 2); err != nil {
		t.Fatal(err)
	}
	want := init.Clone()
	if w < want.At(5, 40) {
		want.Set(5, 40, w)
	}
	want = Closure(want)
	if !res.Dense().EqualTol(want, 1e-9) {
		t.Fatal("directed arc update diverged from re-solve")
	}
	// An arc that closes a negative cycle must be rejected.
	if err := res.DecreaseArc(40, 5, -res.At(5, 40)-1, 1); err == nil {
		t.Error("negative-cycle arc must be rejected")
	}
	// A negative self-loop is a negative cycle too; a non-negative one is
	// a no-op.
	if err := res.DecreaseArc(7, 7, -0.5, 1); err == nil {
		t.Error("negative self-loop arc must be rejected")
	}
	if err := res.DecreaseArc(7, 7, 0.5, 1); err != nil {
		t.Errorf("non-negative self-loop arc must be a no-op, got %v", err)
	}
}
