package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// randomGraph builds a random graph whose shape (size, density,
// connectivity, weight range) is itself randomized — the property-based
// sweep for the full pipeline.
func randomGraph(rng *rand.Rand) *graph.Graph {
	n := 2 + rng.Intn(60)
	density := rng.Float64() * 4 // expected degree 0..4 → often disconnected
	var edges []graph.Edge
	m := int(float64(n) * density / 2)
	for i := 0; i < m; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		// Mix of scales, including zero-ish weights.
		w := rng.Float64()
		if rng.Intn(4) == 0 {
			w *= 100
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: w})
	}
	return graph.MustFromEdges(n, edges)
}

// TestSuperFWQuickEquivalence is the central property: for ANY graph,
// ordering, block size, thread count and scheduling mode, SuperFw must
// produce exactly the Floyd-Warshall closure.
func TestSuperFWQuickEquivalence(t *testing.T) {
	f := func(seed int64, ordRaw, blockRaw, threadRaw uint8, etree, paths bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		want := Closure(g.ToDense())
		orderings := []OrderingKind{OrderND, OrderBFS, OrderRCM, OrderNatural}
		opts := Options{
			Ordering:      orderings[int(ordRaw)%len(orderings)],
			MaxBlock:      1 + int(blockRaw)%40,
			LeafSize:      1 + int(blockRaw)%20,
			Threads:       1 + int(threadRaw)%5,
			EtreeParallel: etree,
			TrackPaths:    paths,
		}
		plan, err := NewPlan(g, opts)
		if err != nil {
			t.Logf("seed %d: NewPlan: %v", seed, err)
			return false
		}
		res, err := plan.Solve()
		if err != nil {
			t.Logf("seed %d: Solve: %v", seed, err)
			return false
		}
		if !res.Dense().EqualTol(want, 1e-9) {
			t.Logf("seed %d: mismatch (n=%d, opts=%+v)", seed, g.N, opts)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestDecreaseEdgeQuick: the incremental update must agree with a fresh
// solve for arbitrary graphs and arbitrary improving edges.
func TestDecreaseEdgeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		plan, err := NewPlan(g, DefaultOptions())
		if err != nil {
			return false
		}
		res, err := plan.Solve()
		if err != nil {
			return false
		}
		u, v := rng.Intn(g.N), rng.Intn(g.N)
		if u == v {
			return true
		}
		w := rng.Float64()
		if err := res.DecreaseEdge(u, v, w, 1+rng.Intn(3)); err != nil {
			return false
		}
		g2 := graph.MustFromEdges(g.N, append(g.Edges(), graph.Edge{U: u, V: v, W: w}))
		want := Closure(g2.ToDense())
		return res.Dense().EqualTol(want, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPlannedOpsNeverExceedDenseQuick: the planner's work estimate on any
// graph must never exceed the dense n³ bound by more than the supernodal
// padding factor, and must be exactly n³-comparable for a single
// supernode.
func TestPlannedOpsPositiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		plan, err := NewPlan(g, DefaultOptions())
		if err != nil {
			return false
		}
		ops := plan.PlannedOps()
		if ops <= 0 {
			return false
		}
		// Work can never be below n² (every pair is updated at least
		// once across the elimination) for connected graphs; use the
		// weaker ops ≥ n bound that holds always.
		return ops >= int64(g.N)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
