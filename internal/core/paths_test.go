package core

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/semiring"
)

// checkAllPaths verifies for every (u,v) pair that the reconstructed path
// (a) starts at u and ends at v, (b) uses only real edges, and (c) has
// total weight equal to the reported distance.
func checkAllPaths(t *testing.T, g *graph.Graph, res *Result) {
	t.Helper()
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			d := res.At(u, v)
			path, ok := res.Path(u, v)
			if math.IsInf(d, 1) {
				if ok {
					t.Fatalf("unreachable pair (%d,%d) returned a path", u, v)
				}
				continue
			}
			if !ok {
				t.Fatalf("reachable pair (%d,%d) dist=%g returned no path", u, v, d)
			}
			if path[0] != u || path[len(path)-1] != v {
				t.Fatalf("path (%d,%d) has wrong endpoints: %v", u, v, path)
			}
			sum := 0.0
			for i := 0; i+1 < len(path); i++ {
				w, exists := g.Weight(path[i], path[i+1])
				if !exists {
					t.Fatalf("path (%d,%d) uses non-edge (%d,%d): %v", u, v, path[i], path[i+1], path)
				}
				sum += w
			}
			if math.Abs(sum-d) > 1e-9 {
				t.Fatalf("path (%d,%d) weight %g != distance %g (path %v)", u, v, sum, d, path)
			}
		}
	}
}

func TestPathReconstruction(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid":         gen.Grid2D(7, 6, gen.WeightUniform, 51),
		"geo":          gen.GeometricKNN(90, 2, 3, gen.WeightEuclidean, 52),
		"ba":           gen.BarabasiAlbert(60, 3, gen.WeightUniform, 53),
		"disconnected": disconnectedPair(),
	}
	for name, g := range graphs {
		for _, ok := range []OrderingKind{OrderND, OrderBFS} {
			for _, threads := range []int{1, 4} {
				opts := Options{Ordering: ok, TrackPaths: true, Threads: threads, EtreeParallel: true, MaxBlock: 16, LeafSize: 12}
				plan, err := NewPlan(g, opts)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				res, err := plan.Solve()
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				checkAllPaths(t, g, res)
			}
		}
	}
}

func disconnectedPair() *graph.Graph {
	e := gen.Grid2D(4, 4, gen.WeightUniform, 54).Edges()
	for _, x := range gen.Grid2D(3, 3, gen.WeightUniform, 55).Edges() {
		e = append(e, graph.Edge{U: x.U + 16, V: x.V + 16, W: x.W})
	}
	return graph.MustFromEdges(25, e)
}

func TestPathTrackingLargeDiagonal(t *testing.T) {
	// Force the ParallelBlockedFloydWarshallPaths diagonal path: one big
	// supernode (natural ordering, huge MaxBlock) over the cutoff.
	g := gen.ErdosRenyi(diagParallelCutoff+40, 6, gen.WeightUniform, 56)
	plan, err := NewPlan(g, Options{Ordering: OrderNatural, MaxBlock: g.N, TrackPaths: true, Threads: 4, EtreeParallel: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	checkAllPaths(t, g, res)
}

func TestPathSingleVertexAndSelf(t *testing.T) {
	g := gen.Grid2D(3, 3, gen.WeightUniform, 57)
	plan, err := NewPlan(g, Options{Ordering: OrderND, TrackPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	p, ok := res.Path(4, 4)
	if !ok || len(p) != 1 || p[0] != 4 {
		t.Fatalf("self path wrong: %v %v", p, ok)
	}
}

func TestPathWithoutTrackingPanics(t *testing.T) {
	g := gen.Grid2D(3, 3, gen.WeightUniform, 58)
	plan, _ := NewPlan(g, DefaultOptions())
	res, _ := plan.Solve()
	defer func() {
		if recover() == nil {
			t.Fatal("Path without TrackPaths should panic")
		}
	}()
	res.Path(0, 8)
}

func TestPathMatchesDistancesVsDijkstraStyle(t *testing.T) {
	// Path distances must equal the closure of the dense matrix.
	g := gen.GeometricKNN(70, 2, 4, gen.WeightEuclidean, 59)
	plan, err := NewPlan(g, Options{Ordering: OrderND, TrackPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := plan.Solve()
	if err != nil {
		t.Fatal(err)
	}
	want := Closure(g.ToDense())
	if !res.Dense().EqualTol(want, 1e-9) {
		t.Fatal("path-tracking solve changed distances")
	}
}

func TestFloydWarshallPathsKernel(t *testing.T) {
	// Kernel-level check: dense FW with paths on a random distance
	// matrix; every next-hop chain must terminate and match distances.
	g := gen.ErdosRenyi(40, 5, gen.WeightUniform, 60)
	D := g.ToDense()
	next := semiring.NewIntMat(g.N, g.N)
	semiring.InitNextHops(D, next)
	semiring.FloydWarshallPaths(D, next)
	want := Closure(g.ToDense())
	if !D.EqualTol(want, 1e-9) {
		t.Fatal("FW-with-paths changed distances")
	}
	for u := 0; u < g.N; u++ {
		for v := 0; v < g.N; v++ {
			if u == v || math.IsInf(D.At(u, v), 1) {
				continue
			}
			cur, hops, sum := u, 0, 0.0
			for cur != v {
				nx := next.At(cur, v)
				if nx < 0 || hops > g.N {
					t.Fatalf("broken chain at (%d,%d)", u, v)
				}
				w, ok := g.Weight(cur, int(nx))
				if !ok {
					t.Fatalf("non-edge in chain at (%d,%d)", u, v)
				}
				sum += w
				cur = int(nx)
				hops++
			}
			if math.Abs(sum-D.At(u, v)) > 1e-9 {
				t.Fatalf("chain weight %g != dist %g at (%d,%d)", sum, D.At(u, v), u, v)
			}
		}
	}
}
