package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/par"
	"repro/internal/semiring"
	"repro/internal/symbolic"
)

// tileSize is the row/column granularity at which panel and outer-product
// updates are split into parallel tasks. Tiles are cut deterministically
// from each supernode's own range, so two cousin eliminations sharing an
// ancestor supernode derive exactly the same ancestor tiles — which is
// what makes tile-keyed locking of A(k)×A(k) updates sound.
const tileSize = 256

// diagParallelCutoff is the diagonal-block size above which DiagUpdate
// switches from the scalar FW kernel to the parallel blocked kernel.
const diagParallelCutoff = 192

// Solve runs the numeric phase using the plan's default options and the
// graph's own edge weights. When Options.Context is set it is honored as
// the cancellation context.
func (p *Plan) Solve() (*Result, error) {
	return p.SolveCtx(p.Opts.context())
}

// SolveCtx is Solve with an explicit cancellation context: ctx is
// checked cooperatively at supernode granularity during the numeric
// phase, so a cancelled or expired context aborts the elimination
// promptly and returns ctx.Err().
func (p *Plan) SolveCtx(ctx context.Context) (*Result, error) {
	return p.solveWithCtx(ctx, p.Opts.Threads, p.Opts.EtreeParallel)
}

// SolveWith runs the numeric phase with explicit parallelism controls.
func (p *Plan) SolveWith(threads int, etreeParallel bool) (*Result, error) {
	return p.solveWithCtx(p.Opts.context(), threads, etreeParallel)
}

func (p *Plan) solveWithCtx(ctx context.Context, threads int, etreeParallel bool) (*Result, error) {
	K := p.Opts.Semiring
	D := p.PG.ToDenseWith(K.Zero, K.One)
	return p.finish(ctx, D, threads, etreeParallel)
}

// SolveInitMatrix runs the numeric phase on a caller-supplied initial
// distance matrix given in ORIGINAL vertex order. The matrix must have
// the same structural pattern as the plan's graph (finite off-diagonal
// entries only where edges exist) but its values may be asymmetric and
// negative — e.g. a potential-reweighted instance. Negative cycles are
// reported via the error and flagged on the result.
func (p *Plan) SolveInitMatrix(init semiring.Mat, threads int, etreeParallel bool) (*Result, error) {
	return p.SolveInitMatrixCtx(p.Opts.context(), init, threads, etreeParallel)
}

// SolveInitMatrixCtx is SolveInitMatrix with cooperative cancellation at
// supernode granularity.
func (p *Plan) SolveInitMatrixCtx(ctx context.Context, init semiring.Mat, threads int, etreeParallel bool) (*Result, error) {
	n := p.G.N
	if init.Rows != n || init.Cols != n {
		return nil, fmt.Errorf("core: init matrix is %d×%d, want %d×%d", init.Rows, init.Cols, n, n)
	}
	D := semiring.NewMat(n, n)
	semiring.Permute(D, init, p.Perm)
	return p.finish(ctx, D, threads, etreeParallel)
}

// state bundles the matrices a numeric solve operates on and the
// semiring kernels it runs.
type state struct {
	D     semiring.Mat
	next  semiring.IntMat
	track bool
	K     *semiring.Kernels
	prof  *Profile // nil unless SolveProfiled
}

// addStage accumulates elapsed time into a stage counter when profiling.
func (s *state) addStage(counter *atomic.Int64, t0 time.Time) {
	if s.prof != nil {
		counter.Add(int64(time.Since(t0)))
	}
}

// iview returns the next-hop sub-block mirroring a distance view, or a
// zero IntMat when path tracking is off.
func (s *state) iview(i0, j0, r, c int) semiring.IntMat {
	if !s.track {
		return semiring.IntMat{}
	}
	return s.next.View(i0, j0, r, c)
}

// mul dispatches a min-plus multiply-add with or without next-hop
// maintenance.
func (s *state) mul(C, A, B semiring.Mat, nc, na semiring.IntMat) {
	if s.track {
		s.K.MulAddPaths(C, A, B, nc, na)
	} else {
		s.K.MulAdd(C, A, B)
	}
}

// mulPacked is mul against a pre-packed B panel (fused path).
func (s *state) mulPacked(C, A semiring.Mat, P *semiring.PackedPanel, nc, na semiring.IntMat) {
	if s.track {
		s.K.MulAddPathsPacked(C, A, P, nc, na)
	} else {
		s.K.MulAddPacked(C, A, P)
	}
}

// fused reports whether this solve should run the fused packed-panel
// pipeline (toggle on and the kernel bundle provides the entry points).
func (s *state) fused() bool {
	return fusedElim.Load() && s.K.MulAddPacked != nil &&
		(!s.track || s.K.MulAddPathsPacked != nil)
}

func (p *Plan) finish(ctx context.Context, D semiring.Mat, threads int, etreeParallel bool) (*Result, error) {
	st := &state{D: D, track: p.Opts.TrackPaths, K: p.Opts.Semiring}
	if st.track {
		st.next = semiring.NewIntMat(D.Rows, D.Cols)
		semiring.InitNextHops(D, st.next)
	}
	k0 := semiring.ReadKernelCounters()
	t0 := time.Now()
	if err := p.eliminate(ctx, st, par.DefaultThreads(threads), etreeParallel); err != nil {
		return nil, err
	}
	res := &Result{D: D, Next: st.next, Perm: p.Perm, IPerm: p.IPerm,
		NumericTime: time.Since(t0), Kernel: semiring.ReadKernelCounters().Sub(k0)}
	if st.K.DetectNegCycle && res.HasNegativeCycle() {
		return res, fmt.Errorf("core: graph contains a negative-weight cycle")
	}
	return res, nil
}

// eliminate runs the supernodal elimination (Algorithm 3) on the permuted
// dense matrix. It returns ctx.Err() when the context is cancelled
// mid-elimination; the partially relaxed matrix must then be discarded.
func (p *Plan) eliminate(ctx context.Context, st *state, threads int, etreeParallel bool) error {
	sn := p.Sn
	cancellable := ctx.Done() != nil
	if threads <= 1 || !etreeParallel {
		// Sequential supernode traversal in ascending (postorder) index
		// order; intra-supernode updates may still run in parallel.
		for k := range sn.Ranges {
			if cancellable {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			par.Do("eliminate", k, threads, func(k, w int) { p.eliminateSupernode(st, k, w, nil) })
		}
		return nil
	}
	if p.Opts.Schedule == ScheduleLevel {
		// Etree level scheduling: supernodes within a level are cousins
		// and are eliminated concurrently; only their A(k)×A(k) outer
		// updates can collide, serialized by tile-keyed striped locks. A
		// barrier between levels enforces child-before-parent ordering.
		locks := par.NewStripedMutex(1024)
		for _, level := range sn.Levels {
			width := len(level)
			inner := threads / width
			if inner < 1 {
				inner = 1
			}
			lk := locks
			if width == 1 {
				lk = nil // single supernode in the level: no collisions
			}
			if err := par.ForCtx(ctx, width, threads, 1, func(i int) {
				p.eliminateSupernode(st, level[i], inner, lk)
			}); err != nil {
				return err
			}
		}
		return nil
	}
	// Dependency-driven DAG scheduling: a supernode is eliminated as soon
	// as its last child completes, with no inter-level barriers. Any two
	// concurrently running supernodes are mutually non-ancestral (an
	// ancestor's pending count transitively waits on every descendant),
	// i.e. cousins — so exactly as in the level schedule, only their
	// A(k)×A(k) outer updates can collide, and the same tile-keyed
	// striped locks serialize them. Tiles are anchored at supernode range
	// starts, so cousins derive identical ancestor tiles.
	lk := par.NewStripedMutex(1024)
	if sn.NumSupernodes() == 1 {
		lk = nil
	}
	return par.RunDAGCtx(ctx, sn.Parent, threads, func(k, inner int) {
		p.eliminateSupernode(st, k, inner, lk)
	})
}

// tile is a contiguous index range plus whether it belongs to an ancestor
// supernode (needed to decide locking on outer-product targets).
type tile struct {
	lo, hi   int
	ancestor bool
}

// reachTiles returns the tiles covering R(k) \ {k}: the descendant
// range [SubLo, Lo) followed by the ancestor supernodes — all of A(k)
// under Algorithm 3's default, or only the exact block structure
// struct(k) under ExactReach. Ranges are cut into tileSize chunks
// anchored at range starts, so cousins derive identical ancestor tiles.
func (p *Plan) reachTiles(k int) []tile {
	sn := p.Sn
	var tiles []tile
	addRange := func(lo, hi int, anc bool) {
		for t := lo; t < hi; t += tileSize {
			end := t + tileSize
			if end > hi {
				end = hi
			}
			tiles = append(tiles, tile{t, end, anc})
		}
	}
	r := sn.Ranges[k]
	if sn.SubLo[k] < r.Lo {
		addRange(sn.SubLo[k], r.Lo, false)
	}
	if p.upStruct != nil {
		for _, a := range p.upStruct[k] {
			ar := sn.Ranges[a]
			addRange(ar.Lo, ar.Hi, true)
		}
		return tiles
	}
	for _, a := range sn.Ancestors(k) {
		ar := sn.Ranges[a]
		addRange(ar.Lo, ar.Hi, true)
	}
	return tiles
}

// eliminateSupernode performs the DiagUpdate, PanelUpdate and OuterUpdate
// of supernode k. locks is non-nil only when cousin eliminations run
// concurrently; it serializes writes to shared ancestor×ancestor blocks.
//
// Panel updates run in place (A(r,k) ← A(r,k) ⊕ A(r,k)⊗A(k,k) writes the
// same block it reads). This is sound because the closed diagonal block
// has a zero diagonal and min-plus relaxation is monotone: every write is
// the length of a real path (never below the true shortest distance), and
// every canonical relaxation of the textbook schedule is still applied
// with operand values ≤ the textbook's, so the result is exactly the
// textbook result. The same argument covers the blocked FW kernels.
func (p *Plan) eliminateSupernode(st *state, k, threads int, locks *par.StripedMutex) {
	fault.Inject("core.eliminate")
	sn := p.Sn
	r := sn.Ranges[k]
	s := r.Size()
	D := st.D
	Akk := D.View(r.Lo, r.Lo, s, s)
	fused := st.fused()

	// DiagUpdate.
	tDiag := time.Now()
	switch {
	case s >= diagParallelCutoff:
		semiring.ParallelBlockedFWKernels(Akk, st.iview(r.Lo, r.Lo, s, s), st.track, 64, threads, st.K)
	case st.track:
		st.K.FWPaths(Akk, st.next.View(r.Lo, r.Lo, s, s))
	default:
		st.K.FW(Akk)
	}
	semiring.AddPhaseTime(semiring.PhaseDiag, time.Since(tDiag))
	if st.prof != nil {
		st.addStage(&st.prof.Diag, tDiag)
	}

	tiles := p.reachTiles(k)
	if len(tiles) == 0 {
		semiring.CountElimination(fused)
		return
	}

	// Fused path: the closed diagonal block is the B operand of every
	// column-panel update, so pack it once and reuse it across all
	// tiles. Reach tiles never overlap k's own range, so no panel write
	// touches the packed snapshot.
	var Pd *semiring.PackedPanel
	if fused {
		Pd = st.K.PackPanel(Akk)
	}

	// PanelUpdate: for every reach tile t, the row panel A(k,t) from the
	// left and the column panel A(t,k) from the right. Next-hop sources:
	// a row-panel improvement goes via kk inside the diagonal block, so
	// the first hop comes from next(k-range, k-range); a column-panel
	// improvement's first hop comes from next(t, k-range) — the operand
	// that plays the A role in C = C ⊕ A⊗B, in both cases. Row panels
	// stay on the staged MulAdd (their B operand is the destination
	// itself); column panels consume the packed diagonal.
	par.For(2*len(tiles), threads, 1, func(i int) {
		tPanel := time.Now()
		t := tiles[i/2]
		if i%2 == 0 {
			P := D.View(r.Lo, t.lo, s, t.hi-t.lo)
			st.mul(P, Akk, P, st.iview(r.Lo, t.lo, s, t.hi-t.lo), st.iview(r.Lo, r.Lo, s, s))
		} else {
			P := D.View(t.lo, r.Lo, t.hi-t.lo, s)
			nc := st.iview(t.lo, r.Lo, t.hi-t.lo, s)
			if Pd != nil {
				st.mulPacked(P, P, Pd, nc, nc)
			} else {
				st.mul(P, P, Akk, nc, nc)
			}
		}
		semiring.AddPhaseTime(semiring.PhasePanel, time.Since(tPanel))
		if st.prof != nil {
			st.addStage(&st.prof.Panel, tPanel)
		}
	})
	if Pd != nil {
		Pd.Release()
	}

	// OuterUpdate: A(ti,tj) ← A(ti,tj) ⊕ A(ti,k) ⊗ A(k,tj) over the full
	// reach×reach grid. Only ancestor×ancestor targets can be written by
	// concurrent cousin eliminations. Fused path: the row panel A(k,tj)
	// is the B operand of the whole tj column of the grid, so pack each
	// once (in parallel) and reuse it nt times; outer writes land on
	// reach×reach blocks, never on k's rows, so the snapshots stay valid.
	nt := len(tiles)
	var rowPacks []*semiring.PackedPanel
	if fused && nt > 1 {
		rowPacks = make([]*semiring.PackedPanel, nt)
		par.For(nt, threads, 1, func(j int) {
			tj := tiles[j]
			rowPacks[j] = st.K.PackPanel(D.View(r.Lo, tj.lo, s, tj.hi-tj.lo))
		})
	}
	par.For(nt*nt, threads, 0, func(idx int) {
		tOuter := time.Now()
		ti, tj := tiles[idx/nt], tiles[idx%nt]
		target := D.View(ti.lo, tj.lo, ti.hi-ti.lo, tj.hi-tj.lo)
		colPanel := D.View(ti.lo, r.Lo, ti.hi-ti.lo, s)
		nc := st.iview(ti.lo, tj.lo, ti.hi-ti.lo, tj.hi-tj.lo)
		na := st.iview(ti.lo, r.Lo, ti.hi-ti.lo, s)
		mul := func() {
			rowPanel := D.View(r.Lo, tj.lo, s, tj.hi-tj.lo)
			st.mul(target, colPanel, rowPanel, nc, na)
		}
		if rowPacks != nil {
			P := rowPacks[idx%nt]
			mul = func() { st.mulPacked(target, colPanel, P, nc, na) }
		}
		if locks != nil && ti.ancestor && tj.ancestor {
			key := uint64(ti.lo)*uint64(D.Rows) + uint64(tj.lo)
			locks.Lock(key)
			mul()
			locks.Unlock(key)
		} else {
			mul()
		}
		semiring.AddPhaseTime(semiring.PhaseOuter, time.Since(tOuter))
		if st.prof != nil {
			st.addStage(&st.prof.Outer, tOuter)
		}
	})
	for _, P := range rowPacks {
		if P != nil {
			P.Release()
		}
	}
	semiring.CountElimination(fused)
}

// Closure is the reference dense solution: it runs the scalar
// Floyd-Warshall algorithm on a copy of the graph's dense distance
// matrix. Used as ground truth in tests.
func Closure(D semiring.Mat) semiring.Mat {
	out := D.Clone()
	semiring.FloydWarshall(out)
	return out
}

// SymbolicOnly re-exports the supernode structure for inspection tools.
func (p *Plan) SymbolicOnly() *symbolic.Supernodes { return p.Sn }
