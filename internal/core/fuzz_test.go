package core

import (
	"bytes"
	"testing"

	"repro/internal/gen"
)

// FuzzReadFactor: arbitrary bytes must never panic the deserializer, and
// bit-flipped real files must either error or still satisfy structural
// invariants (they cannot be silently accepted as a DIFFERENT valid
// structure without tripping the supernode checks — value corruption is
// out of scope for a checksum-free format).
func FuzzReadFactor(f *testing.F) {
	g := gen.Grid2D(5, 5, gen.WeightUniform, 94)
	plan, err := NewPlan(g, DefaultOptions())
	if err != nil {
		f.Fatal(err)
	}
	fac, err := NewFactor(plan, 1)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := fac.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("SFWF"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return
		}
		fac, err := ReadFactor(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must answer queries without panicking.
		if fac.n > 0 {
			_ = fac.SSSP(0)
			_ = fac.Dist(0, fac.n-1)
		}
	})
}
