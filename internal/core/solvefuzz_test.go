package core

import (
	"testing"

	"repro/internal/graph"
)

// FuzzSolveMatchesNaive decodes arbitrary bytes into a small graph and
// checks the full supernodal pipeline against the scalar reference —
// differential fuzzing of the solver itself.
//
// Encoding: byte 0 = n (2..33); every following 3-byte group is an edge
// (u%n, v%n, weight w/16+0.1).
func FuzzSolveMatchesNaive(f *testing.F) {
	f.Add([]byte{4, 0, 1, 16, 1, 2, 32, 2, 3, 8})
	f.Add([]byte{2})
	f.Add([]byte{9, 0, 8, 1, 3, 4, 200, 8, 8, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 256 {
			return
		}
		n := int(data[0])%32 + 2
		var edges []graph.Edge
		rest := data[1:]
		for len(rest) >= 3 {
			u, v := int(rest[0])%n, int(rest[1])%n
			w := float64(rest[2])/16 + 0.1
			edges = append(edges, graph.Edge{U: u, V: v, W: w})
			rest = rest[3:]
		}
		g := graph.MustFromEdges(n, edges)
		want := Closure(g.ToDense())
		// Vary the configuration deterministically from the input.
		orderings := []OrderingKind{OrderND, OrderBFS, OrderMinDegree, OrderNatural}
		opts := Options{
			Ordering:      orderings[int(data[0]/32)%len(orderings)],
			MaxBlock:      1 + int(data[0])%9,
			LeafSize:      1 + int(data[0])%7,
			Threads:       1 + int(data[0])%3,
			EtreeParallel: data[0]%2 == 0,
			ExactReach:    data[0]%3 == 0,
			TrackPaths:    data[0]%5 == 0,
		}
		plan, err := NewPlan(g, opts)
		if err != nil {
			t.Fatalf("NewPlan: %v", err)
		}
		res, err := plan.Solve()
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		if !res.Dense().EqualTol(want, 1e-9) {
			t.Fatalf("solve mismatch (n=%d, m=%d, opts=%+v)", g.N, g.M(), opts)
		}
	})
}
