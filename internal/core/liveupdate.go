package core

// Live edge updates for the supernodal factor.
//
// A served factor (internal/serve) answers queries from the O(fill)
// supernodal representation. When edge weights change, rebuilding that
// factor from scratch costs the full O(n²|S|)-work elimination; this
// file repairs it incrementally instead, exploiting the same etree
// locality the solver is built on: an edge owned by supernode k (the
// supernode of its lower permuted endpoint) appears in k's initial
// blocks only, and numeric contributions flow strictly from a supernode
// into its ancestor chain. Changing that edge can therefore dirty only
// k and its ancestors — the AncestorClosure of the owners — while every
// other supernode's blocks are provably bit-identical to a fresh
// factorization.
//
// Weight DECREASES keep the current (closed) dirty blocks, ⊕-inject the
// improved weights, and re-run the elimination of the dirty supernodes
// in place. That is sound because min-plus elimination is monotone and
// idempotent: every held value is the length of a real path that still
// exists (no undershoot), re-applying already-incorporated updates is a
// no-op, and the re-run covers every relaxation of a fresh schedule that
// involves a dirty block — so the fixpoint it reaches is the fresh
// factorization.
//
// Weight INCREASES invalidate held values, so the dirty blocks are
// reset to their fresh initial state (identity diagonal + the updated
// edge weights) and elimination is replayed through the existing DAG
// scheduler: dirty supernodes eliminate in full; clean supernodes skip
// their own (unchanged) closure and only re-scatter their outer-product
// contributions into dirty-owned targets, which the unchanged clean
// panels reproduce exactly.
//
// Both paths work on a copy-on-write clone that shares every clean
// block with the live factor, so queries keep serving the old snapshot
// until the caller atomically swaps the patched factor in; a failure
// mid-apply simply discards the clone. Past a tuned dirty-fill fraction
// — or when a new edge connects cousin subtrees, which no block of the
// current plan can host — Apply falls back to a full re-plan and
// refactorization.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/semiring"
)

// EdgeDelta is one coalesced undirected edge-weight change in original
// vertex ids, normalized to U < V.
type EdgeDelta struct {
	U int     `json:"u"`
	V int     `json:"v"`
	W float64 `json:"w"`
}

type edgeKey struct{ u, v int }

// UpdateBatch coalesces edge-weight deltas before they are applied:
// repeated writes to the same edge keep only the last weight, so one
// batch holds at most one delta per edge no matter how bursty the
// update stream was.
type UpdateBatch struct {
	deltas map[edgeKey]float64
}

// NewUpdateBatch returns an empty batch.
func NewUpdateBatch() *UpdateBatch {
	return &UpdateBatch{deltas: map[edgeKey]float64{}}
}

// Set records the new weight of undirected edge {u, v}; later Sets of
// the same edge override earlier ones. Self-loops are an actual no-op
// (a non-negative self-loop never shortens any path), and negative
// weights are rejected — a negative undirected edge is a negative
// 2-cycle.
func (b *UpdateBatch) Set(u, v int, w float64) error {
	if u < 0 || v < 0 {
		return fmt.Errorf("core: negative vertex id in update (%d,%d)", u, v)
	}
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("core: update weight for (%d,%d) must be finite (edge removal is not supported)", u, v)
	}
	if w < 0 {
		return fmt.Errorf("core: a negative undirected edge is a negative 2-cycle")
	}
	if u == v {
		return nil
	}
	if v < u {
		u, v = v, u
	}
	b.deltas[edgeKey{u, v}] = w
	return nil
}

// Len returns the number of distinct edges in the batch.
func (b *UpdateBatch) Len() int { return len(b.deltas) }

// Edges returns the coalesced deltas in deterministic (sorted) order.
func (b *UpdateBatch) Edges() []EdgeDelta {
	out := make([]EdgeDelta, 0, len(b.deltas))
	for k, w := range b.deltas {
		out = append(out, EdgeDelta{U: k.u, V: k.v, W: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// DefaultDirtyThreshold is the dirty-fill fraction above which Apply
// stops patching and refactorizes from scratch: once the dirtied blocks
// approach the whole factor, the partial re-elimination does nearly the
// full elimination's work but sequentially over a chain-heavy DAG, so
// the clean rebuild is both simpler and faster.
const DefaultDirtyThreshold = 0.5

// UpdaterOptions tune a FactorUpdater.
type UpdaterOptions struct {
	// DirtyThreshold is the dirty-fill fraction (dirty block bytes /
	// total factor bytes) above which Apply falls back to a full
	// refactorization. <= 0 selects DefaultDirtyThreshold; >= 1
	// disables the fallback.
	DirtyThreshold float64
	// Threads bounds the re-elimination and rebuild parallelism
	// (<= 0 uses GOMAXPROCS).
	Threads int
}

// UpdateStats describes what one Apply did.
type UpdateStats struct {
	Decreases       int           `json:"decreases"`
	Increases       int           `json:"increases"`
	Unchanged       int           `json:"unchanged"`
	DirtySupernodes int           `json:"dirty_supernodes"`
	TotalSupernodes int           `json:"total_supernodes"`
	DirtyFraction   float64       `json:"dirty_fraction"`
	FullRebuild     bool          `json:"full_rebuild"`
	Replanned       bool          `json:"replanned"`
	PatchTime       time.Duration `json:"patch_ns"`
}

// Patched is the outcome of FactorUpdater.Apply: a fully patched factor
// plus everything a serving layer needs to swap it in — which cached
// labels survive, which deltas were effective (for rank-1-patching a
// dense path-tracked result), and the stats. The patch does not become
// the updater's current state until Commit.
type Patched struct {
	// Factor is the patched factor, sharing clean blocks with the
	// factor Apply ran against.
	Factor *Factor
	// StaleSupernodes[k] reports that the 2-hop labels of vertices in
	// supernode k must be recomputed (k's root path touches a dirtied
	// block). nil means every label is stale (full rebuild/replan).
	StaleSupernodes []bool
	// Decreases and Increases are the effective classified deltas; a
	// delta matching the current weight appears in neither.
	Decreases []EdgeDelta
	Increases []EdgeDelta
	Stats     UpdateStats

	edges map[edgeKey]float64 // post-apply edge weights
	base  *Factor             // factor the patch was computed against
}

// SolveRoutes densely re-solves the patched graph with path tracking —
// the fallback a /route-serving deployment needs after weight
// increases, which the rank-1 detour kernel cannot repair.
func (p *Patched) SolveRoutes(ctx context.Context, threads int) (*Result, error) {
	g, err := graphFromEdges(p.Factor.n, p.edges)
	if err != nil {
		return nil, err
	}
	opts := DefaultOptions()
	opts.TrackPaths = true
	opts.Threads = threads
	plan, err := NewPlan(g, opts)
	if err != nil {
		return nil, err
	}
	return plan.SolveCtx(ctx)
}

// FactorUpdater applies UpdateBatches to a live factor. It owns the
// authoritative edge-weight map (so successive batches compose) and the
// current committed factor. Apply is pure — it never mutates the
// updater or the factor it reads — which lets a serving layer run a
// prepare/commit protocol: compute the patch, keep answering from the
// old snapshot, then Commit and swap atomically (or drop the patch).
type FactorUpdater struct {
	mu    sync.Mutex
	f     *Factor
	edges map[edgeKey]float64
	opts  UpdaterOptions
}

// NewFactorUpdater builds an updater for factor f of graph g. Live
// updates are defined for the min-plus semiring only: classifying a
// delta as an improvement needs min-plus ordering.
func NewFactorUpdater(g *graph.Graph, f *Factor, opts UpdaterOptions) (*FactorUpdater, error) {
	if f.K != semiring.MinPlusKernels {
		return nil, fmt.Errorf("core: live updates support the min-plus semiring only")
	}
	if g.N != f.n {
		return nil, fmt.Errorf("core: graph has %d vertices, factor %d", g.N, f.n)
	}
	return &FactorUpdater{f: f, edges: edgeMapOf(g), opts: opts}, nil
}

// Factor returns the current committed factor.
func (u *FactorUpdater) Factor() *Factor {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.f
}

// Commit advances the updater to a successfully applied patch. It fails
// (leaving the updater unchanged) when the patch was computed against a
// factor that is no longer current — e.g. another update or a reload
// won the race.
func (u *FactorUpdater) Commit(p *Patched) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if p.base != u.f {
		return fmt.Errorf("core: stale patch: computed against a factor that is no longer current")
	}
	u.f = p.Factor
	u.edges = p.edges
	return nil
}

// Rebase points the updater at a freshly rebuilt factor and graph —
// the hook /admin/reload uses so updates keep composing after a reload
// discards all previously applied deltas.
func (u *FactorUpdater) Rebase(g *graph.Graph, f *Factor) error {
	if f.K != semiring.MinPlusKernels {
		return fmt.Errorf("core: live updates support the min-plus semiring only")
	}
	if g.N != f.n {
		return fmt.Errorf("core: graph has %d vertices, factor %d", g.N, f.n)
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.f = f
	u.edges = edgeMapOf(g)
	return nil
}

// CanCommit reports (without committing) whether p would commit
// cleanly. Durable serving uses it to order the commit point: check
// staleness first, journal the batch, then Commit — which cannot fail
// anymore while the caller serializes all generation mutations.
func (u *FactorUpdater) CanCommit(p *Patched) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	if p.base != u.f {
		return fmt.Errorf("core: stale patch: computed against a factor that is no longer current")
	}
	return nil
}

// OverlayAgainst diffs the updater's authoritative edge weights
// against base (the catalog graph), returning the edges whose current
// weight differs — exactly the state a v3 checkpoint needs to reseed
// an updater on warm boot. The result is sorted for determinism.
func (u *FactorUpdater) OverlayAgainst(base *graph.Graph) []EdgeDelta {
	baseMap := edgeMapOf(base)
	u.mu.Lock()
	var out []EdgeDelta
	for k, w := range u.edges {
		//lint:ignore nanguard weights are validated finite on entry; bit-exact compare is the point
		if bw, ok := baseMap[k]; !ok || bw != w {
			out = append(out, EdgeDelta{U: k.u, V: k.v, W: w})
		}
	}
	u.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].U != out[b].U {
			return out[a].U < out[b].U
		}
		return out[a].V < out[b].V
	})
	return out
}

// RestoreOverlay replays a checkpoint overlay into the updater's edge
// map without touching the factor — the factor restored from the same
// checkpoint already has these weights baked in. Must run before any
// Apply, so replayed journal batches classify against the true
// weights.
func (u *FactorUpdater) RestoreOverlay(overlay []EdgeDelta) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, d := range overlay {
		a, b := d.U, d.V
		if b < a {
			a, b = b, a
		}
		if a < 0 || b >= u.f.n || a == b {
			return fmt.Errorf("core: overlay edge (%d,%d) out of range", d.U, d.V)
		}
		if math.IsNaN(d.W) || math.IsInf(d.W, 0) || d.W < 0 {
			return fmt.Errorf("core: overlay edge (%d,%d) has invalid weight %v", d.U, d.V, d.W)
		}
		u.edges[edgeKey{a, b}] = d.W
	}
	return nil
}

// Apply computes a patched factor reflecting the batch. The current
// factor is never touched: decreases re-eliminate the dirty ancestor
// chains in place on a copy-on-write clone, increases reset and replay
// them through the DAG scheduler, and past the dirty threshold (or for
// a new edge crossing cousin subtrees) the whole factor is rebuilt.
// The result must be handed to Commit to become current.
func (u *FactorUpdater) Apply(ctx context.Context, b *UpdateBatch) (*Patched, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if b == nil || b.Len() == 0 {
		return nil, fmt.Errorf("core: empty update batch")
	}
	t0 := time.Now()
	f := u.f
	sn := f.sn
	ns := sn.NumSupernodes()
	p := &Patched{base: f}
	p.Stats.TotalSupernodes = ns

	// Classify every coalesced delta against the current weights and
	// collect the owning supernodes of the changed edges.
	newEdges := make(map[edgeKey]float64, len(u.edges)+b.Len())
	for k, w := range u.edges {
		newEdges[k] = w
	}
	var seeds []int
	replan := false
	for _, d := range b.Edges() {
		if d.U >= f.n || d.V >= f.n {
			return nil, fmt.Errorf("core: update edge (%d,%d) out of range [0,%d)", d.U, d.V, f.n)
		}
		key := edgeKey{d.U, d.V}
		cur, exists := newEdges[key]
		switch {
		//lint:ignore nanguard batch weights are validated finite by Set, so exact equality is a safe no-op-delta test
		case exists && d.W == cur:
			p.Stats.Unchanged++
			continue
		case !exists || d.W < cur:
			p.Decreases = append(p.Decreases, d)
		default:
			p.Increases = append(p.Increases, d)
		}
		newEdges[key] = d.W
		if owner, ok := f.edgeOwner(d.U, d.V); ok {
			seeds = append(seeds, owner)
		} else {
			// The new edge connects cousin subtrees: no block of the
			// current plan can host it, so the symbolic structure itself
			// is stale.
			replan = true
		}
	}
	p.edges = newEdges
	p.Stats.Decreases, p.Stats.Increases = len(p.Decreases), len(p.Increases)
	if len(p.Decreases)+len(p.Increases) == 0 {
		p.Factor = f
		p.StaleSupernodes = make([]bool, ns)
		p.Stats.PatchTime = time.Since(t0)
		return p, nil
	}
	if replan {
		return u.fullRebuild(ctx, p, true, t0)
	}

	dirty := sn.AncestorClosure(seeds)
	var dirtyBytes, totalBytes int64
	for k, d := range dirty {
		sz := int64(len(f.diag[k].Data) + len(f.up[k].Data) + len(f.down[k].Data))
		totalBytes += sz
		if d {
			p.Stats.DirtySupernodes++
			dirtyBytes += sz
		}
	}
	p.Stats.DirtyFraction = float64(dirtyBytes) / float64(totalBytes)
	thresh := u.opts.DirtyThreshold
	if thresh <= 0 {
		thresh = DefaultDirtyThreshold
	}
	if p.Stats.DirtyFraction > thresh {
		return u.fullRebuild(ctx, p, false, t0)
	}

	nf := f.cowClone(dirty)
	increase := len(p.Increases) > 0
	if increase {
		nf.resetBlocks(dirty)
		if err := nf.scatterEdges(newEdges, dirty); err != nil {
			return nil, err
		}
	} else {
		for _, d := range p.Decreases {
			if err := nf.injectMin(d); err != nil {
				return nil, err
			}
		}
	}
	// Failpoint inside the apply window: an error (or crash) here must
	// leave the previous snapshot serving — and it does, because nf is
	// a private clone nothing else references yet.
	if err := fault.InjectErr("core.update.apply"); err != nil {
		return nil, err
	}
	if err := nf.reeliminate(ctx, dirty, increase, par.DefaultThreads(u.opts.Threads)); err != nil {
		return nil, err
	}
	if f.K.DetectNegCycle {
		for k, d := range dirty {
			if d && semiring.HasNegativeCycle(nf.diag[k]) {
				return nil, fmt.Errorf("core: update would create a negative-weight cycle")
			}
		}
	}
	p.Factor = nf
	p.StaleSupernodes = sn.Affected(dirty)
	p.Stats.PatchTime = time.Since(t0)
	return p, nil
}

// fullRebuild is the fallback past the dirty threshold or after a
// structural (cross-cousin) insertion: re-plan the updated graph and
// refactorize from scratch. Every cached label is stale afterwards.
func (u *FactorUpdater) fullRebuild(ctx context.Context, p *Patched, replanned bool, t0 time.Time) (*Patched, error) {
	if err := fault.InjectErr("core.update.apply"); err != nil {
		return nil, err
	}
	g, err := graphFromEdges(u.f.n, p.edges)
	if err != nil {
		return nil, err
	}
	opts := DefaultOptions()
	opts.Threads = u.opts.Threads
	plan, err := NewPlan(g, opts)
	if err != nil {
		return nil, err
	}
	nf, err := NewFactorCtx(ctx, plan, u.opts.Threads)
	if err != nil {
		return nil, err
	}
	p.Factor = nf
	p.StaleSupernodes = nil
	p.Stats.FullRebuild = true
	p.Stats.Replanned = replanned
	p.Stats.PatchTime = time.Since(t0)
	return p, nil
}

// reeliminate re-runs the elimination over the dirty set: dirty
// supernodes eliminate in full; in increase (replay) mode clean
// supernodes re-scatter their outer products into dirty-owned targets.
// The DAG schedule guarantees a supernode runs only after its whole
// subtree — exactly the order a fresh factorization uses — and
// concurrently running supernodes are cousins, serialized on shared
// ancestor targets by the same striped locks the factorization uses.
func (f *Factor) reeliminate(ctx context.Context, dirty []bool, replay bool, threads int) error {
	touches := func(k int) bool {
		for _, a := range f.ancIDs[k] {
			if dirty[a] {
				return true
			}
		}
		return false
	}
	if threads <= 1 {
		cancellable := ctx.Done() != nil
		for k := range f.sn.Ranges {
			if cancellable {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			switch {
			case dirty[k]:
				f.eliminate(k, 1, nil)
			case replay && touches(k):
				f.scatterOuter(k, 1, nil, dirty)
			}
		}
		return nil
	}
	locks := par.NewStripedMutex(1024)
	return par.RunDAGCtx(ctx, f.sn.Parent, threads, func(k, inner int) {
		switch {
		case dirty[k]:
			f.eliminate(k, inner, locks)
		case replay && touches(k):
			f.scatterOuter(k, inner, locks, dirty)
		}
	})
}

// edgeOwner returns the supernode owning edge {u, v} (original ids):
// the supernode of the lower permuted endpoint. ok is false when the
// edge connects cousin supernodes, i.e. lies outside the filled
// pattern the factor's panels cover.
func (f *Factor) edgeOwner(u, v int) (int, bool) {
	pu, pv := f.iperm[u], f.iperm[v]
	if pu > pv {
		pu, pv = pv, pu
	}
	ku, kv := f.snodeOf(pu), f.snodeOf(pv)
	if ku == kv {
		return ku, true
	}
	if _, ok := f.ancColumn(ku, kv, pv); !ok {
		return 0, false
	}
	return ku, true
}

// cowClone returns a factor sharing every clean block with f; dirty
// blocks are private copies, so f keeps serving unchanged while the
// clone is patched. Immutable structure (permutations, supernodes,
// ancestor maps) stays shared.
func (f *Factor) cowClone(dirty []bool) *Factor {
	nf := &Factor{
		n:          f.n,
		perm:       f.perm,
		iperm:      f.iperm,
		sn:         f.sn,
		K:          f.K,
		diag:       append([]semiring.Mat(nil), f.diag...),
		up:         append([]semiring.Mat(nil), f.up...),
		down:       append([]semiring.Mat(nil), f.down...),
		ancIDs:     f.ancIDs,
		ancOff:     f.ancOff,
		FactorTime: f.FactorTime,
	}
	for k, d := range dirty {
		if d {
			nf.diag[k] = f.diag[k].Clone()
			nf.up[k] = f.up[k].Clone()
			nf.down[k] = f.down[k].Clone()
		}
	}
	return nf
}

// resetBlocks restores every dirty block to the pre-elimination state:
// identity diagonal, ⊕-zero elsewhere.
func (f *Factor) resetBlocks(dirty []bool) {
	K := f.K
	for k, d := range dirty {
		if !d {
			continue
		}
		f.diag[k].Fill(K.Zero)
		for i := 0; i < f.sn.Ranges[k].Size(); i++ {
			f.diag[k].Set(i, i, K.One)
		}
		f.up[k].Fill(K.Zero)
		f.down[k].Fill(K.Zero)
	}
}

// scatterEdges writes the edge weights owned by dirty supernodes into
// the (reset) blocks — the same initial scatter NewFactorCtx performs,
// restricted to the dirty set.
func (f *Factor) scatterEdges(edges map[edgeKey]float64, dirty []bool) error {
	for key, w := range edges {
		pu, pv := f.iperm[key.u], f.iperm[key.v]
		if pu > pv {
			pu, pv = pv, pu
		}
		ku, kv := f.snodeOf(pu), f.snodeOf(pv)
		if !dirty[ku] {
			continue
		}
		lo := f.sn.Ranges[ku].Lo
		if ku == kv {
			f.diag[ku].Set(pu-lo, pv-lo, w)
			f.diag[ku].Set(pv-lo, pu-lo, w)
			continue
		}
		col, ok := f.ancColumn(ku, kv, pv)
		if !ok {
			return fmt.Errorf("core: edge (%d,%d) crosses cousin supernodes — ordering is not tree-consistent", key.u, key.v)
		}
		f.up[ku].Set(pu-lo, col, w)
		f.down[ku].Set(col, pu-lo, w)
	}
	return nil
}

// injectMin ⊕-injects an improved edge weight into its owning block —
// the decrease path's only pre-re-elimination mutation.
func (f *Factor) injectMin(d EdgeDelta) error {
	K := f.K
	pu, pv := f.iperm[d.U], f.iperm[d.V]
	if pu > pv {
		pu, pv = pv, pu
	}
	ku, kv := f.snodeOf(pu), f.snodeOf(pv)
	lo := f.sn.Ranges[ku].Lo
	if ku == kv {
		f.diag[ku].Set(pu-lo, pv-lo, K.AddScalar(f.diag[ku].At(pu-lo, pv-lo), d.W))
		f.diag[ku].Set(pv-lo, pu-lo, K.AddScalar(f.diag[ku].At(pv-lo, pu-lo), d.W))
		return nil
	}
	col, ok := f.ancColumn(ku, kv, pv)
	if !ok {
		return fmt.Errorf("core: edge (%d,%d) crosses cousin supernodes — ordering is not tree-consistent", d.U, d.V)
	}
	f.up[ku].Set(pu-lo, col, K.AddScalar(f.up[ku].At(pu-lo, col), d.W))
	f.down[ku].Set(col, pu-lo, K.AddScalar(f.down[ku].At(col, pu-lo), d.W))
	return nil
}

// edgeMapOf snapshots a graph's undirected edge weights keyed by
// normalized endpoint pair.
func edgeMapOf(g *graph.Graph) map[edgeKey]float64 {
	edges := g.Edges()
	m := make(map[edgeKey]float64, len(edges))
	for _, e := range edges {
		u, v := e.U, e.V
		if v < u {
			u, v = v, u
		}
		m[edgeKey{u, v}] = e.W
	}
	return m
}

// graphFromEdges materializes an edge map as a CSR graph.
func graphFromEdges(n int, edges map[edgeKey]float64) (*graph.Graph, error) {
	list := make([]graph.Edge, 0, len(edges))
	for k, w := range edges {
		list = append(list, graph.Edge{U: k.u, V: k.v, W: w})
	}
	return graph.NewFromEdges(n, list)
}
