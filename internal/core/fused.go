package core

// Fused-elimination toggle. The fused path packs a supernode's reused
// operands (the closed diagonal block, the up-panel ancestor sections,
// the outer-update row panels) once per elimination and streams every
// consumer over the packed tiles via the semiring's MulAddPacked entry
// points, instead of letting each MulAdd re-derive its own dense/stream
// dispatch and re-pack the same operand. Results are bitwise identical
// to the staged path — dense and streaming sweeps evaluate the same
// candidate set and ⊕ is an exact min/max — so the toggle exists for
// benchmark ablation (fused vs the PR 4 staged pipeline), not for
// correctness escape hatches.

import "sync/atomic"

var fusedElim atomic.Bool

func init() { fusedElim.Store(true) }

// SetFusedEliminate enables or disables the fused packed-panel
// elimination path and returns the previous setting. Safe to call
// between solves; flipping it mid-elimination only affects supernodes
// that have not started yet.
func SetFusedEliminate(on bool) bool { return fusedElim.Swap(on) }

// FusedEliminateEnabled reports whether eliminations use the fused
// packed-panel path.
func FusedEliminateEnabled() bool { return fusedElim.Load() }
