package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Metamorphic properties: transformations of the input with known
// effects on the output. These catch bugs that reference-comparison
// tests share with the reference.

// TestScalingInvariance: multiplying all weights by c > 0 multiplies all
// distances by c.
func TestScalingInvariance(t *testing.T) {
	f := func(seed int64, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		c := 0.25 + float64(cRaw)/32 // 0.25 .. 8.2
		scaled := make([]graph.Edge, 0, g.M())
		for _, e := range g.Edges() {
			scaled = append(scaled, graph.Edge{U: e.U, V: e.V, W: e.W * c})
		}
		g2 := graph.MustFromEdges(g.N, scaled)
		p1, err1 := NewPlan(g, DefaultOptions())
		p2, err2 := NewPlan(g2, DefaultOptions())
		if err1 != nil || err2 != nil {
			return false
		}
		r1, err1 := p1.Solve()
		r2, err2 := p2.Solve()
		if err1 != nil || err2 != nil {
			return false
		}
		for u := 0; u < g.N; u += 3 {
			for v := 0; v < g.N; v += 3 {
				a, b := r1.At(u, v), r2.At(u, v)
				if math.IsInf(a, 1) != math.IsInf(b, 1) {
					return false
				}
				if !math.IsInf(a, 1) && math.Abs(a*c-b) > 1e-6*(1+math.Abs(b)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestRelabelingInvariance: permuting vertex labels permutes distances.
func TestRelabelingInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		pi := rng.Perm(g.N) // pi maps new -> old
		g2 := g.Permute(pi)
		p1, err1 := NewPlan(g, DefaultOptions())
		p2, err2 := NewPlan(g2, DefaultOptions())
		if err1 != nil || err2 != nil {
			return false
		}
		r1, err1 := p1.Solve()
		r2, err2 := p2.Solve()
		if err1 != nil || err2 != nil {
			return false
		}
		for u := 0; u < g.N; u += 2 {
			for v := 0; v < g.N; v += 2 {
				// new vertex u corresponds to old vertex pi[u]
				a := r2.At(u, v)
				b := r1.At(pi[u], pi[v])
				if math.IsInf(a, 1) != math.IsInf(b, 1) {
					return false
				}
				if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestIsolatedVertexInvariance: appending an isolated vertex changes no
// existing distance and is unreachable from everywhere.
func TestIsolatedVertexInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		g2 := graph.MustFromEdges(g.N+1, g.Edges())
		p1, err1 := NewPlan(g, DefaultOptions())
		p2, err2 := NewPlan(g2, DefaultOptions())
		if err1 != nil || err2 != nil {
			return false
		}
		r1, err1 := p1.Solve()
		r2, err2 := p2.Solve()
		if err1 != nil || err2 != nil {
			return false
		}
		for u := 0; u < g.N; u += 2 {
			if !math.IsInf(r2.At(u, g.N), 1) || !math.IsInf(r2.At(g.N, u), 1) {
				return false
			}
			for v := 0; v < g.N; v += 3 {
				a, b := r1.At(u, v), r2.At(u, v)
				if a != b && !(math.IsInf(a, 1) && math.IsInf(b, 1)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestSubdivisionInvariance: splitting an edge (u,v,w) into
// (u,x,w/2),(x,v,w/2) through a fresh vertex preserves all original
// pairwise distances.
func TestSubdivisionInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng)
		edges := g.Edges()
		if len(edges) == 0 {
			return true
		}
		pick := edges[rng.Intn(len(edges))]
		x := g.N
		var rebuilt []graph.Edge
		for _, e := range edges {
			if e == pick {
				continue
			}
			rebuilt = append(rebuilt, e)
		}
		rebuilt = append(rebuilt,
			graph.Edge{U: pick.U, V: x, W: pick.W / 2},
			graph.Edge{U: x, V: pick.V, W: pick.W / 2})
		g2 := graph.MustFromEdges(g.N+1, rebuilt)
		p1, err1 := NewPlan(g, DefaultOptions())
		p2, err2 := NewPlan(g2, DefaultOptions())
		if err1 != nil || err2 != nil {
			return false
		}
		r1, err1 := p1.Solve()
		r2, err2 := p2.Solve()
		if err1 != nil || err2 != nil {
			return false
		}
		for u := 0; u < g.N; u += 2 {
			for v := 0; v < g.N; v += 3 {
				a, b := r1.At(u, v), r2.At(u, v)
				if math.IsInf(a, 1) != math.IsInf(b, 1) {
					return false
				}
				if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
