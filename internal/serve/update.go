package serve

// Live edge updates over HTTP. POST /admin/update takes a batch of
// edge-weight deltas and patches the serving factor through
// core.FactorUpdater: decreases re-eliminate only the dirtied etree
// ancestor chains on a copy-on-write clone, increases replay them
// through the DAG scheduler, and past the dirty threshold the factor is
// rebuilt outright. Queries keep serving the old snapshot for the whole
// apply window — readiness never flips, nothing is dropped — and the
// patched engine (factor + carried-over label cache + optionally
// repaired route result) swaps in atomically with a new generation.
//
// Two protocols share the endpoint:
//
//   - mode "apply" (the default): patch and swap in one request.
//   - mode "prepare" / "commit" / "abort": the shard coordinator's
//     all-or-nothing fan-out. Prepare does all the expensive work and
//     parks the patch; commit swaps it in (failing if the base factor
//     moved in between — the updater's stale-patch check); abort drops
//     it. Every worker swaps generation in the commit round or none do.
//
// A failure anywhere before the swap — bad batch, negative cycle, a
// fault-injected crash in the apply window — leaves the old engine
// serving, bit-for-bit: the patch is a private clone until the instant
// of the atomic store.

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/fault"
)

// maxUpdateBody bounds the /admin/update request body.
const maxUpdateBody = 8 << 20

// updateRequest is the POST /admin/update body.
type updateRequest struct {
	// Mode selects the protocol step: "" or "apply" for one-shot,
	// "prepare"/"commit"/"abort" for the coordinated two-phase flow.
	Mode string `json:"mode,omitempty"`
	// Txn names a prepared patch so commit/abort address the right one.
	Txn string `json:"txn,omitempty"`
	// Edges are the new weights, one entry per undirected edge
	// (duplicates coalesce, last wins). Required for apply and prepare.
	Edges []core.EdgeDelta `json:"edges,omitempty"`
}

// preparedUpdate parks the outcome of a prepare until commit/abort.
type preparedUpdate struct {
	txn     string
	patch   *core.Patched
	result  *core.Result // repaired route result, when the engine has one
	baseGen uint64
}

// adminUpdate serves POST /admin/update.
func (s *Server) adminUpdate(w http.ResponseWriter, r *http.Request) {
	if s.updater == nil {
		s.writeErr(w, http.StatusNotImplemented, fmt.Errorf("server was started without an update source"))
		return
	}
	var req updateRequest
	body := http.MaxBytesReader(w, r.Body, maxUpdateBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad update body: %w", err))
		return
	}
	switch req.Mode {
	case "", "apply":
		s.updateApply(w, r, &req)
	case "prepare":
		s.updatePrepare(w, r, &req)
	case "commit":
		s.updateCommit(w, &req)
	case "abort":
		s.updateAbort(w, &req)
	default:
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown update mode %q", req.Mode))
	}
}

// buildPatch runs the updater over the request's edges and, when the
// serving engine answers /route, repairs the dense path-tracked result
// to match: decreases patch a clone with the O(n²) rank-1 kernel; any
// increase (or rebuild) forces a fresh path-tracked solve of the
// updated graph.
func (s *Server) buildPatch(r *http.Request, req *updateRequest) (*core.Patched, *core.Result, error) {
	if len(req.Edges) == 0 {
		return nil, nil, fmt.Errorf("update needs at least one edge")
	}
	b := core.NewUpdateBatch()
	for _, d := range req.Edges {
		if err := b.Set(d.U, d.V, d.W); err != nil {
			return nil, nil, err
		}
	}
	p, err := s.updater.Apply(r.Context(), b)
	if err != nil {
		return nil, nil, err
	}
	e := s.eng.Load()
	var res *core.Result
	if e.result != nil {
		if len(p.Increases) == 0 && !p.Stats.FullRebuild {
			res = e.result.Clone()
			for _, d := range p.Decreases {
				if err := res.DecreaseEdge(d.U, d.V, d.W, 0); err != nil {
					return nil, nil, fmt.Errorf("patching route result: %w", err)
				}
			}
		} else {
			if res, err = p.SolveRoutes(r.Context(), 0); err != nil {
				return nil, nil, fmt.Errorf("re-solving route result: %w", err)
			}
		}
	}
	return p, res, nil
}

// swapPatched commits a patch to the updater and publishes the new
// engine. Callers hold the reloading CAS.
func (s *Server) swapPatched(p *core.Patched, res *core.Result) (uint64, error) {
	if err := fault.InjectErr("serve.update.swap"); err != nil {
		return 0, err
	}
	if err := s.updater.Commit(p); err != nil {
		return 0, err
	}
	old := s.eng.Load()
	gen := s.generation.Add(1)
	s.eng.Store(&engine{
		factor: p.Factor,
		cache:  core.NewLabelCacheFrom(p.Factor, s.cacheSize, old.cache, p.StaleSupernodes),
		result: res,
		n:      p.Factor.N(),
		gen:    gen,
	})
	return gen, nil
}

func (s *Server) updateApply(w http.ResponseWriter, r *http.Request, req *updateRequest) {
	if !s.reloading.CompareAndSwap(false, true) {
		w.Header().Set("Retry-After", RetryAfterDefault)
		s.writeErr(w, http.StatusConflict, fmt.Errorf("a reload or update is already in progress"))
		return
	}
	defer s.reloading.Store(false)
	p, res, err := s.buildPatch(r, req)
	if err != nil {
		s.log.Printf("serve: update failed, keeping current factor: %v", err)
		s.writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("update failed (still serving previous factor): %w", err))
		return
	}
	gen, err := s.swapPatched(p, res)
	if err != nil {
		s.log.Printf("serve: update swap failed, keeping current factor: %v", err)
		s.writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("update failed (still serving previous factor): %w", err))
		return
	}
	s.log.Printf("serve: update applied (generation %d, %d dirty / %d supernodes, rebuild=%v)",
		gen, p.Stats.DirtySupernodes, p.Stats.TotalSupernodes, p.Stats.FullRebuild)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"applied":    true,
		"generation": gen,
		"stats":      p.Stats,
	})
}

func (s *Server) updatePrepare(w http.ResponseWriter, r *http.Request, req *updateRequest) {
	if req.Txn == "" {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("prepare needs a txn id"))
		return
	}
	// Serialize the expensive phase with reloads and other updates, but
	// release the CAS afterwards: a coordinator crash between prepare and
	// commit must not wedge the worker. Staleness is re-checked at commit
	// by the updater instead.
	if !s.reloading.CompareAndSwap(false, true) {
		w.Header().Set("Retry-After", RetryAfterDefault)
		s.writeErr(w, http.StatusConflict, fmt.Errorf("a reload or update is already in progress"))
		return
	}
	p, res, err := s.buildPatch(r, req)
	s.reloading.Store(false)
	if err != nil {
		s.log.Printf("serve: update prepare %q failed: %v", req.Txn, err)
		s.writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("prepare failed (still serving previous factor): %w", err))
		return
	}
	s.updMu.Lock()
	s.pending = &preparedUpdate{txn: req.Txn, patch: p, result: res, baseGen: s.eng.Load().gen}
	s.updMu.Unlock()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"prepared":   true,
		"txn":        req.Txn,
		"generation": s.eng.Load().gen,
		"stats":      p.Stats,
	})
}

func (s *Server) takePending(txn string) (*preparedUpdate, error) {
	s.updMu.Lock()
	defer s.updMu.Unlock()
	if s.pending == nil {
		return nil, fmt.Errorf("no prepared update")
	}
	if s.pending.txn != txn {
		return nil, fmt.Errorf("prepared txn is %q, not %q", s.pending.txn, txn)
	}
	p := s.pending
	s.pending = nil
	return p, nil
}

func (s *Server) updateCommit(w http.ResponseWriter, req *updateRequest) {
	pu, err := s.takePending(req.Txn)
	if err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	if !s.reloading.CompareAndSwap(false, true) {
		w.Header().Set("Retry-After", RetryAfterDefault)
		s.writeErr(w, http.StatusConflict, fmt.Errorf("a reload or update is already in progress"))
		return
	}
	defer s.reloading.Store(false)
	gen, err := s.swapPatched(pu.patch, pu.result)
	if err != nil {
		// The stale-patch check fired: something replaced the factor
		// between prepare and commit. The old snapshot keeps serving.
		s.log.Printf("serve: update commit %q failed, keeping current factor: %v", req.Txn, err)
		s.writeErr(w, http.StatusConflict,
			fmt.Errorf("commit failed (still serving previous factor): %w", err))
		return
	}
	s.log.Printf("serve: update %q committed (generation %d)", req.Txn, gen)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"committed":  true,
		"txn":        req.Txn,
		"generation": gen,
		"stats":      pu.patch.Stats,
	})
}

func (s *Server) updateAbort(w http.ResponseWriter, req *updateRequest) {
	s.updMu.Lock()
	aborted := s.pending != nil && (req.Txn == "" || s.pending.txn == req.Txn)
	if aborted {
		s.pending = nil
	}
	s.updMu.Unlock()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"aborted":    aborted,
		"txn":        req.Txn,
		"generation": s.eng.Load().gen,
	})
}
