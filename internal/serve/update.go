package serve

// Live edge updates over HTTP. POST /admin/update takes a batch of
// edge-weight deltas and patches the serving factor through
// core.FactorUpdater: decreases re-eliminate only the dirtied etree
// ancestor chains on a copy-on-write clone, increases replay them
// through the DAG scheduler, and past the dirty threshold the factor is
// rebuilt outright. Queries keep serving the old snapshot for the whole
// apply window — readiness never flips, nothing is dropped — and the
// patched engine (factor + carried-over label cache + optionally
// repaired route result) swaps in atomically with a new generation.
//
// Two protocols share the endpoint:
//
//   - mode "apply" (the default): patch and swap in one request.
//   - mode "prepare" / "commit" / "abort": the shard coordinator's
//     all-or-nothing fan-out. Prepare does all the expensive work and
//     parks the patch; commit swaps it in (failing if the base factor
//     moved in between — the updater's stale-patch check); abort drops
//     it. Every worker swaps generation in the commit round or none do.
//
// A failure anywhere before the swap — bad batch, negative cycle, a
// fault-injected crash in the apply window — leaves the old engine
// serving, bit-for-bit: the patch is a private clone until the instant
// of the atomic store.

import (
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/core"
	"repro/internal/fault"
)

// maxUpdateBody bounds the /admin/update request body.
const maxUpdateBody = 8 << 20

// updateRequest is the POST /admin/update body.
type updateRequest struct {
	// Mode selects the protocol step: "" or "apply" for one-shot,
	// "prepare"/"commit"/"abort" for the coordinated two-phase flow.
	Mode string `json:"mode,omitempty"`
	// Txn names a prepared patch so commit/abort address the right one.
	Txn string `json:"txn,omitempty"`
	// Edges are the new weights, one entry per undirected edge
	// (duplicates coalesce, last wins). Required for apply and prepare.
	Edges []core.EdgeDelta `json:"edges,omitempty"`
	// Gen, when nonzero, pins the generation this update must produce —
	// the shard coordinator's explicit-generation commit and the
	// anti-entropy catch-up stream use it so every worker lands on the
	// same number. Zero means "current + 1". For mode "resync" it is
	// required: the generation the resynced state is declared to be.
	Gen uint64 `json:"gen,omitempty"`
	// From, when nonzero, asserts the lowest generation these edge
	// weights apply cleanly to. A worker whose generation is below From
	// rejects the batch (it needs earlier batches or a resync first).
	From uint64 `json:"from,omitempty"`
}

// preparedUpdate parks the outcome of a prepare until commit/abort.
type preparedUpdate struct {
	txn     string
	patch   *core.Patched
	result  *core.Result // repaired route result, when the engine has one
	edges   []core.EdgeDelta
	baseGen uint64
}

// adminUpdate serves POST /admin/update.
func (s *Server) adminUpdate(w http.ResponseWriter, r *http.Request) {
	if s.updater == nil {
		s.writeErr(w, http.StatusNotImplemented, fmt.Errorf("server was started without an update source"))
		return
	}
	var req updateRequest
	body := http.MaxBytesReader(w, r.Body, maxUpdateBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad update body: %w", err))
		return
	}
	switch req.Mode {
	case "", "apply":
		s.updateApply(w, r, &req)
	case "prepare":
		s.updatePrepare(w, r, &req)
	case "commit":
		s.updateCommit(w, &req)
	case "abort":
		s.updateAbort(w, &req)
	case "resync":
		s.updateResync(w, r, &req)
	default:
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("unknown update mode %q", req.Mode))
	}
}

// buildPatch runs the updater over the request's edges and, when the
// serving engine answers /route, repairs the dense path-tracked result
// to match: decreases patch a clone with the O(n²) rank-1 kernel; any
// increase (or rebuild) forces a fresh path-tracked solve of the
// updated graph.
func (s *Server) buildPatch(r *http.Request, req *updateRequest) (*core.Patched, *core.Result, []core.EdgeDelta, error) {
	if len(req.Edges) == 0 {
		return nil, nil, nil, fmt.Errorf("update needs at least one edge")
	}
	b := core.NewUpdateBatch()
	for _, d := range req.Edges {
		if err := b.Set(d.U, d.V, d.W); err != nil {
			return nil, nil, nil, err
		}
	}
	p, err := s.updater.Apply(r.Context(), b)
	if err != nil {
		return nil, nil, nil, err
	}
	e := s.eng.Load()
	var res *core.Result
	if e.result != nil {
		if len(p.Increases) == 0 && !p.Stats.FullRebuild {
			res = e.result.Clone()
			for _, d := range p.Decreases {
				if err := res.DecreaseEdge(d.U, d.V, d.W, 0); err != nil {
					return nil, nil, nil, fmt.Errorf("patching route result: %w", err)
				}
			}
		} else {
			if res, err = p.SolveRoutes(r.Context(), 0); err != nil {
				return nil, nil, nil, fmt.Errorf("re-solving route result: %w", err)
			}
		}
	}
	return p, res, b.Edges(), nil
}

// swapPatched commits a patch to the updater and publishes the new
// engine at generation target (0 selects current + 1). Callers hold
// the reloading CAS, which makes the sequence race-free: the stale
// pre-check, the journal append (the durable commit point — a crash
// after it replays the batch on boot, a crash before it never
// happened), and the updater commit (which cannot fail after a clean
// pre-check, because the CAS serializes every generation mutation).
func (s *Server) swapPatched(p *core.Patched, res *core.Result, edges []core.EdgeDelta, target uint64) (uint64, error) {
	if err := fault.InjectErr("serve.update.swap"); err != nil {
		return 0, err
	}
	cur := s.generation.Load()
	next := cur + 1
	if target != 0 {
		if target <= cur {
			return 0, fmt.Errorf("target generation %d not past current %d", target, cur)
		}
		next = target
	}
	if s.durable != nil {
		if err := s.updater.CanCommit(p); err != nil {
			return 0, err
		}
		if err := s.durable.AppendCommitted(cur, next, edges); err != nil {
			return 0, fmt.Errorf("journal append: %w", err)
		}
	}
	if err := s.updater.Commit(p); err != nil {
		return 0, err
	}
	old := s.eng.Load()
	s.generation.Store(next)
	s.eng.Store(&engine{
		factor: p.Factor,
		cache:  core.NewLabelCacheFrom(p.Factor, s.cacheSize, old.cache, p.StaleSupernodes),
		result: res,
		n:      p.Factor.N(),
		gen:    next,
	})
	return next, nil
}

// checkGenWindow validates an explicit-generation request against the
// current generation before any expensive work: a target at or below
// the current generation was already applied (idempotent skip), and a
// From above it means intervening batches are missing (resync needed).
func (s *Server) checkGenWindow(req *updateRequest) (alreadyApplied bool, err error) {
	if req.Gen == 0 {
		return false, nil
	}
	cur := s.generation.Load()
	if req.Gen <= cur {
		return true, nil
	}
	if req.From > cur {
		return false, fmt.Errorf("generation gap: batch applies from %d, worker is at %d (needs catch-up or resync)", req.From, cur)
	}
	return false, nil
}

func (s *Server) updateApply(w http.ResponseWriter, r *http.Request, req *updateRequest) {
	if !s.reloading.CompareAndSwap(false, true) {
		w.Header().Set("Retry-After", RetryAfterDefault)
		s.writeErr(w, http.StatusConflict, fmt.Errorf("a reload or update is already in progress"))
		return
	}
	defer s.reloading.Store(false)
	if done, err := s.checkGenWindow(req); err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	} else if done {
		// Already at or past the requested generation: the batch landed
		// before a crash, or a retry raced the first attempt. Idempotent.
		//lint:ignore walorder idempotent skip: the batch was journaled by the attempt that applied it, so this ack reports already-durable state
		s.writeJSON(w, http.StatusOK, map[string]any{
			"applied":    false,
			"skipped":    true,
			"generation": s.generation.Load(),
		})
		return
	}
	p, res, edges, err := s.buildPatch(r, req)
	if err != nil {
		s.log.Printf("serve: update failed, keeping current factor: %v", err)
		s.writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("update failed (still serving previous factor): %w", err))
		return
	}
	gen, err := s.swapPatched(p, res, edges, req.Gen)
	if err != nil {
		s.log.Printf("serve: update swap failed, keeping current factor: %v", err)
		s.writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("update failed (still serving previous factor): %w", err))
		return
	}
	s.log.Printf("serve: update applied (generation %d, %d dirty / %d supernodes, rebuild=%v)",
		gen, p.Stats.DirtySupernodes, p.Stats.TotalSupernodes, p.Stats.FullRebuild)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"applied":    true,
		"generation": gen,
		"stats":      p.Stats,
	})
}

func (s *Server) updatePrepare(w http.ResponseWriter, r *http.Request, req *updateRequest) {
	if req.Txn == "" {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("prepare needs a txn id"))
		return
	}
	// Serialize the expensive phase with reloads and other updates, but
	// release the CAS afterwards: a coordinator crash between prepare and
	// commit must not wedge the worker. Staleness is re-checked at commit
	// by the updater instead.
	if !s.reloading.CompareAndSwap(false, true) {
		w.Header().Set("Retry-After", RetryAfterDefault)
		s.writeErr(w, http.StatusConflict, fmt.Errorf("a reload or update is already in progress"))
		return
	}
	p, res, edges, err := s.buildPatch(r, req)
	s.reloading.Store(false)
	if err != nil {
		s.log.Printf("serve: update prepare %q failed: %v", req.Txn, err)
		s.writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("prepare failed (still serving previous factor): %w", err))
		return
	}
	s.updMu.Lock()
	s.pending = &preparedUpdate{txn: req.Txn, patch: p, result: res, edges: edges, baseGen: s.eng.Load().gen}
	s.updMu.Unlock()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"prepared":   true,
		"txn":        req.Txn,
		"generation": s.eng.Load().gen,
		"stats":      p.Stats,
	})
}

func (s *Server) takePending(txn string) (*preparedUpdate, error) {
	s.updMu.Lock()
	defer s.updMu.Unlock()
	if s.pending == nil {
		return nil, fmt.Errorf("no prepared update")
	}
	if s.pending.txn != txn {
		return nil, fmt.Errorf("prepared txn is %q, not %q", s.pending.txn, txn)
	}
	p := s.pending
	s.pending = nil
	return p, nil
}

func (s *Server) updateCommit(w http.ResponseWriter, req *updateRequest) {
	pu, err := s.takePending(req.Txn)
	if err != nil {
		s.writeErr(w, http.StatusConflict, err)
		return
	}
	if !s.reloading.CompareAndSwap(false, true) {
		w.Header().Set("Retry-After", RetryAfterDefault)
		s.writeErr(w, http.StatusConflict, fmt.Errorf("a reload or update is already in progress"))
		return
	}
	defer s.reloading.Store(false)
	gen, err := s.swapPatched(pu.patch, pu.result, pu.edges, req.Gen)
	if err != nil {
		// The stale-patch check fired: something replaced the factor
		// between prepare and commit. The old snapshot keeps serving.
		s.log.Printf("serve: update commit %q failed, keeping current factor: %v", req.Txn, err)
		s.writeErr(w, http.StatusConflict,
			fmt.Errorf("commit failed (still serving previous factor): %w", err))
		return
	}
	s.log.Printf("serve: update %q committed (generation %d)", req.Txn, gen)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"committed":  true,
		"txn":        req.Txn,
		"generation": gen,
		"stats":      pu.patch.Stats,
	})
}

// updateResync serves mode "resync": the anti-entropy full-rebuild
// path for a worker whose generation the coordinator's journal can no
// longer bridge. The body carries a donor's overlay (every edge weight
// differing from the base graph) and the explicit generation that
// state is declared to be; the worker rebuilds from base + overlay,
// jumps its generation, and — before replying — checkpoints
// synchronously and clears its journal, so the 200 means the resynced
// state is durable. Idempotent: resending the same resync rebuilds to
// the same state.
func (s *Server) updateResync(w http.ResponseWriter, r *http.Request, req *updateRequest) {
	if s.durable == nil {
		s.writeErr(w, http.StatusNotImplemented, fmt.Errorf("resync needs a durable state dir"))
		return
	}
	if req.Gen == 0 {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("resync needs an explicit target generation"))
		return
	}
	if !s.reloading.CompareAndSwap(false, true) {
		w.Header().Set("Retry-After", RetryAfterDefault)
		s.writeErr(w, http.StatusConflict, fmt.Errorf("a reload or update is already in progress"))
		return
	}
	defer s.reloading.Store(false)
	s.notReady.Store(true)
	defer s.notReady.Store(false)

	f, err := s.durable.ResyncFactor(r.Context(), req.Edges)
	if err != nil {
		s.log.Printf("serve: resync rebuild failed, keeping current factor: %v", err)
		s.writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("resync failed (still serving previous factor): %w", err))
		return
	}
	// The rebuild replaced the whole state: drop any prepared patch.
	s.updMu.Lock()
	s.pending = nil
	s.updMu.Unlock()
	//lint:ignore walorder,genmono resync adopts the coordinator's authoritative generation; the checkpoint below makes it durable or the request fails and the coordinator retries
	s.generation.Store(req.Gen)
	//lint:ignore walorder resync publishes the rebuilt factor; its durability is the checkpoint below — on checkpoint failure the handler returns 500 and the coordinator retries
	s.eng.Store(newEngine(f, nil, f.N(), s.cacheSize, req.Gen))
	if err := s.durable.Checkpoint(req.Gen); err != nil {
		// The live state moved but is not durable; fail the request so
		// the coordinator retries (the resync is idempotent).
		s.log.Printf("serve: resync checkpoint failed (state live but not durable): %v", err)
		s.writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("resync applied but not durable, retry: %w", err))
		return
	}
	s.log.Printf("serve: resynced to generation %d (%d overlay edge(s))", req.Gen, len(req.Edges))
	s.writeJSON(w, http.StatusOK, map[string]any{
		"resynced":   true,
		"generation": req.Gen,
		"vertices":   f.N(),
	})
}

// adminOverlay serves GET /admin/overlay: the current generation plus
// every edge weight differing from the base graph — enough for a peer
// to reconstruct this worker's exact serving state from its own copy
// of the base graph. The coordinator uses it to pick a healthy donor
// when resyncing a worker the journal cannot bridge.
func (s *Server) adminOverlay(w http.ResponseWriter, _ *http.Request) {
	if s.durable == nil {
		s.writeErr(w, http.StatusNotImplemented, fmt.Errorf("server was started without a durable state dir"))
		return
	}
	// Take the swap serialization briefly so the overlay and the
	// generation describe the same snapshot.
	if !s.reloading.CompareAndSwap(false, true) {
		w.Header().Set("Retry-After", RetryAfterDefault)
		s.writeErr(w, http.StatusConflict, fmt.Errorf("a reload or update is in progress"))
		return
	}
	gen := s.generation.Load()
	overlay := s.durable.Overlay()
	s.reloading.Store(false)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"generation": gen,
		"vertices":   s.eng.Load().n,
		"digest":     s.durable.GraphDigest(),
		"edges":      overlay,
	})
}

func (s *Server) updateAbort(w http.ResponseWriter, req *updateRequest) {
	s.updMu.Lock()
	aborted := s.pending != nil && (req.Txn == "" || s.pending.txn == req.Txn)
	if aborted {
		s.pending = nil
	}
	s.updMu.Unlock()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"aborted":    aborted,
		"txn":        req.Txn,
		"generation": s.eng.Load().gen,
	})
}
