package serve

// Graceful serving loop shared by cmd/apspserve and the shutdown tests:
// serve until the context is cancelled (e.g. by SIGINT/SIGTERM via
// signal.NotifyContext), then drain in-flight requests before returning.

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// RunServer serves hs on ln until ctx is cancelled, then shuts the
// server down gracefully, letting in-flight requests finish for up to
// drain before forcing connections closed. It returns nil on a clean
// drained shutdown, the Serve error if the listener fails first, and
// the Shutdown error (context.DeadlineExceeded) when the drain window
// expires with requests still running.
func RunServer(ctx context.Context, hs *http.Server, ln net.Listener, drain time.Duration) error {
	serveErr := make(chan error, 1)
	//lint:ignore nakedgo long-lived accept loop; Serve's error is joined below via serveErr, and Serve recovers per-connection handler panics itself
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Drain on a timeout detached from the (already cancelled) ctx but
	// preserving its values for request-scoped telemetry.
	sctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		hs.Close()
		return err
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
