package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
)

// testUpdateServer boots a server whose factor has a live updater
// attached, returning the server, its HTTP handle, and the graph.
func testUpdateServer(t *testing.T, withRoutes bool, opts Options) (*Server, *httptest.Server, *graph.Graph) {
	t.Helper()
	g := gen.RoadNetwork(10, 10, 0.3, 7)
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	var res *core.Result
	if withRoutes {
		o := core.DefaultOptions()
		o.TrackPaths = true
		plan2, err := core.NewPlan(g, o)
		if err != nil {
			t.Fatal(err)
		}
		if res, err = plan2.Solve(); err != nil {
			t.Fatal(err)
		}
	}
	u, err := core.NewFactorUpdater(g, f, core.UpdaterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts.Updater = u
	s := New(f, res, g.N, opts)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv, g
}

func postUpdate(t *testing.T, url string, req updateRequest, wantCode int) map[string]any {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/admin/update", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST /admin/update (%+v): code %d, want %d", req, resp.StatusCode, wantCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: code %d (%s)", url, resp.StatusCode, b)
	}
	return string(b)
}

func distOf(t *testing.T, url string, u, v int) float64 {
	t.Helper()
	body := getJSON(t, fmt.Sprintf("%s/dist?u=%d&v=%d", url, u, v), http.StatusOK)
	d, ok := body["dist"].(float64)
	if !ok {
		t.Fatalf("dist(%d,%d) not a number: %v", u, v, body["dist"])
	}
	return d
}

func generationOf(t *testing.T, url string) float64 {
	t.Helper()
	return getJSON(t, url+"/health", http.StatusOK)["generation"].(float64)
}

func TestUpdateApply(t *testing.T) {
	_, srv, g := testUpdateServer(t, false, Options{})
	e := g.Edges()[0]
	before := distOf(t, srv.URL, e.U, e.V)
	w := before * 0.1
	out := postUpdate(t, srv.URL, updateRequest{
		Edges: []core.EdgeDelta{{U: e.U, V: e.V, W: w}},
	}, http.StatusOK)
	if out["applied"] != true || out["generation"].(float64) != 2 {
		t.Fatalf("apply response %v", out)
	}
	if after := distOf(t, srv.URL, e.U, e.V); after != w {
		t.Fatalf("dist after update = %g, want %g", after, w)
	}
	if gen := generationOf(t, srv.URL); gen != 2 {
		t.Fatalf("health generation = %v, want 2", gen)
	}
	m := getJSON(t, srv.URL+"/metrics", http.StatusOK)
	if m["generation"].(float64) != 2 {
		t.Fatalf("metrics generation = %v, want 2", m["generation"])
	}
}

func TestUpdateWithoutUpdater(t *testing.T) {
	_, srv, _ := testServerOpts(t, false, Options{})
	postUpdate(t, srv.URL, updateRequest{Edges: []core.EdgeDelta{{U: 0, V: 1, W: 1}}},
		http.StatusNotImplemented)
}

func TestUpdateBadRequests(t *testing.T) {
	_, srv, _ := testUpdateServer(t, false, Options{})
	postUpdate(t, srv.URL, updateRequest{}, http.StatusInternalServerError)              // no edges
	postUpdate(t, srv.URL, updateRequest{Mode: "frobnicate"}, http.StatusBadRequest)     // unknown mode
	postUpdate(t, srv.URL, updateRequest{Mode: "prepare"}, http.StatusBadRequest)        // no txn
	postUpdate(t, srv.URL, updateRequest{Mode: "commit", Txn: "x"}, http.StatusConflict) // nothing prepared
	postUpdate(t, srv.URL, updateRequest{
		Edges: []core.EdgeDelta{{U: 0, V: 1, W: -3}},
	}, http.StatusInternalServerError) // negative weight
}

func TestUpdatePrepareCommit(t *testing.T) {
	_, srv, g := testUpdateServer(t, false, Options{})
	e := g.Edges()[0]
	before := distOf(t, srv.URL, e.U, e.V)
	w := before * 0.1
	out := postUpdate(t, srv.URL, updateRequest{
		Mode: "prepare", Txn: "t1",
		Edges: []core.EdgeDelta{{U: e.U, V: e.V, W: w}},
	}, http.StatusOK)
	if out["prepared"] != true {
		t.Fatalf("prepare response %v", out)
	}
	// Prepared but not committed: the old snapshot keeps serving.
	if d := distOf(t, srv.URL, e.U, e.V); d != before {
		t.Fatalf("dist changed before commit: %g != %g", d, before)
	}
	if gen := generationOf(t, srv.URL); gen != 1 {
		t.Fatalf("generation moved before commit: %v", gen)
	}
	out = postUpdate(t, srv.URL, updateRequest{Mode: "commit", Txn: "t1"}, http.StatusOK)
	if out["committed"] != true || out["generation"].(float64) != 2 {
		t.Fatalf("commit response %v", out)
	}
	if after := distOf(t, srv.URL, e.U, e.V); after != w {
		t.Fatalf("dist after commit = %g, want %g", after, w)
	}
	// The patch was consumed: a second commit has nothing to act on.
	postUpdate(t, srv.URL, updateRequest{Mode: "commit", Txn: "t1"}, http.StatusConflict)
}

func TestUpdatePrepareAbort(t *testing.T) {
	_, srv, g := testUpdateServer(t, false, Options{})
	e := g.Edges()[0]
	before := distOf(t, srv.URL, e.U, e.V)
	postUpdate(t, srv.URL, updateRequest{
		Mode: "prepare", Txn: "t2",
		Edges: []core.EdgeDelta{{U: e.U, V: e.V, W: before * 0.1}},
	}, http.StatusOK)
	out := postUpdate(t, srv.URL, updateRequest{Mode: "abort", Txn: "t2"}, http.StatusOK)
	if out["aborted"] != true {
		t.Fatalf("abort response %v", out)
	}
	if d := distOf(t, srv.URL, e.U, e.V); d != before {
		t.Fatalf("dist changed after abort: %g != %g", d, before)
	}
	if gen := generationOf(t, srv.URL); gen != 1 {
		t.Fatalf("generation moved after abort: %v", gen)
	}
	postUpdate(t, srv.URL, updateRequest{Mode: "commit", Txn: "t2"}, http.StatusConflict)
}

func TestUpdateRouteRepair(t *testing.T) {
	_, srv, g := testUpdateServer(t, true, Options{})
	e := g.Edges()[0]
	before := distOf(t, srv.URL, e.U, e.V)
	w := before * 0.1
	postUpdate(t, srv.URL, updateRequest{
		Edges: []core.EdgeDelta{{U: e.U, V: e.V, W: w}},
	}, http.StatusOK)
	body := getJSON(t, fmt.Sprintf("%s/route?u=%d&v=%d", srv.URL, e.U, e.V), http.StatusOK)
	if body["reachable"] != true {
		t.Fatalf("route response %v", body)
	}
	if d := body["dist"].(float64); d != w {
		t.Fatalf("route dist = %g, want %g", d, w)
	}
	path := body["path"].([]any)
	if len(path) != 2 || int(path[0].(float64)) != e.U || int(path[1].(float64)) != e.V {
		t.Fatalf("route path = %v, want the direct new edge [%d %d]", path, e.U, e.V)
	}
}

// TestChaosUpdateMidApply proves a fault inside the update-apply window
// leaves the old snapshot serving: the generation does not move and
// query responses stay bit-for-bit identical.
func TestChaosUpdateMidApply(t *testing.T) {
	defer fault.Reset()
	_, srv, g := testUpdateServer(t, false, Options{})
	e := g.Edges()[0]
	sources := []int{0, 17, 42, 63, 99}
	rows := make([]string, len(sources))
	for i, src := range sources {
		rows[i] = getBody(t, fmt.Sprintf("%s/sssp?src=%d", srv.URL, src))
	}
	before := distOf(t, srv.URL, e.U, e.V)
	for _, fp := range []string{"core.update.apply", "serve.update.swap"} {
		if err := fault.Enable(fp, "error"); err != nil {
			t.Fatal(err)
		}
		postUpdate(t, srv.URL, updateRequest{
			Edges: []core.EdgeDelta{{U: e.U, V: e.V, W: before * 0.1}},
		}, http.StatusInternalServerError)
		fault.Reset()
		if gen := generationOf(t, srv.URL); gen != 1 {
			t.Fatalf("generation moved after %s fault: %v", fp, gen)
		}
		for i, src := range sources {
			if got := getBody(t, fmt.Sprintf("%s/sssp?src=%d", srv.URL, src)); got != rows[i] {
				t.Fatalf("sssp row %d changed after failed update (%s)", src, fp)
			}
		}
	}
	// With faults cleared the same update goes through.
	out := postUpdate(t, srv.URL, updateRequest{
		Edges: []core.EdgeDelta{{U: e.U, V: e.V, W: before * 0.1}},
	}, http.StatusOK)
	if out["generation"].(float64) != 2 {
		t.Fatalf("post-fault apply response %v", out)
	}
}
