package serve

// Durable serving state: a write-ahead update journal plus a v3 factor
// checkpoint, together giving crash recovery with exact generation
// accounting. The commit protocol orders the update path as
//
//	CanCommit (stale pre-check) -> journal Append (fsync'd: the commit
//	point) -> updater Commit (cannot fail) -> engine swap
//
// so a crash on either side of the append is safe: before it, the
// update simply never happened; after it, boot replay re-applies the
// batch (edge weights are absolute, so replay is idempotent).
//
// On boot, OpenDurable restores the newest valid checkpoint (validated
// against the graph digest — a checkpoint for a different graph is a
// deployment error, not something to load), reseeds the updater's edge
// map from the checkpoint overlay, and replays the journal tail through
// the updater to reach the last committed generation. A background
// checkpointer (Server.RunCheckpointer) re-snapshots once the journal
// passes a byte/record threshold and truncates the log, bounding both
// replay time and disk growth.

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/wal"
)

// CheckpointFile is the checkpoint's file name inside the state dir.
const CheckpointFile = "factor.ckpt"

// DurableOptions configure OpenDurable.
type DurableOptions struct {
	// Dir is the state directory holding the checkpoint and the journal
	// segments. Created if missing.
	Dir string
	// CheckpointBytes triggers a background checkpoint once the journal
	// exceeds this size (<= 0 selects 1 MiB).
	CheckpointBytes int64
	// CheckpointRecords triggers a background checkpoint once the
	// journal holds this many records (<= 0 selects 64).
	CheckpointRecords int
	// CheckpointInterval is the checkpointer's poll period (<= 0
	// selects 1s). Thresholds are checked per tick, so this bounds how
	// stale the trigger decision can be, not checkpoint frequency.
	CheckpointInterval time.Duration
	// Threads bounds factor (re)build parallelism (<= 0 uses GOMAXPROCS).
	Threads int
	// NoSync disables journal fsync (tests only: trades durability for
	// speed; crash-consistency claims no longer hold).
	NoSync bool
	// Logger receives recovery decisions; nil uses log.Default().
	Logger *log.Logger
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.CheckpointBytes <= 0 {
		o.CheckpointBytes = 1 << 20
	}
	if o.CheckpointRecords <= 0 {
		o.CheckpointRecords = 64
	}
	if o.CheckpointInterval <= 0 {
		o.CheckpointInterval = time.Second
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	return o
}

// Durable owns a server's persistent state: the journal, the checkpoint
// path, the base graph it all derives from, and the updater the journal
// replays through. Mutating methods (AppendCommitted, Checkpoint,
// Rebuild, ResyncFactor) must be serialized by the caller — the Server
// runs them under its reloading CAS, which already serializes every
// generation mutation.
type Durable struct {
	opts    DurableOptions
	journal *wal.Journal
	ckpt    string
	digest  uint64
	base    *graph.Graph
	updater *core.FactorUpdater
	log     *log.Logger

	bootGen  uint64 // generation reached by boot recovery
	warmBoot bool   // checkpoint restored (vs cold rebuild)

	replayed       atomic.Uint64 // journal batches replayed at boot
	replayNS       atomic.Uint64
	checkpoints    atomic.Uint64
	checkpointErrs atomic.Uint64
	lastCkptGen    atomic.Uint64
	lastCkptNS     atomic.Int64 // wall clock of the last checkpoint
}

// OpenDurable opens (or initializes) the state directory for graph g
// and runs crash recovery: restore the checkpoint, replay the journal
// tail, and leave the updater at the last committed generation. A
// missing, corrupt, legacy (v2), or wrong-graph checkpoint falls back
// to a fresh factorization; a journal that cannot bridge the restored
// generation is cleared (a sharded deployment's anti-entropy loop
// re-converges the worker, a standalone server simply starts fresh).
func OpenDurable(ctx context.Context, g *graph.Graph, opts DurableOptions) (*Durable, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, fmt.Errorf("serve: durable state needs a directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: state dir: %w", err)
	}
	j, err := wal.Open(opts.Dir, wal.Options{NoSync: opts.NoSync})
	if err != nil {
		return nil, err
	}
	d := &Durable{
		opts:    opts,
		journal: j,
		ckpt:    filepath.Join(opts.Dir, CheckpointFile),
		digest:  core.GraphDigest(g),
		base:    g,
		log:     opts.Logger,
	}
	if st := j.Stats(); st.TruncatedBytes > 0 || st.DroppedSegments > 0 {
		d.log.Printf("serve: journal recovered with %d torn byte(s) truncated, %d segment(s) dropped",
			st.TruncatedBytes, st.DroppedSegments)
	}
	if err := d.recover(ctx); err != nil {
		j.Close()
		return nil, err
	}
	return d, nil
}

// recover runs the boot state machine described on OpenDurable.
func (d *Durable) recover(ctx context.Context) error {
	f, gen := d.restoreCheckpoint()
	if f != nil {
		d.warmBoot = true
	} else {
		var err error
		if f, err = d.buildFresh(ctx); err != nil {
			return err
		}
		gen = 1
	}
	updater, err := core.NewFactorUpdater(d.base, f, core.UpdaterOptions{Threads: d.opts.Threads})
	if err != nil {
		return err
	}
	d.updater = updater
	if d.warmBoot {
		// The overlay reseeds the edge map to the checkpointed weights, so
		// replayed batches classify decreases/increases correctly.
		_, meta, err := core.LoadFactorFileMeta(d.ckpt)
		if err != nil {
			return err // raced away between restore and reseed
		}
		if err := updater.RestoreOverlay(meta.Overlay); err != nil {
			return fmt.Errorf("serve: checkpoint overlay rejected: %w", err)
		}
	}

	chain, ok := d.journal.ChainFrom(gen)
	if !ok && d.warmBoot {
		// The journal was compacted past the checkpoint's generation — a
		// lost checkpoint write followed by later compaction. The
		// checkpoint cannot be trusted to be bridgeable; rebuild cold and
		// try the chain from the bottom.
		d.log.Printf("serve: journal floor %d unreachable from checkpoint generation %d, rebuilding cold",
			d.journal.Floor(), gen)
		if f, err = d.buildFresh(ctx); err != nil {
			return err
		}
		if err := updater.Rebase(d.base, f); err != nil {
			return err
		}
		d.warmBoot = false
		gen = 1
		chain, ok = d.journal.ChainFrom(gen)
	}
	if !ok {
		// Even a cold build predates the journal's coverage floor: the
		// only honest state is a clean slate. Clear the journal and start
		// at generation 1; in a sharded deployment the coordinator's
		// anti-entropy loop re-converges this worker.
		d.log.Printf("serve: journal floor %d unreachable even from a cold build; clearing journal, starting at generation 1",
			d.journal.Floor())
		if err := d.journal.CompactThrough(d.journal.LastGen()); err != nil {
			return err
		}
		chain = nil
	}
	replayedTo, err := d.replay(ctx, chain, gen)
	if err != nil {
		return fmt.Errorf("serve: journal replay at generation %d: %w", replayedTo, err)
	}
	d.bootGen = replayedTo
	if d.replayed.Load() > 0 {
		d.log.Printf("serve: replayed %d journal batch(es), generation %d -> %d (%.1f ms)",
			d.replayed.Load(), gen, replayedTo, float64(d.replayNS.Load())/1e6)
	}
	// Re-checkpoint when boot moved past the on-disk snapshot (cold
	// build, or replayed batches), so the next crash replays nothing.
	if !d.warmBoot || d.replayed.Load() > 0 {
		if err := d.Checkpoint(replayedTo); err != nil {
			// Not fatal: the journal still covers the gap.
			d.log.Printf("serve: boot checkpoint failed (journal retained): %v", err)
		}
	} else {
		d.lastCkptGen.Store(replayedTo)
		d.lastCkptNS.Store(time.Now().UnixNano())
	}
	return nil
}

// restoreCheckpoint loads the checkpoint when it is valid for this
// graph; any other outcome (missing, torn, corrupt, legacy v2, other
// graph) is logged and reported as a cold boot.
func (d *Durable) restoreCheckpoint() (*core.Factor, uint64) {
	f, meta, err := core.LoadFactorFileMeta(d.ckpt)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return nil, 0
	case err != nil:
		d.log.Printf("serve: checkpoint %s unusable (%v), cold boot", d.ckpt, err)
		return nil, 0
	}
	if err := meta.Validate(d.digest); err != nil {
		d.log.Printf("serve: checkpoint %s rejected (%v), cold boot", d.ckpt, err)
		return nil, 0
	}
	if f.N() != d.base.N {
		d.log.Printf("serve: checkpoint %s has %d vertices, graph has %d; cold boot", d.ckpt, f.N(), d.base.N)
		return nil, 0
	}
	d.log.Printf("serve: restored checkpoint %s (generation %d, %d overlay edge(s), %.1f MB)",
		d.ckpt, meta.Generation, len(meta.Overlay), float64(f.Memory())/1e6)
	return f, meta.Generation
}

// replay applies a journal chain through the updater, returning the
// generation reached. Markers (and empty batches) advance the
// generation without touching the factor.
func (d *Durable) replay(ctx context.Context, chain []wal.Record, gen uint64) (uint64, error) {
	for _, rec := range chain {
		if len(rec.Edges) == 0 {
			gen = rec.Gen
			continue
		}
		b := core.NewUpdateBatch()
		for _, e := range rec.Edges {
			if err := b.Set(e.U, e.V, e.W); err != nil {
				return gen, err
			}
		}
		t0 := time.Now()
		p, err := d.updater.Apply(ctx, b)
		if err != nil {
			return gen, err
		}
		if err := d.updater.Commit(p); err != nil {
			return gen, err
		}
		d.replayed.Add(1)
		d.replayNS.Add(uint64(time.Since(t0)))
		gen = rec.Gen
	}
	return gen, nil
}

// buildFresh factorizes the base graph from scratch.
func (d *Durable) buildFresh(ctx context.Context) (*core.Factor, error) {
	plan, err := core.NewPlan(d.base, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	return core.NewFactorCtx(ctx, plan, d.opts.Threads)
}

// Updater is the journal-backed updater; hand it to Options.Updater.
func (d *Durable) Updater() *core.FactorUpdater { return d.updater }

// Factor is the factor recovery arrived at; serve it.
func (d *Durable) Factor() *core.Factor { return d.updater.Factor() }

// BootGeneration is the generation recovery arrived at; hand it to
// Options.InitialGeneration.
func (d *Durable) BootGeneration() uint64 { return d.bootGen }

// WarmBoot reports whether the checkpoint was restored (vs rebuilt).
func (d *Durable) WarmBoot() bool { return d.warmBoot }

// AppendCommitted journals one committed batch: absolute edge weights
// that move any state in [from, to) to exactly generation to. The
// append is fsync'd; its return is the transaction's commit point.
func (d *Durable) AppendCommitted(from, to uint64, edges []core.EdgeDelta) error {
	rec := wal.Record{From: from, Gen: to, Edges: make([]wal.Edge, len(edges))}
	for i, e := range edges {
		rec.Edges[i] = wal.Edge{U: e.U, V: e.V, W: e.W}
	}
	return d.journal.Append(rec)
}

// AppendMarker journals a coverage floor at gen — used when the live
// state jumped generations without a batch (reload, resync), so a
// later boot cannot replay stale records across the jump.
func (d *Durable) AppendMarker(gen uint64) error {
	return d.journal.AppendMarker(gen)
}

// Checkpoint snapshots the updater's current factor at gen (with the
// overlay of edge weights that differ from the base graph) and
// truncates the journal through gen. The caller must hold the swap
// serialization (the Server's reloading CAS): the factor, overlay, and
// generation must describe one consistent snapshot.
func (d *Durable) Checkpoint(gen uint64) error {
	meta := core.CheckpointMeta{
		Generation:  gen,
		GraphDigest: d.digest,
		Overlay:     d.updater.OverlayAgainst(d.base),
	}
	if err := core.SaveFactorFileMeta(d.ckpt, d.updater.Factor(), meta); err != nil {
		d.checkpointErrs.Add(1)
		return err
	}
	d.checkpoints.Add(1)
	d.lastCkptGen.Store(gen)
	d.lastCkptNS.Store(time.Now().UnixNano())
	return d.journal.CompactThrough(gen)
}

// Rebuild factorizes the base graph fresh and rebases the updater on
// it — the reload source for a durable server. Caller holds the
// reloading CAS.
func (d *Durable) Rebuild(ctx context.Context) (*core.Factor, error) {
	f, err := d.buildFresh(ctx)
	if err != nil {
		return nil, err
	}
	if err := d.updater.Rebase(d.base, f); err != nil {
		return nil, err
	}
	return f, nil
}

// ResyncFactor rebuilds from the base graph with a donor's overlay
// merged in — the anti-entropy full-resync path for a worker whose
// generation the coordinator's journal can no longer bridge. The
// updater is rebased only after the build succeeds, so a failed resync
// leaves the serving state untouched. Caller holds the reloading CAS.
func (d *Durable) ResyncFactor(ctx context.Context, overlay []core.EdgeDelta) (*core.Factor, error) {
	merged := make([]graph.Edge, 0, len(d.base.Edges())+len(overlay))
	seen := make(map[[2]int]bool, len(overlay))
	for _, e := range overlay {
		u, v := e.U, e.V
		if v < u {
			u, v = v, u
		}
		if u < 0 || v >= d.base.N || u == v {
			return nil, fmt.Errorf("serve: resync overlay edge (%d,%d) out of range", e.U, e.V)
		}
		seen[[2]int{u, v}] = true
		merged = append(merged, graph.Edge{U: u, V: v, W: e.W})
	}
	for _, e := range d.base.Edges() {
		u, v := e.U, e.V
		if v < u {
			u, v = v, u
		}
		if !seen[[2]int{u, v}] {
			merged = append(merged, e)
		}
	}
	g2, err := graph.NewFromEdges(d.base.N, merged)
	if err != nil {
		return nil, err
	}
	plan, err := core.NewPlan(g2, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	f, err := core.NewFactorCtx(ctx, plan, d.opts.Threads)
	if err != nil {
		return nil, err
	}
	if err := d.updater.Rebase(g2, f); err != nil {
		return nil, err
	}
	return f, nil
}

// Overlay is the current diff against the base graph — what
// GET /admin/overlay serves to anti-entropy donor requests. Caller
// holds the reloading CAS so the overlay matches the generation it is
// reported with.
func (d *Durable) Overlay() []core.EdgeDelta {
	return d.updater.OverlayAgainst(d.base)
}

// GraphDigest identifies the base graph (surfaced on /admin/overlay).
func (d *Durable) GraphDigest() uint64 { return d.digest }

// Close releases the journal. The checkpoint needs no closing.
func (d *Durable) Close() error { return d.journal.Close() }

// RunCheckpointer drives the background checkpoint loop until ctx is
// cancelled: once the journal passes the byte or record threshold, it
// takes the swap serialization (skipping the tick when a reload or
// update holds it — the next tick retries), snapshots the factor at
// the current generation, and truncates the journal. A no-op on a
// server without durable state.
func (s *Server) RunCheckpointer(ctx context.Context) {
	d := s.durable
	if d == nil {
		return
	}
	ticker := time.NewTicker(d.opts.CheckpointInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		st := d.journal.Stats()
		if st.Bytes < d.opts.CheckpointBytes && st.Records < d.opts.CheckpointRecords {
			continue
		}
		if !s.reloading.CompareAndSwap(false, true) {
			continue
		}
		gen := s.generation.Load()
		err := d.Checkpoint(gen)
		s.reloading.Store(false)
		if err != nil {
			s.log.Printf("serve: background checkpoint at generation %d failed (journal retained): %v", gen, err)
		} else {
			s.log.Printf("serve: checkpointed at generation %d (%d journal record(s) compacted)", gen, st.Records)
		}
	}
}

// DurabilitySnapshot is the /metrics view of the durable state.
type DurabilitySnapshot struct {
	JournalSegments          int     `json:"journal_segments"`
	JournalRecords           int     `json:"journal_records"`
	JournalBytes             int64   `json:"journal_bytes"`
	JournalFirstGen          uint64  `json:"journal_first_gen"`
	JournalLastGen           uint64  `json:"journal_last_gen"`
	LastCheckpointGeneration uint64  `json:"last_checkpoint_generation"`
	CheckpointStalenessGens  uint64  `json:"checkpoint_staleness_gens"`
	CheckpointStalenessSec   float64 `json:"checkpoint_staleness_sec"`
	Checkpoints              uint64  `json:"checkpoints"`
	CheckpointFailures       uint64  `json:"checkpoint_failures"`
	ReplayedBatches          uint64  `json:"replayed_batches"`
	ReplayAvgLatencyUS       float64 `json:"replay_avg_latency_us"`
}

// Snapshot reports the durable-state counters at serving generation
// gen.
func (d *Durable) Snapshot(gen uint64) DurabilitySnapshot {
	st := d.journal.Stats()
	snap := DurabilitySnapshot{
		JournalSegments:          st.Segments,
		JournalRecords:           st.Records,
		JournalBytes:             st.Bytes,
		JournalFirstGen:          st.FirstGen,
		JournalLastGen:           st.LastGen,
		LastCheckpointGeneration: d.lastCkptGen.Load(),
		Checkpoints:              d.checkpoints.Load(),
		CheckpointFailures:       d.checkpointErrs.Load(),
		ReplayedBatches:          d.replayed.Load(),
	}
	if ck := snap.LastCheckpointGeneration; gen > ck {
		snap.CheckpointStalenessGens = gen - ck
	}
	if at := d.lastCkptNS.Load(); at > 0 {
		snap.CheckpointStalenessSec = time.Since(time.Unix(0, at)).Seconds()
	}
	if n := snap.ReplayedBatches; n > 0 {
		snap.ReplayAvgLatencyUS = float64(d.replayNS.Load()) / float64(n) / 1e3
	}
	return snap
}
