package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
)

// reloadFactor builds a second, different factor (another graph size) so
// a successful swap is observable through /health's vertex count.
func reloadFactor(t *testing.T) (*core.Factor, int) {
	t.Helper()
	g := gen.RoadNetwork(12, 12, 0.3, 11)
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f, g.N
}

func postEmpty(t *testing.T, client *http.Client, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := client.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: status %d, want %d (body %s)", url, resp.StatusCode, wantCode, raw)
	}
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestReadyz(t *testing.T) {
	_, srv, n := testServerOpts(t, false, Options{})
	m := getJSON(t, srv.URL+"/readyz", http.StatusOK)
	if m["ready"] != true {
		t.Errorf("readyz = %v, want ready:true", m)
	}
	if int(m["vertices"].(float64)) != n {
		t.Errorf("readyz vertices = %v, want %d", m["vertices"], n)
	}
	// /healthz must answer as the /health alias.
	if m := getJSON(t, srv.URL+"/healthz", http.StatusOK); m["status"] != "ok" {
		t.Errorf("healthz = %v", m)
	}
}

func TestReadyzNotReadyDuringReload(t *testing.T) {
	inReload := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s, srv, _ := testServerOpts(t, false, Options{
		Reload: func(ctx context.Context) (*core.Factor, *core.Result, error) {
			once.Do(func() { close(inReload) })
			<-release
			f, _ := reloadFactor(t)
			return f, nil, nil
		},
	})
	reloadDone := make(chan struct{})
	go func() {
		defer close(reloadDone)
		postEmpty(t, srv.Client(), srv.URL+"/admin/reload", http.StatusOK)
	}()
	<-inReload

	// Mid-reload: not ready, with Retry-After; liveness still answers.
	resp, err := srv.Client().Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during reload = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("readyz 503 missing Retry-After")
	}
	if m := getJSON(t, srv.URL+"/health", http.StatusOK); m["ready"] != false {
		t.Errorf("health during reload reports ready=%v, want false", m["ready"])
	}
	// A second reload while one is running is refused, not queued.
	postEmpty(t, srv.Client(), srv.URL+"/admin/reload", http.StatusConflict)

	close(release)
	<-reloadDone
	if m := getJSON(t, srv.URL+"/readyz", http.StatusOK); m["ready"] != true {
		t.Errorf("readyz after reload = %v, want ready:true", m)
	}
	if s.notReady.Load() {
		t.Error("notReady still set after reload completed")
	}
}

func TestAdminReloadSwapsFactor(t *testing.T) {
	nf, nn := reloadFactor(t)
	_, srv, oldN := testServerOpts(t, false, Options{
		Reload: func(ctx context.Context) (*core.Factor, *core.Result, error) {
			return nf, nil, nil
		},
	})
	if nn == oldN {
		t.Fatal("test graphs must differ in size for the swap to be observable")
	}
	m := postEmpty(t, srv.Client(), srv.URL+"/admin/reload", http.StatusOK)
	if m["reloaded"] != true || int(m["vertices"].(float64)) != nn {
		t.Fatalf("reload response %v, want reloaded:true vertices:%d", m, nn)
	}
	if m := getJSON(t, srv.URL+"/health", http.StatusOK); int(m["vertices"].(float64)) != nn {
		t.Errorf("health after reload reports %v vertices, want %d", m["vertices"], nn)
	}
	// Queries answer against the new factor's vertex range.
	getJSON(t, srv.URL+fmt.Sprintf("/dist?u=0&v=%d", nn-1), http.StatusOK)
}

func TestAdminReloadRollsBackOnError(t *testing.T) {
	_, srv, n := testServerOpts(t, false, Options{
		Reload: func(ctx context.Context) (*core.Factor, *core.Result, error) {
			return nil, nil, fmt.Errorf("checkpoint corrupt")
		},
	})
	m := postEmpty(t, srv.Client(), srv.URL+"/admin/reload", http.StatusInternalServerError)
	if !strings.Contains(m["error"].(string), "previous factor") {
		t.Errorf("reload error %q does not say the old factor is still serving", m["error"])
	}
	// The old factor must keep answering.
	if m := getJSON(t, srv.URL+"/health", http.StatusOK); int(m["vertices"].(float64)) != n {
		t.Errorf("vertices %v after failed reload, want %d", m["vertices"], n)
	}
	getJSON(t, srv.URL+"/dist?u=0&v=1", http.StatusOK)
	if m := getJSON(t, srv.URL+"/readyz", http.StatusOK); m["ready"] != true {
		t.Errorf("server not ready after failed reload: %v", m)
	}
}

func TestAdminReloadWithoutSource(t *testing.T) {
	_, srv, _ := testServerOpts(t, false, Options{})
	postEmpty(t, srv.Client(), srv.URL+"/admin/reload", http.StatusNotImplemented)
}

func TestShedCarriesRetryAfter(t *testing.T) {
	f, res, n, _ := testFactor(t)
	s := New(f, res, n, Options{MaxInFlight: 1})
	release := make(chan struct{})
	entered := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /slow", s.instrument("dist", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	mux.Handle("/", s.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := srv.Client().Get(srv.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	defer func() { close(release); <-done }()

	resp, err := srv.Client().Get(srv.URL + "/dist?u=0&v=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed 503 missing Retry-After header")
	}
	// Readiness and admin endpoints bypass the limiter: they must answer
	// even while query capacity is exhausted.
	if m := getJSON(t, srv.URL+"/readyz", http.StatusOK); m["ready"] != true {
		t.Errorf("readyz shed by the limiter: %v", m)
	}
}

// TestChaosShutdownDuringSSSPStream parks a streamed /sssp response on a
// failpoint, begins graceful shutdown mid-stream, and asserts the client
// still receives the complete, parseable row.
func TestChaosShutdownDuringSSSPStream(t *testing.T) {
	defer fault.Reset()
	if err := fault.Enable("serve.sssp", "sleep=300ms"); err != nil {
		t.Fatal(err)
	}
	f, res, n, _ := testFactor(t)
	s := New(f, res, n, Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: s.Handler()}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- RunServer(ctx, hs, ln, 5*time.Second) }()

	url := "http://" + ln.Addr().String()
	type ssspResp struct {
		Src  int       `json:"src"`
		N    int       `json:"n"`
		Dist []float64 `json:"dist"`
	}
	bodyc := make(chan error, 1)
	go func() {
		resp, err := http.Get(url + "/sssp?src=0")
		if err != nil {
			bodyc <- err
			return
		}
		defer resp.Body.Close()
		var out ssspResp
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			bodyc <- fmt.Errorf("stream cut mid-response: %w", err)
			return
		}
		if out.N != n || len(out.Dist) != n {
			bodyc <- fmt.Errorf("short row: n=%d len=%d want %d", out.N, len(out.Dist), n)
			return
		}
		bodyc <- nil
	}()

	// Let the handler commit the status and park on the failpoint, then
	// start the shutdown while the stream is in flight.
	time.Sleep(100 * time.Millisecond)
	cancel()
	if err := <-bodyc; err != nil {
		t.Fatalf("in-flight /sssp stream not drained: %v", err)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("RunServer returned %v, want nil after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunServer did not return after shutdown")
	}
}

// TestChaosShutdownCancelsFactorization models the apspserve boot path:
// a factorization launched under the serving context must abort with
// context.Canceled promptly when shutdown begins, rather than finishing
// a build nobody will serve.
func TestChaosShutdownCancelsFactorization(t *testing.T) {
	defer fault.Reset()
	if err := fault.Enable("core.factor.eliminate", "sleep=20ms"); err != nil {
		t.Fatal(err)
	}
	g := gen.RoadNetwork(20, 20, 0.3, 13)
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := core.NewFactorCtx(ctx, plan, 2)
		errc <- err
	}()
	time.Sleep(40 * time.Millisecond)
	cancel() // shutdown signal arrives mid-build
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("factorization returned %v, want context.Canceled", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("factorization did not abort after cancellation")
	}
}
