// Package serve exposes a solved APSP factor over HTTP: point-to-point
// distance queries, single-source rows, and shortest routes. It is the
// deployment shape a downstream user of this library ends up building —
// precompute the supernodal factor offline (cmd/superfw -factor
// -savefactor), then serve queries from its O(fill) representation.
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"

	"repro/internal/core"
)

// Server answers distance queries from a supernodal factor and,
// optionally, route queries from a path-tracked dense result.
type Server struct {
	factor *core.Factor
	result *core.Result // optional: enables /route
	n      int
}

// New builds a Server from a factor and an optional path-tracked result.
func New(f *core.Factor, res *core.Result, n int) *Server {
	return &Server{factor: f, result: res, n: n}
}

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", s.health)
	mux.HandleFunc("GET /dist", s.dist)
	mux.HandleFunc("GET /sssp", s.sssp)
	mux.HandleFunc("GET /route", s.route)
	return mux
}

func (s *Server) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"vertices": s.n,
		"memoryMB": float64(s.factor.Memory()) / 1e6,
		"routes":   s.result != nil,
	})
}

// dist answers GET /dist?u=U&v=V with the shortest distance.
func (s *Server) dist(w http.ResponseWriter, r *http.Request) {
	u, err1 := s.vertex(r, "u")
	v, err2 := s.vertex(r, "v")
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest, firstErr(err1, err2))
		return
	}
	d := s.factor.Dist(u, v)
	writeJSON(w, http.StatusOK, map[string]any{
		"u": u, "v": v,
		"dist":      jsonFloat(d),
		"reachable": !math.IsInf(d, 1) && !math.IsInf(d, -1),
	})
}

// sssp answers GET /sssp?src=S with the full distance row.
func (s *Server) sssp(w http.ResponseWriter, r *http.Request) {
	src, err := s.vertex(r, "src")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	row := s.factor.SSSP(src)
	out := make([]any, len(row))
	for i, d := range row {
		out[i] = jsonFloat(d)
	}
	writeJSON(w, http.StatusOK, map[string]any{"src": src, "dist": out})
}

// route answers GET /route?u=U&v=V with the vertex sequence of a
// shortest path (requires a path-tracked result).
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	if s.result == nil {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("server was started without route support"))
		return
	}
	u, err1 := s.vertex(r, "u")
	v, err2 := s.vertex(r, "v")
	if err1 != nil || err2 != nil {
		writeErr(w, http.StatusBadRequest, firstErr(err1, err2))
		return
	}
	path, ok := s.result.Path(u, v)
	if !ok {
		writeJSON(w, http.StatusOK, map[string]any{"u": u, "v": v, "reachable": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"u": u, "v": v, "reachable": true,
		"dist": jsonFloat(s.result.At(u, v)),
		"path": path,
	})
}

func (s *Server) vertex(r *http.Request, key string) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", key)
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 || v >= s.n {
		return 0, fmt.Errorf("parameter %q must be a vertex id in [0,%d)", key, s.n)
	}
	return v, nil
}

// jsonFloat renders ±Inf as strings (JSON has no infinities).
func jsonFloat(d float64) any {
	switch {
	case math.IsInf(d, 1):
		return "inf"
	case math.IsInf(d, -1):
		return "-inf"
	default:
		return d
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
