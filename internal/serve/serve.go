// Package serve exposes a solved APSP factor over HTTP: point-to-point
// distance queries, batched pair queries, single-source rows, and
// shortest routes. It is the deployment shape a downstream user of this
// library ends up building — precompute the supernodal factor offline
// (cmd/superfw -factor -savefactor), then serve queries from its O(fill)
// representation.
//
// The query path is built for sustained traffic: point queries go
// through a bounded LRU cache of 2-hop labels (a cache hit answers with
// zero allocations), /sssp rows are streamed straight from pooled
// buffers without boxing every float, per-endpoint request/error/latency
// counters are exported at /metrics, and an optional in-flight limiter
// sheds load with 503s (carrying Retry-After) instead of collapsing
// under it.
//
// The factor itself is replaceable at runtime: everything derived from
// it lives in an engine behind an atomic pointer, and POST /admin/reload
// swaps in a rebuilt or checkpoint-restored factor without dropping
// in-flight queries (see reload.go).
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
)

// MaxBatchPairs bounds a single /dist/batch request; larger workloads
// should be split client-side so one request cannot hold a worker (and
// its response buffer) for an unbounded time.
const MaxBatchPairs = 65536

// maxBatchBody bounds the /dist/batch request body.
const maxBatchBody = 8 << 20

// Headers stamped by the shard coordinator (internal/shard) on requests
// it forwards to workers. ForwardedHeader marks a request as routed
// rather than direct (workers count these separately in /metrics);
// GenerationHeader carries the routing-table generation the routing
// decision was made under, so worker access logs can be correlated with
// failover events.
const (
	ForwardedHeader  = "X-Apspshard-Forwarded"
	GenerationHeader = "X-Apspshard-Generation"
)

// RetryAfterDefault is the Retry-After value (integer seconds) sent
// with every locally originated 503/409. The shard coordinator uses the
// same value only when it has no downstream Retry-After to propagate —
// when a worker 503s through it, the coordinator forwards the max of
// the downstream values so both layers speak the same semantics.
const RetryAfterDefault = "1"

// ShardIdentity labels a worker's place in a sharded deployment; it is
// echoed in /health and /metrics so an operator (or the coordinator's
// merged metrics view) can tell which process answered.
type ShardIdentity struct {
	ID   string `json:"id"`
	Role string `json:"role"` // e.g. "worker", "standalone"
}

// Options configure the serving layer.
type Options struct {
	// CacheSize is the label-cache capacity in labels; <= 0 selects the
	// core default (min(n, core.DefaultCacheSize)).
	CacheSize int
	// MaxInFlight caps concurrently served requests; excess requests are
	// rejected with 503. <= 0 means unlimited.
	MaxInFlight int
	// Logger receives encode/stream failures; nil uses log.Default().
	Logger *log.Logger
	// Reload produces a replacement factor (and optional path-tracked
	// result) for POST /admin/reload — typically by restoring a
	// checkpoint or re-running the factorization. When nil the endpoint
	// answers 501. The context is the reload request's context, so an
	// abandoned request cancels the rebuild.
	Reload func(ctx context.Context) (*core.Factor, *core.Result, error)
	// Shard, when non-nil, labels this server's place in a sharded
	// deployment (cmd/apspshard); surfaced in /health and /metrics.
	Shard *ShardIdentity
	// Updater, when non-nil, enables POST /admin/update: live edge-weight
	// batches patched into the serving factor with a copy-on-write
	// snapshot swap (see update.go). nil answers 501.
	Updater *core.FactorUpdater
	// Durable, when non-nil, makes updates crash-recoverable: every
	// committed batch is journaled (fsync'd) before the engine swap, the
	// background checkpointer (RunCheckpointer) bounds replay time, and
	// GET /admin/overlay plus update mode "resync" serve the shard
	// coordinator's anti-entropy protocol (see durable.go). Implies
	// Updater (Durable.Updater() is used when Updater is nil).
	Durable *Durable
	// InitialGeneration seeds the factor generation (0 selects 1) —
	// durable boots resume at the recovered generation instead of
	// restarting the count.
	InitialGeneration uint64
}

// engine bundles everything that must swap together when a new factor is
// loaded: the factor, its label cache, the optional path-tracked result,
// the vertex count, and the n-sized row pool. Handlers pin the engine
// once per request, so a concurrent swap can never hand them a cache
// from one factor and a row length from another.
type engine struct {
	factor  *core.Factor
	cache   *core.LabelCache
	result  *core.Result // optional: enables /route
	n       int
	gen     uint64    // monotonically increasing factor generation
	rowPool sync.Pool // *[]float64 length n, for /sssp rows
}

func newEngine(f *core.Factor, res *core.Result, n, cacheSize int, gen uint64) *engine {
	return &engine{
		factor: f,
		cache:  core.NewLabelCache(f, cacheSize),
		result: res,
		n:      n,
		gen:    gen,
	}
}

func (e *engine) getRow() []float64 {
	if v := e.rowPool.Get(); v != nil {
		return *(v.(*[]float64))
	}
	return make([]float64, e.n)
}

func (e *engine) putRow(row []float64) { e.rowPool.Put(&row) }

func (e *engine) vertex(r *http.Request, key string) (int, error) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", key)
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 || v >= e.n {
		return 0, fmt.Errorf("parameter %q must be a vertex id in [0,%d)", key, e.n)
	}
	return v, nil
}

// Server answers distance queries from a supernodal factor and,
// optionally, route queries from a path-tracked dense result.
type Server struct {
	eng       atomic.Pointer[engine]
	cacheSize int
	log       *log.Logger
	metrics   *metrics
	shard     *ShardIdentity
	inflight  chan struct{} // nil when unlimited

	reload    func(ctx context.Context) (*core.Factor, *core.Result, error)
	reloading atomic.Bool // serializes /admin/reload and /admin/update swaps
	notReady  atomic.Bool // true while a reload rebuilds the factor

	// Live updates (update.go). generation stamps engines: it advances on
	// every successful update commit and reload, never reuses a value, and
	// is surfaced on /health and /metrics so operators (and the shard
	// coordinator) can tell which snapshot answered. updMu guards the
	// single prepared-but-uncommitted patch slot of the two-phase flow.
	updater    *core.FactorUpdater
	durable    *Durable
	generation atomic.Uint64
	updMu      sync.Mutex
	pending    *preparedUpdate

	bufPool sync.Pool // *[]byte, for streamed JSON encoding
}

// New builds a Server from a factor and an optional path-tracked result.
func New(f *core.Factor, res *core.Result, n int, opts Options) *Server {
	logger := opts.Logger
	if logger == nil {
		logger = log.Default()
	}
	s := &Server{
		cacheSize: opts.CacheSize,
		log:       logger,
		metrics:   newMetrics(),
		shard:     opts.Shard,
		reload:    opts.Reload,
		updater:   opts.Updater,
		durable:   opts.Durable,
	}
	if s.updater == nil && s.durable != nil {
		s.updater = s.durable.Updater()
	}
	gen := opts.InitialGeneration
	if gen == 0 {
		gen = 1
	}
	//lint:ignore walorder,genmono boot initialization: the generation is seeded from recovery (OpenDurable already replayed the journal) before any reader or writer exists
	s.generation.Store(gen)
	//lint:ignore walorder boot publish: the factor handed to New is the recovered durable state, so there is nothing new to journal
	s.eng.Store(newEngine(f, res, n, opts.CacheSize, gen))
	if opts.MaxInFlight > 0 {
		s.inflight = make(chan struct{}, opts.MaxInFlight)
	}
	return s
}

// Cache exposes the current engine's label cache (for stats and warmup).
// A reload replaces the cache; callers must not hold this across swaps.
func (s *Server) Cache() *core.LabelCache { return s.eng.Load().cache }

// Handler returns the HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", s.instrument("health", s.health))
	mux.HandleFunc("GET /healthz", s.instrument("health", s.health))
	mux.HandleFunc("GET /readyz", s.counted("readyz", s.readyz))
	mux.HandleFunc("GET /dist", s.instrument("dist", s.dist))
	mux.HandleFunc("POST /dist/batch", s.instrument("dist_batch", s.distBatch))
	mux.HandleFunc("GET /sssp", s.instrument("sssp", s.sssp))
	mux.HandleFunc("GET /route", s.instrument("route", s.route))
	mux.HandleFunc("POST /admin/reload", s.counted("reload", s.adminReload))
	mux.HandleFunc("POST /admin/update", s.counted("update", s.adminUpdate))
	mux.HandleFunc("GET /admin/overlay", s.counted("overlay", s.adminOverlay))
	mux.HandleFunc("GET /metrics", s.metricsEndpoint)
	return mux
}

// instrument wraps an endpoint with the in-flight limiter and the
// request/error/latency counters surfaced at /metrics.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return s.wrap(name, true, h)
}

// counted records the same counters but bypasses the in-flight limiter:
// readiness probes and admin actions must keep working while query
// traffic is being shed.
func (s *Server) counted(name string, h http.HandlerFunc) http.HandlerFunc {
	return s.wrap(name, false, h)
}

func (s *Server) wrap(name string, limited bool, h http.HandlerFunc) http.HandlerFunc {
	m := s.metrics.endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(ForwardedHeader) != "" {
			s.metrics.forwarded.Add(1)
		}
		if limited && s.inflight != nil {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				s.metrics.rejected.Add(1)
				m.requests.Add(1)
				m.errors.Add(1)
				w.Header().Set("Retry-After", RetryAfterDefault)
				s.writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("server at in-flight capacity"))
				return
			}
		}
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		m.requests.Add(1)
		m.latencyNS.Add(uint64(time.Since(t0)))
		if sw.code >= 400 {
			m.errors.Add(1)
		}
	}
}

// statusWriter captures the committed status code for error accounting.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) health(w http.ResponseWriter, _ *http.Request) {
	e := s.eng.Load()
	st := e.cache.Stats()
	body := map[string]any{
		"status":     "ok",
		"ready":      !s.notReady.Load(),
		"vertices":   e.n,
		"generation": e.gen,
		"memoryMB":   float64(e.factor.Memory()) / 1e6,
		"routes":     e.result != nil,
		"cacheSize":  st.Size,
	}
	if s.shard != nil {
		body["shard"] = s.shard
	}
	s.writeJSON(w, http.StatusOK, body)
}

// dist answers GET /dist?u=U&v=V with the shortest distance. Labels come
// from the LRU cache, so repeated queries against hot vertices skip the
// label computation entirely.
func (s *Server) dist(w http.ResponseWriter, r *http.Request) {
	e := s.eng.Load()
	u, err1 := e.vertex(r, "u")
	v, err2 := e.vertex(r, "v")
	if err1 != nil || err2 != nil {
		s.writeErr(w, http.StatusBadRequest, firstErr(err1, err2))
		return
	}
	d := e.cache.Dist(u, v)
	s.writeJSON(w, http.StatusOK, map[string]any{
		"u": u, "v": v,
		"dist":      jsonFloat(d),
		"reachable": reachable(d),
	})
}

// distBatchRequest is the POST /dist/batch body: {"pairs": [[u,v], ...]}.
type distBatchRequest struct {
	Pairs [][2]int `json:"pairs"`
}

// distBatch answers POST /dist/batch, resolving every pair against the
// shared label cache — a batch touching k distinct vertices computes at
// most k labels regardless of pair count. The response streams
// {"count":N,"dists":[...],"reachable":[...]} without per-value boxing.
func (s *Server) distBatch(w http.ResponseWriter, r *http.Request) {
	e := s.eng.Load()
	var req distBatchRequest
	body := http.MaxBytesReader(w, r.Body, maxBatchBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("bad batch body: %w", err))
		return
	}
	if len(req.Pairs) == 0 {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("batch needs at least one pair"))
		return
	}
	if len(req.Pairs) > MaxBatchPairs {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("batch of %d pairs exceeds limit %d", len(req.Pairs), MaxBatchPairs))
		return
	}
	for _, p := range req.Pairs {
		if p[0] < 0 || p[0] >= e.n || p[1] < 0 || p[1] >= e.n {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("pair (%d,%d) out of range [0,%d)", p[0], p[1], e.n))
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	sw := s.newStreamWriter(w)
	sw.literal(`{"count":`)
	sw.int(len(req.Pairs))
	sw.literal(`,"dists":[`)
	for i, p := range req.Pairs {
		if i > 0 {
			sw.literal(",")
		}
		sw.float(e.cache.Dist(p[0], p[1]))
	}
	sw.literal(`],"reachable":[`)
	for i, p := range req.Pairs {
		if i > 0 {
			sw.literal(",")
		}
		sw.bool(reachable(e.cache.Dist(p[0], p[1])))
	}
	sw.literal("]}\n")
	sw.close("dist/batch")
}

// sssp answers GET /sssp?src=S with the full distance row, streamed as
// {"src":S,"n":N,"dist":[...]} from a pooled row buffer — no []any
// boxing, no per-request row allocation.
func (s *Server) sssp(w http.ResponseWriter, r *http.Request) {
	e := s.eng.Load()
	src, err := e.vertex(r, "src")
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	row := e.getRow()
	defer e.putRow(row)
	e.factor.SSSPInto(src, row)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	// Failpoint between committing the status and streaming the row: a
	// sleep here holds a genuinely in-flight response open for the
	// graceful-shutdown chaos tests.
	fault.Inject("serve.sssp")
	sw := s.newStreamWriter(w)
	sw.literal(`{"src":`)
	sw.int(src)
	sw.literal(`,"n":`)
	sw.int(e.n)
	sw.literal(`,"dist":[`)
	for i, d := range row {
		if i > 0 {
			sw.literal(",")
		}
		sw.float(d)
	}
	sw.literal("]}\n")
	sw.close("sssp")
}

// route answers GET /route?u=U&v=V with the vertex sequence of a
// shortest path (requires a path-tracked result).
func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	e := s.eng.Load()
	if e.result == nil {
		s.writeErr(w, http.StatusNotImplemented, fmt.Errorf("server was started without route support"))
		return
	}
	u, err1 := e.vertex(r, "u")
	v, err2 := e.vertex(r, "v")
	if err1 != nil || err2 != nil {
		s.writeErr(w, http.StatusBadRequest, firstErr(err1, err2))
		return
	}
	path, ok := e.result.Path(u, v)
	if !ok {
		s.writeJSON(w, http.StatusOK, map[string]any{"u": u, "v": v, "reachable": false})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"u": u, "v": v, "reachable": true,
		"dist": jsonFloat(e.result.At(u, v)),
		"path": path,
	})
}

func reachable(d float64) bool {
	return !math.IsInf(d, 1) && !math.IsInf(d, -1) && !math.IsNaN(d)
}

// jsonFloat renders ±Inf and NaN as strings — JSON has none of them, and
// a bare NaN would abort encoding mid-response.
func jsonFloat(d float64) any {
	switch {
	case math.IsInf(d, 1):
		return "inf"
	case math.IsInf(d, -1):
		return "-inf"
	case math.IsNaN(d):
		return "nan"
	default:
		return d
	}
}

// writeJSON encodes v with the status committed first. Encode failures
// cannot be turned into an error status anymore, so they are logged
// instead of silently producing a truncated 200.
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.log.Printf("serve: response encode failed: %v", err)
	}
}

func (s *Server) writeErr(w http.ResponseWriter, code int, err error) {
	s.writeJSON(w, code, map[string]string{"error": err.Error()})
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
