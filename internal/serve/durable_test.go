package serve

// Crash-recovery contract of the durable serving state: whatever an
// acknowledged update committed must come back after a restart at the
// exact same generation with bit-identical distances; whatever a crash
// tore mid-write must disappear cleanly (torn journal tail, failed
// checkpoint rename); and a journal-append failure must fail the update
// while the old snapshot keeps serving.

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/internal/graph"
)

func durableGraph() *graph.Graph { return gen.RoadNetwork(10, 10, 0.3, 7) }

func openDurableT(t *testing.T, dir string, g *graph.Graph, opts DurableOptions) *Durable {
	t.Helper()
	opts.Dir = dir
	opts.NoSync = true
	if opts.Logger == nil {
		opts.Logger = log.New(io.Discard, "", 0)
	}
	d, err := OpenDurable(context.Background(), g, opts)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// bootDurable opens (or recovers) the state dir and serves from it,
// exactly as apspserve -statedir does.
func bootDurable(t *testing.T, dir string, g *graph.Graph) (*Server, *httptest.Server, *Durable) {
	t.Helper()
	d := openDurableT(t, dir, g, DurableOptions{})
	s := New(d.Factor(), nil, g.N, Options{Durable: d, InitialGeneration: d.BootGeneration()})
	srv := httptest.NewServer(s.Handler())
	return s, srv, d
}

// ssspRows snapshots full distance rows for a fixed source set — the
// bit-identical yardstick for recovery.
func ssspRows(t *testing.T, url string, sources []int) []string {
	t.Helper()
	rows := make([]string, len(sources))
	for i, src := range sources {
		rows[i] = getBody(t, fmt.Sprintf("%s/sssp?src=%d", url, src))
	}
	return rows
}

var recoverySources = []int{0, 17, 42, 63, 99}

// TestDurableCrashRecoveryReplaysJournal is the core round trip: cold
// boot, two committed updates (journaled, not checkpointed), "crash"
// (close without checkpoint), recover. The recovered server must be at
// the exact committed generation with bit-identical distance rows.
func TestDurableCrashRecoveryReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	g := durableGraph()
	_, srv, d := bootDurable(t, dir, g)
	if d.WarmBoot() || d.BootGeneration() != 1 {
		t.Fatalf("first boot: warm=%v gen=%d, want cold at 1", d.WarmBoot(), d.BootGeneration())
	}

	e0, e1 := g.Edges()[0], g.Edges()[1]
	postUpdate(t, srv.URL, updateRequest{
		Edges: []core.EdgeDelta{{U: e0.U, V: e0.V, W: e0.W * 0.1}},
	}, 200)
	postUpdate(t, srv.URL, updateRequest{
		Edges: []core.EdgeDelta{{U: e1.U, V: e1.V, W: e1.W * 0.2}},
	}, 200)
	if gen := generationOf(t, srv.URL); gen != 3 {
		t.Fatalf("generation after two updates = %v, want 3", gen)
	}
	want := ssspRows(t, srv.URL, recoverySources)

	// Crash: no checkpoint ran (the checkpointer never started), so
	// recovery must come entirely from checkpoint(gen 1) + journal replay.
	srv.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	_, srv2, d2 := bootDurable(t, dir, g)
	defer srv2.Close()
	defer d2.Close()
	if !d2.WarmBoot() || d2.BootGeneration() != 3 {
		t.Fatalf("recovery: warm=%v gen=%d, want warm at 3", d2.WarmBoot(), d2.BootGeneration())
	}
	if n := d2.Snapshot(3).ReplayedBatches; n != 2 {
		t.Fatalf("replayed %d batches, want 2", n)
	}
	if gen := generationOf(t, srv2.URL); gen != 3 {
		t.Fatalf("recovered generation = %v, want 3", gen)
	}
	got := ssspRows(t, srv2.URL, recoverySources)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sssp row %d differs after recovery", recoverySources[i])
		}
	}

	// Recovery re-checkpointed, so a second restart replays nothing.
	srv2.Close()
	d2.Close()
	_, srv3, d3 := bootDurable(t, dir, g)
	defer srv3.Close()
	defer d3.Close()
	if d3.BootGeneration() != 3 || d3.Snapshot(3).ReplayedBatches != 0 {
		t.Fatalf("third boot: gen=%d replayed=%d, want 3 and 0",
			d3.BootGeneration(), d3.Snapshot(3).ReplayedBatches)
	}
}

// TestChaosDurableJournalSyncFailure: a journal append that cannot
// reach disk must fail the update before the swap — generation frozen,
// old snapshot serving bit-for-bit.
func TestChaosDurableJournalSyncFailure(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	g := durableGraph()
	_, srv, d := bootDurable(t, dir, g)
	defer srv.Close()
	defer d.Close()

	e := g.Edges()[0]
	before := ssspRows(t, srv.URL, recoverySources)
	if err := fault.Enable("wal.sync", "error"); err != nil {
		t.Fatal(err)
	}
	postUpdate(t, srv.URL, updateRequest{
		Edges: []core.EdgeDelta{{U: e.U, V: e.V, W: e.W * 0.1}},
	}, 500)
	fault.Reset()
	if gen := generationOf(t, srv.URL); gen != 1 {
		t.Fatalf("generation moved after failed journal append: %v", gen)
	}
	after := ssspRows(t, srv.URL, recoverySources)
	for i := range before {
		if after[i] != before[i] {
			t.Fatalf("sssp row %d changed after failed journal append", recoverySources[i])
		}
	}
	// The rolled-back append must not poison the journal for the next one.
	out := postUpdate(t, srv.URL, updateRequest{
		Edges: []core.EdgeDelta{{U: e.U, V: e.V, W: e.W * 0.1}},
	}, 200)
	if out["generation"].(float64) != 2 {
		t.Fatalf("post-fault update response %v", out)
	}
}

// TestChaosDurableTornJournalTail: an update whose journal frame tears
// mid-write (acknowledged, then SIGKILL before the bytes landed) is the
// one legal lost-ack window. Recovery must truncate the torn frame and
// come back at the last durable generation.
func TestChaosDurableTornJournalTail(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	g := durableGraph()
	_, srv, d := bootDurable(t, dir, g)

	e0, e1 := g.Edges()[0], g.Edges()[1]
	postUpdate(t, srv.URL, updateRequest{
		Edges: []core.EdgeDelta{{U: e0.U, V: e0.V, W: e0.W * 0.1}},
	}, 200)
	durableRows := ssspRows(t, srv.URL, recoverySources)

	// Arm a silent tear: the next append reports success but only 10
	// bytes land.
	if err := fault.Enable("wal.append", "torn=10"); err != nil {
		t.Fatal(err)
	}
	postUpdate(t, srv.URL, updateRequest{
		Edges: []core.EdgeDelta{{U: e1.U, V: e1.V, W: e1.W * 0.2}},
	}, 200)
	fault.Reset()
	if gen := generationOf(t, srv.URL); gen != 3 {
		t.Fatalf("in-memory generation after torn append = %v, want 3", gen)
	}
	srv.Close()
	d.Close() // crash before the torn bytes could ever be completed

	_, srv2, d2 := bootDurable(t, dir, g)
	defer srv2.Close()
	defer d2.Close()
	if d2.BootGeneration() != 2 {
		t.Fatalf("recovered generation = %d, want 2 (torn batch lost)", d2.BootGeneration())
	}
	got := ssspRows(t, srv2.URL, recoverySources)
	for i := range durableRows {
		if got[i] != durableRows[i] {
			t.Fatalf("sssp row %d differs from last durable state", recoverySources[i])
		}
	}
}

// TestChaosDurableCheckpointRenameFailure: a checkpoint that fails at
// the rename must leave the previous checkpoint and the journal intact,
// so recovery still reaches the committed generation by replay.
func TestChaosDurableCheckpointRenameFailure(t *testing.T) {
	defer fault.Reset()
	dir := t.TempDir()
	g := durableGraph()
	s, srv, d := bootDurable(t, dir, g)

	e := g.Edges()[0]
	postUpdate(t, srv.URL, updateRequest{
		Edges: []core.EdgeDelta{{U: e.U, V: e.V, W: e.W * 0.1}},
	}, 200)
	want := ssspRows(t, srv.URL, recoverySources)

	if err := fault.Enable("core.factorio.rename", "error"); err != nil {
		t.Fatal(err)
	}
	if !s.reloading.CompareAndSwap(false, true) {
		t.Fatal("reloading CAS busy")
	}
	err := d.Checkpoint(s.generation.Load())
	s.reloading.Store(false)
	fault.Reset()
	if err == nil {
		t.Fatal("checkpoint with failing rename reported success")
	}
	if st := d.Snapshot(2); st.CheckpointFailures == 0 || st.JournalRecords == 0 {
		t.Fatalf("failed checkpoint must retain the journal: %+v", st)
	}
	srv.Close()
	d.Close()

	_, srv2, d2 := bootDurable(t, dir, g)
	defer srv2.Close()
	defer d2.Close()
	if d2.BootGeneration() != 2 {
		t.Fatalf("recovered generation = %d, want 2", d2.BootGeneration())
	}
	got := ssspRows(t, srv2.URL, recoverySources)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sssp row %d differs after checkpoint-failure recovery", recoverySources[i])
		}
	}
}

// TestDurableApplyGenerationWindow covers the explicit-generation gate
// the anti-entropy stream depends on: idempotent skip at-or-below the
// current generation, 409 on a gap.
func TestDurableApplyGenerationWindow(t *testing.T) {
	dir := t.TempDir()
	g := durableGraph()
	_, srv, d := bootDurable(t, dir, g)
	defer srv.Close()
	defer d.Close()

	e := g.Edges()[0]
	batch := []core.EdgeDelta{{U: e.U, V: e.V, W: e.W * 0.1}}
	out := postUpdate(t, srv.URL, updateRequest{Edges: batch, From: 1, Gen: 2}, 200)
	if out["applied"] != true || out["generation"].(float64) != 2 {
		t.Fatalf("explicit-generation apply response %v", out)
	}
	// A retry of the same batch is skipped, not re-applied.
	out = postUpdate(t, srv.URL, updateRequest{Edges: batch, From: 1, Gen: 2}, 200)
	if out["skipped"] != true || out["generation"].(float64) != 2 {
		t.Fatalf("replayed batch response %v", out)
	}
	// A batch from the future is a generation gap: refuse, don't guess.
	postUpdate(t, srv.URL, updateRequest{Edges: batch, From: 5, Gen: 6}, 409)
	if gen := generationOf(t, srv.URL); gen != 2 {
		t.Fatalf("generation after gap rejection = %v, want 2", gen)
	}
}

// TestDurableResyncFromDonorOverlay drives the anti-entropy fallback at
// the worker level: a peer's /admin/overlay fed back as mode "resync"
// must reproduce the donor's distances exactly at the declared
// generation, durably.
func TestDurableResyncFromDonorOverlay(t *testing.T) {
	g := durableGraph()
	_, donorSrv, donorD := bootDurable(t, t.TempDir(), g)
	defer donorSrv.Close()
	defer donorD.Close()

	e0, e1 := g.Edges()[0], g.Edges()[1]
	postUpdate(t, donorSrv.URL, updateRequest{
		Edges: []core.EdgeDelta{{U: e0.U, V: e0.V, W: e0.W * 0.1}},
	}, 200)
	postUpdate(t, donorSrv.URL, updateRequest{
		Edges: []core.EdgeDelta{{U: e1.U, V: e1.V, W: e1.W * 0.2}},
	}, 200)
	want := ssspRows(t, donorSrv.URL, recoverySources)

	ov := getJSON(t, donorSrv.URL+"/admin/overlay", 200)
	if ov["generation"].(float64) != 3 {
		t.Fatalf("donor overlay generation %v, want 3", ov["generation"])
	}
	edges := make([]core.EdgeDelta, 0, 2)
	for _, raw := range ov["edges"].([]any) {
		m := raw.(map[string]any)
		edges = append(edges, core.EdgeDelta{
			U: int(m["u"].(float64)), V: int(m["v"].(float64)), W: m["w"].(float64),
		})
	}
	if len(edges) != 2 {
		t.Fatalf("donor overlay has %d edges, want 2", len(edges))
	}

	laggardDir := t.TempDir()
	_, lagSrv, lagD := bootDurable(t, laggardDir, g)
	out := postUpdate(t, lagSrv.URL, updateRequest{Mode: "resync", Gen: 3, Edges: edges}, 200)
	if out["resynced"] != true || out["generation"].(float64) != 3 {
		t.Fatalf("resync response %v", out)
	}
	got := ssspRows(t, lagSrv.URL, recoverySources)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sssp row %d differs from donor after resync", recoverySources[i])
		}
	}
	// The 200 promised durability: a restart comes back at generation 3.
	lagSrv.Close()
	lagD.Close()
	_, lagSrv2, lagD2 := bootDurable(t, laggardDir, g)
	defer lagSrv2.Close()
	defer lagD2.Close()
	if lagD2.BootGeneration() != 3 {
		t.Fatalf("resynced worker recovered at generation %d, want 3", lagD2.BootGeneration())
	}
	got = ssspRows(t, lagSrv2.URL, recoverySources)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sssp row %d differs from donor after resync + restart", recoverySources[i])
		}
	}
}

// TestDurableCheckpointerCompactsJournal: the background checkpointer
// must snapshot once the journal passes its record threshold and
// truncate the replay log to nothing.
func TestDurableCheckpointerCompactsJournal(t *testing.T) {
	dir := t.TempDir()
	g := durableGraph()
	d := openDurableT(t, dir, g, DurableOptions{
		CheckpointRecords:  1,
		CheckpointInterval: 5 * time.Millisecond,
	})
	defer d.Close()
	s := New(d.Factor(), nil, g.N, Options{Durable: d, InitialGeneration: d.BootGeneration()})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	//lint:ignore nakedgo test goroutine, exits with the cancelled ctx
	go s.RunCheckpointer(ctx)

	e := g.Edges()[0]
	postUpdate(t, srv.URL, updateRequest{
		Edges: []core.EdgeDelta{{U: e.U, V: e.V, W: e.W * 0.1}},
	}, 200)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := d.Snapshot(s.generation.Load())
		if st.LastCheckpointGeneration == 2 && st.JournalRecords == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkpointer never compacted the journal: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	m := s.Metrics()
	if m.Durability == nil || m.Durability.Checkpoints == 0 {
		t.Fatalf("metrics missing durability counters: %+v", m.Durability)
	}
}
