package serve

// Per-endpoint serving metrics, exposed at GET /metrics as JSON. The
// counters are plain atomics updated on every request by the instrument
// middleware — cheap enough to stay on even under full query load — and
// the endpoint set is fixed at construction, so reads need no locking.

import (
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/semiring"
)

// endpointMetrics counts one route's traffic.
type endpointMetrics struct {
	requests  atomic.Uint64
	errors    atomic.Uint64 // responses with status >= 400
	latencyNS atomic.Uint64 // summed wall time
}

type metrics struct {
	endpoints map[string]*endpointMetrics
	rejected  atomic.Uint64 // requests shed by the in-flight limiter
	forwarded atomic.Uint64 // requests stamped by the shard coordinator
	started   time.Time
}

func newMetrics() *metrics {
	m := &metrics{endpoints: map[string]*endpointMetrics{}, started: time.Now()}
	for _, name := range []string{"health", "readyz", "dist", "dist_batch", "sssp", "route", "reload", "update", "overlay"} {
		m.endpoints[name] = &endpointMetrics{}
	}
	return m
}

func (m *metrics) endpoint(name string) *endpointMetrics {
	e, ok := m.endpoints[name]
	if !ok {
		panic("serve: unregistered endpoint " + name)
	}
	return e
}

// EndpointSnapshot is one endpoint's counters at a point in time.
type EndpointSnapshot struct {
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	AvgLatencyUS float64 `json:"avg_latency_us"`
}

// MetricsSnapshot is the full /metrics payload.
type MetricsSnapshot struct {
	UptimeSec float64                     `json:"uptime_sec"`
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
	// Generation is the serving factor's generation: it advances on every
	// committed live update and every reload, so convergence across a
	// sharded deployment can be asserted by comparing this value.
	Generation uint64 `json:"generation"`
	// Shard is this server's place in a sharded deployment (nil when
	// running standalone); ForwardedRequests counts requests that
	// arrived through the coordinator rather than directly.
	Shard             *ShardIdentity `json:"shard,omitempty"`
	ForwardedRequests uint64         `json:"forwarded_requests"`
	InflightRejected  uint64         `json:"inflight_rejected"`
	CacheHits         uint64         `json:"cache_hits"`
	CacheMisses       uint64         `json:"cache_misses"`
	CacheHitRate      float64        `json:"cache_hit_rate"`
	CacheSize         int            `json:"cache_size"`
	CacheCap          int            `json:"cache_cap"`
	// Kernel exposes the process-wide GEMM-engine counters (cumulative
	// since process start): dispatch split, fused element updates and
	// packed bytes. Reloads re-run the numeric solve in-process, so these
	// move on reload and on any server that solves at startup.
	Kernel semiring.KernelCounters `json:"kernel"`
	// Durability reports the update journal and checkpoint state (nil
	// when the server runs without a durable state dir): journal
	// bytes/records/segments, the last checkpoint's generation and
	// staleness, and boot-replay counters.
	Durability *DurabilitySnapshot `json:"durability,omitempty"`
}

// Metrics returns a snapshot of every serving counter; /metrics encodes
// exactly this value, and tests and load generators read it directly.
func (s *Server) Metrics() MetricsSnapshot {
	snap := MetricsSnapshot{
		UptimeSec:         time.Since(s.metrics.started).Seconds(),
		Endpoints:         make(map[string]EndpointSnapshot, len(s.metrics.endpoints)),
		Shard:             s.shard,
		ForwardedRequests: s.metrics.forwarded.Load(),
		InflightRejected:  s.metrics.rejected.Load(),
	}
	names := make([]string, 0, len(s.metrics.endpoints))
	for name := range s.metrics.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := s.metrics.endpoints[name]
		reqs := e.requests.Load()
		es := EndpointSnapshot{Requests: reqs, Errors: e.errors.Load()}
		if reqs > 0 {
			es.AvgLatencyUS = float64(e.latencyNS.Load()) / float64(reqs) / 1e3
		}
		snap.Endpoints[name] = es
	}
	e := s.eng.Load()
	snap.Generation = e.gen
	st := e.cache.Stats()
	snap.CacheHits = st.Hits
	snap.CacheMisses = st.Misses
	snap.CacheHitRate = st.HitRate()
	snap.CacheSize = st.Size
	snap.CacheCap = st.Cap
	snap.Kernel = semiring.ReadKernelCounters()
	if s.durable != nil {
		d := s.durable.Snapshot(snap.Generation)
		snap.Durability = &d
	}
	return snap
}

// metricsEndpoint serves GET /metrics. It is deliberately outside the
// instrument middleware: scrapes must keep working while the in-flight
// limiter is saturated, and they should not distort the query counters.
func (s *Server) metricsEndpoint(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Metrics())
}
