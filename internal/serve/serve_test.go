package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
)

func testServer(t *testing.T, withRoutes bool) (*httptest.Server, int) {
	t.Helper()
	g := gen.RoadNetwork(10, 10, 0.3, 7)
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	var res *core.Result
	if withRoutes {
		opts := core.DefaultOptions()
		opts.TrackPaths = true
		plan2, err := core.NewPlan(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err = plan2.Solve()
		if err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(New(f, res, g.N).Handler())
	t.Cleanup(srv.Close)
	return srv, g.N
}

func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("%s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHealth(t *testing.T) {
	srv, n := testServer(t, false)
	out := getJSON(t, srv.URL+"/health", http.StatusOK)
	if out["status"] != "ok" || int(out["vertices"].(float64)) != n {
		t.Fatalf("health payload wrong: %v", out)
	}
	if out["routes"] != false {
		t.Fatal("routes should be off")
	}
}

func TestDist(t *testing.T) {
	srv, _ := testServer(t, false)
	out := getJSON(t, srv.URL+"/dist?u=0&v=42", http.StatusOK)
	if out["reachable"] != true {
		t.Fatalf("expected reachable pair: %v", out)
	}
	d := out["dist"].(float64)
	if d <= 0 || math.IsInf(d, 0) {
		t.Fatalf("distance %v out of range", d)
	}
	// Self distance.
	out = getJSON(t, srv.URL+"/dist?u=5&v=5", http.StatusOK)
	if out["dist"].(float64) != 0 {
		t.Fatal("self distance should be 0")
	}
}

func TestDistErrors(t *testing.T) {
	srv, n := testServer(t, false)
	getJSON(t, srv.URL+"/dist?u=0", http.StatusBadRequest)
	getJSON(t, srv.URL+"/dist?u=abc&v=1", http.StatusBadRequest)
	getJSON(t, srv.URL+"/dist?u=0&v=-1", http.StatusBadRequest)
	getJSON(t, srv.URL+"/dist?u=0&v="+itoa(n), http.StatusBadRequest)
}

func itoa(n int) string {
	return string(rune('0'+n/100%10)) + string(rune('0'+n/10%10)) + string(rune('0'+n%10))
}

func TestSSSP(t *testing.T) {
	srv, n := testServer(t, false)
	out := getJSON(t, srv.URL+"/sssp?src=3", http.StatusOK)
	dist := out["dist"].([]any)
	if len(dist) != n {
		t.Fatalf("row length %d, want %d", len(dist), n)
	}
	if dist[3].(float64) != 0 {
		t.Fatal("self entry should be 0")
	}
}

func TestRoute(t *testing.T) {
	srv, _ := testServer(t, true)
	out := getJSON(t, srv.URL+"/route?u=0&v=77", http.StatusOK)
	if out["reachable"] != true {
		t.Fatalf("expected route: %v", out)
	}
	path := out["path"].([]any)
	if int(path[0].(float64)) != 0 || int(path[len(path)-1].(float64)) != 77 {
		t.Fatalf("route endpoints wrong: %v", path)
	}
}

func TestRouteWithoutSupport(t *testing.T) {
	srv, _ := testServer(t, false)
	getJSON(t, srv.URL+"/route?u=0&v=1", http.StatusNotImplemented)
}
