package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
)

func testFactor(t *testing.T) (*core.Factor, *core.Result, int, bool) {
	t.Helper()
	g := gen.RoadNetwork(10, 10, 0.3, 7)
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f, nil, g.N, false
}

func testServerOpts(t *testing.T, withRoutes bool, opts Options) (*Server, *httptest.Server, int) {
	t.Helper()
	g := gen.RoadNetwork(10, 10, 0.3, 7)
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	var res *core.Result
	if withRoutes {
		o := core.DefaultOptions()
		o.TrackPaths = true
		plan2, err := core.NewPlan(g, o)
		if err != nil {
			t.Fatal(err)
		}
		res, err = plan2.Solve()
		if err != nil {
			t.Fatal(err)
		}
	}
	s := New(f, res, g.N, opts)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	return s, srv, g.N
}

func testServer(t *testing.T, withRoutes bool) (*httptest.Server, int) {
	_, srv, n := testServerOpts(t, withRoutes, Options{})
	return srv, n
}

func getJSON(t *testing.T, url string, wantCode int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("%s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func postJSON(t *testing.T, url string, body any, wantCode int) map[string]any {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s: status %d, want %d (body %s)", url, resp.StatusCode, wantCode, raw)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHealth(t *testing.T) {
	srv, n := testServer(t, false)
	out := getJSON(t, srv.URL+"/health", http.StatusOK)
	if out["status"] != "ok" || int(out["vertices"].(float64)) != n {
		t.Fatalf("health payload wrong: %v", out)
	}
	if out["routes"] != false {
		t.Fatal("routes should be off")
	}
}

func TestDist(t *testing.T) {
	srv, _ := testServer(t, false)
	out := getJSON(t, srv.URL+"/dist?u=0&v=42", http.StatusOK)
	if out["reachable"] != true {
		t.Fatalf("expected reachable pair: %v", out)
	}
	d := out["dist"].(float64)
	if d <= 0 || math.IsInf(d, 0) {
		t.Fatalf("distance %v out of range", d)
	}
	// Self distance.
	out = getJSON(t, srv.URL+"/dist?u=5&v=5", http.StatusOK)
	if out["dist"].(float64) != 0 {
		t.Fatal("self distance should be 0")
	}
	// Repeats of the same pair must be served from the label cache.
	getJSON(t, srv.URL+"/dist?u=0&v=42", http.StatusOK)
}

func TestDistErrors(t *testing.T) {
	srv, n := testServer(t, false)
	getJSON(t, srv.URL+"/dist?u=0", http.StatusBadRequest)
	getJSON(t, srv.URL+"/dist?u=abc&v=1", http.StatusBadRequest)
	getJSON(t, srv.URL+"/dist?u=0&v=-1", http.StatusBadRequest)
	getJSON(t, srv.URL+"/dist?u=0&v="+strconv.Itoa(n), http.StatusBadRequest)
}

func TestDistBatch(t *testing.T) {
	s, srv, n := testServerOpts(t, false, Options{})
	pairs := [][2]int{{0, 42}, {5, 5}, {1, n - 1}, {0, 42}}
	out := postJSON(t, srv.URL+"/dist/batch", map[string]any{"pairs": pairs}, http.StatusOK)
	dists := out["dists"].([]any)
	reach := out["reachable"].([]any)
	if int(out["count"].(float64)) != len(pairs) || len(dists) != len(pairs) || len(reach) != len(pairs) {
		t.Fatalf("batch shape wrong: %v", out)
	}
	if dists[1].(float64) != 0 || reach[1] != true {
		t.Fatalf("self pair wrong: %v %v", dists[1], reach[1])
	}
	// Batch answers must match the point endpoint.
	single := getJSON(t, srv.URL+"/dist?u=0&v=42", http.StatusOK)
	if dists[0].(float64) != single["dist"].(float64) {
		t.Fatalf("batch %v != point %v", dists[0], single["dist"])
	}
	// The duplicated pair and the point query share cached labels.
	if st := s.Cache().Stats(); st.Hits == 0 {
		t.Fatalf("batch should hit the label cache: %+v", st)
	}
}

func TestDistBatchErrors(t *testing.T) {
	_, srv, n := testServerOpts(t, false, Options{})
	postJSON(t, srv.URL+"/dist/batch", map[string]any{"pairs": [][2]int{}}, http.StatusBadRequest)
	postJSON(t, srv.URL+"/dist/batch", map[string]any{"pairs": [][2]int{{0, n}}}, http.StatusBadRequest)
	postJSON(t, srv.URL+"/dist/batch", map[string]any{"pairs": [][2]int{{-1, 0}}}, http.StatusBadRequest)
	resp, err := http.Post(srv.URL+"/dist/batch", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d", resp.StatusCode)
	}
}

func TestSSSP(t *testing.T) {
	srv, n := testServer(t, false)
	out := getJSON(t, srv.URL+"/sssp?src=3", http.StatusOK)
	dist := out["dist"].([]any)
	if len(dist) != n {
		t.Fatalf("row length %d, want %d", len(dist), n)
	}
	if int(out["n"].(float64)) != n {
		t.Fatalf("n field %v, want %d", out["n"], n)
	}
	if dist[3].(float64) != 0 {
		t.Fatal("self entry should be 0")
	}
}

// TestSSSPStreamsInf checks the streamed encoding end to end on a graph
// with unreachable vertices: +Inf must arrive as the string "inf", and
// the payload must stay valid JSON (the seed's []any boxing is gone, so
// this exercises the hand-rolled encoder).
func TestSSSPStreamsInf(t *testing.T) {
	g := gen.RoadNetwork(6, 6, 0.3, 11)
	// Add an isolated vertex by building a plan over a bigger vertex set.
	plan, err := core.NewPlan(g, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewFactor(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	row := f.SSSP(0)
	hasInf := false
	for _, d := range row {
		if math.IsInf(d, 1) {
			hasInf = true
		}
	}
	s := New(f, nil, g.N, Options{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	out := getJSON(t, srv.URL+"/sssp?src=0", http.StatusOK)
	dist := out["dist"].([]any)
	for i, d := range dist {
		switch v := d.(type) {
		case float64:
			if math.Abs(v-row[i]) > 1e-9 {
				t.Fatalf("dist[%d] = %v, want %g", i, v, row[i])
			}
		case string:
			if v != "inf" || !math.IsInf(row[i], 1) {
				t.Fatalf("dist[%d] = %q, want %g", i, v, row[i])
			}
		default:
			t.Fatalf("dist[%d] has type %T", i, d)
		}
	}
	if hasInf {
		// At least one "inf" string made it through the stream intact.
		found := false
		for _, d := range dist {
			if d == "inf" {
				found = true
			}
		}
		if !found {
			t.Fatal("expected streamed \"inf\" entries")
		}
	}
}

func TestJSONFloatNaN(t *testing.T) {
	if jsonFloat(math.NaN()) != "nan" {
		t.Fatal("NaN must map to the string \"nan\", not break the encoder")
	}
	if jsonFloat(math.Inf(1)) != "inf" || jsonFloat(math.Inf(-1)) != "-inf" {
		t.Fatal("infinities must map to strings")
	}
	if jsonFloat(1.5) != 1.5 {
		t.Fatal("finite values pass through")
	}
}

func TestWriteJSONLogsEncodeFailure(t *testing.T) {
	var buf bytes.Buffer
	s, _, _ := testServerOpts(t, false, Options{Logger: log.New(&buf, "", 0)})
	rec := httptest.NewRecorder()
	// A channel is not JSON-encodable, so Encode fails after the header
	// is committed; the failure must be logged, not swallowed.
	s.writeJSON(rec, http.StatusOK, map[string]any{"bad": make(chan int)})
	if !strings.Contains(buf.String(), "encode failed") {
		t.Fatalf("encode failure not logged: %q", buf.String())
	}
}

func TestRoute(t *testing.T) {
	srv, _ := testServer(t, true)
	out := getJSON(t, srv.URL+"/route?u=0&v=77", http.StatusOK)
	if out["reachable"] != true {
		t.Fatalf("expected route: %v", out)
	}
	path := out["path"].([]any)
	if int(path[0].(float64)) != 0 || int(path[len(path)-1].(float64)) != 77 {
		t.Fatalf("route endpoints wrong: %v", path)
	}
}

func TestRouteWithoutSupport(t *testing.T) {
	srv, _ := testServer(t, false)
	getJSON(t, srv.URL+"/route?u=0&v=1", http.StatusNotImplemented)
}

func TestMetricsEndpoint(t *testing.T) {
	s, srv, _ := testServerOpts(t, false, Options{})
	getJSON(t, srv.URL+"/dist?u=0&v=42", http.StatusOK)
	getJSON(t, srv.URL+"/dist?u=0&v=42", http.StatusOK)
	getJSON(t, srv.URL+"/dist?u=bad", http.StatusBadRequest)
	getJSON(t, srv.URL+"/sssp?src=1", http.StatusOK)
	out := getJSON(t, srv.URL+"/metrics", http.StatusOK)
	eps := out["endpoints"].(map[string]any)
	dist := eps["dist"].(map[string]any)
	if int(dist["requests"].(float64)) != 3 || int(dist["errors"].(float64)) != 1 {
		t.Fatalf("dist counters wrong: %v", dist)
	}
	sssp := eps["sssp"].(map[string]any)
	if int(sssp["requests"].(float64)) != 1 {
		t.Fatalf("sssp counters wrong: %v", sssp)
	}
	snap := s.Metrics()
	if snap.CacheHits+snap.CacheMisses == 0 {
		t.Fatal("cache counters missing from metrics")
	}
	if snap.Endpoints["dist"].AvgLatencyUS <= 0 {
		t.Fatal("latency counter missing")
	}
}

// TestConcurrentHammer drives /dist, /sssp, and /dist/batch from many
// goroutines at once against one shared factor and label cache. The
// point is the race detector run (make race): read-only factor sharing
// plus the locked LRU must survive concurrent traffic unharmed.
func TestConcurrentHammer(t *testing.T) {
	s, srv, n := testServerOpts(t, false, Options{CacheSize: 32})
	want := make(map[[2]int]float64)
	for _, p := range [][2]int{{0, 42}, {1, 17}, {3, 99}} {
		want[p] = s.Cache().Dist(p[0], p[1])
	}
	client := srv.Client()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	report := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < 40; q++ {
				switch q % 3 {
				case 0:
					u, v := rng.Intn(n), rng.Intn(n)
					resp, err := client.Get(fmt.Sprintf("%s/dist?u=%d&v=%d", srv.URL, u, v))
					if err != nil {
						report(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						report(fmt.Errorf("dist status %d", resp.StatusCode))
						return
					}
				case 1:
					resp, err := client.Get(fmt.Sprintf("%s/sssp?src=%d", srv.URL, rng.Intn(n)))
					if err != nil {
						report(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						report(fmt.Errorf("sssp status %d", resp.StatusCode))
						return
					}
				default:
					pairs := [][2]int{{rng.Intn(n), rng.Intn(n)}, {0, 42}, {1, 17}}
					payload, _ := json.Marshal(map[string]any{"pairs": pairs})
					resp, err := client.Post(srv.URL+"/dist/batch", "application/json", bytes.NewReader(payload))
					if err != nil {
						report(err)
						return
					}
					var out struct {
						Dists []any `json:"dists"`
					}
					if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
						resp.Body.Close()
						report(fmt.Errorf("batch decode: %w", err))
						return
					}
					resp.Body.Close()
					if d, ok := out.Dists[1].(float64); !ok || math.Abs(d-want[[2]int{0, 42}]) > 1e-9 {
						report(fmt.Errorf("batch dist(0,42) = %v, want %g", out.Dists[1], want[[2]int{0, 42}]))
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	if err, open := <-errs; open {
		t.Fatal(err)
	}
	// Spot-check correctness after the stampede.
	for p, d := range want {
		out := getJSON(t, fmt.Sprintf("%s/dist?u=%d&v=%d", srv.URL, p[0], p[1]), http.StatusOK)
		if math.Abs(out["dist"].(float64)-d) > 1e-9 {
			t.Fatalf("dist(%d,%d) drifted to %v, want %g", p[0], p[1], out["dist"], d)
		}
	}
}

// TestInFlightLimiter saturates a MaxInFlight=1 server with a slow
// request and checks that overflow traffic is shed with 503 and counted.
func TestInFlightLimiter(t *testing.T) {
	f, res, n, _ := testFactor(t)
	s := New(f, res, n, Options{MaxInFlight: 1})
	release := make(chan struct{})
	entered := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /slow", s.instrument("dist", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	mux.Handle("/", s.Handler())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := srv.Client().Get(srv.URL + "/slow")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered
	resp, err := srv.Client().Get(srv.URL + "/dist?u=0&v=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated server answered %d, want 503", resp.StatusCode)
	}
	close(release)
	<-done
	if s.Metrics().InflightRejected == 0 {
		t.Fatal("rejected request not counted")
	}
}

// TestGracefulShutdownDrains starts RunServer, parks a request in the
// handler, cancels the serving context mid-request, and asserts the
// in-flight request still completes with a full response while the
// listener stops accepting new work.
func TestGracefulShutdownDrains(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
		fmt.Fprint(w, "drained ok")
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: mux}
	ctx, cancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- RunServer(ctx, hs, ln, 5*time.Second) }()

	url := "http://" + ln.Addr().String()
	bodyc := make(chan string, 1)
	go func() {
		resp, err := http.Get(url + "/slow")
		if err != nil {
			bodyc <- "request failed: " + err.Error()
			return
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		bodyc <- string(raw)
	}()

	<-inHandler
	cancel() // SIGINT analogue: shutdown begins with the request in flight
	time.Sleep(50 * time.Millisecond)
	close(release)

	if body := <-bodyc; body != "drained ok" {
		t.Fatalf("in-flight request not drained: %q", body)
	}
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("RunServer returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunServer did not return after shutdown")
	}
	// New connections must be refused after shutdown.
	if _, err := http.Get(url + "/slow"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}
