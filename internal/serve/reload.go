package serve

// Factor reload and readiness. A running server can swap in a freshly
// rebuilt or checkpoint-restored factor without dropping queries: the
// engine (factor + label cache + row pool + vertex count) sits behind an
// atomic pointer, handlers pin it once per request, and POST
// /admin/reload publishes a new engine only after the incoming factor
// validates. A reload that fails — build error, corrupt checkpoint,
// validation failure — leaves the old engine serving untouched; the
// rollback is simply never performing the swap.

import (
	"fmt"
	"net/http"
)

// readyz reports whether the server should receive traffic. Unlike
// /health and /healthz (liveness: the process is up and answering),
// readiness goes false for the duration of a factor reload, steering
// load balancers (and the shard coordinator's health prober) away from
// the node while it is busy rebuilding. The old factor keeps answering
// queries that do arrive during the window.
func (s *Server) readyz(w http.ResponseWriter, _ *http.Request) {
	if s.notReady.Load() {
		w.Header().Set("Retry-After", RetryAfterDefault)
		s.writeErr(w, http.StatusServiceUnavailable, fmt.Errorf("factor reload in progress"))
		return
	}
	e := s.eng.Load()
	// Generation rides along so the shard coordinator's prober can gate
	// re-admission on factor freshness, not just liveness: a restarted
	// worker that recovered an older generation is held out of rotation
	// until anti-entropy converges it.
	s.writeJSON(w, http.StatusOK, map[string]any{
		"ready":      true,
		"vertices":   e.n,
		"generation": e.gen,
	})
}

// adminReload serves POST /admin/reload: invoke the configured reload
// source, validate what it returns, and atomically swap it in. Exactly
// one reload runs at a time (concurrent requests get 409); queries keep
// being answered from the old factor until the instant of the swap, and
// any failure keeps the old factor in place.
func (s *Server) adminReload(w http.ResponseWriter, r *http.Request) {
	if s.reload == nil {
		s.writeErr(w, http.StatusNotImplemented, fmt.Errorf("server was started without a reload source"))
		return
	}
	if !s.reloading.CompareAndSwap(false, true) {
		w.Header().Set("Retry-After", RetryAfterDefault)
		s.writeErr(w, http.StatusConflict, fmt.Errorf("a reload is already in progress"))
		return
	}
	defer s.reloading.Store(false)
	s.notReady.Store(true)
	defer s.notReady.Store(false)

	old := s.eng.Load()
	f, res, err := s.reload(r.Context())
	if err != nil {
		s.log.Printf("serve: reload failed, keeping current factor: %v", err)
		s.writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("reload failed (still serving previous factor): %w", err))
		return
	}
	if err := f.Validate(); err != nil {
		s.log.Printf("serve: reloaded factor rejected, keeping current factor: %v", err)
		s.writeErr(w, http.StatusInternalServerError,
			fmt.Errorf("reloaded factor rejected (still serving previous factor): %w", err))
		return
	}
	// A reload invalidates any patch prepared against the old factor.
	s.updMu.Lock()
	s.pending = nil
	s.updMu.Unlock()
	gen := s.generation.Add(1)
	//lint:ignore walorder reload durability is the checkpoint below, not a journal append; on checkpoint failure the coverage-floor marker keeps recovery from replaying pre-reload batches
	s.eng.Store(newEngine(f, res, f.N(), s.cacheSize, gen))
	if s.durable != nil {
		// A reload discards every applied update, so the journal's records
		// no longer describe the live state. Checkpoint the fresh factor at
		// the new generation and truncate the journal; if the checkpoint
		// cannot be written, journal a coverage-floor marker instead so a
		// later boot cannot replay pre-reload batches across the reset.
		if err := s.durable.Checkpoint(gen); err != nil {
			s.log.Printf("serve: post-reload checkpoint failed: %v", err)
			if merr := s.durable.AppendMarker(gen); merr != nil {
				s.log.Printf("serve: post-reload journal marker failed too (recovery may roll back this reload): %v", merr)
			}
		}
	}
	s.log.Printf("serve: factor reloaded (%d vertices, routes=%v, generation %d)", f.N(), res != nil, gen)
	//lint:ignore walorder the reload ack promises the new factor is live, not journaled; its durability comes from the checkpoint (or marker) above
	s.writeJSON(w, http.StatusOK, map[string]any{
		"reloaded":     true,
		"vertices":     f.N(),
		"generation":   gen,
		"routes":       res != nil,
		"prevVertices": old.n,
	})
}
