package serve

// Streamed JSON encoding for the row- and batch-shaped responses. The
// seed implementation boxed every float64 into a []any before handing
// the slice to encoding/json — one interface allocation per vertex, per
// request. Here values are appended to a pooled byte buffer with
// strconv and flushed in chunks, so a /sssp response costs O(1)
// allocations regardless of row length.

import (
	"io"
	"math"
	"strconv"
)

// streamFlushSize is the buffered-bytes threshold that triggers a flush
// to the underlying writer.
const streamFlushSize = 16 << 10

// streamWriter appends JSON fragments to a pooled buffer and writes it
// out in chunks. The first write error is retained; once writing fails
// the remaining fragments are dropped (the status line is already
// committed, so all the handler can do is stop and log).
type streamWriter struct {
	s   *Server
	w   io.Writer
	buf []byte
	err error
}

func (s *Server) newStreamWriter(w io.Writer) *streamWriter {
	var buf []byte
	if v := s.bufPool.Get(); v != nil {
		buf = (*(v.(*[]byte)))[:0]
	} else {
		buf = make([]byte, 0, streamFlushSize)
	}
	return &streamWriter{s: s, w: w, buf: buf}
}

func (sw *streamWriter) literal(lit string) {
	sw.buf = append(sw.buf, lit...)
	sw.maybeFlush()
}

func (sw *streamWriter) int(v int) {
	sw.buf = strconv.AppendInt(sw.buf, int64(v), 10)
	sw.maybeFlush()
}

func (sw *streamWriter) bool(v bool) {
	sw.buf = strconv.AppendBool(sw.buf, v)
	sw.maybeFlush()
}

// float appends a JSON value for d, rendering ±Inf and NaN as the same
// strings jsonFloat uses (JSON numbers cannot express them).
func (sw *streamWriter) float(d float64) {
	switch {
	case math.IsInf(d, 1):
		sw.buf = append(sw.buf, `"inf"`...)
	case math.IsInf(d, -1):
		sw.buf = append(sw.buf, `"-inf"`...)
	case math.IsNaN(d):
		sw.buf = append(sw.buf, `"nan"`...)
	default:
		sw.buf = strconv.AppendFloat(sw.buf, d, 'g', -1, 64)
	}
	sw.maybeFlush()
}

func (sw *streamWriter) maybeFlush() {
	if len(sw.buf) >= streamFlushSize {
		sw.flush()
	}
}

func (sw *streamWriter) flush() {
	if sw.err == nil && len(sw.buf) > 0 {
		_, sw.err = sw.w.Write(sw.buf)
	}
	sw.buf = sw.buf[:0]
}

// close flushes the tail, returns the buffer to the pool, and logs the
// first stream error (typically a client that went away mid-response).
func (sw *streamWriter) close(endpoint string) {
	sw.flush()
	buf := sw.buf
	sw.s.bufPool.Put(&buf)
	sw.buf = nil
	if sw.err != nil {
		sw.s.log.Printf("serve: %s stream aborted: %v", endpoint, sw.err)
	}
}
