package analysis

// The `go vet -vettool` protocol. cmd/go drives a vet tool as follows:
//
//  1. `tool -V=full` — print a version line ending in a content hash;
//     cmd/go folds it into its action cache key, so rebuilding the tool
//     invalidates cached vet results.
//  2. `tool -flags` — print a JSON array describing supported flags
//     (empty for apspvet: the suite always runs whole).
//  3. `tool <pkg>.cfg` — analyze one package. The cfg file is JSON
//     naming the source files, the import map, and the export-data file
//     of every dependency (already built by cmd/go). Facts output
//     (VetxOutput) must be written even though this suite is factless,
//     because cmd/go caches and feeds it to dependents.
//
// Diagnostics go to stderr as "file:line:col: message" and the exit
// status is 2 when any were reported — the same contract as
// x/tools/go/analysis/unitchecker, so `go vet -vettool=bin/apspvet`
// behaves exactly like the stock vet suite from the Makefile and CI.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the JSON schema of the .cfg files cmd/go hands to
// vet tools (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point shared by vettool and standalone invocations:
//
//	apspvet -V=full | -flags | pkg.cfg     (driven by go vet)
//	apspvet [dir-relative patterns...]     (standalone; default ./...)
//
// It does not return.
func Main(analyzers ...*Analyzer) {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		printVersion()
		os.Exit(0)
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
		os.Exit(0)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unitcheck(args[0], analyzers))
	default:
		if len(args) == 0 {
			args = []string{"./..."}
		}
		os.Exit(standalone(args, analyzers))
	}
}

// printVersion emits the -V=full line. The hash is over the tool binary
// itself, matching x/tools unitchecker, so vet caching keys on the
// exact build of the suite.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		f, err2 := os.Open(exe)
		if err2 == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

func unitcheck(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "apspvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// cmd/go requires the facts file regardless; the suite carries none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	// Dependencies are visited for facts only — nothing to do.
	if cfg.VetxOnly {
		return 0
	}
	files := make([]string, 0, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := CheckFiles(cfg.ImportPath, files, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "apspvet: %v\n", err)
		return 1
	}
	findings, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apspvet: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func standalone(patterns []string, analyzers []*Analyzer) int {
	pkgs, err := Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apspvet: %v\n", err)
		return 1
	}
	exit := 0
	for _, pkg := range pkgs {
		findings, err := RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apspvet: %v\n", err)
			return 1
		}
		for _, f := range findings {
			fmt.Println(f)
			exit = 1
		}
	}
	return exit
}
