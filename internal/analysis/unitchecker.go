package analysis

// The `go vet -vettool` protocol. cmd/go drives a vet tool as follows:
//
//  1. `tool -V=full` — print a version line ending in a content hash;
//     cmd/go folds it into its action cache key, so rebuilding the tool
//     invalidates cached vet results.
//  2. `tool -flags` — print a JSON array describing supported flags
//     (empty for apspvet: the suite always runs whole).
//  3. `tool <pkg>.cfg` — analyze one package. The cfg file is JSON
//     naming the source files, the import map, and the export-data file
//     of every dependency (already built by cmd/go). The VetxOutput
//     facts file carries the suite's cross-package facts (facts.go) to
//     dependent packages; dependency vetx files named in PackageVetx
//     are read back, with stale ones (export-data hash mismatch)
//     dropped rather than trusted.
//
// Diagnostics go to stderr as "file:line:col: message" and the exit
// status is 2 when any were reported — the same contract as
// x/tools/go/analysis/unitchecker, so `go vet -vettool=bin/apspvet`
// behaves exactly like the stock vet suite from the Makefile and CI.
//
// Standalone invocations (no .cfg argument) load packages through
// go list (load.go) and additionally support machine-readable output:
//
//	apspvet [-sarif out.sarif] [-baseline file] [-diff] [-writebaseline] [patterns...]

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// vetConfig mirrors the JSON schema of the .cfg files cmd/go hands to
// vet tools (cmd/go/internal/work.vetConfig).
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// Main is the entry point shared by vettool and standalone invocations:
//
//	apspvet -V=full | -flags | pkg.cfg     (driven by go vet)
//	apspvet [flags] [patterns...]          (standalone; default ./...)
//
// It does not return.
func Main(analyzers ...*Analyzer) {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		printVersion()
		os.Exit(0)
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
		os.Exit(0)
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unitcheck(args[0], analyzers))
	default:
		os.Exit(standalone(args, analyzers))
	}
}

// printVersion emits the -V=full line. The hash is over the tool binary
// itself, matching x/tools unitchecker, so vet caching keys on the
// exact build of the suite.
func printVersion() {
	progname := filepath.Base(os.Args[0])
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		f, err2 := os.Open(exe)
		if err2 == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

func unitcheck(cfgFile string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "apspvet: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// VetxOnly packages are dependencies visited for facts alone. Under
	// the gate's `go vet ./...` every module package is a target in its
	// own right (VetxOnly=false) and its facts flow through its target
	// vetx, so VetxOnly configs here are exactly the out-of-module
	// (standard library) deps — which carry no apspvet facts. Skip the
	// typecheck; just write the empty facts file cmd/go insists on.
	// Narrow invocations like `go vet ./internal/serve` lose the
	// dependency facts and degrade to the analyzers' intra-package
	// heuristics, which only under-report.
	if cfg.VetxOnly {
		if cfg.VetxOutput != "" {
			if err := NewFactStore().WriteVetx(cfg.VetxOutput, nil); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		return 0
	}

	abs := func(f string) string {
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		return f
	}
	files := make([]string, 0, len(cfg.GoFiles))
	for _, f := range cfg.GoFiles {
		files = append(files, abs(f))
	}
	var otherFiles []string
	for _, f := range cfg.NonGoFiles {
		otherFiles = append(otherFiles, abs(f))
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}

	// Gather dependency facts. A vetx whose recorded export-data hashes
	// no longer match the current build is stale: its summaries were
	// computed against different code, so the facts are dropped (the
	// analyzers then fall back to their intra-package heuristics, which
	// can only under-report — never misreport).
	store := NewFactStore()
	for _, vetxPath := range cfg.PackageVetx {
		dep, err := ReadVetx(vetxPath, cfg.PackageFile)
		if err != nil {
			var stale *ErrStaleVetx
			if errors.As(err, &stale) || os.IsNotExist(err) {
				continue
			}
			fmt.Fprintf(os.Stderr, "apspvet: %v\n", err)
			return 1
		}
		store.Merge(dep)
	}

	pkg, err := CheckFiles(cfg.ImportPath, files, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "apspvet: %v\n", err)
		return 1
	}
	pkg.OtherFiles = otherFiles

	findings, err := RunAnalyzersFacts(pkg, analyzers, store)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apspvet: %v\n", err)
		return 1
	}

	// cmd/go requires the facts file regardless of content and feeds it
	// to every dependent. Record the export hashes of the dependencies
	// whose facts we consumed, so dependents can detect staleness.
	if cfg.VetxOutput != "" {
		hashes := map[string]string{}
		for imp := range cfg.PackageVetx {
			if cfg.Standard[imp] {
				continue
			}
			if exp, ok := cfg.PackageFile[imp]; ok {
				if h, err := hashFile(exp); err == nil {
					hashes[imp] = h
				}
			}
		}
		if err := store.WriteVetx(cfg.VetxOutput, hashes); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}

	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func standalone(args []string, analyzers []*Analyzer) int {
	fs := flag.NewFlagSet("apspvet", flag.ContinueOnError)
	sarifOut := fs.String("sarif", "", "write findings as SARIF 2.1 to `file`")
	baselinePath := fs.String("baseline", "", "baseline `file` for -diff/-writebaseline")
	diff := fs.Bool("diff", false, "report only findings not in the baseline")
	writeBaseline := fs.Bool("writebaseline", false, "write current findings to the baseline and exit 0")
	root := fs.String("root", "", "module root for relativizing paths (default: current directory)")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	if *root == "" {
		if wd, err := os.Getwd(); err == nil {
			*root = wd
		}
	}

	pkgs, err := Load("", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apspvet: %v\n", err)
		return 1
	}
	// go list emits dependencies before dependents, so a single shared
	// store gives each package the facts of everything it imports.
	store := NewFactStore()
	var all []Finding
	for _, pkg := range pkgs {
		findings, err := RunAnalyzersFacts(pkg, analyzers, store)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apspvet: %v\n", err)
			return 1
		}
		all = append(all, findings...)
	}

	if *sarifOut != "" {
		if err := WriteSARIF(*sarifOut, all, analyzers, *root); err != nil {
			fmt.Fprintf(os.Stderr, "apspvet: writing SARIF: %v\n", err)
			return 1
		}
	}
	if *writeBaseline {
		if *baselinePath == "" {
			fmt.Fprintln(os.Stderr, "apspvet: -writebaseline requires -baseline")
			return 1
		}
		if err := NewBaseline(all, *root).Write(*baselinePath); err != nil {
			fmt.Fprintf(os.Stderr, "apspvet: writing baseline: %v\n", err)
			return 1
		}
		fmt.Printf("apspvet: wrote %d finding(s) to %s\n", len(all), *baselinePath)
		return 0
	}

	report := all
	if *diff {
		base, err := ReadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "apspvet: %v\n", err)
			return 1
		}
		report = base.FilterNew(all, *root)
		if n := len(all) - len(report); n > 0 {
			fmt.Printf("apspvet: %d baselined finding(s) suppressed\n", n)
		}
	}
	for _, f := range report {
		fmt.Println(f)
	}
	if len(report) > 0 {
		return 1
	}
	return 0
}
