package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// parseFunc parses src (a file body containing one function named fn)
// and returns the function body plus the fileset.
func parseFunc(t *testing.T, src, fn string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "cfg_test.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			return fset, fd.Body
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil, nil
}

// posOf returns the position of the first occurrence of marker in a
// statement's source line, located by scanning the body for a call to
// the named function.
func callPos(body *ast.BlockStmt, name string) token.Pos {
	var pos token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name && pos == token.NoPos {
				pos = call.Pos()
			}
		}
		return true
	})
	return pos
}

func isCallTo(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == name
	}
}

func TestCFGReachability(t *testing.T) {
	_, body := parseFunc(t, `
func f(c bool) {
	a()
	if c {
		b()
		return
	}
	for i := 0; i < 3; i++ {
		d()
	}
	e()
}
func a() {}
func b() {}
func d() {}
func e() {}
`, "f")
	g := NewCFG(body)
	if g.Entry == nil || g.Exit == nil {
		t.Fatal("CFG missing entry/exit")
	}
	// Every block must be reachable from entry except possibly exit
	// helpers; walk and count.
	seen := map[*Block]bool{}
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, e := range b.Succs {
			walk(e.To)
		}
	}
	walk(g.Entry)
	if !seen[g.Exit] {
		t.Error("exit unreachable from entry")
	}
	// The loop must produce a back edge: some block reachable from
	// itself.
	hasCycle := false
	for b := range seen {
		sub := map[*Block]bool{}
		var w func(x *Block)
		w = func(x *Block) {
			for _, e := range x.Succs {
				if e.To == b {
					hasCycle = true
				}
				if !sub[e.To] {
					sub[e.To] = true
					w(e.To)
				}
			}
		}
		w(b)
	}
	if !hasCycle {
		t.Error("for loop produced no back edge")
	}
}

// MustPrecede core semantics: an event dominates a use only if it is on
// every path from entry.
func TestMustPrecedeBranches(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool // does append() must-precede publish()?
	}{
		{"straight line", `
func f() {
	appendWAL()
	publish()
}`, true},
		{"one branch only", `
func f(c bool) {
	if c {
		appendWAL()
	}
	publish()
}`, false},
		{"both branches", `
func f(c bool) {
	if c {
		appendWAL()
	} else {
		appendWAL()
	}
	publish()
}`, true},
		{"loop body may not run", `
func f(n int) {
	for i := 0; i < n; i++ {
		appendWAL()
	}
	publish()
}`, false},
		{"early return guards the miss", `
func f(c bool) {
	if !c {
		return
	}
	appendWAL()
	publish()
}`, true},
		{"switch with missing case", `
func f(n int) {
	switch n {
	case 0:
		appendWAL()
	case 1:
		appendWAL()
	}
	publish()
}`, false},
		{"switch all cases plus default", `
func f(n int) {
	switch n {
	case 0:
		appendWAL()
	default:
		appendWAL()
	}
	publish()
}`, true},
	}
	decls := "\nfunc appendWAL() {}\nfunc publish() {}\n"
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, body := parseFunc(t, tc.src+decls, "f")
			g := NewCFG(body)
			mp := NewMustPrecede(g, isCallTo("appendWAL"), nil)
			pos := callPos(body, "publish")
			if pos == token.NoPos {
				t.Fatal("publish call not found")
			}
			if got := mp.At(pos); got != tc.want {
				t.Errorf("MustPrecede.At(publish) = %v, want %v", got, tc.want)
			}
		})
	}
}

// The vacuous-edge callback models nil-guard path sensitivity: on the
// branch where the WAL handle is nil there is nothing to append to, so
// that path is exempt rather than a violation.
func TestMustPrecedeVacuousEdge(t *testing.T) {
	src := `
func f(j *int) {
	if j != nil {
		appendWAL()
	}
	publish()
}
func appendWAL() {}
func publish() {}
`
	_, body := parseFunc(t, src, "f")
	g := NewCFG(body)
	pos := callPos(body, "publish")

	// Without the callback the guard is a violation...
	strict := NewMustPrecede(g, isCallTo("appendWAL"), nil)
	if strict.At(pos) {
		t.Fatal("strict analysis should see the nil path as missing the append")
	}
	// ...with it, the j == nil path is vacuous and the publish is safe.
	vac := func(cond ast.Expr, branch bool) bool {
		bin, ok := cond.(*ast.BinaryExpr)
		if !ok {
			return false
		}
		return bin.Op == token.NEQ && !branch // false edge of "j != nil"
	}
	lenient := NewMustPrecede(g, isCallTo("appendWAL"), vac)
	if !lenient.At(pos) {
		t.Error("vacuous edge callback did not exempt the nil-guard path")
	}
}

// MaySet is a may-analysis: a fact generated on any path holds at the
// join, but not before the generating statement.
func TestMaySetUnion(t *testing.T) {
	src := `
func f(c bool) {
	before()
	if c {
		mark()
	}
	use()
}
func before() {}
func mark() {}
func use() {}
`
	_, body := parseFunc(t, src, "f")
	g := NewCFG(body)
	sentinel := testFuncObj("example.com/p", "sentinel")
	ms := NewMaySet(g, func(n ast.Node) []types.Object {
		if isCallTo("mark")(n) {
			return []types.Object{sentinel}
		}
		return nil
	})
	if ms.Has(callPos(body, "before"), sentinel) {
		t.Error("MaySet holds before the generating statement")
	}
	if !ms.Has(callPos(body, "use"), sentinel) {
		t.Error("MaySet lost the fact at the join after a branch-only gen")
	}
}
