package analysis

// Cross-package facts. An analyzer checking package P can attach a
// serializable fact to an exported object (walorder marks functions
// that perform a WAL append); when a dependent package Q is checked
// later, the fact is visible again through Pass.ImportFact. Under the
// unitchecker protocol the facts travel in the per-package vetx files
// cmd/go already threads between vet invocations; the standalone
// loader keeps them in memory (go list emits dependencies before
// dependents, so checking in list order sees every dep's facts).
//
// Staleness: a vetx file written against one build of a dependency must
// not be trusted against another. Each vetx records the sha256 of every
// dependency export file it was produced against; on read, the driver
// recomputes the hashes from the current build's export files and
// rejects the whole vetx on any mismatch. cmd/go's own cache keying
// makes mismatches rare, but "rare" is not "never" across GOFLAGS/
// toolchain changes, and a silently stale fact is a silently wrong
// diagnostic.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/types"
	"io"
	"os"
)

// FactStore holds serialized facts keyed by (analyzer, object).
type FactStore struct {
	facts map[string]json.RawMessage
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: map[string]json.RawMessage{}}
}

// ObjectKey returns the stable cross-package key for an object:
// the fully qualified function name for funcs/methods (including the
// receiver for methods), package path + name otherwise. Stable across
// source-load and export-data views of the same object.
func ObjectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		return fn.FullName()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

func factKey(analyzer string, obj types.Object) string {
	return analyzer + "\x00" + ObjectKey(obj)
}

// ExportFact attaches a fact to obj for dependent packages. value must
// be JSON-serializable. Facts on unexported or local objects are
// stored too — they are visible to later analyzers in the same run —
// but only facts on objects reachable from importers are useful
// across packages.
func (p *Pass) ExportFact(obj types.Object, value any) {
	if p.facts == nil {
		return
	}
	raw, err := json.Marshal(value)
	if err != nil {
		return
	}
	p.facts.facts[factKey(p.Analyzer.Name, obj)] = raw
}

// ImportFact loads the fact attached to obj by this analyzer in an
// earlier package (or earlier in this package) into into, reporting
// whether one existed.
func (p *Pass) ImportFact(obj types.Object, into any) bool {
	if p.facts == nil {
		return false
	}
	raw, ok := p.facts.facts[factKey(p.Analyzer.Name, obj)]
	if !ok {
		return false
	}
	return json.Unmarshal(raw, into) == nil
}

// Merge copies every fact from other into s.
func (s *FactStore) Merge(other *FactStore) {
	for k, v := range other.facts {
		s.facts[k] = v
	}
}

// Len reports the number of stored facts.
func (s *FactStore) Len() int { return len(s.facts) }

// vetxPayload is the on-disk vetx format. Version guards format drift;
// ExportHashes records, per dependency import path, the sha256 of the
// export file this package was checked against.
type vetxPayload struct {
	Version      int                        `json:"version"`
	ExportHashes map[string]string          `json:"export_hashes,omitempty"`
	Facts        map[string]json.RawMessage `json:"facts,omitempty"`
}

const vetxVersion = 1

// WriteVetx serializes the store (plus the export hashes of the
// dependencies it was computed against) to path.
func (s *FactStore) WriteVetx(path string, exportHashes map[string]string) error {
	payload := vetxPayload{Version: vetxVersion, ExportHashes: exportHashes, Facts: s.facts}
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// ErrStaleVetx reports a vetx file recorded against a different build
// of some dependency than the current one.
type ErrStaleVetx struct {
	Path       string
	ImportPath string
}

func (e *ErrStaleVetx) Error() string {
	return fmt.Sprintf("vetx %s is stale: export data for %q changed since it was written", e.Path, e.ImportPath)
}

// ReadVetx loads a dependency's vetx file. exportFiles maps import
// paths to the current build's export files; every dependency hash
// recorded in the vetx is revalidated against them, and a mismatch
// returns *ErrStaleVetx (callers drop the facts — a stale summary is
// worse than none). Empty and legacy (pre-facts) vetx files load as an
// empty store.
func ReadVetx(path string, exportFiles map[string]string) (*FactStore, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	store := NewFactStore()
	if len(data) == 0 {
		return store, nil
	}
	var payload vetxPayload
	if err := json.Unmarshal(data, &payload); err != nil || payload.Version != vetxVersion {
		// Legacy/foreign vetx content: no facts to offer, not an error.
		return store, nil
	}
	for imp, want := range payload.ExportHashes {
		exp, ok := exportFiles[imp]
		if !ok {
			continue // dependency not visible in this compilation; nothing to check against
		}
		got, err := hashFile(exp)
		if err != nil || got != want {
			return nil, &ErrStaleVetx{Path: path, ImportPath: imp}
		}
	}
	if payload.Facts != nil {
		store.facts = payload.Facts
	}
	return store, nil
}

// hashFile returns the hex sha256 of a file's contents.
func hashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}
