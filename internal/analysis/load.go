package analysis

// Standalone package loading for `apspvet ./...` runs outside go vet.
// Packages are enumerated with `go list -deps -export`, which both
// resolves the build list and materializes export data for every
// dependency in the build cache; target packages are then parsed from
// source and type-checked against that export data. This is the same
// division of labor the unitchecker path gets from cmd/vet's config
// files, so the two drivers share the analyzers unchanged.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	SFiles     []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns (relative to dir, ""
// for the current directory) and returns them parsed and type-checked.
// Dependencies are consumed as export data only, so a whole-module run
// parses just the module's own sources.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,SFiles,Standard,DepOnly,Incomplete,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}
	exports := map[string]string{}
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %v: package %s: %s", patterns, p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		// -deps emits the transitive closure; the packages the patterns
		// actually matched are the non-DepOnly ones.
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(t.GoFiles))
		for i, f := range t.GoFiles {
			files[i] = filepath.Join(t.Dir, f)
		}
		pkg, err := CheckFiles(t.ImportPath, files, ExportLookup(exports))
		if err != nil {
			return nil, err
		}
		for _, f := range t.SFiles {
			pkg.OtherFiles = append(pkg.OtherFiles, filepath.Join(t.Dir, f))
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// CheckFiles parses the named files and type-checks them as package
// path, resolving imports through lookup (see ExportLookup).
func CheckFiles(path string, filenames []string, lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	return Check(path, fset, files, lookup)
}

// ExportLookup adapts an importpath->exportfile map to the gc
// importer's lookup signature.
func ExportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// Check type-checks already-parsed files against export data and wraps
// the result as a Package.
func Check(path string, fset *token.FileSet, files []*ast.File, lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	info := NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	return &Package{Fset: fset, Files: files, Types: pkg, Info: info}, nil
}
