package analysis

// SARIF 2.1.0 output and the diff-aware baseline. The emitter produces
// the minimal profile GitHub code scanning ingests: one run, one tool
// driver with a rule per analyzer, one result per finding with a
// physical location. The baseline file (.apspvet-baseline.json) holds
// stable fingerprints of accepted findings; diff-aware mode drops any
// finding whose fingerprint is baselined, so `make apspvet` fails only
// on findings introduced by the change under review.
//
// Fingerprints hash analyzer + module-relative path + message — line
// and column are deliberately excluded so unrelated edits above a
// finding do not churn the baseline.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF 2.1.0 object model (the subset emitted).

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Version        string      `json:"version,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	ShortDescription *sarifMessage     `json:"shortDescription,omitempty"`
	FullDescription  *sarifMessage     `json:"fullDescription,omitempty"`
	Help             *sarifMessage     `json:"help,omitempty"`
	Properties       map[string]string `json:"properties,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	RuleIndex           int               `json:"ruleIndex"`
	Level               string            `json:"level"`
	Message             sarifMessage      `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           *sarifRegion          `json:"region,omitempty"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

const sarifSchemaURI = "https://docs.oasis-open.org/sarif/sarif/v2.1.0/errata01/os/schemas/sarif-schema-2.1.0.json"

// SARIFBytes renders findings as a SARIF 2.1.0 log. root is the module
// root used to relativize file paths (SARIF artifact URIs should be
// repo-relative so code scanning can anchor them); analyzers supplies
// the rule metadata — every analyzer appears as a rule even with zero
// findings, so the rule catalog is stable across runs.
func SARIFBytes(findings []Finding, analyzers []*Analyzer, root string) ([]byte, error) {
	ruleIndex := map[string]int{}
	var rules []sarifRule
	addRule := func(name, doc string) {
		if _, ok := ruleIndex[name]; ok {
			return
		}
		ruleIndex[name] = len(rules)
		r := sarifRule{ID: name}
		if doc != "" {
			short := doc
			if i := strings.IndexAny(doc, ".\n"); i >= 0 {
				short = doc[:i+1]
			}
			r.ShortDescription = &sarifMessage{Text: strings.TrimSpace(short)}
			r.FullDescription = &sarifMessage{Text: doc}
		}
		rules = append(rules, r)
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	// The suppression checker reports under a name with no Analyzer.
	addRule("lintdirective", "Malformed //lint:ignore directives.")

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		if _, ok := ruleIndex[f.Analyzer]; !ok {
			addRule(f.Analyzer, "")
		}
		results = append(results, sarifResult{
			RuleID:    f.Analyzer,
			RuleIndex: ruleIndex[f.Analyzer],
			Level:     "error",
			Message:   sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       relPath(root, f.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: &sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
			PartialFingerprints: map[string]string{
				"apspvet/v1": Fingerprint(f, root),
			},
		})
	}

	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "apspvet",
				InformationURI: "https://example.invalid/apspvet",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

// WriteSARIF writes the SARIF log to path.
func WriteSARIF(path string, findings []Finding, analyzers []*Analyzer, root string) error {
	data, err := SARIFBytes(findings, analyzers, root)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

// relPath relativizes file to root when possible, normalizing to
// forward slashes. Already-relative and out-of-root paths pass through.
func relPath(root, file string) string {
	if root != "" && filepath.IsAbs(file) {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// Fingerprint returns the stable identity of a finding for baselining:
// sha256 over analyzer, repo-relative path, and message, truncated to
// 16 bytes of hex. Line numbers are excluded on purpose.
func Fingerprint(f Finding, root string) string {
	h := sha256.Sum256([]byte(f.Analyzer + "\x00" + relPath(root, f.Pos.Filename) + "\x00" + f.Message))
	return fmt.Sprintf("%x", h[:16])
}

// Baseline is the committed set of accepted findings.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// BaselineEntry records one accepted finding. File and Message are
// informational (for humans diffing the baseline); Fingerprint is what
// matching uses.
type BaselineEntry struct {
	Analyzer    string `json:"analyzer"`
	File        string `json:"file"`
	Message     string `json:"message"`
	Fingerprint string `json:"fingerprint"`
}

// NewBaseline builds a baseline from the current findings.
func NewBaseline(findings []Finding, root string) *Baseline {
	b := &Baseline{Version: 1, Findings: []BaselineEntry{}}
	seen := map[string]bool{}
	for _, f := range findings {
		fp := Fingerprint(f, root)
		if seen[fp] {
			continue
		}
		seen[fp] = true
		b.Findings = append(b.Findings, BaselineEntry{
			Analyzer:    f.Analyzer,
			File:        relPath(root, f.Pos.Filename),
			Message:     f.Message,
			Fingerprint: fp,
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Fingerprint < c.Fingerprint
	})
	return b
}

// WriteBaseline writes the baseline as indented JSON.
func (b *Baseline) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o666)
}

// ReadBaseline loads a baseline file. A missing file is an empty
// baseline, not an error — diff mode against no baseline means every
// finding is new.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &Baseline{Version: 1}, nil
		}
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &b, nil
}

// FilterNew returns the findings whose fingerprints are not in the
// baseline — the diff-aware view.
func (b *Baseline) FilterNew(findings []Finding, root string) []Finding {
	known := map[string]bool{}
	for _, e := range b.Findings {
		known[e.Fingerprint] = true
	}
	var out []Finding
	for _, f := range findings {
		if !known[Fingerprint(f, root)] {
			out = append(out, f)
		}
	}
	return out
}
