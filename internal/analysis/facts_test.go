package analysis

import (
	"errors"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"testing"
)

type appenderFact struct {
	Appends bool `json:"appends"`
}

func testFuncObj(pkgPath, name string) *types.Func {
	pkg := types.NewPackage(pkgPath, filepath.Base(pkgPath))
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	return types.NewFunc(token.NoPos, pkg, name, sig)
}

func TestFactRoundTrip(t *testing.T) {
	store := NewFactStore()
	an := &Analyzer{Name: "walorder"}
	pass := &Pass{Analyzer: an, facts: store}
	fn := testFuncObj("example.com/dep", "Persist")

	pass.ExportFact(fn, appenderFact{Appends: true})
	if store.Len() != 1 {
		t.Fatalf("store.Len() = %d, want 1", store.Len())
	}

	var got appenderFact
	if !pass.ImportFact(fn, &got) || !got.Appends {
		t.Fatalf("ImportFact = %+v, want Appends=true", got)
	}

	// A different analyzer must not see the fact.
	other := &Pass{Analyzer: &Analyzer{Name: "genmono"}, facts: store}
	if other.ImportFact(fn, &got) {
		t.Fatal("fact leaked across analyzer namespaces")
	}
}

// TestVetxStaleness is the satellite-2 regression: a vetx recorded
// against one build of a dependency must be rejected once the
// dependency's export data changes.
func TestVetxStaleness(t *testing.T) {
	dir := t.TempDir()
	depExport := filepath.Join(dir, "dep.a")
	vetxPath := filepath.Join(dir, "pkg.vetx")
	if err := os.WriteFile(depExport, []byte("export data v1"), 0o666); err != nil {
		t.Fatal(err)
	}

	store := NewFactStore()
	pass := &Pass{Analyzer: &Analyzer{Name: "walorder"}, facts: store}
	fn := testFuncObj("example.com/dep", "Persist")
	pass.ExportFact(fn, appenderFact{Appends: true})

	h, err := hashFile(depExport)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteVetx(vetxPath, map[string]string{"example.com/dep": h}); err != nil {
		t.Fatal(err)
	}

	exports := map[string]string{"example.com/dep": depExport}

	// Unchanged dependency: facts load.
	loaded, err := ReadVetx(vetxPath, exports)
	if err != nil {
		t.Fatalf("ReadVetx on fresh vetx: %v", err)
	}
	var got appenderFact
	rp := &Pass{Analyzer: &Analyzer{Name: "walorder"}, facts: loaded}
	if !rp.ImportFact(fn, &got) || !got.Appends {
		t.Fatalf("fresh vetx lost the fact: %+v", got)
	}

	// Rebuilt dependency: the whole vetx is rejected as stale.
	if err := os.WriteFile(depExport, []byte("export data v2"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadVetx(vetxPath, exports); err == nil {
		t.Fatal("ReadVetx accepted a vetx whose dependency export data changed")
	} else {
		var stale *ErrStaleVetx
		if !errors.As(err, &stale) {
			t.Fatalf("ReadVetx error = %v, want *ErrStaleVetx", err)
		}
		if stale.ImportPath != "example.com/dep" {
			t.Fatalf("stale.ImportPath = %q, want example.com/dep", stale.ImportPath)
		}
	}

	// Dependency not visible in the reading compilation: nothing to
	// validate against, facts still load (narrow vet invocations).
	if _, err := ReadVetx(vetxPath, map[string]string{}); err != nil {
		t.Fatalf("ReadVetx with unseen dep: %v", err)
	}
}

func TestVetxEmptyAndLegacy(t *testing.T) {
	dir := t.TempDir()

	empty := filepath.Join(dir, "empty.vetx")
	if err := os.WriteFile(empty, nil, 0o666); err != nil {
		t.Fatal(err)
	}
	store, err := ReadVetx(empty, nil)
	if err != nil || store.Len() != 0 {
		t.Fatalf("empty vetx: store=%v err=%v, want empty store, nil", store, err)
	}

	// Gob/other-format vetx from a different tool: ignored, not fatal.
	legacy := filepath.Join(dir, "legacy.vetx")
	if err := os.WriteFile(legacy, []byte("\x1f\x8bnot json at all"), 0o666); err != nil {
		t.Fatal(err)
	}
	store, err = ReadVetx(legacy, nil)
	if err != nil || store.Len() != 0 {
		t.Fatalf("legacy vetx: store=%v err=%v, want empty store, nil", store, err)
	}

	// Future format version: treated as unreadable, not trusted.
	future := filepath.Join(dir, "future.vetx")
	if err := os.WriteFile(future, []byte(`{"version":99,"facts":{"k":"1"}}`), 0o666); err != nil {
		t.Fatal(err)
	}
	store, err = ReadVetx(future, nil)
	if err != nil || store.Len() != 0 {
		t.Fatalf("future vetx: store=%v err=%v, want empty store, nil", store, err)
	}
}
