package analysis

// Control-flow graph construction over go/ast function bodies. The
// graph is intraprocedural and statement-granular: each basic block
// holds a run of straight-line statements, and edges carry the branch
// condition that selects them (nil for unconditional flow). That is
// precisely the shape the ordering analyses in dataflow.go need — they
// ask "has event E occurred on every path reaching node N", and the
// condition-labeled edges let an analyzer declare some branches
// vacuous (e.g. the durable == nil arm of a nil guard never needs a
// WAL append).
//
// Constructs handled: if/else, for (incl. init/cond/post and infinite
// loops), range, switch (expr and type, incl. fallthrough), select,
// labeled statements, break/continue (labeled and bare), goto, and
// return. Defer and go are treated as ordinary statements — their
// bodies execute off the path being analyzed. Panics and calls to
// runtime-exiting functions are not modeled; that is conservative for
// must-analyses (a panic edge would only remove paths).

import (
	"go/ast"
	"go/token"
)

// CFG is the control-flow graph of one function body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block // every return and normal fall-off-the-end reaches this
}

// Block is a maximal straight-line run of statements.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []Edge
	Preds []*Block
}

// Edge is one control transfer. Cond is the controlling expression for
// conditional transfers and nil otherwise; Branch is the value of Cond
// on this edge (true = the then/taken arm).
type Edge struct {
	To     *Block
	Cond   ast.Expr
	Branch bool
}

type cfgBuilder struct {
	cfg *CFG
	// break/continue targets, innermost last
	breaks    []*Block
	continues []*Block
	// labeled loop targets
	labelBreak    map[string]*Block
	labelContinue map[string]*Block
	// goto resolution: labels seen and gotos pending
	labelBlock map[string]*Block
	gotos      []pendingGoto
	// pendingLabel carries a loop label from LabeledStmt into the next
	// pushLoop/switchBody call so `break L`/`continue L` resolve.
	pendingLabel string
}

type pendingGoto struct {
	from  *Block
	label string
}

// NewCFG builds the control-flow graph of a function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:           &CFG{},
		labelBreak:    map[string]*Block{},
		labelContinue: map[string]*Block{},
		labelBlock:    map[string]*Block{},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	last := b.stmtList(b.cfg.Entry, body.List)
	if last != nil {
		b.edge(last, b.cfg.Exit, nil, false)
	}
	for _, g := range b.gotos {
		if target, ok := b.labelBlock[g.label]; ok {
			b.edge(g.from, target, nil, false)
		} else {
			// Unresolvable goto (label in dead code we dropped):
			// conservatively route to exit.
			b.edge(g.from, b.cfg.Exit, nil, false)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block, cond ast.Expr, branch bool) {
	from.Succs = append(from.Succs, Edge{To: to, Cond: cond, Branch: branch})
	to.Preds = append(to.Preds, from)
}

// stmtList threads the statements through cur, returning the live tail
// block, or nil when control cannot fall off the end (return/branch).
func (b *cfgBuilder) stmtList(cur *Block, list []ast.Stmt) *Block {
	for _, s := range list {
		if cur == nil {
			// Dead code after return/branch: still record labels inside
			// it so gotos resolve, but on a detached block.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s)
	}
	return cur
}

func (b *cfgBuilder) stmt(cur *Block, s ast.Stmt) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB, s.Cond, true)
		after := b.newBlock()
		thenEnd := b.stmtList(thenB, s.Body.List)
		if thenEnd != nil {
			b.edge(thenEnd, after, nil, false)
		}
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB, s.Cond, false)
			elseEnd := b.stmt(elseB, s.Else)
			if elseEnd != nil {
				b.edge(elseEnd, after, nil, false)
			}
		} else {
			b.edge(cur, after, s.Cond, false)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head, nil, false)
		after := b.newBlock()
		bodyB := b.newBlock()
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			b.edge(head, bodyB, s.Cond, true)
			b.edge(head, after, s.Cond, false)
		} else {
			b.edge(head, bodyB, nil, false)
			// No cond: after is reachable only via break.
		}
		post := b.newBlock()
		if s.Post != nil {
			post.Nodes = append(post.Nodes, s.Post)
		}
		b.edge(post, head, nil, false)
		b.pushLoop(after, post, s)
		bodyEnd := b.stmtList(bodyB, s.Body.List)
		b.popLoop()
		if bodyEnd != nil {
			b.edge(bodyEnd, post, nil, false)
		}
		return after

	case *ast.RangeStmt:
		cur.Nodes = append(cur.Nodes, s.X)
		head := b.newBlock()
		b.edge(cur, head, nil, false)
		after := b.newBlock()
		bodyB := b.newBlock()
		// The head both continues into the body and exits; there is no
		// useful condition expression to label the edges with.
		b.edge(head, bodyB, nil, false)
		b.edge(head, after, nil, false)
		if s.Key != nil || s.Value != nil {
			bodyB.Nodes = append(bodyB.Nodes, s)
		}
		b.pushLoop(after, head, s)
		bodyEnd := b.stmtList(bodyB, s.Body.List)
		b.popLoop()
		if bodyEnd != nil {
			b.edge(bodyEnd, head, nil, false)
		}
		return after

	case *ast.SwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.switchBody(cur, s.Body, s)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.switchBody(cur, s.Body, s)

	case *ast.SelectStmt:
		after := b.newBlock()
		b.breaks = append(b.breaks, after)
		hasDefault := false
		for _, cc := range s.Body.List {
			cc := cc.(*ast.CommClause)
			caseB := b.newBlock()
			b.edge(cur, caseB, nil, false)
			if cc.Comm != nil {
				caseB.Nodes = append(caseB.Nodes, cc.Comm)
			} else {
				hasDefault = true
			}
			if end := b.stmtList(caseB, cc.Body); end != nil {
				b.edge(end, after, nil, false)
			}
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		// A select always takes some case (and select{} blocks forever),
		// so `after` is reachable only through the case bodies — no
		// direct head->after edge regardless of hasDefault.
		_ = hasDefault
		return after

	case *ast.LabeledStmt:
		lblBlock := b.newBlock()
		b.edge(cur, lblBlock, nil, false)
		b.labelBlock[s.Label.Name] = lblBlock
		// Register loop label targets before building the loop body so
		// `continue L` / `break L` inside resolve.
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = s.Label.Name
			_ = inner
		}
		return b.stmt(lblBlock, s.Stmt)

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.cfg.Exit, nil, false)
		return nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			target := b.branchTarget(s, b.breaks, b.labelBreak)
			if target != nil {
				b.edge(cur, target, nil, false)
			} else {
				b.edge(cur, b.cfg.Exit, nil, false)
			}
			return nil
		case token.CONTINUE:
			target := b.branchTarget(s, b.continues, b.labelContinue)
			if target != nil {
				b.edge(cur, target, nil, false)
			} else {
				b.edge(cur, b.cfg.Exit, nil, false)
			}
			return nil
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: cur, label: s.Label.Name})
			return nil
		case token.FALLTHROUGH:
			// Handled by switchBody via the fallthrough edge; mark the
			// statement so the clause end links to the next clause.
			cur.Nodes = append(cur.Nodes, s)
			return cur
		}
		return cur

	default:
		// Straight-line statement (assign, expr, decl, defer, go, send,
		// inc/dec, empty). Recorded in order for the ordering analyses.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

func (b *cfgBuilder) pushLoop(brk, cont *Block, _ ast.Stmt) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
	if b.pendingLabel != "" {
		b.labelBreak[b.pendingLabel] = brk
		b.labelContinue[b.pendingLabel] = cont
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *cfgBuilder) branchTarget(s *ast.BranchStmt, stack []*Block, labeled map[string]*Block) *Block {
	if s.Label != nil {
		return labeled[s.Label.Name]
	}
	if len(stack) == 0 {
		return nil
	}
	return stack[len(stack)-1]
}

// switchBody builds the clause structure shared by expression and type
// switches. Each case clause gets an edge from the head; a missing
// default adds a direct head->after edge. Fallthrough chains a clause
// body into the next clause's body.
func (b *cfgBuilder) switchBody(head *Block, body *ast.BlockStmt, _ ast.Stmt) *Block {
	after := b.newBlock()
	b.breaks = append(b.breaks, after)
	if b.pendingLabel != "" {
		b.labelBreak[b.pendingLabel] = after
		b.pendingLabel = ""
	}
	hasDefault := false
	clauseBlocks := make([]*Block, len(body.List))
	for i := range body.List {
		clauseBlocks[i] = b.newBlock()
	}
	for i, cc := range body.List {
		cc := cc.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		caseB := clauseBlocks[i]
		b.edge(head, caseB, nil, false)
		for _, e := range cc.List {
			caseB.Nodes = append(caseB.Nodes, e)
		}
		end := b.stmtList(caseB, cc.Body)
		if end != nil {
			if fellThrough(cc.Body) && i+1 < len(clauseBlocks) {
				b.edge(end, clauseBlocks[i+1], nil, false)
			} else {
				b.edge(end, after, nil, false)
			}
		}
	}
	if !hasDefault {
		b.edge(head, after, nil, false)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	return after
}

func fellThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}
