// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis driver surface, built on the
// standard library's go/ast and go/types. The container this repo is
// grown in has no module proxy access, so the usual x/tools framework
// cannot be fetched; the subset implemented here — Analyzer, Pass,
// per-package running with //lint:ignore suppression, a go-list-based
// standalone loader (load.go), and the `go vet -vettool` unitchecker
// protocol (unitchecker.go) — is exactly what the apspvet suite in
// internal/analyzers needs. Analyzer Run functions are written against
// the same shapes as their x/tools counterparts, so they port to the
// real framework mechanically if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant enforced and why
	// it is load-bearing for this repo.
	Doc string
	// Run applies the analyzer to one type-checked package, reporting
	// findings through pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding against the current package.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Most apspvet
// analyzers enforce production invariants and skip test code (tests
// deliberately compare floats bitwise, spawn helper goroutines, etc.).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Finding is a resolved diagnostic: analyzer name plus file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// NewTypesInfo returns a types.Info with every map the analyzers rely
// on populated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// RunAnalyzers applies each analyzer to pkg, resolves positions, drops
// findings suppressed by //lint:ignore directives, and returns the
// survivors sorted by position. Malformed directives are themselves
// reported under the pseudo-analyzer name "lintdirective".
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	sup, bad := collectSuppressions(pkg)
	var out []Finding
	out = append(out, bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if sup.suppressed(name, pos) {
				return
			}
			out = append(out, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Types.Path(), err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// suppressions maps file -> line -> set of analyzer names ignored on
// that line. A directive suppresses findings on its own line and on the
// line immediately below, so both trailing and standalone placements
// work:
//
//	foo()            //lint:ignore nakedgo reason
//	//lint:ignore nakedgo reason
//	foo()
type suppressions map[string]map[int]map[string]bool

func (s suppressions) suppressed(analyzer string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if names := lines[line]; names != nil && (names[analyzer] || names["*"]) {
			return true
		}
	}
	return false
}

// collectSuppressions scans every comment for //lint:ignore directives.
// The format is staticcheck's:
//
//	//lint:ignore name1,name2 reason text
//
// A directive with no analyzer list or no reason is reported as a
// finding instead of silently ignored — an undocumented suppression is
// exactly the convention-rot this suite exists to prevent.
func collectSuppressions(pkg *Package) (suppressions, []Finding) {
	sup := suppressions{}
	var bad []Finding
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  "malformed //lint:ignore: want \"//lint:ignore analyzer[,analyzer] reason\"",
					})
					continue
				}
				lines := sup[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					sup[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = map[string]bool{}
					lines[pos.Line] = names
				}
				for _, n := range strings.Split(fields[0], ",") {
					names[n] = true
				}
			}
		}
	}
	return sup, bad
}
