// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis driver surface, built on the
// standard library's go/ast and go/types. The container this repo is
// grown in has no module proxy access, so the usual x/tools framework
// cannot be fetched; the subset implemented here — Analyzer, Pass,
// per-package running with //lint:ignore suppression, a go-list-based
// standalone loader (load.go), the `go vet -vettool` unitchecker
// protocol (unitchecker.go), per-function CFGs with ordering dataflow
// (cfg.go, dataflow.go), cross-package facts over vetx files
// (facts.go), and SARIF 2.1 output with a diff-aware baseline
// (sarif.go) — is exactly what the apspvet suite in internal/analyzers
// needs. Analyzer Run functions are written against the same shapes as
// their x/tools counterparts, so they port to the real framework
// mechanically if the dependency ever becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: the invariant enforced and why
	// it is load-bearing for this repo.
	Doc string
	// Run applies the analyzer to one type-checked package, reporting
	// findings through pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// OtherFiles are the package's non-Go source files (assembly, etc.),
	// as absolute paths. The asmabi analyzer cross-checks TEXT headers in
	// these against the Go declarations in Files.
	OtherFiles []string
	Pkg        *types.Package
	TypesInfo  *types.Info

	report func(Diagnostic)
	facts  *FactStore
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding against the current package.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos lies in a _test.go file. Most apspvet
// analyzers enforce production invariants and skip test code (tests
// deliberately compare floats bitwise, spawn helper goroutines, etc.).
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	// OtherFiles are non-Go source files (assembly) belonging to the
	// package's build, as absolute paths.
	OtherFiles []string
	Types      *types.Package
	Info       *types.Info
}

// Finding is a resolved diagnostic: analyzer name plus file position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// NewTypesInfo returns a types.Info with every map the analyzers rely
// on populated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// RunAnalyzers applies each analyzer to pkg with an empty fact store —
// the single-package entry point used by analysistest and one-off runs.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunAnalyzersFacts(pkg, analyzers, NewFactStore())
}

// RunAnalyzersFacts applies each analyzer to pkg, resolves positions,
// drops findings suppressed by //lint:ignore directives, and returns
// the survivors sorted by position. Facts imported from store are
// visible through Pass.ImportFact; facts the analyzers export land in
// store for dependent packages. Malformed directives are themselves
// reported under the pseudo-analyzer name "lintdirective".
func RunAnalyzersFacts(pkg *Package, analyzers []*Analyzer, store *FactStore) ([]Finding, error) {
	sup, bad := collectSuppressions(pkg)
	var out []Finding
	out = append(out, bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			OtherFiles: pkg.OtherFiles,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			facts:      store,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if sup.suppressed(name, d.Pos, pos) {
				return
			}
			out = append(out, Finding{Analyzer: name, Pos: pos, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Types.Path(), err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// suppression is one resolved //lint:ignore directive. When the
// directive could be attached to a statement (or declaration), start/end
// bound exactly that node's source range and only findings inside it are
// suppressed — a directive on one statement never silences a sibling
// statement that merely shares its line. When no node could be resolved
// (directives in non-statement positions), the pre-scoping line rule
// applies: the directive's own line and the line below.
type suppression struct {
	names      map[string]bool
	start, end token.Pos // statement scope; invalid => line fallback
	line       int       // directive line (fallback matching)
}

// suppressions maps file -> directives in that file.
type suppressions map[string][]suppression

func (s suppressions) suppressed(analyzer string, pos token.Pos, position token.Position) bool {
	for _, sup := range s[position.Filename] {
		if !sup.names[analyzer] && !sup.names["*"] {
			continue
		}
		if sup.start.IsValid() {
			if pos >= sup.start && pos < sup.end {
				return true
			}
			continue
		}
		if position.Line == sup.line || position.Line == sup.line+1 {
			return true
		}
	}
	return false
}

// collectSuppressions scans every comment for //lint:ignore directives.
// The format is staticcheck's:
//
//	//lint:ignore name1,name2 reason text
//
// A directive with no analyzer list or no reason is reported as a
// finding instead of silently ignored — an undocumented suppression is
// exactly the convention-rot this suite exists to prevent.
//
// Scoping: a trailing directive suppresses only the statement it
// trails (the last statement starting on its line and ending before
// it); a standalone directive suppresses only the next statement —
// including every line of a multi-line statement, but never a sibling
// statement that happens to share a line.
func collectSuppressions(pkg *Package) (suppressions, []Finding) {
	sup := suppressions{}
	var bad []Finding
	for _, f := range pkg.Files {
		nodes := scopeNodes(f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) < 2 {
					bad = append(bad, Finding{
						Analyzer: "lintdirective",
						Pos:      pos,
						Message:  "malformed //lint:ignore: want \"//lint:ignore analyzer[,analyzer] reason\"",
					})
					continue
				}
				names := map[string]bool{}
				for _, n := range strings.Split(fields[0], ",") {
					names[n] = true
				}
				entry := suppression{names: names, line: pos.Line}
				if n := resolveScope(pkg.Fset, nodes, c); n != nil {
					entry.start, entry.end = n.Pos(), n.End()
				}
				sup[pos.Filename] = append(sup[pos.Filename], entry)
			}
		}
	}
	return sup, bad
}

// scopeNodes gathers the nodes a directive can attach to: statements
// (including case/comm clauses) and top-level declarations.
func scopeNodes(f *ast.File) []ast.Node {
	var nodes []ast.Node
	for _, d := range f.Decls {
		nodes = append(nodes, d)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if _, ok := n.(ast.Stmt); ok {
			nodes = append(nodes, n)
		}
		return true
	})
	return nodes
}

// resolveScope attaches a directive to its statement. A trailing
// directive (code before it on its own line) scopes to the last node
// that starts on the directive's line and ends at or before the
// directive; a standalone directive scopes to the first node starting
// after it — among nodes starting at the same position, the outermost.
func resolveScope(fset *token.FileSet, nodes []ast.Node, c *ast.Comment) ast.Node {
	cline := fset.Position(c.Pos()).Line
	var trailing ast.Node
	for _, n := range nodes {
		if fset.Position(n.Pos()).Line == cline && n.End() <= c.Pos() {
			if trailing == nil || n.Pos() > trailing.Pos() ||
				(n.Pos() == trailing.Pos() && n.End() < trailing.End()) {
				trailing = n
			}
		}
	}
	if trailing != nil {
		return trailing
	}
	var next ast.Node
	for _, n := range nodes {
		if n.Pos() <= c.End() {
			continue
		}
		if next == nil || n.Pos() < next.Pos() ||
			(n.Pos() == next.Pos() && n.End() > next.End()) {
			next = n
		}
	}
	// Only attach when the node begins on the directly following line:
	// a directive separated from the code by blank lines keeps the
	// conservative line-based scope (which then matches nothing).
	if next != nil && fset.Position(next.Pos()).Line == cline+1 {
		return next
	}
	return nil
}
