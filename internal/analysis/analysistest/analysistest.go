// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest:
//
//	x := 1.0 == y // want `float equality`
//
// Each `// want` carries one or more quoted regular expressions; every
// expectation must be matched by exactly one diagnostic on that line
// and vice versa. Fixtures import only the standard library, which is
// type-checked from GOROOT source, so the runner needs no network and
// no pre-built export data.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run applies a to each fixture package (a path under testdata/src,
// e.g. "nakedgo" or "nakedgo/internal/par") and reports mismatches
// between diagnostics and // want expectations on t.
func Run(t *testing.T, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fixture := range fixtures {
		runOne(t, a, fixture)
	}
}

func runOne(t *testing.T, a *analysis.Analyzer, fixture string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(fixture))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", fixture, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var otherFiles []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if strings.HasSuffix(e.Name(), ".s") {
			// Assembly files ride along as Pass.OtherFiles (asmabi reads
			// them) and may carry // want expectations of their own.
			otherFiles = append(otherFiles, filepath.Join(dir, e.Name()))
			continue
		}
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", fixture, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("%s: no Go files in %s", fixture, dir)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(fixture, fset, files, info)
	if err != nil {
		t.Fatalf("%s: type-checking fixture: %v", fixture, err)
	}
	pkg := &analysis.Package{Fset: fset, Files: files, OtherFiles: otherFiles, Types: tpkg, Info: info}
	findings, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("%s: %v", fixture, err)
	}

	type key struct {
		file string
		line int
	}
	wants := map[key][]*regexp.Regexp{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, perr := parseWant(c.Text[idx+len("// want "):])
				if perr != "" {
					t.Errorf("%s:%d: %s", pos.Filename, pos.Line, perr)
					continue
				}
				k := key{pos.Filename, pos.Line}
				wants[k] = append(wants[k], patterns...)
			}
		}
	}
	// Assembly files cannot go through the Go comment map; scan their
	// lines directly so asmabi fixtures can state expectations in place.
	for _, name := range otherFiles {
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatalf("%s: %v", fixture, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			patterns, perr := parseWant(line[idx+len("// want "):])
			if perr != "" {
				t.Errorf("%s:%d: %s", name, i+1, perr)
				continue
			}
			k := key{name, i + 1}
			wants[k] = append(wants[k], patterns...)
		}
	}
	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		matched := false
		for i, rx := range wants[k] {
			if rx != nil && rx.MatchString(f.Message) {
				wants[k][i] = nil
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", fixture, f)
		}
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, rx := range wants[k] {
			if rx != nil {
				t.Errorf("%s: %s:%d: no diagnostic matching %q", fixture, k.file, k.line, rx)
			}
		}
	}
}

// parseWant extracts the quoted regexps from the text after "// want".
// Both `backquoted` and "double-quoted" forms are accepted.
func parseWant(s string) ([]*regexp.Regexp, string) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, "unterminated ` in // want"
			}
			lit = s[1 : 1+end]
			s = s[end+2:]
		case '"':
			rest := s[1:]
			var b strings.Builder
			for {
				i := strings.IndexAny(rest, `"\`)
				if i < 0 {
					return nil, `unterminated " in // want`
				}
				if rest[i] == '\\' {
					if i+1 >= len(rest) {
						return nil, `bad escape in // want`
					}
					q, err := strconv.Unquote(`"` + rest[:i+2] + `"`)
					if err != nil {
						return nil, "bad escape in // want: " + err.Error()
					}
					b.WriteString(q)
					rest = rest[i+2:]
					continue
				}
				b.WriteString(rest[:i])
				rest = rest[i+1:]
				break
			}
			lit = b.String()
			s = rest
		default:
			return nil, "// want expects quoted regexps, got " + strconv.Quote(s)
		}
		rx, err := regexp.Compile(lit)
		if err != nil {
			return nil, "bad regexp in // want: " + err.Error()
		}
		out = append(out, rx)
		s = strings.TrimSpace(s)
	}
	if len(out) == 0 {
		return nil, "// want with no expectations"
	}
	return out, ""
}
