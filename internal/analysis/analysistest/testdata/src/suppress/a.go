package suppress

func bad() int { return 0 }

// Trailing directive: suppresses only the statement it trails. Under
// the old line-based rule the directive's line AND the next line were
// silenced, so y's finding below would have been lost.
func nextLineLeak() {
	x := bad() //lint:ignore marker sanctioned in-place call
	y := bad() // want `call to bad`
	_, _ = x, y
}

// Standalone directive: suppresses exactly the next statement.
func standalone() {
	//lint:ignore marker only the first call is sanctioned
	x := bad()
	y := bad() // want `call to bad`
	_, _ = x, y
}

// A multi-line statement is covered in full — the old rule only
// reached one line past the directive.
func multiline() {
	//lint:ignore marker the whole chained expression is sanctioned
	_ = bad() +
		bad() +
		bad()
}

// A directive inside a nested block stays inside it: the sibling
// statement after the block still reports.
func insideBlock(cond bool) {
	if cond {
		//lint:ignore marker sanctioned inner call
		_ = bad()
	}
	_ = bad() // want `call to bad`
}

// A directive separated from the code by a blank line attaches to
// nothing and suppresses nothing.
func detached() {
	//lint:ignore marker dangling directive, no adjacent statement

	_ = bad() // want `call to bad`
}
