package analysistest

import (
	"go/ast"
	"testing"

	"repro/internal/analysis"
)

// marker flags every call to a function named bad — a minimal analyzer
// for exercising //lint:ignore scoping through the fixture harness.
var marker = &analysis.Analyzer{
	Name: "marker",
	Doc:  "flags calls to bad (suppression-scoping test analyzer)",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
					pass.Reportf(call.Pos(), "call to bad")
				}
				return true
			})
		}
		return nil
	},
}

// TestSuppressionScoping is the regression suite for statement-scoped
// //lint:ignore: a directive on one statement must not silence sibling
// findings that merely share its line range (the pre-scoping rule
// suppressed the directive's line plus the next line wholesale).
func TestSuppressionScoping(t *testing.T) {
	Run(t, marker, "suppress")
}
