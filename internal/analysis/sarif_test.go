package analysis

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

func sampleFindings(root string) []Finding {
	return []Finding{
		{
			Analyzer: "walorder",
			Pos:      token.Position{Filename: filepath.Join(root, "internal/serve/serve.go"), Line: 42, Column: 3},
			Message:  "state publish s.eng.Store without a preceding WAL append on some path",
		},
		{
			Analyzer: "asmabi",
			Pos:      token.Position{Filename: filepath.Join(root, "internal/semiring/gemm_amd64.s"), Line: 7, Column: 1},
			Message:  "TEXT ·minPlusKernel(SB): wrong argument size 16; Go declaration needs 24",
		},
	}
}

// TestSARIFStructure validates the emitted log against the SARIF 2.1.0
// shape GitHub code scanning requires: schema pointer, version, a tool
// driver with a rule catalog, and results whose ruleIndex values
// resolve into that catalog with repo-relative artifact URIs.
func TestSARIFStructure(t *testing.T) {
	root := t.TempDir()
	analyzers := []*Analyzer{
		{Name: "walorder", Doc: "WAL append must reach program order before publish"},
		{Name: "asmabi", Doc: "assembly headers must match Go declarations"},
	}
	data, err := SARIFBytes(sampleFindings(root), analyzers, root)
	if err != nil {
		t.Fatal(err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription *struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("emitted SARIF is not valid JSON: %v", err)
	}

	if !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("$schema = %q, want a 2.1.0 schema URI", log.Schema)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("len(runs) = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name == "" {
		t.Error("tool.driver.name is empty")
	}
	// One rule per analyzer plus the synthetic lintdirective rule for
	// malformed //lint:ignore findings.
	if len(run.Tool.Driver.Rules) != len(analyzers)+1 {
		t.Fatalf("rule catalog has %d rules, want %d (one per analyzer + lintdirective)", len(run.Tool.Driver.Rules), len(analyzers)+1)
	}
	for _, r := range run.Tool.Driver.Rules {
		if r.ID == "" || r.ShortDescription == nil || r.ShortDescription.Text == "" {
			t.Errorf("rule %+v missing id or shortDescription.text", r)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("len(results) = %d, want 2", len(run.Results))
	}
	for _, res := range run.Results {
		if res.RuleIndex < 0 || res.RuleIndex >= len(run.Tool.Driver.Rules) {
			t.Errorf("result ruleIndex %d out of rule catalog range", res.RuleIndex)
		} else if run.Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
			t.Errorf("ruleIndex %d resolves to %q, result says %q",
				res.RuleIndex, run.Tool.Driver.Rules[res.RuleIndex].ID, res.RuleID)
		}
		if res.Level == "" || res.Message.Text == "" {
			t.Errorf("result %+v missing level or message.text", res)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result has %d locations, want 1", len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		uri := loc.ArtifactLocation.URI
		if filepath.IsAbs(uri) || strings.Contains(uri, "\\") || strings.HasPrefix(uri, "..") {
			t.Errorf("artifact URI %q is not repo-relative with forward slashes", uri)
		}
		if loc.Region.StartLine < 1 {
			t.Errorf("region.startLine = %d, want >= 1", loc.Region.StartLine)
		}
		if res.PartialFingerprints["apspvet/v1"] == "" {
			t.Errorf("result missing apspvet/v1 partial fingerprint")
		}
	}
}

// Fingerprints must survive edits that shift line numbers — otherwise
// every refactor churns the baseline — but must distinguish analyzer,
// file, and message.
func TestFingerprintStability(t *testing.T) {
	root := "/repo"
	base := Finding{
		Analyzer: "walorder",
		Pos:      token.Position{Filename: "/repo/internal/serve/serve.go", Line: 42, Column: 3},
		Message:  "state publish without append",
	}
	moved := base
	moved.Pos.Line = 99
	moved.Pos.Column = 7
	if Fingerprint(base, root) != Fingerprint(moved, root) {
		t.Error("fingerprint changed when only line/column moved")
	}
	for _, mutate := range []func(*Finding){
		func(f *Finding) { f.Analyzer = "genmono" },
		func(f *Finding) { f.Pos.Filename = "/repo/internal/serve/update.go" },
		func(f *Finding) { f.Message = "different message" },
	} {
		other := base
		mutate(&other)
		if Fingerprint(base, root) == Fingerprint(other, root) {
			t.Errorf("fingerprint collision after mutation: %+v vs %+v", base, other)
		}
	}
}

func TestBaselineRoundTripAndFilter(t *testing.T) {
	root := t.TempDir()
	findings := sampleFindings(root)
	path := filepath.Join(root, ".apspvet-baseline.json")

	if err := NewBaseline(findings, root).Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// Everything baselined is filtered out, even after a line shift.
	shifted := make([]Finding, len(findings))
	copy(shifted, findings)
	shifted[0].Pos.Line += 120
	if extra := loaded.FilterNew(shifted, root); len(extra) != 0 {
		t.Fatalf("FilterNew on baselined findings = %v, want none", extra)
	}

	// A genuinely new finding survives the filter.
	fresh := append(shifted, Finding{
		Analyzer: "snapfreeze",
		Pos:      token.Position{Filename: filepath.Join(root, "internal/core/liveupdate.go"), Line: 10, Column: 1},
		Message:  "mutator call injectMin on f after the factor was published",
	})
	extra := loaded.FilterNew(fresh, root)
	if len(extra) != 1 || extra[0].Analyzer != "snapfreeze" {
		t.Fatalf("FilterNew = %v, want exactly the snapfreeze finding", extra)
	}

	// Missing baseline file = empty baseline, nothing suppressed.
	none, err := ReadBaseline(filepath.Join(root, "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if extra := none.FilterNew(findings, root); len(extra) != len(findings) {
		t.Fatalf("empty baseline suppressed findings: %v", extra)
	}
}
