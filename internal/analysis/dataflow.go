package analysis

// Dataflow analyses over the CFGs built by cfg.go. Three engines cover
// the apspvet suite:
//
//   - MustPrecede: forward must-analysis answering "has event E
//     occurred on every path from entry to this point", with optional
//     path sensitivity via vacuous edges (walorder, genmono).
//   - MaySet: forward may-analysis tracking a growing set of
//     types.Objects (snapfreeze's published-snapshot set).
//   - ReachingDefs: classic reaching definitions for idents, used for
//     lightweight alias reasoning.
//
// Plus CallGraph, the intra-package call graph that lets walorder see
// through one level of helper extraction (updateApply -> swapPatched).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MustPrecede reports, for any position in the analyzed body, whether
// an event node must have executed on every path from function entry.
//
// isEvent classifies CFG nodes (statements/expressions recorded by the
// builder) as events. vacuous, when non-nil, inspects condition-labeled
// edges: returning true means the requirement is discharged on that
// edge even without an event (e.g. the branch where a nil journal
// proves there is nothing to append). Nodes are visited in intra-block
// order, so an event earlier in a block covers later nodes of the same
// block.
type MustPrecede struct {
	cfg     *CFG
	isEvent func(ast.Node) bool
	in      map[*Block]bool
	nodePos map[*Block][]nodeState
}

type nodeState struct {
	pos, end token.Pos
	before   bool // event must-occurred just before this node executes
}

// NewMustPrecede runs the fixpoint and returns the queryable result.
func NewMustPrecede(cfg *CFG, isEvent func(ast.Node) bool, vacuous func(cond ast.Expr, branch bool) bool) *MustPrecede {
	m := &MustPrecede{cfg: cfg, isEvent: isEvent, in: map[*Block]bool{}, nodePos: map[*Block][]nodeState{}}

	// out(b) under a given in-value.
	blockOut := func(b *Block, in bool) bool {
		st := in
		for _, n := range b.Nodes {
			if m.eventIn(n) {
				st = true
			}
		}
		return st
	}

	// Must-analysis: start optimistic (everything true except entry) and
	// iterate downwards to the greatest fixpoint.
	for _, b := range cfg.Blocks {
		m.in[b] = b != cfg.Entry
	}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			if b == cfg.Entry {
				continue
			}
			if len(b.Preds) == 0 {
				// Unreachable (dead code after return): keep optimistic —
				// no real path exists, so no finding should anchor there.
				continue
			}
			val := true
			for _, p := range b.Preds {
				for _, e := range p.Succs {
					if e.To != b {
						continue
					}
					edgeVal := blockOut(p, m.in[p])
					if !edgeVal && vacuous != nil && e.Cond != nil && vacuous(e.Cond, e.Branch) {
						edgeVal = true
					}
					if !edgeVal {
						val = false
					}
				}
			}
			if val != m.in[b] {
				m.in[b] = val
				changed = true
			}
		}
	}

	// Precompute per-node states for position queries.
	for _, b := range cfg.Blocks {
		st := m.in[b]
		states := make([]nodeState, 0, len(b.Nodes))
		for _, n := range b.Nodes {
			states = append(states, nodeState{pos: n.Pos(), end: n.End(), before: st})
			if m.eventIn(n) {
				st = true
			}
		}
		m.nodePos[b] = states
	}
	return m
}

// eventIn reports whether node n or any of its children is an event.
func (m *MustPrecede) eventIn(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found || c == nil {
			return false
		}
		if m.isEvent(c) {
			found = true
			return false
		}
		return true
	})
	return found
}

// At reports whether the event must have occurred before the CFG node
// containing pos begins executing. Unknown positions (not recorded in
// any block) return true — absence of evidence is not a finding.
func (m *MustPrecede) At(pos token.Pos) bool {
	for _, states := range m.nodePos {
		for _, s := range states {
			if pos >= s.pos && pos < s.end {
				return s.before
			}
		}
	}
	return true
}

// MaySet is a forward may-analysis over sets of types.Objects: gen adds
// objects at a node, and membership accumulates along all paths (union
// at joins). Used by snapfreeze to track which locals have been
// published into a snapshot.
type MaySet struct {
	cfg  *CFG
	gen  func(ast.Node) []types.Object
	in   map[*Block]map[types.Object]bool
	node map[*Block][]maySetState
}

type maySetState struct {
	pos, end token.Pos
	before   map[types.Object]bool
}

// NewMaySet runs the union fixpoint.
func NewMaySet(cfg *CFG, gen func(ast.Node) []types.Object) *MaySet {
	m := &MaySet{cfg: cfg, gen: gen, in: map[*Block]map[types.Object]bool{}, node: map[*Block][]maySetState{}}
	for _, b := range cfg.Blocks {
		m.in[b] = map[types.Object]bool{}
	}
	blockOut := func(b *Block) map[types.Object]bool {
		out := map[types.Object]bool{}
		for o := range m.in[b] {
			out[o] = true
		}
		for _, n := range b.Nodes {
			for _, o := range m.genIn(n) {
				out[o] = true
			}
		}
		return out
	}
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.Blocks {
			for _, p := range b.Preds {
				for o := range blockOut(p) {
					if !m.in[b][o] {
						m.in[b][o] = true
						changed = true
					}
				}
			}
		}
	}
	for _, b := range cfg.Blocks {
		cur := map[types.Object]bool{}
		for o := range m.in[b] {
			cur[o] = true
		}
		states := make([]maySetState, 0, len(b.Nodes))
		for _, n := range b.Nodes {
			snap := map[types.Object]bool{}
			for o := range cur {
				snap[o] = true
			}
			states = append(states, maySetState{pos: n.Pos(), end: n.End(), before: snap})
			for _, o := range m.genIn(n) {
				cur[o] = true
			}
		}
		m.node[b] = states
	}
	return m
}

func (m *MaySet) genIn(n ast.Node) []types.Object {
	var out []types.Object
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		out = append(out, m.gen(c)...)
		return true
	})
	return out
}

// Has reports whether obj may be in the set just before the node
// containing pos executes.
func (m *MaySet) Has(pos token.Pos, obj types.Object) bool {
	for _, states := range m.node {
		for _, s := range states {
			if pos >= s.pos && pos < s.end {
				return s.before[obj]
			}
		}
	}
	return false
}

// ReachingDefs computes, per variable, the set of assignment nodes that
// may reach each program point. The definition sites recorded are the
// AssignStmt/ValueSpec/IncDecStmt nodes themselves.
type ReachingDefs struct {
	info *types.Info
	// Defs maps each object to all its definition nodes in the body —
	// the flow-insensitive projection, sufficient for the alias-class
	// reasoning snapfreeze does.
	Defs map[types.Object][]ast.Node
}

// NewReachingDefs scans body for definitions of idents resolved through
// info. (The per-point IN sets collapse to Defs for the current
// analyzers; keeping the name leaves room to make it flow-sensitive.)
func NewReachingDefs(body *ast.BlockStmt, info *types.Info) *ReachingDefs {
	r := &ReachingDefs{info: info, Defs: map[types.Object][]ast.Node{}}
	record := func(id *ast.Ident, n ast.Node) {
		var obj types.Object
		if o, ok := info.Defs[id]; ok && o != nil {
			obj = o
		} else if o, ok := info.Uses[id]; ok {
			obj = o
		}
		if obj != nil {
			r.Defs[obj] = append(r.Defs[obj], n)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					record(id, n)
				}
			}
		case *ast.ValueSpec:
			for _, id := range n.Names {
				record(id, n)
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok {
				record(id, n)
			}
		}
		return true
	})
	return r
}

// AliasClasses partitions the body's local variables into classes
// connected by direct ident-to-ident assignments (a := b, a = b). The
// partition is flow-insensitive: if two names are ever aliased in the
// function, they share a class. Callers use it to extend a property of
// one name (e.g. "published") to its aliases.
func AliasClasses(body *ast.BlockStmt, info *types.Info) map[types.Object]types.Object {
	parent := map[types.Object]types.Object{}
	var find func(o types.Object) types.Object
	find = func(o types.Object) types.Object {
		p, ok := parent[o]
		if !ok || p == o {
			parent[o] = o
			return o
		}
		root := find(p)
		parent[o] = root
		return root
	}
	union := func(a, b types.Object) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	obj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if o := info.Defs[id]; o != nil {
			return o
		}
		return info.Uses[id]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			l, r := obj(as.Lhs[i]), obj(as.Rhs[i])
			if l != nil && r != nil {
				union(l, r)
			}
		}
		return true
	})
	// Flatten so lookups are single-step.
	out := map[types.Object]types.Object{}
	for o := range parent {
		out[o] = find(o)
	}
	return out
}

// CallGraph is the intra-package call graph: which package-local
// functions/methods each declared function calls, directly.
type CallGraph struct {
	// Callees maps each declared function to its package-local callees.
	Callees map[*types.Func]map[*types.Func]bool
	// Decl maps function objects to their declarations.
	Decl map[*types.Func]*ast.FuncDecl
}

// NewCallGraph builds the graph for the pass's package.
func NewCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		Callees: map[*types.Func]map[*types.Func]bool{},
		Decl:    map[*types.Func]*ast.FuncDecl{},
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Decl[fn] = fd
			callees := map[*types.Func]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := CalleeFunc(pass.TypesInfo, call); callee != nil && callee.Pkg() == pass.Pkg {
					callees[callee] = true
				}
				return true
			})
			g.Callees[fn] = callees
		}
	}
	return g
}

// Reaches reports whether from transitively calls (through
// package-local functions only) some function satisfying pred.
func (g *CallGraph) Reaches(from *types.Func, pred func(*types.Func) bool) bool {
	seen := map[*types.Func]bool{}
	var walk func(fn *types.Func) bool
	walk = func(fn *types.Func) bool {
		if seen[fn] {
			return false
		}
		seen[fn] = true
		for callee := range g.Callees[fn] {
			if pred(callee) || walk(callee) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// CalleeFunc resolves the *types.Func a call expression invokes, or nil
// for calls through function values, built-ins, and conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
