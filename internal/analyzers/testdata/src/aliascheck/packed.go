package a

// Negative-case coverage for the fused *MulAddPacked family with
// aliased PackedPanel sources. The packed operand is a snapshot taken
// by PackPanel: once packed, later writes to the source matrix cannot
// reach the panel, so C aliasing the panel's SOURCE is legal and must
// NOT be flagged — the analyzer only sees the C-vs-A argument pair, and
// the PackPanel contract (semiring/pack.go) owns source aliasing.

func PackPanel(B Mat) *PackedPanel { return &PackedPanel{} }

func MaxMinMulAddPacked(C, A Mat, P *PackedPanel)                {}
func MaxMinMulAddPathsPacked(C, A Mat, P *PackedPanel, n, m int) {}
func MulAddPacked(C, A Mat, P *PackedPanel)                      {}
func MulAddPathsPacked(C, A Mat, P *PackedPanel, n, m int)       {}

func packedUpdate(diag, up, down Mat) {
	// Panel packed FROM C: the snapshot decouples them. Clean by design.
	pc := PackPanel(down)
	MulAddPacked(down, up, pc)
	MaxMinMulAddPacked(down, up, pc)
	MulAddPathsPacked(down, up, pc, 0, 0)

	// Panel packed from A: equally clean — A is only read.
	pa := PackPanel(up)
	MaxMinMulAddPathsPacked(down, up, pa, 0, 0)

	// The C-aliases-A hazard is still caught across the whole family.
	MulAddPacked(down, down, pc)                  // want `C argument down aliases A`
	MaxMinMulAddPacked(down, down, pc)            // want `C argument down aliases A`
	MulAddPathsPacked(down, down, pc, 0, 0)       // want `C argument down aliases A`
	MaxMinMulAddPathsPacked(down, down, pa, 0, 0) // want `C argument down aliases A`

	//lint:ignore aliascheck the fused sweep writes only rows the closed diagonal never reads
	MulAddPacked(down, down, pc)
}
