package a

type Mat struct {
	Data []float64
}

func (m Mat) View(i, j, r, c int) Mat { return m }

func MinPlusMulAdd(C, A, B Mat)               {}
func MinPlusMulAddSerial(C, A, B Mat)         {}
func MaxMinMulAddPaths(C, A, B Mat, n, m int) {}
func UnrelatedThreeArg(C, A, B Mat)           {}

type PackedPanel struct{}

func MinPlusMulAddPacked(C, A Mat, P *PackedPanel)                {}
func MinPlusMulAddPathsPacked(C, A Mat, P *PackedPanel, n, m int) {}

type Kernels struct {
	MulAdd       func(C, A, B Mat)
	MulAddPacked func(C, A Mat, P *PackedPanel)
}

func update(K *Kernels, up, diag, down Mat) {
	MinPlusMulAdd(up, diag, up)           // want `C argument up aliases B`
	MinPlusMulAdd(down, down, diag)       // want `C argument down aliases A`
	MinPlusMulAddSerial(up, up, up)       // want `aliases A` `aliases B`
	K.MulAdd(up, diag, up)                // want `C argument up aliases B`
	MaxMinMulAddPaths(up, up, diag, 0, 0) // want `aliases A`

	//lint:ignore aliascheck diag is a closed zero-diagonal block (panel update)
	MinPlusMulAdd(up, diag, up)

	MinPlusMulAdd(up, diag, down)                            // clean: three distinct operands
	UnrelatedThreeArg(up, up, up)                            // clean: not in the gemm family
	K.MulAdd(up.View(0, 0, 1, 1), up.View(1, 1, 1, 1), diag) // clean: different views are not syntactic aliases

	var P *PackedPanel
	MinPlusMulAddPacked(down, down, P)            // want `C argument down aliases A`
	MinPlusMulAddPathsPacked(down, down, P, 0, 0) // want `C argument down aliases A`
	K.MulAddPacked(down, down, P)                 // want `C argument down aliases A`
	MinPlusMulAddPacked(down, up, P)              // clean: distinct operands
	//lint:ignore aliascheck packed operand is the closed diagonal, which the update never writes
	MinPlusMulAddPacked(down, down, P)
}
