package a

import "context"

func SolveCtx(ctx context.Context, n int) error { return ctx.Err() }

func Solve(n int) error {
	// clean: no ctx in scope, this is the blessed adapter pattern
	return SolveCtx(context.Background(), n)
}

func FactorCtx(ctx context.Context, n int) error {
	if err := SolveCtx(ctx, n); err != nil { // clean: ctx flows through
		return err
	}
	if err := SolveCtx(context.Background(), n); err != nil { // want `context.Background\(\) inside a function that has a ctx in scope`
		return err
	}
	if err := SolveCtx(context.TODO(), n); err != nil { // want `context.TODO\(\) inside a function that has a ctx in scope`
		return err
	}
	if err := Solve(n); err != nil { // want `Solve drops the ctx in scope; call SolveCtx`
		return err
	}
	//lint:ignore ctxplumb drain window must outlive the cancelled serving ctx
	dctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	_ = dctx

	detached := context.WithoutCancel(ctx) // clean: explicit, keeps values
	return SolveCtx(detached, n)
}

func helper(ctx context.Context, n int) error {
	run := func() error {
		return SolveCtx(context.Background(), n) // want `context.Background\(\)`
	}
	return run()
}
