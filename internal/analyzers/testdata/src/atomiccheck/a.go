package a

import "sync/atomic"

// Typed atomics: the kernel-stats shape.
type stats struct {
	calls atomic.Uint64
	dense atomic.Uint64
}

var kernelStats stats

func typedUse() uint64 {
	kernelStats.calls.Add(1)       // clean: method call
	v := kernelStats.calls.Load()  // clean: method call
	p := &kernelStats.dense        // clean: address taken
	p.Store(2)                     // clean: method via pointer
	load := kernelStats.calls.Load // clean: method value binds the receiver
	_ = kernelStats.calls          // want `atomic field kernelStats.calls used as a plain value`
	return v + load()
}

// Function-style API: mixed atomic/plain access.
type counters struct {
	hits uint64
	miss uint64
}

var c counters

func mixed() uint64 {
	atomic.AddUint64(&c.hits, 1) // clean: the sanctioned form
	c.hits++                     // want `plain access to c.hits, which is accessed with sync/atomic.AddUint64`
	if c.hits > 10 {             // want `plain access to c.hits`
		return atomic.LoadUint64(&c.hits) // clean
	}
	bump(&c.hits) // clean: address handed off, not an access

	c.miss++ // clean: miss is never touched atomically
	return c.miss
}

func bump(p *uint64) { atomic.AddUint64(p, 1) }

var free atomic.Int64

func vars() int64 {
	free.Add(3) // clean
	_ = free    // want `atomic variable free used as a plain value`
	//lint:ignore atomiccheck snapshotting a quiesced counter block
	y := free
	return y.Load() + free.Load()
}
