package asmabi

// Body-less declarations backed by good_amd64.s (correct) and
// corrupt_amd64.s (deliberately wrong headers/operands).

func goodKernel(c, a []float64, stride int)
func retKernel() bool
func wrongFrame(c []float64)
func wrongSize(c []float64)
func shiftedOff(c []float64, n int)

// No TEXT symbol anywhere: calls would jump to address zero.
func missingKernel(x int) bool // want `func missingKernel is declared without a body but no TEXT ·missingKernel symbol exists`

// Keep the declarations referenced so the fixture type-checks without
// unused-symbol noise in stricter tooling.
var _ = goodKernel
var _ = retKernel
var _ = wrongFrame
var _ = wrongSize
var _ = shiftedOff
var _ = missingKernel
