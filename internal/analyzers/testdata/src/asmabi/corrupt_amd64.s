#include "textflag.h"

// Deliberate ABI corruption, one class per symbol.

// Frame size not word-aligned.
TEXT ·wrongFrame(SB), NOSPLIT, $4-24 // want `frame size 4 is not 8-byte aligned`
	RET

// Declared argument size disagrees with the Go signature (slice = 24).
TEXT ·wrongSize(SB), NOSPLIT, $0-16 // want `wrong argument size 16; Go declaration needs 24`
	RET

// FP operand shifted into the middle of the preceding slice header,
// plus a reference to a parameter that does not exist.
TEXT ·shiftedOff(SB), NOSPLIT, $0-32
	MOVQ c_base+0(FP), DI
	MOVQ n+16(FP), AX // want `invalid offset n\+16\(FP\); expected n\+24\(FP\)`
	MOVQ bogus+0(FP), BX // want `unknown parameter bogus`
	RET

// Symbol renamed out from under its Go declaration.
TEXT ·renamedKernel(SB), NOSPLIT, $0-8 // want `no body-less Go declaration for assembly symbol renamedKernel`
	RET
