#include "textflag.h"

// func goodKernel(c, a []float64, stride int)
TEXT ·goodKernel(SB), NOSPLIT, $0-56
	MOVQ c_base+0(FP), DI
	MOVQ c_len+8(FP), CX
	MOVQ c_cap+16(FP), R9
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), DX
	MOVQ stride+48(FP), R8
	RET

// func retKernel() bool
TEXT ·retKernel(SB), NOSPLIT, $0-1
	MOVB $1, ret+0(FP)
	RET
