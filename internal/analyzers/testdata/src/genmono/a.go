package genmono

import "sync/atomic"

type server struct {
	generation atomic.Uint64
	// hits is not an authoritative generation; out of scope.
	hits atomic.Uint64
}

type coordinator struct {
	expectedGen atomic.Uint64
}

// A blind store can move the generation backwards.
func blindStore(s *server, g uint64) {
	s.generation.Store(g) // want `s\.generation\.Store without a prior s\.generation\.Load`
}

// Load-then-store with a monotonic check is the sanctioned shape.
func loadThenStore(s *server, g uint64) {
	cur := s.generation.Load()
	if g <= cur {
		return
	}
	s.generation.Store(g)
}

// A load on only one path does not protect the store.
func loadOnOnePath(s *server, g uint64, check bool) {
	if check {
		if g <= s.generation.Load() {
			return
		}
	}
	s.generation.Store(g) // want `s\.generation\.Store without a prior s\.generation\.Load`
}

// Add is intrinsically monotonic.
func bump(s *server) uint64 {
	return s.generation.Add(1)
}

// CompareAndSwap carries its compare from a prior Load.
func adopt(c *coordinator, g uint64) {
	for {
		cur := c.expectedGen.Load()
		if g <= cur {
			return
		}
		if c.expectedGen.CompareAndSwap(cur, g) {
			return
		}
	}
}

// A CAS whose compared value never came from the field is still blind.
func blindCAS(c *coordinator, g uint64) {
	c.expectedGen.CompareAndSwap(0, g) // want `c\.expectedGen\.CompareAndSwap without a prior c\.expectedGen\.Load`
}

// Non-generation atomics are out of scope.
func countHit(s *server) {
	s.hits.Store(0)
}

// Suppressed negative: anti-entropy resync adopts the coordinator's
// generation wholesale, including backwards after an operator rollback.
func resync(s *server, g uint64) {
	s.generation.Store(g) //lint:ignore genmono resync adopts the coordinator generation; the window check upstream bounds regression
}
