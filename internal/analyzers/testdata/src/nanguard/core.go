// Fixture package named "core" so NanGuard treats it as a
// distance-carrying package.
package core

import "math"

var Inf = math.Inf(1)

func relax(d, alt, weight float64, data []float64) bool {
	if d == alt { // want `float == between two computed distance values is NaN-hostile`
		return false
	}
	if d != data[0] { // want `float != between two computed distance values is NaN-hostile`
		return false
	}
	if d != d { // want `float self-comparison d != d: use math.IsNaN`
		return false
	}
	if d == math.NaN() { // want `comparison with math.NaN\(\) is always false; use math.IsNaN`
		return false
	}
	if weight < math.NaN() { // want `comparison with math.NaN\(\) is always false; use math.IsNaN`
		return false
	}

	//lint:ignore nanguard bitwise equality is the contract of the differential suite
	if d == alt {
		return false
	}

	if d == Inf { // clean: Inf sentinel compare
		return false
	}
	if alt != math.Inf(1) { // clean: Inf sentinel compare
		return false
	}
	if d == -Inf { // clean: negated sentinel
		return false
	}
	negInf := -Inf
	if alt == negInf { // clean: hoisted sentinel local
		return false
	}
	if d == 0 { // clean: constant compare
		return false
	}
	if math.IsNaN(d) || math.IsInf(alt, 1) { // clean: the blessed forms
		return false
	}
	if d < alt { // clean: ordered compare of distances is the algorithm
		return true
	}
	return alt <= weight // clean
}

func ints(a, b int) bool { return a == b } // clean: not floats

type kernels struct {
	Zero float64
	One  float64
}

// sentinel identities of the semiring are ±Inf/0 by construction.
func identities(K *kernels, v []float64, zero float64) bool {
	for _, x := range v {
		if x != zero { // clean: semiring zero parameter
			return false
		}
		if x == K.One { // clean: semiring identity field
			return true
		}
	}
	return false
}
