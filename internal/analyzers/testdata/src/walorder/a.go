package walorder

import (
	"net/http"
	"sync/atomic"
)

type Journal struct{}

func (j *Journal) Append(rec []byte) error     { return nil }
func (j *Journal) AppendMarker(g uint64) error { return nil }

type server struct {
	journal    *Journal
	eng        atomic.Pointer[int]
	generation atomic.Uint64
}

func writeJSON(w http.ResponseWriter, code int, v any) {}

// Publish before the append: the canonical violation.
func swapBeforeAppend(s *server, e *int) error {
	s.eng.Store(e) // want `state publish s\.eng\.Store without a preceding WAL append`
	if s.journal != nil {
		if err := s.journal.Append(nil); err != nil {
			return err
		}
	}
	return nil
}

// Append on only one path: the else path reaches the store unappended.
func appendOnOnePath(s *server, e *int, hot bool) {
	if hot {
		_ = s.journal.Append(nil)
	}
	s.eng.Store(e) // want `state publish s\.eng\.Store without a preceding WAL append`
}

// The sanctioned shape: append under a nil guard, then publish. The
// nil branch is vacuous — a memory-only server has nothing to append.
func guardedCommit(s *server, e *int, g uint64) error {
	if s.journal != nil {
		if err := s.journal.Append(nil); err != nil {
			return err
		}
	}
	s.eng.Store(e)
	s.generation.Store(g)
	return nil
}

// Appends routed through a package-local helper are seen via the call
// graph: persist is an appender, so the store is covered.
func persist(s *server) error {
	if s.journal != nil {
		return s.journal.Append(nil)
	}
	return nil
}

func viaHelper(s *server, e *int) error {
	if err := persist(s); err != nil {
		return err
	}
	s.eng.Store(e)
	return nil
}

// Acking a client before the commit point is the same bug over HTTP.
func ackEarly(w http.ResponseWriter, s *server) {
	writeJSON(w, http.StatusOK, nil) // want `HTTP success acknowledgement without a preceding WAL append`
	_ = s.journal.AppendMarker(1)
}

func ackAfter(w http.ResponseWriter, s *server) {
	if err := s.journal.Append(nil); err != nil {
		writeJSON(w, http.StatusInternalServerError, nil)
		return
	}
	writeJSON(w, http.StatusOK, nil)
}

// Suppressed negative: boot-time publish where recovery has already
// replayed the journal.
func suppressed(s *server, e *int) {
	if s.journal == nil {
		return
	}
	s.eng.Store(e) //lint:ignore walorder boot publish: OpenDurable already replayed the journal to this state
}

// Out of scope: no journal in sight, pure in-memory swap.
func memoryOnly(s *server, e *int) {
	s.eng.Store(e)
}
