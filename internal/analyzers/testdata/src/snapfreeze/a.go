package snapfreeze

type Mat struct{ data []float64 }

func (m Mat) Set(i, j int, v float64) {}
func (m Mat) Fill(v float64)          {}
func (m Mat) At(i, j int) float64     { return 0 }

type Factor struct {
	diag []Mat
	up   []Mat
	down []Mat
}

func (f *Factor) resetBlocks(ks []int)     {}
func (f *Factor) scatterEdges(edges []int) {}
func (f *Factor) injectMin(e int)          {}
func (f *Factor) reeliminate(ks []int)     {}
func (f *Factor) cowClone(dirty []int) *Factor {
	return &Factor{}
}

type Patched struct {
	Factor *Factor
	Stale  []int
}

// Mutating the clone after publishing it leaks writes to readers.
func writeAfterPublish(p *Patched, f *Factor) {
	nf := f.cowClone(nil)
	nf.resetBlocks(nil) // clean: still private
	p.Factor = nf
	nf.injectMin(3) // want `mutator call injectMin on nf after the factor was published`
}

// Reaching the factor through the snapshot field is published by
// definition, flow aside.
func throughField(p *Patched) {
	p.Factor.resetBlocks(nil) // want `mutator call resetBlocks through a Patched snapshot's Factor`
}

// Block-level writes are writes.
func blockWrites(p *Patched, f *Factor) {
	nf := f.cowClone(nil)
	nf.diag[0].Set(0, 0, 1) // clean: before publish
	p.Factor = nf
	nf.diag[0].Set(1, 1, 0) // want `block write Set on nf after the factor was published`
	nf.up[2].Fill(0)        // want `block write Fill on nf after the factor was published`
	var m Mat
	nf.down[1] = m // want `block store on nf after the factor was published`
}

// Publication travels through simple aliases.
func aliased(p *Patched, f *Factor) {
	nf := f.cowClone(nil)
	q := nf
	p.Factor = nf
	q.injectMin(1) // want `mutator call injectMin on q after the factor was published`
}

// Composite-literal publication counts too.
func composite(f *Factor) *Patched {
	nf := f.cowClone(nil)
	p := &Patched{Factor: nf}
	nf.scatterEdges(nil) // want `mutator call scatterEdges on nf after the factor was published`
	return p
}

// Publication on one branch freezes the factor on the join.
func conditional(p *Patched, f *Factor, publish bool) {
	nf := f.cowClone(nil)
	if publish {
		p.Factor = nf
	}
	nf.injectMin(1) // want `mutator call injectMin on nf after the factor was published`
}

// The sanctioned pipeline: clone, mutate, publish last, then touch only
// snapshot metadata.
func sanctioned(p *Patched, f *Factor) {
	nf := f.cowClone(nil)
	nf.resetBlocks(nil)
	nf.scatterEdges(nil)
	nf.injectMin(7)
	nf.reeliminate(nil)
	p.Factor = nf
	p.Stale = nil
}

// Reads are never writes.
func reads(p *Patched) float64 {
	return p.Factor.diag[0].At(0, 0)
}

// Suppressed negative: single-writer rebase mutates in place before the
// engine pointer swap makes the snapshot visible.
func suppressed(p *Patched, f *Factor) {
	nf := f.cowClone(nil)
	p.Factor = nf
	//lint:ignore snapfreeze rebase runs under updMu before the engine swap publishes p to readers
	nf.injectMin(2)
}
