package a

import "sync"

func worker(f func()) {
	go f() // want `naked go statement outside internal/par`

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `naked go statement outside internal/par`
		defer wg.Done()
		f()
	}()
	wg.Wait()

	//lint:ignore nakedgo long-lived service goroutine; lifetime managed by close(ch)
	go f()

	go f() //lint:ignore nakedgo suppressed on the same line

	defer f() // clean: not a go statement
	f()       // clean: synchronous call
}
