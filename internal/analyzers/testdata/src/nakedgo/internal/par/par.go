// Package par is the sanctioned home of goroutine spawning: the
// fixture mirrors repro/internal/par, where raw go statements implement
// the contained schedulers themselves and must not be flagged.
package par

func spawn(f func()) {
	done := make(chan struct{})
	go func() { // clean: inside internal/par
		defer close(done)
		f()
	}()
	<-done
}
