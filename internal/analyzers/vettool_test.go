package analyzers_test

// End-to-end vettool test: build cmd/apspvet once, seed a scratch module
// with one deliberate violation of every analyzer in the suite, and
// assert that `go vet -vettool=apspvet ./...` fails and names each one.
// This is the acceptance test for the CI wiring — it exercises the real
// unitchecker protocol (cfg files, export-data importing, exit codes)
// rather than the in-process analysistest harness.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// seedFiles is the scratch module: each file trips exactly one analyzer,
// with a distinctive message fragment to assert on.
var seedFiles = map[string]string{
	"go.mod": "module seeded\n\ngo 1.22\n",
	// nakedgo: a bare go statement outside internal/par.
	"spawn/spawn.go": `package spawn

func Spawn() {
	go func() {}()
}
`,
	// aliascheck: C aliases B in a gemm-family call.
	"gemm/gemm.go": `package gemm

type Mat struct{ Data []float64 }

func MinPlusMulAdd(C, A, B Mat) {}

func Update(panel, diag Mat) {
	MinPlusMulAdd(panel, diag, panel)
}
`,
	// ctxplumb: context.Background() inside a function that has a ctx.
	"plumb/plumb.go": `package plumb

import "context"

func Solve(ctx context.Context) {
	_ = context.Background()
}
`,
	// nanguard: computed float equality in a package named core.
	"core/core.go": `package core

func Relax(d, alt float64) bool {
	return d == alt
}
`,
	// atomiccheck: plain read of an atomic-typed counter.
	"stats/stats.go": `package stats

import "sync/atomic"

var calls atomic.Uint64

func Snapshot() atomic.Uint64 {
	return calls
}
`,
}

func TestVettoolFlagsSeededViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet; skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "apspvet")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/apspvet")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building apspvet: %v\n%s", err, out)
	}

	mod := t.TempDir()
	for name, src := range seedFiles {
		path := filepath.Join(mod, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on a module seeded with violations:\n%s", out)
	}
	got := string(out)
	for analyzer, fragment := range map[string]string{
		"nakedgo":     "naked go statement outside internal/par",
		"aliascheck":  "aliases",
		"ctxplumb":    "context.Background",
		"nanguard":    "NaN-hostile",
		"atomiccheck": "atomic",
	} {
		if !strings.Contains(got, fragment) {
			t.Errorf("%s: seeded violation not reported (want output containing %q)\nfull output:\n%s", analyzer, fragment, got)
		}
	}
}

// TestVettoolCleanModule is the other half of the contract: the tool must
// exit 0 (so `make check` passes) on code that honors the invariants.
func TestVettoolCleanModule(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet; skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "apspvet")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/apspvet")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building apspvet: %v\n%s", err, out)
	}

	mod := t.TempDir()
	files := map[string]string{
		"go.mod": "module clean\n\ngo 1.22\n",
		"core/core.go": `package core

import "math"

var Inf = math.Inf(1)

func Relax(d, alt float64) bool {
	if math.IsNaN(d) || d == Inf {
		return false
	}
	return alt < d
}
`,
	}
	for name, src := range files {
		path := filepath.Join(mod, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = mod
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed on a clean module: %v\n%s", err, out)
	}
}
