package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// NanGuard enforces NaN/Inf discipline on distance arithmetic. Distances
// use math.Inf(1) as the semiring zero ("no path"), and NaN must never
// enter the lattice — PR 2's negative-self-loop bug was a NaN-ordering
// mistake where a comparison silently evaluated false and skipped a
// rejection. In the distance-carrying packages (core, graph, semiring,
// dist) the analyzer flags:
//
//   - ==/!= between two computed float expressions. Comparing against
//     the Inf sentinel or a float constant is NaN-safe by construction
//     (NaN == Inf is false and takes the conservative branch); equality
//     between two computed distances is not, and usually wants either a
//     tolerance or an explicit bitwise-equality annotation. Sentinels
//     are recognized by the repo's naming convention: identifiers and
//     selectors named Inf/negInf, the semiring identities Zero/One
//     (always ±Inf or 0 by construction, see semiring.Kernels), and
//     math.Inf(...) calls.
//   - any ordered comparison with math.NaN(), which is always false;
//     use math.IsNaN.
//   - x == x / x != x self-comparison; use math.IsNaN, which names the
//     intent.
var NanGuard = &analysis.Analyzer{
	Name: "nanguard",
	Doc:  "flags NaN-hostile float comparisons on distance values; require math.IsNaN/IsInf or Inf-sentinel compares",
	Run:  runNanGuard,
}

// nanGuardPkgs are the packages that carry distance values.
var nanGuardPkgs = map[string]bool{
	"core":     true,
	"graph":    true,
	"semiring": true,
	"dist":     true,
}

func runNanGuard(pass *analysis.Pass) error {
	if !nanGuardPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !isComparison(be.Op) {
				return true
			}
			if isNaNCall(pass, be.X) || isNaNCall(pass, be.Y) {
				pass.Reportf(be.OpPos, "comparison with math.NaN() is always false; use math.IsNaN")
				return true
			}
			if be.Op != token.EQL && be.Op != token.NEQ {
				return true
			}
			if !isFloat(pass, be.X) || !isFloat(pass, be.Y) {
				return true
			}
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				pass.Reportf(be.OpPos, "float self-comparison %s %s %s: use math.IsNaN to name the intent", types.ExprString(be.X), be.Op, types.ExprString(be.Y))
				return true
			}
			if nanSafe(pass, be.X) || nanSafe(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "float %s between two computed distance values is NaN-hostile; compare against the Inf sentinel, use math.IsNaN/IsInf or a tolerance, or annotate deliberate bitwise equality with //lint:ignore nanguard <reason>", be.Op)
			return true
		})
	}
	return nil
}

func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
		return true
	}
	return false
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// nanSafe reports whether comparing against e with == / != cannot be a
// NaN-ordering trap: constants (including literals and named consts)
// and the Inf sentinel in its various spellings.
func nanSafe(pass *analysis.Pass, e ast.Expr) bool {
	e = ast.Unparen(e)
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true // constant expression
	}
	switch x := e.(type) {
	case *ast.UnaryExpr: // -Inf
		return nanSafe(pass, x.X)
	case *ast.Ident:
		return sentinelName(x.Name)
	case *ast.SelectorExpr: // semiring.Inf, K.Zero, f.K.One
		return sentinelName(x.Sel.Name)
	case *ast.CallExpr: // math.Inf(1)
		if fn, ok := calleeFunc(pass, x); ok {
			return fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == "Inf"
		}
	}
	return false
}

// sentinelName matches the repo's sentinel spellings: Inf/negInf
// locals hoisted out of hot loops, and the semiring identity values
// Zero/One, which are ±Inf or 0 for every algebra in the tree.
func sentinelName(name string) bool {
	switch strings.ToLower(name) {
	case "inf", "neginf", "zero", "one":
		return true
	}
	return false
}

func isNaNCall(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := calleeFunc(pass, call)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "math" && fn.Name() == "NaN"
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) (*types.Func, bool) {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	return fn, ok
}
