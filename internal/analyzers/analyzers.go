// Package analyzers is the apspvet suite: repo-specific static checks
// that promote invariants previously enforced only at runtime (or by
// convention) into build-time guarantees. The paper's correctness
// argument rests on an ahead-of-time structural fact — only the A(k,k)
// diagonal block is shared between concurrent updates — established by
// symbolic analysis before any numeric work runs; these analyzers apply
// the same philosophy to the implementation itself.
//
// The original five are syntactic AST matchers: goroutine panic
// containment (nakedgo), GEMM aliasing (aliascheck), context plumbing
// (ctxplumb), NaN/Inf discipline (nanguard), and atomic counter access
// (atomiccheck). The flow-sensitive four build on the CFG/dataflow/
// facts layer in internal/analysis: assembly ABI cross-checking
// (asmabi), WAL append-before-publish ordering (walorder), frozen
// published snapshots (snapfreeze), and monotonic generation advance
// (genmono).
//
// DESIGN.md section 11 documents each invariant and its provenance.
package analyzers

import "repro/internal/analysis"

// Suite is every analyzer apspvet runs, in reporting order.
var Suite = []*analysis.Analyzer{
	AliasCheck,
	AsmAbi,
	AtomicCheck,
	CtxPlumb,
	GenMono,
	NakedGo,
	NanGuard,
	SnapFreeze,
	WalOrder,
}
