package analyzers

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/analysis"
)

// TestAsmAbiSemiringLive runs asmabi against the real semiring package:
// every TEXT symbol in gemm_amd64.s must line up with its Go
// declaration, and the analyzer must see all of them (a silent skip of
// a symbol class would pass vacuously).
func TestAsmAbiSemiringLive(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skip("semiring assembly is amd64-only")
	}
	if testing.Short() {
		t.Skip("shells out to go list")
	}

	data, err := os.ReadFile(filepath.Join("..", "semiring", "gemm_amd64.s"))
	if err != nil {
		t.Fatal(err)
	}
	syms := parseAsmSymbols(data)
	if len(syms) != 11 {
		names := make([]string, 0, len(syms))
		for _, s := range syms {
			names = append(names, s.name)
		}
		t.Fatalf("parsed %d TEXT symbols from gemm_amd64.s, want 11: %v", len(syms), names)
	}

	pkgs, err := analysis.Load("../..", "./internal/semiring")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	hasAsm := false
	for _, f := range pkg.OtherFiles {
		if filepath.Base(f) == "gemm_amd64.s" {
			hasAsm = true
		}
	}
	if !hasAsm {
		t.Fatalf("loader did not surface gemm_amd64.s in OtherFiles: %v", pkg.OtherFiles)
	}

	findings, err := analysis.RunAnalyzers(pkg, []*analysis.Analyzer{AsmAbi})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("unexpected asmabi finding on real tree: %s", f)
	}
}
