package analyzers

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// GenMono enforces the monotonic-generation discipline (DESIGN.md §10):
// the authoritative factor-generation atomics — fields named
// `generation` (serve.Server) and `expectedGen` (shard.Coordinator) —
// may only advance. Mechanically, every blind `.Store`/`.Swap` on such
// a field is suspect unless the same field was `.Load`ed earlier on
// every path (the read-modify-write shape that lets the surrounding
// code enforce target > current); `.Add` is intrinsically monotonic and
// `.CompareAndSwap` carries its own read in the compare, provided a
// prior Load produced the compared value. Observation caches of remote
// generations (workerState.gen in the anti-entropy prober) are not
// authoritative and deliberately out of scope — they must be allowed to
// move backwards when a worker restarts cold.
var GenMono = &analysis.Analyzer{
	Name: "genmono",
	Doc:  "requires authoritative generation atomics (generation/expectedGen fields) to be mutated only via read-modify-write shapes: Load-then-Store, CompareAndSwap after Load, or Add",
	Run:  runGenMono,
}

// genFields are the authoritative generation atomics, by field name.
var genFields = map[string]bool{
	"generation":  true,
	"expectedGen": true,
}

func runGenMono(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Group the mutation sites by the field chain they address
			// ("s.generation", "c.expectedGen"), then demand a preceding
			// Load of the same chain for each group.
			type site struct {
				call   *ast.CallExpr
				method string
			}
			byBase := map[string][]site{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				base, method, ok := genAtomicCall(call)
				if !ok {
					return true
				}
				switch method {
				case "Store", "Swap", "CompareAndSwap":
					byBase[base] = append(byBase[base], site{call, method})
				}
				return true
			})
			if len(byBase) == 0 {
				continue
			}
			cfg := analysis.NewCFG(fd.Body)
			for base, sites := range byBase {
				mp := analysis.NewMustPrecede(cfg, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return false
					}
					b, method, ok := genAtomicCall(call)
					return ok && b == base && method == "Load"
				}, nil)
				for _, s := range sites {
					if !mp.At(s.call.Pos()) {
						pass.Reportf(s.call.Pos(), "%s.%s without a prior %s.Load on some path; authoritative generations must advance via read-modify-write (Load-then-%s with a monotonic check, or Add) — restructure or annotate with //lint:ignore genmono <why monotonicity holds>", base, s.method, base, s.method)
					}
				}
			}
		}
	}
	return nil
}

// genAtomicCall decomposes X.<genfield>.<method>(...) calls, returning
// the field chain as a string ("s.generation"), the atomic method
// name, and whether the call addresses an authoritative generation
// field.
func genAtomicCall(call *ast.CallExpr) (base, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel || !genFields[inner.Sel.Name] {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}
