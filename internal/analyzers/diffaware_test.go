package analyzers_test

// End-to-end tests for the standalone driver's SARIF/baseline modes and
// for cross-package fact propagation through the real `go vet -vettool`
// protocol. Both build the actual apspvet binary and run it the way the
// Makefile and CI do.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildApspvet(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "apspvet")
	build := exec.Command("go", "build", "-o", bin, "repro/cmd/apspvet")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building apspvet: %v\n%s", err, out)
	}
	return bin
}

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	mod := t.TempDir()
	for name, src := range files {
		path := filepath.Join(mod, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return mod
}

// TestStandaloneDiffAware drives the full baseline workflow: write a
// baseline over a module with one accepted finding, confirm -diff
// passes on the unchanged tree, seed a second violation, and confirm
// -diff fails naming only the new finding while the SARIF log stays a
// valid 2.1.0 document carrying the complete finding set.
func TestStandaloneDiffAware(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go list; skipped in -short mode")
	}
	bin := buildApspvet(t)
	mod := writeModule(t, map[string]string{
		"go.mod": "module diffmod\n\ngo 1.22\n",
		// aliascheck violation — the accepted, baselined finding.
		"gemm/gemm.go": `package gemm

type Mat struct{ Data []float64 }

func MinPlusMulAdd(C, A, B Mat) {}

func Update(panel, diag Mat) {
	MinPlusMulAdd(panel, diag, panel)
}
`,
	})
	baseline := filepath.Join(mod, ".apspvet-baseline.json")

	run := func(args ...string) (string, int) {
		cmd := exec.Command(bin, args...)
		cmd.Dir = mod
		out, err := cmd.CombinedOutput()
		code := 0
		if ee, ok := err.(*exec.ExitError); ok {
			code = ee.ExitCode()
		} else if err != nil {
			t.Fatalf("running apspvet %v: %v\n%s", args, err, out)
		}
		return string(out), code
	}

	// Without a baseline the accepted finding fails the run.
	if out, code := run("./..."); code == 0 {
		t.Fatalf("apspvet passed on a module with a violation:\n%s", out)
	}

	if out, code := run("-baseline", baseline, "-writebaseline", "./..."); code != 0 {
		t.Fatalf("-writebaseline failed (%d):\n%s", code, out)
	}

	// Diff-aware on the unchanged tree: baselined finding suppressed,
	// exit 0.
	out, code := run("-baseline", baseline, "-diff", "./...")
	if code != 0 {
		t.Fatalf("-diff failed on unchanged tree (%d):\n%s", code, out)
	}
	if !strings.Contains(out, "baselined finding(s) suppressed") {
		t.Errorf("-diff did not report the suppression: %q", out)
	}

	// Seed a new violation (nanguard: computed float equality in core).
	newFile := filepath.Join(mod, "core", "core.go")
	if err := os.MkdirAll(filepath.Dir(newFile), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newFile, []byte("package core\n\nfunc Relax(d, alt float64) bool {\n\treturn d == alt\n}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	sarif := filepath.Join(mod, "out.sarif")
	out, code = run("-sarif", sarif, "-baseline", baseline, "-diff", "./...")
	if code == 0 {
		t.Fatalf("-diff passed despite a new finding:\n%s", out)
	}
	if !strings.Contains(out, "core.go") {
		t.Errorf("new finding not reported: %q", out)
	}
	if strings.Contains(out, "gemm.go") {
		t.Errorf("baselined finding leaked past -diff: %q", out)
	}

	// The SARIF log must be valid and carry the full finding set (code
	// scanning wants total state; -diff only gates the exit code).
	data, err := os.ReadFile(sarif)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				RuleID string `json:"ruleId"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("SARIF shape wrong: version=%q runs=%d", log.Version, len(log.Runs))
	}
	rules := map[string]bool{}
	for _, r := range log.Runs[0].Results {
		rules[r.RuleID] = true
	}
	if !rules["aliascheck"] || !rules["nanguard"] {
		t.Errorf("SARIF results missing expected rules: %v", rules)
	}
}

// TestVettoolFactsAcrossPackages proves walorder's appender facts
// travel between packages through the vetx files cmd/go threads into
// each vet invocation. The violation is only detectable with the fact:
// srv publishes before calling wal.Persist, and Persist's WAL append is
// in a different package — without the imported fact the function has
// no visible append at all and falls out of walorder's scope.
func TestVettoolFactsAcrossPackages(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet; skipped in -short mode")
	}
	bin := buildApspvet(t)
	mod := writeModule(t, map[string]string{
		"go.mod": "module factsmod\n\ngo 1.22\n",
		"wal/wal.go": `package wal

type Journal struct{}

func (j *Journal) Append(rec []byte) error { return nil }

// Persist is the cross-package appender: callers rely on it reaching
// the WAL.
func Persist(j *Journal) error {
	return j.Append(nil)
}
`,
		"srv/srv.go": `package srv

import (
	"sync/atomic"

	"factsmod/wal"
)

type Server struct {
	eng atomic.Pointer[int]
}

// Publish swaps the engine before the journal write lands — the
// ordering bug walorder exists to catch, visible only through the
// imported fact that wal.Persist appends.
func Publish(s *Server, j *wal.Journal, v *int) error {
	s.eng.Store(v)
	return wal.Persist(j)
}
`,
	})

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet passed; the cross-package appender fact did not reach srv:\n%s", out)
	}
	got := string(out)
	if !strings.Contains(got, "state publish s.eng.Store without a preceding WAL append") {
		t.Errorf("missing walorder finding in srv (fact propagation broken):\n%s", got)
	}
	if !strings.Contains(got, "srv.go") {
		t.Errorf("finding not anchored in srv/srv.go:\n%s", got)
	}
}
