package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// AsmAbi cross-checks the hand-written amd64 assembly kernels against
// their Go declarations: every `TEXT ·name(SB), NOSPLIT, $frame-argsize`
// header must correspond to a body-less Go func in the same package,
// the declared argument size must match the ABI0 frame layout computed
// from the Go signature, and every FP-relative operand (`c_base+0(FP)`,
// `stride+72(FP)`) must name a real parameter component at its real
// offset. This is the vet-asmdecl class of bugs — a shifted offset
// reads a neighbouring argument and produces silently wrong distances,
// exactly the failure mode the differential GEMM suite can only catch
// per-input. The check is static and total: all kernels, all operands,
// on every build.
var AsmAbi = &analysis.Analyzer{
	Name: "asmabi",
	Doc:  "cross-checks TEXT headers and FP operand offsets in package assembly against the Go declarations (ABI0, amd64)",
	Run:  runAsmAbi,
}

// ABI0 layout on amd64: arguments at 8-byte-aligned word offsets from
// FP, slices as (base,len,cap) words, strings as (base,len).
const asmWordSize = 8

// asmComp is one addressable component of a parameter: suffix appended
// to the Go name ("" for scalars, "_base"/"_len"/"_cap" for slices) and
// its offset within the parameter.
type asmComp struct {
	suffix string
	off    int64
	size   int64
}

// asmParam is a parameter (or result) laid out in the ABI0 frame.
type asmParam struct {
	name  string
	off   int64
	comps []asmComp
}

// asmLayout is the computed frame for one Go declaration.
type asmLayout struct {
	params  []asmParam
	argSize int64
	// offsets maps every acceptable FP operand name to its offset:
	// component names (c_base) and, for the leading component, the bare
	// parameter name (c).
	offsets map[string]int64
}

// asmSymbol is one TEXT block parsed from an assembly file.
type asmSymbol struct {
	name    string
	frame   int64
	argSize int64 // -1 when the $frame had no -argsize part
	line    int
	fpRefs  []asmFPRef
}

type asmFPRef struct {
	name string
	off  int64
	line int
}

var (
	asmTextRE = regexp.MustCompile(`^TEXT\s+·(\w+)\(SB\)(?:\s*,\s*[A-Z][A-Z0-9|]*)?\s*,\s*\$(-?\d+)(?:-(\d+))?`)
	asmFPRE   = regexp.MustCompile(`(\w+)\+(\d+)\(FP\)`)
)

func runAsmAbi(pass *analysis.Pass) error {
	var asmFiles []string
	for _, f := range pass.OtherFiles {
		// Offsets below are amd64 ABI0; other architectures' files are
		// left to their own (future) layout tables.
		if strings.HasSuffix(f, "_amd64.s") {
			asmFiles = append(asmFiles, f)
		}
	}
	if len(asmFiles) == 0 {
		return nil
	}

	// Body-less Go declarations are the assembly entry points.
	decls := map[string]*ast.FuncDecl{}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Body == nil && fd.Recv == nil {
				decls[fd.Name.Name] = fd
			}
		}
	}

	implemented := map[string]bool{}
	for _, path := range asmFiles {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		tf := pass.Fset.AddFile(path, -1, len(data))
		tf.SetLinesForContent(data)
		linePos := func(line int) token.Pos { return tf.LineStart(line) }

		for _, sym := range parseAsmSymbols(data) {
			implemented[sym.name] = true
			fd, ok := decls[sym.name]
			if !ok {
				pass.Reportf(linePos(sym.line), "TEXT ·%s(SB): no body-less Go declaration for assembly symbol %s in %s", sym.name, sym.name, pass.Pkg.Name())
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			layout, ok := computeASMLayout(fn.Type().(*types.Signature))
			if !ok {
				// Unsupported parameter type (struct, interface, ...):
				// nothing in this package today; stay silent rather than
				// guess offsets.
				continue
			}
			if sym.frame%asmWordSize != 0 {
				pass.Reportf(linePos(sym.line), "TEXT ·%s(SB): frame size %d is not %d-byte aligned", sym.name, sym.frame, asmWordSize)
			}
			if sym.argSize >= 0 && sym.argSize != layout.argSize {
				pass.Reportf(linePos(sym.line), "TEXT ·%s(SB): wrong argument size %d; Go declaration needs %d", sym.name, sym.argSize, layout.argSize)
			}
			for _, ref := range sym.fpRefs {
				want, ok := layout.offsets[ref.name]
				if !ok {
					pass.Reportf(linePos(ref.line), "TEXT ·%s(SB): unknown parameter %s in %s+%d(FP)", sym.name, ref.name, ref.name, ref.off)
					continue
				}
				if ref.off != want {
					pass.Reportf(linePos(ref.line), "TEXT ·%s(SB): invalid offset %s+%d(FP); expected %s+%d(FP)", sym.name, ref.name, ref.off, ref.name, want)
				}
			}
		}
	}

	// The reverse direction: a body-less declaration with no TEXT symbol
	// links, but calls jump to address zero.
	for name, fd := range decls {
		if !implemented[name] {
			pass.Reportf(fd.Pos(), "func %s is declared without a body but no TEXT ·%s symbol exists in the package assembly", name, name)
		}
	}
	return nil
}

// parseAsmSymbols extracts TEXT blocks and their FP operand references.
// Comments (//-to-end-of-line) are stripped before matching so prose
// like "// func minPlusAccum32AVX512(c, a, pk []float64, stride int)"
// cannot contribute phantom operands.
func parseAsmSymbols(data []byte) []asmSymbol {
	var syms []asmSymbol
	var cur *asmSymbol
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.Index(line, "//"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if m := asmTextRE.FindStringSubmatch(line); m != nil {
			frame, _ := strconv.ParseInt(m[2], 10, 64)
			argSize := int64(-1)
			if m[3] != "" {
				argSize, _ = strconv.ParseInt(m[3], 10, 64)
			}
			syms = append(syms, asmSymbol{name: m[1], frame: frame, argSize: argSize, line: i + 1})
			cur = &syms[len(syms)-1]
			continue
		}
		if cur == nil {
			continue
		}
		for _, m := range asmFPRE.FindAllStringSubmatch(line, -1) {
			off, _ := strconv.ParseInt(m[2], 10, 64)
			cur.fpRefs = append(cur.fpRefs, asmFPRef{name: m[1], off: off, line: i + 1})
		}
	}
	return syms
}

// computeASMLayout lays out a Go signature in the amd64 ABI0 frame:
// parameters first in declaration order at naturally aligned offsets,
// then results starting at the next word boundary. Returns ok=false
// when a parameter type has no layout rule here.
func computeASMLayout(sig *types.Signature) (asmLayout, bool) {
	layout := asmLayout{offsets: map[string]int64{}}
	off := int64(0)

	place := func(name string, t types.Type) bool {
		size, align, comps, ok := asmTypeLayout(t)
		if !ok {
			return false
		}
		if r := off % align; r != 0 {
			off += align - r
		}
		p := asmParam{name: name, off: off, comps: comps}
		layout.params = append(layout.params, p)
		for i, c := range comps {
			layout.offsets[name+c.suffix] = off + c.off
			if i == 0 && c.suffix != "" {
				// The bare name addresses the leading word (vet's asmdecl
				// accepts c+0(FP) as an alias for c_base+0(FP)).
				layout.offsets[name] = off + c.off
			}
		}
		if len(comps) == 0 {
			layout.offsets[name] = off
		}
		off += size
		return true
	}

	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		v := params.At(i)
		name := v.Name()
		if name == "" || name == "_" {
			name = "unnamed" + strconv.Itoa(i)
		}
		if !place(name, v.Type()) {
			return layout, false
		}
	}
	results := sig.Results()
	if results.Len() > 0 {
		if r := off % asmWordSize; r != 0 {
			off += asmWordSize - r
		}
		for i := 0; i < results.Len(); i++ {
			v := results.At(i)
			name := v.Name()
			if name == "" || name == "_" {
				name = "ret"
				if results.Len() > 1 {
					name = "ret" + strconv.Itoa(i)
				}
			}
			if !place(name, v.Type()) {
				return layout, false
			}
		}
	}
	layout.argSize = off
	return layout, true
}

// asmTypeLayout returns size, alignment, and addressable components of
// a type in the amd64 ABI0 frame.
func asmTypeLayout(t types.Type) (size, align int64, comps []asmComp, ok bool) {
	switch t := t.Underlying().(type) {
	case *types.Slice:
		return 24, 8, []asmComp{
			{"_base", 0, 8}, {"_len", 8, 8}, {"_cap", 16, 8},
		}, true
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return 8, 8, nil, true
	case *types.Basic:
		switch t.Kind() {
		case types.Bool, types.Int8, types.Uint8:
			return 1, 1, nil, true
		case types.Int16, types.Uint16:
			return 2, 2, nil, true
		case types.Int32, types.Uint32, types.Float32:
			return 4, 4, nil, true
		case types.Int, types.Uint, types.Int64, types.Uint64, types.Uintptr, types.Float64, types.UnsafePointer:
			return 8, 8, nil, true
		case types.String:
			return 16, 8, []asmComp{{"_base", 0, 8}, {"_len", 8, 8}}, true
		}
	}
	return 0, 0, nil, false
}
