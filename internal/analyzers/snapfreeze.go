package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// SnapFreeze enforces the copy-on-write snapshot discipline of the
// live-update pipeline (internal/core/liveupdate.go): once a *Factor
// has been published into a Patched snapshot (assigned to its Factor
// field), it is shared with concurrent readers through the atomic
// engine swap and must never be written again. Legal mutation happens
// only before publication, on the private clone cowClone returns. The
// analyzer tracks publication per function with a forward may-analysis
// (including simple aliases), and flags any post-publication write:
// mutator method calls (resetBlocks, scatterEdges, injectMin,
// reeliminate, eliminate), Set/Fill on the factor's diag/up/down
// blocks, and direct element stores — plus any write reached through a
// `.Factor` selector off a Patched value, which is a published factor
// by definition.
var SnapFreeze = &analysis.Analyzer{
	Name: "snapfreeze",
	Doc:  "flags writes to a *Factor after it has been published into a Patched snapshot; published factors are frozen, mutate the COW clone before publishing",
	Run:  runSnapFreeze,
}

// snapMutators are the Factor methods that write the factorization.
var snapMutators = map[string]bool{
	"resetBlocks":  true,
	"scatterEdges": true,
	"injectMin":    true,
	"reeliminate":  true,
	"eliminate":    true,
}

// snapBlockFields are the Factor fields holding mutable block storage.
var snapBlockFields = map[string]bool{
	"diag": true,
	"up":   true,
	"down": true,
}

// snapBlockWriters are the block-level write methods.
var snapBlockWriters = map[string]bool{
	"Set":  true,
	"Fill": true,
}

func runSnapFreeze(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			runSnapFreezeFunc(pass, fd)
		}
	}
	return nil
}

func runSnapFreezeFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	aliases := analysis.AliasClasses(fd.Body, pass.TypesInfo)
	root := func(obj types.Object) types.Object {
		if r, ok := aliases[obj]; ok {
			return r
		}
		return obj
	}
	identObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if o := pass.TypesInfo.Defs[id]; o != nil {
			return o
		}
		return pass.TypesInfo.Uses[id]
	}

	// publishGen yields the alias-class roots published at a node:
	// `p.Factor = v` with p a Patched, and Patched{Factor: v} literals.
	publishGen := func(n ast.Node) []types.Object {
		var published []ast.Expr
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Factor" || !isPatched(pass, sel.X) || i >= len(n.Rhs) {
					continue
				}
				published = append(published, n.Rhs[i])
			}
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; !ok || !isPatchedType(tv.Type) {
				return nil
			}
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Factor" {
					published = append(published, kv.Value)
				}
			}
		}
		var out []types.Object
		for _, e := range published {
			if obj := identObj(e); obj != nil && isFactorObj(obj) {
				out = append(out, root(obj))
			}
		}
		return out
	}

	var may *analysis.MaySet // built lazily: most functions never publish
	published := func(pos token.Pos, e ast.Expr) bool {
		obj := identObj(e)
		if obj == nil || !isFactorObj(obj) {
			return false
		}
		if may == nil {
			may = analysis.NewMaySet(analysis.NewCFG(fd.Body), publishGen)
		}
		return may.Has(pos, root(obj))
	}

	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "%s after the factor was published into a Patched snapshot; published factors are shared with concurrent readers and frozen — mutate the cowClone before publishing, or annotate with //lint:ignore snapfreeze <why this write is safe>", what)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch {
			case snapMutators[sel.Sel.Name]:
				if throughPatchedFactor(pass, sel.X) {
					report(n.Pos(), "mutator call "+sel.Sel.Name+" through a Patched snapshot's Factor")
				} else if published(n.Pos(), sel.X) {
					report(n.Pos(), "mutator call "+sel.Sel.Name+" on "+types.ExprString(sel.X))
				}
			case snapBlockWriters[sel.Sel.Name]:
				base, ok := factorBlockBase(sel.X)
				if !ok {
					return true
				}
				if throughPatchedFactor(pass, base) {
					report(n.Pos(), "block write "+sel.Sel.Name+" through a Patched snapshot's Factor")
				} else if published(n.Pos(), base) {
					report(n.Pos(), "block write "+sel.Sel.Name+" on "+types.ExprString(base))
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
				if !ok || !snapBlockFields[sel.Sel.Name] {
					continue
				}
				if throughPatchedFactor(pass, sel.X) {
					report(lhs.Pos(), "block store through a Patched snapshot's Factor")
				} else if published(lhs.Pos(), sel.X) {
					report(lhs.Pos(), "block store on "+types.ExprString(sel.X))
				}
			}
		}
		return true
	})
}

// factorBlockBase unwraps f.diag[k] / f.up[i] / f.down[i] index
// expressions, returning the factor-valued base expression f.
func factorBlockBase(e ast.Expr) (ast.Expr, bool) {
	idx, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return nil, false
	}
	sel, ok := ast.Unparen(idx.X).(*ast.SelectorExpr)
	if !ok || !snapBlockFields[sel.Sel.Name] {
		return nil, false
	}
	return sel.X, true
}

// throughPatchedFactor reports whether the expression reaches its value
// through `<patched>.Factor` — i.e. it names the published snapshot's
// factor no matter what local flow says.
func throughPatchedFactor(pass *analysis.Pass, e ast.Expr) bool {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == "Factor" && isPatched(pass, x.X) {
				return true
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		default:
			return false
		}
	}
}

// isPatched reports whether the expression's type is (a pointer to) the
// named type Patched.
func isPatched(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && isPatchedType(tv.Type)
}

func isPatchedType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() == "Patched"
	}
	return false
}

// isFactorObj reports whether obj is a variable of type (pointer to)
// the named type Factor.
func isFactorObj(obj types.Object) bool {
	t := obj.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() == "Factor"
	}
	return false
}
