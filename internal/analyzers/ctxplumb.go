package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// CtxPlumb enforces the context-plumbing discipline from PR 3: once a
// caller has handed a function a context (SolveCtx, NewFactorCtx, ...),
// that context must flow through every cancellable call below it.
// Two patterns break the chain and are flagged inside any library
// function that has a context.Context parameter in scope:
//
//  1. Calling context.Background() or context.TODO(), which silently
//     detaches the subtree from cancellation. Where detaching is the
//     point (e.g. a graceful-drain window that must outlive the
//     cancelled serving context), context.WithoutCancel(ctx) says so
//     explicitly and keeps the values.
//  2. Calling Foo(...) when the callee's package also exports
//     FooCtx(ctx, ...): the ctx-less convenience wrapper is for leaf
//     callers without a context, not for code that has one to give.
//
// Adapters that introduce a fresh background context at the API
// boundary (superfw.Solve -> SolveCtx) have no ctx parameter and are
// not flagged.
var CtxPlumb = &analysis.Analyzer{
	Name: "ctxplumb",
	Doc:  "flags dropped contexts: Background()/TODO() or ctx-less sibling calls inside functions that hold a ctx",
	Run:  runCtxPlumb,
}

func runCtxPlumb(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // entry points legitimately mint root contexts
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasCtxParam(pass, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCtxCall(pass, call)
				return true
			})
		}
	}
	return nil
}

func checkCtxCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	var obj types.Object
	if ok {
		obj = pass.TypesInfo.Uses[sel.Sel]
	} else if id, ok2 := ast.Unparen(call.Fun).(*ast.Ident); ok2 {
		obj = pass.TypesInfo.Uses[id]
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
		pass.Reportf(call.Pos(), "context.%s() inside a function that has a ctx in scope detaches this subtree from cancellation; pass ctx, or use context.WithoutCancel(ctx) to detach deliberately", fn.Name())
		return
	}
	// Ctx-less sibling: pkg exports fn.Name()+"Ctx" taking a context
	// first. Methods are resolved through their receiver's package scope
	// only when declared at package level, which covers this repo.
	if strings.HasSuffix(fn.Name(), "Ctx") {
		return
	}
	sibling, ok := fn.Pkg().Scope().Lookup(fn.Name() + "Ctx").(*types.Func)
	if !ok {
		return
	}
	sig, ok := sibling.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 || !isContextType(sig.Params().At(0).Type()) {
		return
	}
	pass.Reportf(call.Pos(), "%s.%s drops the ctx in scope; call %sCtx(ctx, ...) so cancellation reaches this subtree", fn.Pkg().Name(), fn.Name(), fn.Name())
}

// hasCtxParam reports whether fd declares a parameter (or receiver) of
// type context.Context.
func hasCtxParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
