package analyzers

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// AliasCheck guards the SemiringGemm aliasing contract. The adaptive
// GEMM engine allows C to alias A or B only when the other operand is a
// closed block with a zero diagonal (the panel updates of the supernodal
// factorization rely on this, see internal/semiring/gemm.go); every
// other aliased call is a correctness bug that the runtime overlap veto
// only catches on the i-shard dispatch path — the serial dense and
// streaming paths execute aliased reads silently. This analyzer flags
// every call in the SemiringGemm family whose C argument is
// syntactically identical to A or B, forcing each in-place call site to
// either restructure or carry a //lint:ignore aliascheck annotation
// citing the zero-diagonal closure that makes it legal. The set of
// legal in-place sites is thereby enumerable by grep, the same way the
// paper's §4 enumerates which blocks may be touched concurrently.
var AliasCheck = &analysis.Analyzer{
	Name: "aliascheck",
	Doc:  "flags SemiringGemm-family calls whose C argument syntactically aliases A or B",
	Run:  runAliasCheck,
}

// gemmFamily names every entry point with MulAdd semantics: package
// functions in internal/semiring and the Kernels function fields they
// are bound to. Matching is by name so that calls through the
// semiring.Kernels vtable (K.MulAdd) are caught as well as direct calls.
var gemmFamily = map[string]bool{
	"MinPlusMulAdd":          true,
	"MinPlusMulAddSerial":    true,
	"MinPlusMulAddReference": true,
	"MinPlusMulAddPaths":     true,
	"MaxMinMulAdd":           true,
	"MaxMinMulAddSerial":     true,
	"MaxMinMulAddPaths":      true,
	"MulAdd":                 true,
	"MulAddSerial":           true,
	"MulAddPaths":            true,
}

// packedFamily names the fused-pipeline entry points that consume a
// pre-packed B panel (C, A Mat, P *PackedPanel, ...). The packed
// operand is a snapshot, so only C-aliases-A is an aliasing hazard
// here; C aliasing the panel's SOURCE matrix is invisible syntactically
// and is covered by the PackPanel contract instead.
var packedFamily = map[string]bool{
	"MinPlusMulAddPacked":      true,
	"MaxMinMulAddPacked":       true,
	"MinPlusMulAddPathsPacked": true,
	"MaxMinMulAddPathsPacked":  true,
	"MulAddPacked":             true,
	"MulAddPathsPacked":        true,
}

func runAliasCheck(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			switch {
			case gemmFamily[name] && len(call.Args) >= 3:
				c := types.ExprString(call.Args[0])
				if a := types.ExprString(call.Args[1]); a == c {
					pass.Reportf(call.Pos(), "%s: C argument %s aliases A; in-place SemiringGemm is only legal against a closed zero-diagonal block — restructure or annotate with //lint:ignore aliascheck <why the closure holds>", name, c)
				}
				if b := types.ExprString(call.Args[2]); b == c {
					pass.Reportf(call.Pos(), "%s: C argument %s aliases B; in-place SemiringGemm is only legal against a closed zero-diagonal block — restructure or annotate with //lint:ignore aliascheck <why the closure holds>", name, c)
				}
			case packedFamily[name] && len(call.Args) >= 2:
				c := types.ExprString(call.Args[0])
				if a := types.ExprString(call.Args[1]); a == c {
					pass.Reportf(call.Pos(), "%s: C argument %s aliases A; the fused packed sweep reads A rows while writing C rows — restructure or annotate with //lint:ignore aliascheck <why the closure holds>", name, c)
				}
			}
			return true
		})
	}
	return nil
}

// calleeName returns the final identifier of a call's function
// expression: Foo(...) -> "Foo", pkg.Foo(...) -> "Foo", k.MulAdd(...)
// -> "MulAdd". Calls through other expression forms return "".
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
