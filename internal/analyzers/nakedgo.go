package analyzers

import (
	"go/ast"
	"strings"

	"repro/internal/analysis"
)

// NakedGo enforces the panic-containment contract from PR 3: every
// worker goroutine must be spawned through internal/par (par.For,
// par.RunDAG, par.Group, or par.Do for sequential attribution), whose
// schedulers capture worker panics as *par.TaskPanic with task identity
// and re-raise them once on the caller. A raw `go` statement anywhere
// else creates a goroutine whose panic kills the process with an
// anonymous stack — exactly the failure mode the fault-tolerance work
// eliminated. Long-lived service goroutines that outlive their caller
// (e.g. an http.Server accept loop) are the documented exception and
// carry a //lint:ignore nakedgo annotation explaining why containment
// does not apply.
var NakedGo = &analysis.Analyzer{
	Name: "nakedgo",
	Doc:  "flags raw go statements outside internal/par, which bypass TaskPanic containment",
	Run:  runNakedGo,
}

func runNakedGo(pass *analysis.Pass) error {
	path := pass.Pkg.Path()
	if path == "repro/internal/par" || strings.HasSuffix(path, "internal/par") {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Go, "naked go statement outside internal/par: a panic in this goroutine escapes TaskPanic containment; use par.For/par.RunDAG/par.Group, or annotate a long-lived service goroutine with //lint:ignore nakedgo <reason>")
			}
			return true
		})
	}
	return nil
}
