package analyzers_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analyzers"
)

func TestNakedGo(t *testing.T) {
	analysistest.Run(t, analyzers.NakedGo, "nakedgo", "nakedgo/internal/par")
}

func TestAliasCheck(t *testing.T) {
	analysistest.Run(t, analyzers.AliasCheck, "aliascheck")
}

func TestCtxPlumb(t *testing.T) {
	analysistest.Run(t, analyzers.CtxPlumb, "ctxplumb")
}

func TestNanGuard(t *testing.T) {
	analysistest.Run(t, analyzers.NanGuard, "nanguard")
}

func TestAtomicCheck(t *testing.T) {
	analysistest.Run(t, analyzers.AtomicCheck, "atomiccheck")
}

func TestAsmAbi(t *testing.T) {
	analysistest.Run(t, analyzers.AsmAbi, "asmabi")
}

func TestWalOrder(t *testing.T) {
	analysistest.Run(t, analyzers.WalOrder, "walorder")
}

func TestGenMono(t *testing.T) {
	analysistest.Run(t, analyzers.GenMono, "genmono")
}

func TestSnapFreeze(t *testing.T) {
	analysistest.Run(t, analyzers.SnapFreeze, "snapfreeze")
}
