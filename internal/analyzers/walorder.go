package analyzers

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// WalOrder machine-checks the durability protocol's commit ordering
// (DESIGN.md §9): a WAL append — whose Record/fsync return is the
// commit point — must reach program order before the state it makes
// durable is published, on every path. Publication here means storing
// the engine pointer (`.eng.Store`), advancing an authoritative
// generation (`.generation.Store` / `.expectedGen.Store` /
// CompareAndSwap), or acknowledging success over HTTP. The check is
// path-sensitive through nil guards: on the branch where the journal
// or durable layer is provably nil, there is nothing to make durable
// and the obligation is vacuously discharged — that is precisely the
// `if s.durable != nil { append } ... swap` shape swapPatched uses.
//
// Append events are recognized by callee (Append/AppendMarker/
// AppendCommitted on a Journal or Durable), by a cross-package fact
// exported for any function that performs one, and transitively
// through the intra-package call graph. A function is only analyzed if
// it both publishes and is durability-aware (contains an append or a
// journal nil guard), so pure in-memory serving paths stay out of
// scope.
var WalOrder = &analysis.Analyzer{
	Name: "walorder",
	Doc:  "verifies a WAL append precedes every engine-pointer swap, generation advance, and HTTP success ack on all paths in durability-aware functions",
	Run:  runWalOrder,
}

// walAppendNames are the method names whose call constitutes the
// durable commit point.
var walAppendNames = map[string]bool{
	"Append":          true,
	"AppendMarker":    true,
	"AppendCommitted": true,
}

// walDurableTypes are the named types owning the append methods (and
// whose nil-ness discharges the obligation).
var walDurableTypes = map[string]bool{
	"Journal": true,
	"Durable": true,
}

// walSwapFields are the atomic fields whose Store publishes state.
var walSwapFields = map[string]bool{
	"eng":         true,
	"generation":  true,
	"expectedGen": true,
}

// walAppenderFact marks an exported function that performs (possibly
// conditionally) a WAL append, so dependent packages treat calls to it
// as append events.
type walAppenderFact struct {
	Appends bool `json:"appends"`
}

func runWalOrder(pass *analysis.Pass) error {
	cg := analysis.NewCallGraph(pass)

	// isDirectAppend: a call that syntactically commits to the WAL.
	isDirectAppend := func(call *ast.CallExpr) bool {
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil || !walAppendNames[fn.Name()] {
			return false
		}
		return walDurableTypes[recvTypeName(fn)]
	}
	// Fact-imported appenders from dependency packages.
	isFactAppend := func(call *ast.CallExpr) bool {
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return false
		}
		var fact walAppenderFact
		return pass.ImportFact(fn, &fact) && fact.Appends
	}

	// Package-local functions that may append, transitively. Seeded from
	// direct and fact appends in each body, then closed over the call
	// graph.
	localAppends := map[*types.Func]bool{}
	for fn, decl := range cg.Decl {
		direct := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if direct {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && (isDirectAppend(call) || isFactAppend(call)) {
				direct = true
			}
			return true
		})
		if direct {
			localAppends[fn] = true
		}
	}
	for fn := range cg.Decl {
		if !localAppends[fn] && cg.Reaches(fn, func(callee *types.Func) bool { return localAppends[callee] }) {
			localAppends[fn] = true
		}
	}
	for fn := range localAppends {
		pass.ExportFact(fn, walAppenderFact{Appends: true})
	}

	isAppendCall := func(call *ast.CallExpr) bool {
		if isDirectAppend(call) || isFactAppend(call) {
			return true
		}
		fn := analysis.CalleeFunc(pass.TypesInfo, call)
		return fn != nil && localAppends[fn]
	}
	isEvent := func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		return ok && isAppendCall(call)
	}
	// A nil journal/durable has nothing to append: the edge where the
	// guard proves it nil discharges the obligation.
	vacuous := func(cond ast.Expr, branch bool) bool {
		be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		var x ast.Expr
		switch {
		case isNilIdent(be.Y):
			x = be.X
		case isNilIdent(be.X):
			x = be.Y
		default:
			return false
		}
		tv, ok := pass.TypesInfo.Types[x]
		if !ok || !isDurablePtr(tv.Type) {
			return false
		}
		switch be.Op.String() {
		case "!=":
			return !branch // false branch: X is nil
		case "==":
			return branch // true branch: X is nil
		}
		return false
	}

	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var swaps, acks []*ast.CallExpr
			hasAppend, hasGuard, hasDirect := false, false, false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if isSwapCall(n) {
						swaps = append(swaps, n)
					}
					if isAckCall(pass, n) {
						acks = append(acks, n)
					}
					if isAppendCall(n) {
						hasAppend = true
					}
					if isDirectAppend(n) || isFactAppend(n) {
						hasDirect = true
					}
				case *ast.BinaryExpr:
					if op := n.Op.String(); op == "==" || op == "!=" {
						x := n.X
						if isNilIdent(n.X) {
							x = n.Y
						} else if !isNilIdent(n.Y) {
							break
						}
						if tv, ok := pass.TypesInfo.Types[x]; ok && isDurablePtr(tv.Type) {
							hasGuard = true
						}
					}
				}
				return true
			})
			if len(swaps)+len(acks) == 0 || (!hasAppend && !hasGuard) {
				continue
			}
			cfg := analysis.NewCFG(fd.Body)
			mp := analysis.NewMustPrecede(cfg, isEvent, vacuous)
			for _, call := range swaps {
				if !mp.At(call.Pos()) {
					pass.Reportf(call.Pos(), "state publish %s without a preceding WAL append on some path; the append's fsync return is the commit point and must come first — reorder or annotate with //lint:ignore walorder <why durability holds>", types.ExprString(call.Fun))
				}
			}
			// HTTP acks are only meaningful where this function itself
			// owns the commit (a direct append): transitive helpers own
			// their own ordering.
			if hasDirect {
				for _, call := range acks {
					if !mp.At(call.Pos()) {
						pass.Reportf(call.Pos(), "HTTP success acknowledgement without a preceding WAL append on some path; a client treats the ack as durable — reorder or annotate with //lint:ignore walorder <why durability holds>")
					}
				}
			}
		}
	}
	return nil
}

// isSwapCall matches X.<field>.Store(...) / CompareAndSwap(...) where
// field is one of the published atomics.
func isSwapCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Store" && sel.Sel.Name != "CompareAndSwap" && sel.Sel.Name != "Swap") {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return walSwapFields[inner.Sel.Name]
}

// isAckCall matches writeJSON(..., http.StatusOK, ...) — the repo's
// single success-acknowledgement helper on admin endpoints.
func isAckCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if calleeName(call) != "writeJSON" {
		return false
	}
	for _, arg := range call.Args {
		if sel, ok := ast.Unparen(arg).(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "http" && sel.Sel.Name == "StatusOK" {
				return true
			}
		}
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// isDurablePtr reports whether t is (a pointer to) one of the durable
// layer's named types.
func isDurablePtr(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return walDurableTypes[n.Obj().Name()]
	}
	return false
}

// recvTypeName returns the receiver's named-type name for a method, or
// "" for package functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
