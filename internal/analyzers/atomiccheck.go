package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// AtomicCheck guards the observability counters: the kernel stats block
// in internal/semiring/stats.go and the serve metrics are plain structs
// of sync/atomic typed fields updated concurrently by every worker and
// scraped by /metrics, so a single plain load or store anywhere tears
// the whole scheme (and is a data race the race detector only sees on
// paths that execute). The analyzer enforces, in every package:
//
//   - a value of a sync/atomic type (atomic.Uint64, atomic.Pointer[T],
//     ...) may only be used as the receiver of its own methods or have
//     its address taken; copying or comparing it bypasses the atomic
//     API (and copies internal state non-atomically).
//   - a field or variable that is accessed through the function-style
//     API (atomic.AddUint64(&x.n, 1), ...) anywhere in the package must
//     be accessed that way everywhere: mixing atomic and plain access
//     to the same location is the race the typed API was introduced to
//     make unrepresentable.
//
// Unlike most of the suite this analyzer includes _test.go files: test
// goroutines race against production counters exactly like any other
// reader.
var AtomicCheck = &analysis.Analyzer{
	Name: "atomiccheck",
	Doc:  "flags plain or mixed access to atomic counter fields (kernel stats, serve metrics)",
	Run:  runAtomicCheck,
}

func runAtomicCheck(pass *analysis.Pass) error {
	// Pass 1: collect every location targeted by a function-style
	// sync/atomic call, remembering the exact AST nodes so pass 2 can
	// tell sanctioned uses from plain ones.
	atomicTarget := map[types.Object]string{} // object -> atomic func name
	sanctioned := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn, ok := calleeFunc(pass, call)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // typed-API method, handled below
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			target := ast.Unparen(un.X)
			if obj := referencedObject(pass, target); obj != nil {
				if _, seen := atomicTarget[obj]; !seen {
					atomicTarget[obj] = fn.Name()
				}
				sanctioned[target] = true
			}
			return true
		})
	}

	// Pass 2: flag typed-atomic misuse and plain access to pass-1
	// targets. A parent stack distinguishes method-receiver and
	// address-of positions from value copies.
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch x := n.(type) {
			case *ast.SelectorExpr:
				sel, ok := pass.TypesInfo.Selections[x]
				if ok && sel.Kind() == types.FieldVal && isAtomicType(sel.Type()) && !allowedAtomicUse(pass, stack) {
					pass.Reportf(x.Pos(), "atomic field %s used as a plain value; all access must go through its atomic methods (Load/Store/Add/Swap/CompareAndSwap) or take its address", types.ExprString(x))
				}
			case *ast.Ident:
				obj := pass.TypesInfo.Uses[x]
				if obj == nil {
					return true
				}
				if _, isVar := obj.(*types.Var); isVar && isAtomicType(obj.Type()) && !isFieldIdent(stack) && !allowedAtomicUse(pass, stack) {
					pass.Reportf(x.Pos(), "atomic variable %s used as a plain value; all access must go through its atomic methods", x.Name)
				}
			}
			// Mixed function-style/plain access.
			if obj := referencedObject(pass, n); obj != nil {
				if fn, tracked := atomicTarget[obj]; tracked && !sanctioned[n] && !addrTaken(stack) {
					pass.Reportf(n.Pos(), "plain access to %s, which is accessed with sync/atomic.%s elsewhere in this package; mixed atomic/plain access races — use the atomic API everywhere (or migrate the field to a sync/atomic type)", types.ExprString(n.(ast.Expr)), fn)
				}
			}
			return true
		})
	}
	return nil
}

// referencedObject resolves an lvalue-ish expression (Ident or field
// SelectorExpr) to its object.
func referencedObject(pass *analysis.Pass, n ast.Node) types.Object {
	switch x := n.(type) {
	case *ast.Ident:
		if obj, ok := pass.TypesInfo.Uses[x].(*types.Var); ok && !obj.IsField() {
			return obj
		}
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[x]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	}
	return nil
}

// isAtomicType reports whether t is a named type from sync/atomic.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// allowedAtomicUse inspects the parent chain of the current node (the
// last stack element) and reports whether the atomic value is used in a
// sanctioned position: receiver of a method selection, or operand of &.
func allowedAtomicUse(pass *analysis.Pass, stack []ast.Node) bool {
	self := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			self = p
			continue
		case *ast.SelectorExpr:
			if p.X != self {
				return false // we are the .Sel of a parent selection; keep it
			}
			sel, ok := pass.TypesInfo.Selections[p]
			return ok && sel.Kind() == types.MethodVal
		case *ast.UnaryExpr:
			return p.Op == token.AND
		default:
			return false
		}
	}
	return false
}

// isFieldIdent reports whether the ident at the top of the stack is the
// .Sel of a SelectorExpr (handled by the SelectorExpr case) rather than
// a standalone reference.
func isFieldIdent(stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	p, ok := stack[len(stack)-2].(*ast.SelectorExpr)
	return ok && p.Sel == stack[len(stack)-1]
}

// addrTaken reports whether the current node (last stack element) is
// the operand of &. Taking the address is not itself an access —
// &x.n handed to a helper is how the function-style API composes — so
// only reads and writes of the location are flagged.
func addrTaken(stack []ast.Node) bool {
	self := stack[len(stack)-1]
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			self = p
			continue
		case *ast.UnaryExpr:
			return p.Op == token.AND && p.X == self
		default:
			return false
		}
	}
	return false
}
