// Package gen provides seeded synthetic graph generators standing in for
// the paper's test matrices (Table 3). The paper's suite comes from
// SuiteSparse, SNAP, DIMACS10 and synthetic generators; this repository
// is offline, so each structural class is reproduced by a generator:
//
//	grid / mesh graphs        → Grid2D, Grid3D          (nd6k, fe_* analogues)
//	planar triangulations     → GeometricKNN            (delaunay_n* analogues)
//	road networks             → RoadNetwork             (luxembourg_osm analogue)
//	power networks            → PowerGrid               (USpowerGrid, OPF_6000)
//	optimization matrices     → Finance                 (finan512, net4-1 analogues)
//	random geometric          → GeometricRadius         (rgg2d/rgg3d)
//	hypercube                 → Hypercube               (hypercube_14)
//	preferential attachment   → BarabasiAlbert          (EB_* adversarial cases)
//	random sparse             → ErdosRenyi, WattsStrogatz (G67, expander-like)
//	social networks           → CommunityGraph          (email-Enron analogue)
//
// All generators are deterministic for a fixed seed.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// WeightMode selects how edge weights are assigned.
type WeightMode int

const (
	// WeightUnit gives every edge weight 1.
	WeightUnit WeightMode = iota
	// WeightUniform draws weights uniformly from [0.1, 1.1).
	WeightUniform
	// WeightEuclidean uses the Euclidean distance between embedded
	// endpoints (geometric generators only; others fall back to uniform).
	WeightEuclidean
)

func uniformWeight(rng *rand.Rand) float64 { return 0.1 + rng.Float64() }

// Grid2D returns the w×h grid graph (the nested-dissection model problem;
// its exact separators make it the calibration workload for Table 2).
func Grid2D(w, h int, mode WeightMode, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	id := func(x, y int) int { return y*w + x }
	edges := make([]graph.Edge, 0, 2*w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x+1, y), W: gridWeight(mode, rng)})
			}
			if y+1 < h {
				edges = append(edges, graph.Edge{U: id(x, y), V: id(x, y+1), W: gridWeight(mode, rng)})
			}
		}
	}
	return graph.MustFromEdges(w*h, edges)
}

// Grid3D returns the x×y×z grid graph (separator Θ(n^(2/3)); the 3D mesh
// class of nd6k / fe_tooth).
func Grid3D(x, y, z int, mode WeightMode, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	id := func(i, j, k int) int { return (k*y+j)*x + i }
	var edges []graph.Edge
	for k := 0; k < z; k++ {
		for j := 0; j < y; j++ {
			for i := 0; i < x; i++ {
				if i+1 < x {
					edges = append(edges, graph.Edge{U: id(i, j, k), V: id(i+1, j, k), W: gridWeight(mode, rng)})
				}
				if j+1 < y {
					edges = append(edges, graph.Edge{U: id(i, j, k), V: id(i, j+1, k), W: gridWeight(mode, rng)})
				}
				if k+1 < z {
					edges = append(edges, graph.Edge{U: id(i, j, k), V: id(i, j, k+1), W: gridWeight(mode, rng)})
				}
			}
		}
	}
	return graph.MustFromEdges(x*y*z, edges)
}

func gridWeight(mode WeightMode, rng *rand.Rand) float64 {
	if mode == WeightUnit {
		return 1
	}
	return uniformWeight(rng)
}

// Hypercube returns the d-dimensional hypercube graph on 2^d vertices.
// Its separator is Θ(n/√log n), the paper's example of a graph where
// reordering cannot reduce asymptotic cost but supernodal blocking still
// helps (hypercube_14).
func Hypercube(d int, mode WeightMode, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << d
	edges := make([]graph.Edge, 0, n*d/2)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << b)
			if v < u {
				edges = append(edges, graph.Edge{U: v, V: u, W: gridWeight(mode, rng)})
			}
		}
	}
	return graph.MustFromEdges(n, edges)
}

// points returns n uniform points in the unit dim-cube.
func points(n, dim int, rng *rand.Rand) [][]float64 {
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for d := range p {
			p[d] = rng.Float64()
		}
		pts[i] = p
	}
	return pts
}

func dist(a, b []float64) float64 {
	s := 0.0
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return math.Sqrt(s)
}

// cellGrid bins points into cells of the given side length for
// neighborhood queries.
type cellGrid struct {
	side  float64
	res   int
	dim   int
	cells map[int][]int
	pts   [][]float64
}

func newCellGrid(pts [][]float64, side float64, dim int) *cellGrid {
	res := int(math.Ceil(1 / side))
	if res < 1 {
		res = 1
	}
	cg := &cellGrid{side: 1 / float64(res), res: res, dim: dim, cells: make(map[int][]int), pts: pts}
	for i, p := range pts {
		cg.cells[cg.key(p)] = append(cg.cells[cg.key(p)], i)
	}
	return cg
}

func (cg *cellGrid) key(p []float64) int {
	k := 0
	for d := 0; d < cg.dim; d++ {
		c := int(p[d] / cg.side)
		if c >= cg.res {
			c = cg.res - 1
		}
		k = k*cg.res + c
	}
	return k
}

// forNear calls fn(j) for every point j in the 3^dim cells around p.
func (cg *cellGrid) forNear(p []float64, fn func(j int)) {
	coord := make([]int, cg.dim)
	for d := 0; d < cg.dim; d++ {
		coord[d] = int(p[d] / cg.side)
		if coord[d] >= cg.res {
			coord[d] = cg.res - 1
		}
	}
	offs := make([]int, cg.dim)
	for i := range offs {
		offs[i] = -1
	}
	for {
		key, ok := 0, true
		for d := 0; d < cg.dim; d++ {
			c := coord[d] + offs[d]
			if c < 0 || c >= cg.res {
				ok = false
				break
			}
			key = key*cg.res + c
		}
		if ok {
			for _, j := range cg.cells[key] {
				fn(j)
			}
		}
		// advance offsets odometer-style over {-1,0,1}^dim
		d := 0
		for ; d < cg.dim; d++ {
			offs[d]++
			if offs[d] <= 1 {
				break
			}
			offs[d] = -1
		}
		if d == cg.dim {
			return
		}
	}
}

// GeometricRadius returns a random geometric graph: n uniform points in
// the unit dim-cube, an edge between every pair within the given radius
// (rgg2d_14 / rgg3d_14 analogues).
func GeometricRadius(n, dim int, radius float64, mode WeightMode, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	pts := points(n, dim, rng)
	cg := newCellGrid(pts, radius, dim)
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		cg.forNear(pts[i], func(j int) {
			if j <= i {
				return
			}
			if d := dist(pts[i], pts[j]); d <= radius {
				edges = append(edges, graph.Edge{U: i, V: j, W: geomWeight(mode, rng, d)})
			}
		})
	}
	return graph.MustFromEdges(n, edges)
}

// GeometricKNN returns a symmetrized k-nearest-neighbor graph on n uniform
// points in the unit dim-cube. For dim=2 and small k this is planar-like
// with Θ(√n) separators — the stand-in for the DIMACS10 Delaunay
// triangulations (delaunay_n14/n16, fe_sphere).
func GeometricKNN(n, dim, k int, mode WeightMode, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	pts := points(n, dim, rng)
	// Expected kNN radius ~ (k/n)^(1/dim); bin at twice that and expand
	// the search ring if a point has too few candidates.
	side := math.Pow(float64(k+1)/float64(n), 1/float64(dim)) * 2
	cg := newCellGrid(pts, side, dim)
	type cand struct {
		j int
		d float64
	}
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		var cands []cand
		cg.forNear(pts[i], func(j int) {
			if j != i {
				cands = append(cands, cand{j, dist(pts[i], pts[j])})
			}
		})
		if len(cands) < k { // sparse region: brute-force fallback
			cands = cands[:0]
			for j := 0; j < n; j++ {
				if j != i {
					cands = append(cands, cand{j, dist(pts[i], pts[j])})
				}
			}
		}
		// partial selection of the k nearest
		for a := 0; a < k && a < len(cands); a++ {
			best := a
			for b := a + 1; b < len(cands); b++ {
				if cands[b].d < cands[best].d {
					best = b
				}
			}
			cands[a], cands[best] = cands[best], cands[a]
			edges = append(edges, graph.Edge{U: i, V: cands[a].j, W: geomWeight(mode, rng, cands[a].d)})
		}
	}
	return graph.MustFromEdges(n, edges)
}

func geomWeight(mode WeightMode, rng *rand.Rand, d float64) float64 {
	switch mode {
	case WeightUnit:
		return 1
	case WeightEuclidean:
		return d + 1e-9 // avoid exact-zero weights for coincident points
	default:
		return uniformWeight(rng)
	}
}

// ErdosRenyi returns a G(n, m) random graph with m = n*avgDeg/2 edges
// (expander-like for avgDeg above the connectivity threshold; the G67 /
// adversarial random class).
func ErdosRenyi(n int, avgDeg float64, mode WeightMode, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	m := int(float64(n) * avgDeg / 2)
	edges := make([]graph.Edge, 0, m)
	seen := make(map[int64]bool, m)
	for len(edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		edges = append(edges, graph.Edge{U: u, V: v, W: gridWeight(mode, rng)})
	}
	return graph.MustFromEdges(n, edges)
}

// BarabasiAlbert returns a preferential-attachment graph: each new vertex
// attaches to k existing vertices chosen proportionally to degree. This
// reproduces the paper's extended Barabási–Albert adversarial graphs
// (EB_8192_256, EB_16384_64): sparse but expander-like, with no small
// separator.
func BarabasiAlbert(n, k int, mode WeightMode, seed int64) *graph.Graph {
	if k < 1 || n <= k {
		panic("gen: BarabasiAlbert requires 1 <= k < n")
	}
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	// repeated-vertex list: vertex appears once per incident edge endpoint
	targets := make([]int, 0, 2*n*k)
	// seed clique on k+1 vertices
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			edges = append(edges, graph.Edge{U: i, V: j, W: gridWeight(mode, rng)})
			targets = append(targets, i, j)
		}
	}
	chosen := make(map[int]bool, k)
	picks := make([]int, 0, k)
	for v := k + 1; v < n; v++ {
		for id := range chosen {
			delete(chosen, id)
		}
		// Record picks in draw order (NOT map order, which Go randomizes
		// per process — the target list's order feeds later draws, so
		// map iteration would make the generator non-deterministic).
		picks = picks[:0]
		for len(chosen) < k {
			u := targets[rng.Intn(len(targets))]
			if !chosen[u] {
				chosen[u] = true
				picks = append(picks, u)
			}
		}
		for _, u := range picks {
			edges = append(edges, graph.Edge{U: u, V: v, W: gridWeight(mode, rng)})
			targets = append(targets, u, v)
		}
	}
	return graph.MustFromEdges(n, edges)
}

// WattsStrogatz returns a small-world ring lattice: n vertices each
// connected to k nearest ring neighbors, with each edge rewired with
// probability beta.
func WattsStrogatz(n, k int, beta float64, mode WeightMode, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		for off := 1; off <= k/2; off++ {
			u := (v + off) % n
			if rng.Float64() < beta {
				for {
					u = rng.Intn(n)
					if u != v {
						break
					}
				}
			}
			edges = append(edges, graph.Edge{U: v, V: u, W: gridWeight(mode, rng)})
		}
	}
	return graph.MustFromEdges(n, edges)
}

// RoadNetwork returns a road-network-like planar graph: a jittered grid
// with a fraction of edges deleted (dead ends, sparse rural areas) while
// preserving connectivity, and Euclidean-ish weights. Average degree
// lands near 2.5, matching OSM road graphs (luxembourg_osm analogue).
func RoadNetwork(w, h int, deleteFrac float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := w * h
	id := func(x, y int) int { return y*w + x }
	var all []graph.Edge
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				all = append(all, graph.Edge{U: id(x, y), V: id(x+1, y), W: 0.5 + rng.Float64()})
			}
			if y+1 < h {
				all = append(all, graph.Edge{U: id(x, y), V: id(x, y+1), W: 0.5 + rng.Float64()})
			}
		}
	}
	rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	// Keep a spanning forest first (union-find), then add the remaining
	// edges until only deleteFrac of them have been dropped.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	kept := make([]graph.Edge, 0, len(all))
	var extra []graph.Edge
	for _, e := range all {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
			kept = append(kept, e)
		} else {
			extra = append(extra, e)
		}
	}
	wantExtra := int(float64(len(all))*(1-deleteFrac)) - len(kept)
	for i := 0; i < wantExtra && i < len(extra); i++ {
		kept = append(kept, extra[i])
	}
	return graph.MustFromEdges(n, kept)
}

// PowerGrid returns a power-network-like graph: a geometric 2-NN backbone
// plus sparse long-distance transmission ties, average degree ≈ 2.7
// (USpowerGrid / OPF_6000 analogue).
func PowerGrid(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	backbone := GeometricKNN(n, 2, 2, WeightEuclidean, seed)
	edges := backbone.Edges()
	ties := n / 20
	for i := 0; i < ties; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, graph.Edge{U: u, V: v, W: 1 + rng.Float64()})
		}
	}
	return graph.MustFromEdges(n, edges)
}

// Finance returns a hierarchical optimization-style graph modeled on
// finan512: c-vertex local communities (sparse random internal wiring)
// whose hubs are linked in a ring plus a binary-tree overlay.
func Finance(communities, size int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := communities * size
	var edges []graph.Edge
	for c := 0; c < communities; c++ {
		base := c * size
		// ring within the community plus random chords
		for i := 0; i < size; i++ {
			edges = append(edges, graph.Edge{U: base + i, V: base + (i+1)%size, W: uniformWeight(rng)})
		}
		for i := 0; i < 2*size; i++ {
			u, v := base+rng.Intn(size), base+rng.Intn(size)
			if u != v {
				edges = append(edges, graph.Edge{U: u, V: v, W: uniformWeight(rng)})
			}
		}
	}
	for c := 0; c < communities; c++ {
		hub := c * size
		next := ((c + 1) % communities) * size
		edges = append(edges, graph.Edge{U: hub, V: next, W: uniformWeight(rng)})
		if p := (c - 1) / 2; c > 0 {
			edges = append(edges, graph.Edge{U: hub, V: p * size, W: uniformWeight(rng)})
		}
	}
	return graph.MustFromEdges(n, edges)
}

// CommunityGraph returns a social-network-like graph: power-law-ish
// community sizes with dense cores and random inter-community edges
// (email-Enron analogue: small separator relative to n is absent; hubs
// dominate).
func CommunityGraph(n int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges []graph.Edge
	v := 0
	var hubs []int
	for v < n {
		size := 4 + rng.Intn(60)
		if v+size > n {
			size = n - v
		}
		hub := v
		hubs = append(hubs, hub)
		for i := 1; i < size; i++ {
			edges = append(edges, graph.Edge{U: hub, V: v + i, W: uniformWeight(rng)})
			if rng.Float64() < 0.3 {
				o := v + rng.Intn(size)
				if o != v+i {
					edges = append(edges, graph.Edge{U: v + i, V: o, W: uniformWeight(rng)})
				}
			}
		}
		v += size
	}
	for i := 1; i < len(hubs); i++ {
		edges = append(edges, graph.Edge{U: hubs[i], V: hubs[rng.Intn(i)], W: uniformWeight(rng)})
		if rng.Float64() < 0.5 {
			edges = append(edges, graph.Edge{U: hubs[i], V: hubs[rng.Intn(i)], W: uniformWeight(rng)})
		}
	}
	return graph.MustFromEdges(n, edges)
}

// RMAT returns a recursive-matrix (Kronecker-style) power-law graph on
// 2^scale vertices with edgeFactor·n edges, using the standard
// (a,b,c,d) = (0.57, 0.19, 0.19, 0.05) Graph500 parameters. RMAT graphs
// are the canonical scale-free adversarial inputs: heavy-tailed degrees
// and no small separators, the class on which supernodal FW should show
// no advantage.
func RMAT(scale, edgeFactor int, mode WeightMode, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	n := 1 << scale
	m := edgeFactor * n
	const a, b, c = 0.57, 0.19, 0.19
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			r := rng.Float64()
			switch {
			case r < a: // top-left
			case r < a+b: // top-right
				v |= 1 << bit
			case r < a+b+c: // bottom-left
				u |= 1 << bit
			default: // bottom-right
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v, W: gridWeight(mode, rng)})
	}
	return graph.MustFromEdges(n, edges)
}

// Potential returns a random vertex potential p with values in
// [0, scale), for building negative-arc APSP instances. Reweighting every
// arc u→v as w'(u→v) = w(u,v) + p[u] − p[v] leaves the weight of every
// cycle unchanged (the potentials telescope), so the instance has
// negative arcs but provably no negative cycles, while the sparsity
// pattern stays symmetric — exactly the class of inputs the
// Floyd-Warshall family accepts but plain Dijkstra does not.
//
// A truly undirected negative edge is impossible without a negative
// 2-cycle (u→v→u), which the paper's problem statement precludes; the
// potential construction is the standard way (Johnson's transform run in
// reverse) to produce valid negative-weight instances.
func Potential(n int, scale float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	p := make([]float64, n)
	for i := range p {
		p[i] = rng.Float64() * scale
	}
	return p
}
