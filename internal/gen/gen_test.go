package gen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/semiring"
)

func mustValid(t *testing.T, name string, g *graph.Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatalf("%s: invalid graph: %v", name, err)
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(5, 4, WeightUnit, 1)
	mustValid(t, "grid", g)
	if g.N != 20 {
		t.Fatalf("n=%d, want 20", g.N)
	}
	// 2*w*h - w - h edges for a grid
	if want := 2*5*4 - 5 - 4; g.M() != want {
		t.Fatalf("m=%d, want %d", g.M(), want)
	}
	if !g.IsConnected() {
		t.Error("grid must be connected")
	}
	// corner degree 2, interior degree 4
	if g.Degree(0) != 2 {
		t.Error("corner degree should be 2")
	}
	if g.Degree(6) != 4 { // (1,1)
		t.Error("interior degree should be 4")
	}
}

func TestGrid3D(t *testing.T) {
	g := Grid3D(3, 4, 5, WeightUniform, 2)
	mustValid(t, "grid3d", g)
	if g.N != 60 {
		t.Fatal("n wrong")
	}
	if !g.IsConnected() {
		t.Error("3d grid must be connected")
	}
	want := 2*4*5 + 3*3*5 + 3*4*4 // (x-1)yz + x(y-1)z + xy(z-1)
	if g.M() != want {
		t.Fatalf("m=%d, want %d", g.M(), want)
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(5, WeightUnit, 3)
	mustValid(t, "hypercube", g)
	if g.N != 32 || g.M() != 32*5/2 {
		t.Fatalf("n=%d m=%d", g.N, g.M())
	}
	for v := 0; v < g.N; v++ {
		if g.Degree(v) != 5 {
			t.Fatal("hypercube is 5-regular")
		}
	}
}

func TestGeometricRadius(t *testing.T) {
	g := GeometricRadius(300, 2, 0.12, WeightEuclidean, 4)
	mustValid(t, "rgg", g)
	if g.N != 300 {
		t.Fatal("n wrong")
	}
	if g.M() == 0 {
		t.Fatal("radius graph should have edges")
	}
	// Euclidean weights in (0, sqrt(2)]
	for _, w := range g.Wgt {
		if w <= 0 || w > 0.12+1e-6 {
			t.Fatalf("weight %g outside (0, radius]", w)
		}
	}
}

func TestGeometricKNN(t *testing.T) {
	g := GeometricKNN(400, 2, 4, WeightUniform, 5)
	mustValid(t, "knn", g)
	if g.N != 400 {
		t.Fatal("n wrong")
	}
	// Every vertex has degree ≥ k (k out-edges, symmetrized).
	for v := 0; v < g.N; v++ {
		if g.Degree(v) < 4 {
			t.Fatalf("vertex %d degree %d < k", v, g.Degree(v))
		}
	}
	// Average degree stays near 2k for a kNN graph.
	if avg := g.AvgDegree(); avg > 12 {
		t.Errorf("avg degree %g unexpectedly high", avg)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(500, 6, WeightUniform, 6)
	mustValid(t, "er", g)
	if g.M() != 1500 {
		t.Fatalf("m=%d, want 1500", g.M())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(300, 4, WeightUniform, 7)
	mustValid(t, "ba", g)
	if g.N != 300 {
		t.Fatal("n wrong")
	}
	if !g.IsConnected() {
		t.Error("BA graph must be connected")
	}
	// Preferential attachment: max degree far above the mean.
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 3*g.AvgDegree() {
		t.Errorf("expected a hub: max degree %d vs avg %g", maxDeg, g.AvgDegree())
	}
}

func TestBarabasiAlbertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k >= n must panic")
		}
	}()
	BarabasiAlbert(3, 3, WeightUnit, 1)
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(200, 6, 0.1, WeightUniform, 8)
	mustValid(t, "ws", g)
	if g.N != 200 {
		t.Fatal("n wrong")
	}
	if g.AvgDegree() < 5 || g.AvgDegree() > 7 {
		t.Errorf("avg degree %g should be near k=6", g.AvgDegree())
	}
}

func TestRoadNetwork(t *testing.T) {
	g := RoadNetwork(30, 30, 0.3, 9)
	mustValid(t, "road", g)
	if !g.IsConnected() {
		t.Fatal("road network must stay connected")
	}
	if avg := g.AvgDegree(); avg > 3.2 {
		t.Errorf("road avg degree %g should be below grid's ~4", avg)
	}
}

func TestPowerGrid(t *testing.T) {
	g := PowerGrid(500, 10)
	mustValid(t, "powergrid", g)
	if g.N != 500 {
		t.Fatal("n wrong")
	}
	if avg := g.AvgDegree(); avg < 2 || avg > 6 {
		t.Errorf("power grid avg degree %g out of expected band", avg)
	}
}

func TestFinance(t *testing.T) {
	g := Finance(16, 32, 11)
	mustValid(t, "finance", g)
	if g.N != 512 {
		t.Fatal("n wrong")
	}
	if !g.IsConnected() {
		t.Error("finance graph must be connected (ring + tree overlay)")
	}
}

func TestCommunityGraph(t *testing.T) {
	g := CommunityGraph(800, 12)
	mustValid(t, "community", g)
	if g.N != 800 {
		t.Fatal("n wrong")
	}
	if !g.IsConnected() {
		t.Error("community graph must be connected via hubs")
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(9, 8, WeightUniform, 15)
	mustValid(t, "rmat", g)
	if g.N != 512 {
		t.Fatalf("n=%d, want 512", g.N)
	}
	// Power-law-ish: a hub far above the average degree.
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 4*g.AvgDegree() {
		t.Errorf("RMAT should have hubs: max %d vs avg %.1f", maxDeg, g.AvgDegree())
	}
}

func TestDeterminism(t *testing.T) {
	// Cross-run determinism of BarabasiAlbert is checked by a golden
	// fingerprint below (same-process double-generation cannot catch
	// map-iteration nondeterminism, which varies per process).
	a := GeometricKNN(200, 2, 3, WeightUniform, 77)
	b := GeometricKNN(200, 2, 3, WeightUniform, 77)
	if a.M() != b.M() {
		t.Fatal("same seed must give same graph")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("same seed must give identical edges")
		}
	}
	c := GeometricKNN(200, 2, 3, WeightUniform, 78)
	if func() bool {
		ec := c.Edges()
		if len(ec) != len(ea) {
			return false
		}
		for i := range ea {
			if ea[i] != ec[i] {
				return false
			}
		}
		return true
	}() {
		t.Error("different seeds should differ")
	}
}

func TestBarabasiAlbertGoldenFingerprint(t *testing.T) {
	// A golden edge-checksum: fails if the generator's output ever
	// depends on process-randomized state (e.g. map iteration order).
	g := BarabasiAlbert(64, 3, WeightUnit, 5)
	sum := 0
	for _, e := range g.Edges() {
		sum = sum*31%1000003 + e.U*97 + e.V
	}
	const want = 642788
	if sum != want {
		t.Fatalf("BarabasiAlbert fingerprint = %d, want %d (generator output changed or is nondeterministic)", sum, want)
	}
}

func TestPotentialCreatesNegativeArcsNoNegCycle(t *testing.T) {
	g := GeometricKNN(100, 2, 3, WeightUniform, 13)
	p := Potential(g.N, 3.0, 14)
	init := g.ToDensePotential(p)
	neg := false
	for i := 0; i < init.Rows; i++ {
		for _, v := range init.Row(i) {
			if v < 0 {
				neg = true
			}
		}
	}
	if !neg {
		t.Fatal("potential with scale 3 should create negative arcs")
	}
	semiring.FloydWarshall(init)
	if semiring.HasNegativeCycle(init) {
		t.Fatal("potential reweighting must not create negative cycles")
	}
}

func TestWeightModes(t *testing.T) {
	unit := Grid2D(4, 4, WeightUnit, 1)
	for _, w := range unit.Wgt {
		if w != 1 {
			t.Fatal("unit weights must be 1")
		}
	}
	uni := Grid2D(4, 4, WeightUniform, 1)
	for _, w := range uni.Wgt {
		if w < 0.1 || w >= 1.1 {
			t.Fatalf("uniform weight %g out of [0.1,1.1)", w)
		}
	}
}
