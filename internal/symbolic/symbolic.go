// Package symbolic implements the symbolic-analysis machinery the paper
// imports from sparse Cholesky factorization: elimination trees (Liu's
// algorithm), postordering, explicit symbolic fill, column counts, and
// fundamental-supernode detection. The output is the supernodal partition
// and supernodal elimination tree that schedule the numeric phase.
package symbolic

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/order"
)

// ETree computes the elimination tree of the symmetric sparsity pattern
// of g under the natural (already applied) ordering, using Liu's
// algorithm with path compression. parent[v] is the etree parent of v or
// -1 for roots. Runs in O(m·α(n)).
func ETree(g *graph.Graph) []int {
	n := g.N
	parent := make([]int, n)
	ancestor := make([]int, n)
	for i := range parent {
		parent[i] = -1
		ancestor[i] = -1
	}
	for j := 0; j < n; j++ {
		adj, _ := g.Neighbors(j)
		for _, i := range adj {
			if i >= j {
				break // neighbors sorted; only lower part drives the etree
			}
			r := i
			for ancestor[r] != -1 && ancestor[r] != j {
				next := ancestor[r]
				ancestor[r] = j
				r = next
			}
			if ancestor[r] == -1 {
				ancestor[r] = j
				parent[r] = j
			}
		}
	}
	return parent
}

// Postorder returns a permutation (perm[new] = old) that postorders the
// forest given by parent: every subtree becomes a contiguous index range
// ending at its root. Children are visited in ascending order, so the
// result is deterministic and is the identity when parent is already a
// postorder.
func Postorder(parent []int) []int {
	n := len(parent)
	// Build child lists (ascending by construction).
	head := make([]int, n)
	next := make([]int, n)
	for i := range head {
		head[i] = -1
	}
	var roots []int
	for v := n - 1; v >= 0; v-- { // reverse so lists come out ascending
		p := parent[v]
		if p < 0 {
			roots = append(roots, v)
		} else {
			next[v] = head[p]
			head[p] = v
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(roots))) // pop order → ascending
	perm := make([]int, 0, n)
	// Iterative DFS emitting vertices in postorder.
	type frame struct {
		v     int
		child int // next child to visit (-1 when exhausted)
	}
	stack := make([]frame, 0, 64)
	for _, r := range roots {
		stack = append(stack, frame{r, head[r]})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.child < 0 {
				perm = append(perm, f.v)
				stack = stack[:len(stack)-1]
				continue
			}
			c := f.child
			f.child = next[c]
			stack = append(stack, frame{c, head[c]})
		}
	}
	return perm
}

// RelabelParent returns the parent array expressed in the permuted index
// space: newParent[i] corresponds to new vertex i = old vertex perm[i].
func RelabelParent(parent, perm []int) []int {
	iperm := graph.InversePerm(perm)
	out := make([]int, len(parent))
	for old, p := range parent {
		if p < 0 {
			out[iperm[old]] = -1
		} else {
			out[iperm[old]] = iperm[p]
		}
	}
	return out
}

// Fill computes the explicit symbolic Cholesky fill of g (which must
// already be permuted into elimination order): for every column j, the
// sorted set of rows i > j such that L[i][j] is structurally nonzero.
// parent must be ETree(g). The total fill (sum of lengths) is the
// factor's off-diagonal nonzero count.
func Fill(g *graph.Graph, parent []int) [][]int32 {
	n := g.N
	structs := make([][]int32, n)
	children := make([][]int32, n)
	for v := 0; v < n; v++ {
		if p := parent[v]; p >= 0 {
			children[p] = append(children[p], int32(v))
		}
	}
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	for j := 0; j < n; j++ {
		mark[j] = j
		var s []int32
		adj, _ := g.Neighbors(j)
		for _, i := range adj {
			if i > j && mark[i] != j {
				mark[i] = j
				s = append(s, int32(i))
			}
		}
		for _, c := range children[j] {
			for _, i := range structs[c] {
				if int(i) != j && mark[i] != j {
					mark[i] = j
					s = append(s, i)
				}
			}
		}
		sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
		structs[j] = s
	}
	return structs
}

// FillCount returns the number of structurally nonzero off-diagonal
// entries of the Cholesky factor (a standard ordering-quality metric).
func FillCount(structs [][]int32) int64 {
	var total int64
	for _, s := range structs {
		total += int64(len(s))
	}
	return total
}

// ColCounts returns the column counts |struct(j)| from explicit fill.
func ColCounts(structs [][]int32) []int {
	counts := make([]int, len(structs))
	for j, s := range structs {
		counts[j] = len(s)
	}
	return counts
}

// Range is a half-open contiguous index interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Size returns Hi-Lo.
func (r Range) Size() int { return r.Hi - r.Lo }

// Supernodes is a partition of [0,n) into contiguous supernodes plus
// their elimination-tree structure and level schedule.
type Supernodes struct {
	// Ranges lists the supernodes in ascending index order; iterating in
	// this order is a valid (postorder) elimination order.
	Ranges []Range
	// Parent is the supernodal elimination tree (-1 for roots).
	Parent []int
	// SubLo[k] is the first vertex index of supernode k's subtree:
	// descendants occupy [SubLo[k], Ranges[k].Lo).
	SubLo []int
	// Levels is the bottom-up level schedule: Levels[0] holds leaves,
	// and every supernode appears in a level strictly above all its
	// children. Supernodes within one level are mutually cousins
	// (disjoint descendant sets), so they can be eliminated in parallel.
	Levels [][]int
}

// New assembles a Supernodes from its serialized parts (ranges, parent
// pointers and subtree starts), recomputing the level schedule. Callers
// must supply a valid postorder structure (see Check).
func New(ranges []Range, parent, subLo []int) *Supernodes {
	s := &Supernodes{Ranges: ranges, Parent: parent, SubLo: subLo}
	s.computeLevels()
	return s
}

// N returns the number of vertices covered.
func (s *Supernodes) N() int {
	if len(s.Ranges) == 0 {
		return 0
	}
	return s.Ranges[len(s.Ranges)-1].Hi
}

// NumSupernodes returns the supernode count.
func (s *Supernodes) NumSupernodes() int { return len(s.Ranges) }

// Ancestors returns the supernode ids on the path from k's parent to its
// root, in ascending order (the A(k) of the paper).
func (s *Supernodes) Ancestors(k int) []int {
	var out []int
	for p := s.Parent[k]; p >= 0; p = s.Parent[p] {
		out = append(out, p)
	}
	return out
}

// ChildCounts returns, for every supernode, its number of etree children.
// These are the initial pending counts of a dependency-driven (DAG)
// schedule: a supernode becomes runnable when its count reaches zero,
// leaves (count 0) seed the ready queue.
func (s *Supernodes) ChildCounts() []int {
	counts := make([]int, len(s.Parent))
	for _, p := range s.Parent {
		if p >= 0 {
			counts[p]++
		}
	}
	return counts
}

// NumLeaves returns the number of childless supernodes — the width of the
// initial ready set under dependency-driven scheduling.
func (s *Supernodes) NumLeaves() int {
	leaves := 0
	for _, c := range s.ChildCounts() {
		if c == 0 {
			leaves++
		}
	}
	return leaves
}

// AncestorClosure returns the membership vector of the seeds plus every
// supernode on their root paths. This is the "dirty set" of a live edge
// update: an edge owned by supernode k can change the factor blocks of k
// and its ancestors but of no other supernode, because numeric
// contributions flow only from a supernode into its ancestor chain.
func (s *Supernodes) AncestorClosure(seeds []int) []bool {
	closed := make([]bool, len(s.Ranges))
	for _, k := range seeds {
		for ; k >= 0 && !closed[k]; k = s.Parent[k] {
			closed[k] = true
		}
	}
	return closed
}

// Affected expands a membership vector downward: affected[k] is true
// when k's root path (k included) intersects the marked set. A vertex's
// 2-hop label reads exactly the blocks on its supernode's root path, so
// this is the per-supernode label-staleness mask induced by a set of
// value-changed supernodes.
func (s *Supernodes) Affected(marked []bool) []bool {
	out := make([]bool, len(s.Ranges))
	// Parents have higher indices than children (postorder), so a
	// descending pass sees every parent before its children.
	for k := len(s.Ranges) - 1; k >= 0; k-- {
		out[k] = marked[k] || (s.Parent[k] >= 0 && out[s.Parent[k]])
	}
	return out
}

// LevelOf returns each supernode's etree level (the inverse of Levels):
// 0 for leaves, 1+max(children) otherwise.
func (s *Supernodes) LevelOf() []int {
	level := make([]int, len(s.Ranges))
	for lvl, nodes := range s.Levels {
		for _, k := range nodes {
			level[k] = lvl
		}
	}
	return level
}

// computeLevels fills Levels from Parent: level(k) = 1+max(level(children)).
func (s *Supernodes) computeLevels() {
	ns := len(s.Ranges)
	level := make([]int, ns)
	maxLevel := 0
	// Ranges are in postorder, so children precede parents.
	for k := 0; k < ns; k++ {
		if p := s.Parent[k]; p >= 0 {
			if level[k]+1 > level[p] {
				level[p] = level[k] + 1
			}
		}
		if level[k] > maxLevel {
			maxLevel = level[k]
		}
	}
	s.Levels = make([][]int, maxLevel+1)
	for k := 0; k < ns; k++ {
		s.Levels[level[k]] = append(s.Levels[level[k]], k)
	}
}

// Check validates structural invariants: ranges partition [0,n) in
// ascending order, parents come after children, subtree ranges are
// contiguous and nested, and levels are consistent. Returns the first
// violation found, or "" if valid.
func (s *Supernodes) Check() string {
	prev := 0
	for k, r := range s.Ranges {
		if r.Lo != prev || r.Hi <= r.Lo {
			return "ranges do not partition [0,n) in ascending order"
		}
		prev = r.Hi
		if p := s.Parent[k]; p >= 0 {
			if p <= k {
				return "parent precedes child"
			}
			if s.SubLo[p] > s.SubLo[k] {
				return "parent subtree does not contain child subtree"
			}
		}
		if s.SubLo[k] > r.Lo {
			return "SubLo after Lo"
		}
	}
	// every node appears in exactly one level, above its children
	seen := make([]int, len(s.Ranges))
	for i := range seen {
		seen[i] = -1
	}
	for lvl, nodes := range s.Levels {
		for _, k := range nodes {
			if seen[k] >= 0 {
				return "supernode in two levels"
			}
			seen[k] = lvl
		}
	}
	for k, lvl := range seen {
		if lvl < 0 {
			return "supernode missing from levels"
		}
		if p := s.Parent[k]; p >= 0 && seen[p] <= lvl {
			return "parent not above child in level schedule"
		}
	}
	return ""
}

// FromTree converts a nested-dissection separator tree into a supernode
// partition, splitting nodes larger than maxBlock into chains of
// consecutive supernodes (each chunk the parent of the previous), which
// preserves all ancestor/descendant relations while bounding block sizes
// for cache-friendly kernels.
func FromTree(tree []order.Node, n, maxBlock int) *Supernodes {
	if maxBlock <= 0 {
		maxBlock = 128
	}
	s := &Supernodes{}
	// tree is in postorder with ascending ranges; map tree-node → id of
	// its last chunk (the chain head that ancestors attach to).
	lastChunk := make([]int, len(tree))
	for ti, nd := range tree {
		if nd.Hi == nd.Lo { // empty node (degenerate dissection cell)
			lastChunk[ti] = -1
			continue
		}
		first := len(s.Ranges)
		for lo := nd.Lo; lo < nd.Hi; lo += maxBlock {
			hi := lo + maxBlock
			if hi > nd.Hi {
				hi = nd.Hi
			}
			id := len(s.Ranges)
			s.Ranges = append(s.Ranges, Range{lo, hi})
			if id == first {
				s.SubLo = append(s.SubLo, nd.SubLo)
				s.Parent = append(s.Parent, -1) // fixed below
			} else {
				s.SubLo = append(s.SubLo, nd.SubLo)
				s.Parent = append(s.Parent, -1)
				s.Parent[id-1] = id // chain: previous chunk's parent
			}
		}
		lastChunk[ti] = len(s.Ranges) - 1
	}
	// Wire each tree node's last chunk to the first chunk of its parent
	// node. The parent's first chunk is found by scanning ranges: it is
	// the supernode whose Lo equals the parent node's Lo.
	loToID := make(map[int]int, len(s.Ranges))
	for id, r := range s.Ranges {
		loToID[r.Lo] = id
	}
	for ti, nd := range tree {
		lc := lastChunk[ti]
		if lc < 0 || nd.Parent < 0 {
			continue
		}
		p := tree[nd.Parent]
		if pid, ok := loToID[p.Lo]; ok {
			s.Parent[lc] = pid
		}
	}
	s.computeLevels()
	return s
}

// SupernodalStruct computes the exact supernodal block structure of the
// factor: for every supernode k, the ascending list of ancestor
// supernodes a such that block (a, k) is structurally nonzero. This is
// symbolic factorization run at supernode granularity:
//
//	struct(k) = snAdj_{>k}(k) ∪ ⋃_{c child of k} (struct(c) \ {k})
//
// where snAdj is the supernode-level adjacency of the permuted graph.
// The result refines the ANCESTOR side of Algorithm 3's reach set
// R(k) = D(k) ∪ A(k): an ancestor NOT in struct(k) has an all-∞ panel
// against k at elimination time, so skipping it is exact. The descendant
// side cannot be refined the same way — the distance-matrix (D-region)
// updates of earlier eliminations create finite entries outside the
// symbolic fill pattern, so D(k) must stay whole.
func SupernodalStruct(g *graph.Graph, s *Supernodes) [][]int32 {
	ns := len(s.Ranges)
	// Supernode id of each vertex.
	snOf := make([]int32, s.N())
	for k, r := range s.Ranges {
		for v := r.Lo; v < r.Hi; v++ {
			snOf[v] = int32(k)
		}
	}
	children := make([][]int32, ns)
	for k, p := range s.Parent {
		if p >= 0 {
			children[p] = append(children[p], int32(k))
		}
	}
	structs := make([][]int32, ns)
	mark := make([]int32, ns)
	for i := range mark {
		mark[i] = -1
	}
	for k := 0; k < ns; k++ {
		var out []int32
		mark[k] = int32(k)
		r := s.Ranges[k]
		for v := r.Lo; v < r.Hi; v++ {
			adj, _ := g.Neighbors(v)
			for _, u := range adj {
				a := snOf[u]
				if int(a) > k && mark[a] != int32(k) {
					mark[a] = int32(k)
					out = append(out, a)
				}
			}
		}
		for _, c := range children[k] {
			for _, a := range structs[c] {
				if int(a) != k && mark[a] != int32(k) {
					mark[a] = int32(k)
					out = append(out, a)
				}
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		structs[k] = out
	}
	return structs
}

// FromETreeChains builds relaxed supernodes by merging maximal elimination
// tree chains (vertex j joins j−1's supernode whenever parent(j−1) = j),
// capped at maxBlock. Unlike fundamental supernodes it ignores column
// counts: the supernodal engine's reach set R(k) = D(k) ∪ A(k) depends
// only on subtree/ancestor ranges, so chain merging changes granularity
// (bigger, cache-friendlier blocks) without adding reach. Used for the
// SuperBfs baseline, where fundamental supernodes would be tiny.
func FromETreeChains(parent []int, maxBlock int) *Supernodes {
	counts := make([]int, len(parent))
	for j := range counts {
		// A constant-decrement fake count sequence makes every chain
		// merge under the fundamental rule.
		counts[j] = len(parent) - j
	}
	return FromETree(parent, counts, maxBlock)
}

// FromETree builds fundamental supernodes from a vertex elimination tree
// and column counts (the ordering must already be a postorder of parent):
// vertex j joins the supernode of j-1 when parent(j-1) = j and
// count(j) = count(j-1) − 1, i.e. their factor columns have identical
// structure below the supernode. Chains longer than maxBlock are split.
func FromETree(parent, colCount []int, maxBlock int) *Supernodes {
	if maxBlock <= 0 {
		maxBlock = 128
	}
	n := len(parent)
	s := &Supernodes{}
	// Subtree sizes for SubLo.
	size := make([]int, n)
	for i := range size {
		size[i] = 1
	}
	for v := 0; v < n; v++ {
		if p := parent[v]; p >= 0 {
			size[p] += size[v]
		}
	}
	lo := 0
	for j := 1; j <= n; j++ {
		fundamental := j < n && parent[j-1] == j && colCount[j] == colCount[j-1]-1
		if fundamental && j-lo < maxBlock {
			continue
		}
		s.Ranges = append(s.Ranges, Range{lo, j})
		s.SubLo = append(s.SubLo, j-size[j-1])
		s.Parent = append(s.Parent, -1)
		lo = j
	}
	// Supernodal parent: the supernode containing parent(top vertex).
	snodeOf := make([]int, n)
	for id, r := range s.Ranges {
		for v := r.Lo; v < r.Hi; v++ {
			snodeOf[v] = id
		}
	}
	for id, r := range s.Ranges {
		if p := parent[r.Hi-1]; p >= 0 {
			s.Parent[id] = snodeOf[p]
		}
	}
	s.computeLevels()
	return s
}
